// Ablation studies backing the paper's design choices:
//
//   1. AUPRC vs AUROC under rare positives (Section III-B's argument for
//      preferring the P-R area): AUROC looks flattering while AUPRC exposes
//      the real difficulty.
//   2. Random-forest size sweep ("parallelize for training with more trees
//      ... would not hurt the predicting performance"): AUPRC vs #trees.
//   3. Window ablation: 3x3 neighborhood features vs central-g-cell-only
//      (prior works' motivation for windowed features).
//   4. Feature-group knockout: placement-only vs congestion-only vs all 387
//      (which information actually carries the signal).
//
// Usage: bench_ablation [--scale N]

#include <cstring>
#include <iostream>

#include "benchsuite/pipeline.hpp"
#include "core/kernel_shap.hpp"
#include "core/random_forest.hpp"
#include "core/tree_shap.hpp"
#include "ml/metrics.hpp"
#include "obs/run_report.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace drcshap;

namespace {

/// Dataset with only the selected feature columns (labels/groups kept).
Dataset select_columns(const Dataset& data,
                       const std::vector<std::size_t>& columns) {
  std::vector<std::string> names;
  if (!data.feature_names().empty()) {
    for (const std::size_t c : columns) names.push_back(data.feature_names()[c]);
  }
  Dataset out(columns.size(), std::move(names));
  std::vector<float> row(columns.size());
  for (std::size_t i = 0; i < data.n_rows(); ++i) {
    const auto full = data.row(i);
    for (std::size_t c = 0; c < columns.size(); ++c) row[c] = full[columns[c]];
    out.append_row(row, data.label(i), data.group(i));
  }
  return out;
}

/// Feature columns that only involve the central g-cell: the "_o" placement
/// scalars and vias, plus the four window edges incident to the center.
std::vector<std::size_t> central_only_columns() {
  std::vector<std::size_t> cols;
  const auto& names = FeatureSchema::names();
  for (std::size_t f = 0; f < names.size(); ++f) {
    const std::string& n = names[f];
    const bool central_scalar_or_via = n.size() > 2 && n.substr(n.size() - 2) == "_o";
    const bool central_edge =
        n.find("_4V") != std::string::npos || n.find("_6H") != std::string::npos ||
        n.find("_7H") != std::string::npos || n.find("_9V") != std::string::npos;
    if (central_scalar_or_via || central_edge) cols.push_back(f);
  }
  return cols;
}

std::vector<std::size_t> block_columns(bool placement, bool edges, bool vias) {
  std::vector<std::size_t> cols;
  for (std::size_t f = 0; f < FeatureSchema::kNumFeatures; ++f) {
    const bool is_placement = f < 99;
    const bool is_edge = f >= 99 && f < 279;
    if ((is_placement && placement) || (is_edge && edges) ||
        (f >= 279 && vias)) {
      cols.push_back(f);
    }
  }
  return cols;
}

double evaluate_auprc(const Dataset& train, const Dataset& test, int n_trees) {
  RandomForestOptions options;
  options.n_trees = n_trees;
  options.n_threads = 1;
  RandomForestClassifier forest(options);
  forest.fit(train);
  return auprc(forest.predict_proba_all(test), test.labels());
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 8.0;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--scale") && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    }
  }
  std::cout << "=== Ablations (scale 1/" << scale << ") ===\n";
  PipelineOptions pipeline;
  pipeline.generator.scale = scale;

  // Train on groups 1+3, evaluate on group 2's fft_b and group 5's fft_1
  // (design-held-out in both directions).
  Dataset train(FeatureSchema::kNumFeatures, FeatureSchema::names());
  for (const BenchmarkSpec& spec : ispd2015_suite()) {
    if (spec.table_group == 1 || spec.table_group == 3) {
      train.append(run_pipeline(spec, pipeline).samples);
    }
  }
  Dataset test(FeatureSchema::kNumFeatures, FeatureSchema::names());
  test.append(run_pipeline(suite_spec("fft_b"), pipeline).samples);
  test.append(run_pipeline(suite_spec("fft_1"), pipeline).samples);
  const double positive_rate = static_cast<double>(test.n_positives()) /
                               static_cast<double>(test.n_rows());
  std::cout << "train " << train.n_rows() << " rows / " << train.n_positives()
            << " positives; test " << test.n_rows() << " rows / "
            << test.n_positives() << " positives ("
            << fmt_percent(positive_rate) << ")\n\n";

  // ---- 1. AUPRC vs AUROC ---------------------------------------------------
  {
    RandomForestOptions options;
    options.n_trees = 150;
    options.n_threads = 1;
    RandomForestClassifier forest(options);
    forest.fit(train);
    const auto scores = forest.predict_proba_all(test);
    Table t({"metric", "value", "chance level"});
    t.add_row({"AUROC", fmt_fixed(auroc(scores, test.labels())), "0.5000"});
    t.add_row({"AUPRC", fmt_fixed(auprc(scores, test.labels())),
               fmt_fixed(positive_rate)});
    std::cout << "--- 1. threshold-free metrics under rare positives ---\n"
              << t.to_string()
              << "(AUROC sits far above its chance level even when AUPRC "
                 "shows substantial headroom --\n the paper's reason for "
                 "ranking models by AUPRC)\n\n";
  }

  // ---- 2. forest size sweep -------------------------------------------------
  {
    Table t({"# trees", "AUPRC"});
    for (const int n_trees : {10, 50, 150, 300}) {
      t.add_row({std::to_string(n_trees),
                 fmt_fixed(evaluate_auprc(train, test, n_trees))});
    }
    std::cout << "--- 2. RF ensemble size (more trees do not hurt) ---\n"
              << t.to_string() << "\n";
  }

  // ---- 3. window ablation ----------------------------------------------------
  {
    const auto central = central_only_columns();
    const Dataset train_c = select_columns(train, central);
    const Dataset test_c = select_columns(test, central);
    Table t({"feature window", "# features", "AUPRC"});
    t.add_row({"central g-cell only", std::to_string(central.size()),
               fmt_fixed(evaluate_auprc(train_c, test_c, 150))});
    t.add_row({"3x3 window (paper)", "387",
               fmt_fixed(evaluate_auprc(train, test, 150))});
    std::cout << "--- 3. 3x3 window vs central-only features ---\n"
              << t.to_string() << "\n";
  }

  // ---- 5 (below 4). exact tree explainer vs sampling Kernel SHAP ------------
  auto run_shap_comparison = [&]() {
    RandomForestOptions options;
    options.n_trees = 100;
    options.n_threads = 1;
    RandomForestClassifier forest(options);
    forest.fit(train);
    const TreeShapExplainer exact(forest);

    const std::size_t n_samples = 5;
    double exact_seconds = 0.0;
    std::vector<std::vector<double>> exact_phi;
    for (std::size_t i = 0; i < n_samples; ++i) {
      const auto x = test.row(i * 37 % test.n_rows());
      Stopwatch t1;
      exact_phi.push_back(exact.shap_values(x));
      exact_seconds += t1.seconds();
    }
    Table t({"explainer", "s/sample", "rel. L1 error vs exact"});
    t.add_row({"TreeSHAP (exact, this paper)",
               fmt_fixed(exact_seconds / n_samples, 3), "0 (reference)"});
    for (const std::size_t coalitions : {1000ul, 8000ul}) {
      KernelShapOptions kernel_options;
      kernel_options.n_coalitions = coalitions;
      kernel_options.n_background = 10;
      const KernelShapExplainer sampled(forest, train, kernel_options);
      double sampled_seconds = 0.0, l1_err = 0.0, l1_mag = 0.0;
      for (std::size_t i = 0; i < n_samples; ++i) {
        const auto x = test.row(i * 37 % test.n_rows());
        Stopwatch t2;
        const auto phi_sampled = sampled.shap_values(x);
        sampled_seconds += t2.seconds();
        for (std::size_t f = 0; f < exact_phi[i].size(); ++f) {
          l1_err += std::abs(exact_phi[i][f] - phi_sampled[f]);
          l1_mag += std::abs(exact_phi[i][f]);
        }
      }
      t.add_row({"Kernel SHAP (" + std::to_string(coalitions) + " coalitions)",
                 fmt_fixed(sampled_seconds / n_samples, 3),
                 fmt_percent(l1_err / std::max(1e-12, l1_mag))});
    }
    std::cout << "--- 5. exact tree explainer vs sampling approximation "
                 "(Section III-C) ---\n"
              << t.to_string()
              << "(brute-force Eq. (2) would need 2^387 terms per sample)\n\n";
  };

  // ---- 4. feature-group knockout ---------------------------------------------
  {
    Table t({"feature groups", "# features", "AUPRC"});
    const struct {
      const char* label;
      bool placement, edges, vias;
    } variants[] = {
        {"placement only", true, false, false},
        {"edge congestion only", false, true, false},
        {"via congestion only", false, false, true},
        {"congestion (edges+vias)", false, true, true},
        {"all 387 (paper)", true, true, true},
    };
    for (const auto& v : variants) {
      const auto cols = block_columns(v.placement, v.edges, v.vias);
      const Dataset train_k = select_columns(train, cols);
      const Dataset test_k = select_columns(test, cols);
      t.add_row({v.label, std::to_string(cols.size()),
                 fmt_fixed(evaluate_auprc(train_k, test_k, 150))});
    }
    std::cout << "--- 4. feature-group knockout ---\n" << t.to_string() << "\n";
  }

  run_shap_comparison();

  obs::RunReportOptions report;
  report.tool = "bench_ablation";
  obs::write_default_run_report(report);
  return 0;
}
