// Micro-benchmarks proving the compiled forest backend's speedup claims:
// exact vs compiled batch scoring at 1 and 8 threads on the paper-scale
// model (500 unpruned trees, 387 features, 4000 rows), the scalar block
// kernel (SIMD contribution), single-sample latency, the one-time
// quantize/layout lowering cost, and the SHAP explainer on both layouts.
//
// The committed BENCH_compiled.json baseline is gated in CI perf-smoke on
// CPU time: the exact/compiled ratio at 1 thread is the tentpole's >= 2x
// claim, measured where parallelism cannot flatter it.

#include <benchmark/benchmark.h>

#include <numeric>

#include "core/tree_shap.hpp"
#include "obs_report.hpp"
#include "util/rng.hpp"

namespace drcshap {
namespace {

/// Synthetic 387-feature task resembling the DRC dataset (same generator
/// shape as bench_shap_runtime so numbers are comparable across benches).
Dataset make_data(std::size_t n_rows, std::size_t n_features,
                  std::uint64_t seed) {
  Dataset d(n_features);
  Rng rng(seed);
  std::vector<float> x(n_features);
  for (std::size_t i = 0; i < n_rows; ++i) {
    for (auto& v : x) v = static_cast<float>(rng.uniform());
    const double danger = 2.0 * x[5] + 1.5 * x[17] +
                          (x[5] > 0.7 && x[42] > 0.5 ? 1.5 : 0.0) +
                          0.6 * rng.normal();
    d.append_row(x, danger > 2.6 ? 1 : 0, 0);
  }
  return d;
}

const Dataset& paper_scale_data() {
  static const Dataset data = make_data(4000, 387, 7);
  return data;
}

/// The paper-scale model, fitted once and shared by every bench below.
const RandomForestClassifier& paper_scale_forest() {
  static const RandomForestClassifier forest = [] {
    RandomForestOptions options;
    options.n_trees = 500;
    RandomForestClassifier f(options);
    f.fit(paper_scale_data());
    return f;
  }();
  return forest;
}

/// Same trees, thread-pool width pinned to `n_threads` for predict calls.
RandomForestClassifier forest_with_threads(std::size_t n_threads) {
  RandomForestOptions options = paper_scale_forest().options();
  options.n_threads = n_threads;
  RandomForestClassifier forest(options);
  forest.set_trees(paper_scale_forest().trees(), options);
  return forest;
}

void BM_PredictAll_Exact(benchmark::State& state) {
  const Dataset& data = paper_scale_data();
  const RandomForestClassifier forest =
      forest_with_threads(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        forest.predict_proba_all(data, ForestEngine::kExact));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * data.n_rows()));
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_PredictAll_Exact)->Arg(1)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_PredictAll_Compiled(benchmark::State& state) {
  const Dataset& data = paper_scale_data();
  const RandomForestClassifier forest =
      forest_with_threads(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        forest.predict_proba_all(data, ForestEngine::kCompiled));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * data.n_rows()));
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_PredictAll_Compiled)->Arg(1)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_PredictAll_CompiledScalar(benchmark::State& state) {
  // The scalar block kernel, serial: isolates the quantize + branch-free
  // layout win from the AVX2 contribution (compare against _Compiled/1).
  const Dataset& data = paper_scale_data();
  const CompiledForest* compiled = paper_scale_forest().compiled();
  if (compiled == nullptr) {
    state.SkipWithError("model did not compile");
    return;
  }
  std::vector<double> out(data.n_rows());
  for (auto _ : state) {
    compiled->predict_batch(data.features_flat().data(), data.n_rows(),
                            out.data(), CompiledForest::Simd::kScalar);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * data.n_rows()));
  state.counters["threads"] = 1.0;
}
BENCHMARK(BM_PredictAll_CompiledScalar)->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_PredictSingle_Exact(benchmark::State& state) {
  const RandomForestClassifier& forest = paper_scale_forest();
  const auto x = paper_scale_data().row(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.predict_proba(x, ForestEngine::kExact));
  }
}
BENCHMARK(BM_PredictSingle_Exact)->Arg(1)->Unit(benchmark::kMicrosecond);

void BM_PredictSingle_Compiled(benchmark::State& state) {
  const RandomForestClassifier& forest = paper_scale_forest();
  const auto x = paper_scale_data().row(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        forest.predict_proba(x, ForestEngine::kCompiled));
  }
}
BENCHMARK(BM_PredictSingle_Compiled)->Arg(1)->Unit(benchmark::kMicrosecond);

void BM_CompiledBuild(benchmark::State& state) {
  // One-time lowering cost per fit/deserialize (the forest/quantize_ms
  // timer); must stay negligible next to training 500 trees.
  const FlatForest& flat = paper_scale_forest().flat();
  for (auto _ : state) {
    const CompiledForest compiled(flat);
    benchmark::DoNotOptimize(compiled.layout_digest());
  }
}
BENCHMARK(BM_CompiledBuild)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_ShapBatch_Exact(benchmark::State& state) {
  const Dataset& data = paper_scale_data();
  TreeShapExplainer explainer(paper_scale_forest());
  explainer.set_engine(ForestEngine::kExact);
  constexpr std::size_t kBatchRows = 16;
  std::vector<std::size_t> rows(kBatchRows);
  std::iota(rows.begin(), rows.end(), 0);
  const Dataset batch = data.subset(rows);
  for (auto _ : state) {
    benchmark::DoNotOptimize(explainer.shap_values_batch(batch, 1));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kBatchRows));
}
BENCHMARK(BM_ShapBatch_Exact)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_ShapBatch_Compiled(benchmark::State& state) {
  const Dataset& data = paper_scale_data();
  TreeShapExplainer explainer(paper_scale_forest());
  explainer.set_engine(ForestEngine::kCompiled);
  constexpr std::size_t kBatchRows = 16;
  std::vector<std::size_t> rows(kBatchRows);
  std::iota(rows.begin(), rows.end(), 0);
  const Dataset batch = data.subset(rows);
  for (auto _ : state) {
    benchmark::DoNotOptimize(explainer.shap_values_batch(batch, 1));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kBatchRows));
}
BENCHMARK(BM_ShapBatch_Compiled)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace drcshap

int main(int argc, char** argv) {
  return drcshap::run_benchmarks_with_report(argc, argv, "bench_compiled");
}
