// End-to-end experiment benchmark: the serial-vs-parallel wall clock of the
// paper's actual reproduction loops — suite build (Table I data
// acquisition), design-held-out grouped CV, grid search, SVM-RBF fit and
// the full chain (suite -> CV -> fit -> predict) — at 1/2/8 shared-pool
// workers. Every stage is bit-identical across thread counts (tested in
// test_parallel_experiments.cpp), so these numbers measure pure scheduling.
//
// Wall-clock scaling requires physical cores: on the single-core baseline
// host the >1-thread legs only prove the parallel path adds no overhead.
// Set DRCSHAP_THREADS=8 when recording so the 8-way legs really run 8
// workers. CI gates the 1-thread legs (fully serial, so CPU time is stable
// across runners) via tools/check_bench.py against BENCH_e2e.json.

#include <benchmark/benchmark.h>

#include "baselines/svm_rbf.hpp"
#include "benchsuite/pipeline.hpp"
#include "benchsuite/suite.hpp"
#include "core/random_forest.hpp"
#include "ml/cross_validation.hpp"
#include "ml/grid_search.hpp"
#include "obs_report.hpp"
#include "util/log.hpp"

namespace drcshap {
namespace {

/// Four designs drawn from four different Table I groups, so the grouped CV
/// below has 4 folds; scale 16 keeps one full chain in the seconds range.
std::vector<BenchmarkSpec> e2e_specs() {
  return {suite_spec("fft_2"), suite_spec("fft_b"), suite_spec("des_perf_1"),
          suite_spec("fft_1")};
}

PipelineOptions e2e_pipeline_options() {
  PipelineOptions options;
  options.generator.scale = 16.0;
  return options;
}

const Dataset& e2e_dataset() {
  static const Dataset data =
      build_suite_dataset(e2e_specs(), e2e_pipeline_options());
  return data;
}

ModelFactory forest_factory(std::size_t n_threads) {
  return [n_threads] {
    RandomForestOptions o;
    o.n_trees = 60;
    o.n_threads = n_threads;
    return std::make_unique<RandomForestClassifier>(o);
  };
}

void BM_SuiteBuild(benchmark::State& state) {
  const auto n_threads = static_cast<std::size_t>(state.range(0));
  const auto specs = e2e_specs();
  const auto options = e2e_pipeline_options();
  for (auto _ : state) {
    const Dataset data =
        build_suite_dataset(specs, options, nullptr, n_threads);
    benchmark::DoNotOptimize(data.n_rows());
  }
}
BENCHMARK(BM_SuiteBuild)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime()->Iterations(1);

void BM_GroupedCv(benchmark::State& state) {
  const auto n_threads = static_cast<std::size_t>(state.range(0));
  const Dataset& data = e2e_dataset();
  const std::vector<int> groups{0, 1, 2, 3};
  for (auto _ : state) {
    // The inner forest cap follows the leg so the 1-thread leg is wholly
    // serial (stable CPU time for the CI gate); at >1 thread the nesting
    // policy serializes the inner fit on the fold workers anyway.
    const CrossValResult cv = grouped_cross_validate(
        forest_factory(n_threads), data, groups, n_threads);
    benchmark::DoNotOptimize(cv.mean_auprc);
  }
}
BENCHMARK(BM_GroupedCv)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime()->Iterations(1);

void BM_GridSearch(benchmark::State& state) {
  const auto n_threads = static_cast<std::size_t>(state.range(0));
  const Dataset& data = e2e_dataset();
  const std::vector<int> groups{0, 1, 2, 3};
  const ParamModelFactory factory = [n_threads](const ParamSet& p) {
    RandomForestOptions o;
    o.n_trees = 30;
    o.n_threads = n_threads;
    o.max_features = static_cast<int>(p.at("mtry"));
    o.min_samples_leaf = static_cast<std::size_t>(p.at("leaf"));
    return std::make_unique<RandomForestClassifier>(o);
  };
  const std::map<std::string, std::vector<double>> grid{
      {"mtry", {0.0, 40.0}}, {"leaf", {1.0, 4.0}}};
  for (auto _ : state) {
    const GridSearchResult result =
        grid_search(factory, data, groups, grid, n_threads);
    benchmark::DoNotOptimize(result.best_score);
  }
}
BENCHMARK(BM_GridSearch)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime()->Iterations(1);

void BM_SvmFit(benchmark::State& state) {
  const auto n_threads = static_cast<std::size_t>(state.range(0));
  const Dataset& data = e2e_dataset();
  SvmRbfOptions options;
  options.max_training_samples = 1200;
  options.n_threads = n_threads;
  for (auto _ : state) {
    SvmRbfClassifier svm(options);
    svm.fit(data);
    benchmark::DoNotOptimize(svm.n_support_vectors());
  }
}
BENCHMARK(BM_SvmFit)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime()->Iterations(1);

void BM_E2E(benchmark::State& state) {
  const auto n_threads = static_cast<std::size_t>(state.range(0));
  const auto specs = e2e_specs();
  const auto options = e2e_pipeline_options();
  const std::vector<int> groups{0, 1, 2, 3};
  for (auto _ : state) {
    const Dataset data =
        build_suite_dataset(specs, options, nullptr, n_threads);
    const CrossValResult cv = grouped_cross_validate(
        forest_factory(n_threads), data, groups, n_threads);
    auto model = forest_factory(n_threads)();
    model->fit(data);
    const std::vector<double> scores = model->predict_proba_all(data);
    benchmark::DoNotOptimize(cv.mean_auprc);
    benchmark::DoNotOptimize(scores.size());
  }
}
BENCHMARK(BM_E2E)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime()->Iterations(1);

}  // namespace
}  // namespace drcshap

int main(int argc, char** argv) {
  drcshap::set_log_level(drcshap::LogLevel::kWarn);
  return drcshap::run_benchmarks_with_report(argc, argv, "bench_e2e");
}
