// Incremental ECO benchmark: the headline claim of the ECO loop — applying
// a small edit to a resident EcoEngine (dirty-region re-route, re-feature,
// re-predict, re-explain) must beat a from-scratch rebuild of the edited
// design by >=10x CPU. Both legs run the identical pipeline stages on the
// identical design, so the ratio is pure dirty-tracking win, and the golden
// digest tests (EcoDigest.*) prove the fast path is byte-identical.
//
// The design is a dedicated low-congestion spec: routing converges with
// zero overflow, so PathFinder's rip-up feedback cannot amplify the edit
// and the locality the speedup depends on actually holds (on a congested
// suite design a one-track macro nudge legitimately dirties everything —
// see SmallEditOnUncongestedDesignStaysLocal in test_eco.cpp). The edit is
// a quarter-micron macro move: a realistic late-stage ECO.
//
// CI gates the serial legs' CPU time against BENCH_eco.json via
// tools/check_bench.py AND re-proves the >=10x ratio in-run: main() exits
// nonzero when the serial incremental apply is slower than one tenth of
// the serial full rebuild, so the claim can never rot behind a stale
// baseline. The 8-thread legs are wall-clock telemetry for multi-core
// hosts (byte-identity across thread counts is covered by the tests).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <ctime>
#include <memory>
#include <utility>

#include "benchsuite/pipeline.hpp"
#include "eco/eco_engine.hpp"
#include "obs/registry.hpp"
#include "obs_report.hpp"
#include "util/log.hpp"

namespace drcshap {

// Serial-leg CPU times for the in-run ratio gate in main(); zero until the
// corresponding benchmark has run (registration order runs the full
// rebuild first).
double g_full_rebuild_cpu_ms = 0.0;
double g_incremental_cpu_ms = 0.0;

namespace {

/// A 60x60-g-cell design dense enough that a macro move reroutes real nets
/// but sparse enough that routing converges overflow-free — the regime the
/// incremental engine is built for.
BenchmarkSpec eco_bench_spec() {
  BenchmarkSpec spec;
  spec.name = "eco_bench";
  spec.table_group = 0;
  spec.die_microns = 400.0;
  spec.gcells_x = 60;
  spec.gcells_y = 60;
  spec.cells_thousands = 2.0;
  spec.n_macros = 8;
  spec.difficulty = 0.02;
  spec.wiring_richness = 1.0;
  spec.seed = 7;
  return spec;
}

/// The design exactly as run_pipeline would construct it (same generator,
/// placer seed and row height); full scale — the spec is bench-sized.
Design make_bench_design() {
  const BenchmarkSpec spec = eco_bench_spec();
  const PipelineOptions options;
  const NetlistSpec netlist = generate_netlist(spec, options.generator);
  PlacerOptions placer = options.placer;
  placer.row_height = options.generator.row_height;
  placer.seed = spec.seed * 31 + 1;
  return place_design(netlist, placer);
}

/// Paper-scale forest (500 trees), trained once on suite pipeline data so
/// the predict + explain stages carry their production-shaped cost.
std::shared_ptr<const RandomForestClassifier> bench_forest() {
  static const std::shared_ptr<const RandomForestClassifier> forest = [] {
    PipelineOptions train_options;
    train_options.generator.scale = 16.0;
    Dataset train(FeatureSchema::kNumFeatures, FeatureSchema::names());
    train.append(run_pipeline(suite_spec("fft_2"), train_options).samples);
    RandomForestOptions options;
    options.n_trees = 500;
    auto model = std::make_shared<RandomForestClassifier>(options);
    model->fit(train);
    return std::shared_ptr<const RandomForestClassifier>(std::move(model));
  }();
  return forest;
}

/// The benchmarked ECO: nudge macro 1 east by a quarter micron.
EcoEdit bench_edit() {
  EcoEdit edit;
  edit.kind = EcoEdit::Kind::kMoveMacro;
  edit.macro = 1;
  edit.dx = 0.25;
  edit.dy = 0.0;
  return edit;
}

double process_cpu_ms() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) * 1e-6;
}

void BM_EcoFullRebuild(benchmark::State& state) {
  const auto n_threads = static_cast<std::size_t>(state.range(0));
  EcoOptions options;
  options.n_threads = n_threads;
  const EcoEdit edit = bench_edit();
  // Untimed setup: design generation + placement are shared by both legs
  // (the incremental leg's resident engine was built on the same design),
  // and the forest is trained once per process.
  const auto forest = bench_forest();
  Design edited = make_bench_design();
  edited.move_macro(edit.macro, edit.dx, edit.dy);
  const double cpu_start = process_cpu_ms();
  for (auto _ : state) {  // Iterations(1): `edited` is consumed exactly once
    const EcoEngine engine(std::move(edited), forest,
                           TreeShapExplainer(*forest), options);
    benchmark::DoNotOptimize(engine.num_cells());
  }
  const double cpu_ms = process_cpu_ms() - cpu_start;
  if (n_threads == 1) g_full_rebuild_cpu_ms = cpu_ms;
}
BENCHMARK(BM_EcoFullRebuild)->Arg(1)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime()->Iterations(1);

void BM_EcoIncremental(benchmark::State& state) {
  const auto n_threads = static_cast<std::size_t>(state.range(0));
  EcoOptions options;
  options.n_threads = n_threads;
  const auto forest = bench_forest();
  // Untimed setup: the resident, fully scored engine — the state a serving
  // daemon (drcshap_serve --eco-design) holds between edits.
  EcoEngine engine(make_bench_design(), forest, TreeShapExplainer(*forest),
                   options);
  const EcoEdit edit = bench_edit();
  EcoStats stats;
  const double cpu_start = process_cpu_ms();
  for (auto _ : state) {
    const EcoResult result = engine.apply(edit);
    stats = result.stats;
    benchmark::DoNotOptimize(stats.dirty_cells);
  }
  const double cpu_ms = process_cpu_ms() - cpu_start;
  state.counters["dirty_cells"] = static_cast<double>(stats.dirty_cells);
  state.counters["rows_rescored"] = static_cast<double>(stats.rows_rescored);
  if (n_threads == 1) {
    g_incremental_cpu_ms = cpu_ms;
    obs::gauge_set("bench/eco/dirty_cells",
                   static_cast<double>(stats.dirty_cells));
    if (g_full_rebuild_cpu_ms > 0.0 && cpu_ms > 0.0) {
      obs::gauge_set("bench/eco/speedup_cpu", g_full_rebuild_cpu_ms / cpu_ms);
    }
  }
}
BENCHMARK(BM_EcoIncremental)->Arg(1)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime()->Iterations(1);

}  // namespace
}  // namespace drcshap

int main(int argc, char** argv) {
  drcshap::set_log_level(drcshap::LogLevel::kWarn);
  const int rc = drcshap::run_benchmarks_with_report(argc, argv, "bench_eco");
  if (rc != 0) return rc;
  // In-run speedup gate: both serial legs ran in this process on this
  // host, so the ratio is immune to runner-fleet drift. Skipped when a
  // --benchmark_filter excluded either leg.
  if (drcshap::g_full_rebuild_cpu_ms > 0.0 &&
      drcshap::g_incremental_cpu_ms > 0.0) {
    const double ratio =
        drcshap::g_full_rebuild_cpu_ms / drcshap::g_incremental_cpu_ms;
    if (ratio < 10.0) {
      std::fprintf(stderr,
                   "bench_eco: FAIL — incremental apply is only %.2fx the "
                   "full rebuild (%.1f vs %.1f CPU-ms); the ECO engine "
                   "promises >=10x\n",
                   ratio, drcshap::g_incremental_cpu_ms,
                   drcshap::g_full_rebuild_cpu_ms);
      return 1;
    }
    std::printf("ok: incremental ECO apply %.1fx faster than full rebuild "
                "(%.1f vs %.1f CPU-ms)\n",
                ratio, drcshap::g_incremental_cpu_ms,
                drcshap::g_full_rebuild_cpu_ms);
  }
  return 0;
}
