// Reproduces Fig. 3 + Fig. 4: individual SHAP explanations for three
// archetypal predicted DRC hotspots, cross-checked against the "actual" DRC
// errors produced by the detailed-routing oracle (which are, as in the
// paper, never visible to the model or the explainer).
//
//   (a) a hotspot in a highly congested area (edge overflows dominate),
//       from des_perf_1;
//   (b) a hotspot with moderate edge congestion but crowded vias, from
//       des_perf_1;
//   (c) a hotspot near a macro, from mult_a (the paper's matrix_mult_a).
//
// The RF model is trained on Table I groups {1, 3, 5} only, so both test
// designs (group 4 and group 2) are design-held-out. For each example the
// bench prints the local congestion context (Fig. 3), the ranked SHAP force
// plot (Fig. 4), the actual error list, and the per-sample explanation
// latency (the paper reports 1.4 s/sample for 500 trees on full-scale data).
//
// Usage: bench_fig3_fig4 [--scale N] [--trees N]

#include <algorithm>
#include <cstring>
#include <iostream>

#include "benchsuite/pipeline.hpp"
#include "core/explanation.hpp"
#include "core/tree_shap.hpp"
#include "obs/run_report.hpp"
#include "features/labeler.hpp"
#include "ml/metrics.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace drcshap;

namespace {

/// Which schema block a feature index belongs to.
enum class Block { kPlacement, kEdge, kVia };

Block block_of(std::size_t feature) {
  if (feature < 99) return Block::kPlacement;
  if (feature < 279) return Block::kEdge;
  return Block::kVia;
}

/// Prints the 3x3 window congestion context of a g-cell (the Fig. 3 panel).
void print_window_context(const DesignRun& run, std::size_t cell) {
  const TrackModel track(run.design, run.congestion);
  std::cout << "  local congestion (per metal layer: overflow incident to "
               "the cell / mean load / mean capacity):\n";
  for (int m = 0; m < 5; ++m) {
    std::cout << "    " << Technology::metal_name(m) << ": ovf "
              << track.edge_overflow(cell, m) << ", load "
              << fmt_fixed(track.wire_demand(cell, m), 1) << "/"
              << fmt_fixed(track.wire_supply(cell, m), 1) << "\n";
  }
  for (int v = 0; v < 4; ++v) {
    std::cout << "    " << Technology::via_name(v) << ": load "
              << run.congestion.via_load(v, cell) << "/"
              << run.congestion.via_capacity(v, cell) << "\n";
  }
  const auto agg = compute_gcell_aggregates(run.design);
  std::cout << "    pins " << agg[cell].n_pins << ", local nets "
            << agg[cell].n_local_nets << ", macro adjacent "
            << (agg[cell].macro_adjacent ? "yes" : "no") << "\n";
}

void explain_hotspot(char tag, const char* description, const DesignRun& run,
                     std::size_t cell, const RandomForestClassifier& forest,
                     const TreeShapExplainer& explainer) {
  const auto x = run.samples.row(cell);
  Stopwatch timer;
  const Explanation explanation =
      explain_sample(explainer, forest, x, FeatureSchema::names());
  const double explain_seconds = timer.seconds();

  std::cout << "\n--- hotspot (" << tag << "): " << description << " ---\n";
  std::cout << "  design " << run.spec.name << ", g-cell " << cell << " (col "
            << run.design.grid().col_of(cell) << ", row "
            << run.design.grid().row_of(cell) << ")\n";
  print_window_context(run, cell);
  std::cout << "\n  Fig.4-style SHAP force plot (prediction "
            << fmt_fixed(explanation.prediction(), 3) << " = "
            << fmt_fixed(explanation.prediction() / std::max(1e-9, explanation.base_value()), 0)
            << "x the base value " << fmt_fixed(explanation.base_value(), 4)
            << "):\n"
            << explanation.to_text(8);

  // Block-level attribution: which part of the feature space drives this
  // prediction (this is the consistency check the paper does by eye).
  double by_block[3] = {0.0, 0.0, 0.0};
  const auto& shap = explanation.shap_values();
  for (std::size_t f = 0; f < shap.size(); ++f) {
    if (shap[f] > 0.0) {
      by_block[static_cast<int>(block_of(f))] += shap[f];
    }
  }
  std::cout << "  positive SHAP mass by block: placement "
            << fmt_fixed(by_block[0], 3) << ", edge congestion "
            << fmt_fixed(by_block[1], 3) << ", via congestion "
            << fmt_fixed(by_block[2], 3) << "\n";

  const auto errors =
      violations_in_gcell(run.design.grid(), cell, run.drc.violations);
  std::cout << "  actual DRC errors after detailed routing (" << errors.size()
            << ", hidden from the model):\n";
  for (const DrcViolation& v : errors) {
    std::cout << "    - " << to_string(v.type) << " in "
              << Technology::metal_name(v.metal_layer) << "\n";
  }
  std::cout << "  explanation latency: " << fmt_fixed(explain_seconds, 3)
            << " s/sample (paper: 1.4 s/sample at full scale, 500 trees)\n";
  std::cout << "  additivity gap: " << explanation.additivity_gap() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 8.0;
  int trees = 150;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--scale") && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--trees") && i + 1 < argc) {
      trees = std::atoi(argv[++i]);
    }
  }
  std::cout << "=== Fig. 3 / Fig. 4: explaining individual DRC hotspots "
               "(scale 1/" << scale << ", " << trees << " trees) ===\n";

  PipelineOptions pipeline;
  pipeline.generator.scale = scale;

  // Train on groups 1, 3, 5 (holds out group 4 = des_perf_1 and group 2 =
  // mult_a simultaneously).
  Dataset train(FeatureSchema::kNumFeatures, FeatureSchema::names());
  for (const BenchmarkSpec& spec : ispd2015_suite()) {
    if (spec.table_group == 2 || spec.table_group == 4) continue;
    train.append(run_pipeline(spec, pipeline).samples);
  }
  const DesignRun des_perf_1 = run_pipeline(suite_spec("des_perf_1"), pipeline);
  const DesignRun mult_a = run_pipeline(suite_spec("mult_a"), pipeline);

  RandomForestOptions rf_options;
  rf_options.n_trees = trees;
  RandomForestClassifier forest(rf_options);
  Stopwatch fit_timer;
  forest.fit(train);
  std::cout << "RF trained on " << train.n_rows() << " samples ("
            << fmt_fixed(fit_timer.seconds(), 1) << " s)\n";
  const TreeShapExplainer explainer(forest);

  // ---- archetype selection -------------------------------------------------
  const TrackModel track_d1(des_perf_1.design, des_perf_1.congestion);
  const auto agg_ma = compute_gcell_aggregates(mult_a.design);
  const std::vector<double> scores_d1 =
      forest.predict_proba_all(des_perf_1.samples);
  const std::vector<double> scores_ma = forest.predict_proba_all(mult_a.samples);

  auto best_cell = [](const std::vector<double>& scores,
                      const std::function<bool(std::size_t)>& eligible) {
    std::ptrdiff_t best = -1;
    for (std::size_t i = 0; i < scores.size(); ++i) {
      if (!eligible(i)) continue;
      if (best < 0 || scores[i] > scores[static_cast<std::size_t>(best)]) {
        best = static_cast<std::ptrdiff_t>(i);
      }
    }
    return best;
  };

  // The paper's examples are actual DRC-violated g-cells ("three typical
  // DRC-violated g-cells ... are taken as examples"), so selection prefers
  // cells whose (hidden) label is positive; if no actual hotspot of an
  // archetype exists at this scale, the strongest *predicted* one is shown
  // instead (the workflow is identical either way).
  auto pick = [&](const std::vector<double>& scores, const Dataset& samples,
                  const std::function<bool(std::size_t)>& archetype) {
    const auto strict = best_cell(scores, [&](std::size_t i) {
      return samples.label(i) != 0 && archetype(i);
    });
    if (strict >= 0 && scores[static_cast<std::size_t>(strict)] >= 0.15) {
      return strict;
    }
    const auto relaxed = best_cell(scores, archetype);
    return relaxed >= 0 ? relaxed : strict;
  };

  // (a) heavy edge congestion: large incident edge overflow.
  const auto cell_a = pick(scores_d1, des_perf_1.samples, [&](std::size_t i) {
    int ovf = 0;
    for (int m = 0; m < 5; ++m) ovf += track_d1.edge_overflow(i, m);
    return ovf >= 3;
  });
  // (b) via-dominated: high via pressure, little edge overflow.
  const auto cell_b = pick(scores_d1, des_perf_1.samples, [&](std::size_t i) {
    int ovf = 0;
    for (int m = 0; m < 5; ++m) ovf += track_d1.edge_overflow(i, m);
    double via = 0.0;
    for (int v = 0; v < 4; ++v) {
      via = std::max(via, track_d1.via_pressure(i, v));
    }
    return ovf <= 1 && via > 0.85;
  });
  // (c) macro-adjacent in mult_a.
  const auto cell_c = pick(scores_ma, mult_a.samples, [&](std::size_t i) {
    return agg_ma[i].macro_adjacent;
  });

  if (cell_a >= 0) {
    explain_hotspot('a', "highly congested area (edge overflows)", des_perf_1,
                    static_cast<std::size_t>(cell_a), forest, explainer);
  }
  if (cell_b >= 0) {
    explain_hotspot('b', "moderate edges, crowded vias", des_perf_1,
                    static_cast<std::size_t>(cell_b), forest, explainer);
  }
  if (cell_c >= 0) {
    explain_hotspot('c', "hotspot near a macro", mult_a,
                    static_cast<std::size_t>(cell_c), forest, explainer);
  }

  // ---- aggregate explanation latency (the Section IV-B runtime claim) -----
  std::vector<std::size_t> hotspot_rows;
  for (std::size_t i = 0; i < scores_d1.size() && hotspot_rows.size() < 10;
       ++i) {
    if (scores_d1[i] > 0.3) hotspot_rows.push_back(i);
  }
  if (!hotspot_rows.empty()) {
    const Dataset hotspots = des_perf_1.samples.subset(hotspot_rows);
    Stopwatch batch;
    (void)explainer.shap_values_batch(hotspots);
    std::cout << "\nmean batched explanation latency over "
              << hotspots.n_rows() << " predicted hotspots: "
              << fmt_fixed(batch.seconds() /
                               static_cast<double>(hotspots.n_rows()), 3)
              << " s/sample\n";
  }

  obs::RunReportOptions report;
  report.tool = "bench_fig3_fig4";
  obs::write_default_run_report(report);
  return 0;
}
