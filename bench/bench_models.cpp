// Micro-benchmarks behind Table II's cost rows: single-sample prediction
// latency and training throughput for each model class on 387-feature data.
// The paper's headline cost contrast — SVM-RBF needs ~110x the prediction
// operations of RF — shows up directly in the per-sample latencies here.

#include <benchmark/benchmark.h>

#include "baselines/neural_net.hpp"
#include "baselines/rusboost.hpp"
#include "baselines/svm_rbf.hpp"
#include "core/random_forest.hpp"
#include "obs_report.hpp"
#include "util/rng.hpp"

namespace drcshap {
namespace {

Dataset make_data(std::size_t n_rows, std::uint64_t seed) {
  Dataset d(387);
  Rng rng(seed);
  std::vector<float> x(387);
  for (std::size_t i = 0; i < n_rows; ++i) {
    for (auto& v : x) v = static_cast<float>(rng.uniform());
    const double danger = 2.0 * x[5] + 1.5 * x[17] +
                          (x[5] > 0.7 && x[42] > 0.5 ? 1.5 : 0.0) +
                          0.6 * rng.normal();
    d.append_row(x, danger > 2.6 ? 1 : 0, 0);
  }
  return d;
}

const Dataset& shared_data() {
  static const Dataset data = make_data(6000, 21);
  return data;
}

// ------------------------------------------------------------- prediction

void BM_Predict_RF(benchmark::State& state) {
  RandomForestOptions options;
  options.n_trees = static_cast<int>(state.range(0));
  options.n_threads = 1;
  RandomForestClassifier model(options);
  model.fit(shared_data());
  const auto x = shared_data().row(0);
  for (auto _ : state) benchmark::DoNotOptimize(model.predict_proba(x));
  state.counters["pred_ops"] = static_cast<double>(model.prediction_ops());
}
BENCHMARK(BM_Predict_RF)->Arg(150)->Arg(500)->Unit(benchmark::kMicrosecond);

void BM_Predict_SVM(benchmark::State& state) {
  SvmRbfOptions options;
  options.max_training_samples = static_cast<std::size_t>(state.range(0));
  SvmRbfClassifier model(options);
  model.fit(shared_data());
  const auto x = shared_data().row(0);
  for (auto _ : state) benchmark::DoNotOptimize(model.predict_proba(x));
  state.counters["pred_ops"] = static_cast<double>(model.prediction_ops());
  state.counters["n_sv"] = static_cast<double>(model.n_support_vectors());
}
BENCHMARK(BM_Predict_SVM)->Arg(1000)->Arg(2000)->Unit(benchmark::kMicrosecond);

void BM_Predict_RUSBoost(benchmark::State& state) {
  RusBoostClassifier model;
  model.fit(shared_data());
  const auto x = shared_data().row(0);
  for (auto _ : state) benchmark::DoNotOptimize(model.predict_proba(x));
  state.counters["pred_ops"] = static_cast<double>(model.prediction_ops());
}
BENCHMARK(BM_Predict_RUSBoost)->Unit(benchmark::kMicrosecond);

void BM_Predict_NN(benchmark::State& state) {
  NeuralNetOptions options;
  options.hidden_sizes = state.range(0) == 1 ? std::vector<int>{40}
                                             : std::vector<int>{40, 10};
  options.epochs = 3;
  NeuralNetClassifier model(options);
  model.fit(shared_data());
  const auto x = shared_data().row(0);
  for (auto _ : state) benchmark::DoNotOptimize(model.predict_proba(x));
  state.counters["pred_ops"] = static_cast<double>(model.prediction_ops());
}
BENCHMARK(BM_Predict_NN)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

// --------------------------------------------------------------- training

void BM_Fit_RF(benchmark::State& state) {
  RandomForestOptions options;
  options.n_trees = static_cast<int>(state.range(0));
  options.n_threads = 1;
  for (auto _ : state) {
    RandomForestClassifier model(options);
    model.fit(shared_data());
    benchmark::DoNotOptimize(model.n_parameters());
  }
}
BENCHMARK(BM_Fit_RF)->Arg(50)->Arg(150)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_Fit_SVM(benchmark::State& state) {
  SvmRbfOptions options;
  options.max_training_samples = 1500;
  for (auto _ : state) {
    SvmRbfClassifier model(options);
    model.fit(shared_data());
    benchmark::DoNotOptimize(model.n_support_vectors());
  }
}
BENCHMARK(BM_Fit_SVM)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Fit_RUSBoost(benchmark::State& state) {
  RusBoostOptions options;
  options.n_rounds = 50;
  for (auto _ : state) {
    RusBoostClassifier model(options);
    model.fit(shared_data());
    benchmark::DoNotOptimize(model.n_parameters());
  }
}
BENCHMARK(BM_Fit_RUSBoost)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Fit_NN1(benchmark::State& state) {
  NeuralNetOptions options;
  options.hidden_sizes = {40};
  options.epochs = 10;
  for (auto _ : state) {
    NeuralNetClassifier model(options);
    model.fit(shared_data());
    benchmark::DoNotOptimize(model.n_parameters());
  }
}
BENCHMARK(BM_Fit_NN1)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace drcshap

int main(int argc, char** argv) {
  return drcshap::run_benchmarks_with_report(argc, argv, "bench_models");
}
