// Cost of the observability primitives themselves, to back the "<1%
// overhead when ON" contract: a counter bump / gauge set / scoped timer is
// one uncontended shard-mutex lock plus a map touch (~100 ns), and the
// stages we instrument run for milliseconds to seconds, so instrumentation
// is 4-6 orders of magnitude below the work it measures. The instrumented
// parallel_for case exercises the per-thread shard path under the same
// pool the SHAP batch engine uses. With -DDRCSHAP_OBS=OFF every primitive
// compiles to nothing and these benches measure an empty loop.

#include <benchmark/benchmark.h>

#include "obs_report.hpp"
#include "util/thread_pool.hpp"

namespace drcshap {
namespace {

void BM_CounterAdd(benchmark::State& state) {
  for (auto _ : state) {
    obs::counter_add("bench_obs/counter");
  }
}
BENCHMARK(BM_CounterAdd);

void BM_GaugeSet(benchmark::State& state) {
  double v = 0.0;
  for (auto _ : state) {
    obs::gauge_set("bench_obs/gauge", v);
    v += 1.0;
  }
}
BENCHMARK(BM_GaugeSet);

void BM_ScopedTimer(benchmark::State& state) {
  for (auto _ : state) {
    DRCSHAP_OBS_TIMER("bench_obs/timer");
  }
}
BENCHMARK(BM_ScopedTimer);

void BM_SnapshotMerge(benchmark::State& state) {
  // Populate a handful of distinct names first so the merge has real work.
  for (int i = 0; i < 32; ++i) {
    obs::counter_add("bench_obs/name_" + std::to_string(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::snapshot());
  }
}
BENCHMARK(BM_SnapshotMerge);

void BM_InstrumentedParallelFor(benchmark::State& state) {
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    pool.parallel_for(1024, [](std::size_t) {
      obs::counter_add("bench_obs/parallel_counter");
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_InstrumentedParallelFor)->Arg(1)->Arg(4);

}  // namespace
}  // namespace drcshap

int main(int argc, char** argv) {
  return drcshap::run_benchmarks_with_report(argc, argv, "bench_obs");
}
