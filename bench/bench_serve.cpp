// Closed-loop load generator for the drcshap_serve daemon — the serving
// analogue of the google-benchmark binaries: it drives a running daemon
// over its Unix socket, measures client-observed request latency, and
// publishes the percentiles as "bench/serve_<verb>_c<N>_<pXX>/real_time_ms"
// gauges so tools/check_bench.py can gate them against BENCH_serve.json
// exactly like the offline benches gate against BENCH_shap.json.
//
//   bench_serve --socket /tmp/serve.sock [--clients 1,8] [--requests 50]
//               [--rows 8] [--mix score|explain|both] [--warmup 5]
//               [--shutdown] [--wait-report SECONDS]
//
// Each client thread owns one connection and issues requests back-to-back
// (closed loop), so concurrency — and therefore daemon-side batching —
// scales with --clients. Replies are sanity-checked (ids route back,
// shapes match, probabilities are probabilities); byte-identity against
// the direct engines is tests/test_serve.cpp's job.
//
// With --shutdown --wait-report S the generator drains the daemon, waits
// for its per-process run report to land, and merges it into the base
// runreport.json (obs::write_run_report_merged), giving CI one document
// holding both client-side percentiles and daemon-side queue/batch stats.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "obs/run_report.hpp"
#include "serve/protocol.hpp"
#include "util/rng.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace {

using drcshap::serve::Request;
using drcshap::serve::Response;
using drcshap::serve::Verb;
using Clock = std::chrono::steady_clock;

struct Options {
  std::string socket_path;
  std::vector<std::size_t> clients = {1, 8};
  std::size_t requests = 50;
  std::uint32_t rows = 8;
  std::string mix = "both";
  std::size_t warmup = 5;
  bool send_shutdown = false;
  double wait_report_s = 0.0;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--clients N,N,...] [--requests N]\n"
               "          [--rows N] [--mix score|explain|both] [--warmup N]\n"
               "          [--shutdown] [--wait-report SECONDS]\n",
               argv0);
  return 2;
}

std::vector<std::size_t> parse_list(const std::string& text) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string item = text.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!item.empty()) out.push_back(std::strtoull(item.c_str(), nullptr, 10));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// One connected client. Fatal protocol errors throw — a load generator
/// whose daemon misbehaves should fail the run, not average it away.
class Client {
 public:
  explicit Client(const std::string& socket_path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("socket path too long: " + socket_path);
    }
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0 || ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                             sizeof(addr)) != 0) {
      throw std::runtime_error("connect " + socket_path + ": " +
                               std::strerror(errno));
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Response call(const Request& request) {
    drcshap::throw_if_error(
        drcshap::serve::write_frame(fd_, encode_request(request)));
    auto frame = drcshap::serve::read_frame(fd_);
    drcshap::throw_if_error(frame.status());
    auto response = drcshap::serve::decode_response(frame.value());
    drcshap::throw_if_error(response.status());
    if (response.value().id != request.id) {
      throw std::runtime_error("reply id " +
                               std::to_string(response.value().id) +
                               " for request " + std::to_string(request.id));
    }
    return std::move(response).value();
  }

  /// True on clean EOF — what a drained daemon does after a shutdown reply.
  bool at_eof() {
    const auto frame = drcshap::serve::read_frame(fd_);
    return !frame.ok() &&
           frame.status().code() == drcshap::StatusCode::kNotFound;
  }

 private:
  int fd_ = -1;
};

std::uint32_t fetch_n_features(const Options& options) {
  Client client(options.socket_path);
  Request request;
  request.id = 1;
  request.verb = Verb::kStats;
  const Response response = client.call(request);
  if (response.status != drcshap::StatusCode::kOk) {
    throw std::runtime_error("stats failed: " + response.message);
  }
  const auto doc = drcshap::obs::JsonValue::parse(response.text);
  return static_cast<std::uint32_t>(
      doc.at("model").at("n_features").as_number());
}

Request make_request(std::uint64_t id, Verb verb, std::uint32_t rows,
                     std::uint32_t n_features, drcshap::Rng& rng) {
  Request request;
  request.id = id;
  request.verb = verb;
  request.n_rows = rows;
  request.n_features = n_features;
  request.features.resize(std::size_t{rows} * n_features);
  for (float& value : request.features) {
    value = static_cast<float>(rng.uniform());
  }
  return request;
}

void check_reply(const Request& request, const Response& response) {
  if (response.status != drcshap::StatusCode::kOk) {
    throw std::runtime_error(std::string(verb_name(request.verb)) +
                             " reply: " + response.message);
  }
  const std::size_t expect =
      request.verb == Verb::kScore
          ? request.n_rows
          : std::size_t{request.n_rows} * request.n_features;
  if (response.n_rows != request.n_rows || response.values.size() != expect) {
    throw std::runtime_error("reply shape mismatch");
  }
  if (request.verb == Verb::kScore) {
    for (const double p : response.values) {
      if (!(p >= 0.0 && p <= 1.0)) {
        throw std::runtime_error("probability " + std::to_string(p) +
                                 " out of [0,1]");
      }
    }
  }
}

double percentile(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  std::sort(sorted_ms.begin(), sorted_ms.end());
  const double rank =
      std::ceil(p / 100.0 * static_cast<double>(sorted_ms.size()));
  const std::size_t index = static_cast<std::size_t>(std::clamp(
      rank - 1.0, 0.0, static_cast<double>(sorted_ms.size() - 1)));
  return sorted_ms[index];
}

struct SweepResult {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double rows_per_s = 0.0;
  std::size_t n_requests = 0;
};

/// Runs one (verb, client-count) combination: `n_clients` threads, each
/// with its own connection, issuing `requests` back-to-back requests.
SweepResult run_sweep(const Options& options, Verb verb,
                      std::size_t n_clients, std::uint32_t n_features) {
  std::vector<std::vector<double>> latencies(n_clients);
  std::vector<std::string> errors(n_clients);
  std::vector<std::thread> threads;
  const Clock::time_point sweep_start = Clock::now();
  for (std::size_t c = 0; c < n_clients; ++c) {
    threads.emplace_back([&, c] {
      try {
        Client client(options.socket_path);
        drcshap::Rng rng(1000 + c);
        std::uint64_t id = c * 1'000'000;
        for (std::size_t i = 0; i < options.warmup; ++i) {
          const Request request =
              make_request(++id, verb, options.rows, n_features, rng);
          check_reply(request, client.call(request));
        }
        latencies[c].reserve(options.requests);
        for (std::size_t i = 0; i < options.requests; ++i) {
          const Request request =
              make_request(++id, verb, options.rows, n_features, rng);
          const Clock::time_point start = Clock::now();
          const Response response = client.call(request);
          latencies[c].push_back(
              std::chrono::duration<double, std::milli>(Clock::now() - start)
                  .count());
          check_reply(request, response);
        }
      } catch (const std::exception& e) {
        errors[c] = e.what();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double sweep_s =
      std::chrono::duration<double>(Clock::now() - sweep_start).count();
  for (const std::string& error : errors) {
    if (!error.empty()) throw std::runtime_error("client: " + error);
  }

  std::vector<double> all;
  for (const std::vector<double>& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  SweepResult result;
  result.n_requests = all.size();
  result.p50_ms = percentile(all, 50.0);
  result.p99_ms = percentile(all, 99.0);
  result.rows_per_s =
      sweep_s > 0.0
          ? static_cast<double>(all.size()) * options.rows / sweep_s
          : 0.0;
  return result;
}

/// Final stats fetch: the daemon must be drained — every request replied,
/// queue empty, and at least one real batch formed.
int check_drained(const Options& options) {
  Client client(options.socket_path);
  Request request;
  request.id = 2;
  request.verb = Verb::kStats;
  const Response response = client.call(request);
  const auto doc = drcshap::obs::JsonValue::parse(response.text);
  const double received = doc.at("requests").at("received").as_number();
  const double replied = doc.at("requests").at("replied").as_number();
  const double depth = doc.at("queue").at("depth").as_number();
  const double batches = doc.at("batch").at("batches").as_number();
  std::printf("drain check: received=%.0f replied=%.0f queue_depth=%.0f "
              "batches=%.0f\n",
              received, replied, depth, batches);
  if (received != replied || depth != 0.0 || batches <= 0.0) {
    std::fprintf(stderr, "bench_serve: daemon not drained\n");
    return 1;
  }
  return 0;
}

int send_shutdown(const Options& options) {
  Client client(options.socket_path);
  Request request;
  request.id = 3;
  request.verb = Verb::kShutdown;
  const Response response = client.call(request);
  if (response.status != drcshap::StatusCode::kOk || !client.at_eof()) {
    std::fprintf(stderr, "bench_serve: unclean shutdown\n");
    return 1;
  }
  std::printf("shutdown: clean reply + EOF\n");
  return 0;
}

/// Base (unsuffixed) report path — where the merged document lands.
std::string base_report_path() {
  const char* env = std::getenv("DRCSHAP_RUNREPORT");
  return env != nullptr && env[0] != '\0' ? env : "runreport.json";
}

/// Waits for the daemon's per-process report to appear, then merges every
/// sibling into the base runreport.json together with our own gauges.
int merge_reports(const Options& options) {
  const std::string base = base_report_path();
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(options.wait_report_s));
  while (drcshap::obs::sibling_report_paths(base).empty() &&
         Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (drcshap::obs::sibling_report_paths(base).empty()) {
    std::fprintf(stderr, "bench_serve: no sibling report appeared in %.1fs\n",
                 options.wait_report_s);
    return 1;
  }
  drcshap::obs::RunReportOptions report;
  report.tool = "bench_serve";
  drcshap::obs::write_run_report_merged(base, report);
  std::printf("merged run report: %s\n", base.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  const auto next_arg = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: %s needs a value\n", argv[0], argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket") {
      options.socket_path = next_arg(i);
    } else if (arg == "--clients") {
      options.clients = parse_list(next_arg(i));
    } else if (arg == "--requests") {
      options.requests = std::strtoull(next_arg(i), nullptr, 10);
    } else if (arg == "--rows") {
      options.rows =
          static_cast<std::uint32_t>(std::strtoul(next_arg(i), nullptr, 10));
    } else if (arg == "--mix") {
      options.mix = next_arg(i);
    } else if (arg == "--warmup") {
      options.warmup = std::strtoull(next_arg(i), nullptr, 10);
    } else if (arg == "--shutdown") {
      options.send_shutdown = true;
    } else if (arg == "--wait-report") {
      options.wait_report_s = std::strtod(next_arg(i), nullptr);
    } else {
      return usage(argv[0]);
    }
  }
  if (options.socket_path.empty() || options.clients.empty() ||
      options.rows == 0 ||
      (options.mix != "score" && options.mix != "explain" &&
       options.mix != "both")) {
    return usage(argv[0]);
  }

  try {
    const std::uint32_t n_features = fetch_n_features(options);
    std::printf("bench_serve: %s, %u features, %u rows/request\n",
                options.socket_path.c_str(), n_features, options.rows);

    std::vector<Verb> verbs;
    if (options.mix != "explain") verbs.push_back(Verb::kScore);
    if (options.mix != "score") verbs.push_back(Verb::kExplain);

    for (const Verb verb : verbs) {
      for (const std::size_t n_clients : options.clients) {
        const SweepResult result =
            run_sweep(options, verb, n_clients, n_features);
        const std::string name = "serve_" + std::string(verb_name(verb)) +
                                 "_c" + std::to_string(n_clients);
        std::printf("%-22s requests=%-5zu p50=%8.3f ms  p99=%8.3f ms  "
                    "%10.0f rows/s\n",
                    name.c_str(), result.n_requests, result.p50_ms,
                    result.p99_ms, result.rows_per_s);
        drcshap::obs::gauge_set("bench/" + name + "_p50/real_time_ms",
                                result.p50_ms);
        drcshap::obs::gauge_set("bench/" + name + "_p99/real_time_ms",
                                result.p99_ms);
        drcshap::obs::gauge_set("bench/" + name + "/rows_per_second",
                                result.rows_per_s);
        if (verb == Verb::kExplain) {
          // Daemon-side cache traffic so a sweep's speedup is attributable:
          // cumulative across sweeps, like the daemon's own counters.
          Client stats_client(options.socket_path);
          Request stats_request;
          stats_request.id = 4;
          stats_request.verb = Verb::kStats;
          const Response stats = stats_client.call(stats_request);
          if (stats.status == drcshap::StatusCode::kOk) {
            const auto doc = drcshap::obs::JsonValue::parse(stats.text);
            const auto& cache = doc.at("explain_cache");
            std::printf("%-22s cache: enabled=%d hits=%.0f misses=%.0f "
                        "hit_rate=%.3f\n",
                        name.c_str(), cache.at("enabled").as_bool() ? 1 : 0,
                        cache.at("hits").as_number(),
                        cache.at("misses").as_number(),
                        cache.at("hit_rate").as_number());
          }
        }
      }
    }

    int rc = check_drained(options);
    if (options.send_shutdown && rc == 0) rc = send_shutdown(options);
    if (rc != 0) return rc;

    if (options.wait_report_s > 0.0) {
      if (int merge_rc = merge_reports(options); merge_rc != 0) {
        return merge_rc;
      }
    } else {
      drcshap::obs::RunReportOptions report;
      report.tool = "bench_serve";
      drcshap::obs::write_default_run_report(report);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_serve: %s\n", e.what());
    return 1;
  }
  return 0;
}
