// Micro-benchmarks for the Section IV-B runtime claims: per-sample SHAP
// tree-explainer latency as a function of ensemble size and tree depth
// (the paper reports 1.4 s/sample for its 500-tree RF on 387 features),
// batch throughput and thread scaling of the parallel engine, plus the
// plain prediction latency for comparison and the exponential brute-force
// Shapley as a scale reference.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <numeric>
#include <optional>

#include "core/brute_force_shap.hpp"
#include "core/explanation_cache.hpp"
#include "core/tree_shap.hpp"
#include "obs_report.hpp"
#include "util/rng.hpp"

namespace drcshap {
namespace {

/// Synthetic 387-feature task resembling the DRC dataset (sparse positives,
/// interactions between a few congestion-like features).
Dataset make_data(std::size_t n_rows, std::size_t n_features,
                  std::uint64_t seed) {
  Dataset d(n_features);
  Rng rng(seed);
  std::vector<float> x(n_features);
  // Wrap the driver-feature indices so few-feature variants (the brute-force
  // benches use 8/12/16 features) stay in bounds; at 387 features the
  // indices are unchanged.
  const auto f = [&](std::size_t i) -> float { return x[i % n_features]; };
  for (std::size_t i = 0; i < n_rows; ++i) {
    for (auto& v : x) v = static_cast<float>(rng.uniform());
    const double danger =
        2.0 * f(5) + 1.5 * f(17) + (f(5) > 0.7 && f(42) > 0.5 ? 1.5 : 0.0) +
        0.6 * rng.normal();
    d.append_row(x, danger > 2.6 ? 1 : 0, 0);
  }
  return d;
}

RandomForestClassifier make_forest(int n_trees, int max_depth,
                                   const Dataset& data) {
  RandomForestOptions options;
  options.n_trees = n_trees;
  options.max_depth = max_depth;
  // Parallel fit: per-tree seeds make the model thread-count independent,
  // and only prediction/SHAP latency is measured here.
  options.n_threads = 0;
  RandomForestClassifier forest(options);
  forest.fit(data);
  return forest;
}

/// The paper-scale model (500 unpruned trees, 387 features), fitted once
/// and shared by every batch/thread-scaling benchmark below.
const Dataset& paper_scale_data() {
  static const Dataset data = make_data(4000, 387, 7);
  return data;
}

const RandomForestClassifier& paper_scale_forest() {
  static const RandomForestClassifier forest =
      make_forest(500, -1, paper_scale_data());
  return forest;
}

void BM_TreeShapPerSample_Trees(benchmark::State& state) {
  const Dataset& data = paper_scale_data();
  const int n_trees = static_cast<int>(state.range(0));
  std::optional<RandomForestClassifier> own;
  if (n_trees != 500) own.emplace(make_forest(n_trees, -1, data));
  const RandomForestClassifier& forest = own ? *own : paper_scale_forest();
  const TreeShapExplainer explainer(forest);
  const auto x = data.row(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(explainer.shap_values(x));
  }
  state.counters["trees"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_TreeShapPerSample_Trees)->Arg(10)->Arg(50)->Arg(150)->Arg(500)
    ->Unit(benchmark::kMillisecond);

void BM_TreeShapPerSample_Depth(benchmark::State& state) {
  const Dataset data = make_data(4000, 387, 8);
  const RandomForestClassifier forest =
      make_forest(50, static_cast<int>(state.range(0)), data);
  const TreeShapExplainer explainer(forest);
  const auto x = data.row(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(explainer.shap_values(x));
  }
  state.counters["max_depth"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_TreeShapPerSample_Depth)->Arg(4)->Arg(8)->Arg(16)->Arg(-1)
    ->Unit(benchmark::kMillisecond);

void BM_ForestPredictPerSample(benchmark::State& state) {
  const Dataset& data = paper_scale_data();
  const int n_trees = static_cast<int>(state.range(0));
  std::optional<RandomForestClassifier> own;
  if (n_trees != 500) own.emplace(make_forest(n_trees, -1, data));
  const RandomForestClassifier& forest = own ? *own : paper_scale_forest();
  const auto x = data.row(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.predict_proba(x));
  }
}
BENCHMARK(BM_ForestPredictPerSample)->Arg(150)->Arg(500)
    ->Unit(benchmark::kMicrosecond);

// ---- batched engine: throughput and thread scaling ------------------------
// samples/sec at 1/2/4/8 threads against the paper-scale model. The batch
// result is bit-identical for every thread count (tested in
// test_tree_shap_batch.cpp); only wall time may differ.

void BM_TreeShapBatch_Threads(benchmark::State& state) {
  const Dataset& data = paper_scale_data();
  const TreeShapExplainer explainer(paper_scale_forest());
  constexpr std::size_t kBatchRows = 16;
  std::vector<std::size_t> rows(kBatchRows);
  std::iota(rows.begin(), rows.end(), 0);
  const Dataset batch = data.subset(rows);
  const auto n_threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(explainer.shap_values_batch(batch, n_threads));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kBatchRows));
  state.counters["threads"] = static_cast<double>(n_threads);
}
BENCHMARK(BM_TreeShapBatch_Threads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// ---- fast path vs reference recursion, and the explanation cache ---------
// Three serial per-row legs (1 thread, CPU-time comparable across runs):
//   SerialReference — the Algorithm-2 recursion (DRCSHAP_SHAP_FAST=0),
//                     no cache: the pre-fast-path cold baseline.
//   SerialFastCold  — the batch-amortized fast walk, no cache: the pure
//                     engine speedup on never-seen rows.
//   RepeatSweep     — the fast walk plus the explanation cache on a
//                     50%-duplicate batch whose unique rows have been
//                     served before (steady-state repeat traffic): dedupe
//                     scatters the in-batch duplicates and the cache
//                     scatters the rest, so this leg measures the full
//                     dedupe-before-compute path, not the tree walk.
// CI computes the in-run ratios between these legs (see ci.yml): the legs
// run in the same process on the same host, so the ratio is immune to
// runner-fleet drift in a way absolute gates are not.

void BM_ShapExplainSerialReference(benchmark::State& state) {
  ::setenv("DRCSHAP_SHAP_FAST", "0", 1);
  const Dataset& data = paper_scale_data();
  const TreeShapExplainer explainer(paper_scale_forest());
  const auto n_rows = static_cast<std::size_t>(state.range(0));
  std::vector<std::size_t> rows(n_rows);
  std::iota(rows.begin(), rows.end(), 0);
  const Dataset batch = data.subset(rows);
  for (auto _ : state) {
    benchmark::DoNotOptimize(explainer.shap_values_batch(batch, 1));
  }
  ::unsetenv("DRCSHAP_SHAP_FAST");
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * n_rows));
}
BENCHMARK(BM_ShapExplainSerialReference)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_ShapExplainSerialFastCold(benchmark::State& state) {
  const Dataset& data = paper_scale_data();
  const TreeShapExplainer explainer(paper_scale_forest());
  const auto n_rows = static_cast<std::size_t>(state.range(0));
  std::vector<std::size_t> rows(n_rows);
  std::iota(rows.begin(), rows.end(), 0);
  const Dataset batch = data.subset(rows);
  for (auto _ : state) {
    benchmark::DoNotOptimize(explainer.shap_values_batch(batch, 1));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * n_rows));
}
BENCHMARK(BM_ShapExplainSerialFastCold)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_ShapExplainRepeatSweep(benchmark::State& state) {
  const Dataset& data = paper_scale_data();
  TreeShapExplainer explainer(paper_scale_forest());
  const auto cache = std::make_shared<ExplanationCache>();
  explainer.set_cache(cache);
  // 50% in-batch duplicates over a previously-served unique set.
  const auto n_unique = static_cast<std::size_t>(state.range(0)) / 2;
  std::vector<std::size_t> rows(2 * n_unique);
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i % n_unique;
  const Dataset batch = data.subset(rows);
  (void)explainer.shap_values_batch(batch, 1);  // warm: serve the sweep once
  for (auto _ : state) {
    benchmark::DoNotOptimize(explainer.shap_values_batch(batch, 1));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * rows.size()));
  const ExplanationCacheStats stats = cache->stats();
  state.counters["cache_hit_rate"] = stats.hit_rate();
}
BENCHMARK(BM_ShapExplainRepeatSweep)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_ForestPredictBatch_Threads(benchmark::State& state) {
  const Dataset& data = paper_scale_data();
  // Same trees, different thread-pool width for predict_proba_all.
  RandomForestOptions options = paper_scale_forest().options();
  options.n_threads = static_cast<std::size_t>(state.range(0));
  RandomForestClassifier forest(options);
  forest.set_trees(paper_scale_forest().trees(), options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.predict_proba_all(data));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * data.n_rows()));
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ForestPredictBatch_Threads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_BruteForceShap(benchmark::State& state) {
  // Few features so the 2^k enumeration stays feasible; shows why the
  // polynomial-time tree explainer matters.
  const Dataset data = make_data(1500, static_cast<std::size_t>(state.range(0)), 10);
  DecisionTree tree;
  DecisionTreeOptions options;
  options.max_depth = 6;
  tree.fit(data, options);
  const auto x = data.row(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(brute_force_shap_values(tree, x));
  }
  state.counters["features"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_BruteForceShap)->Arg(8)->Arg(12)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_TreeShapSingleTree(benchmark::State& state) {
  const Dataset data = make_data(1500, static_cast<std::size_t>(state.range(0)), 10);
  DecisionTree tree;
  DecisionTreeOptions options;
  options.max_depth = 6;
  tree.fit(data, options);
  const auto x = data.row(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TreeShapExplainer::tree_shap_values(tree, x));
  }
  state.counters["features"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_TreeShapSingleTree)->Arg(8)->Arg(12)->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace drcshap

int main(int argc, char** argv) {
  return drcshap::run_benchmarks_with_report(argc, argv,
                                             "bench_shap_runtime");
}
