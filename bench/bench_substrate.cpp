// EDA-substrate benchmark: per-stage wall clock of the data-acquisition
// pipeline on one design — global route, g-cell aggregates, feature
// extraction, DRC oracle and the full generate->place->route->label
// pipeline — with the parallel stages at 1/2/8 shared-pool workers.
//
// Every stage is bit-identical across thread counts (the DRC oracle draws
// its per-cell RNG streams serially up front; features are slot-per-row
// writes), so the >1-thread legs measure pure scheduling. As with
// bench_e2e, wall-clock scaling requires physical cores; on the single-core
// baseline host the >1-thread legs only prove the parallel path adds no
// overhead. CI gates the 1-thread legs (fully serial, so CPU time is
// stable across runners) via tools/check_bench.py against
// BENCH_substrate.json.

#include <benchmark/benchmark.h>

#include "benchsuite/pipeline.hpp"
#include "benchsuite/suite.hpp"
#include "obs_report.hpp"
#include "util/log.hpp"

namespace drcshap {
namespace {

/// One mid-size design (400 g-cells at scale 16) with enough congestion to
/// exercise the rip-up loop; shared by all stage legs.
const BenchmarkSpec& substrate_spec() {
  static const BenchmarkSpec spec = suite_spec("fft_b");
  return spec;
}

PipelineOptions substrate_options() {
  PipelineOptions options;
  options.generator.scale = 16.0;
  return options;
}

const Design& substrate_design() {
  static const Design design = [] {
    const PipelineOptions options = substrate_options();
    NetlistSpec netlist = generate_netlist(substrate_spec(), options.generator);
    PlacerOptions placer = options.placer;
    placer.row_height = options.generator.row_height;
    placer.seed = substrate_spec().seed * 31 + 1;
    return place_design(netlist, placer);
  }();
  return design;
}

const CongestionMap& substrate_congestion() {
  static const CongestionMap congestion =
      global_route(substrate_design(), substrate_options().router).congestion;
  return congestion;
}

const std::vector<GCellAggregate>& substrate_aggregates() {
  static const std::vector<GCellAggregate> agg =
      compute_gcell_aggregates(substrate_design());
  return agg;
}

void BM_Route(benchmark::State& state) {
  const Design& design = substrate_design();
  const GlobalRouterOptions options = substrate_options().router;
  for (auto _ : state) {
    const GlobalRouteResult route = global_route(design, options);
    benchmark::DoNotOptimize(route.edge_overflow);
  }
}
BENCHMARK(BM_Route)->Arg(1)
    ->Unit(benchmark::kMillisecond)->UseRealTime()->Iterations(1);

void BM_Aggregates(benchmark::State& state) {
  const Design& design = substrate_design();
  for (auto _ : state) {
    const std::vector<GCellAggregate> agg = compute_gcell_aggregates(design);
    benchmark::DoNotOptimize(agg.size());
  }
}
BENCHMARK(BM_Aggregates)->Arg(1)
    ->Unit(benchmark::kMillisecond)->UseRealTime()->Iterations(1);

void BM_Features(benchmark::State& state) {
  const auto n_threads = static_cast<std::size_t>(state.range(0));
  const FeatureExtractor extractor(substrate_design(), substrate_congestion(),
                                   substrate_aggregates());
  for (auto _ : state) {
    const std::vector<float> matrix = extractor.extract_all(n_threads);
    benchmark::DoNotOptimize(matrix.data());
  }
}
BENCHMARK(BM_Features)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime()->Iterations(1);

void BM_Drc(benchmark::State& state) {
  const auto n_threads = static_cast<std::size_t>(state.range(0));
  const DrcOracleOptions options = substrate_options().drc;
  for (auto _ : state) {
    const DrcReport report =
        run_drc_oracle(substrate_design(), substrate_congestion(),
                       substrate_aggregates(), options, n_threads);
    benchmark::DoNotOptimize(report.n_hotspots);
  }
}
BENCHMARK(BM_Drc)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime()->Iterations(1);

void BM_Pipeline(benchmark::State& state) {
  const auto n_threads = static_cast<std::size_t>(state.range(0));
  PipelineOptions options = substrate_options();
  options.n_threads = n_threads;
  for (auto _ : state) {
    const DesignRun run = run_pipeline(substrate_spec(), options);
    benchmark::DoNotOptimize(run.samples.n_rows());
  }
}
BENCHMARK(BM_Pipeline)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime()->Iterations(1);

}  // namespace
}  // namespace drcshap

int main(int argc, char** argv) {
  drcshap::set_log_level(drcshap::LogLevel::kWarn);
  return drcshap::run_benchmarks_with_report(argc, argv, "bench_substrate");
}
