// Reproduces Table I: the 14-design benchmark inventory with per-design
// g-cell counts, DRC hotspot counts (from our DRC oracle after the full
// placement -> global-route -> detailed-route-model pipeline), macro counts,
// cell counts, and layout sizes. The paper's values are printed alongside
// for comparison; hotspot counts are not expected to match numerically (our
// detailed router is a synthetic oracle) but the rare-positive imbalance and
// the per-design ordering should.
//
// Usage: bench_table1 [--scale N]   (default 8; 1 = the paper's full sizes)

#include <cstring>
#include <iostream>
#include <map>

#include "benchsuite/pipeline.hpp"
#include "obs/run_report.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace drcshap;

namespace {

struct PaperRow {
  int gcells;
  int hotspots;
};

// Table I of the paper.
const std::map<std::string, PaperRow> kPaper = {
    {"des_perf_b", {10000, 0}},  {"fft_2", {3249, 17}},
    {"mult_1", {8281, 154}},     {"mult_2", {8464, 193}},
    {"fft_b", {6506, 534}},      {"mult_a", {21757, 13}},
    {"mult_b", {24257, 613}},    {"bridge32_a", {3569, 56}},
    {"des_perf_1", {5476, 676}}, {"mult_c", {24213, 62}},
    {"des_perf_a", {11498, 246}}, {"fft_1", {1936, 50}},
    {"fft_a", {6491, 2}},        {"bridge32_b", {10393, 0}},
};

}  // namespace

int main(int argc, char** argv) {
  double scale = 8.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    }
  }
  PipelineOptions pipeline;
  pipeline.generator.scale = scale;

  std::cout << "=== Table I: benchmark inventory (scale 1/" << scale
            << ") ===\n\n";

  Table table({"Design", "Group", "# G-cells", "(paper)", "# DRC hotspots",
               "(paper)", "hotspot %", "# Macros", "# Cells (k)",
               "Layout (um)"});
  Stopwatch total;
  std::size_t total_gcells = 0, total_hotspots = 0;
  int last_group = 1;
  for (const BenchmarkSpec& spec : ispd2015_suite()) {
    if (spec.table_group != last_group) {
      table.add_separator();
      last_group = spec.table_group;
    }
    const DesignRun run = run_pipeline(spec, pipeline);
    const PaperRow paper = kPaper.at(spec.name);
    total_gcells += run.samples.n_rows();
    total_hotspots += run.drc.n_hotspots;
    table.add_row({spec.name, std::to_string(spec.table_group),
                   std::to_string(run.samples.n_rows()),
                   std::to_string(paper.gcells),
                   std::to_string(run.drc.n_hotspots),
                   std::to_string(paper.hotspots),
                   fmt_percent(static_cast<double>(run.drc.n_hotspots) /
                               static_cast<double>(run.samples.n_rows())),
                   std::to_string(run.design.num_macros()),
                   fmt_fixed(static_cast<double>(run.design.num_cells()) / 1000.0, 1),
                   fmt_fixed(run.design.die().width(), 0) + "x" +
                       fmt_fixed(run.design.die().height(), 0)});
  }
  std::cout << table.to_string();
  std::cout << "\ntotals: " << total_gcells << " g-cell samples, "
            << total_hotspots << " hotspots ("
            << fmt_percent(static_cast<double>(total_hotspots) /
                           static_cast<double>(total_gcells))
            << " positive rate; paper full-scale: 146090 samples, 2616 "
               "hotspots = 1.8%)\n";
  std::cout << "wall time: " << fmt_fixed(total.seconds(), 1) << " s\n";

  obs::RunReportOptions report;
  report.tool = "bench_table1";
  report.extra["scale"] = fmt_fixed(scale, 2);
  obs::write_default_run_report(report);
  return 0;
}
