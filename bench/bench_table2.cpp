// Reproduces Table II: RF versus the prior-work models (SVM-RBF, RUSBoost,
// NN-1, NN-2) under the paper's design-held-out protocol.
//
// Protocol (Section II): the 14 designs form 5 fixed groups. To evaluate a
// design, every design in its group is excluded from training; the model is
// (optionally) tuned by leave-one-group-out CV over the 4 training groups
// maximizing AUPRC, refit on all 4 groups, and scored on the held-out design
// with TPR* / Prec* (at FPR = 0.5%) and AUPRC. Designs without DRC errors
// (des_perf_b, bridge32_b) are excluded from the metric rows, as in the
// paper. The complexity rows (# parameters, # prediction ops, CPU times)
// are averaged over the 5 group models.
//
// Expected shape versus the paper: RF best on all three metric averages and
// most winning designs; SVM-RBF competitive on quality but with orders of
// magnitude more prediction ops and the longest training time; RUSBoost
// cheapest; NNs weakest.
//
// Usage: bench_table2 [--scale N] [--trees N] [--cv] [--nn-epochs N]
//                     [--svm-cap N] [--csv path]

#include <cstring>
#include <functional>
#include <iostream>
#include <map>
#include <memory>

#include "baselines/neural_net.hpp"
#include "baselines/rusboost.hpp"
#include "baselines/svm_rbf.hpp"
#include "benchsuite/pipeline.hpp"
#include "core/random_forest.hpp"
#include "ml/grid_search.hpp"
#include "ml/metrics.hpp"
#include "ml/scaler.hpp"
#include "obs/run_report.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace drcshap;

namespace {

struct Config {
  double scale = 8.0;
  int rf_trees = 300;
  bool grid_search_enabled = false;
  int nn_epochs = 15;
  std::size_t svm_cap = 3000;
  std::string csv_path;
};

struct ModelSpec {
  std::string name;
  /// Builds a model for the given hyper-parameters (empty = defaults).
  ParamModelFactory factory;
  /// Hyper-parameter grid used when --cv is on.
  std::map<std::string, std::vector<double>> grid;
};

std::vector<ModelSpec> make_model_specs(const Config& config) {
  std::vector<ModelSpec> specs;
  specs.push_back(
      {"SVM-RBF",
       [&config](const ParamSet& p) -> std::unique_ptr<BinaryClassifier> {
         SvmRbfOptions o;
         o.C = p.count("C") ? p.at("C") : 1.0;
         o.gamma = p.count("gamma") ? p.at("gamma") : 1e-3;
         o.max_training_samples = config.svm_cap;
         return std::make_unique<SvmRbfClassifier>(o);
       },
       {{"C", {1.0, 10.0}}, {"gamma", {5e-4, 1e-3, 3e-3}}}});
  specs.push_back(
      {"RUSBoost",
       [](const ParamSet& p) -> std::unique_ptr<BinaryClassifier> {
         RusBoostOptions o;
         o.n_rounds = 100;  // as in the paper
         o.tree_max_depth = p.count("depth") ? static_cast<int>(p.at("depth")) : 6;
         return std::make_unique<RusBoostClassifier>(o);
       },
       {{"depth", {4.0, 8.0}}}});
  specs.push_back(
      {"NN-1",
       [&config](const ParamSet& p) -> std::unique_ptr<BinaryClassifier> {
         NeuralNetOptions o;
         o.hidden_sizes = {40};  // [6]'s architecture, width per paper CV
         o.display_name = "NN-1";
         o.epochs = config.nn_epochs;
         o.learning_rate = p.count("lr") ? p.at("lr") : 1e-3;
         return std::make_unique<NeuralNetClassifier>(o);
       },
       {{"lr", {1e-3, 3e-3}}}});
  specs.push_back(
      {"NN-2",
       [&config](const ParamSet& p) -> std::unique_ptr<BinaryClassifier> {
         NeuralNetOptions o;
         o.hidden_sizes = {40, 10};
         o.display_name = "NN-2";
         o.epochs = config.nn_epochs;
         o.learning_rate = p.count("lr") ? p.at("lr") : 1e-3;
         return std::make_unique<NeuralNetClassifier>(o);
       },
       {{"lr", {1e-3, 3e-3}}}});
  specs.push_back(
      {"RF",
       [&config](const ParamSet& p) -> std::unique_ptr<BinaryClassifier> {
         RandomForestOptions o;
         o.n_trees = config.rf_trees;
         o.max_features = p.count("mtry") ? static_cast<int>(p.at("mtry")) : 0;
         o.min_samples_leaf =
             p.count("leaf") ? static_cast<std::size_t>(p.at("leaf")) : 1;
         o.n_threads = 1;  // measured single-core, like the CPU-time rows
         return std::make_unique<RandomForestClassifier>(o);
       },
       {{"mtry", {0.0, 40.0}}, {"leaf", {1.0, 4.0}}}});
  return specs;
}

struct DesignResult {
  double tpr = 0.0;
  double prec = 0.0;
  double auprc_value = 0.0;
  bool valid = false;
};

}  // namespace

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--scale") && i + 1 < argc) {
      config.scale = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--trees") && i + 1 < argc) {
      config.rf_trees = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--cv")) {
      config.grid_search_enabled = true;
    } else if (!std::strcmp(argv[i], "--nn-epochs") && i + 1 < argc) {
      config.nn_epochs = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--svm-cap") && i + 1 < argc) {
      config.svm_cap = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "--csv") && i + 1 < argc) {
      config.csv_path = argv[++i];
    }
  }

  std::cout << "=== Table II: model comparison (scale 1/" << config.scale
            << ", RF " << config.rf_trees << " trees, grid search "
            << (config.grid_search_enabled ? "on" : "off") << ") ===\n\n";

  // ---- data acquisition ---------------------------------------------------
  PipelineOptions pipeline;
  pipeline.generator.scale = config.scale;
  const auto& suite = ispd2015_suite();
  const Dataset all = build_suite_dataset(suite, pipeline);

  // Scale once on the full corpus (the paper feeds every model "the 387
  // normalized features"); per-protocol purists can re-fit per split, which
  // changes nothing for trees and negligibly for the others.
  Dataset normalized = all;
  StandardScaler scaler;
  scaler.fit_transform(normalized);

  const std::vector<ModelSpec> model_specs = make_model_specs(config);
  const std::size_t n_models = model_specs.size();

  // results[model][design]
  std::vector<std::vector<DesignResult>> results(
      n_models, std::vector<DesignResult>(suite.size()));
  std::vector<double> train_seconds(n_models, 0.0);
  std::vector<double> predict_seconds_per_design(n_models, 0.0);
  std::vector<double> mean_params(n_models, 0.0);
  std::vector<double> mean_ops(n_models, 0.0);
  std::size_t evaluated_designs = 0;

  for (const int held_group : suite_groups()) {
    // Training rows: all designs NOT in the held-out table group; the row
    // groups are design indices, so translate.
    std::vector<int> train_designs, test_designs;
    for (std::size_t d = 0; d < suite.size(); ++d) {
      (suite[d].table_group == held_group ? test_designs : train_designs)
          .push_back(static_cast<int>(d));
    }
    Dataset train = normalized.subset(normalized.rows_in_groups(train_designs));
    // For grouped CV the folds are the 4 training *table groups*: re-group
    // (only materialized when grid search actually runs).
    Dataset cv_view(train.n_features(), train.feature_names());
    if (config.grid_search_enabled) {
      for (std::size_t i = 0; i < train.n_rows(); ++i) {
        cv_view.append_row(
            train.row(i), train.label(i),
            suite[static_cast<std::size_t>(train.group(i))].table_group);
      }
    }
    std::vector<int> cv_groups;
    for (const int g : suite_groups()) {
      if (g != held_group) cv_groups.push_back(g);
    }

    for (std::size_t m = 0; m < n_models; ++m) {
      const ModelSpec& spec = model_specs[m];
      ParamSet best_params;
      if (config.grid_search_enabled) {
        const GridSearchResult search =
            grid_search(spec.factory, cv_view, cv_groups, spec.grid);
        best_params = search.best_params;
        log_info("group ", held_group, " ", spec.name, ": best ",
                 to_string(best_params), " (CV AUPRC ",
                 fmt_fixed(search.best_score), ")");
      }
      auto model = spec.factory(best_params);
      Stopwatch fit_timer;
      model->fit(train);
      train_seconds[m] += fit_timer.seconds();
      mean_params[m] += static_cast<double>(model->n_parameters()) / 5.0;
      mean_ops[m] += static_cast<double>(model->prediction_ops()) / 5.0;

      for (const int d : test_designs) {
        const std::vector<int> one{d};
        const Dataset test = normalized.subset(normalized.rows_in_groups(one));
        Stopwatch pred_timer;
        const std::vector<double> scores = model->predict_proba_all(test);
        predict_seconds_per_design[m] += pred_timer.seconds();
        if (test.n_positives() == 0 ||
            suite[static_cast<std::size_t>(d)].expect_zero_hotspots) {
          continue;  // metrics undefined / excluded as in the paper
        }
        const OperatingPoint op = operating_point_at_fpr(scores, test.labels());
        results[m][static_cast<std::size_t>(d)] = {
            op.tpr, op.precision, auprc(scores, test.labels()), true};
      }
      log_info("group ", held_group, " ", spec.name, " done (fit ",
               fmt_fixed(fit_timer.seconds(), 1), "s)");
    }
    for (const int d : test_designs) {
      const std::vector<int> one{d};
      if (!suite[static_cast<std::size_t>(d)].expect_zero_hotspots &&
          normalized.subset(normalized.rows_in_groups(one)).n_positives() > 0) {
        ++evaluated_designs;
      }
    }
  }

  // ---- render -------------------------------------------------------------
  std::vector<std::string> header{"Design"};
  for (const ModelSpec& spec : model_specs) {
    header.push_back(spec.name + " TPR*");
    header.push_back(spec.name + " Prec*");
    header.push_back(spec.name + " Aprc");
  }
  Table table(header);

  std::vector<double> sum_tpr(n_models, 0.0), sum_prec(n_models, 0.0),
      sum_auprc(n_models, 0.0);
  std::vector<int> wins_tpr(n_models, 0), wins_prec(n_models, 0),
      wins_auprc(n_models, 0);
  std::size_t n_valid = 0;

  for (std::size_t d = 0; d < suite.size(); ++d) {
    if (!results.back()[d].valid) continue;  // zero-positive design
    ++n_valid;
    std::vector<std::string> row{suite[d].name};
    double best_tpr = -1, best_prec = -1, best_auprc = -1;
    for (std::size_t m = 0; m < n_models; ++m) {
      best_tpr = std::max(best_tpr, results[m][d].tpr);
      best_prec = std::max(best_prec, results[m][d].prec);
      best_auprc = std::max(best_auprc, results[m][d].auprc_value);
    }
    for (std::size_t m = 0; m < n_models; ++m) {
      const DesignResult& r = results[m][d];
      auto mark = [](double v, double best) {
        return fmt_fixed(v) + (v >= best - 1e-12 ? "*" : "");
      };
      row.push_back(mark(r.tpr, best_tpr));
      row.push_back(mark(r.prec, best_prec));
      row.push_back(mark(r.auprc_value, best_auprc));
      sum_tpr[m] += r.tpr;
      sum_prec[m] += r.prec;
      sum_auprc[m] += r.auprc_value;
      if (r.tpr >= best_tpr - 1e-12) ++wins_tpr[m];
      if (r.prec >= best_prec - 1e-12) ++wins_prec[m];
      if (r.auprc_value >= best_auprc - 1e-12) ++wins_auprc[m];
    }
    table.add_row(row);
  }
  table.add_separator();
  {
    std::vector<std::string> avg{"Average"}, wins{"# Win. designs"},
        params{"# Model param."}, ops{"# Prediction op."},
        fit_time{"Train. CPU time"}, pred_time{"Pred. CPU time"};
    for (std::size_t m = 0; m < n_models; ++m) {
      const double n = static_cast<double>(n_valid);
      avg.push_back(fmt_fixed(sum_tpr[m] / n));
      avg.push_back(fmt_fixed(sum_prec[m] / n));
      avg.push_back(fmt_fixed(sum_auprc[m] / n));
      wins.push_back(std::to_string(wins_tpr[m]));
      wins.push_back(std::to_string(wins_prec[m]));
      wins.push_back(std::to_string(wins_auprc[m]));
      params.push_back(fmt_kilo(mean_params[m]) + "/model");
      params.push_back("");
      params.push_back("");
      ops.push_back(fmt_kilo(mean_ops[m]) + "/sample");
      ops.push_back("");
      ops.push_back("");
      fit_time.push_back(fmt_fixed(train_seconds[m] / 5.0 / 60.0, 2) + " min/model");
      fit_time.push_back("");
      fit_time.push_back("");
      pred_time.push_back(
          fmt_fixed(predict_seconds_per_design[m] / 14.0 / 60.0, 3) + " min/design");
      pred_time.push_back("");
      pred_time.push_back("");
    }
    table.add_row(avg);
    table.add_row(wins);
    table.add_separator();
    table.add_row(params);
    table.add_row(ops);
    table.add_row(fit_time);
    table.add_row(pred_time);
  }
  std::cout << "\n" << table.to_string();
  std::cout << "\n('*' marks the best model for that design/metric; " << n_valid
            << " designs evaluated, zero-hotspot designs excluded as in the "
               "paper)\n";

  if (!config.csv_path.empty()) {
    CsvWriter csv(config.csv_path);
    csv.write_row({"design", "model", "tpr_star", "prec_star", "auprc"});
    for (std::size_t d = 0; d < suite.size(); ++d) {
      for (std::size_t m = 0; m < n_models; ++m) {
        if (!results[m][d].valid) continue;
        csv.write_row({suite[d].name, model_specs[m].name,
                       fmt_fixed(results[m][d].tpr, 6),
                       fmt_fixed(results[m][d].prec, 6),
                       fmt_fixed(results[m][d].auprc_value, 6)});
      }
    }
    std::cout << "per-design results written to " << config.csv_path << "\n";
  }

  obs::RunReportOptions report;
  report.tool = "bench_table2";
  obs::write_default_run_report(report);
  return 0;
}
