#pragma once
// Shared run-report plumbing for the bench binaries. Google-benchmark
// binaries use ObsRecordingReporter + run_benchmarks_with_report() so every
// completed benchmark lands in the obs registry as gauges
// ("bench/<name>/real_time_ms", ".../cpu_time_ms", ".../items_per_second")
// next to the library's own stage timers; the emitted runreport.json is what
// tools/check_bench.py gates against BENCH_shap.json in CI. Table/figure
// binaries just call drcshap::obs::write_default_run_report() before exit.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "obs/run_report.hpp"

namespace drcshap {

class ObsRecordingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      const std::string prefix = "bench/" + run.benchmark_name();
      obs::gauge_set(prefix + "/real_time_ms",
                     to_ms(run.GetAdjustedRealTime(), run.time_unit));
      obs::gauge_set(prefix + "/cpu_time_ms",
                     to_ms(run.GetAdjustedCPUTime(), run.time_unit));
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        obs::gauge_set(prefix + "/items_per_second", items->second.value);
      }
      obs::counter_add("bench/benchmarks_run");
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

 private:
  static double to_ms(double value, benchmark::TimeUnit unit) {
    switch (unit) {
      case benchmark::kNanosecond: return value * 1e-6;
      case benchmark::kMicrosecond: return value * 1e-3;
      case benchmark::kMillisecond: return value;
      case benchmark::kSecond: return value * 1e3;
    }
    return value;
  }
};

/// Drop-in replacement for BENCHMARK_MAIN()'s body: run the registered
/// benchmarks through the recording reporter, then write the default run
/// report tagged with `tool`.
inline int run_benchmarks_with_report(int argc, char** argv,
                                      const std::string& tool) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ObsRecordingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  obs::RunReportOptions options;
  options.tool = tool;
  obs::write_default_run_report(options);
  return 0;
}

}  // namespace drcshap
