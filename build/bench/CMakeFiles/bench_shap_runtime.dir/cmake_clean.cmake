file(REMOVE_RECURSE
  "CMakeFiles/bench_shap_runtime.dir/bench_shap_runtime.cpp.o"
  "CMakeFiles/bench_shap_runtime.dir/bench_shap_runtime.cpp.o.d"
  "bench_shap_runtime"
  "bench_shap_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shap_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
