# Empty dependencies file for bench_shap_runtime.
# This may be replaced when dependencies are built.
