file(REMOVE_RECURSE
  "CMakeFiles/hotspot_explain.dir/hotspot_explain.cpp.o"
  "CMakeFiles/hotspot_explain.dir/hotspot_explain.cpp.o.d"
  "hotspot_explain"
  "hotspot_explain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_explain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
