# Empty dependencies file for hotspot_explain.
# This may be replaced when dependencies are built.
