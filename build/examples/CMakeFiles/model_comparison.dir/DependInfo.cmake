
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/model_comparison.cpp" "examples/CMakeFiles/model_comparison.dir/model_comparison.cpp.o" "gcc" "examples/CMakeFiles/model_comparison.dir/model_comparison.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/drcshap_benchsuite.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drcshap_place.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drcshap_features.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drcshap_drc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drcshap_route.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drcshap_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drcshap_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drcshap_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drcshap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drcshap_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drcshap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
