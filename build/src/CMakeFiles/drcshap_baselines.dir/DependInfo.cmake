
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/neural_net.cpp" "src/CMakeFiles/drcshap_baselines.dir/baselines/neural_net.cpp.o" "gcc" "src/CMakeFiles/drcshap_baselines.dir/baselines/neural_net.cpp.o.d"
  "/root/repo/src/baselines/rusboost.cpp" "src/CMakeFiles/drcshap_baselines.dir/baselines/rusboost.cpp.o" "gcc" "src/CMakeFiles/drcshap_baselines.dir/baselines/rusboost.cpp.o.d"
  "/root/repo/src/baselines/svm_rbf.cpp" "src/CMakeFiles/drcshap_baselines.dir/baselines/svm_rbf.cpp.o" "gcc" "src/CMakeFiles/drcshap_baselines.dir/baselines/svm_rbf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/drcshap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drcshap_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drcshap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
