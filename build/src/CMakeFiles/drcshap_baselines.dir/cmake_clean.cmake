file(REMOVE_RECURSE
  "CMakeFiles/drcshap_baselines.dir/baselines/neural_net.cpp.o"
  "CMakeFiles/drcshap_baselines.dir/baselines/neural_net.cpp.o.d"
  "CMakeFiles/drcshap_baselines.dir/baselines/rusboost.cpp.o"
  "CMakeFiles/drcshap_baselines.dir/baselines/rusboost.cpp.o.d"
  "CMakeFiles/drcshap_baselines.dir/baselines/svm_rbf.cpp.o"
  "CMakeFiles/drcshap_baselines.dir/baselines/svm_rbf.cpp.o.d"
  "libdrcshap_baselines.a"
  "libdrcshap_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drcshap_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
