file(REMOVE_RECURSE
  "libdrcshap_baselines.a"
)
