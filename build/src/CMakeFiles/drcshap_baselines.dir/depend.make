# Empty dependencies file for drcshap_baselines.
# This may be replaced when dependencies are built.
