
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchsuite/design_generator.cpp" "src/CMakeFiles/drcshap_benchsuite.dir/benchsuite/design_generator.cpp.o" "gcc" "src/CMakeFiles/drcshap_benchsuite.dir/benchsuite/design_generator.cpp.o.d"
  "/root/repo/src/benchsuite/pipeline.cpp" "src/CMakeFiles/drcshap_benchsuite.dir/benchsuite/pipeline.cpp.o" "gcc" "src/CMakeFiles/drcshap_benchsuite.dir/benchsuite/pipeline.cpp.o.d"
  "/root/repo/src/benchsuite/suite.cpp" "src/CMakeFiles/drcshap_benchsuite.dir/benchsuite/suite.cpp.o" "gcc" "src/CMakeFiles/drcshap_benchsuite.dir/benchsuite/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/drcshap_features.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drcshap_place.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drcshap_drc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drcshap_route.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drcshap_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drcshap_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drcshap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
