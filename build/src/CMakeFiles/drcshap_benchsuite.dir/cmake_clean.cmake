file(REMOVE_RECURSE
  "CMakeFiles/drcshap_benchsuite.dir/benchsuite/design_generator.cpp.o"
  "CMakeFiles/drcshap_benchsuite.dir/benchsuite/design_generator.cpp.o.d"
  "CMakeFiles/drcshap_benchsuite.dir/benchsuite/pipeline.cpp.o"
  "CMakeFiles/drcshap_benchsuite.dir/benchsuite/pipeline.cpp.o.d"
  "CMakeFiles/drcshap_benchsuite.dir/benchsuite/suite.cpp.o"
  "CMakeFiles/drcshap_benchsuite.dir/benchsuite/suite.cpp.o.d"
  "libdrcshap_benchsuite.a"
  "libdrcshap_benchsuite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drcshap_benchsuite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
