file(REMOVE_RECURSE
  "libdrcshap_benchsuite.a"
)
