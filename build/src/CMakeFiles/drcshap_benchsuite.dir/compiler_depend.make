# Empty compiler generated dependencies file for drcshap_benchsuite.
# This may be replaced when dependencies are built.
