
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/brute_force_shap.cpp" "src/CMakeFiles/drcshap_core.dir/core/brute_force_shap.cpp.o" "gcc" "src/CMakeFiles/drcshap_core.dir/core/brute_force_shap.cpp.o.d"
  "/root/repo/src/core/decision_tree.cpp" "src/CMakeFiles/drcshap_core.dir/core/decision_tree.cpp.o" "gcc" "src/CMakeFiles/drcshap_core.dir/core/decision_tree.cpp.o.d"
  "/root/repo/src/core/explanation.cpp" "src/CMakeFiles/drcshap_core.dir/core/explanation.cpp.o" "gcc" "src/CMakeFiles/drcshap_core.dir/core/explanation.cpp.o.d"
  "/root/repo/src/core/kernel_shap.cpp" "src/CMakeFiles/drcshap_core.dir/core/kernel_shap.cpp.o" "gcc" "src/CMakeFiles/drcshap_core.dir/core/kernel_shap.cpp.o.d"
  "/root/repo/src/core/model_io.cpp" "src/CMakeFiles/drcshap_core.dir/core/model_io.cpp.o" "gcc" "src/CMakeFiles/drcshap_core.dir/core/model_io.cpp.o.d"
  "/root/repo/src/core/random_forest.cpp" "src/CMakeFiles/drcshap_core.dir/core/random_forest.cpp.o" "gcc" "src/CMakeFiles/drcshap_core.dir/core/random_forest.cpp.o.d"
  "/root/repo/src/core/tree_shap.cpp" "src/CMakeFiles/drcshap_core.dir/core/tree_shap.cpp.o" "gcc" "src/CMakeFiles/drcshap_core.dir/core/tree_shap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/drcshap_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drcshap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
