file(REMOVE_RECURSE
  "CMakeFiles/drcshap_core.dir/core/brute_force_shap.cpp.o"
  "CMakeFiles/drcshap_core.dir/core/brute_force_shap.cpp.o.d"
  "CMakeFiles/drcshap_core.dir/core/decision_tree.cpp.o"
  "CMakeFiles/drcshap_core.dir/core/decision_tree.cpp.o.d"
  "CMakeFiles/drcshap_core.dir/core/explanation.cpp.o"
  "CMakeFiles/drcshap_core.dir/core/explanation.cpp.o.d"
  "CMakeFiles/drcshap_core.dir/core/kernel_shap.cpp.o"
  "CMakeFiles/drcshap_core.dir/core/kernel_shap.cpp.o.d"
  "CMakeFiles/drcshap_core.dir/core/model_io.cpp.o"
  "CMakeFiles/drcshap_core.dir/core/model_io.cpp.o.d"
  "CMakeFiles/drcshap_core.dir/core/random_forest.cpp.o"
  "CMakeFiles/drcshap_core.dir/core/random_forest.cpp.o.d"
  "CMakeFiles/drcshap_core.dir/core/tree_shap.cpp.o"
  "CMakeFiles/drcshap_core.dir/core/tree_shap.cpp.o.d"
  "libdrcshap_core.a"
  "libdrcshap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drcshap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
