file(REMOVE_RECURSE
  "libdrcshap_core.a"
)
