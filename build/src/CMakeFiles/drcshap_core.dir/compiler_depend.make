# Empty compiler generated dependencies file for drcshap_core.
# This may be replaced when dependencies are built.
