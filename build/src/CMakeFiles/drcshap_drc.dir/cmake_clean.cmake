file(REMOVE_RECURSE
  "CMakeFiles/drcshap_drc.dir/drc/drc_oracle.cpp.o"
  "CMakeFiles/drcshap_drc.dir/drc/drc_oracle.cpp.o.d"
  "CMakeFiles/drcshap_drc.dir/drc/track_model.cpp.o"
  "CMakeFiles/drcshap_drc.dir/drc/track_model.cpp.o.d"
  "libdrcshap_drc.a"
  "libdrcshap_drc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drcshap_drc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
