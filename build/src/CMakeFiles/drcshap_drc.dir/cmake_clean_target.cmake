file(REMOVE_RECURSE
  "libdrcshap_drc.a"
)
