# Empty dependencies file for drcshap_drc.
# This may be replaced when dependencies are built.
