
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/features/feature_extractor.cpp" "src/CMakeFiles/drcshap_features.dir/features/feature_extractor.cpp.o" "gcc" "src/CMakeFiles/drcshap_features.dir/features/feature_extractor.cpp.o.d"
  "/root/repo/src/features/feature_names.cpp" "src/CMakeFiles/drcshap_features.dir/features/feature_names.cpp.o" "gcc" "src/CMakeFiles/drcshap_features.dir/features/feature_names.cpp.o.d"
  "/root/repo/src/features/labeler.cpp" "src/CMakeFiles/drcshap_features.dir/features/labeler.cpp.o" "gcc" "src/CMakeFiles/drcshap_features.dir/features/labeler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/drcshap_drc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drcshap_route.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drcshap_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drcshap_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drcshap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
