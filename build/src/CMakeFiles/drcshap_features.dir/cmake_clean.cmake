file(REMOVE_RECURSE
  "CMakeFiles/drcshap_features.dir/features/feature_extractor.cpp.o"
  "CMakeFiles/drcshap_features.dir/features/feature_extractor.cpp.o.d"
  "CMakeFiles/drcshap_features.dir/features/feature_names.cpp.o"
  "CMakeFiles/drcshap_features.dir/features/feature_names.cpp.o.d"
  "CMakeFiles/drcshap_features.dir/features/labeler.cpp.o"
  "CMakeFiles/drcshap_features.dir/features/labeler.cpp.o.d"
  "libdrcshap_features.a"
  "libdrcshap_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drcshap_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
