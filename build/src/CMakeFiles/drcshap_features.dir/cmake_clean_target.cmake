file(REMOVE_RECURSE
  "libdrcshap_features.a"
)
