# Empty compiler generated dependencies file for drcshap_features.
# This may be replaced when dependencies are built.
