file(REMOVE_RECURSE
  "CMakeFiles/drcshap_geom.dir/geom/geometry.cpp.o"
  "CMakeFiles/drcshap_geom.dir/geom/geometry.cpp.o.d"
  "libdrcshap_geom.a"
  "libdrcshap_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drcshap_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
