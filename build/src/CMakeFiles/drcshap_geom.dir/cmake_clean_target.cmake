file(REMOVE_RECURSE
  "libdrcshap_geom.a"
)
