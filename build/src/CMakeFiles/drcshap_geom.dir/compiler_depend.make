# Empty compiler generated dependencies file for drcshap_geom.
# This may be replaced when dependencies are built.
