
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/cross_validation.cpp" "src/CMakeFiles/drcshap_ml.dir/ml/cross_validation.cpp.o" "gcc" "src/CMakeFiles/drcshap_ml.dir/ml/cross_validation.cpp.o.d"
  "/root/repo/src/ml/dataset.cpp" "src/CMakeFiles/drcshap_ml.dir/ml/dataset.cpp.o" "gcc" "src/CMakeFiles/drcshap_ml.dir/ml/dataset.cpp.o.d"
  "/root/repo/src/ml/grid_search.cpp" "src/CMakeFiles/drcshap_ml.dir/ml/grid_search.cpp.o" "gcc" "src/CMakeFiles/drcshap_ml.dir/ml/grid_search.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/CMakeFiles/drcshap_ml.dir/ml/metrics.cpp.o" "gcc" "src/CMakeFiles/drcshap_ml.dir/ml/metrics.cpp.o.d"
  "/root/repo/src/ml/scaler.cpp" "src/CMakeFiles/drcshap_ml.dir/ml/scaler.cpp.o" "gcc" "src/CMakeFiles/drcshap_ml.dir/ml/scaler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/drcshap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
