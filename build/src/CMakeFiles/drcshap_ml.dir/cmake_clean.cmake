file(REMOVE_RECURSE
  "CMakeFiles/drcshap_ml.dir/ml/cross_validation.cpp.o"
  "CMakeFiles/drcshap_ml.dir/ml/cross_validation.cpp.o.d"
  "CMakeFiles/drcshap_ml.dir/ml/dataset.cpp.o"
  "CMakeFiles/drcshap_ml.dir/ml/dataset.cpp.o.d"
  "CMakeFiles/drcshap_ml.dir/ml/grid_search.cpp.o"
  "CMakeFiles/drcshap_ml.dir/ml/grid_search.cpp.o.d"
  "CMakeFiles/drcshap_ml.dir/ml/metrics.cpp.o"
  "CMakeFiles/drcshap_ml.dir/ml/metrics.cpp.o.d"
  "CMakeFiles/drcshap_ml.dir/ml/scaler.cpp.o"
  "CMakeFiles/drcshap_ml.dir/ml/scaler.cpp.o.d"
  "libdrcshap_ml.a"
  "libdrcshap_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drcshap_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
