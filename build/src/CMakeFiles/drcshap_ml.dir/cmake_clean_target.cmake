file(REMOVE_RECURSE
  "libdrcshap_ml.a"
)
