# Empty compiler generated dependencies file for drcshap_ml.
# This may be replaced when dependencies are built.
