
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/def_io.cpp" "src/CMakeFiles/drcshap_netlist.dir/netlist/def_io.cpp.o" "gcc" "src/CMakeFiles/drcshap_netlist.dir/netlist/def_io.cpp.o.d"
  "/root/repo/src/netlist/design.cpp" "src/CMakeFiles/drcshap_netlist.dir/netlist/design.cpp.o" "gcc" "src/CMakeFiles/drcshap_netlist.dir/netlist/design.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/drcshap_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drcshap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
