file(REMOVE_RECURSE
  "CMakeFiles/drcshap_netlist.dir/netlist/def_io.cpp.o"
  "CMakeFiles/drcshap_netlist.dir/netlist/def_io.cpp.o.d"
  "CMakeFiles/drcshap_netlist.dir/netlist/design.cpp.o"
  "CMakeFiles/drcshap_netlist.dir/netlist/design.cpp.o.d"
  "libdrcshap_netlist.a"
  "libdrcshap_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drcshap_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
