file(REMOVE_RECURSE
  "libdrcshap_netlist.a"
)
