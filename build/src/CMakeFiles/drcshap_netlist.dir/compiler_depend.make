# Empty compiler generated dependencies file for drcshap_netlist.
# This may be replaced when dependencies are built.
