file(REMOVE_RECURSE
  "CMakeFiles/drcshap_place.dir/place/placer.cpp.o"
  "CMakeFiles/drcshap_place.dir/place/placer.cpp.o.d"
  "libdrcshap_place.a"
  "libdrcshap_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drcshap_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
