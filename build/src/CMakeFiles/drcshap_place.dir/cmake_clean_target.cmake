file(REMOVE_RECURSE
  "libdrcshap_place.a"
)
