# Empty dependencies file for drcshap_place.
# This may be replaced when dependencies are built.
