file(REMOVE_RECURSE
  "CMakeFiles/drcshap_route.dir/route/congestion.cpp.o"
  "CMakeFiles/drcshap_route.dir/route/congestion.cpp.o.d"
  "CMakeFiles/drcshap_route.dir/route/global_router.cpp.o"
  "CMakeFiles/drcshap_route.dir/route/global_router.cpp.o.d"
  "CMakeFiles/drcshap_route.dir/route/grid_graph.cpp.o"
  "CMakeFiles/drcshap_route.dir/route/grid_graph.cpp.o.d"
  "CMakeFiles/drcshap_route.dir/route/maze_router.cpp.o"
  "CMakeFiles/drcshap_route.dir/route/maze_router.cpp.o.d"
  "CMakeFiles/drcshap_route.dir/route/pattern_router.cpp.o"
  "CMakeFiles/drcshap_route.dir/route/pattern_router.cpp.o.d"
  "libdrcshap_route.a"
  "libdrcshap_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drcshap_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
