file(REMOVE_RECURSE
  "libdrcshap_route.a"
)
