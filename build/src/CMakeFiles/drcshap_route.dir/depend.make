# Empty dependencies file for drcshap_route.
# This may be replaced when dependencies are built.
