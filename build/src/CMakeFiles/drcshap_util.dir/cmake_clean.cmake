file(REMOVE_RECURSE
  "CMakeFiles/drcshap_util.dir/util/csv.cpp.o"
  "CMakeFiles/drcshap_util.dir/util/csv.cpp.o.d"
  "CMakeFiles/drcshap_util.dir/util/log.cpp.o"
  "CMakeFiles/drcshap_util.dir/util/log.cpp.o.d"
  "CMakeFiles/drcshap_util.dir/util/rng.cpp.o"
  "CMakeFiles/drcshap_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/drcshap_util.dir/util/table.cpp.o"
  "CMakeFiles/drcshap_util.dir/util/table.cpp.o.d"
  "CMakeFiles/drcshap_util.dir/util/thread_pool.cpp.o"
  "CMakeFiles/drcshap_util.dir/util/thread_pool.cpp.o.d"
  "libdrcshap_util.a"
  "libdrcshap_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drcshap_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
