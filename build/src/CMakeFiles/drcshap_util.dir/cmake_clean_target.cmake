file(REMOVE_RECURSE
  "libdrcshap_util.a"
)
