# Empty dependencies file for drcshap_util.
# This may be replaced when dependencies are built.
