
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_benchsuite.cpp" "tests/CMakeFiles/drcshap_tests.dir/test_benchsuite.cpp.o" "gcc" "tests/CMakeFiles/drcshap_tests.dir/test_benchsuite.cpp.o.d"
  "/root/repo/tests/test_congestion.cpp" "tests/CMakeFiles/drcshap_tests.dir/test_congestion.cpp.o" "gcc" "tests/CMakeFiles/drcshap_tests.dir/test_congestion.cpp.o.d"
  "/root/repo/tests/test_cv_grid.cpp" "tests/CMakeFiles/drcshap_tests.dir/test_cv_grid.cpp.o" "gcc" "tests/CMakeFiles/drcshap_tests.dir/test_cv_grid.cpp.o.d"
  "/root/repo/tests/test_dataset.cpp" "tests/CMakeFiles/drcshap_tests.dir/test_dataset.cpp.o" "gcc" "tests/CMakeFiles/drcshap_tests.dir/test_dataset.cpp.o.d"
  "/root/repo/tests/test_def_io.cpp" "tests/CMakeFiles/drcshap_tests.dir/test_def_io.cpp.o" "gcc" "tests/CMakeFiles/drcshap_tests.dir/test_def_io.cpp.o.d"
  "/root/repo/tests/test_design.cpp" "tests/CMakeFiles/drcshap_tests.dir/test_design.cpp.o" "gcc" "tests/CMakeFiles/drcshap_tests.dir/test_design.cpp.o.d"
  "/root/repo/tests/test_drc.cpp" "tests/CMakeFiles/drcshap_tests.dir/test_drc.cpp.o" "gcc" "tests/CMakeFiles/drcshap_tests.dir/test_drc.cpp.o.d"
  "/root/repo/tests/test_explanation.cpp" "tests/CMakeFiles/drcshap_tests.dir/test_explanation.cpp.o" "gcc" "tests/CMakeFiles/drcshap_tests.dir/test_explanation.cpp.o.d"
  "/root/repo/tests/test_features.cpp" "tests/CMakeFiles/drcshap_tests.dir/test_features.cpp.o" "gcc" "tests/CMakeFiles/drcshap_tests.dir/test_features.cpp.o.d"
  "/root/repo/tests/test_forest.cpp" "tests/CMakeFiles/drcshap_tests.dir/test_forest.cpp.o" "gcc" "tests/CMakeFiles/drcshap_tests.dir/test_forest.cpp.o.d"
  "/root/repo/tests/test_geometry.cpp" "tests/CMakeFiles/drcshap_tests.dir/test_geometry.cpp.o" "gcc" "tests/CMakeFiles/drcshap_tests.dir/test_geometry.cpp.o.d"
  "/root/repo/tests/test_grid_graph.cpp" "tests/CMakeFiles/drcshap_tests.dir/test_grid_graph.cpp.o" "gcc" "tests/CMakeFiles/drcshap_tests.dir/test_grid_graph.cpp.o.d"
  "/root/repo/tests/test_importance.cpp" "tests/CMakeFiles/drcshap_tests.dir/test_importance.cpp.o" "gcc" "tests/CMakeFiles/drcshap_tests.dir/test_importance.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/drcshap_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/drcshap_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_kernel_shap.cpp" "tests/CMakeFiles/drcshap_tests.dir/test_kernel_shap.cpp.o" "gcc" "tests/CMakeFiles/drcshap_tests.dir/test_kernel_shap.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/drcshap_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/drcshap_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_model_io.cpp" "tests/CMakeFiles/drcshap_tests.dir/test_model_io.cpp.o" "gcc" "tests/CMakeFiles/drcshap_tests.dir/test_model_io.cpp.o.d"
  "/root/repo/tests/test_neural_net.cpp" "tests/CMakeFiles/drcshap_tests.dir/test_neural_net.cpp.o" "gcc" "tests/CMakeFiles/drcshap_tests.dir/test_neural_net.cpp.o.d"
  "/root/repo/tests/test_placer.cpp" "tests/CMakeFiles/drcshap_tests.dir/test_placer.cpp.o" "gcc" "tests/CMakeFiles/drcshap_tests.dir/test_placer.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/drcshap_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/drcshap_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/drcshap_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/drcshap_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_routers.cpp" "tests/CMakeFiles/drcshap_tests.dir/test_routers.cpp.o" "gcc" "tests/CMakeFiles/drcshap_tests.dir/test_routers.cpp.o.d"
  "/root/repo/tests/test_rusboost.cpp" "tests/CMakeFiles/drcshap_tests.dir/test_rusboost.cpp.o" "gcc" "tests/CMakeFiles/drcshap_tests.dir/test_rusboost.cpp.o.d"
  "/root/repo/tests/test_svm.cpp" "tests/CMakeFiles/drcshap_tests.dir/test_svm.cpp.o" "gcc" "tests/CMakeFiles/drcshap_tests.dir/test_svm.cpp.o.d"
  "/root/repo/tests/test_tree.cpp" "tests/CMakeFiles/drcshap_tests.dir/test_tree.cpp.o" "gcc" "tests/CMakeFiles/drcshap_tests.dir/test_tree.cpp.o.d"
  "/root/repo/tests/test_tree_shap.cpp" "tests/CMakeFiles/drcshap_tests.dir/test_tree_shap.cpp.o" "gcc" "tests/CMakeFiles/drcshap_tests.dir/test_tree_shap.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/drcshap_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/drcshap_tests.dir/test_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/drcshap_benchsuite.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drcshap_place.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drcshap_features.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drcshap_drc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drcshap_route.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drcshap_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drcshap_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drcshap_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drcshap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drcshap_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/drcshap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
