# Empty dependencies file for drcshap_tests.
# This may be replaced when dependencies are built.
