// Runs placement + global routing on one Table-I design and renders ASCII
// congestion heat maps per metal layer plus overflow statistics — the
// visual substrate behind the paper's Fig. 2 / Fig. 3 congestion views.
//
// Usage: congestion_map [design_name] [scale]
//   design_name  one of the Table I names (default fft_b)
//   scale        down-scaling factor >= 1 (default 8)

#include <cstdlib>
#include <iostream>

#include "benchsuite/pipeline.hpp"
#include "util/table.hpp"

using namespace drcshap;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "fft_b";
  const double scale = argc > 2 ? std::atof(argv[2]) : 8.0;

  PipelineOptions pipeline;
  pipeline.generator.scale = scale;
  const DesignRun run = run_pipeline(suite_spec(name), pipeline);

  std::cout << "design " << name << " (scale 1/" << scale << "): "
            << run.design.num_cells() << " cells, "
            << run.design.num_nets() << " nets, grid "
            << run.design.grid().nx() << "x" << run.design.grid().ny()
            << "\n";
  std::cout << "total edge overflow: " << run.edge_overflow
            << ", via overflow: " << run.via_overflow << "\n\n";

  // Per-layer aggregate load/capacity (mean utilization).
  const std::size_t nx = run.congestion.nx(), ny = run.congestion.ny();
  for (int m = 0; m < run.congestion.num_metal_layers(); ++m) {
    long load = 0, cap = 0;
    for (std::size_t r = 0; r < ny; ++r) {
      for (std::size_t c = 0; c < nx; ++c) {
        const std::size_t cell = r * nx + c;
        if (Technology::is_horizontal(m) && c + 1 < nx) {
          load += run.congestion.edge_load(m, cell, cell + 1);
          cap += run.congestion.edge_capacity(m, cell, cell + 1);
        } else if (!Technology::is_horizontal(m) && r + 1 < ny) {
          load += run.congestion.edge_load(m, cell, cell + nx);
          cap += run.congestion.edge_capacity(m, cell, cell + nx);
        }
      }
    }
    std::cout << Technology::metal_name(m) << ": load " << load << " / cap "
              << cap << " (util "
              << fmt_percent(cap > 0 ? static_cast<double>(load) / cap : 0.0)
              << ")\n";
  }
  for (int v = 0; v < run.congestion.num_via_layers(); ++v) {
    long load = 0, cap = 0;
    for (std::size_t cell = 0; cell < run.congestion.num_cells(); ++cell) {
      load += run.congestion.via_load(v, cell);
      cap += run.congestion.via_capacity(v, cell);
    }
    std::cout << Technology::via_name(v) << ": load " << load << " / cap "
              << cap << " (util "
              << fmt_percent(cap > 0 ? static_cast<double>(load) / cap : 0.0)
              << ")\n";
  }
  std::cout << "\n";
  for (int m = 0; m < run.congestion.num_metal_layers(); ++m) {
    std::cout << "--- " << Technology::metal_name(m)
              << " edge utilization ('.' cold .. '#' overflow) ---\n"
              << run.congestion.ascii_heatmap(m) << "\n";
  }

  std::cout << "DRC hotspots: " << run.drc.n_hotspots << " g-cells, "
            << run.drc.violations.size() << " violations\n";
  // Violation type histogram.
  Table table({"violation type", "count"});
  for (const DrcErrorType type :
       {DrcErrorType::kShort, DrcErrorType::kEndOfLineSpacing,
        DrcErrorType::kDifferentNetSpacing, DrcErrorType::kViaEnclosure}) {
    std::size_t count = 0;
    for (const DrcViolation& v : run.drc.violations) {
      if (v.type == type) ++count;
    }
    table.add_row({to_string(type), std::to_string(count)});
  }
  std::cout << table.to_string();
  return 0;
}
