// Global feature importance via SHAP: trains a Random Forest on two design
// groups and ranks the 387 features by mean |SHAP value| over a sample of
// held-out g-cells — the summary view that complements the paper's
// per-hotspot Fig. 4 explanations. Also aggregates the importance by
// feature block (placement / edge congestion / via congestion) and by
// window position (central cell vs neighbors).
//
// Usage: feature_importance [scale]

#include <cstdlib>
#include <iostream>

#include "benchsuite/pipeline.hpp"
#include "core/explanation.hpp"
#include "core/tree_shap.hpp"
#include "util/table.hpp"

using namespace drcshap;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 8.0;
  PipelineOptions pipeline;
  pipeline.generator.scale = scale;

  Dataset train(FeatureSchema::kNumFeatures, FeatureSchema::names());
  for (const BenchmarkSpec& spec : ispd2015_suite()) {
    if (spec.table_group == 1 || spec.table_group == 3) {
      train.append(run_pipeline(spec, pipeline).samples);
    }
  }
  const Dataset test =
      run_pipeline(suite_spec("des_perf_1"), pipeline).samples;

  RandomForestOptions options;
  options.n_trees = 120;
  RandomForestClassifier forest(options);
  forest.fit(train);
  const TreeShapExplainer explainer(forest);

  const std::vector<double> importance =
      mean_abs_shap(explainer, test, /*max_rows=*/200);

  // Top 15 features.
  std::vector<std::size_t> order(importance.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return importance[a] > importance[b];
  });
  Table top({"rank", "feature", "mean |SHAP|"});
  for (std::size_t r = 0; r < 15; ++r) {
    top.add_row({std::to_string(r + 1), FeatureSchema::names()[order[r]],
                 fmt_fixed(importance[order[r]], 5)});
  }
  std::cout << "=== global feature importance on held-out des_perf_1 ===\n"
            << top.to_string();

  // By block.
  double placement = 0.0, edges = 0.0, vias = 0.0;
  for (std::size_t f = 0; f < importance.size(); ++f) {
    (f < 99 ? placement : f < 279 ? edges : vias) += importance[f];
  }
  Table blocks({"feature block", "total mean |SHAP|"});
  blocks.add_row({"placement (99 features)", fmt_fixed(placement, 4)});
  blocks.add_row({"edge congestion (180)", fmt_fixed(edges, 4)});
  blocks.add_row({"via congestion (108)", fmt_fixed(vias, 4)});
  std::cout << "\n" << blocks.to_string();

  // Central cell vs neighborhood.
  double central = 0.0, neighbors = 0.0;
  const auto& names = FeatureSchema::names();
  for (std::size_t f = 0; f < importance.size(); ++f) {
    const std::string& n = names[f];
    const bool is_central =
        (n.size() > 2 && n.substr(n.size() - 2) == "_o") ||
        n.find("_4V") != std::string::npos || n.find("_6H") != std::string::npos ||
        n.find("_7H") != std::string::npos || n.find("_9V") != std::string::npos;
    (is_central ? central : neighbors) += importance[f];
  }
  Table window({"window part", "total mean |SHAP|"});
  window.add_row({"central g-cell (+ incident edges)", fmt_fixed(central, 4)});
  window.add_row({"neighboring g-cells", fmt_fixed(neighbors, 4)});
  std::cout << "\n" << window.to_string();
  return 0;
}
