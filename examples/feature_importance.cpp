// Global feature importance via SHAP: trains a Random Forest on two design
// groups and ranks the 387 features by mean |SHAP value| over a sample of
// held-out g-cells — the summary view that complements the paper's
// per-hotspot Fig. 4 explanations. Also aggregates the importance by
// feature block (placement / edge congestion / via congestion) and by
// window position (central cell vs neighbors).
//
// Usage: feature_importance [scale] [--engine auto|exact|compiled]
//                            [--explain-cache on|off]

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "benchsuite/pipeline.hpp"
#include "core/explanation.hpp"
#include "core/tree_shap.hpp"
#include "util/table.hpp"

using namespace drcshap;

namespace {

int usage() {
  std::cerr << "usage: feature_importance [scale]\n"
               "         [--engine auto|exact|compiled]  SHAP traversal "
               "engine\n"
               "         [--explain-cache on|off]        explanation cache "
               "(default: $DRCSHAP_EXPLAIN_CACHE)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 8.0;
  ForestEngine engine = ForestEngine::kAuto;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--engine" && i + 1 < argc) {
      const std::string name = argv[++i];
      if (name == "auto") engine = ForestEngine::kAuto;
      else if (name == "exact") engine = ForestEngine::kExact;
      else if (name == "compiled") engine = ForestEngine::kCompiled;
      else return usage();
    } else if (arg == "--explain-cache" && i + 1 < argc) {
      // Flag form of $DRCSHAP_EXPLAIN_CACHE (re-read per explain call).
      const std::string name = argv[++i];
      if (name == "on") ::setenv("DRCSHAP_EXPLAIN_CACHE", "1", 1);
      else if (name == "off") ::setenv("DRCSHAP_EXPLAIN_CACHE", "0", 1);
      else return usage();
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else if (!arg.empty() && arg[0] != '-') {
      scale = std::atof(arg.c_str());
    } else {
      return usage();
    }
  }
  PipelineOptions pipeline;
  pipeline.generator.scale = scale;

  Dataset train(FeatureSchema::kNumFeatures, FeatureSchema::names());
  for (const BenchmarkSpec& spec : ispd2015_suite()) {
    if (spec.table_group == 1 || spec.table_group == 3) {
      train.append(run_pipeline(spec, pipeline).samples);
    }
  }
  const Dataset test =
      run_pipeline(suite_spec("des_perf_1"), pipeline).samples;

  RandomForestOptions options;
  options.n_trees = 120;
  RandomForestClassifier forest(options);
  forest.fit(train);
  TreeShapExplainer explainer(forest);
  explainer.set_engine(engine);

  // Streaming global summary over a sample of held-out rows: mean |SHAP|
  // plus sign statistics, accumulated in O(n_features) memory.
  std::vector<std::size_t> probe_rows(std::min<std::size_t>(test.n_rows(), 200));
  for (std::size_t i = 0; i < probe_rows.size(); ++i) probe_rows[i] = i;
  const Dataset probe = test.subset(probe_rows);
  const GlobalShapSummary summary = global_shap_summary(explainer, probe);
  const std::vector<double> importance = summary.mean_abs_all();

  Table top({"rank", "feature", "mean |SHAP|", "mean SHAP", "pos %"});
  const std::vector<std::size_t> order = summary.top_features(15);
  for (std::size_t r = 0; r < order.size(); ++r) {
    top.add_row({std::to_string(r + 1), FeatureSchema::names()[order[r]],
                 fmt_fixed(summary.mean_abs(order[r]), 5),
                 fmt_fixed(summary.mean_signed(order[r]), 5),
                 fmt_fixed(summary.positive_fraction(order[r]) * 100.0, 1)});
  }
  std::cout << "=== global feature importance on held-out des_perf_1 ===\n"
            << top.to_string();

  // Cross-check the SHAP ranking against split-improvement importance:
  // the classic (biased) training-data MDI and the Loecher-style debiased
  // variant evaluated on the held-out probe rows.
  const std::vector<double> mdi = split_improvement_importance(forest.flat());
  const std::vector<double> mdi_debiased =
      debiased_split_importance(forest.flat(), probe);
  Table agreement({"importance pair", "Spearman rank corr"});
  agreement.add_row({"mean |SHAP| vs split improvement (train MDI)",
                     fmt_fixed(rank_correlation(importance, mdi), 3)});
  agreement.add_row({"mean |SHAP| vs debiased split improvement",
                     fmt_fixed(rank_correlation(importance, mdi_debiased), 3)});
  agreement.add_row({"train MDI vs debiased split improvement",
                     fmt_fixed(rank_correlation(mdi, mdi_debiased), 3)});
  std::cout << "\n" << agreement.to_string();

  // By block.
  double placement = 0.0, edges = 0.0, vias = 0.0;
  for (std::size_t f = 0; f < importance.size(); ++f) {
    (f < 99 ? placement : f < 279 ? edges : vias) += importance[f];
  }
  Table blocks({"feature block", "total mean |SHAP|"});
  blocks.add_row({"placement (99 features)", fmt_fixed(placement, 4)});
  blocks.add_row({"edge congestion (180)", fmt_fixed(edges, 4)});
  blocks.add_row({"via congestion (108)", fmt_fixed(vias, 4)});
  std::cout << "\n" << blocks.to_string();

  // Central cell vs neighborhood.
  double central = 0.0, neighbors = 0.0;
  const auto& names = FeatureSchema::names();
  for (std::size_t f = 0; f < importance.size(); ++f) {
    const std::string& n = names[f];
    const bool is_central =
        (n.size() > 2 && n.substr(n.size() - 2) == "_o") ||
        n.find("_4V") != std::string::npos || n.find("_6H") != std::string::npos ||
        n.find("_7H") != std::string::npos || n.find("_9V") != std::string::npos;
    (is_central ? central : neighbors) += importance[f];
  }
  Table window({"window part", "total mean |SHAP|"});
  window.add_row({"central g-cell (+ incident edges)", fmt_fixed(central, 4)});
  window.add_row({"neighboring g-cells", fmt_fixed(neighbors, 4)});
  std::cout << "\n" << window.to_string();
  return 0;
}
