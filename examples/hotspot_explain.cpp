// The Fig. 3 / Fig. 4 workflow: train a Random Forest on several designs,
// predict hotspots on a held-out design, pick archetypal predicted hotspots
// (edge-congestion-driven, via-congestion-driven, macro-adjacent), print
// their SHAP force-plot explanations, and cross-check each explanation
// against the "actual" DRC errors the oracle produced there — which are, as
// in the paper, not available at prediction/explanation time.
//
// Usage: hotspot_explain [test_design] [scale]
//                        [--engine auto|exact|compiled]
//                        [--explain-cache on|off]

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "benchsuite/pipeline.hpp"
#include "core/explanation.hpp"
#include "core/tree_shap.hpp"
#include "features/labeler.hpp"
#include "util/table.hpp"

using namespace drcshap;

namespace {

void describe_actual_errors(const DesignRun& run, std::size_t cell) {
  const auto errors =
      violations_in_gcell(run.design.grid(), cell, run.drc.violations);
  std::cout << "  actual DRC errors after detailed routing (" << errors.size()
            << "):\n";
  for (const DrcViolation& v : errors) {
    std::cout << "    - " << to_string(v.type) << " in "
              << Technology::metal_name(v.metal_layer) << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string test_name = "des_perf_1";
  double scale = 8.0;
  ForestEngine engine = ForestEngine::kAuto;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--engine" && i + 1 < argc) {
      const std::string name = argv[++i];
      if (name == "auto") engine = ForestEngine::kAuto;
      else if (name == "exact") engine = ForestEngine::kExact;
      else if (name == "compiled") engine = ForestEngine::kCompiled;
      else { std::cerr << "unknown engine " << name << "\n"; return 2; }
    } else if (arg == "--explain-cache" && i + 1 < argc) {
      // Flag form of $DRCSHAP_EXPLAIN_CACHE (re-read per explain call).
      const std::string name = argv[++i];
      if (name == "on") ::setenv("DRCSHAP_EXPLAIN_CACHE", "1", 1);
      else if (name == "off") ::setenv("DRCSHAP_EXPLAIN_CACHE", "0", 1);
      else { std::cerr << "--explain-cache wants on|off\n"; return 2; }
    } else if (arg == "--help" || arg == "-h" ||
               (!arg.empty() && arg[0] == '-')) {
      std::cerr << "usage: hotspot_explain [test_design] [scale]\n"
                   "         [--engine auto|exact|compiled]\n"
                   "         [--explain-cache on|off]\n";
      return arg == "--help" || arg == "-h" ? 0 : 2;
    } else if (positional == 0) {
      test_name = arg;
      ++positional;
    } else {
      scale = std::atof(arg.c_str());
      ++positional;
    }
  }

  PipelineOptions pipeline;
  pipeline.generator.scale = scale;

  // Train on a few designs from other Table I groups.
  Dataset train(FeatureSchema::kNumFeatures, FeatureSchema::names());
  for (const char* name : {"fft_b", "mult_b", "bridge32_a", "fft_1"}) {
    if (test_name == name) continue;
    train.append(run_pipeline(suite_spec(name), pipeline).samples);
  }
  const DesignRun test_run = run_pipeline(suite_spec(test_name), pipeline);

  RandomForestOptions rf_options;
  rf_options.n_trees = 150;
  RandomForestClassifier forest(rf_options);
  forest.fit(train);
  TreeShapExplainer explainer(forest);
  explainer.set_engine(engine);

  const std::vector<double> scores =
      forest.predict_proba_all(test_run.samples);

  // Rank predicted hotspots and pick three archetypes by their dominant
  // feature block (edge congestion / via congestion / macro adjacency).
  std::vector<std::size_t> order(scores.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });

  const auto agg = compute_gcell_aggregates(test_run.design);
  const TrackModel track(test_run.design, test_run.congestion);

  auto dominant_kind = [&](std::size_t cell) {
    double edge = 0.0, via = 0.0;
    for (int m = 0; m < 5; ++m) edge += track.edge_overflow(cell, m);
    for (int v = 0; v < 4; ++v) {
      via += std::max(0.0, track.via_pressure(cell, v) - 0.75);
    }
    if (agg[cell].macro_adjacent) return 2;
    return via * 3.0 > edge ? 1 : 0;
  };

  std::array<std::ptrdiff_t, 3> picks = {-1, -1, -1};
  for (const std::size_t cell : order) {
    if (scores[cell] < 0.2) break;
    const int kind = dominant_kind(cell);
    if (picks[static_cast<std::size_t>(kind)] < 0) {
      picks[static_cast<std::size_t>(kind)] = static_cast<std::ptrdiff_t>(cell);
    }
  }
  static const char* kKindName[3] = {
      "edge-congestion-dominated", "via-congestion-dominated",
      "macro-adjacent"};

  // One batched SHAP pass over every picked cell (the three archetypes all
  // ride the thread-parallel engine in a single call).
  std::vector<std::size_t> picked_cells;
  for (const std::ptrdiff_t p : picks) {
    if (p >= 0) picked_cells.push_back(static_cast<std::size_t>(p));
  }
  const std::vector<Explanation> explanations =
      explain_batch(explainer, forest, test_run.samples.subset(picked_cells),
                    FeatureSchema::names());

  std::cout << "=== explaining predicted hotspots in " << test_name
            << " (base value " << fmt_fixed(explainer.base_value(), 4)
            << ") ===\n";
  std::size_t next_explained = 0;
  for (std::size_t k = 0; k < picks.size(); ++k) {
    if (picks[k] < 0) {
      std::cout << "\n(" << static_cast<char>('a' + k) << ") no strongly "
                << kKindName[k] << " hotspot predicted in this design\n";
      continue;
    }
    const auto cell = static_cast<std::size_t>(picks[k]);
    const Explanation& explanation = explanations[next_explained++];
    std::cout << "\n(" << static_cast<char>('a' + k) << ") g-cell " << cell
              << " [" << kKindName[k] << "], predicted "
              << fmt_fixed(scores[cell], 3) << ", actual label "
              << test_run.samples.label(cell) << "\n"
              << explanation.to_text(8);
    describe_actual_errors(test_run, cell);
  }
  return 0;
}
