// Small-scale Table II: trains RF and the four prior-work baselines on a
// couple of Table I groups and evaluates a held-out design, printing the
// paper's per-model metric triplet plus the complexity counters. The full
// protocol (all 12 designs, grid-searched hyper-parameters) lives in
// bench/bench_table2; this example is the minutes-scale version.
//
// Usage: model_comparison [scale]

#include <cstdlib>
#include <iostream>
#include <memory>

#include "baselines/neural_net.hpp"
#include "baselines/rusboost.hpp"
#include "baselines/svm_rbf.hpp"
#include "benchsuite/pipeline.hpp"
#include "core/random_forest.hpp"
#include "ml/metrics.hpp"
#include "ml/scaler.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace drcshap;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 8.0;
  PipelineOptions pipeline;
  pipeline.generator.scale = scale;

  Dataset train(FeatureSchema::kNumFeatures, FeatureSchema::names());
  for (const char* name : {"fft_2", "mult_2", "fft_b", "fft_1"}) {
    train.append(run_pipeline(suite_spec(name), pipeline).samples);
  }
  Dataset test = run_pipeline(suite_spec("bridge32_a"), pipeline).samples;

  // All models consume standardized features, as in the paper.
  StandardScaler scaler;
  scaler.fit_transform(train);
  scaler.transform(test);

  std::vector<std::unique_ptr<BinaryClassifier>> models;
  {
    RandomForestOptions rf;
    rf.n_trees = 150;
    models.push_back(std::make_unique<RandomForestClassifier>(rf));
    SvmRbfOptions svm;
    svm.C = 1.0;
    svm.gamma = 1e-3;
    models.push_back(std::make_unique<SvmRbfClassifier>(svm));
    models.push_back(std::make_unique<RusBoostClassifier>());
    NeuralNetOptions nn1;
    nn1.hidden_sizes = {40};
    nn1.display_name = "NN-1";
    nn1.epochs = 12;
    models.push_back(std::make_unique<NeuralNetClassifier>(nn1));
    NeuralNetOptions nn2;
    nn2.hidden_sizes = {40, 10};
    nn2.display_name = "NN-2";
    nn2.epochs = 12;
    models.push_back(std::make_unique<NeuralNetClassifier>(nn2));
  }

  Table table({"model", "TPR*", "Prec*", "A_prc", "params", "pred ops",
               "train s", "pred s"});
  for (const auto& model : models) {
    Stopwatch fit_timer;
    model->fit(train);
    const double fit_seconds = fit_timer.seconds();

    Stopwatch pred_timer;
    const std::vector<double> scores = model->predict_proba_all(test);
    const double pred_seconds = pred_timer.seconds();

    const OperatingPoint op = operating_point_at_fpr(scores, test.labels());
    table.add_row({model->name(), fmt_fixed(op.tpr), fmt_fixed(op.precision),
                   fmt_fixed(auprc(scores, test.labels())),
                   fmt_kilo(static_cast<double>(model->n_parameters())),
                   fmt_kilo(static_cast<double>(model->prediction_ops())),
                   fmt_fixed(fit_seconds, 1), fmt_fixed(pred_seconds, 2)});
  }
  std::cout << "\n=== model comparison on held-out design bridge32_a ===\n"
            << table.to_string();
  return 0;
}
