// Quickstart: the full explainable DRC-hotspot-prediction workflow on two
// small designs.
//
//   1. Run the data pipeline (synthesis -> placement -> global route -> DRC
//      oracle -> features) for two training designs and one test design.
//   2. Train a Random Forest on the training designs.
//   3. Evaluate on the held-out design with the paper's metrics
//      (TPR*/Prec* at FPR = 0.5%, AUPRC).
//   4. Explain the highest-scoring predicted hotspot with the SHAP tree
//      explainer.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "benchsuite/pipeline.hpp"
#include "core/explanation.hpp"
#include "core/random_forest.hpp"
#include "core/tree_shap.hpp"
#include "ml/metrics.hpp"
#include "util/table.hpp"

using namespace drcshap;

int main() {
  PipelineOptions pipeline;
  pipeline.generator.scale = 8.0;  // eighth-size designs: runs in seconds

  // 1. Data acquisition (Fig. 1 middle panel).
  std::cout << "=== generating designs (scale 1/8) ===\n";
  Dataset train(FeatureSchema::kNumFeatures, FeatureSchema::names());
  for (const char* name : {"fft_2", "fft_1"}) {
    train.append(run_pipeline(suite_spec(name), pipeline).samples);
  }
  DesignRun test_run = run_pipeline(suite_spec("bridge32_a"), pipeline);
  const Dataset& test = test_run.samples;

  std::cout << "train: " << train.n_rows() << " samples ("
            << train.n_positives() << " hotspots), test: " << test.n_rows()
            << " samples (" << test.n_positives() << " hotspots)\n";

  // 2. Train the Random Forest (Section III-A).
  RandomForestOptions rf_options;
  rf_options.n_trees = 120;
  RandomForestClassifier forest(rf_options);
  forest.fit(train);

  // 3. Evaluate with the Section III-B metrics.
  const std::vector<double> scores = forest.predict_proba_all(test);
  const OperatingPoint op = operating_point_at_fpr(scores, test.labels());
  std::cout << "\n=== prediction quality on held-out design bridge32_a ===\n"
            << "TPR*  (recall at FPR=0.5%): " << fmt_fixed(op.tpr) << "\n"
            << "Prec* (precision at same):  " << fmt_fixed(op.precision) << "\n"
            << "AUPRC:                      "
            << fmt_fixed(auprc(scores, test.labels())) << "\n";

  // 4. Explain the strongest predicted hotspot (Section III-C / Fig. 4).
  std::size_t top = 0;
  for (std::size_t i = 1; i < scores.size(); ++i) {
    if (scores[i] > scores[top]) top = i;
  }
  const TreeShapExplainer explainer(forest);
  const Explanation explanation = explain_sample(
      explainer, forest, test.row(top), FeatureSchema::names());
  std::cout << "\n=== SHAP explanation of the top predicted hotspot (g-cell "
            << top << ", actual label " << test.label(top) << ") ===\n"
            << explanation.to_text(8)
            << "additivity gap: " << explanation.additivity_gap() << "\n";
  return 0;
}
