#include "baselines/neural_net.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/log.hpp"
#include "util/rng.hpp"

namespace drcshap {

namespace {
double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }
}  // namespace

NeuralNetClassifier::NeuralNetClassifier(NeuralNetOptions options)
    : options_(std::move(options)) {
  for (const int h : options_.hidden_sizes) {
    if (h <= 0) throw std::invalid_argument("NN: hidden size must be > 0");
  }
  if (options_.epochs <= 0 || options_.batch_size <= 0) {
    throw std::invalid_argument("NN: epochs/batch_size must be > 0");
  }
}

double NeuralNetClassifier::forward(
    std::span<const float> features,
    std::vector<std::vector<double>>* activations) const {
  std::vector<double> current(features.begin(), features.end());
  if (activations) activations->clear();
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    std::vector<double> next(static_cast<std::size_t>(layer.out));
    for (int o = 0; o < layer.out; ++o) {
      const double* w = layer.weight.data() +
                        static_cast<std::size_t>(o) * static_cast<std::size_t>(layer.in);
      double z = layer.bias[static_cast<std::size_t>(o)];
      for (int i = 0; i < layer.in; ++i) {
        z += w[i] * current[static_cast<std::size_t>(i)];
      }
      const bool is_output = l + 1 == layers_.size();
      next[static_cast<std::size_t>(o)] =
          is_output ? sigmoid(z) : std::max(0.0, z);
    }
    if (activations) activations->push_back(next);
    current = std::move(next);
  }
  return current.front();
}

void NeuralNetClassifier::fit(const Dataset& data) {
  if (data.n_rows() == 0) throw std::invalid_argument("NN: empty dataset");
  const int n_features = static_cast<int>(data.n_features());
  Rng rng(options_.seed);

  // Build layer stack: hidden sizes then a single sigmoid output unit.
  layers_.clear();
  int prev = n_features;
  std::vector<int> sizes = options_.hidden_sizes;
  sizes.push_back(1);
  for (const int size : sizes) {
    Layer layer;
    layer.in = prev;
    layer.out = size;
    layer.weight.resize(static_cast<std::size_t>(prev) * static_cast<std::size_t>(size));
    layer.bias.assign(static_cast<std::size_t>(size), 0.0);
    const double scale = std::sqrt(2.0 / static_cast<double>(prev));  // He
    for (auto& w : layer.weight) w = rng.normal(0.0, scale);
    layers_.push_back(std::move(layer));
    prev = size;
  }

  const std::size_t n_pos = data.n_positives();
  positive_weight_used_ =
      options_.positive_weight > 0.0
          ? options_.positive_weight
          : std::min(50.0, static_cast<double>(data.n_rows() - n_pos) /
                               std::max<std::size_t>(1, n_pos));

  // Adam state.
  struct AdamState {
    std::vector<double> m_w, v_w, m_b, v_b;
  };
  std::vector<AdamState> adam(layers_.size());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    adam[l].m_w.assign(layers_[l].weight.size(), 0.0);
    adam[l].v_w.assign(layers_[l].weight.size(), 0.0);
    adam[l].m_b.assign(layers_[l].bias.size(), 0.0);
    adam[l].v_b.assign(layers_[l].bias.size(), 0.0);
  }
  constexpr double kBeta1 = 0.9, kBeta2 = 0.999, kEps = 1e-8;
  long step = 0;

  std::vector<std::size_t> order(data.n_rows());
  std::iota(order.begin(), order.end(), 0);

  // Gradient accumulators per batch.
  std::vector<std::vector<double>> grad_w(layers_.size()), grad_b(layers_.size());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    grad_w[l].assign(layers_[l].weight.size(), 0.0);
    grad_b[l].assign(layers_[l].bias.size(), 0.0);
  }

  std::vector<std::vector<double>> activations;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t start = 0; start < order.size();
         start += static_cast<std::size_t>(options_.batch_size)) {
      const std::size_t end = std::min(
          order.size(), start + static_cast<std::size_t>(options_.batch_size));
      const double batch_n = static_cast<double>(end - start);
      for (auto& g : grad_w) std::fill(g.begin(), g.end(), 0.0);
      for (auto& g : grad_b) std::fill(g.begin(), g.end(), 0.0);

      for (std::size_t k = start; k < end; ++k) {
        const std::size_t row = order[k];
        const auto x = data.row(row);
        const double p = forward(x, &activations);
        const double y = data.label(row) ? 1.0 : 0.0;
        const double w_sample = data.label(row) ? positive_weight_used_ : 1.0;
        const std::vector<double> x_dbl(x.begin(), x.end());

        // delta at output: d(BCE)/dz for sigmoid output = (p - y).
        std::vector<double> delta{w_sample * (p - y)};
        for (std::size_t l = layers_.size(); l-- > 0;) {
          const Layer& layer = layers_[l];
          const std::vector<double>& input = l == 0 ? x_dbl : activations[l - 1];
          for (int o = 0; o < layer.out; ++o) {
            const double d = delta[static_cast<std::size_t>(o)];
            grad_b[l][static_cast<std::size_t>(o)] += d;
            double* gw = grad_w[l].data() +
                         static_cast<std::size_t>(o) * static_cast<std::size_t>(layer.in);
            for (int i = 0; i < layer.in; ++i) {
              gw[i] += d * input[static_cast<std::size_t>(i)];
            }
          }
          if (l == 0) break;
          // Back-propagate through the previous ReLU layer.
          std::vector<double> prev_delta(
              static_cast<std::size_t>(layer.in), 0.0);
          for (int i = 0; i < layer.in; ++i) {
            if (activations[l - 1][static_cast<std::size_t>(i)] <= 0.0) continue;
            double total = 0.0;
            for (int o = 0; o < layer.out; ++o) {
              total += delta[static_cast<std::size_t>(o)] *
                       layer.weight[static_cast<std::size_t>(o) *
                                        static_cast<std::size_t>(layer.in) +
                                    static_cast<std::size_t>(i)];
            }
            prev_delta[static_cast<std::size_t>(i)] = total;
          }
          delta = std::move(prev_delta);
        }
      }

      // Adam update.
      ++step;
      const double bc1 = 1.0 - std::pow(kBeta1, static_cast<double>(step));
      const double bc2 = 1.0 - std::pow(kBeta2, static_cast<double>(step));
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        Layer& layer = layers_[l];
        for (std::size_t w = 0; w < layer.weight.size(); ++w) {
          const double g =
              grad_w[l][w] / batch_n + options_.l2 * layer.weight[w];
          adam[l].m_w[w] = kBeta1 * adam[l].m_w[w] + (1.0 - kBeta1) * g;
          adam[l].v_w[w] = kBeta2 * adam[l].v_w[w] + (1.0 - kBeta2) * g * g;
          layer.weight[w] -= options_.learning_rate *
                             (adam[l].m_w[w] / bc1) /
                             (std::sqrt(adam[l].v_w[w] / bc2) + kEps);
        }
        for (std::size_t b = 0; b < layer.bias.size(); ++b) {
          const double g = grad_b[l][b] / batch_n;
          adam[l].m_b[b] = kBeta1 * adam[l].m_b[b] + (1.0 - kBeta1) * g;
          adam[l].v_b[b] = kBeta2 * adam[l].v_b[b] + (1.0 - kBeta2) * g * g;
          layer.bias[b] -= options_.learning_rate * (adam[l].m_b[b] / bc1) /
                           (std::sqrt(adam[l].v_b[b] / bc2) + kEps);
        }
      }
    }
    log_debug(name(), " epoch ", epoch + 1, "/", options_.epochs,
              " loss ", loss(data));
  }
}

double NeuralNetClassifier::predict_proba(
    std::span<const float> features) const {
  if (layers_.empty()) throw std::logic_error("NN: not fitted");
  if (static_cast<int>(features.size()) != layers_.front().in) {
    throw std::invalid_argument("NN: feature count mismatch");
  }
  return forward(features, nullptr);
}

double NeuralNetClassifier::loss(const Dataset& data) const {
  double total = 0.0, weight_total = 0.0;
  for (std::size_t i = 0; i < data.n_rows(); ++i) {
    const double p = std::clamp(predict_proba(data.row(i)), 1e-12, 1.0 - 1e-12);
    const double y = data.label(i) ? 1.0 : 0.0;
    const double w = data.label(i) ? positive_weight_used_ : 1.0;
    total += -w * (y * std::log(p) + (1.0 - y) * std::log(1.0 - p));
    weight_total += w;
  }
  return weight_total > 0.0 ? total / weight_total : 0.0;
}

std::size_t NeuralNetClassifier::n_parameters() const {
  std::size_t params = 0;
  for (const Layer& layer : layers_) {
    params += layer.weight.size() + layer.bias.size();
  }
  return params;
}

std::size_t NeuralNetClassifier::prediction_ops() const {
  // Multiply-add pairs per weight, plus one activation per unit.
  std::size_t ops = 0;
  for (const Layer& layer : layers_) {
    ops += 2 * layer.weight.size() + layer.bias.size();
  }
  return ops;
}

}  // namespace drcshap
