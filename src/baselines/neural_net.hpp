#pragma once
// Feed-forward neural network for binary classification: ReLU hidden layers,
// sigmoid output, weighted binary cross-entropy, Adam optimizer. Configured
// as NN-1 ({40} hidden, the Tabrizi et al. [6] architecture with the paper's
// cross-validated width) or NN-2 ({40, 10}) for Table II.

#include <cstdint>
#include <vector>

#include "ml/classifier.hpp"

namespace drcshap {

struct NeuralNetOptions {
  std::vector<int> hidden_sizes = {40};
  int epochs = 30;
  int batch_size = 64;
  double learning_rate = 1e-3;
  double l2 = 1e-5;
  /// Loss weight on positive samples; 0 = auto (neg/pos ratio, capped at 50).
  double positive_weight = 0.0;
  std::uint64_t seed = 37;
  std::string display_name = "NN";
};

class NeuralNetClassifier final : public BinaryClassifier {
 public:
  explicit NeuralNetClassifier(NeuralNetOptions options = {});

  void fit(const Dataset& data) override;
  double predict_proba(std::span<const float> features) const override;

  std::size_t n_parameters() const override;
  std::size_t prediction_ops() const override;
  std::string name() const override { return options_.display_name; }

  /// Mean weighted BCE over a dataset (used by gradient tests/monitoring).
  double loss(const Dataset& data) const;

 private:
  struct Layer {
    int in = 0;
    int out = 0;
    std::vector<double> weight;  ///< out x in, row-major
    std::vector<double> bias;    ///< out
  };

  /// Forward pass; fills per-layer activations (post-nonlinearity).
  double forward(std::span<const float> features,
                 std::vector<std::vector<double>>* activations) const;

  NeuralNetOptions options_;
  std::vector<Layer> layers_;  ///< hidden layers + final 1-unit output layer
  double positive_weight_used_ = 1.0;
};

}  // namespace drcshap
