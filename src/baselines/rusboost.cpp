#include "baselines/rusboost.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/log.hpp"
#include "util/rng.hpp"

namespace drcshap {

RusBoostClassifier::RusBoostClassifier(RusBoostOptions options)
    : options_(options) {
  if (options_.n_rounds <= 0) {
    throw std::invalid_argument("RUSBoost: n_rounds must be positive");
  }
}

void RusBoostClassifier::fit(const Dataset& data) {
  if (data.n_positives() == 0 || data.n_positives() == data.n_rows()) {
    throw std::invalid_argument("RUSBoost: training data needs both classes");
  }
  const std::size_t n = data.n_rows();
  Rng rng(options_.seed);
  const BinnedMatrix binned(data, 64);

  std::vector<std::size_t> pos_rows, neg_rows;
  for (std::size_t i = 0; i < n; ++i) {
    (data.label(i) ? pos_rows : neg_rows).push_back(i);
  }

  std::vector<double> weights(n, 1.0 / static_cast<double>(n));
  trees_.clear();
  alphas_.clear();

  // Per-round weighted undersample of negatives (all positives kept).
  auto draw_round_rows = [&]() {
    const std::size_t n_neg = std::min(
        neg_rows.size(),
        static_cast<std::size_t>(
            options_.negative_ratio * static_cast<double>(pos_rows.size())) + 1);
    // Weighted sampling with replacement from the negative pool.
    std::vector<double> cumulative(neg_rows.size());
    double total = 0.0;
    for (std::size_t k = 0; k < neg_rows.size(); ++k) {
      total += weights[neg_rows[k]];
      cumulative[k] = total;
    }
    std::vector<std::size_t> rows = pos_rows;
    rows.reserve(pos_rows.size() + n_neg);
    for (std::size_t k = 0; k < n_neg; ++k) {
      const double pick = rng.uniform() * total;
      const auto it =
          std::lower_bound(cumulative.begin(), cumulative.end(), pick);
      rows.push_back(neg_rows[static_cast<std::size_t>(
          std::min<std::ptrdiff_t>(it - cumulative.begin(),
                                   static_cast<std::ptrdiff_t>(neg_rows.size()) - 1))]);
    }
    return rows;
  };

  for (int round = 0; round < options_.n_rounds; ++round) {
    DecisionTreeOptions tree_options;
    tree_options.max_depth = options_.tree_max_depth;
    tree_options.min_samples_leaf = options_.min_samples_leaf;
    tree_options.min_samples_split = options_.min_samples_leaf * 2;
    tree_options.seed = rng();

    DecisionTree tree;
    tree.fit_binned(binned, data, draw_round_rows(), tree_options);

    // Weighted error over the FULL training set, walking the round tree's
    // flat view (same leaf values as the node-struct walk, ~2x faster).
    const FlatForest round_flat(std::span<const DecisionTree>(&tree, 1));
    double err = 0.0;
    std::vector<std::int8_t> h(n);
    for (std::size_t i = 0; i < n; ++i) {
      const bool predicted_pos =
          round_flat.predict_tree(0, data.row(i).data()) >= 0.5;
      h[i] = predicted_pos ? 1 : -1;
      const bool actual_pos = data.label(i) != 0;
      if (predicted_pos != actual_pos) err += weights[i];
    }
    err = std::clamp(err, 1e-10, 1.0 - 1e-10);
    if (err >= 0.5) {
      // Unhelpful learner: skip it (weights unchanged, resample next round).
      continue;
    }
    const double alpha = 0.5 * std::log((1.0 - err) / err);

    // AdaBoost weight update + normalization.
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const int y = data.label(i) ? 1 : -1;
      weights[i] *= std::exp(-alpha * y * h[i]);
      total += weights[i];
    }
    for (auto& w : weights) w /= total;

    trees_.push_back(std::move(tree));
    alphas_.push_back(alpha);
  }
  if (trees_.empty()) {
    throw std::runtime_error("RUSBoost: no round produced a useful learner");
  }
  flat_ = std::make_shared<FlatForest>(std::span<const DecisionTree>(trees_));
  alpha_total_ = std::accumulate(alphas_.begin(), alphas_.end(), 0.0);
  log_debug("RUSBoost fit: ", trees_.size(), " effective rounds");
}

double RusBoostClassifier::margin(std::span<const float> features) const {
  if (trees_.empty()) throw std::logic_error("RUSBoost: not fitted");
  const FlatForest& flat = *flat_;
  double total = 0.0;
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    const double h =
        flat.predict_tree(t, features.data()) >= 0.5 ? 1.0 : -1.0;
    total += alphas_[t] * h;
  }
  return total;
}

double RusBoostClassifier::predict_proba(
    std::span<const float> features) const {
  // Tie-break the coarse {-1,+1} votes with the trees' leaf probabilities so
  // the ranking is smooth enough for P-R sweeps.
  if (trees_.empty()) throw std::logic_error("RUSBoost: not fitted");
  const FlatForest& flat = *flat_;
  double vote = 0.0, soft = 0.0;
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    const double p = flat.predict_tree(t, features.data());
    vote += alphas_[t] * (p >= 0.5 ? 1.0 : -1.0);
    soft += alphas_[t] * (2.0 * p - 1.0);
  }
  const double normalized =
      (vote + 0.25 * soft) / std::max(1e-12, 1.25 * alpha_total_);
  return 1.0 / (1.0 + std::exp(-3.0 * normalized));
}

std::size_t RusBoostClassifier::n_parameters() const {
  std::size_t params = 0;
  for (const DecisionTree& tree : trees_) {
    const std::size_t leaves = tree.n_leaves();
    params += (tree.n_nodes() - leaves) * 2 + leaves;
  }
  return params + alphas_.size();
}

std::size_t RusBoostClassifier::prediction_ops() const {
  double ops = 0.0;
  for (const DecisionTree& tree : trees_) ops += tree.mean_depth();
  return static_cast<std::size_t>(ops) + 2 * trees_.size();
}

}  // namespace drcshap
