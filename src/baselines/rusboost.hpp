#pragma once
// RUSBoost (Seiffert et al.): AdaBoost.M1 where each round first random-
// undersamples the majority class, then fits a shallow decision tree. This
// is the boosting-ensemble baseline of Tabrizi et al. [4] in Table II. The
// paper runs 100 boosting iterations.

#include <cstdint>
#include <memory>

#include "core/decision_tree.hpp"
#include "core/flat_forest.hpp"
#include "ml/classifier.hpp"

namespace drcshap {

struct RusBoostOptions {
  int n_rounds = 100;
  int tree_max_depth = 6;
  std::size_t min_samples_leaf = 4;
  /// Majority samples kept per round, as a multiple of the minority count.
  double negative_ratio = 1.0;
  std::uint64_t seed = 29;
};

class RusBoostClassifier final : public BinaryClassifier {
 public:
  explicit RusBoostClassifier(RusBoostOptions options = {});

  void fit(const Dataset& data) override;
  double predict_proba(std::span<const float> features) const override;

  std::size_t n_parameters() const override;
  std::size_t prediction_ops() const override;
  std::string name() const override { return "RUSBoost"; }

  /// Boosting margin sum_t alpha_t h_t(x), h_t in {-1, +1}; predict_proba is
  /// a monotone logistic of this.
  double margin(std::span<const float> features) const;

  std::size_t n_rounds_used() const { return trees_.size(); }

 private:
  RusBoostOptions options_;
  std::vector<DecisionTree> trees_;
  std::vector<double> alphas_;
  /// SoA snapshot of the kept round trees, rebuilt at the end of fit();
  /// margin/predict_proba walk this instead of the pointer-chasing
  /// per-node structs (leaf values are identical, so outputs are too).
  std::shared_ptr<const FlatForest> flat_;
  double alpha_total_ = 0.0;
};

}  // namespace drcshap
