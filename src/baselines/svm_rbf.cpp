#include "baselines/svm_rbf.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "util/log.hpp"

namespace drcshap {

SvmRbfClassifier::SvmRbfClassifier(SvmRbfOptions options) : options_(options) {
  if (options_.C <= 0.0) throw std::invalid_argument("SVM: C must be > 0");
}

void SvmRbfClassifier::fit(const Dataset& data) {
  if (data.n_rows() == 0) throw std::invalid_argument("SVM: empty dataset");
  if (data.n_positives() == 0 || data.n_positives() == data.n_rows()) {
    throw std::invalid_argument("SVM: training data needs both classes");
  }
  n_features_ = data.n_features();
  Rng rng(options_.seed);

  // --- undersample the majority class to the sample cap ------------------
  std::vector<std::size_t> pos_rows, neg_rows;
  for (std::size_t i = 0; i < data.n_rows(); ++i) {
    (data.label(i) ? pos_rows : neg_rows).push_back(i);
  }
  const std::size_t cap = std::max<std::size_t>(16, options_.max_training_samples);
  std::vector<std::size_t> rows;
  if (pos_rows.size() + neg_rows.size() <= cap) {
    rows.reserve(pos_rows.size() + neg_rows.size());
    rows.insert(rows.end(), pos_rows.begin(), pos_rows.end());
    rows.insert(rows.end(), neg_rows.begin(), neg_rows.end());
  } else {
    // Keep all positives (up to half the cap), fill the rest with negatives.
    const std::size_t n_pos = std::min(pos_rows.size(), cap / 2);
    const std::size_t n_neg = std::min(neg_rows.size(), cap - n_pos);
    rng.shuffle(pos_rows);
    rng.shuffle(neg_rows);
    rows.assign(pos_rows.begin(), pos_rows.begin() + static_cast<std::ptrdiff_t>(n_pos));
    rows.insert(rows.end(), neg_rows.begin(),
                neg_rows.begin() + static_cast<std::ptrdiff_t>(n_neg));
  }
  const std::size_t n = rows.size();

  // --- materialize training matrix and labels in {-1, +1} ----------------
  std::vector<float> x(n * n_features_);
  std::vector<double> y(n);
  std::size_t n_pos_used = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = data.row(rows[i]);
    std::copy(row.begin(), row.end(), x.begin() + static_cast<std::ptrdiff_t>(i * n_features_));
    y[i] = data.label(rows[i]) ? 1.0 : -1.0;
    if (data.label(rows[i])) ++n_pos_used;
  }

  // --- gamma: sklearn "scale" default 1 / (d * var) -----------------------
  gamma_used_ = options_.gamma;
  if (gamma_used_ <= 0.0) {
    double mean = 0.0, mean_sq = 0.0;
    for (const float v : x) {
      mean += v;
      mean_sq += static_cast<double>(v) * v;
    }
    mean /= static_cast<double>(x.size());
    mean_sq /= static_cast<double>(x.size());
    const double var = std::max(1e-12, mean_sq - mean * mean);
    gamma_used_ = 1.0 / (static_cast<double>(n_features_) * var);
  }

  // --- kernel matrix ------------------------------------------------------
  std::vector<double> sq_norm(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const float* xi = x.data() + i * n_features_;
    for (std::size_t f = 0; f < n_features_; ++f) {
      sq_norm[i] += static_cast<double>(xi[f]) * xi[f];
    }
  }
  std::vector<float> kernel(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    const float* xi = x.data() + i * n_features_;
    kernel[i * n + i] = 1.0f;
    for (std::size_t j = i + 1; j < n; ++j) {
      const float* xj = x.data() + j * n_features_;
      double dot = 0.0;
      for (std::size_t f = 0; f < n_features_; ++f) {
        dot += static_cast<double>(xi[f]) * xj[f];
      }
      const double dist_sq = sq_norm[i] + sq_norm[j] - 2.0 * dot;
      const float k = static_cast<float>(
          std::exp(-gamma_used_ * std::max(0.0, dist_sq)));
      kernel[i * n + j] = k;
      kernel[j * n + i] = k;
    }
  }

  // --- SMO ----------------------------------------------------------------
  const double w_pos =
      options_.positive_weight > 0.0
          ? options_.positive_weight
          : static_cast<double>(n - n_pos_used) / std::max<std::size_t>(1, n_pos_used);
  auto box = [&](std::size_t i) {
    return y[i] > 0.0 ? options_.C * w_pos : options_.C;
  };

  std::vector<double> alpha(n, 0.0);
  std::vector<double> grad(n, -1.0);  // grad_i = (Q alpha)_i - 1

  iterations_used_ = 0;
  for (; iterations_used_ < options_.max_iterations; ++iterations_used_) {
    // Working-set selection: maximal violating pair.
    double m_up = -std::numeric_limits<double>::infinity();
    double m_low = std::numeric_limits<double>::infinity();
    std::size_t i_up = n, i_low = n;
    for (std::size_t t = 0; t < n; ++t) {
      const bool in_up = (y[t] > 0.0 && alpha[t] < box(t) - 1e-12) ||
                         (y[t] < 0.0 && alpha[t] > 1e-12);
      const bool in_low = (y[t] < 0.0 && alpha[t] < box(t) - 1e-12) ||
                          (y[t] > 0.0 && alpha[t] > 1e-12);
      const double v = -y[t] * grad[t];
      if (in_up && v > m_up) {
        m_up = v;
        i_up = t;
      }
      if (in_low && v < m_low) {
        m_low = v;
        i_low = t;
      }
    }
    if (i_up == n || i_low == n || m_up - m_low < options_.tolerance) break;

    const std::size_t i = i_up, j = i_low;
    const float* ki = kernel.data() + i * n;
    const float* kj = kernel.data() + j * n;
    double a = static_cast<double>(ki[i]) + kj[j] - 2.0 * ki[j];
    if (a <= 0.0) a = 1e-12;
    const double b = m_up - m_low;

    const double old_ai = alpha[i], old_aj = alpha[j];
    alpha[i] += y[i] * b / a;
    alpha[j] -= y[j] * b / a;

    // Project back onto the box, preserving y_i a_i + y_j a_j.
    const double sum = y[i] * old_ai + y[j] * old_aj;
    alpha[i] = std::clamp(alpha[i], 0.0, box(i));
    alpha[j] = y[j] * (sum - y[i] * alpha[i]);
    alpha[j] = std::clamp(alpha[j], 0.0, box(j));
    alpha[i] = y[i] * (sum - y[j] * alpha[j]);
    alpha[i] = std::clamp(alpha[i], 0.0, box(i));

    const double delta_i = alpha[i] - old_ai;
    const double delta_j = alpha[j] - old_aj;
    if (std::abs(delta_i) < 1e-14 && std::abs(delta_j) < 1e-14) break;
    for (std::size_t t = 0; t < n; ++t) {
      grad[t] += y[t] * (y[i] * delta_i * ki[t] + y[j] * delta_j * kj[t]);
    }
  }

  // --- rho (intercept): mean over free support vectors -------------------
  double rho_sum = 0.0;
  std::size_t rho_count = 0;
  for (std::size_t t = 0; t < n; ++t) {
    if (alpha[t] > 1e-9 && alpha[t] < box(t) - 1e-9) {
      rho_sum += y[t] * grad[t];
      ++rho_count;
    }
  }
  if (rho_count > 0) {
    rho_ = rho_sum / static_cast<double>(rho_count);
  } else {
    // Midpoint of the (converged) bound interval.
    double m_up = -std::numeric_limits<double>::infinity();
    double m_low = std::numeric_limits<double>::infinity();
    for (std::size_t t = 0; t < n; ++t) {
      const double v = -y[t] * grad[t];
      m_up = std::max(m_up, v);
      m_low = std::min(m_low, v);
    }
    rho_ = -(m_up + m_low) / 2.0;
  }

  // --- keep only support vectors -----------------------------------------
  sv_features_.clear();
  sv_coef_.clear();
  for (std::size_t t = 0; t < n; ++t) {
    if (alpha[t] > 1e-9) {
      const float* xt = x.data() + t * n_features_;
      sv_features_.insert(sv_features_.end(), xt, xt + n_features_);
      sv_coef_.push_back(alpha[t] * y[t]);
    }
  }
  if (sv_coef_.empty()) {
    throw std::runtime_error("SVM: optimization produced no support vectors");
  }
  log_debug("SVM fit: ", n, " samples, ", sv_coef_.size(), " SVs, ",
            iterations_used_, " SMO steps");
}

double SvmRbfClassifier::decision_value(std::span<const float> features) const {
  if (sv_coef_.empty()) throw std::logic_error("SVM: not fitted");
  if (features.size() != n_features_) {
    throw std::invalid_argument("SVM: feature count mismatch");
  }
  double total = 0.0;
  for (std::size_t s = 0; s < sv_coef_.size(); ++s) {
    const float* sv = sv_features_.data() + s * n_features_;
    double dist_sq = 0.0;
    for (std::size_t f = 0; f < n_features_; ++f) {
      const double d = static_cast<double>(features[f]) - sv[f];
      dist_sq += d * d;
    }
    total += sv_coef_[s] * std::exp(-gamma_used_ * dist_sq);
  }
  return total - rho_;
}

double SvmRbfClassifier::predict_proba(std::span<const float> features) const {
  // Logistic link on the margin: monotone, so threshold-sweep metrics (ROC,
  // P-R, TPR*/Prec*) are identical to using the raw decision value.
  return 1.0 / (1.0 + std::exp(-decision_value(features)));
}

std::size_t SvmRbfClassifier::n_parameters() const {
  // Each SV stores its d coordinates plus a dual coefficient, plus rho.
  return sv_coef_.size() * (n_features_ + 1) + 1;
}

std::size_t SvmRbfClassifier::prediction_ops() const {
  // Per SV: d subtractions, d squarings, d adds, one exp + one fma.
  return sv_coef_.size() * (3 * n_features_ + 2);
}

}  // namespace drcshap
