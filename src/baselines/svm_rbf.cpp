#include "baselines/svm_rbf.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "obs/registry.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace drcshap {

namespace {

// Bounded LRU cache of RBF kernel rows K(x_r, .) over the training matrix.
// SMO revisits a small working set of rows over and over; the old code paid
// for that by materializing the full O(n^2) matrix up front. The cache
// computes a row only on first touch — in parallel on the shared pool, in
// contiguous j-blocks so each block streams the row-major training matrix
// while x_r stays hot — and evicts least-recently-used rows beyond the byte
// budget. Every element k[j] = exp(-gamma * max(0, |x_r|^2 + |x_j|^2 -
// 2<x_r,x_j>)) is computed independently with a fixed expression order, so
// rows are bit-identical for any thread count (and to the old full-matrix
// build).
class RbfKernelCache {
 public:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  RbfKernelCache(const float* x, std::size_t n, std::size_t d,
                 const double* sq_norm, double gamma, std::size_t max_rows,
                 std::size_t n_threads)
      : x_(x),
        n_(n),
        d_(d),
        sq_norm_(sq_norm),
        gamma_(gamma),
        n_threads_(n_threads),
        n_slots_(std::min(std::max<std::size_t>(2, max_rows), n)),
        storage_(n_slots_ * n),
        slot_row_(n_slots_, kNone),
        slot_stamp_(n_slots_, 0),
        row_slot_(n, kNone) {}

  /// Rows i and j, both valid until the next call (j's slot is never chosen
  /// as the eviction victim while row i loads, and vice versa).
  std::pair<const float*, const float*> rows(std::size_t i, std::size_t j) {
    const float* ri = row(i, j);
    const float* rj = row(j, i);
    return {ri, rj};
  }

  std::uint64_t rows_computed() const { return rows_computed_; }
  std::uint64_t row_hits() const { return row_hits_; }

 private:
  const float* row(std::size_t r, std::size_t pinned_row) {
    if (row_slot_[r] != kNone) {
      ++row_hits_;
      const std::size_t slot = row_slot_[r];
      slot_stamp_[slot] = ++clock_;
      return storage_.data() + slot * n_;
    }
    // Evict the least-recently-used slot that does not hold the pinned row
    // (n_slots_ >= 2 guarantees a victim exists).
    std::size_t victim = kNone;
    for (std::size_t s = 0; s < n_slots_; ++s) {
      if (slot_row_[s] == pinned_row) continue;
      if (victim == kNone || slot_stamp_[s] < slot_stamp_[victim]) victim = s;
    }
    if (slot_row_[victim] != kNone) row_slot_[slot_row_[victim]] = kNone;
    slot_row_[victim] = r;
    row_slot_[r] = victim;
    slot_stamp_[victim] = ++clock_;
    float* dst = storage_.data() + victim * n_;
    compute_row(r, dst);
    ++rows_computed_;
    return dst;
  }

  void compute_row(std::size_t r, float* dst) {
    const float* xr = x_ + r * d_;
    const double sq_r = sq_norm_[r];
    parallel_for_shared(
        n_,
        [&](std::size_t j) {
          const float* xj = x_ + j * d_;
          double dot = 0.0;
          for (std::size_t f = 0; f < d_; ++f) {
            dot += static_cast<double>(xr[f]) * xj[f];
          }
          const double dist_sq = sq_r + sq_norm_[j] - 2.0 * dot;
          dst[j] = static_cast<float>(
              std::exp(-gamma_ * std::max(0.0, dist_sq)));
        },
        n_threads_, /*grain=*/kRowBlock);
    dst[r] = 1.0f;
  }

  /// j-block per work unit: 64 rows x 387 features x 4 B ~ 100 KB streams
  /// through L2 while x_r stays in L1.
  static constexpr std::size_t kRowBlock = 64;

  const float* x_;
  std::size_t n_, d_;
  const double* sq_norm_;
  double gamma_;
  std::size_t n_threads_;
  std::size_t n_slots_;
  std::vector<float> storage_;
  std::vector<std::size_t> slot_row_;    ///< slot -> cached row id (or kNone)
  std::vector<std::uint64_t> slot_stamp_;  ///< slot -> last-touch clock
  std::vector<std::size_t> row_slot_;    ///< row id -> slot (or kNone)
  std::uint64_t clock_ = 0;
  std::uint64_t rows_computed_ = 0;
  std::uint64_t row_hits_ = 0;
};

}  // namespace

SvmRbfClassifier::SvmRbfClassifier(SvmRbfOptions options) : options_(options) {
  if (options_.C <= 0.0) throw std::invalid_argument("SVM: C must be > 0");
}

void SvmRbfClassifier::fit(const Dataset& data) {
  if (data.n_rows() == 0) throw std::invalid_argument("SVM: empty dataset");
  if (data.n_positives() == 0 || data.n_positives() == data.n_rows()) {
    throw std::invalid_argument("SVM: training data needs both classes");
  }
  DRCSHAP_OBS_TIMER("svm/fit");
  n_features_ = data.n_features();
  Rng rng(options_.seed);

  // --- undersample the majority class to the sample cap ------------------
  std::vector<std::size_t> pos_rows, neg_rows;
  for (std::size_t i = 0; i < data.n_rows(); ++i) {
    (data.label(i) ? pos_rows : neg_rows).push_back(i);
  }
  const std::size_t cap = std::max<std::size_t>(16, options_.max_training_samples);
  std::vector<std::size_t> rows;
  if (pos_rows.size() + neg_rows.size() <= cap) {
    rows.reserve(pos_rows.size() + neg_rows.size());
    rows.insert(rows.end(), pos_rows.begin(), pos_rows.end());
    rows.insert(rows.end(), neg_rows.begin(), neg_rows.end());
  } else {
    // Keep all positives (up to half the cap), fill the rest with negatives.
    const std::size_t n_pos = std::min(pos_rows.size(), cap / 2);
    const std::size_t n_neg = std::min(neg_rows.size(), cap - n_pos);
    rng.shuffle(pos_rows);
    rng.shuffle(neg_rows);
    rows.assign(pos_rows.begin(), pos_rows.begin() + static_cast<std::ptrdiff_t>(n_pos));
    rows.insert(rows.end(), neg_rows.begin(),
                neg_rows.begin() + static_cast<std::ptrdiff_t>(n_neg));
  }
  const std::size_t n = rows.size();

  // --- materialize training matrix and labels in {-1, +1} ----------------
  std::vector<float> x(n * n_features_);
  std::vector<double> y(n);
  std::size_t n_pos_used = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = data.row(rows[i]);
    std::copy(row.begin(), row.end(), x.begin() + static_cast<std::ptrdiff_t>(i * n_features_));
    y[i] = data.label(rows[i]) ? 1.0 : -1.0;
    if (data.label(rows[i])) ++n_pos_used;
  }

  // --- gamma: sklearn "scale" default 1 / (d * var) -----------------------
  gamma_used_ = options_.gamma;
  if (gamma_used_ <= 0.0) {
    double mean = 0.0, mean_sq = 0.0;
    for (const float v : x) {
      mean += v;
      mean_sq += static_cast<double>(v) * v;
    }
    mean /= static_cast<double>(x.size());
    mean_sq /= static_cast<double>(x.size());
    const double var = std::max(1e-12, mean_sq - mean * mean);
    gamma_used_ = 1.0 / (static_cast<double>(n_features_) * var);
  }

  // --- kernel row cache ---------------------------------------------------
  // Rows are computed lazily (parallel, blocked) and kept under an LRU
  // budget instead of materializing the O(n^2) matrix up front: SMO only
  // ever touches the rows of its working set.
  std::vector<double> sq_norm(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const float* xi = x.data() + i * n_features_;
    for (std::size_t f = 0; f < n_features_; ++f) {
      sq_norm[i] += static_cast<double>(xi[f]) * xi[f];
    }
  }
  const std::size_t cache_rows = std::max<std::size_t>(
      2, (options_.kernel_cache_mb << 20) / (n * sizeof(float)));
  RbfKernelCache cache(x.data(), n, n_features_, sq_norm.data(), gamma_used_,
                       cache_rows, options_.n_threads);

  // --- SMO ----------------------------------------------------------------
  const double w_pos =
      options_.positive_weight > 0.0
          ? options_.positive_weight
          : static_cast<double>(n - n_pos_used) / std::max<std::size_t>(1, n_pos_used);
  auto box = [&](std::size_t i) {
    return y[i] > 0.0 ? options_.C * w_pos : options_.C;
  };

  std::vector<double> alpha(n, 0.0);
  std::vector<double> grad(n, -1.0);  // grad_i = (Q alpha)_i - 1

  iterations_used_ = 0;
  for (; iterations_used_ < options_.max_iterations; ++iterations_used_) {
    // Working-set selection: maximal violating pair.
    double m_up = -std::numeric_limits<double>::infinity();
    double m_low = std::numeric_limits<double>::infinity();
    std::size_t i_up = n, i_low = n;
    for (std::size_t t = 0; t < n; ++t) {
      const bool in_up = (y[t] > 0.0 && alpha[t] < box(t) - 1e-12) ||
                         (y[t] < 0.0 && alpha[t] > 1e-12);
      const bool in_low = (y[t] < 0.0 && alpha[t] < box(t) - 1e-12) ||
                          (y[t] > 0.0 && alpha[t] > 1e-12);
      const double v = -y[t] * grad[t];
      if (in_up && v > m_up) {
        m_up = v;
        i_up = t;
      }
      if (in_low && v < m_low) {
        m_low = v;
        i_low = t;
      }
    }
    if (i_up == n || i_low == n || m_up - m_low < options_.tolerance) break;

    const std::size_t i = i_up, j = i_low;
    const auto [ki, kj] = cache.rows(i, j);
    double a = static_cast<double>(ki[i]) + kj[j] - 2.0 * ki[j];
    if (a <= 0.0) a = 1e-12;
    const double b = m_up - m_low;

    const double old_ai = alpha[i], old_aj = alpha[j];
    alpha[i] += y[i] * b / a;
    alpha[j] -= y[j] * b / a;

    // Project back onto the box, preserving y_i a_i + y_j a_j.
    const double sum = y[i] * old_ai + y[j] * old_aj;
    alpha[i] = std::clamp(alpha[i], 0.0, box(i));
    alpha[j] = y[j] * (sum - y[i] * alpha[i]);
    alpha[j] = std::clamp(alpha[j], 0.0, box(j));
    alpha[i] = y[i] * (sum - y[j] * alpha[j]);
    alpha[i] = std::clamp(alpha[i], 0.0, box(i));

    const double delta_i = alpha[i] - old_ai;
    const double delta_j = alpha[j] - old_aj;
    if (std::abs(delta_i) < 1e-14 && std::abs(delta_j) < 1e-14) break;
    for (std::size_t t = 0; t < n; ++t) {
      grad[t] += y[t] * (y[i] * delta_i * ki[t] + y[j] * delta_j * kj[t]);
    }
  }

  // --- rho (intercept): mean over free support vectors -------------------
  double rho_sum = 0.0;
  std::size_t rho_count = 0;
  for (std::size_t t = 0; t < n; ++t) {
    if (alpha[t] > 1e-9 && alpha[t] < box(t) - 1e-9) {
      rho_sum += y[t] * grad[t];
      ++rho_count;
    }
  }
  if (rho_count > 0) {
    rho_ = rho_sum / static_cast<double>(rho_count);
  } else {
    // Midpoint of the (converged) bound interval.
    double m_up = -std::numeric_limits<double>::infinity();
    double m_low = std::numeric_limits<double>::infinity();
    for (std::size_t t = 0; t < n; ++t) {
      const double v = -y[t] * grad[t];
      m_up = std::max(m_up, v);
      m_low = std::min(m_low, v);
    }
    rho_ = -(m_up + m_low) / 2.0;
  }

  // --- keep only support vectors -----------------------------------------
  sv_features_.clear();
  sv_coef_.clear();
  for (std::size_t t = 0; t < n; ++t) {
    if (alpha[t] > 1e-9) {
      const float* xt = x.data() + t * n_features_;
      sv_features_.insert(sv_features_.end(), xt, xt + n_features_);
      sv_coef_.push_back(alpha[t] * y[t]);
    }
  }
  if (sv_coef_.empty()) {
    throw std::runtime_error("SVM: optimization produced no support vectors");
  }
  obs::counter_add("svm/kernel_rows_computed", cache.rows_computed());
  obs::counter_add("svm/kernel_row_hits", cache.row_hits());
  log_debug("SVM fit: ", n, " samples, ", sv_coef_.size(), " SVs, ",
            iterations_used_, " SMO steps, ", cache.rows_computed(),
            " kernel rows computed, ", cache.row_hits(), " cache hits");
}

double SvmRbfClassifier::decision_value(std::span<const float> features) const {
  if (sv_coef_.empty()) throw std::logic_error("SVM: not fitted");
  if (features.size() != n_features_) {
    throw std::invalid_argument("SVM: feature count mismatch");
  }
  double total = 0.0;
  for (std::size_t s = 0; s < sv_coef_.size(); ++s) {
    const float* sv = sv_features_.data() + s * n_features_;
    double dist_sq = 0.0;
    for (std::size_t f = 0; f < n_features_; ++f) {
      const double d = static_cast<double>(features[f]) - sv[f];
      dist_sq += d * d;
    }
    total += sv_coef_[s] * std::exp(-gamma_used_ * dist_sq);
  }
  return total - rho_;
}

double SvmRbfClassifier::predict_proba(std::span<const float> features) const {
  // Logistic link on the margin: monotone, so threshold-sweep metrics (ROC,
  // P-R, TPR*/Prec*) are identical to using the raw decision value.
  return 1.0 / (1.0 + std::exp(-decision_value(features)));
}

std::size_t SvmRbfClassifier::n_parameters() const {
  // Each SV stores its d coordinates plus a dual coefficient, plus rho.
  return sv_coef_.size() * (n_features_ + 1) + 1;
}

std::size_t SvmRbfClassifier::prediction_ops() const {
  // Per SV: d subtractions, d squarings, d adds, one exp + one fma.
  return sv_coef_.size() * (3 * n_features_ + 2);
}

}  // namespace drcshap
