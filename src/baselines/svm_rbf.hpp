#pragma once
// Soft-margin SVM with RBF kernel, trained by SMO with maximal-violating-pair
// working-set selection (LIBSVM's WSS1). This is the strongest prior-work
// baseline in the paper ([2],[3],[5]); Table II shows it second to RF in
// quality but with by far the largest prediction cost — properties this
// implementation reproduces (every support vector contributes ~3*d ops per
// prediction).
//
// Like those prior works (and to keep the quadratic SMO problem tractable),
// training undersamples the majority class down to `max_training_samples`
// while keeping all positives. Kernel rows are not materialized as a full
// O(n^2) matrix: they are computed on first touch — in parallel on the
// shared thread pool — and held in a bounded LRU row cache, so SMO pays
// only for the rows its working set actually visits.

#include <cstdint>

#include "ml/classifier.hpp"
#include "util/rng.hpp"

namespace drcshap {

struct SvmRbfOptions {
  double C = 1.0;
  double gamma = 0.0;  ///< 0 = auto: 1 / (n_features * var(X)), sklearn-style
  double tolerance = 1e-3;
  std::size_t max_iterations = 200000;
  /// Cap on training points after majority-class undersampling (the kernel
  /// matrix is O(n^2)); all positives are kept when they fit.
  std::size_t max_training_samples = 2000;
  /// Extra box-constraint weight on the positive class; 0 = auto (neg/pos).
  double positive_weight = 0.0;
  std::uint64_t seed = 13;
  /// Byte budget (in MiB) for the LRU cache of RBF kernel rows; rows beyond
  /// it are recomputed on demand. Results are identical for any budget.
  std::size_t kernel_cache_mb = 32;
  /// Cap on shared-pool workers for kernel-row computation (0 = whole pool,
  /// 1 = serial); results are bit-identical at any thread count.
  std::size_t n_threads = 0;
};

class SvmRbfClassifier final : public BinaryClassifier {
 public:
  explicit SvmRbfClassifier(SvmRbfOptions options = {});

  void fit(const Dataset& data) override;
  double predict_proba(std::span<const float> features) const override;

  std::size_t n_parameters() const override;
  std::size_t prediction_ops() const override;
  std::string name() const override { return "SVM-RBF"; }

  std::size_t n_support_vectors() const { return sv_features_.size() / n_features_; }
  /// Raw decision value sum_i alpha_i y_i K(x_i, x) - rho.
  double decision_value(std::span<const float> features) const;
  std::size_t iterations_used() const { return iterations_used_; }

 private:
  SvmRbfOptions options_;
  std::size_t n_features_ = 0;
  std::vector<float> sv_features_;  ///< row-major support vectors
  std::vector<double> sv_coef_;     ///< alpha_i * y_i
  double rho_ = 0.0;
  double gamma_used_ = 0.0;
  std::size_t iterations_used_ = 0;
};

}  // namespace drcshap
