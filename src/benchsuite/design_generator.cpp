#include "benchsuite/design_generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace drcshap {

namespace {

/// Places `count` square-ish macros inside the die without mutual overlap
/// (deterministic rejection sampling with a relaxation fallback).
std::vector<Macro> make_macros(int count, double die, Rng& rng) {
  std::vector<Macro> macros;
  // Shrink individual macros as the count grows so the requested number
  // always fits (total macro area stays roughly constant).
  const double size_scale = std::sqrt(4.0 / std::max(4, count));
  for (int m = 0; m < count; ++m) {
    const double w = die * rng.uniform(0.16, 0.30) * size_scale;
    const double h = die * rng.uniform(0.16, 0.30) * size_scale;
    bool placed = false;
    for (int attempt = 0; attempt < 200 && !placed; ++attempt) {
      const double x = rng.uniform(0.03 * die, 0.97 * die - w);
      const double y = rng.uniform(0.03 * die, 0.97 * die - h);
      const Rect box{x, y, x + w, y + h};
      const Rect keepout = box.inflated(0.02 * die);
      placed = std::none_of(macros.begin(), macros.end(),
                            [&](const Macro& other) {
                              return other.box.overlaps(keepout);
                            });
      if (placed) {
        macros.push_back({"macro" + std::to_string(m), box, 4});
      }
    }
    // If the die is too crowded, skip the macro rather than overlap.
  }
  return macros;
}

bool inside_any_macro(const Point& p, const std::vector<Macro>& macros) {
  return std::any_of(macros.begin(), macros.end(), [&](const Macro& m) {
    return m.box.contains(p);
  });
}

}  // namespace

NetlistSpec generate_netlist(const BenchmarkSpec& spec,
                             const GeneratorOptions& options) {
  if (options.scale < 1.0) {
    throw std::invalid_argument("generate_netlist: scale must be >= 1");
  }
  const double shrink = std::sqrt(options.scale);
  Rng rng(spec.seed * 0x9e3779b97f4a7c15ULL + 7);

  NetlistSpec netlist;
  netlist.name = spec.name;
  const double die = spec.die_microns / shrink;
  netlist.die = {0.0, 0.0, die, die};
  netlist.gcells_x = std::max<std::size_t>(
      8, static_cast<std::size_t>(std::lround(spec.gcells_x / shrink)));
  netlist.gcells_y = std::max<std::size_t>(
      8, static_cast<std::size_t>(std::lround(spec.gcells_y / shrink)));

  // Routing capacities scale with the g-cell pitch (track pitch is a
  // property of the 65 nm technology, so a larger g-cell holds more
  // tracks). Densities per micron rise with layer (wider upper layers are
  // modeled at GR granularity as more usable tracks after via landing).
  {
    const double pitch_x = die / static_cast<double>(netlist.gcells_x);
    const double pitch_y = die / static_cast<double>(netlist.gcells_y);
    static constexpr double kTrackPerUm[5] = {5.0, 5.6, 5.6, 6.2, 6.2};
    static constexpr double kViaPerUm2[4] = {4.5, 4.2, 3.9, 3.5};
    for (int m = 0; m < 5; ++m) {
      const double pitch = Technology::is_horizontal(m) ? pitch_y : pitch_x;
      netlist.tech.tracks_per_gcell[static_cast<std::size_t>(m)] =
          std::max(6, static_cast<int>(std::lround(pitch * kTrackPerUm[m])));
    }
    for (int v = 0; v < 4; ++v) {
      netlist.tech.vias_per_gcell[static_cast<std::size_t>(v)] = std::max(
          24, static_cast<int>(std::lround(pitch_x * pitch_y * kViaPerUm2[v])));
    }
  }

  // --- macros (fixed before placement) -----------------------------------
  netlist.macros = make_macros(spec.n_macros, die, rng);
  double macro_area = 0.0;
  for (const Macro& m : netlist.macros) macro_area += m.box.area();

  // --- cells ---------------------------------------------------------------
  const std::size_t n_cells = std::max<std::size_t>(
      200, static_cast<std::size_t>(spec.cells_thousands * 1000.0 /
                                    options.scale));
  // Target placement utilization grows with difficulty; cap the mean cell
  // area so everything fits with headroom for legalization.
  const double util = 0.40 + 0.30 * spec.difficulty;
  const double placeable = std::max(die * die * 0.25, die * die - macro_area);
  // Cell sizes are a property of the 65 nm library, not of the die: cap the
  // mean area so sparse designs stay sparse (their congestion, if any, must
  // come from wiring structure, not from artificially inflated cells).
  const double mean_area = std::min(
      3.0, placeable * util / static_cast<double>(n_cells));
  const double height = options.row_height;
  const double mean_width = std::max(0.25, mean_area / height);

  // --- clusters ------------------------------------------------------------
  // Many small clusters approximate the locality a real netlist + placer
  // produce: most nets stay within a couple of g-cells. Cluster spreads are
  // sized *after* assignment so each cluster's population actually fits near
  // its center at a legal density (otherwise legalization scatters the cells
  // and every "local" net stretches across the die).
  const double gcell_pitch = die / static_cast<double>(netlist.gcells_x);
  const std::size_t n_clusters =
      std::clamp<std::size_t>(n_cells / 50, 16, 2000);
  // With macros present, a difficulty-scaled share of the clusters crowds
  // the channels alongside macro edges -- blocked lower layers plus local
  // density is what makes macro-heavy designs (like fft_b) DRC-prone.
  const double p_channel_cluster =
      netlist.macros.empty() ? 0.0 : std::min(0.70, 0.9 * spec.difficulty);
  auto draw_channel_center = [&]() -> Point {
    const Macro& m = netlist.macros[rng.index(netlist.macros.size())];
    const double band = gcell_pitch * rng.uniform(0.5, 2.0);
    const int side = static_cast<int>(rng.index(4));
    Point p;
    switch (side) {
      case 0: p = {m.box.x_lo - band, rng.uniform(m.box.y_lo, m.box.y_hi)}; break;
      case 1: p = {m.box.x_hi + band, rng.uniform(m.box.y_lo, m.box.y_hi)}; break;
      case 2: p = {rng.uniform(m.box.x_lo, m.box.x_hi), m.box.y_lo - band}; break;
      default: p = {rng.uniform(m.box.x_lo, m.box.x_hi), m.box.y_hi + band}; break;
    }
    p.x = std::clamp(p.x, 0.03 * die, 0.97 * die);
    p.y = std::clamp(p.y, 0.03 * die, 0.97 * die);
    return p;
  };
  for (std::size_t k = 0; k < n_clusters; ++k) {
    Point center;
    for (int attempt = 0; attempt < 100; ++attempt) {
      center = rng.bernoulli(p_channel_cluster)
                   ? draw_channel_center()
                   : Point{rng.uniform(0.05 * die, 0.95 * die),
                           rng.uniform(0.05 * die, 0.95 * die)};
      if (!inside_any_macro(center, netlist.macros)) break;
    }
    netlist.clusters.push_back({center, gcell_pitch});  // spread set below
  }

  // Nearest-neighbor lists for cross-cluster nets (cross wiring is mostly
  // regional, not die-spanning).
  std::vector<std::vector<std::uint32_t>> near_clusters(n_clusters);
  for (std::size_t a = 0; a < n_clusters; ++a) {
    std::vector<std::pair<double, std::uint32_t>> by_dist;
    for (std::size_t b = 0; b < n_clusters; ++b) {
      if (a == b) continue;
      by_dist.emplace_back(
          manhattan(netlist.clusters[a].center, netlist.clusters[b].center),
          static_cast<std::uint32_t>(b));
    }
    std::sort(by_dist.begin(), by_dist.end());
    const std::size_t keep = std::min<std::size_t>(6, by_dist.size());
    for (std::size_t k = 0; k < keep; ++k) {
      near_clusters[a].push_back(by_dist[k].second);
    }
  }

  // Cluster weights (some clusters are hubs).
  std::vector<double> cluster_weight(n_clusters);
  double weight_total = 0.0;
  for (auto& w : cluster_weight) {
    w = rng.uniform(0.4, 1.6);
    weight_total += w;
  }
  auto draw_cluster = [&]() -> std::uint32_t {
    double pick = rng.uniform() * weight_total;
    for (std::size_t k = 0; k < n_clusters; ++k) {
      pick -= cluster_weight[k];
      if (pick <= 0.0) return static_cast<std::uint32_t>(k);
    }
    return static_cast<std::uint32_t>(n_clusters - 1);
  };

  netlist.cells.reserve(n_cells);
  std::vector<std::vector<std::uint32_t>> cluster_cells(n_clusters);
  for (std::size_t c = 0; c < n_cells; ++c) {
    CellSpec cell;
    cell.width = mean_width * rng.uniform(0.6, 1.5);
    cell.multi_height = rng.bernoulli(options.multi_height_fraction);
    cell.height = cell.multi_height ? 2.0 * height : height;
    cell.cluster = draw_cluster();
    cluster_cells[cell.cluster].push_back(static_cast<std::uint32_t>(c));
    netlist.cells.push_back(cell);
  }

  // Size cluster spreads so the assigned population fits within ~2 sigma at
  // the cluster-local density (difficulty packs clusters tighter, which is
  // what generates congested neighborhoods).
  {
    const double local_util = 0.50 + 0.45 * spec.difficulty;
    for (std::size_t k = 0; k < n_clusters; ++k) {
      double pop_area = 0.0;
      for (const std::uint32_t c : cluster_cells[k]) {
        pop_area += netlist.cells[c].width * netlist.cells[c].height;
      }
      // Area within a 2-sigma disc: pi * (2 sigma)^2 = 12.57 sigma^2.
      const double sigma = std::sqrt(pop_area / (local_util * 12.57));
      netlist.clusters[k].spread = std::max(sigma, 0.4 * gcell_pitch);
    }
  }

  // --- nets ----------------------------------------------------------------
  const std::size_t n_nets = static_cast<std::size_t>(
      static_cast<double>(n_cells) * 1.05 * spec.wiring_richness);

  // Cross-cluster wiring share: solved so that the expected global wire
  // demand hits a difficulty-driven utilization target of the routing
  // capacity. This keeps every design on the intended side of the
  // congestion knife edge regardless of its cell density (a dense multiplier
  // and a sparse macro-heavy FFT get comparable *relative* pressure).
  const double long_share = 0.15 + 0.25 * spec.difficulty;
  double p_cross = 0.02;
  {
    const double util_target = 0.36 + 0.26 * spec.difficulty;
    // Expected segment spans, in g-cell border crossings (Manhattan).
    double sigma_mean = 0.0;
    for (const ClusterSpec& cl : netlist.clusters) sigma_mean += cl.spread;
    sigma_mean /= static_cast<double>(n_clusters);
    const double span_local = 2.26 * sigma_mean / gcell_pitch;
    double nn_dist = 0.0;
    std::size_t nn_count = 0;
    for (std::size_t a = 0; a < n_clusters; ++a) {
      if (near_clusters[a].empty()) continue;
      nn_dist += manhattan(netlist.clusters[a].center,
                           netlist.clusters[near_clusters[a][0]].center);
      ++nn_count;
    }
    nn_dist = nn_count ? nn_dist / static_cast<double>(nn_count) : die * 0.1;
    const double span_regional = span_local + nn_dist / gcell_pitch;
    const double span_long = span_local + 0.66 * die / gcell_pitch;
    const double span_cross =
        (1.0 - long_share) * span_regional + long_share * span_long;

    // Total capacity in border crossings (both directions, all layers).
    double capacity = 0.0;
    for (int m = 0; m < 5; ++m) {
      const double borders =
          Technology::is_horizontal(m)
              ? static_cast<double>((netlist.gcells_x - 1) * netlist.gcells_y)
              : static_cast<double>(netlist.gcells_x * (netlist.gcells_y - 1));
      capacity +=
          borders * netlist.tech.tracks_per_gcell[static_cast<std::size_t>(m)];
    }
    // ~1.5 routed 2-pin segments per net after same-g-cell pin collapsing.
    const double segments = static_cast<double>(n_nets) * 1.5;
    const double budget = util_target * capacity - segments * span_local;
    if (budget > 0.0 && span_cross > span_local + 1e-9) {
      p_cross = budget / (segments * (span_cross - span_local));
    }
    p_cross = std::clamp(p_cross, 0.02, 0.60);
  }
  netlist.nets.reserve(n_nets);

  auto draw_cell_in_cluster = [&](std::uint32_t k) -> std::uint32_t {
    const auto& pool = cluster_cells[k];
    if (pool.empty()) return static_cast<std::uint32_t>(rng.index(n_cells));
    return pool[rng.index(pool.size())];
  };

  for (std::size_t net_i = 0; net_i < n_nets; ++net_i) {
    NetSpec net;
    // Fanout: 2 + geometric-ish tail, capped.
    std::size_t fanout = 2;
    while (fanout < 11 && rng.bernoulli(1.0 / options.avg_pins_per_net)) {
      ++fanout;
    }
    const bool cross = rng.bernoulli(p_cross) && n_clusters > 1;
    const std::uint32_t home = draw_cluster();
    std::uint32_t away = home;
    if (cross) {
      if (rng.bernoulli(long_share) || near_clusters[home].empty()) {
        while (away == home) away = draw_cluster();  // long-haul net
      } else {
        const auto& near = near_clusters[home];
        away = near[rng.index(near.size())];  // regional net
      }
    }
    for (std::size_t p = 0; p < fanout; ++p) {
      const bool remote = cross && p + 1 == fanout;  // tail pin goes far
      net.cells.push_back(draw_cell_in_cluster(remote ? away : home));
    }
    net.has_ndr = rng.bernoulli(options.ndr_net_fraction);
    netlist.nets.push_back(std::move(net));
  }

  // Clock nets: a few high-fanout nets spanning many clusters.
  const std::size_t n_clock = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(n_nets) *
                                  options.clock_net_fraction));
  for (std::size_t c = 0; c < n_clock; ++c) {
    NetSpec net;
    net.is_clock = true;
    const std::size_t fanout = 8 + rng.index(9);
    for (std::size_t p = 0; p < fanout; ++p) {
      net.cells.push_back(draw_cell_in_cluster(draw_cluster()));
    }
    netlist.nets.push_back(std::move(net));
  }

  // --- extra routing blockages ---------------------------------------------
  const int n_blockages = 1 + spec.n_macros / 2;
  for (int b = 0; b < n_blockages; ++b) {
    const double w = die * rng.uniform(0.04, 0.10);
    const double h = die * rng.uniform(0.04, 0.10);
    const double x = rng.uniform(0.0, die - w);
    const double y = rng.uniform(0.0, die - h);
    const int metal_lo = 1 + static_cast<int>(rng.index(2));  // M2 or M3
    netlist.blockages.push_back({{x, y, x + w, y + h}, metal_lo, metal_lo + 1});
  }

  return netlist;
}

}  // namespace drcshap
