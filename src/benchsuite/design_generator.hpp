#pragma once
// Synthesizes an unplaced netlist specification from a BenchmarkSpec: cell
// population with realistic size mix, clustered connectivity (local nets
// within clusters, longer cross-cluster nets whose share grows with the
// difficulty knob), clock and NDR nets, fixed macros, and routing blockages.
// Deterministic for a fixed (spec, scale).

#include "benchsuite/suite.hpp"
#include "place/placer.hpp"

namespace drcshap {

struct GeneratorOptions {
  /// Linear down-scaling: cells and nets divide by scale, the die edge and
  /// g-cell grid divide by sqrt(scale), so density and congestion character
  /// are preserved. 1.0 = the paper's full Table I sizes.
  double scale = 1.0;
  double row_height = 2.0;
  double avg_pins_per_net = 3.4;
  double clock_net_fraction = 0.01;
  double ndr_net_fraction = 0.02;
  double multi_height_fraction = 0.02;
};

NetlistSpec generate_netlist(const BenchmarkSpec& spec,
                             const GeneratorOptions& options = {});

}  // namespace drcshap
