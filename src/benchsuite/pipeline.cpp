#include "benchsuite/pipeline.hpp"

#include <optional>

#include "drc/track_model.hpp"
#include "obs/registry.hpp"
#include "util/failpoint.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace drcshap {

namespace {

/// Checkpoint unit name for one design's sample shard. The spec index is
/// part of the name because the group id is the index — the same spec at a
/// different position is a different unit.
std::string design_unit(std::size_t index, const BenchmarkSpec& spec) {
  return "design" + std::to_string(index) + "-" + spec.name;
}

}  // namespace

DesignRun run_pipeline(const BenchmarkSpec& spec,
                       const PipelineOptions& options, int group_id) {
  DRCSHAP_FAILPOINT_KEYED("pipeline.design", spec.name);
  DRCSHAP_OBS_TIMER("pipeline/run");
  obs::counter_add("pipeline/designs");
  Stopwatch timer;
  const int group = group_id >= 0 ? group_id : spec.table_group;

  NetlistSpec netlist = generate_netlist(spec, options.generator);
  PlacerOptions placer_options = options.placer;
  placer_options.row_height = options.generator.row_height;
  placer_options.seed = spec.seed * 31 + 1;
  Design design = place_design(netlist, placer_options);

  GlobalRouteResult route = global_route(design, options.router);

  // The per-g-cell aggregates feed both the DRC oracle and feature
  // extraction; compute them once and share (the extractor takes ownership
  // after the oracle is done reading).
  std::vector<GCellAggregate> agg;
  {
    DRCSHAP_OBS_TIMER("features/aggregates");
    agg = compute_gcell_aggregates(design);
  }

  DrcReport drc = run_drc_oracle(design, route.congestion, agg, options.drc,
                                 options.n_threads);

  const FeatureExtractor extractor(design, route.congestion, std::move(agg));
  const std::vector<float> matrix = extractor.extract_all(options.n_threads);
  Dataset samples(FeatureSchema::kNumFeatures, FeatureSchema::names());
  for (std::size_t cell = 0; cell < design.grid().size(); ++cell) {
    samples.append_row(
        std::span<const float>(
            matrix.data() + cell * FeatureSchema::kNumFeatures,
            FeatureSchema::kNumFeatures),
        drc.hotspot[cell], group);
  }

  log_info("pipeline ", spec.name, ": ", design.num_cells(), " cells, ",
           design.grid().size(), " g-cells, ", drc.n_hotspots,
           " hotspots, edge_ovf ", route.edge_overflow, ", via_ovf ",
           route.via_overflow, " (", fmt_fixed(timer.seconds(), 1), "s)");

  return DesignRun{spec,
                   std::move(design),
                   std::move(route.congestion),
                   route.edge_overflow,
                   route.via_overflow,
                   std::move(drc),
                   std::move(samples)};
}

Dataset build_suite_dataset(
    const std::vector<BenchmarkSpec>& specs, const PipelineOptions& options,
    const SuiteBuildControl& control,
    const std::function<void(const DesignRun&)>& on_design,
    std::size_t n_threads) {
  DRCSHAP_OBS_TIMER("pipeline/build_suite");
  const CheckpointStore* ckpt =
      control.checkpoint && control.checkpoint->enabled() ? control.checkpoint
                                                          : nullptr;

  // Resume: pull every committed shard before fanning out, so only the
  // missing designs are recomputed. A torn, corrupt or stale shard is
  // indistinguishable from a missing one — it costs a recompute, never
  // correctness.
  std::vector<std::optional<Dataset>> cached(specs.size());
  if (ckpt) {
    for (std::size_t d = 0; d < specs.size(); ++d) {
      StatusOr<std::string> payload = ckpt->load(design_unit(d, specs[d]));
      if (!payload.ok()) continue;
      StatusOr<Dataset> shard =
          decode_dataset_shard(std::move(payload).value());
      if (shard.ok() &&
          shard.value().n_features() == FeatureSchema::kNumFeatures) {
        cached[d].emplace(std::move(shard).value());
        obs::counter_add("ckpt/design_shards_reused");
      }
    }
  }

  // Designs fan out across the shared pool (each run_pipeline is seeded per
  // spec, so runs are order-independent); the results are appended — and
  // on_design observed — in spec order on this thread, so the Dataset is
  // bit-identical to the serial build and the callback needs no locking.
  // Shards are committed from the workers as designs finish: a build killed
  // mid-suite keeps everything already finished.
  std::vector<std::optional<DesignRun>> runs(specs.size());
  std::vector<std::string> quarantined(specs.size());
  parallel_for_shared(
      specs.size(),
      [&](std::size_t d) {
        if (cached[d]) return;
        try {
          DesignRun run =
              run_pipeline(specs[d], options, static_cast<int>(d));
          if (ckpt) {
            throw_if_error(ckpt->store(design_unit(d, specs[d]),
                                       encode_dataset_shard(run.samples)));
          }
          runs[d].emplace(std::move(run));
        } catch (const std::exception& e) {
          if (!control.quarantine_failures) throw;
          quarantined[d] = e.what();
        }
      },
      n_threads, /*grain=*/1);

  Dataset all(FeatureSchema::kNumFeatures, FeatureSchema::names());
  for (std::size_t d = 0; d < specs.size(); ++d) {
    if (!quarantined[d].empty()) {
      obs::counter_add("pipeline/designs_quarantined");
      obs::note_set("quarantine/" + specs[d].name, quarantined[d]);
      log_warn("pipeline ", specs[d].name, " quarantined: ", quarantined[d]);
      continue;
    }
    if (cached[d]) {
      all.append(*cached[d]);
      cached[d].reset();
      continue;
    }
    all.append(runs[d]->samples);
    if (on_design) on_design(*runs[d]);
    runs[d].reset();  // free the heavy Design/congestion state eagerly
  }
  return all;
}

Dataset build_suite_dataset(
    const std::vector<BenchmarkSpec>& specs, const PipelineOptions& options,
    const std::function<void(const DesignRun&)>& on_design,
    std::size_t n_threads) {
  return build_suite_dataset(specs, options, SuiteBuildControl{}, on_design,
                             n_threads);
}

}  // namespace drcshap
