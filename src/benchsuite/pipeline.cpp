#include "benchsuite/pipeline.hpp"

#include <optional>

#include "drc/track_model.hpp"
#include "obs/registry.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace drcshap {

DesignRun run_pipeline(const BenchmarkSpec& spec,
                       const PipelineOptions& options, int group_id) {
  DRCSHAP_OBS_TIMER("pipeline/run");
  obs::counter_add("pipeline/designs");
  Stopwatch timer;
  const int group = group_id >= 0 ? group_id : spec.table_group;

  NetlistSpec netlist = generate_netlist(spec, options.generator);
  PlacerOptions placer_options = options.placer;
  placer_options.row_height = options.generator.row_height;
  placer_options.seed = spec.seed * 31 + 1;
  Design design = place_design(netlist, placer_options);

  GlobalRouteResult route = global_route(design, options.router);

  // The per-g-cell aggregates feed both the DRC oracle and feature
  // extraction; compute them once and share (the extractor takes ownership
  // after the oracle is done reading).
  std::vector<GCellAggregate> agg;
  {
    DRCSHAP_OBS_TIMER("features/aggregates");
    agg = compute_gcell_aggregates(design);
  }

  DrcReport drc = run_drc_oracle(design, route.congestion, agg, options.drc,
                                 options.n_threads);

  const FeatureExtractor extractor(design, route.congestion, std::move(agg));
  const std::vector<float> matrix = extractor.extract_all(options.n_threads);
  Dataset samples(FeatureSchema::kNumFeatures, FeatureSchema::names());
  for (std::size_t cell = 0; cell < design.grid().size(); ++cell) {
    samples.append_row(
        std::span<const float>(
            matrix.data() + cell * FeatureSchema::kNumFeatures,
            FeatureSchema::kNumFeatures),
        drc.hotspot[cell], group);
  }

  log_info("pipeline ", spec.name, ": ", design.num_cells(), " cells, ",
           design.grid().size(), " g-cells, ", drc.n_hotspots,
           " hotspots, edge_ovf ", route.edge_overflow, ", via_ovf ",
           route.via_overflow, " (", fmt_fixed(timer.seconds(), 1), "s)");

  return DesignRun{spec,
                   std::move(design),
                   std::move(route.congestion),
                   route.edge_overflow,
                   route.via_overflow,
                   std::move(drc),
                   std::move(samples)};
}

Dataset build_suite_dataset(
    const std::vector<BenchmarkSpec>& specs, const PipelineOptions& options,
    const std::function<void(const DesignRun&)>& on_design,
    std::size_t n_threads) {
  DRCSHAP_OBS_TIMER("pipeline/build_suite");
  // Designs fan out across the shared pool (each run_pipeline is seeded per
  // spec, so runs are order-independent); the results are appended — and
  // on_design observed — in spec order on this thread, so the Dataset is
  // bit-identical to the serial build and the callback needs no locking.
  std::vector<std::optional<DesignRun>> runs(specs.size());
  parallel_for_shared(
      specs.size(),
      [&](std::size_t d) {
        runs[d].emplace(run_pipeline(specs[d], options, static_cast<int>(d)));
      },
      n_threads, /*grain=*/1);
  Dataset all(FeatureSchema::kNumFeatures, FeatureSchema::names());
  for (std::size_t d = 0; d < specs.size(); ++d) {
    all.append(runs[d]->samples);
    if (on_design) on_design(*runs[d]);
    runs[d].reset();  // free the heavy Design/congestion state eagerly
  }
  return all;
}

}  // namespace drcshap
