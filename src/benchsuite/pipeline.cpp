#include "benchsuite/pipeline.hpp"

#include "features/labeler.hpp"
#include "obs/registry.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace drcshap {

DesignRun run_pipeline(const BenchmarkSpec& spec,
                       const PipelineOptions& options, int group_id) {
  DRCSHAP_OBS_TIMER("pipeline/run");
  obs::counter_add("pipeline/designs");
  Stopwatch timer;
  const int group = group_id >= 0 ? group_id : spec.table_group;

  NetlistSpec netlist = generate_netlist(spec, options.generator);
  PlacerOptions placer_options = options.placer;
  placer_options.row_height = options.generator.row_height;
  placer_options.seed = spec.seed * 31 + 1;
  Design design = place_design(netlist, placer_options);

  GlobalRouteResult route = global_route(design, options.router);

  DrcReport drc = run_drc_oracle(design, route.congestion, options.drc);

  const FeatureExtractor extractor(design, route.congestion);
  Dataset samples(FeatureSchema::kNumFeatures, FeatureSchema::names());
  {
    DRCSHAP_OBS_TIMER("features/extract");
    obs::counter_add("features/rows", design.grid().size());
    std::vector<float> row(FeatureSchema::kNumFeatures);
    for (std::size_t cell = 0; cell < design.grid().size(); ++cell) {
      extractor.extract_into(cell, row);
      samples.append_row(row, drc.hotspot[cell], group);
    }
  }

  log_info("pipeline ", spec.name, ": ", design.num_cells(), " cells, ",
           design.grid().size(), " g-cells, ", drc.n_hotspots,
           " hotspots, edge_ovf ", route.edge_overflow, ", via_ovf ",
           route.via_overflow, " (", fmt_fixed(timer.seconds(), 1), "s)");

  return DesignRun{spec,
                   std::move(design),
                   std::move(route.congestion),
                   route.edge_overflow,
                   route.via_overflow,
                   std::move(drc),
                   std::move(samples)};
}

Dataset build_suite_dataset(
    const std::vector<BenchmarkSpec>& specs, const PipelineOptions& options,
    const std::function<void(const DesignRun&)>& on_design) {
  Dataset all(FeatureSchema::kNumFeatures, FeatureSchema::names());
  for (std::size_t d = 0; d < specs.size(); ++d) {
    DesignRun run = run_pipeline(specs[d], options, static_cast<int>(d));
    all.append(run.samples);
    if (on_design) on_design(run);
  }
  return all;
}

}  // namespace drcshap
