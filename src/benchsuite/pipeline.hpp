#pragma once
// End-to-end data-acquisition pipeline (the middle panel of the paper's
// Fig. 1): benchmark spec -> synthetic netlist -> placement -> global route
// -> congestion map -> DRC oracle -> 387-feature samples with hotspot
// labels. One DesignRun per design; build_suite_dataset stitches the whole
// Table I suite into a single grouped dataset for the Table II protocol.

#include <functional>
#include <optional>

#include "benchsuite/design_generator.hpp"
#include "drc/drc_oracle.hpp"
#include "features/feature_extractor.hpp"
#include "ml/dataset.hpp"
#include "ml/experiment_state.hpp"
#include "route/global_router.hpp"

namespace drcshap {

struct PipelineOptions {
  GeneratorOptions generator;
  PlacerOptions placer;
  GlobalRouterOptions router;
  DrcOracleOptions drc;
  /// Worker cap for the intra-design parallel stages (DRC cell scoring and
  /// feature extraction) of one run_pipeline call: 0 = whole shared pool,
  /// 1 = serial. Results are bit-identical at any value. Under
  /// build_suite_dataset the outer per-design loop already owns the pool
  /// workers and these stages degrade to serial on them, so this knob
  /// matters for single-design workflows (explaining one hotspot map).
  std::size_t n_threads = 0;
};

/// Everything produced for one design.
struct DesignRun {
  BenchmarkSpec spec;
  Design design;
  CongestionMap congestion;
  long edge_overflow = 0;
  long via_overflow = 0;
  DrcReport drc;
  /// One row per g-cell; labels from drc.hotspot; group = `group_id` given
  /// to run_pipeline (defaults to the spec's Table I group).
  Dataset samples;
};

/// Runs the full pipeline for one design. `group_id` labels the dataset
/// rows (pass the design's index when per-design test splits are needed);
/// -1 uses spec.table_group.
DesignRun run_pipeline(const BenchmarkSpec& spec,
                       const PipelineOptions& options = {}, int group_id = -1);

/// Robustness knobs for build_suite_dataset.
struct SuiteBuildControl {
  /// When set (and enabled), each finished design's sample shard is
  /// committed atomically to the store as it completes, and a later run
  /// with the same config digest resumes by reusing committed shards —
  /// byte-identical to an uninterrupted build at any thread count. Torn,
  /// stale or corrupt shards are silently recomputed.
  const CheckpointStore* checkpoint = nullptr;
  /// When true, a design whose pipeline (or shard commit) throws is
  /// quarantined instead of aborting the build: its rows are dropped, the
  /// reason is recorded in the run report (note `quarantine/<design>`), and
  /// the `pipeline/designs_quarantined` counter is bumped. The result
  /// equals the full build with that design's group filtered out.
  bool quarantine_failures = false;
};

/// Runs the pipeline for every design in `specs` (group = design index into
/// `specs`) and concatenates the samples. Designs run in parallel on the
/// shared thread pool (`n_threads` caps the workers; 0 = whole pool, 1 =
/// serial) but samples are appended in spec order, so the result is
/// bit-identical to a serial build at any thread count. `on_design`
/// (optional) observes each DesignRun, always from the calling thread and
/// in spec order, e.g. to collect Table I statistics; on a resumed build it
/// fires only for freshly computed designs (checkpointed shards carry the
/// samples, not the full DesignRun).
Dataset build_suite_dataset(
    const std::vector<BenchmarkSpec>& specs, const PipelineOptions& options,
    const SuiteBuildControl& control,
    const std::function<void(const DesignRun&)>& on_design = nullptr,
    std::size_t n_threads = 0);

/// Convenience overload: no checkpointing, failures propagate.
Dataset build_suite_dataset(
    const std::vector<BenchmarkSpec>& specs, const PipelineOptions& options,
    const std::function<void(const DesignRun&)>& on_design = nullptr,
    std::size_t n_threads = 0);

}  // namespace drcshap
