#include "benchsuite/suite.hpp"

#include <stdexcept>

namespace drcshap {

const std::vector<BenchmarkSpec>& ispd2015_suite() {
  // Grid dimensions reproduce Table I's g-cell counts exactly where the
  // count is a perfect square and to within <1% otherwise. The difficulty
  // knob is calibrated against the paper's per-design hotspot counts
  // (e.g. des_perf_1: 676 hotspots in 5476 g-cells -> very congested;
  // des_perf_b / bridge32_b: zero hotspots -> comfortable designs).
  static const std::vector<BenchmarkSpec> kSuite = {
      // Group 1
      {"des_perf_b", 1, 600.0, 100, 100, 112.6, 0, 0.05, 1.0, 101, true},
      {"fft_2",      1, 265.0,  57,  57,  32.3, 0, 0.08, 1.0, 112, false},
      {"mult_1",     1, 550.0,  91,  91, 155.3, 0, 0.45, 1.0, 103, false},
      {"mult_2",     1, 555.0,  92,  92, 155.3, 0, 0.42, 1.0, 114, false},
      // Group 2
      {"fft_b",      2, 800.0,  81,  80,  30.6, 6, 0.90, 2.4, 201, false},
      {"mult_a",     2, 1500.0, 148, 147, 149.7, 5, 0.12, 1.0, 202, false},
      // Group 3
      {"mult_b",     3, 1500.0, 156, 155, 146.4, 7, 0.33, 1.0, 311, false},
      {"bridge32_a", 3, 400.0,  60,  59,  29.5, 4, 0.42, 1.2, 302, false},
      // Group 4
      {"des_perf_1", 4, 445.0,  74,  74, 112.6, 0, 0.55, 1.0, 411, false},
      {"mult_c",     4, 1500.0, 156, 155, 146.4, 7, 0.18, 1.0, 402, false},
      // Group 5
      {"des_perf_a", 5, 900.0, 107, 107, 108.3, 4, 0.35, 1.0, 501, false},
      {"fft_1",      5, 265.0,  44,  44,  32.3, 0, 0.32, 1.2, 512, false},
      {"fft_a",      5, 800.0,  81,  80,  30.6, 6, 0.10, 1.6, 503, false},
      {"bridge32_b", 5, 800.0, 102, 102,  28.9, 6, 0.04, 1.0, 504, true},
  };
  return kSuite;
}

const BenchmarkSpec& suite_spec(const std::string& name) {
  for (const BenchmarkSpec& spec : ispd2015_suite()) {
    if (spec.name == name) return spec;
  }
  throw std::out_of_range("suite_spec: unknown design '" + name + "'");
}

std::vector<int> suite_groups() { return {1, 2, 3, 4, 5}; }

}  // namespace drcshap
