#pragma once
// The 14-design synthetic benchmark suite mirroring the paper's Table I
// (ISPD 2015 designs in 65 nm with 5 routing layers): same design names,
// same 5-group partition, same layout sizes, macro counts, cell counts and
// (approximately) g-cell grids. Hotspot counts are produced downstream by
// our own DRC oracle; each spec's congestion profile is calibrated so the
// per-design hotspot character (dense vs sparse, macro-driven vs not)
// matches the paper's inventory.

#include <cstdint>
#include <string>
#include <vector>

namespace drcshap {

struct BenchmarkSpec {
  std::string name;
  int table_group = 1;      ///< Table I group (1..5)
  double die_microns = 0.0; ///< square die edge length
  std::size_t gcells_x = 0;
  std::size_t gcells_y = 0;
  double cells_thousands = 0.0;
  int n_macros = 0;
  /// 0..1 congestion/difficulty knob: raises placement density, net fanout
  /// and cross-region wiring, which the router turns into overflow and the
  /// oracle into hotspots.
  double difficulty = 0.5;
  /// Nets per cell relative to a typical standard-cell netlist. FFT-style
  /// designs are wiring-dominated (butterfly exchange networks), which is
  /// how a sparse macro design like fft_b still congests its channels.
  double wiring_richness = 1.0;
  std::uint64_t seed = 1;
  /// Designs the paper excludes from Table II (no DRC errors): evaluation
  /// code skips them for metrics but still trains on them.
  bool expect_zero_hotspots = false;
};

/// All 14 designs of Table I, paper order.
const std::vector<BenchmarkSpec>& ispd2015_suite();

/// Lookup by name; throws std::out_of_range for unknown names.
const BenchmarkSpec& suite_spec(const std::string& name);

/// The distinct Table I group ids {1,...,5}.
std::vector<int> suite_groups();

}  // namespace drcshap
