#include "core/brute_force_shap.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace drcshap {

double conditional_expectation(const DecisionTree& tree,
                               std::span<const float> features,
                               const std::vector<bool>& known) {
  const auto& nodes = tree.nodes();
  // Recursive lambda over node indices.
  auto recurse = [&](auto&& self, std::int32_t idx) -> double {
    const TreeNode& n = nodes[static_cast<std::size_t>(idx)];
    if (n.feature < 0) return n.value;
    if (known[static_cast<std::size_t>(n.feature)]) {
      const bool left =
          features[static_cast<std::size_t>(n.feature)] <= n.threshold;
      return self(self, left ? n.left : n.right);
    }
    const TreeNode& l = nodes[static_cast<std::size_t>(n.left)];
    const TreeNode& r = nodes[static_cast<std::size_t>(n.right)];
    return (l.cover * self(self, n.left) + r.cover * self(self, n.right)) /
           n.cover;
  };
  return recurse(recurse, 0);
}

std::vector<double> brute_force_shap_values(const DecisionTree& tree,
                                            std::span<const float> features,
                                            int max_used_features) {
  if (!tree.fitted()) throw std::logic_error("brute_force_shap: unfitted");
  std::set<std::int32_t> used_set;
  for (const TreeNode& n : tree.nodes()) {
    if (n.feature >= 0) used_set.insert(n.feature);
  }
  const std::vector<std::int32_t> used(used_set.begin(), used_set.end());
  const int k = static_cast<int>(used.size());
  if (k > max_used_features) {
    throw std::invalid_argument(
        "brute_force_shap: tree uses too many features (" +
        std::to_string(k) + ")");
  }
  std::vector<double> phi(features.size(), 0.0);
  if (k == 0) return phi;

  // Precompute E[f | S] for every subset mask of the used features.
  const std::size_t n_masks = std::size_t{1} << k;
  std::vector<double> expectation(n_masks);
  std::vector<bool> known(features.size(), false);
  for (std::size_t mask = 0; mask < n_masks; ++mask) {
    std::fill(known.begin(), known.end(), false);
    for (int b = 0; b < k; ++b) {
      if (mask & (std::size_t{1} << b)) {
        known[static_cast<std::size_t>(used[static_cast<std::size_t>(b)])] = true;
      }
    }
    expectation[mask] = conditional_expectation(tree, features, known);
  }

  // Factorial weights |S|! (k - |S| - 1)! / k!.
  std::vector<double> factorial(static_cast<std::size_t>(k) + 1, 1.0);
  for (std::size_t i = 1; i < factorial.size(); ++i) {
    factorial[i] = factorial[i - 1] * static_cast<double>(i);
  }
  const double k_factorial = factorial[static_cast<std::size_t>(k)];

  for (int j = 0; j < k; ++j) {
    const std::size_t j_bit = std::size_t{1} << j;
    double value = 0.0;
    for (std::size_t mask = 0; mask < n_masks; ++mask) {
      if (mask & j_bit) continue;  // S must exclude j
      const int s = __builtin_popcountll(mask);
      const double weight =
          factorial[static_cast<std::size_t>(s)] *
          factorial[static_cast<std::size_t>(k - s - 1)] / k_factorial;
      value += weight * (expectation[mask | j_bit] - expectation[mask]);
    }
    phi[static_cast<std::size_t>(used[static_cast<std::size_t>(j)])] = value;
  }
  return phi;
}

std::vector<double> brute_force_shap_values(
    const RandomForestClassifier& forest, std::span<const float> features,
    int max_used_features) {
  std::vector<double> phi(features.size(), 0.0);
  for (const DecisionTree& tree : forest.trees()) {
    const auto tree_phi =
        brute_force_shap_values(tree, features, max_used_features);
    for (std::size_t f = 0; f < phi.size(); ++f) phi[f] += tree_phi[f];
  }
  const double inv = 1.0 / static_cast<double>(forest.trees().size());
  for (double& v : phi) v *= inv;
  return phi;
}

}  // namespace drcshap
