#pragma once
// Exponential-time exact Shapley values, straight from Eq. (2) of the paper,
// with the conditional expectations E[f(x) | x_S] defined by cover-weighted
// tree traversal (identical semantics to the SHAP tree explainer).
//
// This is the verification oracle for TreeShapExplainer: on any tree using
// at most ~20 distinct features the two must agree exactly. Features the
// tree never splits on are null players and receive 0, so the enumeration
// only runs over the features the tree actually uses.

#include <span>
#include <vector>

#include "core/random_forest.hpp"

namespace drcshap {

/// E[f(x) | x_S]: splits on known features follow x; unknown splits average
/// both children weighted by training cover.
double conditional_expectation(const DecisionTree& tree,
                               std::span<const float> features,
                               const std::vector<bool>& known);

/// Exact Shapley values for one tree. Throws if the tree uses more than
/// `max_used_features` distinct features (default 22: 2^22 subsets).
std::vector<double> brute_force_shap_values(const DecisionTree& tree,
                                            std::span<const float> features,
                                            int max_used_features = 22);

/// Exact Shapley values for a forest (mean over trees, by linearity).
std::vector<double> brute_force_shap_values(
    const RandomForestClassifier& forest, std::span<const float> features,
    int max_used_features = 22);

}  // namespace drcshap
