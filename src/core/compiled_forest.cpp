#include "core/compiled_forest.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string_view>

namespace drcshap {

namespace detail {

void predict_block8_scalar(const CompiledForestView& forest,
                           const std::int32_t* blockq, double* sums) {
  for (std::size_t lane = 0; lane < CompiledForest::kBlock; ++lane) {
    sums[lane] = 0.0;
  }
  for (std::size_t t = 0; t < forest.n_trees; ++t) {
    std::int32_t node[CompiledForest::kBlock];
    for (auto& n : node) n = forest.roots[t];
    const std::int32_t depth = forest.depths[t];
    for (std::int32_t d = 0; d < depth; ++d) {
      for (std::size_t lane = 0; lane < CompiledForest::kBlock; ++lane) {
        const auto n = static_cast<std::size_t>(node[lane]);
        const std::int32_t qx =
            blockq[static_cast<std::size_t>(forest.feature[n]) *
                       CompiledForest::kBlock +
                   lane];
        node[lane] = forest.child[n] +
                     static_cast<std::int32_t>(qx > forest.qthreshold[n]);
      }
    }
    for (std::size_t lane = 0; lane < CompiledForest::kBlock; ++lane) {
      sums[lane] += forest.value[static_cast<std::size_t>(node[lane])];
    }
  }
}

}  // namespace detail

namespace {

constexpr std::int32_t kLeafThreshold =
    std::numeric_limits<std::int32_t>::max();

bool env_disables_simd() {
  const char* env = std::getenv("DRCSHAP_SIMD");
  if (env == nullptr) return false;
  const std::string_view v(env);
  return v == "0" || v == "off" || v == "OFF" || v == "false" || v == "FALSE";
}

void fnv_mix(std::uint64_t& hash, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 1099511628211ULL;
  }
}

template <class T>
void fnv_mix_vector(std::uint64_t& hash, const std::vector<T>& v) {
  const std::uint64_t len = v.size();
  fnv_mix(hash, &len, sizeof(len));
  fnv_mix(hash, v.data(), v.size() * sizeof(T));
}

}  // namespace

CompiledForest::CompiledForest(const FlatForest& flat)
    : n_features_(flat.n_features()), max_depth_(flat.max_depth()) {
  const std::size_t n_nodes = flat.n_nodes();

  // Pass 1: distinct sorted thresholds per feature; a split's code is its
  // rank. Duplicates collapse (codes stay dense), and the u16 ceiling is a
  // hard precondition: code_of must return values that fit the per-sample
  // u16 vectors.
  std::vector<std::vector<float>> per_feature(n_features_);
  for (std::size_t n = 0; n < n_nodes; ++n) {
    const std::int32_t f = flat.feature()[n];
    if (f >= 0) per_feature[static_cast<std::size_t>(f)].push_back(
        flat.threshold()[n]);
  }
  cut_begin_.assign(n_features_ + 1, 0);
  for (std::size_t f = 0; f < n_features_; ++f) {
    auto& cuts = per_feature[f];
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    if (cuts.size() > kMaxCutsPerFeature) {
      throw std::invalid_argument(
          "CompiledForest: feature " + std::to_string(f) + " has " +
          std::to_string(cuts.size()) +
          " distinct thresholds, exceeding the u16 code space");
    }
    cut_begin_[f + 1] =
        cut_begin_[f] + static_cast<std::int32_t>(cuts.size());
  }
  cuts_.reserve(static_cast<std::size_t>(cut_begin_[n_features_]));
  for (auto& cuts : per_feature) {
    cuts_.insert(cuts_.end(), cuts.begin(), cuts.end());
  }

  // Pass 2: renumber every tree breadth-first. Children are assigned
  // adjacent ids in pop order (left then right), leaves self-loop with an
  // always-false split so the fixed-depth descent parks on them.
  feature_.assign(n_nodes, 0);
  qthreshold_.assign(n_nodes, kLeafThreshold);
  child_.assign(n_nodes, 0);
  value_.assign(n_nodes, 0.0);
  cover_.assign(n_nodes, 0.0);
  roots_.reserve(flat.n_trees());
  depths_.reserve(flat.n_trees());

  std::vector<std::int32_t> queue;  // flat ids, in BFS (= new id) order
  std::int32_t base = 0;            // absolute id of the next tree's root
  for (std::size_t t = 0; t < flat.n_trees(); ++t) {
    queue.clear();
    queue.push_back(flat.root(t));
    roots_.push_back(base);
    depths_.push_back(flat.tree_depth(t));
    std::int32_t next_free = 1;  // tree-local id of the next unassigned slot
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const auto flat_id = static_cast<std::size_t>(queue[head]);
      const auto new_id =
          static_cast<std::size_t>(base + static_cast<std::int32_t>(head));
      value_[new_id] = flat.value()[flat_id];
      cover_[new_id] = flat.cover()[flat_id];
      const std::int32_t f = flat.feature()[flat_id];
      if (f < 0) {
        // Leaf: self-loop, never-true split, feature 0 for safe gathers.
        child_[new_id] = static_cast<std::int32_t>(new_id);
        continue;
      }
      feature_[new_id] = f;
      const float threshold = flat.threshold()[flat_id];
      const float* begin =
          cuts_.data() + cut_begin_[static_cast<std::size_t>(f)];
      const float* end =
          cuts_.data() + cut_begin_[static_cast<std::size_t>(f) + 1];
      qthreshold_[new_id] = static_cast<std::int32_t>(
          std::lower_bound(begin, end, threshold) - begin);
      child_[new_id] = base + next_free;
      queue.push_back(flat.left()[flat_id]);
      queue.push_back(flat.right()[flat_id]);
      next_free += 2;
    }
    base += static_cast<std::int32_t>(queue.size());
  }
}

std::shared_ptr<const CompiledForest> CompiledForest::try_compile(
    const FlatForest& flat, std::string* reason) {
  try {
    return std::make_shared<const CompiledForest>(flat);
  } catch (const std::invalid_argument& err) {
    if (reason != nullptr) *reason = err.what();
    return nullptr;
  }
}

std::uint32_t CompiledForest::code_of(std::size_t feature, float value) const {
  const float* begin = cuts_.data() + cut_begin_[feature];
  const float* end = cuts_.data() + cut_begin_[feature + 1];
  if (std::isnan(value)) {
    // IEEE: NaN <= t is false for every t, i.e. always descend right.
    return static_cast<std::uint32_t>(end - begin);
  }
  return static_cast<std::uint32_t>(std::lower_bound(begin, end, value) -
                                    begin);
}

void CompiledForest::quantize_sample(const float* x,
                                     std::uint16_t* codes) const {
  for (std::size_t f = 0; f < n_features_; ++f) {
    codes[f] = static_cast<std::uint16_t>(code_of(f, x[f]));
  }
}

double CompiledForest::predict_coded(const std::uint16_t* codes) const {
  double total = 0.0;
  for (std::size_t t = 0; t < roots_.size(); ++t) {
    std::int32_t node = roots_[t];
    const std::int32_t depth = depths_[t];
    for (std::int32_t d = 0; d < depth; ++d) {
      const auto n = static_cast<std::size_t>(node);
      const auto qx = static_cast<std::int32_t>(
          codes[static_cast<std::size_t>(feature_[n])]);
      node = child_[n] + static_cast<std::int32_t>(qx > qthreshold_[n]);
    }
    total += value_[static_cast<std::size_t>(node)];
  }
  return total / static_cast<double>(roots_.size());
}

double CompiledForest::predict(const float* x) const {
  std::vector<std::uint16_t> codes(n_features_);
  quantize_sample(x, codes.data());
  return predict_coded(codes.data());
}

void CompiledForest::predict_batch(const float* rows, std::size_t n_rows,
                                   double* out, Simd simd) const {
  const bool use_simd = simd == Simd::kAuto && simd_available();
  const detail::CompiledForestView forest = view();
  std::vector<std::int32_t> blockq(n_features_ * kBlock);
  double sums[kBlock];
  for (std::size_t begin = 0; begin < n_rows; begin += kBlock) {
    const std::size_t lanes = std::min(kBlock, n_rows - begin);
    // Interleave the lane codes as blockq[f*8 + lane]; pad short tails with
    // code 0 (a valid descent whose result is discarded) so one kernel
    // shape serves every block.
    if (lanes < kBlock) std::fill(blockq.begin(), blockq.end(), 0);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const float* x = rows + (begin + lane) * n_features_;
      for (std::size_t f = 0; f < n_features_; ++f) {
        blockq[f * kBlock + lane] =
            static_cast<std::int32_t>(code_of(f, x[f]));
      }
    }
#if DRCSHAP_SIMD_ENABLED
    if (use_simd) {
      detail::predict_block8_avx2(forest, blockq.data(), sums);
    } else {
      detail::predict_block8_scalar(forest, blockq.data(), sums);
    }
#else
    (void)use_simd;
    detail::predict_block8_scalar(forest, blockq.data(), sums);
#endif
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      out[begin + lane] = sums[lane] / static_cast<double>(n_trees());
    }
  }
}

bool CompiledForest::simd_available() {
#if DRCSHAP_SIMD_ENABLED
  static const bool cpu_ok = detail::cpu_supports_avx2();
  return cpu_ok && !env_disables_simd();
#else
  return false;
#endif
}

std::uint64_t CompiledForest::layout_digest() const {
  std::uint64_t hash = 1469598103934665603ULL;
  const std::uint64_t shape[2] = {n_features_,
                                  static_cast<std::uint64_t>(max_depth_)};
  fnv_mix(hash, shape, sizeof(shape));
  fnv_mix_vector(hash, cuts_);
  fnv_mix_vector(hash, cut_begin_);
  fnv_mix_vector(hash, feature_);
  fnv_mix_vector(hash, qthreshold_);
  fnv_mix_vector(hash, child_);
  fnv_mix_vector(hash, value_);
  fnv_mix_vector(hash, cover_);
  fnv_mix_vector(hash, roots_);
  fnv_mix_vector(hash, depths_);
  return hash;
}

}  // namespace drcshap
