#pragma once
// Compiled inference backend: a fitted ensemble lowered to a quantized,
// breadth-first, branch-free layout evaluated eight samples at a time.
//
// Three lowering steps, each exactness-preserving:
//
//  1. *Monotone threshold quantization.* Per feature, every distinct split
//     threshold in the forest is collected and sorted; a threshold's u16
//     code is its rank, and a sample value's code is the count of
//     thresholds strictly below it. Then `code(x) <= code(t)` holds exactly
//     when `x <= t` for every totally ordered float (±Inf included; NaN is
//     mapped to the max code, reproducing the IEEE `NaN <= t == false`
//     descent). Comparisons become u16 integer compares against a
//     per-sample code vector that fits in L1 (387 features = 774 bytes).
//
//  2. *Breadth-first, self-looping node layout.* Nodes are renumbered in
//     BFS order so a node's children are adjacent (`right == left + 1`),
//     and every leaf points at itself with an always-false split
//     (qthreshold = INT32_MAX). Descent is then branch-free arithmetic —
//     `node = child[node] + (qx > qthreshold[node])` — iterated exactly
//     tree-depth times with no leaf test and no branch mispredicts.
//
//  3. *Batch-of-8 evaluation.* Eight samples descend one tree in lockstep,
//     amortizing every node-array cache line eight ways. The inner step is
//     four gathers and an add: with AVX2 (DRCSHAP_SIMD build option +
//     runtime cpuid + $DRCSHAP_SIMD kill switch) it runs as one vector op
//     per gather; the scalar block kernel — always compiled — performs the
//     identical per-lane arithmetic, so SIMD on/off is bit-identical.
//
// Per-lane leaf values accumulate in tree order with the same double adds
// and final divide as FlatForest::predict, so the compiled engine's
// probabilities are byte-identical to the exact engine's — tested across
// the design suite and a randomized-forest fuzz corpus.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/flat_forest.hpp"

#ifndef DRCSHAP_SIMD_ENABLED
#define DRCSHAP_SIMD_ENABLED 0
#endif

namespace drcshap {

namespace detail {

/// Raw-pointer view of the compiled node arrays, shared by the scalar and
/// AVX2 block kernels (the AVX2 translation unit is compiled with -mavx2
/// and must not see any inline library code it could vectorize).
struct CompiledForestView {
  const std::int32_t* feature;     ///< per node; 0 on leaves (safe gather)
  const std::int32_t* qthreshold;  ///< per node; INT32_MAX on leaves
  const std::int32_t* child;       ///< left child; right = child+1; leaf = self
  const double* value;             ///< per node; leaf P(y=1)
  const std::int32_t* roots;       ///< per tree
  const std::int32_t* depths;      ///< per tree (edge depth)
  std::size_t n_trees;
};

/// Descend 8 samples through every tree and write the per-lane sums of leaf
/// values (tree order, not yet divided by n_trees). `blockq` holds the
/// feature codes interleaved as blockq[feature * 8 + lane], widened to i32.
void predict_block8_scalar(const CompiledForestView& forest,
                           const std::int32_t* blockq, double* sums);

#if DRCSHAP_SIMD_ENABLED
/// AVX2 twin of predict_block8_scalar: same arithmetic, vector gathers.
void predict_block8_avx2(const CompiledForestView& forest,
                         const std::int32_t* blockq, double* sums);
/// Runtime cpuid guard (false on non-x86 or pre-AVX2 hardware).
bool cpu_supports_avx2();
#endif

}  // namespace detail

class CompiledForest {
 public:
  /// Samples evaluated per block kernel invocation.
  static constexpr std::size_t kBlock = 8;
  /// A feature with more distinct thresholds than this cannot be coded in
  /// u16 and the forest stays on the exact engine (never hit by binned
  /// training, which caps distinct splits per feature at max_bins - 1).
  static constexpr std::size_t kMaxCutsPerFeature = 65535;

  /// Per-call kernel selection; kAuto uses AVX2 when simd_available().
  enum class Simd { kAuto, kScalar };

  /// Lowers `flat`; throws std::invalid_argument if any feature exceeds
  /// kMaxCutsPerFeature distinct thresholds.
  explicit CompiledForest(const FlatForest& flat);

  /// Non-throwing factory: nullptr (with `reason` filled when non-null)
  /// if the ensemble cannot be quantized.
  static std::shared_ptr<const CompiledForest> try_compile(
      const FlatForest& flat, std::string* reason = nullptr);

  std::size_t n_trees() const { return roots_.size(); }
  std::size_t n_features() const { return n_features_; }
  std::size_t n_nodes() const { return feature_.size(); }
  int max_depth() const { return max_depth_; }
  std::int32_t root(std::size_t tree) const { return roots_[tree]; }
  int tree_depth(std::size_t tree) const { return depths_[tree]; }

  // BFS node arrays (absolute ids). Shared with the SHAP tree explainer,
  // whose hot/cold descent reuses the quantized compares and the adjacent
  // child pairs. A leaf is a node with child()[n] == n.
  const std::int32_t* feature() const { return feature_.data(); }
  const std::int32_t* qthreshold() const { return qthreshold_.data(); }
  const std::int32_t* child() const { return child_.data(); }
  const double* value() const { return value_.data(); }
  const double* cover() const { return cover_.data(); }

  /// Distinct sorted thresholds of `feature` (rank = u16 code).
  std::size_t n_cuts(std::size_t feature) const {
    return static_cast<std::size_t>(cut_begin_[feature + 1] -
                                    cut_begin_[feature]);
  }

  /// Code one sample: codes[f] = #thresholds of f strictly below x[f]
  /// (NaN maps to n_cuts(f), i.e. "greater than everything"). `codes` must
  /// hold n_features() entries.
  void quantize_sample(const float* x, std::uint16_t* codes) const;

  /// P(y=1 | x): scalar quantize + branch-free descent, byte-identical to
  /// FlatForest::predict.
  double predict(const float* x) const;
  /// Same, for a sample already coded by quantize_sample.
  double predict_coded(const std::uint16_t* codes) const;

  /// Scores `n_rows` row-major samples into out[0..n_rows). Runs the block
  /// kernel on every 8-lane group (short tails are padded with code-0
  /// lanes whose results are discarded); serial — callers parallelize over
  /// row chunks.
  void predict_batch(const float* rows, std::size_t n_rows, double* out,
                     Simd simd = Simd::kAuto) const;

  /// True when the AVX2 kernel was compiled in, the CPU supports it and
  /// $DRCSHAP_SIMD is not "0"/"off"/"false". The scalar block kernel is the
  /// bit-identical fallback whenever this is false.
  static bool simd_available();
  /// True when the build compiled the AVX2 kernel (DRCSHAP_SIMD=ON and the
  /// compiler/arch supported -mavx2).
  static constexpr bool simd_compiled() { return DRCSHAP_SIMD_ENABLED != 0; }

  /// FNV-1a digest over every array of the lowered layout (cuts, node
  /// arrays, roots, depths). Two compilations of byte-identical ensembles
  /// — e.g. before and after a model_io round trip — must agree.
  std::uint64_t layout_digest() const;

  detail::CompiledForestView view() const {
    return {feature_.data(), qthreshold_.data(), child_.data(), value_.data(),
            roots_.data(),   depths_.data(),    n_trees()};
  }

 private:
  std::uint32_t code_of(std::size_t feature, float value) const;

  // Per-feature sorted distinct thresholds, ragged storage.
  std::vector<float> cuts_;
  std::vector<std::int32_t> cut_begin_;  ///< size n_features + 1

  // BFS node arrays.
  std::vector<std::int32_t> feature_;
  std::vector<std::int32_t> qthreshold_;
  std::vector<std::int32_t> child_;
  std::vector<double> value_;
  std::vector<double> cover_;
  std::vector<std::int32_t> roots_;
  std::vector<std::int32_t> depths_;

  std::size_t n_features_ = 0;
  int max_depth_ = 0;
};

}  // namespace drcshap
