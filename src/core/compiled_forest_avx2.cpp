// AVX2 block kernel for the compiled forest backend. This translation unit
// is the only one compiled with -mavx2 (see src/CMakeLists.txt), and it is
// only ever entered after the runtime cpuid guard below says the host can
// execute it; everything else in the library stays baseline-ISA so the
// binary runs on pre-AVX2 hardware with the scalar block kernel.
//
// The arithmetic mirrors predict_block8_scalar lane for lane: integer
// gathers and compares pick the child, and the per-lane leaf-value sums
// accumulate as independent IEEE double adds in tree order — so SIMD on
// and off produce byte-identical probabilities.

#include "core/compiled_forest.hpp"

#if DRCSHAP_SIMD_ENABLED

#include <immintrin.h>

#include <algorithm>

namespace drcshap::detail {

bool cpu_supports_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

namespace {

/// One descent step for 8 lanes: gather the node fields, compare codes,
/// pick the child. A leaf self-loops (child = self, qthreshold = INT32_MAX)
/// so stepping past a tree's own depth is a no-op — which is what lets the
/// caller run several trees in lockstep to the *group's* max depth.
inline __m256i step(const CompiledForestView& forest,
                    const std::int32_t* blockq, const __m256i lane_offsets,
                    const __m256i node) {
  const __m256i feature =
      _mm256_i32gather_epi32(forest.feature, node, sizeof(std::int32_t));
  const __m256i qthreshold =
      _mm256_i32gather_epi32(forest.qthreshold, node, sizeof(std::int32_t));
  // Lane codes live at blockq[feature * 8 + lane].
  const __m256i code_index =
      _mm256_add_epi32(_mm256_slli_epi32(feature, 3), lane_offsets);
  const __m256i qx =
      _mm256_i32gather_epi32(blockq, code_index, sizeof(std::int32_t));
  const __m256i child =
      _mm256_i32gather_epi32(forest.child, node, sizeof(std::int32_t));
  // cmpgt yields 0 / -1; child - (-1) selects the right sibling.
  const __m256i go_right = _mm256_cmpgt_epi32(qx, qthreshold);
  return _mm256_sub_epi32(child, go_right);
}

/// Add tree `node`'s leaf values to the lane accumulators.
inline void accumulate(const double* value, const __m256i node,
                       __m256d& acc_lo, __m256d& acc_hi) {
  acc_lo = _mm256_add_pd(
      acc_lo,
      _mm256_i64gather_pd(value,
                          _mm256_cvtepi32_epi64(_mm256_castsi256_si128(node)),
                          sizeof(double)));
  acc_hi = _mm256_add_pd(
      acc_hi, _mm256_i64gather_pd(
                  value,
                  _mm256_cvtepi32_epi64(_mm256_extracti128_si256(node, 1)),
                  sizeof(double)));
}

}  // namespace

void predict_block8_avx2(const CompiledForestView& forest,
                         const std::int32_t* blockq, double* sums) {
  static_assert(CompiledForest::kBlock == 8);
  const __m256i lane_offsets = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  __m256d acc_lo = _mm256_setzero_pd();  // lanes 0..3
  __m256d acc_hi = _mm256_setzero_pd();  // lanes 4..7
  // Four trees descend at once: each step is a chain of dependent gathers,
  // so a single tree is latency-bound — four independent chains keep the
  // gather ports busy. All four run to the group's max depth (the self-
  // looping leaves make the extra steps no-ops), and the leaf values are
  // added strictly in tree order, so the sums are bit-identical to the
  // scalar kernel's.
  std::size_t t = 0;
  for (; t + 4 <= forest.n_trees; t += 4) {
    __m256i n0 = _mm256_set1_epi32(forest.roots[t]);
    __m256i n1 = _mm256_set1_epi32(forest.roots[t + 1]);
    __m256i n2 = _mm256_set1_epi32(forest.roots[t + 2]);
    __m256i n3 = _mm256_set1_epi32(forest.roots[t + 3]);
    const std::int32_t depth =
        std::max(std::max(forest.depths[t], forest.depths[t + 1]),
                 std::max(forest.depths[t + 2], forest.depths[t + 3]));
    for (std::int32_t d = 0; d < depth; ++d) {
      n0 = step(forest, blockq, lane_offsets, n0);
      n1 = step(forest, blockq, lane_offsets, n1);
      n2 = step(forest, blockq, lane_offsets, n2);
      n3 = step(forest, blockq, lane_offsets, n3);
    }
    accumulate(forest.value, n0, acc_lo, acc_hi);
    accumulate(forest.value, n1, acc_lo, acc_hi);
    accumulate(forest.value, n2, acc_lo, acc_hi);
    accumulate(forest.value, n3, acc_lo, acc_hi);
  }
  for (; t < forest.n_trees; ++t) {
    __m256i node = _mm256_set1_epi32(forest.roots[t]);
    const std::int32_t depth = forest.depths[t];
    for (std::int32_t d = 0; d < depth; ++d) {
      node = step(forest, blockq, lane_offsets, node);
    }
    accumulate(forest.value, node, acc_lo, acc_hi);
  }
  _mm256_storeu_pd(sums, acc_lo);
  _mm256_storeu_pd(sums + 4, acc_hi);
}

}  // namespace drcshap::detail

#endif  // DRCSHAP_SIMD_ENABLED
