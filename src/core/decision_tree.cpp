#include "core/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace drcshap {

BinnedMatrix::BinnedMatrix(const Dataset& data, int max_bins)
    : n_rows_(data.n_rows()), n_features_(data.n_features()) {
  if (max_bins < 2 || max_bins > 256) {
    throw std::invalid_argument("BinnedMatrix: max_bins must be in [2, 256]");
  }
  if (n_rows_ == 0) throw std::invalid_argument("BinnedMatrix: empty dataset");
  bins_.resize(n_rows_ * n_features_);
  n_bins_.resize(n_features_);
  split_values_.resize(n_features_);

  std::vector<float> column(n_rows_);
  for (std::size_t f = 0; f < n_features_; ++f) {
    for (std::size_t r = 0; r < n_rows_; ++r) column[r] = data.row(r)[f];
    std::vector<float> sorted = column;
    std::sort(sorted.begin(), sorted.end());

    // Candidate cut points: midpoints between distinct consecutive values,
    // thinned to quantile positions when there are too many.
    std::vector<float>& cuts = split_values_[f];
    cuts.clear();
    std::vector<float> distinct;
    for (const float v : sorted) {
      if (distinct.empty() || v != distinct.back()) distinct.push_back(v);
    }
    if (static_cast<int>(distinct.size()) <= max_bins) {
      for (std::size_t k = 0; k + 1 < distinct.size(); ++k) {
        cuts.push_back((distinct[k] + distinct[k + 1]) / 2.0f);
      }
    } else {
      // Quantile cuts over the raw (duplicated) distribution, deduplicated.
      for (int b = 1; b < max_bins; ++b) {
        const std::size_t pos = static_cast<std::size_t>(
            static_cast<double>(b) * static_cast<double>(n_rows_) / max_bins);
        const float lo = sorted[std::min(pos, n_rows_ - 1)];
        // Midpoint to the next distinct value so the cut separates values.
        const auto next = std::upper_bound(distinct.begin(), distinct.end(), lo);
        if (next == distinct.end()) continue;
        const float cut = (lo + *next) / 2.0f;
        if (cuts.empty() || cut > cuts.back()) cuts.push_back(cut);
      }
    }
    n_bins_[f] = static_cast<int>(cuts.size()) + 1;

    // Column-major bin codes (per-feature contiguous: node histograms walk
    // one feature over scattered rows, so this is the cache-friendly layout).
    std::uint8_t* out = bins_.data() + f * n_rows_;
    for (std::size_t r = 0; r < n_rows_; ++r) {
      const auto it = std::upper_bound(cuts.begin(), cuts.end(), column[r]);
      out[r] = static_cast<std::uint8_t>(it - cuts.begin());
    }
  }
}

float BinnedMatrix::split_threshold(std::size_t feature, int b) const {
  return split_values_.at(feature).at(static_cast<std::size_t>(b));
}

namespace {

double gini(double w_neg, double w_pos) {
  const double total = w_neg + w_pos;
  if (total <= 0.0) return 0.0;
  const double p = w_pos / total;
  return 2.0 * p * (1.0 - p);
}

struct SplitCandidate {
  bool valid = false;
  std::size_t feature = 0;
  int bin = 0;          ///< go left if bin(x) <= bin
  double gain = 0.0;
};

}  // namespace

void DecisionTree::fit(const Dataset& data, const DecisionTreeOptions& options,
                       int max_bins) {
  const BinnedMatrix binned(data, max_bins);
  std::vector<std::size_t> rows(data.n_rows());
  std::iota(rows.begin(), rows.end(), 0);
  fit_binned(binned, data, rows, options);
}

void DecisionTree::fit_binned(const BinnedMatrix& binned, const Dataset& data,
                              std::span<const std::size_t> rows,
                              const DecisionTreeOptions& options) {
  if (binned.n_rows() != data.n_rows() ||
      binned.n_features() != data.n_features()) {
    throw std::invalid_argument("DecisionTree: binning/dataset mismatch");
  }
  if (rows.empty()) throw std::invalid_argument("DecisionTree: no rows");
  n_features_ = data.n_features();
  nodes_.clear();
  Rng rng(options.seed);

  std::size_t mtry;
  if (options.max_features < 0) {
    mtry = n_features_;
  } else if (options.max_features == 0) {
    mtry = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::sqrt(static_cast<double>(n_features_))));
  } else {
    mtry = std::min<std::size_t>(static_cast<std::size_t>(options.max_features),
                                 n_features_);
  }

  // Shared work buffers.
  std::vector<std::size_t> index(rows.begin(), rows.end());
  std::vector<double> hist_neg(256), hist_pos(256);

  struct BuildItem {
    std::int32_t node;
    std::size_t begin, end;
    int depth;
  };
  std::vector<BuildItem> stack;

  auto weight_of = [&](std::size_t row) {
    return data.label(row) ? options.positive_weight : 1.0;
  };

  auto make_node = [&](std::size_t begin, std::size_t end) {
    double w_pos = 0.0, w_neg = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      (data.label(index[i]) ? w_pos : w_neg) += weight_of(index[i]);
    }
    TreeNode node;
    node.cover = w_pos + w_neg;
    node.value = node.cover > 0.0 ? w_pos / node.cover : 0.0;
    nodes_.push_back(node);
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  const std::int32_t root = make_node(0, index.size());
  stack.push_back({root, 0, index.size(), 0});

  while (!stack.empty()) {
    const BuildItem item = stack.back();
    stack.pop_back();
    const std::size_t count = item.end - item.begin;
    TreeNode& node = nodes_[static_cast<std::size_t>(item.node)];

    const bool pure = node.value <= 0.0 || node.value >= 1.0;
    const bool too_deep =
        options.max_depth >= 0 && item.depth >= options.max_depth;
    if (pure || too_deep || count < options.min_samples_split) {
      continue;  // stays a leaf
    }

    // Candidate feature subset (random subspace).
    std::vector<std::size_t> candidates;
    if (mtry == n_features_) {
      candidates.resize(n_features_);
      std::iota(candidates.begin(), candidates.end(), 0);
    } else {
      candidates = rng.sample_without_replacement(n_features_, mtry);
    }

    const double parent_impurity =
        gini(node.cover * (1.0 - node.value), node.cover * node.value);
    SplitCandidate best;
    for (const std::size_t f : candidates) {
      const int nb = binned.n_bins(f);
      if (nb < 2) continue;
      std::fill(hist_neg.begin(), hist_neg.begin() + nb, 0.0);
      std::fill(hist_pos.begin(), hist_pos.begin() + nb, 0.0);
      for (std::size_t i = item.begin; i < item.end; ++i) {
        const std::size_t row = index[i];
        const std::uint8_t b = binned.bin(row, f);
        (data.label(row) ? hist_pos[b] : hist_neg[b]) += weight_of(row);
      }
      double left_neg = 0.0, left_pos = 0.0;
      for (int b = 0; b + 1 < nb; ++b) {
        left_neg += hist_neg[b];
        left_pos += hist_pos[b];
        const double wl = left_neg + left_pos;
        const double wr = node.cover - wl;
        if (wl <= 0.0 || wr <= 0.0) continue;
        const double right_neg = node.cover * (1.0 - node.value) - left_neg;
        const double right_pos = node.cover * node.value - left_pos;
        const double gain =
            parent_impurity - (wl * gini(left_neg, left_pos) +
                               wr * gini(right_neg, right_pos)) /
                                  node.cover;
        if (gain > best.gain + 1e-12) {
          best = {true, f, b, gain};
        }
      }
    }

    if (!best.valid || best.gain <= options.min_impurity_decrease) continue;

    // Partition rows by the chosen split.
    const auto mid_it = std::partition(
        index.begin() + static_cast<std::ptrdiff_t>(item.begin),
        index.begin() + static_cast<std::ptrdiff_t>(item.end),
        [&](std::size_t row) {
          return binned.bin(row, best.feature) <= best.bin;
        });
    const std::size_t mid =
        static_cast<std::size_t>(mid_it - index.begin());
    const std::size_t n_left = mid - item.begin;
    const std::size_t n_right = item.end - mid;
    if (n_left < options.min_samples_leaf ||
        n_right < options.min_samples_leaf || n_left == 0 || n_right == 0) {
      continue;
    }

    const std::int32_t left = make_node(item.begin, mid);
    const std::int32_t right = make_node(mid, item.end);
    // `node` reference may dangle after make_node reallocation: re-fetch.
    TreeNode& parent = nodes_[static_cast<std::size_t>(item.node)];
    parent.feature = static_cast<std::int32_t>(best.feature);
    parent.threshold = binned.split_threshold(best.feature, best.bin);
    parent.left = left;
    parent.right = right;
    stack.push_back({left, item.begin, mid, item.depth + 1});
    stack.push_back({right, mid, item.end, item.depth + 1});
  }
  depth_ = compute_depth();
}

double DecisionTree::predict_proba(std::span<const float> features) const {
  if (!fitted()) throw std::logic_error("DecisionTree: not fitted");
  if (features.size() != n_features_) {
    throw std::invalid_argument("DecisionTree: feature count mismatch");
  }
  std::int32_t node = 0;
  while (nodes_[static_cast<std::size_t>(node)].feature >= 0) {
    const TreeNode& n = nodes_[static_cast<std::size_t>(node)];
    node = features[static_cast<std::size_t>(n.feature)] <= n.threshold
               ? n.left
               : n.right;
  }
  return nodes_[static_cast<std::size_t>(node)].value;
}

std::size_t DecisionTree::n_leaves() const {
  std::size_t leaves = 0;
  for (const TreeNode& n : nodes_) {
    if (n.feature < 0) ++leaves;
  }
  return leaves;
}

int DecisionTree::compute_depth() const {
  if (!fitted()) return 0;
  // Iterative DFS carrying depth.
  int max_depth = 0;
  std::vector<std::pair<std::int32_t, int>> stack{{0, 0}};
  while (!stack.empty()) {
    const auto [node, d] = stack.back();
    stack.pop_back();
    const TreeNode& n = nodes_[static_cast<std::size_t>(node)];
    if (n.feature < 0) {
      max_depth = std::max(max_depth, d);
    } else {
      stack.emplace_back(n.left, d + 1);
      stack.emplace_back(n.right, d + 1);
    }
  }
  return max_depth;
}

double DecisionTree::mean_depth() const {
  if (!fitted()) return 0.0;
  double weighted = 0.0;
  const double total = nodes_[0].cover;
  std::vector<std::pair<std::int32_t, int>> stack{{0, 0}};
  while (!stack.empty()) {
    const auto [node, d] = stack.back();
    stack.pop_back();
    const TreeNode& n = nodes_[static_cast<std::size_t>(node)];
    if (n.feature < 0) {
      weighted += n.cover * d;
    } else {
      stack.emplace_back(n.left, d + 1);
      stack.emplace_back(n.right, d + 1);
    }
  }
  return total > 0.0 ? weighted / total : 0.0;
}

double DecisionTree::expected_value() const {
  if (!fitted()) return 0.0;
  double total = 0.0;
  for (const TreeNode& n : nodes_) {
    if (n.feature < 0) total += n.cover * n.value;
  }
  return nodes_[0].cover > 0.0 ? total / nodes_[0].cover : 0.0;
}

void DecisionTree::set_nodes(std::vector<TreeNode> nodes,
                             std::size_t n_features) {
  if (nodes.empty()) throw std::invalid_argument("set_nodes: empty tree");
  nodes_ = std::move(nodes);
  n_features_ = n_features;
  depth_ = compute_depth();
}

}  // namespace drcshap
