#pragma once
// CART decision-tree classifier, the base learner of the Random Forest
// (Section III-A) and of RUSBoost.
//
// Training uses histogram binning (quantile bins computed once per dataset
// and shared across all trees of a forest), which makes node splitting
// O(rows x candidate-features) instead of O(rows log rows x features) — the
// practical trick that keeps 500-tree forests on ~100k x 387 data cheap, as
// the paper's "low computational cost" argument requires. Predictions use
// raw feature values against real-valued thresholds, so a fitted tree is
// self-contained (and exactly what the SHAP tree explainer consumes).

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.hpp"
#include "util/rng.hpp"

namespace drcshap {

/// Quantile-binned view of a dataset, shared by all trees of a forest.
class BinnedMatrix {
 public:
  /// Bins every feature of `data` into at most `max_bins` (<= 256) quantile
  /// bins. Distinct values fewer than max_bins get one bin each.
  BinnedMatrix(const Dataset& data, int max_bins = 64);

  std::size_t n_rows() const { return n_rows_; }
  std::size_t n_features() const { return n_features_; }

  std::uint8_t bin(std::size_t row, std::size_t feature) const {
    return bins_[feature * n_rows_ + row];  // column-major (see .cpp)
  }
  /// Number of bins actually used by `feature` (>= 1).
  int n_bins(std::size_t feature) const { return n_bins_[feature]; }

  /// Real-valued threshold realizing the split "bin <= b": halfway between
  /// the largest value in bin b and the smallest in bin b+1.
  /// Requires 0 <= b < n_bins(feature) - 1.
  float split_threshold(std::size_t feature, int b) const;

 private:
  std::size_t n_rows_;
  std::size_t n_features_;
  std::vector<std::uint8_t> bins_;       ///< row-major
  std::vector<int> n_bins_;              ///< per feature
  std::vector<std::vector<float>> split_values_;  ///< per feature, size n_bins-1
};

/// One node of a fitted tree. Internal nodes split "x[feature] <= threshold
/// ? left : right"; leaves carry the positive-class probability. `cover`
/// (weighted training samples through the node) is what the SHAP tree
/// explainer uses to estimate conditional expectations.
struct TreeNode {
  std::int32_t feature = -1;  ///< -1 marks a leaf
  float threshold = 0.0f;
  std::int32_t left = -1;
  std::int32_t right = -1;
  double value = 0.0;  ///< P(y=1) among covered samples (leaves & internals)
  double cover = 0.0;
};

struct DecisionTreeOptions {
  int max_depth = -1;               ///< -1 = unpruned (grow until pure)
  std::size_t min_samples_leaf = 1;
  std::size_t min_samples_split = 2;
  /// Candidate features per split; -1 = all, 0 = floor(sqrt(n_features)).
  int max_features = -1;
  double min_impurity_decrease = 0.0;
  double positive_weight = 1.0;     ///< class weight on label 1
  std::uint64_t seed = 1;
};

class DecisionTree {
 public:
  DecisionTree() = default;

  /// Fit on all rows of `data` with a private binning.
  void fit(const Dataset& data, const DecisionTreeOptions& options = {},
           int max_bins = 64);

  /// Fit on the given rows (repeats allowed: bootstrap) against a shared
  /// binning. `binned` must have been built from `data`.
  void fit_binned(const BinnedMatrix& binned, const Dataset& data,
                  std::span<const std::size_t> rows,
                  const DecisionTreeOptions& options);

  /// P(y=1 | x) from the leaf `x` falls into.
  double predict_proba(std::span<const float> features) const;

  bool fitted() const { return !nodes_.empty(); }
  const std::vector<TreeNode>& nodes() const { return nodes_; }
  std::size_t n_nodes() const { return nodes_.size(); }
  std::size_t n_leaves() const;
  /// Cached at fit/deserialization time: SHAP sizes its per-tree path
  /// scratch from this on every call, so it must not re-walk the tree.
  int depth() const { return depth_; }
  /// Mean leaf depth weighted by cover: expected comparisons per prediction.
  double mean_depth() const;
  /// Cover-weighted mean leaf value = E[f(x)] over the training data.
  double expected_value() const;
  std::size_t n_features() const { return n_features_; }

  /// Direct access for deserialization (model_io) and tests.
  void set_nodes(std::vector<TreeNode> nodes, std::size_t n_features);

 private:
  int compute_depth() const;

  std::vector<TreeNode> nodes_;  ///< nodes_[0] is the root
  std::size_t n_features_ = 0;
  int depth_ = 0;
};

}  // namespace drcshap
