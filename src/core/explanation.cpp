#include "core/explanation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/table.hpp"

namespace drcshap {

Explanation::Explanation(double base_value, double prediction,
                         std::vector<double> shap_values,
                         std::vector<float> feature_values,
                         std::vector<std::string> feature_names)
    : base_value_(base_value),
      prediction_(prediction),
      shap_values_(std::move(shap_values)),
      feature_values_(std::move(feature_values)),
      feature_names_(std::move(feature_names)) {
  if (shap_values_.size() != feature_values_.size() ||
      (!feature_names_.empty() &&
       feature_names_.size() != shap_values_.size())) {
    throw std::invalid_argument("Explanation: size mismatch");
  }
}

std::vector<FeatureContribution> Explanation::ranked() const {
  std::vector<std::size_t> order(shap_values_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return std::abs(shap_values_[a]) > std::abs(shap_values_[b]);
  });
  std::vector<FeatureContribution> out;
  out.reserve(order.size());
  for (const std::size_t f : order) {
    out.push_back({f,
                   feature_names_.empty() ? "f" + std::to_string(f)
                                          : feature_names_[f],
                   shap_values_[f], feature_values_[f]});
  }
  return out;
}

std::vector<FeatureContribution> Explanation::top(std::size_t top_k) const {
  auto all = ranked();
  if (all.size() > top_k) all.resize(top_k);
  return all;
}

double Explanation::additivity_gap() const {
  const double total =
      std::accumulate(shap_values_.begin(), shap_values_.end(), base_value_);
  return std::abs(prediction_ - total);
}

std::string Explanation::to_text(std::size_t top_k) const {
  std::ostringstream os;
  os << "prediction " << fmt_fixed(prediction_, 4) << " (base value "
     << fmt_fixed(base_value_, 4) << ", "
     << (base_value_ > 0.0 ? fmt_fixed(prediction_ / base_value_, 1) : "inf")
     << "x the average)\n";
  const auto contributions = top(top_k);
  double max_abs = 1e-12;
  for (const auto& c : contributions) {
    max_abs = std::max(max_abs, std::abs(c.shap_value));
  }
  for (const auto& c : contributions) {
    const int bar = std::max(
        1, static_cast<int>(std::lround(std::abs(c.shap_value) / max_abs * 40)));
    os << "  " << (c.shap_value >= 0.0 ? "+" : "-") << " "
       << c.feature_name << "=" << fmt_fixed(c.feature_value, 2) << "  "
       << std::string(static_cast<std::size_t>(bar),
                      c.shap_value >= 0.0 ? '#' : '-')
       << " " << fmt_fixed(c.shap_value, 4) << "\n";
  }
  return os.str();
}

Explanation explain_sample(const TreeShapExplainer& explainer,
                           const RandomForestClassifier& forest,
                           std::span<const float> features,
                           std::vector<std::string> feature_names) {
  return Explanation(explainer.base_value(), forest.predict_proba(features),
                     explainer.shap_values(features),
                     std::vector<float>(features.begin(), features.end()),
                     std::move(feature_names));
}

std::vector<Explanation> explain_batch(const TreeShapExplainer& explainer,
                                       const RandomForestClassifier& forest,
                                       const Dataset& data,
                                       std::vector<std::string> feature_names,
                                       std::size_t n_threads) {
  const std::vector<double> predictions = forest.predict_proba_all(data);
  const ShapMatrix phi = explainer.shap_values_batch(data, n_threads);
  std::vector<Explanation> out;
  out.reserve(data.n_rows());
  for (std::size_t r = 0; r < data.n_rows(); ++r) {
    const auto row_phi = phi.row(r);
    const auto features = data.row(r);
    out.emplace_back(explainer.base_value(), predictions[r],
                     std::vector<double>(row_phi.begin(), row_phi.end()),
                     std::vector<float>(features.begin(), features.end()),
                     feature_names);
  }
  return out;
}

std::vector<double> mean_abs_shap(const TreeShapExplainer& explainer,
                                  const Dataset& data, std::size_t max_rows,
                                  std::uint64_t seed) {
  if (data.n_rows() == 0) {
    throw std::invalid_argument("mean_abs_shap: empty dataset");
  }
  Rng rng(seed);
  std::vector<std::size_t> rows;
  if (data.n_rows() <= max_rows) {
    rows.resize(data.n_rows());
    std::iota(rows.begin(), rows.end(), 0);
  } else {
    rows = rng.sample_without_replacement(data.n_rows(), max_rows);
  }
  // One batched pass over the sampled rows instead of a per-row loop.
  const ShapMatrix phi = explainer.shap_values_batch(data.subset(rows));
  GlobalShapSummary summary(data.n_features());
  summary.add(phi);
  return summary.mean_abs_all();
}

// ----------------------------------------------------- GlobalShapSummary

GlobalShapSummary::GlobalShapSummary(std::size_t n_features)
    : sum_abs_(n_features, 0.0),
      sum_(n_features, 0.0),
      positive_(n_features, 0) {}

void GlobalShapSummary::add(std::span<const double> shap_row) {
  if (sum_abs_.empty()) {
    sum_abs_.assign(shap_row.size(), 0.0);
    sum_.assign(shap_row.size(), 0.0);
    positive_.assign(shap_row.size(), 0);
  }
  if (shap_row.size() != sum_abs_.size()) {
    throw std::invalid_argument("GlobalShapSummary: row width mismatch");
  }
  for (std::size_t f = 0; f < shap_row.size(); ++f) {
    sum_abs_[f] += std::abs(shap_row[f]);
    sum_[f] += shap_row[f];
    positive_[f] += shap_row[f] > 0.0 ? 1 : 0;
  }
  ++rows_;
}

void GlobalShapSummary::add(const ShapMatrix& matrix) {
  for (std::size_t r = 0; r < matrix.n_rows; ++r) add(matrix.row(r));
}

void GlobalShapSummary::merge(const GlobalShapSummary& other) {
  if (other.rows_ == 0) return;
  if (rows_ == 0 && sum_abs_.empty()) {
    *this = other;
    return;
  }
  if (other.sum_abs_.size() != sum_abs_.size()) {
    throw std::invalid_argument("GlobalShapSummary: merge width mismatch");
  }
  for (std::size_t f = 0; f < sum_abs_.size(); ++f) {
    sum_abs_[f] += other.sum_abs_[f];
    sum_[f] += other.sum_[f];
    positive_[f] += other.positive_[f];
  }
  rows_ += other.rows_;
}

double GlobalShapSummary::mean_abs(std::size_t feature) const {
  return rows_ == 0 ? 0.0 : sum_abs_[feature] / static_cast<double>(rows_);
}

double GlobalShapSummary::mean_signed(std::size_t feature) const {
  return rows_ == 0 ? 0.0 : sum_[feature] / static_cast<double>(rows_);
}

double GlobalShapSummary::positive_fraction(std::size_t feature) const {
  return rows_ == 0 ? 0.0
                    : static_cast<double>(positive_[feature]) /
                          static_cast<double>(rows_);
}

std::vector<double> GlobalShapSummary::mean_abs_all() const {
  std::vector<double> out(sum_abs_.size(), 0.0);
  for (std::size_t f = 0; f < out.size(); ++f) out[f] = mean_abs(f);
  return out;
}

std::vector<std::size_t> GlobalShapSummary::top_features(
    std::size_t top_k) const {
  const std::size_t k = std::min(top_k, sum_abs_.size());
  // Bounded min-heap of the best k seen so far; the root is the weakest
  // keeper, so a sweep over F features costs O(F log k) and never
  // materializes a full sorted axis. Comparator orders "worse first":
  // smaller mean |SHAP|, ties broken toward the *higher* index so the
  // lower index survives eviction.
  const auto worse = [&](std::size_t a, std::size_t b) {
    if (sum_abs_[a] != sum_abs_[b]) return sum_abs_[a] > sum_abs_[b];
    return a < b;
  };
  std::vector<std::size_t> heap;
  heap.reserve(k + 1);
  for (std::size_t f = 0; f < sum_abs_.size(); ++f) {
    if (heap.size() < k) {
      heap.push_back(f);
      std::push_heap(heap.begin(), heap.end(), worse);
    } else if (k > 0 && worse(f, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), worse);
      heap.back() = f;
      std::push_heap(heap.begin(), heap.end(), worse);
    }
  }
  // sort_heap orders ascending under the comparator; "worse" inverts the
  // value ordering, so ascending-under-worse is best-first already.
  std::sort_heap(heap.begin(), heap.end(), worse);
  return heap;
}

std::string GlobalShapSummary::to_text(
    std::span<const std::string> feature_names, std::size_t top_k) const {
  std::ostringstream os;
  os << "global SHAP summary over " << rows_ << " rows\n";
  const auto top = top_features(top_k);
  for (std::size_t rank = 0; rank < top.size(); ++rank) {
    const std::size_t f = top[rank];
    const std::string name = f < feature_names.size()
                                 ? feature_names[f]
                                 : "f" + std::to_string(f);
    os << "  " << (rank + 1) << ". " << name << "  mean|shap|="
       << fmt_fixed(mean_abs(f), 5) << "  mean=" << fmt_fixed(mean_signed(f), 5)
       << "  pos=" << fmt_fixed(positive_fraction(f) * 100.0, 1) << "%\n";
  }
  return os.str();
}

GlobalShapSummary global_shap_summary(const TreeShapExplainer& explainer,
                                      const Dataset& data,
                                      std::size_t n_threads) {
  GlobalShapSummary summary(data.n_features());
  summary.add(explainer.shap_values_batch(data, n_threads));
  return summary;
}

// ------------------------------------------- split-improvement importance

namespace {

double gini(double p) { return 2.0 * p * (1.0 - p); }

/// Sums cover-weighted Gini decreases per split feature; `count` and `pos`
/// are node-indexed sample statistics (training covers or probe recounts).
/// Normalizes by each tree's root count so every tree votes with weight 1,
/// then averages over trees.
std::vector<double> split_importance_from_counts(
    const FlatForest& flat, const std::vector<double>& count,
    const std::vector<double>& pos) {
  std::vector<double> importance(flat.n_features(), 0.0);
  const std::int32_t* feature = flat.feature();
  const std::int32_t* left = flat.left();
  const std::int32_t* right = flat.right();
  for (std::size_t t = 0; t < flat.n_trees(); ++t) {
    const auto root = static_cast<std::size_t>(flat.root(t));
    const double root_count = count[root];
    if (root_count <= 0.0) continue;
    std::vector<double> per_tree(flat.n_features(), 0.0);
    // Iterative DFS from the root; node ids within a tree are contiguous
    // but only reachability matters here.
    std::vector<std::size_t> stack = {root};
    while (!stack.empty()) {
      const std::size_t n = stack.back();
      stack.pop_back();
      if (feature[n] < 0) continue;
      const auto l = static_cast<std::size_t>(left[n]);
      const auto r = static_cast<std::size_t>(right[n]);
      stack.push_back(l);
      stack.push_back(r);
      if (count[n] <= 0.0) continue;  // no probe row reached this split
      const double p_node = pos[n] / count[n];
      const double g_left = count[l] > 0.0 ? gini(pos[l] / count[l]) : 0.0;
      const double g_right = count[r] > 0.0 ? gini(pos[r] / count[r]) : 0.0;
      const double decrease = count[n] * gini(p_node) - count[l] * g_left -
                              count[r] * g_right;
      per_tree[static_cast<std::size_t>(feature[n])] += decrease;
    }
    for (std::size_t f = 0; f < importance.size(); ++f) {
      importance[f] += per_tree[f] / root_count;
    }
  }
  for (double& v : importance) v /= static_cast<double>(flat.n_trees());
  return importance;
}

}  // namespace

std::vector<double> split_improvement_importance(const FlatForest& flat) {
  // Training statistics live in the nodes already: cover = sample count,
  // value = P(y=1) among covered samples, so pos = cover * value.
  const double* cover = flat.cover();
  const double* value = flat.value();
  std::vector<double> count(flat.n_nodes());
  std::vector<double> pos(flat.n_nodes());
  for (std::size_t n = 0; n < flat.n_nodes(); ++n) {
    count[n] = cover[n];
    pos[n] = cover[n] * value[n];
  }
  return split_importance_from_counts(flat, count, pos);
}

std::vector<double> debiased_split_importance(const FlatForest& flat,
                                              const Dataset& probe) {
  if (probe.n_rows() == 0) {
    throw std::invalid_argument("debiased_split_importance: empty probe set");
  }
  if (probe.n_features() != flat.n_features()) {
    throw std::invalid_argument(
        "debiased_split_importance: probe feature count mismatch");
  }
  // Re-route every probe row through every tree, recounting (count, pos)
  // at each node it crosses: fresh-data class statistics instead of the
  // memorized training ones.
  std::vector<double> count(flat.n_nodes(), 0.0);
  std::vector<double> pos(flat.n_nodes(), 0.0);
  const std::int32_t* feature = flat.feature();
  const float* threshold = flat.threshold();
  const std::int32_t* left = flat.left();
  const std::int32_t* right = flat.right();
  for (std::size_t r = 0; r < probe.n_rows(); ++r) {
    const auto row = probe.row(r);
    const double label = probe.label(r) != 0 ? 1.0 : 0.0;
    for (std::size_t t = 0; t < flat.n_trees(); ++t) {
      auto n = static_cast<std::size_t>(flat.root(t));
      for (;;) {
        count[n] += 1.0;
        pos[n] += label;
        if (feature[n] < 0) break;
        n = static_cast<std::size_t>(
            row[static_cast<std::size_t>(feature[n])] <= threshold[n]
                ? left[n]
                : right[n]);
      }
    }
  }
  return split_importance_from_counts(flat, count, pos);
}

double rank_correlation(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  // Average ranks for ties (fractional ranking), then Pearson over ranks.
  const auto ranks = [](std::span<const double> v) {
    std::vector<std::size_t> order(v.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t x, std::size_t y) { return v[x] < v[y]; });
    std::vector<double> rank(v.size(), 0.0);
    std::size_t i = 0;
    while (i < order.size()) {
      std::size_t j = i;
      while (j + 1 < order.size() && v[order[j + 1]] == v[order[i]]) ++j;
      const double shared = (static_cast<double>(i) + static_cast<double>(j)) /
                                2.0 +
                            1.0;
      for (std::size_t k = i; k <= j; ++k) rank[order[k]] = shared;
      i = j + 1;
    }
    return rank;
  };
  const std::vector<double> ra = ranks(a);
  const std::vector<double> rb = ranks(b);
  const double n = static_cast<double>(a.size());
  double mean_a = 0.0, mean_b = 0.0;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    mean_a += ra[i];
    mean_b += rb[i];
  }
  mean_a /= n;
  mean_b /= n;
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    const double da = ra[i] - mean_a;
    const double db = rb[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a == 0.0 || var_b == 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace drcshap
