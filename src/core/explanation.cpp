#include "core/explanation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/table.hpp"

namespace drcshap {

Explanation::Explanation(double base_value, double prediction,
                         std::vector<double> shap_values,
                         std::vector<float> feature_values,
                         std::vector<std::string> feature_names)
    : base_value_(base_value),
      prediction_(prediction),
      shap_values_(std::move(shap_values)),
      feature_values_(std::move(feature_values)),
      feature_names_(std::move(feature_names)) {
  if (shap_values_.size() != feature_values_.size() ||
      (!feature_names_.empty() &&
       feature_names_.size() != shap_values_.size())) {
    throw std::invalid_argument("Explanation: size mismatch");
  }
}

std::vector<FeatureContribution> Explanation::ranked() const {
  std::vector<std::size_t> order(shap_values_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return std::abs(shap_values_[a]) > std::abs(shap_values_[b]);
  });
  std::vector<FeatureContribution> out;
  out.reserve(order.size());
  for (const std::size_t f : order) {
    out.push_back({f,
                   feature_names_.empty() ? "f" + std::to_string(f)
                                          : feature_names_[f],
                   shap_values_[f], feature_values_[f]});
  }
  return out;
}

std::vector<FeatureContribution> Explanation::top(std::size_t top_k) const {
  auto all = ranked();
  if (all.size() > top_k) all.resize(top_k);
  return all;
}

double Explanation::additivity_gap() const {
  const double total =
      std::accumulate(shap_values_.begin(), shap_values_.end(), base_value_);
  return std::abs(prediction_ - total);
}

std::string Explanation::to_text(std::size_t top_k) const {
  std::ostringstream os;
  os << "prediction " << fmt_fixed(prediction_, 4) << " (base value "
     << fmt_fixed(base_value_, 4) << ", "
     << (base_value_ > 0.0 ? fmt_fixed(prediction_ / base_value_, 1) : "inf")
     << "x the average)\n";
  const auto contributions = top(top_k);
  double max_abs = 1e-12;
  for (const auto& c : contributions) {
    max_abs = std::max(max_abs, std::abs(c.shap_value));
  }
  for (const auto& c : contributions) {
    const int bar = std::max(
        1, static_cast<int>(std::lround(std::abs(c.shap_value) / max_abs * 40)));
    os << "  " << (c.shap_value >= 0.0 ? "+" : "-") << " "
       << c.feature_name << "=" << fmt_fixed(c.feature_value, 2) << "  "
       << std::string(static_cast<std::size_t>(bar),
                      c.shap_value >= 0.0 ? '#' : '-')
       << " " << fmt_fixed(c.shap_value, 4) << "\n";
  }
  return os.str();
}

Explanation explain_sample(const TreeShapExplainer& explainer,
                           const RandomForestClassifier& forest,
                           std::span<const float> features,
                           std::vector<std::string> feature_names) {
  return Explanation(explainer.base_value(), forest.predict_proba(features),
                     explainer.shap_values(features),
                     std::vector<float>(features.begin(), features.end()),
                     std::move(feature_names));
}

std::vector<Explanation> explain_batch(const TreeShapExplainer& explainer,
                                       const RandomForestClassifier& forest,
                                       const Dataset& data,
                                       std::vector<std::string> feature_names,
                                       std::size_t n_threads) {
  const std::vector<double> predictions = forest.predict_proba_all(data);
  const ShapMatrix phi = explainer.shap_values_batch(data, n_threads);
  std::vector<Explanation> out;
  out.reserve(data.n_rows());
  for (std::size_t r = 0; r < data.n_rows(); ++r) {
    const auto row_phi = phi.row(r);
    const auto features = data.row(r);
    out.emplace_back(explainer.base_value(), predictions[r],
                     std::vector<double>(row_phi.begin(), row_phi.end()),
                     std::vector<float>(features.begin(), features.end()),
                     feature_names);
  }
  return out;
}

std::vector<double> mean_abs_shap(const TreeShapExplainer& explainer,
                                  const Dataset& data, std::size_t max_rows,
                                  std::uint64_t seed) {
  if (data.n_rows() == 0) {
    throw std::invalid_argument("mean_abs_shap: empty dataset");
  }
  Rng rng(seed);
  std::vector<std::size_t> rows;
  if (data.n_rows() <= max_rows) {
    rows.resize(data.n_rows());
    std::iota(rows.begin(), rows.end(), 0);
  } else {
    rows = rng.sample_without_replacement(data.n_rows(), max_rows);
  }
  // One batched pass over the sampled rows instead of a per-row loop.
  const ShapMatrix phi = explainer.shap_values_batch(data.subset(rows));
  std::vector<double> importance(data.n_features(), 0.0);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const auto row = phi.row(r);
    for (std::size_t f = 0; f < importance.size(); ++f) {
      importance[f] += std::abs(row[f]);
    }
  }
  for (double& v : importance) v /= static_cast<double>(rows.size());
  return importance;
}

}  // namespace drcshap
