#pragma once
// Human-readable per-prediction explanations (the Fig. 4 force plots):
// ranked signed feature contributions around the base value, rendered as
// text with the paper's feature-naming convention.

#include <span>
#include <string>
#include <vector>

#include "core/tree_shap.hpp"

namespace drcshap {

struct FeatureContribution {
  std::size_t feature_index = 0;
  std::string feature_name;
  double shap_value = 0.0;     ///< signed push from the base value
  double feature_value = 0.0;  ///< the sample's raw value of this feature
};

class Explanation {
 public:
  Explanation(double base_value, double prediction,
              std::vector<double> shap_values,
              std::vector<float> feature_values,
              std::vector<std::string> feature_names);

  double base_value() const { return base_value_; }
  double prediction() const { return prediction_; }
  const std::vector<double>& shap_values() const { return shap_values_; }

  /// All contributions ordered by |shap| descending.
  std::vector<FeatureContribution> ranked() const;

  /// The top_k strongest contributions.
  std::vector<FeatureContribution> top(std::size_t top_k) const;

  /// |prediction - (base + sum(shap))|: should be ~0 (additivity check).
  double additivity_gap() const;

  /// ASCII force plot: one line per top contribution, bar length scaled to
  /// |shap|, '+' bars push toward hotspot, '-' bars away (Fig. 4 pink/blue).
  std::string to_text(std::size_t top_k = 10) const;

 private:
  double base_value_;
  double prediction_;
  std::vector<double> shap_values_;
  std::vector<float> feature_values_;
  std::vector<std::string> feature_names_;
};

/// Convenience: run the explainer on one sample.
Explanation explain_sample(const TreeShapExplainer& explainer,
                           const RandomForestClassifier& forest,
                           std::span<const float> features,
                           std::vector<std::string> feature_names);

/// Explain every row of `data` through the batched engine (one SHAP pass and
/// one prediction pass over the thread pool instead of per-row calls);
/// returns one Explanation per row in row order.
std::vector<Explanation> explain_batch(const TreeShapExplainer& explainer,
                                       const RandomForestClassifier& forest,
                                       const Dataset& data,
                                       std::vector<std::string> feature_names,
                                       std::size_t n_threads = 0);

/// Global feature importance: mean |SHAP value| per feature over (at most
/// max_rows of) the dataset — the standard SHAP summary aggregation.
std::vector<double> mean_abs_shap(const TreeShapExplainer& explainer,
                                  const Dataset& data,
                                  std::size_t max_rows = 500,
                                  std::uint64_t seed = 7);

/// Streaming accumulator of the global SHAP summary (the Fig. 5 bar chart
/// at serving scale): per-feature mean |SHAP|, signed mean, and sign split,
/// built row by row in O(n_features) memory — no retained phi matrix. A
/// long-running daemon folds every explain batch in as it is served and can
/// answer "what drives hotspots globally" at any point without replaying
/// traffic.
///
/// Aggregation is a per-feature sum. add() folds rows in the order given;
/// merge() adds `other`'s partial sums onto `this`'s. A merge of shard
/// summaries therefore reassociates relative to one sequential pass — but
/// it is *deterministic in the sharding*: fix the row partition and the
/// merge order (e.g. fixed-size blocks merged in block order) and the
/// result is bit-identical no matter which worker computed which shard —
/// the same discipline the batched SHAP engine itself uses.
class GlobalShapSummary {
 public:
  GlobalShapSummary() = default;
  explicit GlobalShapSummary(std::size_t n_features);

  /// Folds one SHAP row (n_features doubles) into the summary.
  void add(std::span<const double> shap_row);
  /// Folds every row of a batch result, in row order.
  void add(const ShapMatrix& matrix);
  /// Adds `other`'s partial sums onto this accumulator's (deterministic
  /// shard merge: same shards + same merge order => same bits, regardless
  /// of which worker produced which shard).
  void merge(const GlobalShapSummary& other);

  std::size_t n_features() const { return sum_abs_.size(); }
  std::uint64_t n_rows() const { return rows_; }

  double mean_abs(std::size_t feature) const;
  double mean_signed(std::size_t feature) const;
  /// Fraction of folded rows whose phi for `feature` was > 0 (pushes toward
  /// hotspot). Rows with phi exactly 0.0 count as negative pushes.
  double positive_fraction(std::size_t feature) const;

  std::vector<double> mean_abs_all() const;

  /// Indices of the top_k features by mean |SHAP| (descending; ties broken
  /// by lower index). Selected with a bounded min-heap: O(F log k), no full
  /// sort of the feature axis.
  std::vector<std::size_t> top_features(std::size_t top_k) const;

  /// One line per top-k feature: rank, name, mean |SHAP|, signed mean,
  /// positive fraction — the text twin of the SHAP summary plot.
  std::string to_text(std::span<const std::string> feature_names,
                      std::size_t top_k = 10) const;

 private:
  std::vector<double> sum_abs_;
  std::vector<double> sum_;
  std::vector<std::uint64_t> positive_;
  std::uint64_t rows_ = 0;
};

/// Convenience: one batched SHAP pass over `data` folded into a summary
/// (rows in dataset order, so the result is thread-count independent like
/// shap_values_batch itself).
GlobalShapSummary global_shap_summary(const TreeShapExplainer& explainer,
                                      const Dataset& data,
                                      std::size_t n_threads = 0);

/// Classic split-improvement (MDI / Gini) importance from the fitted
/// ensemble: per split, the cover-weighted Gini impurity decrease evaluated
/// with the training statistics stored in the nodes, summed per feature and
/// normalized per tree. Known to be biased toward high-cardinality noise
/// features (Loecher 2020).
std::vector<double> split_improvement_importance(const FlatForest& flat);

/// Loecher-style debiased split improvement: the same per-split Gini
/// decrease, but evaluated by re-routing an *out-of-sample* probe set
/// through the trees and recomputing node class statistics from the probe
/// rows. Spurious splits that memorized training noise get ~zero (often
/// negative) improvement on fresh data, so the bias toward noise features
/// cancels instead of accumulating. Values are kept signed — a negative
/// importance is evidence of an anti-predictive (overfit) feature. Splits
/// no probe row reaches contribute zero.
std::vector<double> debiased_split_importance(const FlatForest& flat,
                                              const Dataset& probe);

/// Spearman rank correlation between two importance vectors (average ranks
/// for ties). Used to cross-check global SHAP rankings against
/// split-improvement rankings. Returns 0 for degenerate (constant) inputs.
double rank_correlation(std::span<const double> a, std::span<const double> b);

}  // namespace drcshap
