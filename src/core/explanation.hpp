#pragma once
// Human-readable per-prediction explanations (the Fig. 4 force plots):
// ranked signed feature contributions around the base value, rendered as
// text with the paper's feature-naming convention.

#include <span>
#include <string>
#include <vector>

#include "core/tree_shap.hpp"

namespace drcshap {

struct FeatureContribution {
  std::size_t feature_index = 0;
  std::string feature_name;
  double shap_value = 0.0;     ///< signed push from the base value
  double feature_value = 0.0;  ///< the sample's raw value of this feature
};

class Explanation {
 public:
  Explanation(double base_value, double prediction,
              std::vector<double> shap_values,
              std::vector<float> feature_values,
              std::vector<std::string> feature_names);

  double base_value() const { return base_value_; }
  double prediction() const { return prediction_; }
  const std::vector<double>& shap_values() const { return shap_values_; }

  /// All contributions ordered by |shap| descending.
  std::vector<FeatureContribution> ranked() const;

  /// The top_k strongest contributions.
  std::vector<FeatureContribution> top(std::size_t top_k) const;

  /// |prediction - (base + sum(shap))|: should be ~0 (additivity check).
  double additivity_gap() const;

  /// ASCII force plot: one line per top contribution, bar length scaled to
  /// |shap|, '+' bars push toward hotspot, '-' bars away (Fig. 4 pink/blue).
  std::string to_text(std::size_t top_k = 10) const;

 private:
  double base_value_;
  double prediction_;
  std::vector<double> shap_values_;
  std::vector<float> feature_values_;
  std::vector<std::string> feature_names_;
};

/// Convenience: run the explainer on one sample.
Explanation explain_sample(const TreeShapExplainer& explainer,
                           const RandomForestClassifier& forest,
                           std::span<const float> features,
                           std::vector<std::string> feature_names);

/// Explain every row of `data` through the batched engine (one SHAP pass and
/// one prediction pass over the thread pool instead of per-row calls);
/// returns one Explanation per row in row order.
std::vector<Explanation> explain_batch(const TreeShapExplainer& explainer,
                                       const RandomForestClassifier& forest,
                                       const Dataset& data,
                                       std::vector<std::string> feature_names,
                                       std::size_t n_threads = 0);

/// Global feature importance: mean |SHAP value| per feature over (at most
/// max_rows of) the dataset — the standard SHAP summary aggregation.
std::vector<double> mean_abs_shap(const TreeShapExplainer& explainer,
                                  const Dataset& data,
                                  std::size_t max_rows = 500,
                                  std::uint64_t seed = 7);

}  // namespace drcshap
