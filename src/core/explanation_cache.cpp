#include "core/explanation_cache.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string_view>

namespace drcshap {

ExplanationCache::ExplanationCache(std::size_t capacity, std::size_t n_shards) {
  n_shards = std::max<std::size_t>(1, n_shards);
  capacity = std::max<std::size_t>(1, capacity);
  shard_capacity_ = (capacity + n_shards - 1) / n_shards;
  capacity_ = shard_capacity_ * n_shards;
  shards_.reserve(n_shards);
  for (std::size_t i = 0; i < n_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::uint64_t ExplanationCache::digest(const void* bytes, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(bytes);
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

bool ExplanationCache::enabled_by_env() {
  const char* env = std::getenv("DRCSHAP_EXPLAIN_CACHE");
  if (env == nullptr) return true;
  const std::string_view value(env);
  return !(value == "0" || value == "off" || value == "false" ||
           value == "OFF" || value == "FALSE");
}

namespace {
/// Digest of a salted key: the salt folded in before the key bytes.
std::uint64_t salted_digest(std::uint64_t salt, const void* bytes,
                            std::size_t len) {
  std::uint64_t h = ExplanationCache::digest(&salt, sizeof(salt));
  const auto* p = static_cast<const std::uint8_t*>(bytes);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}
}  // namespace

bool ExplanationCache::lookup(std::uint64_t salt, const void* key_bytes,
                              std::size_t key_len, double* phi_out,
                              std::size_t n_values) {
  const std::uint64_t d = salted_digest(salt, key_bytes, key_len);
  Shard& shard = shard_for(d);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto bucket = shard.index.find(d);
  if (bucket != shard.index.end()) {
    for (const auto& it : bucket->second) {
      if (it->salt == salt && it->key.size() == key_len &&
          std::memcmp(it->key.data(), key_bytes, key_len) == 0) {
        if (it->phi.size() != n_values) break;  // shape changed: treat as miss
        std::memcpy(phi_out, it->phi.data(), n_values * sizeof(double));
        shard.lru.splice(shard.lru.begin(), shard.lru, it);
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void ExplanationCache::insert(std::uint64_t salt, const void* key_bytes,
                              std::size_t key_len, const double* phi,
                              std::size_t n_values) {
  const std::uint64_t d = salted_digest(salt, key_bytes, key_len);
  Shard& shard = shard_for(d);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto bucket = shard.index.find(d);
  if (bucket != shard.index.end()) {
    for (const auto& it : bucket->second) {
      if (it->salt == salt && it->key.size() == key_len &&
          std::memcmp(it->key.data(), key_bytes, key_len) == 0) {
        // Refresh in place — identical key means identical phi, so only
        // recency changes.
        shard.lru.splice(shard.lru.begin(), shard.lru, it);
        return;
      }
    }
  }
  if (shard.lru.size() >= shard_capacity_) {
    const Entry& victim = shard.lru.back();
    auto victim_bucket = shard.index.find(victim.key_digest);
    if (victim_bucket != shard.index.end()) {
      auto& chain = victim_bucket->second;
      const auto victim_it = std::prev(shard.lru.end());
      chain.erase(std::remove(chain.begin(), chain.end(), victim_it),
                  chain.end());
      if (chain.empty()) shard.index.erase(victim_bucket);
    }
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    entries_.fetch_sub(1, std::memory_order_relaxed);
  }
  Entry entry;
  entry.key_digest = d;
  entry.salt = salt;
  entry.key.assign(static_cast<const std::uint8_t*>(key_bytes),
                   static_cast<const std::uint8_t*>(key_bytes) + key_len);
  entry.phi.assign(phi, phi + n_values);
  shard.lru.push_front(std::move(entry));
  shard.index[d].push_back(shard.lru.begin());
  entries_.fetch_add(1, std::memory_order_relaxed);
}

void ExplanationCache::clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    entries_.fetch_sub(shard->lru.size(), std::memory_order_relaxed);
    shard->lru.clear();
    shard->index.clear();
  }
}

ExplanationCacheStats ExplanationCache::stats() const {
  ExplanationCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.entries = entries_.load(std::memory_order_relaxed);
  s.capacity = capacity_;
  return s;
}

}  // namespace drcshap
