#pragma once
// Bounded, sharded LRU cache of per-sample SHAP rows, keyed by the
// u16-quantized feature vector of the compiled forest.
//
// Two g-cells whose features quantize to the same codes take the same
// branch at every split of every tree, so their SHAP vectors are equal
// bit for bit (the same argument that makes the compiled engine
// byte-identical to the exact one). That makes the quantized code vector a
// sound cache key: a hit returns exactly the doubles a recompute would
// produce. ECO-style traffic re-asks about mostly-unchanged cells, so
// repeat rate across requests is high and hits skip the whole
// O(trees * leaves * depth^2) TreeSHAP walk.
//
// Entries store the full code vector next to the phi row and verify it on
// lookup, so a 64-bit digest collision degrades to a miss, never to a
// wrong explanation. The exact engine (an ensemble that cannot quantize)
// keys on the raw float row bytes instead via the same digest+verify
// scheme — byte-equal rows are trivially explanation-equal.
//
// Shards are independently mutex-guarded LRU lists; concurrent explain
// batches (and the serving daemon's batch runner) hit different shards in
// parallel. Model hot swaps get cache coherence structurally: every loaded
// ServedModel owns a fresh cache, so stale entries die with the retired
// model instead of being invalidated in place (version-keyed by identity).
//
// $DRCSHAP_EXPLAIN_CACHE=0 is the kill switch (mirroring $DRCSHAP_SIMD):
// explainers skip an attached cache entirely, for A/B runs and for proving
// the fast path correct with caching out of the picture.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace drcshap {

/// Lifetime counters of one cache instance (monotonic; snapshot via
/// ExplanationCache::stats). hit_rate() is hits / lookups, 0 when idle.
struct ExplanationCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t capacity = 0;

  double hit_rate() const {
    const std::uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

class ExplanationCache {
 public:
  /// `capacity` bounds the total entry count across all shards (rounded up
  /// to a multiple of the shard count; at ~n_features doubles plus
  /// n_features u16 codes per entry, the default ~4096 rows of 387
  /// features is ~16 MiB).
  explicit ExplanationCache(std::size_t capacity = kDefaultCapacity,
                            std::size_t n_shards = kDefaultShards);

  static constexpr std::size_t kDefaultCapacity = 4096;
  static constexpr std::size_t kDefaultShards = 8;

  /// Looks up the row keyed by (`salt`, `key_bytes`) — the salt is the
  /// explainer's structural model digest, so one cache accidentally shared
  /// by two models misses instead of serving the wrong model's phi.
  /// `key_bytes` is the quantized code vector (compiled engine) or the raw
  /// float row (exact engine). On a hit copies the stored phi row into
  /// `phi_out` (must hold n_values doubles) and returns true. Touches LRU
  /// recency.
  bool lookup(std::uint64_t salt, const void* key_bytes, std::size_t key_len,
              double* phi_out, std::size_t n_values);

  /// Inserts (or refreshes) the row keyed by (`salt`, `key_bytes`). Evicts
  /// the least recently used entry of the target shard when full.
  void insert(std::uint64_t salt, const void* key_bytes, std::size_t key_len,
              const double* phi, std::size_t n_values);

  /// Drops every entry (counters are kept: they describe lifetime traffic).
  void clear();

  ExplanationCacheStats stats() const;
  std::size_t capacity() const { return capacity_; }

  /// FNV-1a 64 over arbitrary key bytes — shard selector and bucket key.
  static std::uint64_t digest(const void* bytes, std::size_t len);

  /// False when $DRCSHAP_EXPLAIN_CACHE is "0"/"off"/"false" — explainers
  /// then bypass any attached cache. Unset or anything else means enabled;
  /// re-read on every call so tests can flip it per scope.
  static bool enabled_by_env();

 private:
  struct Entry {
    std::uint64_t key_digest;
    std::uint64_t salt;
    std::vector<std::uint8_t> key;  ///< full key bytes, verified on lookup
    std::vector<double> phi;
  };
  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  ///< front = most recently used
    /// digest -> every resident entry with that digest (collisions chain).
    std::unordered_map<std::uint64_t, std::vector<std::list<Entry>::iterator>>
        index;
  };

  Shard& shard_for(std::uint64_t key_digest) {
    return *shards_[key_digest % shards_.size()];
  }

  std::size_t capacity_ = 0;        ///< total, across shards
  std::size_t shard_capacity_ = 0;  ///< per shard
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::size_t> entries_{0};
};

}  // namespace drcshap
