#include "core/flat_forest.hpp"

#include <algorithm>
#include <stdexcept>

namespace drcshap {

FlatForest::FlatForest(std::span<const DecisionTree> trees) {
  if (trees.empty()) throw std::invalid_argument("FlatForest: no trees");
  std::size_t total_nodes = 0;
  for (const DecisionTree& tree : trees) {
    if (!tree.fitted()) throw std::logic_error("FlatForest: unfitted tree");
    total_nodes += tree.n_nodes();
  }
  n_features_ = trees[0].n_features();
  feature_.reserve(total_nodes);
  threshold_.reserve(total_nodes);
  left_.reserve(total_nodes);
  right_.reserve(total_nodes);
  value_.reserve(total_nodes);
  cover_.reserve(total_nodes);
  roots_.reserve(trees.size());
  tree_depths_.reserve(trees.size());

  for (const DecisionTree& tree : trees) {
    if (tree.n_features() != n_features_) {
      throw std::invalid_argument("FlatForest: feature count mismatch");
    }
    const auto base = static_cast<std::int32_t>(feature_.size());
    roots_.push_back(base);
    const int depth = tree.depth();
    tree_depths_.push_back(depth);
    max_depth_ = std::max(max_depth_, depth);
    for (const TreeNode& node : tree.nodes()) {
      feature_.push_back(node.feature);
      threshold_.push_back(node.threshold);
      left_.push_back(node.feature < 0 ? -1 : node.left + base);
      right_.push_back(node.feature < 0 ? -1 : node.right + base);
      value_.push_back(node.value);
      cover_.push_back(node.cover);
    }
  }
}

}  // namespace drcshap
