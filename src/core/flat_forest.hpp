#pragma once
// Structure-of-arrays snapshot of a fitted tree ensemble, shared by the
// batched inference and SHAP engines.
//
// A fitted DecisionTree stores its nodes as std::vector<TreeNode> (an
// array-of-structs); walking it chases 48-byte structs whose value/cover
// doubles the prediction path never reads. Flattening every tree of the
// ensemble once into parallel feature/threshold/left/right/value/cover
// arrays (child indices rebased to be absolute, tree depths cached) makes
// the hot inner loops of predict and TreeSHAP touch only the arrays they
// need, in one contiguous allocation per field. Build cost is one pass over
// the nodes — negligible next to training — so forests rebuild their flat
// view eagerly on fit() and deserialization.

#include <cstdint>
#include <span>
#include <vector>

#include "core/decision_tree.hpp"

namespace drcshap {

class FlatForest {
 public:
  /// Every tree must be fitted and agree on the feature count.
  explicit FlatForest(std::span<const DecisionTree> trees);

  std::size_t n_trees() const { return roots_.size(); }
  std::size_t n_features() const { return n_features_; }
  std::size_t n_nodes() const { return feature_.size(); }
  /// Max depth over all trees (cached at build; sizes SHAP path scratch).
  int max_depth() const { return max_depth_; }

  std::int32_t root(std::size_t tree) const { return roots_[tree]; }
  int tree_depth(std::size_t tree) const { return tree_depths_[tree]; }

  // Node arrays indexed by absolute node id; feature < 0 marks a leaf.
  const std::int32_t* feature() const { return feature_.data(); }
  const float* threshold() const { return threshold_.data(); }
  const std::int32_t* left() const { return left_.data(); }
  const std::int32_t* right() const { return right_.data(); }
  const double* value() const { return value_.data(); }
  const double* cover() const { return cover_.data(); }

  /// Leaf value `x` reaches in one tree. `x` must hold n_features() floats.
  double predict_tree(std::size_t tree, const float* x) const {
    std::int32_t node = roots_[tree];
    while (feature_[static_cast<std::size_t>(node)] >= 0) {
      const auto n = static_cast<std::size_t>(node);
      node = x[static_cast<std::size_t>(feature_[n])] <= threshold_[n]
                 ? left_[n]
                 : right_[n];
    }
    return value_[static_cast<std::size_t>(node)];
  }

  /// Mean leaf value over all trees, accumulated in tree order (so results
  /// are independent of how callers distribute rows across threads).
  double predict(const float* x) const {
    double total = 0.0;
    for (std::size_t t = 0; t < n_trees(); ++t) total += predict_tree(t, x);
    return total / static_cast<double>(n_trees());
  }

 private:
  std::vector<std::int32_t> feature_;
  std::vector<float> threshold_;
  std::vector<std::int32_t> left_;
  std::vector<std::int32_t> right_;
  std::vector<double> value_;
  std::vector<double> cover_;
  std::vector<std::int32_t> roots_;      ///< per tree: absolute root id
  std::vector<int> tree_depths_;         ///< per tree: cached depth
  std::size_t n_features_ = 0;
  int max_depth_ = 0;
};

}  // namespace drcshap
