#include "core/forest_engine.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace drcshap {

std::string_view forest_engine_name(ForestEngine engine) {
  switch (engine) {
    case ForestEngine::kAuto:
      return "auto";
    case ForestEngine::kExact:
      return "exact";
    case ForestEngine::kCompiled:
      return "compiled";
  }
  return "auto";
}

ForestEngine forest_engine_from_env() {
  const char* env = std::getenv("DRCSHAP_FOREST_ENGINE");
  if (env == nullptr) return ForestEngine::kAuto;
  const std::string_view value(env);
  if (value.empty() || value == "auto") return ForestEngine::kAuto;
  if (value == "exact") return ForestEngine::kExact;
  if (value == "compiled") return ForestEngine::kCompiled;
  throw std::invalid_argument(
      "DRCSHAP_FOREST_ENGINE must be 'exact', 'compiled' or 'auto', got '" +
      std::string(value) + "'");
}

}  // namespace drcshap
