#pragma once
// Inference-backend selection for the Random Forest.
//
// Two engines share one fitted ensemble: the *exact* engine walks the
// FlatForest SoA arrays with float threshold compares (the reference
// oracle), and the *compiled* engine runs the quantized, branch-free,
// batch-of-8 CompiledForest layout. Both produce byte-identical
// probabilities (proved by tests/test_compiled_forest.cpp), so selection is
// purely a performance choice: per call via the ForestEngine argument, or
// process-wide via $DRCSHAP_FOREST_ENGINE.

#include <string_view>

namespace drcshap {

enum class ForestEngine {
  /// Defer to $DRCSHAP_FOREST_ENGINE; if that is unset (or "auto"), use the
  /// compiled engine whenever the fitted model quantizes, else exact.
  kAuto = 0,
  /// FlatForest float-threshold traversal — the reference oracle.
  kExact,
  /// Quantized branch-free CompiledForest traversal (SIMD when available).
  /// Falls back to exact if the model could not be compiled.
  kCompiled,
};

/// "auto" / "exact" / "compiled".
std::string_view forest_engine_name(ForestEngine engine);

/// Parses $DRCSHAP_FOREST_ENGINE: "exact", "compiled", "auto" or unset/empty
/// (= auto). Any other value throws std::invalid_argument — a typo in the
/// deployment environment must fail loudly, not silently serve the wrong
/// backend.
ForestEngine forest_engine_from_env();

}  // namespace drcshap
