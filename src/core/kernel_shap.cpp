#include "core/kernel_shap.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace drcshap {

namespace {

/// Solves (A + ridge*I) x = b for symmetric positive definite A via
/// Cholesky; A is overwritten. Dimension n is the (reduced) feature count.
std::vector<double> cholesky_solve(std::vector<double>& a, std::vector<double> b,
                                   std::size_t n, double ridge) {
  for (std::size_t i = 0; i < n; ++i) a[i * n + i] += ridge;
  // Cholesky decomposition A = L L^T (lower triangle stored in place).
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a[j * n + j];
    for (std::size_t k = 0; k < j; ++k) diag -= a[j * n + k] * a[j * n + k];
    if (diag <= 0.0) {
      throw std::runtime_error("kernel_shap: regression matrix not SPD");
    }
    a[j * n + j] = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a[i * n + j];
      for (std::size_t k = 0; k < j; ++k) v -= a[i * n + k] * a[j * n + k];
      a[i * n + j] = v / a[j * n + j];
    }
  }
  // Forward substitution L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= a[i * n + k] * b[k];
    b[i] = v / a[i * n + i];
  }
  // Back substitution L^T x = y.
  for (std::size_t i = n; i-- > 0;) {
    double v = b[i];
    for (std::size_t k = i + 1; k < n; ++k) v -= a[k * n + i] * b[k];
    b[i] = v / a[i * n + i];
  }
  return b;
}

}  // namespace

KernelShapExplainer::KernelShapExplainer(const BinaryClassifier& model,
                                         const Dataset& background,
                                         KernelShapOptions options)
    : model_(model), options_(options) {
  if (background.n_rows() == 0) {
    throw std::invalid_argument("KernelShap: empty background");
  }
  Rng rng(options_.seed);
  const std::size_t n_bg =
      std::min(options_.n_background, background.n_rows());
  const auto rows = rng.sample_without_replacement(background.n_rows(), n_bg);
  double base = 0.0;
  for (const std::size_t r : rows) {
    const auto row = background.row(r);
    background_rows_.emplace_back(row.begin(), row.end());
    base += model_.predict_proba(row);
  }
  base_value_ = base / static_cast<double>(background_rows_.size());
}

std::vector<double> KernelShapExplainer::shap_values(
    std::span<const float> x) const {
  const std::size_t m = x.size();
  if (m < 2) throw std::invalid_argument("KernelShap: needs >= 2 features");
  Rng rng(options_.seed ^ 0xabcdef12345ULL);

  const double fx = model_.predict_proba(x);
  const double total = fx - base_value_;

  // Coalition-size distribution p(s) ~ (m-1) / (s (m-s)).
  std::vector<double> size_cdf(m - 1);
  double cumulative = 0.0;
  for (std::size_t s = 1; s < m; ++s) {
    cumulative += static_cast<double>(m - 1) /
                  (static_cast<double>(s) * static_cast<double>(m - s));
    size_cdf[s - 1] = cumulative;
  }

  // Accumulate the weighted normal equations over sampled coalitions, with
  // the last feature eliminated by the additivity constraint:
  //   phi_last = total - sum(others),  z'_j = z_j - z_last.
  const std::size_t n_red = m - 1;
  std::vector<double> ata(n_red * n_red, 0.0);
  std::vector<double> atb(n_red, 0.0);

  std::vector<std::uint8_t> z(m);
  std::vector<float> imputed(m);
  std::vector<double> zr(n_red);
  for (std::size_t it = 0; it < options_.n_coalitions; ++it) {
    // Draw a coalition size, then a uniform subset of that size.
    const double pick = rng.uniform() * cumulative;
    std::size_t s = 1;
    while (s < m - 1 && size_cdf[s - 1] < pick) ++s;
    std::fill(z.begin(), z.end(), 0);
    for (const std::size_t idx : rng.sample_without_replacement(m, s)) {
      z[idx] = 1;
    }

    // Model output with absent features imputed from the background.
    double fz = 0.0;
    for (const auto& bg : background_rows_) {
      for (std::size_t f = 0; f < m; ++f) imputed[f] = z[f] ? x[f] : bg[f];
      fz += model_.predict_proba(imputed);
    }
    fz /= static_cast<double>(background_rows_.size());

    // All sampled coalitions of a given size share the kernel weight; since
    // we sample sizes *from* the kernel distribution, each draw gets unit
    // weight in the regression.
    const double y = (fz - base_value_) -
                     static_cast<double>(z[m - 1]) * total;
    for (std::size_t j = 0; j < n_red; ++j) {
      zr[j] = static_cast<double>(z[j]) - static_cast<double>(z[m - 1]);
    }
    for (std::size_t j = 0; j < n_red; ++j) {
      if (zr[j] == 0.0) continue;
      atb[j] += zr[j] * y;
      for (std::size_t k = 0; k <= j; ++k) {
        ata[j * n_red + k] += zr[j] * zr[k];
      }
    }
  }
  // Mirror to the full symmetric matrix.
  for (std::size_t j = 0; j < n_red; ++j) {
    for (std::size_t k = j + 1; k < n_red; ++k) {
      ata[j * n_red + k] = ata[k * n_red + j];
    }
  }

  std::vector<double> phi_reduced =
      cholesky_solve(ata, std::move(atb), n_red, options_.ridge);
  std::vector<double> phi(m, 0.0);
  double sum = 0.0;
  for (std::size_t j = 0; j < n_red; ++j) {
    phi[j] = phi_reduced[j];
    sum += phi_reduced[j];
  }
  phi[m - 1] = total - sum;
  return phi;
}

}  // namespace drcshap
