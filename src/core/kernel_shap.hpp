#pragma once
// Kernel SHAP (Lundberg & Lee 2017): the model-agnostic, sampling-based
// SHAP approximation the paper contrasts with the exact tree explainer
// (Section III-C: "practical implementations ... based on assumptions like
// feature independence and approximations by sampling, which compromise the
// accuracy"). Included so the trade-off can be measured: the ablation bench
// compares its error and runtime against TreeShapExplainer on the same
// forest.
//
// Estimates phi by weighted linear regression over sampled feature
// coalitions; "absent" features are imputed from a background sample
// (feature-independence assumption), unlike the tree explainer's exact
// cover-based conditioning.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "ml/classifier.hpp"

namespace drcshap {

struct KernelShapOptions {
  /// Sampled coalitions (more = tighter estimate, linearly slower).
  std::size_t n_coalitions = 2000;
  /// Background rows used to impute absent features (subsampled from the
  /// provided background dataset).
  std::size_t n_background = 20;
  /// Ridge regularization for the regression solve.
  double ridge = 1e-6;
  std::uint64_t seed = 123;
};

class KernelShapExplainer {
 public:
  /// `model` and `background` must outlive the explainer. The background
  /// dataset provides the reference distribution (its subsample's mean
  /// prediction is the base value).
  KernelShapExplainer(const BinaryClassifier& model, const Dataset& background,
                      KernelShapOptions options = {});

  double base_value() const { return base_value_; }

  /// Approximate SHAP values for one sample. Satisfies additivity exactly
  /// (it is enforced by the regression constraint); individual values carry
  /// sampling error that shrinks with n_coalitions.
  std::vector<double> shap_values(std::span<const float> features) const;

 private:
  const BinaryClassifier& model_;
  KernelShapOptions options_;
  std::vector<std::vector<float>> background_rows_;
  double base_value_;
};

}  // namespace drcshap
