#include "core/model_io.hpp"

#include <fstream>
#include <iomanip>
#include <stdexcept>

namespace drcshap {

namespace {
void expect(std::istream& is, const std::string& keyword) {
  std::string tok;
  is >> tok;
  if (tok != keyword) {
    throw std::runtime_error("model_io: expected '" + keyword + "', got '" +
                             tok + "'");
  }
}
}  // namespace

void save_forest(const RandomForestClassifier& forest, std::ostream& os) {
  if (!forest.fitted()) throw std::logic_error("save_forest: unfitted model");
  os << std::setprecision(17);
  const auto& trees = forest.trees();
  os << "FOREST " << trees.size() << " " << trees.front().n_features() << "\n";
  for (const DecisionTree& tree : trees) {
    os << "TREE " << tree.n_nodes() << "\n";
    for (const TreeNode& n : tree.nodes()) {
      os << n.feature << " " << n.threshold << " " << n.left << " " << n.right
         << " " << n.value << " " << n.cover << "\n";
    }
  }
  os << "END\n";
}

void save_forest_file(const RandomForestClassifier& forest,
                      const std::string& path) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) throw std::runtime_error("save_forest_file: cannot open " + path);
  save_forest(forest, os);
}

RandomForestClassifier load_forest(std::istream& is) {
  expect(is, "FOREST");
  std::size_t n_trees = 0, n_features = 0;
  is >> n_trees >> n_features;
  if (!is || n_trees == 0 || n_features == 0) {
    throw std::runtime_error("model_io: bad forest header");
  }
  std::vector<DecisionTree> trees(n_trees);
  for (std::size_t t = 0; t < n_trees; ++t) {
    expect(is, "TREE");
    std::size_t n_nodes = 0;
    is >> n_nodes;
    std::vector<TreeNode> nodes(n_nodes);
    for (TreeNode& n : nodes) {
      is >> n.feature >> n.threshold >> n.left >> n.right >> n.value >> n.cover;
    }
    if (!is) throw std::runtime_error("model_io: truncated tree");
    trees[t].set_nodes(std::move(nodes), n_features);
  }
  expect(is, "END");
  RandomForestOptions options;
  options.n_trees = static_cast<int>(n_trees);
  RandomForestClassifier forest(options);
  forest.set_trees(std::move(trees), options);
  return forest;
}

RandomForestClassifier load_forest_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_forest_file: cannot open " + path);
  return load_forest(is);
}

}  // namespace drcshap
