#include "core/model_io.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "util/artifact.hpp"
#include "util/failpoint.hpp"

namespace drcshap {

namespace {

constexpr std::string_view kForestKind = "forest";

// Structural caps: a corrupt header must fail with a typed error, not drive
// a multi-gigabyte allocation. Generous vs. anything this repo trains
// (500 trees x ~100k-node trees x 387 features).
constexpr std::size_t kMaxTrees = 1u << 20;
constexpr std::size_t kMaxFeatures = 1u << 20;
constexpr std::size_t kMaxNodes = 1u << 27;

[[noreturn]] void fail_corrupt(const std::string& why) {
  throw ArtifactError({StatusCode::kCorrupt, "model_io: " + why});
}

void expect(std::istream& is, const std::string& keyword) {
  std::string tok;
  is >> tok;
  if (tok != keyword) {
    fail_corrupt("expected '" + keyword + "', got '" + tok + "'");
  }
}

/// A fitted tree from our own writer satisfies these invariants; anything
/// else is corruption or tampering, and feeding it to predict/SHAP would be
/// UB (out-of-range feature reads, infinite descent on a node cycle).
void validate_node(const TreeNode& n, std::size_t index, std::size_t n_nodes,
                   std::size_t n_features) {
  if (!std::isfinite(n.threshold)) {
    fail_corrupt("non-finite threshold at node " + std::to_string(index));
  }
  if (!std::isfinite(n.value) || n.value < 0.0 || n.value > 1.0) {
    fail_corrupt("leaf value outside [0,1] at node " + std::to_string(index));
  }
  if (!std::isfinite(n.cover) || n.cover < 0.0) {
    fail_corrupt("negative/non-finite cover at node " + std::to_string(index));
  }
  if (n.feature < -1 ||
      (n.feature >= 0 &&
       static_cast<std::size_t>(n.feature) >= n_features)) {
    fail_corrupt("feature index " + std::to_string(n.feature) +
                 " out of range at node " + std::to_string(index));
  }
  if (n.feature == -1) {
    if (n.left != -1 || n.right != -1) {
      fail_corrupt("leaf with children at node " + std::to_string(index));
    }
    return;
  }
  // Internal node: children must exist and point strictly forward. Our
  // writer emits trees in preorder (child index > parent index), so this
  // check both bounds the indices and makes cycles impossible.
  for (const std::int32_t child : {n.left, n.right}) {
    if (child <= static_cast<std::int32_t>(index) ||
        static_cast<std::size_t>(child) >= n_nodes) {
      fail_corrupt("child index " + std::to_string(child) +
                   " not strictly forward of node " + std::to_string(index));
    }
  }
}

}  // namespace

void save_forest(const RandomForestClassifier& forest, std::ostream& os) {
  if (!forest.fitted()) throw std::logic_error("save_forest: unfitted model");
  os << std::setprecision(17);
  const auto& trees = forest.trees();
  os << "FOREST " << trees.size() << " " << trees.front().n_features() << "\n";
  for (const DecisionTree& tree : trees) {
    os << "TREE " << tree.n_nodes() << "\n";
    for (const TreeNode& n : tree.nodes()) {
      os << n.feature << " " << n.threshold << " " << n.left << " " << n.right
         << " " << n.value << " " << n.cover << "\n";
    }
  }
  os << "END\n";
}

void save_forest_file(const RandomForestClassifier& forest,
                      const std::string& path) {
  DRCSHAP_FAILPOINT("model_io.write");
  std::ostringstream payload;
  save_forest(forest, payload);
  throw_if_error(
      write_artifact_atomic(path, kForestKind, std::move(payload).str()));
}

RandomForestClassifier load_forest(std::istream& is) {
  expect(is, "FOREST");
  std::size_t n_trees = 0, n_features = 0;
  is >> n_trees >> n_features;
  if (!is || n_trees == 0 || n_features == 0) {
    fail_corrupt("bad forest header");
  }
  if (n_trees > kMaxTrees || n_features > kMaxFeatures) {
    fail_corrupt("implausible forest header: " + std::to_string(n_trees) +
                 " trees x " + std::to_string(n_features) + " features");
  }
  std::vector<DecisionTree> trees(n_trees);
  for (std::size_t t = 0; t < n_trees; ++t) {
    expect(is, "TREE");
    std::size_t n_nodes = 0;
    is >> n_nodes;
    if (!is || n_nodes == 0 || n_nodes > kMaxNodes) {
      fail_corrupt("bad node count in tree " + std::to_string(t));
    }
    std::vector<TreeNode> nodes;
    nodes.reserve(n_nodes);
    for (std::size_t i = 0; i < n_nodes; ++i) {
      TreeNode n;
      is >> n.feature >> n.threshold >> n.left >> n.right >> n.value >> n.cover;
      if (!is) fail_corrupt("truncated tree " + std::to_string(t));
      validate_node(n, i, n_nodes, n_features);
      nodes.push_back(n);
    }
    trees[t].set_nodes(std::move(nodes), n_features);
  }
  expect(is, "END");
  RandomForestOptions options;
  options.n_trees = static_cast<int>(n_trees);
  RandomForestClassifier forest(options);
  forest.set_trees(std::move(trees), options);
  return forest;
}

RandomForestClassifier load_forest_file(const std::string& path) {
  std::istringstream payload(read_artifact(path, kForestKind).value());
  return load_forest(payload);
}

}  // namespace drcshap
