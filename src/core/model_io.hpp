#pragma once
// Text serialization for fitted Random Forest models, so a model trained
// once per technology/flow (the paper's deployment assumption) can be stored
// and reloaded for prediction + explanation without retraining.

#include <iosfwd>
#include <string>

#include "core/random_forest.hpp"

namespace drcshap {

void save_forest(const RandomForestClassifier& forest, std::ostream& os);
void save_forest_file(const RandomForestClassifier& forest,
                      const std::string& path);

RandomForestClassifier load_forest(std::istream& is);
RandomForestClassifier load_forest_file(const std::string& path);

}  // namespace drcshap
