#include "core/random_forest.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>

#include "obs/registry.hpp"
#include "util/thread_pool.hpp"

namespace drcshap {

RandomForestClassifier::RandomForestClassifier(RandomForestOptions options)
    : options_(options) {
  if (options_.n_trees <= 0) {
    throw std::invalid_argument("RandomForest: n_trees must be positive");
  }
}

void RandomForestClassifier::fit(const Dataset& data) {
  if (data.n_rows() == 0) throw std::invalid_argument("RandomForest: empty");
  DRCSHAP_OBS_TIMER("forest/fit");
  obs::counter_add("forest/fit_rows", data.n_rows());
  obs::counter_add("forest/trees_built",
                   static_cast<std::uint64_t>(options_.n_trees));
  const BinnedMatrix binned(data, options_.max_bins);
  trees_.assign(static_cast<std::size_t>(options_.n_trees), DecisionTree{});

  // Pre-draw per-tree seeds so results are independent of thread scheduling.
  Rng seeder(options_.seed);
  std::vector<std::uint64_t> tree_seeds(trees_.size());
  for (auto& s : tree_seeds) s = seeder();

  auto build_tree = [&](std::size_t t) {
    Rng rng(tree_seeds[t]);
    std::vector<std::size_t> rows;
    if (options_.bootstrap) {
      rows = rng.bootstrap_indices(data.n_rows());
    } else {
      rows.resize(data.n_rows());
      std::iota(rows.begin(), rows.end(), 0);
    }
    DecisionTreeOptions tree_options;
    tree_options.max_depth = options_.max_depth;
    tree_options.min_samples_leaf = options_.min_samples_leaf;
    tree_options.min_samples_split = options_.min_samples_leaf * 2;
    tree_options.max_features = options_.max_features;
    tree_options.positive_weight = options_.positive_weight;
    tree_options.seed = rng();
    trees_[t].fit_binned(binned, data, rows, tree_options);
  };

  parallel_for_shared(trees_.size(), build_tree, options_.n_threads);
  rebuild_engines();
}

void RandomForestClassifier::rebuild_engines() {
  flat_ = std::make_shared<FlatForest>(std::span<const DecisionTree>(trees_));
  // The quantize/layout lowering is paid once per fit/deserialize; the
  // timer lets run reports attribute it separately from tree training.
  DRCSHAP_OBS_TIMER("forest/quantize_ms");
  std::string reason;
  compiled_ = CompiledForest::try_compile(*flat_, &reason);
  if (compiled_ == nullptr) {
    obs::note_set("forest/compile_skipped", reason);
  }
}

ForestEngine RandomForestClassifier::resolve_engine(
    ForestEngine requested) const {
  if (requested == ForestEngine::kAuto) requested = forest_engine_from_env();
  if (requested == ForestEngine::kAuto) {
    requested =
        compiled_ != nullptr ? ForestEngine::kCompiled : ForestEngine::kExact;
  }
  // Fallback guarantee: asking for the compiled engine on a model that did
  // not quantize serves exact (identical output) instead of failing.
  if (requested == ForestEngine::kCompiled && compiled_ == nullptr) {
    requested = ForestEngine::kExact;
  }
  return requested;
}

double RandomForestClassifier::predict_proba(
    std::span<const float> features) const {
  return predict_proba(features, ForestEngine::kAuto);
}

double RandomForestClassifier::predict_proba(std::span<const float> features,
                                             ForestEngine engine) const {
  if (!fitted()) throw std::logic_error("RandomForest: not fitted");
  if (features.size() != flat_->n_features()) {
    throw std::invalid_argument("RandomForest: feature count mismatch");
  }
  // Auto picks per call shape: a lone sample pays the full quantization of
  // every feature for a single descent, which costs more than the exact
  // walk reads (~depth features) — so unless the environment or the caller
  // pins the compiled engine, single-sample requests serve exact. Batches
  // amortize quantization across all trees and go compiled (see
  // predict_proba_all). Outputs are byte-identical either way.
  ForestEngine chosen = engine;
  if (chosen == ForestEngine::kAuto) chosen = forest_engine_from_env();
  if (chosen == ForestEngine::kAuto) chosen = ForestEngine::kExact;
  if (chosen == ForestEngine::kCompiled && compiled_ != nullptr) {
    return compiled_->predict(features.data());
  }
  return flat_->predict(features.data());
}

std::vector<double> RandomForestClassifier::predict_proba_all(
    const Dataset& data) const {
  return predict_proba_all(data, ForestEngine::kAuto);
}

std::vector<double> RandomForestClassifier::predict_proba_all(
    const Dataset& data, ForestEngine engine) const {
  if (!fitted()) throw std::logic_error("RandomForest: not fitted");
  if (data.n_features() != flat_->n_features()) {
    throw std::invalid_argument("RandomForest: feature count mismatch");
  }
  return predict_proba_all(std::span<const float>(data.features_flat()),
                           data.n_rows(), engine);
}

std::vector<double> RandomForestClassifier::predict_proba_all(
    std::span<const float> features, std::size_t n_rows,
    ForestEngine engine) const {
  if (!fitted()) throw std::logic_error("RandomForest: not fitted");
  const std::size_t n_features = flat_->n_features();
  if (features.size() != n_rows * n_features) {
    throw std::invalid_argument("RandomForest: feature count mismatch");
  }
  const ForestEngine chosen = resolve_engine(engine);
  DRCSHAP_OBS_TIMER("forest/predict_all");
  obs::counter_add("forest/rows_scored", n_rows);
  obs::note_set("forest/engine", forest_engine_name(chosen));
  std::vector<double> out(n_rows);
  if (out.empty()) return out;
  if (chosen == ForestEngine::kCompiled) {
    // Chunks of whole 8-lane blocks; each chunk quantizes and descends its
    // rows independently, so results are position-keyed and bit-identical
    // at any thread count.
    const CompiledForest& compiled = *compiled_;
    constexpr std::size_t kChunkRows = 64 * CompiledForest::kBlock;
    const std::size_t n_chunks = (out.size() + kChunkRows - 1) / kChunkRows;
    const float* rows = features.data();
    parallel_for_shared(
        n_chunks,
        [&](std::size_t c) {
          const std::size_t begin = c * kChunkRows;
          const std::size_t count = std::min(kChunkRows, out.size() - begin);
          compiled.predict_batch(rows + begin * n_features, count,
                                 out.data() + begin);
        },
        options_.n_threads);
    return out;
  }
  const FlatForest& flat = *flat_;
  const float* rows = features.data();
  parallel_for_shared(
      out.size(),
      [&](std::size_t i) { out[i] = flat.predict(rows + i * n_features); },
      options_.n_threads);
  return out;
}

std::size_t RandomForestClassifier::n_parameters() const {
  // Each internal node stores (feature, threshold), each leaf a value.
  std::size_t params = 0;
  for (const DecisionTree& tree : trees_) {
    const std::size_t leaves = tree.n_leaves();
    params += (tree.n_nodes() - leaves) * 2 + leaves;
  }
  return params;
}

std::size_t RandomForestClassifier::prediction_ops() const {
  // One comparison per level walked in each tree, plus the aggregation adds.
  double ops = 0.0;
  for (const DecisionTree& tree : trees_) ops += tree.mean_depth();
  return static_cast<std::size_t>(ops) + trees_.size();
}

const FlatForest& RandomForestClassifier::flat() const {
  if (!fitted()) throw std::logic_error("RandomForest: not fitted");
  return *flat_;
}

std::shared_ptr<const FlatForest> RandomForestClassifier::flat_shared() const {
  if (!fitted()) throw std::logic_error("RandomForest: not fitted");
  return flat_;
}

double RandomForestClassifier::expected_value() const {
  if (!fitted()) throw std::logic_error("RandomForest: not fitted");
  double total = 0.0;
  for (const DecisionTree& tree : trees_) total += tree.expected_value();
  return total / static_cast<double>(trees_.size());
}

void RandomForestClassifier::set_trees(std::vector<DecisionTree> trees,
                                       RandomForestOptions options) {
  if (trees.empty()) throw std::invalid_argument("set_trees: empty forest");
  trees_ = std::move(trees);
  options_ = options;
  options_.n_trees = static_cast<int>(trees_.size());
  rebuild_engines();
}

}  // namespace drcshap
