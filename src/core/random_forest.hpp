#pragma once
// Random Forest classifier (Breiman 2001), the paper's proposed model:
// bootstrap-sampled, feature-subsampled, unpruned CART trees whose leaf
// probabilities are averaged. Tree training is embarrassingly parallel
// (Section III-A's parallelism argument) via the shared thread pool.
//
// Two inference engines back every fitted model, rebuilt on fit and on
// deserialization: the *exact* FlatForest SoA walk (the reference oracle,
// also the substrate of the SHAP tree explainer) and the *compiled*
// CompiledForest layout (quantized thresholds, breadth-first branch-free
// descent, batch-of-8 SIMD kernel). Both return byte-identical
// probabilities; see core/forest_engine.hpp for how a backend is chosen
// per call or via $DRCSHAP_FOREST_ENGINE.

#include <memory>

#include "core/compiled_forest.hpp"
#include "core/decision_tree.hpp"
#include "core/flat_forest.hpp"
#include "core/forest_engine.hpp"
#include "ml/classifier.hpp"

namespace drcshap {

struct RandomForestOptions {
  int n_trees = 500;            ///< the paper's final model uses 500
  int max_depth = -1;           ///< unpruned by default
  std::size_t min_samples_leaf = 1;
  /// Candidate features per split; 0 = floor(sqrt(M)) (classification
  /// default), -1 = all features.
  int max_features = 0;
  int max_bins = 64;
  bool bootstrap = true;
  double positive_weight = 1.0; ///< class weight on hotspots
  std::uint64_t seed = 42;
  /// Cap on shared-pool workers for fit/predict (0 = whole pool, 1 =
  /// serial); nested inside an outer parallel region the work runs serial
  /// regardless.
  std::size_t n_threads = 0;
};

class RandomForestClassifier final : public BinaryClassifier {
 public:
  explicit RandomForestClassifier(RandomForestOptions options = {});

  void fit(const Dataset& data) override;
  double predict_proba(std::span<const float> features) const override;

  /// Batched scoring: rows fan out across the shared thread pool (capped at
  /// options().n_threads workers), each accumulating its trees in fixed
  /// order, so the result is identical to the per-row loop for any thread
  /// count. Cross-validation and grid search call this on every fold.
  /// Served by the engine $DRCSHAP_FOREST_ENGINE selects (default: compiled
  /// when available); the engine note/counters in the run report record
  /// which backend ran.
  std::vector<double> predict_proba_all(const Dataset& data) const override;

  /// Same, with the backend pinned per call (kAuto = env/default rules).
  /// Every engine returns byte-identical probabilities.
  std::vector<double> predict_proba_all(const Dataset& data,
                                        ForestEngine engine) const;

  /// Same, over a raw row-major n_rows x n_features float matrix — no
  /// Dataset wrapper, so the serving layer can score request batches
  /// straight off the wire. Byte-identical to the Dataset overload row for
  /// row (both delegate to the same engine dispatch).
  std::vector<double> predict_proba_all(std::span<const float> features,
                                        std::size_t n_rows,
                                        ForestEngine engine) const;

  /// Single-sample scoring with the backend pinned per call.
  double predict_proba(std::span<const float> features,
                       ForestEngine engine) const;

  /// The backend a request for `requested` would actually run: applies the
  /// $DRCSHAP_FOREST_ENGINE default to kAuto and falls back to kExact when
  /// the fitted model has no compiled layout.
  ForestEngine resolve_engine(ForestEngine requested) const;

  std::size_t n_parameters() const override;
  std::size_t prediction_ops() const override;
  std::string name() const override { return "RF"; }

  bool fitted() const { return !trees_.empty(); }
  const std::vector<DecisionTree>& trees() const { return trees_; }
  const RandomForestOptions& options() const { return options_; }

  /// Flattened SoA view of the fitted ensemble (throws if not fitted). The
  /// shared_ptr form lets explainers outlive a refit of this classifier.
  const FlatForest& flat() const;
  std::shared_ptr<const FlatForest> flat_shared() const;

  /// Compiled (quantized, breadth-first) layout of the fitted ensemble, or
  /// nullptr when the model could not be quantized (then every call serves
  /// from the exact engine). The shared_ptr form lets explainers outlive a
  /// refit, like flat_shared().
  const CompiledForest* compiled() const { return compiled_.get(); }
  std::shared_ptr<const CompiledForest> compiled_shared() const {
    return compiled_;
  }

  /// Cover-weighted mean prediction over training data: the SHAP base value.
  double expected_value() const;

  /// For deserialization (model_io).
  void set_trees(std::vector<DecisionTree> trees, RandomForestOptions options);

 private:
  /// Rebuilds both inference engines from trees_ (fit / set_trees).
  void rebuild_engines();

  RandomForestOptions options_;
  std::vector<DecisionTree> trees_;
  std::shared_ptr<const FlatForest> flat_;
  std::shared_ptr<const CompiledForest> compiled_;
};

}  // namespace drcshap
