#pragma once
// Random Forest classifier (Breiman 2001), the paper's proposed model:
// bootstrap-sampled, feature-subsampled, unpruned CART trees whose leaf
// probabilities are averaged. Tree training is embarrassingly parallel
// (Section III-A's parallelism argument) via the shared thread pool, and a
// flattened SoA view of the fitted ensemble (rebuilt on fit/deserialize)
// backs batched prediction and the SHAP tree explainer.

#include <memory>

#include "core/decision_tree.hpp"
#include "core/flat_forest.hpp"
#include "ml/classifier.hpp"

namespace drcshap {

struct RandomForestOptions {
  int n_trees = 500;            ///< the paper's final model uses 500
  int max_depth = -1;           ///< unpruned by default
  std::size_t min_samples_leaf = 1;
  /// Candidate features per split; 0 = floor(sqrt(M)) (classification
  /// default), -1 = all features.
  int max_features = 0;
  int max_bins = 64;
  bool bootstrap = true;
  double positive_weight = 1.0; ///< class weight on hotspots
  std::uint64_t seed = 42;
  /// Cap on shared-pool workers for fit/predict (0 = whole pool, 1 =
  /// serial); nested inside an outer parallel region the work runs serial
  /// regardless.
  std::size_t n_threads = 0;
};

class RandomForestClassifier final : public BinaryClassifier {
 public:
  explicit RandomForestClassifier(RandomForestOptions options = {});

  void fit(const Dataset& data) override;
  double predict_proba(std::span<const float> features) const override;

  /// Batched scoring: rows fan out across the shared thread pool (capped at
  /// options().n_threads workers), each accumulating its trees in fixed
  /// order, so the result is identical to the per-row loop for any thread
  /// count. Cross-validation and grid search call this on every fold.
  std::vector<double> predict_proba_all(const Dataset& data) const override;

  std::size_t n_parameters() const override;
  std::size_t prediction_ops() const override;
  std::string name() const override { return "RF"; }

  bool fitted() const { return !trees_.empty(); }
  const std::vector<DecisionTree>& trees() const { return trees_; }
  const RandomForestOptions& options() const { return options_; }

  /// Flattened SoA view of the fitted ensemble (throws if not fitted). The
  /// shared_ptr form lets explainers outlive a refit of this classifier.
  const FlatForest& flat() const;
  std::shared_ptr<const FlatForest> flat_shared() const;

  /// Cover-weighted mean prediction over training data: the SHAP base value.
  double expected_value() const;

  /// For deserialization (model_io).
  void set_trees(std::vector<DecisionTree> trees, RandomForestOptions options);

 private:
  RandomForestOptions options_;
  std::vector<DecisionTree> trees_;
  std::shared_ptr<const FlatForest> flat_;
};

}  // namespace drcshap
