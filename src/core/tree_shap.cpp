#include "core/tree_shap.hpp"

#include <cmath>
#include <stdexcept>

namespace drcshap {

namespace {

// One element of the "unique path" of Algorithm 2: a feature encountered on
// the way down, the fraction of paths that flow through when the feature is
// unknown (zero_fraction = cover ratio) or known (one_fraction = 0/1), and
// the permutation weight accumulator pweight.
struct PathElement {
  int feature_index = -1;
  double zero_fraction = 0.0;
  double one_fraction = 0.0;
  double pweight = 0.0;
};

/// Grow the path by one split (EXTEND).
void extend_path(PathElement* path, int unique_depth, double zero_fraction,
                 double one_fraction, int feature_index) {
  path[unique_depth] = {feature_index, zero_fraction, one_fraction,
                        unique_depth == 0 ? 1.0 : 0.0};
  for (int i = unique_depth - 1; i >= 0; --i) {
    path[i + 1].pweight += one_fraction * path[i].pweight * (i + 1) /
                           static_cast<double>(unique_depth + 1);
    path[i].pweight = zero_fraction * path[i].pweight * (unique_depth - i) /
                      static_cast<double>(unique_depth + 1);
  }
}

/// Undo an extension for a repeated feature (UNWIND).
void unwind_path(PathElement* path, int unique_depth, int path_index) {
  const double one_fraction = path[path_index].one_fraction;
  const double zero_fraction = path[path_index].zero_fraction;
  double next_one_portion = path[unique_depth].pweight;
  for (int i = unique_depth - 1; i >= 0; --i) {
    if (one_fraction != 0.0) {
      const double tmp = path[i].pweight;
      path[i].pweight = next_one_portion * (unique_depth + 1) /
                        static_cast<double>((i + 1) * one_fraction);
      next_one_portion =
          tmp - path[i].pweight * zero_fraction * (unique_depth - i) /
                    static_cast<double>(unique_depth + 1);
    } else {
      path[i].pweight = path[i].pweight * (unique_depth + 1) /
                        static_cast<double>(zero_fraction * (unique_depth - i));
    }
  }
  for (int i = path_index; i < unique_depth; ++i) {
    path[i].feature_index = path[i + 1].feature_index;
    path[i].zero_fraction = path[i + 1].zero_fraction;
    path[i].one_fraction = path[i + 1].one_fraction;
  }
}

/// Total permutation weight if path_index were unwound (UNWOUND_PATH_SUM).
double unwound_path_sum(const PathElement* path, int unique_depth,
                        int path_index) {
  const double one_fraction = path[path_index].one_fraction;
  const double zero_fraction = path[path_index].zero_fraction;
  double next_one_portion = path[unique_depth].pweight;
  double total = 0.0;
  for (int i = unique_depth - 1; i >= 0; --i) {
    if (one_fraction != 0.0) {
      const double tmp = next_one_portion * (unique_depth + 1) /
                         static_cast<double>((i + 1) * one_fraction);
      total += tmp;
      next_one_portion = path[i].pweight -
                         tmp * zero_fraction * (unique_depth - i) /
                             static_cast<double>(unique_depth + 1);
    } else {
      total += path[i].pweight * (unique_depth + 1) /
               static_cast<double>(zero_fraction * (unique_depth - i));
    }
  }
  return total;
}

struct TreeShapContext {
  const std::vector<TreeNode>* nodes;
  std::span<const float> x;
  std::vector<double>* phi;
  // Pre-allocated path storage: recursion level L uses the slot starting at
  // L * stride. A repeated feature shrinks unique_depth without changing the
  // level, so slots are keyed by level, not unique depth.
  std::vector<PathElement> path_storage;
  int stride;
};

void tree_shap_recurse(TreeShapContext& ctx, std::int32_t node_index,
                       int level, int unique_depth,
                       const PathElement* parent_path,
                       double parent_zero_fraction,
                       double parent_one_fraction, int parent_feature_index) {
  // Copy the parent's path into this level's slot, then extend it.
  PathElement* path =
      ctx.path_storage.data() + static_cast<std::size_t>(level) * ctx.stride;
  for (int i = 0; i < unique_depth; ++i) path[i] = parent_path[i];
  extend_path(path, unique_depth, parent_zero_fraction, parent_one_fraction,
              parent_feature_index);

  const TreeNode& node = (*ctx.nodes)[static_cast<std::size_t>(node_index)];
  if (node.feature < 0) {
    // Leaf: attribute to every feature on the unique path.
    for (int i = 1; i <= unique_depth; ++i) {
      const double w = unwound_path_sum(path, unique_depth, i);
      (*ctx.phi)[static_cast<std::size_t>(path[i].feature_index)] +=
          w * (path[i].one_fraction - path[i].zero_fraction) * node.value;
    }
    return;
  }

  const TreeNode& left = (*ctx.nodes)[static_cast<std::size_t>(node.left)];
  const TreeNode& right = (*ctx.nodes)[static_cast<std::size_t>(node.right)];
  const bool goes_left =
      ctx.x[static_cast<std::size_t>(node.feature)] <= node.threshold;
  const std::int32_t hot = goes_left ? node.left : node.right;
  const std::int32_t cold = goes_left ? node.right : node.left;
  const double hot_cover = goes_left ? left.cover : right.cover;
  const double cold_cover = goes_left ? right.cover : left.cover;

  double incoming_zero_fraction = 1.0;
  double incoming_one_fraction = 1.0;
  // If this feature was already on the path, undo its previous extension and
  // fold its fractions into this one.
  int path_index = 1;
  for (; path_index <= unique_depth; ++path_index) {
    if (path[path_index].feature_index == node.feature) break;
  }
  int depth_after = unique_depth;
  if (path_index <= unique_depth) {
    incoming_zero_fraction = path[path_index].zero_fraction;
    incoming_one_fraction = path[path_index].one_fraction;
    unwind_path(path, unique_depth, path_index);
    depth_after = unique_depth - 1;
  }

  const double cover = node.cover;
  tree_shap_recurse(ctx, hot, level + 1, depth_after + 1, path,
                    hot_cover / cover * incoming_zero_fraction,
                    incoming_one_fraction, node.feature);
  tree_shap_recurse(ctx, cold, level + 1, depth_after + 1, path,
                    cold_cover / cover * incoming_zero_fraction, 0.0,
                    node.feature);
}

}  // namespace

std::vector<double> TreeShapExplainer::tree_shap_values(
    const DecisionTree& tree, std::span<const float> features) {
  if (!tree.fitted()) throw std::logic_error("tree_shap: tree not fitted");
  if (features.size() != tree.n_features()) {
    throw std::invalid_argument("tree_shap: feature count mismatch");
  }
  std::vector<double> phi(tree.n_features(), 0.0);
  const int max_depth = tree.depth();

  TreeShapContext ctx;
  ctx.nodes = &tree.nodes();
  ctx.x = features;
  ctx.phi = &phi;
  ctx.stride = max_depth + 2;  // a level-L path holds <= L+1 elements
  ctx.path_storage.assign(
      static_cast<std::size_t>(max_depth + 1) * static_cast<std::size_t>(ctx.stride),
      PathElement{});

  tree_shap_recurse(ctx, 0, /*level=*/0, /*unique_depth=*/0,
                    /*parent_path=*/nullptr, 1.0, 1.0, -1);
  return phi;
}

TreeShapExplainer::TreeShapExplainer(const RandomForestClassifier& forest)
    : forest_(forest), base_value_(forest.expected_value()) {
  if (!forest.fitted()) {
    throw std::invalid_argument("TreeShapExplainer: forest not fitted");
  }
}

std::vector<double> TreeShapExplainer::shap_values(
    std::span<const float> features) const {
  const auto& trees = forest_.trees();
  std::vector<double> phi(features.size(), 0.0);
  for (const DecisionTree& tree : trees) {
    const std::vector<double> tree_phi = tree_shap_values(tree, features);
    for (std::size_t f = 0; f < phi.size(); ++f) phi[f] += tree_phi[f];
  }
  const double inv = 1.0 / static_cast<double>(trees.size());
  for (double& v : phi) v *= inv;
  return phi;
}

}  // namespace drcshap
