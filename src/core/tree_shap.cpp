#include "core/tree_shap.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "obs/registry.hpp"
#include "util/thread_pool.hpp"

namespace drcshap {

namespace {

// One element of the "unique path" of Algorithm 2: a feature encountered on
// the way down, the fraction of paths that flow through when the feature is
// unknown (zero_fraction = cover ratio) or known (one_fraction = 0/1), and
// the permutation weight accumulator pweight.
struct PathElement {
  int feature_index = -1;
  double zero_fraction = 0.0;
  double one_fraction = 0.0;
  double pweight = 0.0;
};

/// Grow the path by one split (EXTEND).
void extend_path(PathElement* path, int unique_depth, double zero_fraction,
                 double one_fraction, int feature_index) {
  path[unique_depth] = {feature_index, zero_fraction, one_fraction,
                        unique_depth == 0 ? 1.0 : 0.0};
  for (int i = unique_depth - 1; i >= 0; --i) {
    path[i + 1].pweight += one_fraction * path[i].pweight * (i + 1) /
                           static_cast<double>(unique_depth + 1);
    path[i].pweight = zero_fraction * path[i].pweight * (unique_depth - i) /
                      static_cast<double>(unique_depth + 1);
  }
}

/// Undo an extension for a repeated feature (UNWIND).
void unwind_path(PathElement* path, int unique_depth, int path_index) {
  const double one_fraction = path[path_index].one_fraction;
  const double zero_fraction = path[path_index].zero_fraction;
  double next_one_portion = path[unique_depth].pweight;
  for (int i = unique_depth - 1; i >= 0; --i) {
    if (one_fraction != 0.0) {
      const double tmp = path[i].pweight;
      path[i].pweight = next_one_portion * (unique_depth + 1) /
                        static_cast<double>((i + 1) * one_fraction);
      next_one_portion =
          tmp - path[i].pweight * zero_fraction * (unique_depth - i) /
                    static_cast<double>(unique_depth + 1);
    } else {
      path[i].pweight = path[i].pweight * (unique_depth + 1) /
                        static_cast<double>(zero_fraction * (unique_depth - i));
    }
  }
  for (int i = path_index; i < unique_depth; ++i) {
    path[i].feature_index = path[i + 1].feature_index;
    path[i].zero_fraction = path[i + 1].zero_fraction;
    path[i].one_fraction = path[i + 1].one_fraction;
  }
}

/// Total permutation weight if path_index were unwound (UNWOUND_PATH_SUM).
double unwound_path_sum(const PathElement* path, int unique_depth,
                        int path_index) {
  const double one_fraction = path[path_index].one_fraction;
  const double zero_fraction = path[path_index].zero_fraction;
  double next_one_portion = path[unique_depth].pweight;
  double total = 0.0;
  for (int i = unique_depth - 1; i >= 0; --i) {
    if (one_fraction != 0.0) {
      const double tmp = next_one_portion * (unique_depth + 1) /
                         static_cast<double>((i + 1) * one_fraction);
      total += tmp;
      next_one_portion = path[i].pweight -
                         tmp * zero_fraction * (unique_depth - i) /
                             static_cast<double>(unique_depth + 1);
    } else {
      total += path[i].pweight * (unique_depth + 1) /
               static_cast<double>(zero_fraction * (unique_depth - i));
    }
  }
  return total;
}

// The recursion below is generic over how the ensemble is laid out. Both
// traversals expose the same split decisions — the compiled one compares
// the sample's u16 codes against quantized thresholds, which the monotone
// bucketization makes exactly equivalent to the float compare — and both
// read the same value/cover doubles, so the SHAP arithmetic (and therefore
// every output bit) is independent of which layout ran.

/// FlatForest arrays + the raw sample: the exact reference traversal.
struct ExactTraversal {
  const std::int32_t* feature;
  const float* threshold;
  const std::int32_t* left;
  const std::int32_t* right;
  const double* value;
  const double* cover;
  const float* x;

  bool is_leaf(std::size_t node) const { return feature[node] < 0; }
  std::int32_t split_feature(std::size_t node) const { return feature[node]; }
  bool goes_left(std::size_t node) const {
    return x[static_cast<std::size_t>(feature[node])] <= threshold[node];
  }
  std::int32_t left_child(std::size_t node) const { return left[node]; }
  std::int32_t right_child(std::size_t node) const { return right[node]; }
};

/// CompiledForest breadth-first child/feature arrays + the sample's
/// quantized codes. Children are adjacent (one array instead of two) and a
/// leaf self-loops, so the hot path touches fewer, denser cache lines.
struct CompiledTraversal {
  const std::int32_t* feature;
  const std::int32_t* qthreshold;
  const std::int32_t* child;
  const double* value;
  const double* cover;
  const std::uint16_t* qx;

  bool is_leaf(std::size_t node) const {
    return child[node] == static_cast<std::int32_t>(node);
  }
  std::int32_t split_feature(std::size_t node) const { return feature[node]; }
  bool goes_left(std::size_t node) const {
    return static_cast<std::int32_t>(
               qx[static_cast<std::size_t>(feature[node])]) <=
           qthreshold[node];
  }
  std::int32_t left_child(std::size_t node) const { return child[node]; }
  std::int32_t right_child(std::size_t node) const { return child[node] + 1; }
};

// Per-traversal state: the phi accumulator and the path scratch. Recursion
// level L uses the scratch slot starting at L * stride; a repeated feature
// shrinks unique_depth without changing the level, so slots are keyed by
// level.
template <class Traversal>
struct ShapContext {
  Traversal tree;
  double* phi;
  PathElement* path_storage;
  int stride;
};

template <class Traversal>
void shap_recurse(const ShapContext<Traversal>& ctx, std::int32_t node_index,
                  int level, int unique_depth, const PathElement* parent_path,
                  double parent_zero_fraction, double parent_one_fraction,
                  int parent_feature_index) {
  // Copy the parent's path into this level's slot, then extend it.
  PathElement* path = ctx.path_storage +
                      static_cast<std::size_t>(level) *
                          static_cast<std::size_t>(ctx.stride);
  for (int i = 0; i < unique_depth; ++i) path[i] = parent_path[i];
  extend_path(path, unique_depth, parent_zero_fraction, parent_one_fraction,
              parent_feature_index);

  const auto node = static_cast<std::size_t>(node_index);
  if (ctx.tree.is_leaf(node)) {
    // Leaf: attribute to every feature on the unique path.
    const double leaf_value = ctx.tree.value[node];
    for (int i = 1; i <= unique_depth; ++i) {
      const double w = unwound_path_sum(path, unique_depth, i);
      ctx.phi[static_cast<std::size_t>(path[i].feature_index)] +=
          w * (path[i].one_fraction - path[i].zero_fraction) * leaf_value;
    }
    return;
  }

  const std::int32_t feature = ctx.tree.split_feature(node);
  const bool goes_left = ctx.tree.goes_left(node);
  const std::int32_t left = ctx.tree.left_child(node);
  const std::int32_t right = ctx.tree.right_child(node);
  const std::int32_t hot = goes_left ? left : right;
  const std::int32_t cold = goes_left ? right : left;
  const double hot_cover = ctx.tree.cover[static_cast<std::size_t>(hot)];
  const double cold_cover = ctx.tree.cover[static_cast<std::size_t>(cold)];

  double incoming_zero_fraction = 1.0;
  double incoming_one_fraction = 1.0;
  // If this feature was already on the path, undo its previous extension and
  // fold its fractions into this one.
  int path_index = 1;
  for (; path_index <= unique_depth; ++path_index) {
    if (path[path_index].feature_index == feature) break;
  }
  int depth_after = unique_depth;
  if (path_index <= unique_depth) {
    incoming_zero_fraction = path[path_index].zero_fraction;
    incoming_one_fraction = path[path_index].one_fraction;
    unwind_path(path, unique_depth, path_index);
    depth_after = unique_depth - 1;
  }

  const double cover = ctx.tree.cover[node];
  shap_recurse(ctx, hot, level + 1, depth_after + 1, path,
               hot_cover / cover * incoming_zero_fraction,
               incoming_one_fraction, feature);
  shap_recurse(ctx, cold, level + 1, depth_after + 1, path,
               cold_cover / cover * incoming_zero_fraction, 0.0, feature);
}

/// Accumulate one tree's SHAP values for `x` into `phi` (not normalized).
/// `path_storage` must hold (forest.max_depth()+1) * stride elements with
/// stride >= forest.max_depth() + 2.
void flat_tree_shap(const FlatForest& forest, std::size_t tree, const float* x,
                    double* phi, PathElement* path_storage, int stride) {
  ShapContext<ExactTraversal> ctx{
      {forest.feature(), forest.threshold(), forest.left(), forest.right(),
       forest.value(), forest.cover(), x},
      phi,
      path_storage,
      stride};
  shap_recurse(ctx, forest.root(tree), /*level=*/0, /*unique_depth=*/0,
               /*parent_path=*/nullptr, 1.0, 1.0, -1);
}

/// Same, over the compiled breadth-first layout with pre-quantized codes.
void compiled_tree_shap(const CompiledForest& forest, std::size_t tree,
                        const std::uint16_t* codes, double* phi,
                        PathElement* path_storage, int stride) {
  ShapContext<CompiledTraversal> ctx{
      {forest.feature(), forest.qthreshold(), forest.child(), forest.value(),
       forest.cover(), codes},
      phi,
      path_storage,
      stride};
  shap_recurse(ctx, forest.root(tree), /*level=*/0, /*unique_depth=*/0,
               /*parent_path=*/nullptr, 1.0, 1.0, -1);
}

/// Scratch sizing for one forest: a level-L path holds <= L+1 elements.
std::size_t path_scratch_len(const FlatForest& forest) {
  return static_cast<std::size_t>(forest.max_depth() + 1) *
         static_cast<std::size_t>(forest.max_depth() + 2);
}

// Trees per reduction block of the batch engine. The block partition is a
// function of the ensemble alone — never of the thread count or the batch
// size — so the merge structure, and therefore every last bit of the
// result, is the same no matter how work lands on workers.
constexpr std::size_t kTreesPerBlock = 64;

// Samples per in-flight slab when tree blocks force a partial buffer;
// bounds partial memory at ~kPartialBudget doubles per feature.
constexpr std::size_t kPartialBudget = 2048;

}  // namespace

std::vector<double> TreeShapExplainer::tree_shap_values(
    const DecisionTree& tree, std::span<const float> features) {
  if (!tree.fitted()) throw std::logic_error("tree_shap: tree not fitted");
  if (features.size() != tree.n_features()) {
    throw std::invalid_argument("tree_shap: feature count mismatch");
  }
  const FlatForest flat(std::span<const DecisionTree>(&tree, 1));
  std::vector<double> phi(tree.n_features(), 0.0);
  std::vector<PathElement> path(path_scratch_len(flat));
  flat_tree_shap(flat, 0, features.data(), phi.data(), path.data(),
                 flat.max_depth() + 2);
  return phi;
}

TreeShapExplainer::TreeShapExplainer(const RandomForestClassifier& forest) {
  if (!forest.fitted()) {
    throw std::invalid_argument("TreeShapExplainer: forest not fitted");
  }
  flat_ = forest.flat_shared();
  compiled_ = forest.compiled_shared();
  base_value_ = forest.expected_value();
}

bool TreeShapExplainer::use_compiled() const {
  ForestEngine engine = engine_;
  if (engine == ForestEngine::kAuto) engine = forest_engine_from_env();
  if (engine == ForestEngine::kAuto) {
    engine = compiled_ != nullptr ? ForestEngine::kCompiled
                                  : ForestEngine::kExact;
  }
  return engine == ForestEngine::kCompiled && compiled_ != nullptr;
}

std::vector<double> TreeShapExplainer::shap_values(
    std::span<const float> features) const {
  const FlatForest& flat = *flat_;
  if (features.size() != flat.n_features()) {
    throw std::invalid_argument("tree_shap: feature count mismatch");
  }
  DRCSHAP_OBS_TIMER("shap/values");
  obs::counter_add("shap/samples");
  std::vector<double> phi(flat.n_features(), 0.0);
  std::vector<PathElement> path(path_scratch_len(flat));
  const int stride = flat.max_depth() + 2;
  if (use_compiled()) {
    const CompiledForest& compiled = *compiled_;
    std::vector<std::uint16_t> codes(flat.n_features());
    compiled.quantize_sample(features.data(), codes.data());
    for (std::size_t t = 0; t < flat.n_trees(); ++t) {
      compiled_tree_shap(compiled, t, codes.data(), phi.data(), path.data(),
                         stride);
    }
  } else {
    for (std::size_t t = 0; t < flat.n_trees(); ++t) {
      flat_tree_shap(flat, t, features.data(), phi.data(), path.data(),
                     stride);
    }
  }
  const double inv = 1.0 / static_cast<double>(flat.n_trees());
  for (double& v : phi) v *= inv;
  return phi;
}

ShapMatrix TreeShapExplainer::shap_values_batch(const Dataset& data,
                                                std::size_t n_threads) const {
  if (data.n_features() != flat_->n_features()) {
    throw std::invalid_argument("shap_values_batch: feature count mismatch");
  }
  return shap_values_batch(std::span<const float>(data.features_flat()),
                           data.n_rows(), n_threads);
}

ShapMatrix TreeShapExplainer::shap_values_batch(std::span<const float> features,
                                                std::size_t n_rows,
                                                std::size_t n_threads) const {
  const FlatForest& flat = *flat_;
  const std::size_t n_features = flat.n_features();
  if (features.size() != n_rows * n_features) {
    throw std::invalid_argument("shap_values_batch: matrix shape mismatch");
  }
  DRCSHAP_OBS_TIMER("shap/values_batch");
  obs::counter_add("shap/batch_samples", n_rows);
  obs::counter_add("shap/tree_traversals", n_rows * flat.n_trees());
  // Pin the traversal engine once per batch; the note lets run reports show
  // which layout served the explanation pass.
  const CompiledForest* compiled = use_compiled() ? compiled_.get() : nullptr;
  obs::note_set("shap/engine", compiled != nullptr ? "compiled" : "exact");
  ShapMatrix out;
  out.n_rows = n_rows;
  out.n_features = n_features;
  out.values.assign(n_rows * n_features, 0.0);
  if (n_rows == 0) return out;

  const std::size_t n_trees = flat.n_trees();
  const std::size_t n_blocks = (n_trees + kTreesPerBlock - 1) / kTreesPerBlock;
  const double inv = 1.0 / static_cast<double>(n_trees);
  const int stride = flat.max_depth() + 2;
  const std::size_t scratch_len = path_scratch_len(flat);

  ThreadPool& pool = ThreadPool::global();
  // One scratch slot per shared-pool worker: the Algorithm-2 path storage
  // plus, for the compiled engine, the sample's quantized codes. Ranges may
  // also run inline on the calling thread (worker index -1 when it is not a
  // pool worker), but only when nothing was submitted — a serial-degraded
  // nested call runs entirely on its outer worker, and a top-level inline
  // run has no workers active in this call — so a slot is never contended
  // within one call.
  struct WorkerScratch {
    std::vector<PathElement> path;
    std::vector<std::uint16_t> codes;
  };
  std::vector<WorkerScratch> scratch(pool.size());
  auto worker_scratch = [&]() -> WorkerScratch& {
    const int w = ThreadPool::current_worker_index();
    const std::size_t slot =
        (w < 0 || static_cast<std::size_t>(w) >= scratch.size())
            ? 0
            : static_cast<std::size_t>(w);
    WorkerScratch& ws = scratch[slot];
    if (ws.path.size() < scratch_len) ws.path.assign(scratch_len, {});
    if (compiled != nullptr && ws.codes.size() < n_features) {
      ws.codes.resize(n_features);
    }
    return ws;
  };
  // Accumulate trees [t_begin, t_end) for sample `x` into `phi` in fixed
  // tree order, over whichever layout the engine selected.
  auto accumulate_trees = [&](const float* x, double* phi,
                              std::size_t t_begin, std::size_t t_end) {
    WorkerScratch& ws = worker_scratch();
    if (compiled != nullptr) {
      compiled->quantize_sample(x, ws.codes.data());
      for (std::size_t t = t_begin; t < t_end; ++t) {
        compiled_tree_shap(*compiled, t, ws.codes.data(), phi,
                           ws.path.data(), stride);
      }
    } else {
      for (std::size_t t = t_begin; t < t_end; ++t) {
        flat_tree_shap(flat, t, x, phi, ws.path.data(), stride);
      }
    }
  };

  if (n_blocks == 1) {
    // Small ensemble: one work unit per sample writes its output row
    // directly, accumulating trees in fixed order.
    pool.parallel_for(
        n_rows,
        [&](std::size_t s) {
          const float* x = features.data() + s * n_features;
          double* phi = out.values.data() + s * n_features;
          accumulate_trees(x, phi, 0, n_trees);
          for (std::size_t f = 0; f < n_features; ++f) phi[f] *= inv;
        },
        /*grain=*/0, /*max_workers=*/n_threads);
    return out;
  }

  // Large ensemble: (sample, tree-block) work units write per-unit partial
  // phi rows, merged per sample in ascending block order. Samples stream
  // through in slabs so the partial buffer stays bounded.
  const std::size_t slab = std::max<std::size_t>(1, kPartialBudget / n_blocks);
  std::vector<double> partial(std::min(slab, n_rows) * n_blocks * n_features);
  for (std::size_t begin = 0; begin < n_rows; begin += slab) {
    const std::size_t count = std::min(slab, n_rows - begin);
    std::fill(partial.begin(),
              partial.begin() +
                  static_cast<std::ptrdiff_t>(count * n_blocks * n_features),
              0.0);
    pool.parallel_for(
        count * n_blocks,
        [&](std::size_t unit) {
          const std::size_t local = unit / n_blocks;
          const std::size_t block = unit % n_blocks;
          const float* x = features.data() + (begin + local) * n_features;
          double* phi =
              partial.data() + (local * n_blocks + block) * n_features;
          const std::size_t t_begin = block * kTreesPerBlock;
          const std::size_t t_end = std::min(n_trees, t_begin + kTreesPerBlock);
          accumulate_trees(x, phi, t_begin, t_end);
        },
        /*grain=*/0, /*max_workers=*/n_threads);
    pool.parallel_for(
        count,
        [&](std::size_t local) {
          double* dst = out.values.data() + (begin + local) * n_features;
          for (std::size_t block = 0; block < n_blocks; ++block) {
            const double* src =
                partial.data() + (local * n_blocks + block) * n_features;
            for (std::size_t f = 0; f < n_features; ++f) dst[f] += src[f];
          }
          for (std::size_t f = 0; f < n_features; ++f) dst[f] *= inv;
        },
        /*grain=*/0, /*max_workers=*/n_threads);
  }
  return out;
}

}  // namespace drcshap
