#include "core/tree_shap.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <string_view>
#include <unordered_map>

#include "core/explanation_cache.hpp"
#include "core/tree_shap_simd.hpp"
#include "obs/registry.hpp"
#include "util/thread_pool.hpp"

namespace drcshap {

namespace {

using shap_detail::PathElement;
using shap_detail::ExactTraversal;
using shap_detail::CompiledTraversal;
using shap_detail::ShapMeta;
using shap_detail::FastFrame;
using shap_detail::extend_path_01;
using shap_detail::unwind_path;

/// Grow the path by one split (EXTEND).
void extend_path(PathElement* path, int unique_depth, double zero_fraction,
                 double one_fraction, int feature_index) {
  path[unique_depth] = {feature_index, zero_fraction, one_fraction,
                        unique_depth == 0 ? 1.0 : 0.0};
  for (int i = unique_depth - 1; i >= 0; --i) {
    path[i + 1].pweight += one_fraction * path[i].pweight * (i + 1) /
                           static_cast<double>(unique_depth + 1);
    path[i].pweight = zero_fraction * path[i].pweight * (unique_depth - i) /
                      static_cast<double>(unique_depth + 1);
  }
}

/// Total permutation weight if path_index were unwound (UNWOUND_PATH_SUM).
double unwound_path_sum(const PathElement* path, int unique_depth,
                        int path_index) {
  const double one_fraction = path[path_index].one_fraction;
  const double zero_fraction = path[path_index].zero_fraction;
  double next_one_portion = path[unique_depth].pweight;
  double total = 0.0;
  for (int i = unique_depth - 1; i >= 0; --i) {
    if (one_fraction != 0.0) {
      const double tmp = next_one_portion * (unique_depth + 1) /
                         static_cast<double>((i + 1) * one_fraction);
      total += tmp;
      next_one_portion = path[i].pweight -
                         tmp * zero_fraction * (unique_depth - i) /
                             static_cast<double>(unique_depth + 1);
    } else {
      total += path[i].pweight * (unique_depth + 1) /
               static_cast<double>(zero_fraction * (unique_depth - i));
    }
  }
  return total;
}

// Per-traversal state: the phi accumulator and the path scratch. Recursion
// level L uses the scratch slot starting at L * stride; a repeated feature
// shrinks unique_depth without changing the level, so slots are keyed by
// level.
template <class Traversal>
struct ShapContext {
  Traversal tree;
  double* phi;
  PathElement* path_storage;
  int stride;
};

template <class Traversal>
void shap_recurse(const ShapContext<Traversal>& ctx, std::int32_t node_index,
                  int level, int unique_depth, const PathElement* parent_path,
                  double parent_zero_fraction, double parent_one_fraction,
                  int parent_feature_index) {
  // Copy the parent's path into this level's slot, then extend it.
  PathElement* path = ctx.path_storage +
                      static_cast<std::size_t>(level) *
                          static_cast<std::size_t>(ctx.stride);
  for (int i = 0; i < unique_depth; ++i) path[i] = parent_path[i];
  extend_path(path, unique_depth, parent_zero_fraction, parent_one_fraction,
              parent_feature_index);

  const auto node = static_cast<std::size_t>(node_index);
  if (ctx.tree.is_leaf(node)) {
    // Leaf: attribute to every feature on the unique path.
    const double leaf_value = ctx.tree.value[node];
    for (int i = 1; i <= unique_depth; ++i) {
      const double w = unwound_path_sum(path, unique_depth, i);
      ctx.phi[static_cast<std::size_t>(path[i].feature_index)] +=
          w * (path[i].one_fraction - path[i].zero_fraction) * leaf_value;
    }
    return;
  }

  const std::int32_t feature = ctx.tree.split_feature(node);
  const bool goes_left = ctx.tree.goes_left(node);
  const std::int32_t left = ctx.tree.left_child(node);
  const std::int32_t right = ctx.tree.right_child(node);
  const std::int32_t hot = goes_left ? left : right;
  const std::int32_t cold = goes_left ? right : left;
  const double hot_cover = ctx.tree.cover[static_cast<std::size_t>(hot)];
  const double cold_cover = ctx.tree.cover[static_cast<std::size_t>(cold)];

  double incoming_zero_fraction = 1.0;
  double incoming_one_fraction = 1.0;
  // If this feature was already on the path, undo its previous extension and
  // fold its fractions into this one.
  int path_index = 1;
  for (; path_index <= unique_depth; ++path_index) {
    if (path[path_index].feature_index == feature) break;
  }
  int depth_after = unique_depth;
  if (path_index <= unique_depth) {
    incoming_zero_fraction = path[path_index].zero_fraction;
    incoming_one_fraction = path[path_index].one_fraction;
    unwind_path(path, unique_depth, path_index);
    depth_after = unique_depth - 1;
  }

  const double cover = ctx.tree.cover[node];
  shap_recurse(ctx, hot, level + 1, depth_after + 1, path,
               hot_cover / cover * incoming_zero_fraction,
               incoming_one_fraction, feature);
  shap_recurse(ctx, cold, level + 1, depth_after + 1, path,
               cold_cover / cover * incoming_zero_fraction, 0.0, feature);
}

/// Accumulate one tree's SHAP values for `x` into `phi` (not normalized).
/// `path_storage` must hold (forest.max_depth()+1) * stride elements with
/// stride >= forest.max_depth() + 2.
void flat_tree_shap(const FlatForest& forest, std::size_t tree, const float* x,
                    double* phi, PathElement* path_storage, int stride) {
  ShapContext<ExactTraversal> ctx{
      {forest.feature(), forest.threshold(), forest.left(), forest.right(),
       forest.value(), forest.cover(), x},
      phi,
      path_storage,
      stride};
  shap_recurse(ctx, forest.root(tree), /*level=*/0, /*unique_depth=*/0,
               /*parent_path=*/nullptr, 1.0, 1.0, -1);
}

/// Same, over the compiled breadth-first layout with pre-quantized codes.
void compiled_tree_shap(const CompiledForest& forest, std::size_t tree,
                        const std::uint16_t* codes, double* phi,
                        PathElement* path_storage, int stride) {
  ShapContext<CompiledTraversal> ctx{
      {forest.feature(), forest.qthreshold(), forest.child(), forest.value(),
       forest.cover(), codes},
      phi,
      path_storage,
      stride};
  shap_recurse(ctx, forest.root(tree), /*level=*/0, /*unique_depth=*/0,
               /*parent_path=*/nullptr, 1.0, 1.0, -1);
}

// ---------------------------------------------------------------------------
// Fast batch path.
//
// The per-row recursion above recomputes, at every node, quantities that do
// not depend on the sample at all: the sample enters Algorithm 2 only
// through goes_left (which child is hot). The zero_fraction of every edge
// is a product of cover ratios folded through duplicate features — purely
// structural — and the unique-path composition (which features sit at which
// path indices, and hence where a duplicate split feature is found) is
// structural too. A one-time DFS per layout records both per node, with the
// *identical* floating-point expression order the recursion uses
// (`child_cover / cover * incoming_zero_fraction`), so the precomputed
// doubles are bit-equal to the ones the reference path derives per row.

/// Structural half of shap_recurse: walks one tree maintaining only the
/// (feature, zero_fraction) path with duplicate folding, recording per-node
/// metadata. Mirrors the reference op order exactly.
template <class Traversal>
void build_meta_recurse(const Traversal& tree, ShapMeta& meta,
                        std::int32_t node_index, int level, int unique_depth,
                        const PathElement* parent_path,
                        double parent_zero_fraction, int parent_feature_index,
                        PathElement* storage, int stride, int& leaf_count) {
  PathElement* path = storage + static_cast<std::size_t>(level) *
                                    static_cast<std::size_t>(stride);
  for (int i = 0; i < unique_depth; ++i) path[i] = parent_path[i];
  path[unique_depth] = {parent_feature_index, parent_zero_fraction, 0.0, 0.0};

  const auto node = static_cast<std::size_t>(node_index);
  meta.entry_zero_fraction[node] = parent_zero_fraction;
  if (tree.is_leaf(node)) {
    ++leaf_count;
    return;
  }

  const std::int32_t feature = tree.split_feature(node);
  int path_index = 1;
  for (; path_index <= unique_depth; ++path_index) {
    if (path[path_index].feature_index == feature) break;
  }
  double incoming_zero_fraction = 1.0;
  int depth_after = unique_depth;
  if (path_index <= unique_depth) {
    meta.dup_index[node] = path_index;
    incoming_zero_fraction = path[path_index].zero_fraction;
    for (int i = path_index; i < unique_depth; ++i) {
      path[i].feature_index = path[i + 1].feature_index;
      path[i].zero_fraction = path[i + 1].zero_fraction;
    }
    depth_after = unique_depth - 1;
  } else {
    meta.dup_index[node] = 0;
  }

  const std::int32_t left = tree.left_child(node);
  const std::int32_t right = tree.right_child(node);
  const double cover = tree.cover[node];
  // Same expression shape as the recursion's hot/cold arguments; which
  // child is hot only swaps which of the two symmetric expressions it
  // receives, so computing both per child here is bit-equivalent.
  build_meta_recurse(tree, meta, left, level + 1, depth_after + 1, path,
                     tree.cover[static_cast<std::size_t>(left)] / cover *
                         incoming_zero_fraction,
                     feature, storage, stride, leaf_count);
  build_meta_recurse(tree, meta, right, level + 1, depth_after + 1, path,
                     tree.cover[static_cast<std::size_t>(right)] / cover *
                         incoming_zero_fraction,
                     feature, storage, stride, leaf_count);
}

template <class Traversal>
ShapMeta build_meta(const Traversal& tree, std::size_t n_nodes,
                    std::size_t n_trees, const std::int32_t* roots,
                    int max_depth) {
  ShapMeta meta;
  meta.entry_zero_fraction.assign(n_nodes, 1.0);
  meta.dup_index.assign(n_nodes, 0);
  std::vector<PathElement> storage(
      static_cast<std::size_t>(max_depth + 1) *
      static_cast<std::size_t>(max_depth + 2));
  for (std::size_t t = 0; t < n_trees; ++t) {
    int leaves = 0;
    build_meta_recurse(tree, meta, roots[t], /*level=*/0, /*unique_depth=*/0,
                       /*parent_path=*/nullptr, 1.0, -1, storage.data(),
                       max_depth + 2, leaves);
    if (leaves > meta.max_leaves) meta.max_leaves = leaves;
  }
  return meta;
}

/// Leaf attribution with the per-feature UNWOUND_PATH_SUM chains
/// interleaved four wide. Each chain is a serial recurrence through two
/// divisions per step (~40 cycles of latency the divider spends mostly
/// idle); the chains for different path elements only share the read-only
/// path, so running four in lockstep pipelines the divider without touching
/// any chain's operand order. phi updates stay in ascending element order
/// (they would commute anyway: unique-path features are distinct).
template <class Traversal>
inline void leaf_accumulate(const Traversal& tree, std::size_t node,
                            const PathElement* path, int unique_depth,
                            double* phi) {
  const double leaf_value = tree.value[node];
  const double top_pweight = path[unique_depth].pweight;
  int i = 1;
  for (; i + 3 <= unique_depth; i += 4) {
    double total[4] = {0.0, 0.0, 0.0, 0.0};
    double next_one[4];
    double zf[4];
    double of[4];
    for (int k = 0; k < 4; ++k) {
      next_one[k] = top_pweight;
      zf[k] = path[i + k].zero_fraction;
      of[k] = path[i + k].one_fraction;
    }
    for (int j = unique_depth - 1; j >= 0; --j) {
      const double pw = path[j].pweight;
      for (int k = 0; k < 4; ++k) {
        if (of[k] != 0.0) {
          const double tmp = next_one[k] * (unique_depth + 1) /
                             static_cast<double>((j + 1) * of[k]);
          total[k] += tmp;
          next_one[k] = pw - tmp * zf[k] * (unique_depth - j) /
                                 static_cast<double>(unique_depth + 1);
        } else {
          total[k] += pw * (unique_depth + 1) /
                      static_cast<double>(zf[k] * (unique_depth - j));
        }
      }
    }
    for (int k = 0; k < 4; ++k) {
      phi[static_cast<std::size_t>(path[i + k].feature_index)] +=
          total[k] * (of[k] - zf[k]) * leaf_value;
    }
  }
  for (; i <= unique_depth; ++i) {
    const double w = unwound_path_sum(path, unique_depth, i);
    phi[static_cast<std::size_t>(path[i].feature_index)] +=
        w * (path[i].one_fraction - path[i].zero_fraction) * leaf_value;
  }
}

/// Iterative fast traversal of one tree for one sample. Visits leaves in
/// exactly the reference order (hot subtree fully, then cold — the LIFO
/// stack preserves DFS order), feeds EXTEND/UNWIND the same operands, and
/// uses the precomputed metadata only to *skip* recomputing structural
/// values (the two cover divisions and the duplicate search per node, and
/// one of the two path copies: a cold child extends its parent's slot in
/// place, because the parent path is dead once the hot subtree returned).
template <class Traversal>
void fast_tree_shap(const Traversal& tree, const ShapMeta& meta,
                    std::int32_t root, double* phi, PathElement* storage,
                    int stride, std::vector<FastFrame>& stack) {
  stack.clear();
  stack.push_back({root, 0, 0, -1, 1.0});
  while (!stack.empty()) {
    FastFrame frame = stack.back();
    stack.pop_back();
    std::int32_t node_index = frame.node;
    std::int32_t slot = frame.slot;
    int unique_depth = frame.unique_depth;
    double one_fraction = frame.one_fraction;
    int feature = frame.feature;
    PathElement* path = storage + static_cast<std::size_t>(slot) *
                                      static_cast<std::size_t>(stride);
    for (;;) {
      const auto node = static_cast<std::size_t>(node_index);
      extend_path_01(path, unique_depth, meta.entry_zero_fraction[node],
                     one_fraction, feature);
      if (tree.is_leaf(node)) {
        leaf_accumulate(tree, node, path, unique_depth, phi);
        break;
      }
      feature = tree.split_feature(node);
      const int path_index = meta.dup_index[node];
      double incoming_one_fraction = 1.0;
      int depth_after = unique_depth;
      if (path_index != 0) {
        incoming_one_fraction = path[path_index].one_fraction;
        unwind_path(path, unique_depth, path_index);
        depth_after = unique_depth - 1;
      }
      const std::int32_t left = tree.left_child(node);
      const std::int32_t right = tree.right_child(node);
      const bool goes_left = tree.goes_left(node);
      const std::int32_t hot = goes_left ? left : right;
      const std::int32_t cold = goes_left ? right : left;
      stack.push_back({cold, slot, depth_after + 1, feature, 0.0});
      PathElement* hot_path = storage + static_cast<std::size_t>(slot + 1) *
                                            static_cast<std::size_t>(stride);
      for (int i = 0; i <= depth_after; ++i) hot_path[i] = path[i];
      path = hot_path;
      node_index = hot;
      ++slot;
      unique_depth = depth_after + 1;
      one_fraction = incoming_one_fraction;
    }
  }
}

/// Scratch sizing for one forest: a level-L path holds <= L+1 elements.
std::size_t path_scratch_len(const FlatForest& forest) {
  return static_cast<std::size_t>(forest.max_depth() + 1) *
         static_cast<std::size_t>(forest.max_depth() + 2);
}

/// $DRCSHAP_SHAP_FAST=0 pins the batch engine to the reference recursion —
/// the kill switch the byte-identity tests (and a CI leg) flip to prove the
/// fast path changes no output bit.
bool shap_fast_from_env() {
  const char* env = std::getenv("DRCSHAP_SHAP_FAST");
  if (env == nullptr) return true;
  const std::string_view value(env);
  return !(value == "0" || value == "off" || value == "false" ||
           value == "OFF");
}

// Trees per reduction block of the batch engine. The block partition is a
// function of the ensemble alone — never of the thread count or the batch
// size — so the merge structure, and therefore every last bit of the
// result, is the same no matter how work lands on workers.
constexpr std::size_t kTreesPerBlock = 64;

// Samples per in-flight slab when tree blocks force a partial buffer;
// bounds partial memory at ~kPartialBudget doubles per feature.
constexpr std::size_t kPartialBudget = 2048;

}  // namespace

namespace detail {

/// Lazily-built structural metadata, one slot per layout. Shared (via
/// shared_ptr) by every copy of an explainer, so the serving daemon's
/// per-batch explainer snapshots reuse one build.
struct ShapMetaCell {
  std::once_flag exact_once;
  std::once_flag compiled_once;
  ShapMeta exact;
  ShapMeta compiled;
};

}  // namespace detail

std::vector<double> TreeShapExplainer::tree_shap_values(
    const DecisionTree& tree, std::span<const float> features) {
  if (!tree.fitted()) throw std::logic_error("tree_shap: tree not fitted");
  if (features.size() != tree.n_features()) {
    throw std::invalid_argument("tree_shap: feature count mismatch");
  }
  const FlatForest flat(std::span<const DecisionTree>(&tree, 1));
  std::vector<double> phi(tree.n_features(), 0.0);
  std::vector<PathElement> path(path_scratch_len(flat));
  flat_tree_shap(flat, 0, features.data(), phi.data(), path.data(),
                 flat.max_depth() + 2);
  return phi;
}

TreeShapExplainer::TreeShapExplainer(const RandomForestClassifier& forest) {
  if (!forest.fitted()) {
    throw std::invalid_argument("TreeShapExplainer: forest not fitted");
  }
  flat_ = forest.flat_shared();
  compiled_ = forest.compiled_shared();
  meta_ = std::make_shared<detail::ShapMetaCell>();
  base_value_ = forest.expected_value();
  model_digest_ = compute_model_digest();
}

bool TreeShapExplainer::use_compiled() const {
  ForestEngine engine = engine_;
  if (engine == ForestEngine::kAuto) engine = forest_engine_from_env();
  if (engine == ForestEngine::kAuto) {
    engine = compiled_ != nullptr ? ForestEngine::kCompiled
                                  : ForestEngine::kExact;
  }
  return engine == ForestEngine::kCompiled && compiled_ != nullptr;
}

std::uint64_t TreeShapExplainer::compute_model_digest() const {
  // Structural FNV-1a over what determines phi: tree shapes live in the
  // child topology, but covers + values + roots pin the ensemble well
  // enough to keep one cache from serving another model's rows.
  const FlatForest& flat = *flat_;
  std::uint64_t h = ExplanationCache::digest(nullptr, 0);
  const auto fold = [&h](const void* bytes, std::size_t len) {
    const auto* p = static_cast<const std::uint8_t*>(bytes);
    for (std::size_t i = 0; i < len; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  };
  const std::size_t n_nodes = flat.n_nodes();
  const std::size_t n_trees = flat.n_trees();
  fold(&n_nodes, sizeof(n_nodes));
  fold(&n_trees, sizeof(n_trees));
  for (std::size_t t = 0; t < n_trees; ++t) {
    const std::int32_t root = flat.root(t);
    fold(&root, sizeof(root));
  }
  fold(flat.feature(), n_nodes * sizeof(std::int32_t));
  fold(flat.value(), n_nodes * sizeof(double));
  fold(flat.cover(), n_nodes * sizeof(double));
  return h;
}

std::vector<double> TreeShapExplainer::shap_values(
    std::span<const float> features) const {
  const FlatForest& flat = *flat_;
  if (features.size() != flat.n_features()) {
    throw std::invalid_argument("tree_shap: feature count mismatch");
  }
  DRCSHAP_OBS_TIMER("shap/values");
  obs::counter_add("shap/samples");
  std::vector<double> phi(flat.n_features(), 0.0);
  std::vector<PathElement> path(path_scratch_len(flat));
  const int stride = flat.max_depth() + 2;
  if (use_compiled()) {
    const CompiledForest& compiled = *compiled_;
    std::vector<std::uint16_t> codes(flat.n_features());
    compiled.quantize_sample(features.data(), codes.data());
    for (std::size_t t = 0; t < flat.n_trees(); ++t) {
      compiled_tree_shap(compiled, t, codes.data(), phi.data(), path.data(),
                         stride);
    }
  } else {
    for (std::size_t t = 0; t < flat.n_trees(); ++t) {
      flat_tree_shap(flat, t, features.data(), phi.data(), path.data(),
                     stride);
    }
  }
  const double inv = 1.0 / static_cast<double>(flat.n_trees());
  for (double& v : phi) v *= inv;
  return phi;
}

ShapMatrix TreeShapExplainer::shap_values_batch(const Dataset& data,
                                                std::size_t n_threads) const {
  if (data.n_features() != flat_->n_features()) {
    throw std::invalid_argument("shap_values_batch: feature count mismatch");
  }
  return shap_values_batch(std::span<const float>(data.features_flat()),
                           data.n_rows(), n_threads);
}

ShapMatrix TreeShapExplainer::shap_values_batch(std::span<const float> features,
                                                std::size_t n_rows,
                                                std::size_t n_threads) const {
  const FlatForest& flat = *flat_;
  const std::size_t n_features = flat.n_features();
  if (features.size() != n_rows * n_features) {
    throw std::invalid_argument("shap_values_batch: matrix shape mismatch");
  }
  DRCSHAP_OBS_TIMER("shap/values_batch");
  obs::counter_add("shap/batch_samples", n_rows);
  // Pin the traversal engine once per batch; the note lets run reports show
  // which layout served the explanation pass.
  const CompiledForest* compiled = use_compiled() ? compiled_.get() : nullptr;
  obs::note_set("shap/engine", compiled != nullptr ? "compiled" : "exact");
  const bool fast = shap_fast_from_env();
  obs::note_set("shap/fast_path", fast ? "on" : "off");
  ExplanationCache* cache =
      (cache_ != nullptr && ExplanationCache::enabled_by_env()) ? cache_.get()
                                                                : nullptr;
  ShapMatrix out;
  out.n_rows = n_rows;
  out.n_features = n_features;
  out.values.assign(n_rows * n_features, 0.0);
  if (n_rows == 0) return out;

  ThreadPool& pool = ThreadPool::global();

  // Quantize every row once up front under the compiled engine: the codes
  // are both the traversal input and the dedupe/cache key.
  std::vector<std::uint16_t> codes;
  if (compiled != nullptr) {
    codes.resize(n_rows * n_features);
    pool.parallel_for(
        n_rows,
        [&](std::size_t r) {
          compiled->quantize_sample(features.data() + r * n_features,
                                    codes.data() + r * n_features);
        },
        /*grain=*/8, /*max_workers=*/n_threads);
  }

  // --- Dedupe rows on their explanation key. Rows with byte-equal keys
  // take the same branch at every split, so their phi rows are bit-equal:
  // explain one representative, scatter to the rest.
  const std::size_t key_len = compiled != nullptr
                                  ? n_features * sizeof(std::uint16_t)
                                  : n_features * sizeof(float);
  const auto key_ptr = [&](std::size_t r) -> const void* {
    if (compiled != nullptr) return codes.data() + r * n_features;
    return features.data() + r * n_features;
  };
  std::vector<std::uint32_t> rep(n_rows);
  std::vector<std::uint32_t> uniques;
  uniques.reserve(n_rows);
  {
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> by_digest;
    by_digest.reserve(n_rows * 2);
    for (std::size_t r = 0; r < n_rows; ++r) {
      const std::uint64_t d = ExplanationCache::digest(key_ptr(r), key_len);
      auto& chain = by_digest[d];
      const auto row32 = static_cast<std::uint32_t>(r);
      std::uint32_t found = row32;
      for (const std::uint32_t u : chain) {
        if (std::memcmp(key_ptr(u), key_ptr(r), key_len) == 0) {
          found = u;
          break;
        }
      }
      rep[r] = found;
      if (found == row32) {
        chain.push_back(row32);
        uniques.push_back(row32);
      }
    }
  }
  obs::counter_add("shap/batch_unique_rows", uniques.size());

  // --- Serve unique rows from the cache where possible.
  std::vector<std::uint32_t> pending;
  if (cache != nullptr) {
    pending.reserve(uniques.size());
    const std::uint64_t salt = model_digest_;
    for (const std::uint32_t u : uniques) {
      if (!cache->lookup(salt, key_ptr(u), key_len,
                         out.values.data() + std::size_t{u} * n_features,
                         n_features)) {
        pending.push_back(u);
      }
    }
    obs::counter_add("shap/cache_hits", uniques.size() - pending.size());
    obs::counter_add("shap/cache_misses", pending.size());
  } else {
    pending = uniques;
  }

  // --- Compute the remaining rows with the same block/merge structure as
  // ever (bit-identical at any thread count), through the fast walk unless
  // the kill switch pinned the reference recursion.
  if (!pending.empty()) {
    const std::size_t n_trees = flat.n_trees();
    const std::size_t n_blocks =
        (n_trees + kTreesPerBlock - 1) / kTreesPerBlock;
    const double inv = 1.0 / static_cast<double>(n_trees);
    const int stride = flat.max_depth() + 2;
    const std::size_t scratch_len = path_scratch_len(flat);
    obs::counter_add("shap/tree_traversals", pending.size() * n_trees);

    const ShapMeta* meta = nullptr;
    if (fast) {
      if (compiled != nullptr) {
        std::call_once(meta_->compiled_once, [&] {
          std::vector<std::int32_t> roots(compiled->n_trees());
          for (std::size_t t = 0; t < compiled->n_trees(); ++t) {
            roots[t] = compiled->root(t);
          }
          meta_->compiled = build_meta(
              CompiledTraversal{compiled->feature(), compiled->qthreshold(),
                                compiled->child(), compiled->value(),
                                compiled->cover(), nullptr},
              compiled->n_nodes(), compiled->n_trees(), roots.data(),
              compiled->max_depth());
        });
        meta = &meta_->compiled;
      } else {
        std::call_once(meta_->exact_once, [&] {
          std::vector<std::int32_t> roots(flat.n_trees());
          for (std::size_t t = 0; t < flat.n_trees(); ++t) {
            roots[t] = flat.root(t);
          }
          meta_->exact = build_meta(
              ExactTraversal{flat.feature(), flat.threshold(), flat.left(),
                             flat.right(), flat.value(), flat.cover(),
                             nullptr},
              flat.n_nodes(), flat.n_trees(), roots.data(), flat.max_depth());
        });
        meta = &meta_->exact;
      }
    }

    // One scratch slot per shared-pool worker: the Algorithm-2 path storage
    // plus the fast walk's frame stack. Ranges may also run inline on the
    // calling thread (worker index -1 when it is not a pool worker), but
    // only when nothing was submitted — a serial-degraded nested call runs
    // entirely on its outer worker, and a top-level inline run has no
    // workers active in this call — so a slot is never contended within one
    // call.
    struct WorkerScratch {
      std::vector<PathElement> path;
      std::vector<FastFrame> stack;
      shap_detail::ShapJobEngine engine;
    };
    std::vector<WorkerScratch> scratch(pool.size());
    auto worker_scratch = [&]() -> WorkerScratch& {
      const int w = ThreadPool::current_worker_index();
      const std::size_t slot =
          (w < 0 || static_cast<std::size_t>(w) >= scratch.size())
              ? 0
              : static_cast<std::size_t>(w);
      WorkerScratch& ws = scratch[slot];
      if (ws.path.size() < scratch_len) ws.path.assign(scratch_len, {});
      return ws;
    };
    // The AVX2+FMA walk batches each tree's leaf chains through vector
    // kernels; it is byte-identical to the scalar walk, entered only behind
    // the build flag + runtime cpuid + $DRCSHAP_SIMD, and bounded by the
    // reciprocal table depth.
#if DRCSHAP_SIMD_ENABLED
    const bool simd_walk =
        fast && shap_detail::simd_walk_available() &&
        flat.max_depth() <= shap_detail::kSimdWalkMaxDepth;
#else
    const bool simd_walk = false;
#endif
    obs::note_set("shap/walk",
                  !fast ? "reference" : (simd_walk ? "avx2" : "scalar"));
    // Accumulate trees [t_begin, t_end) for row `row` into `phi` in fixed
    // tree order, over whichever layout the engine selected.
    auto accumulate_trees = [&](std::size_t row, double* phi,
                                std::size_t t_begin, std::size_t t_end) {
      WorkerScratch& ws = worker_scratch();
#if DRCSHAP_SIMD_ENABLED
      if (simd_walk) ws.engine.init(stride, meta->max_leaves);
#endif
      if (compiled != nullptr) {
        const std::uint16_t* qx = codes.data() + row * n_features;
        if (meta != nullptr) {
          const CompiledTraversal trav{
              compiled->feature(), compiled->qthreshold(), compiled->child(),
              compiled->value(),   compiled->cover(),      qx};
#if DRCSHAP_SIMD_ENABLED
          if (simd_walk) {
            for (std::size_t t = t_begin; t < t_end; ++t) {
              shap_detail::fast_tree_shap_avx2(trav, *meta, compiled->root(t),
                                               phi, ws.path.data(), stride,
                                               ws.stack, ws.engine);
            }
            return;
          }
#endif
          for (std::size_t t = t_begin; t < t_end; ++t) {
            fast_tree_shap(trav, *meta, compiled->root(t), phi,
                           ws.path.data(), stride, ws.stack);
          }
        } else {
          for (std::size_t t = t_begin; t < t_end; ++t) {
            compiled_tree_shap(*compiled, t, qx, phi, ws.path.data(), stride);
          }
        }
      } else {
        const float* x = features.data() + row * n_features;
        if (meta != nullptr) {
          const ExactTraversal trav{flat.feature(), flat.threshold(),
                                    flat.left(),    flat.right(),
                                    flat.value(),   flat.cover(),
                                    x};
#if DRCSHAP_SIMD_ENABLED
          if (simd_walk) {
            for (std::size_t t = t_begin; t < t_end; ++t) {
              shap_detail::fast_tree_shap_avx2(trav, *meta, flat.root(t), phi,
                                               ws.path.data(), stride,
                                               ws.stack, ws.engine);
            }
            return;
          }
#endif
          for (std::size_t t = t_begin; t < t_end; ++t) {
            fast_tree_shap(trav, *meta, flat.root(t), phi, ws.path.data(),
                           stride, ws.stack);
          }
        } else {
          for (std::size_t t = t_begin; t < t_end; ++t) {
            flat_tree_shap(flat, t, x, phi, ws.path.data(), stride);
          }
        }
      }
    };

    if (n_blocks == 1) {
      // Small ensemble: one work unit per pending row writes its output row
      // directly, accumulating trees in fixed order.
      pool.parallel_for(
          pending.size(),
          [&](std::size_t i) {
            const std::size_t row = pending[i];
            double* phi = out.values.data() + row * n_features;
            accumulate_trees(row, phi, 0, n_trees);
            for (std::size_t f = 0; f < n_features; ++f) phi[f] *= inv;
          },
          /*grain=*/0, /*max_workers=*/n_threads);
    } else {
      // Large ensemble: (row, tree-block) work units write per-unit partial
      // phi rows, merged per row in ascending block order. Rows stream
      // through in slabs so the partial buffer stays bounded.
      const std::size_t slab =
          std::max<std::size_t>(1, kPartialBudget / n_blocks);
      std::vector<double> partial(std::min(slab, pending.size()) * n_blocks *
                                  n_features);
      for (std::size_t begin = 0; begin < pending.size(); begin += slab) {
        const std::size_t count = std::min(slab, pending.size() - begin);
        std::fill(partial.begin(),
                  partial.begin() + static_cast<std::ptrdiff_t>(
                                        count * n_blocks * n_features),
                  0.0);
        pool.parallel_for(
            count * n_blocks,
            [&](std::size_t unit) {
              const std::size_t local = unit / n_blocks;
              const std::size_t block = unit % n_blocks;
              double* phi =
                  partial.data() + (local * n_blocks + block) * n_features;
              const std::size_t t_begin = block * kTreesPerBlock;
              const std::size_t t_end =
                  std::min(n_trees, t_begin + kTreesPerBlock);
              accumulate_trees(pending[begin + local], phi, t_begin, t_end);
            },
            /*grain=*/0, /*max_workers=*/n_threads);
        pool.parallel_for(
            count,
            [&](std::size_t local) {
              double* dst = out.values.data() +
                            std::size_t{pending[begin + local]} * n_features;
              for (std::size_t block = 0; block < n_blocks; ++block) {
                const double* src =
                    partial.data() + (local * n_blocks + block) * n_features;
                for (std::size_t f = 0; f < n_features; ++f) dst[f] += src[f];
              }
              for (std::size_t f = 0; f < n_features; ++f) dst[f] *= inv;
            },
            /*grain=*/0, /*max_workers=*/n_threads);
      }
    }

    if (cache != nullptr) {
      const std::uint64_t salt = model_digest_;
      for (const std::uint32_t u : pending) {
        cache->insert(salt, key_ptr(u), key_len,
                      out.values.data() + std::size_t{u} * n_features,
                      n_features);
      }
    }
  }

  // --- Scatter representatives to their duplicates.
  for (std::size_t r = 0; r < n_rows; ++r) {
    if (rep[r] != r) {
      std::memcpy(out.values.data() + r * n_features,
                  out.values.data() + std::size_t{rep[r]} * n_features,
                  n_features * sizeof(double));
    }
  }
  return out;
}

}  // namespace drcshap
