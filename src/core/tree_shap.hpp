#pragma once
// Exact SHAP tree explainer (Lundberg, Erion & Lee 2018, Algorithm 2).
//
// Computes, in polynomial time, the exact Shapley values of Eq. (2) of the
// paper for tree ensembles, where the conditional expectations
// E[f(x) | x_S] are defined by tree traversal: splits on features in S
// follow x, splits on features outside S average both children weighted by
// training cover. Because SHAP values are linear in the model, the values
// for a Random Forest are the average of its trees' values.
//
// Complexity per sample and tree: O(L * D^2) with L leaves and D depth —
// this is what makes per-hotspot explanations cheap enough to run inside a
// physical-design loop (Section III-C).
//
// Explaining every predicted hotspot of a design means thousands of samples
// against a 500-tree ensemble, so the explainer also has a batched engine:
// shap_values_batch fans (sample, tree-block) work units across a thread
// pool with per-worker path scratch, and merges per-block partial phi
// vectors in fixed tree order — the accumulation structure depends only on
// the ensemble, so results are bit-identical for any thread count.
//
// Like inference, the traversal itself is pluggable (core/forest_engine.hpp):
// the explainer snapshots the forest's compiled breadth-first layout next to
// the exact FlatForest one and, when available, walks the cached
// child/feature arrays with the sample quantized once into u16 codes. The
// monotone quantization preserves every split decision and both layouts
// carry the same value/cover doubles, so SHAP outputs are byte-identical
// whichever engine runs.
//
// The batch engine additionally runs a *fast path* that amortizes the
// sample-independent half of Algorithm 2 across the whole batch. The key
// observation: a sample enters the recursion only through the hot/cold
// branch decision at each split. Everything else — the unique-path
// composition after duplicate-feature folding, the unique depth at every
// node, and the zero_fractions (products of cover ratios) — is a function
// of the tree alone. A one-time structural DFS per layout precomputes, per
// node, the entry zero_fraction (with the exact op order of the original
// recursion, so the doubles are bit-equal), the folded unique depth, and
// the unique-path index of a duplicate split feature; the per-row walk then
// skips the two cover divisions and the O(depth) duplicate search at every
// node, specializes EXTEND on the fact that one_fractions are exactly 0.0
// or 1.0, halves the path copies by extending cold children in the parent's
// scratch slot, and interleaves the independent per-feature UNWIND chains
// at each leaf so the division unit pipelines instead of stalling. Every
// floating-point op that contributes to phi keeps its original operands and
// order, so fast-path phi is byte-identical to the reference recursion
// (kept verbatim behind the single-sample shap_values and the
// $DRCSHAP_SHAP_FAST=0 kill switch).
//
// On top of the fast path, shap_values_batch dedupes rows before compute:
// rows with byte-equal keys (quantized code vectors under the compiled
// engine, raw float rows under the exact one) provably share one phi row,
// so each unique row is explained once and scattered to its duplicates.
// With a shared ExplanationCache attached (core/explanation_cache.hpp),
// unique rows are additionally served from — and inserted into — the cache,
// carrying the dedupe across batches and serve requests.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/random_forest.hpp"

namespace drcshap {

class ExplanationCache;

namespace detail {
struct ShapMetaCell;  // lazily built per-layout structural metadata
}  // namespace detail

/// Row-major matrix of SHAP values: one row of n_features doubles per
/// explained sample.
struct ShapMatrix {
  std::vector<double> values;
  std::size_t n_rows = 0;
  std::size_t n_features = 0;

  std::span<const double> row(std::size_t i) const {
    return {values.data() + i * n_features, n_features};
  }
};

class TreeShapExplainer {
 public:
  /// Snapshots the forest's flattened SoA view (and its compiled layout
  /// when one was built); the explainer stays valid even if the forest is
  /// refit afterwards.
  explicit TreeShapExplainer(const RandomForestClassifier& forest);

  /// Selects the traversal engine for subsequent shap_values* calls.
  /// kAuto (the default) defers to $DRCSHAP_FOREST_ENGINE and then prefers
  /// the compiled layout when available; kCompiled without a compiled
  /// layout falls back to exact. Outputs are byte-identical either way.
  void set_engine(ForestEngine engine) { engine_ = engine; }

  /// Attaches a shared explanation cache consulted (and filled) by
  /// shap_values_batch for each unique row. Copies of the explainer share
  /// the cache, so the serving daemon's per-batch explainer snapshots all
  /// hit one store. nullptr detaches. $DRCSHAP_EXPLAIN_CACHE=0 bypasses an
  /// attached cache without detaching it.
  void set_cache(std::shared_ptr<ExplanationCache> cache) {
    cache_ = std::move(cache);
  }
  const std::shared_ptr<ExplanationCache>& cache() const { return cache_; }

  /// Structural FNV-1a digest of the snapshotted ensemble (features, values,
  /// covers, roots). Used as the cache key salt so a cache accidentally
  /// shared across models can never serve a stale row.
  std::uint64_t model_digest() const { return model_digest_; }

  /// E[f(x)] over the training distribution (cover-weighted).
  double base_value() const { return base_value_; }

  /// Per-feature SHAP values for one sample; size = n_features.
  /// Additivity holds: base_value() + sum(result) == forest.predict_proba(x)
  /// up to floating-point error.
  std::vector<double> shap_values(std::span<const float> features) const;

  /// SHAP values for every row of `data`, computed on the shared thread
  /// pool (n_threads caps the workers used; 0 means the whole pool).
  /// Matches shap_values row
  /// by row up to reassociation error (< 1e-12 here), and is bit-identical
  /// across thread counts.
  ShapMatrix shap_values_batch(const Dataset& data,
                               std::size_t n_threads = 0) const;

  /// Same, over a row-major matrix of n_rows x n_features floats.
  ShapMatrix shap_values_batch(std::span<const float> features,
                               std::size_t n_rows,
                               std::size_t n_threads = 0) const;

  /// SHAP values for a single tree (used by tests and RUSBoost reuse).
  static std::vector<double> tree_shap_values(const DecisionTree& tree,
                                              std::span<const float> features);

 private:
  /// True when the next traversal should walk the compiled layout.
  bool use_compiled() const;

  /// One-time structural digest over the FlatForest snapshot (ctor only).
  std::uint64_t compute_model_digest() const;

  std::shared_ptr<const FlatForest> flat_;
  std::shared_ptr<const CompiledForest> compiled_;
  /// Shared lazily-initialized structural metadata of the fast batch path
  /// (one slot per layout). Copies of the explainer — the serving daemon
  /// snapshots one per batch — share the cell, so the one-time DFS cost is
  /// paid once per loaded model, not once per batch.
  std::shared_ptr<detail::ShapMetaCell> meta_;
  std::shared_ptr<ExplanationCache> cache_;
  double base_value_;
  std::uint64_t model_digest_ = 0;
  ForestEngine engine_ = ForestEngine::kAuto;
};

}  // namespace drcshap
