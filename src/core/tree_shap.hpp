#pragma once
// Exact SHAP tree explainer (Lundberg, Erion & Lee 2018, Algorithm 2).
//
// Computes, in polynomial time, the exact Shapley values of Eq. (2) of the
// paper for tree ensembles, where the conditional expectations
// E[f(x) | x_S] are defined by tree traversal: splits on features in S
// follow x, splits on features outside S average both children weighted by
// training cover. Because SHAP values are linear in the model, the values
// for a Random Forest are the average of its trees' values.
//
// Complexity per sample and tree: O(L * D^2) with L leaves and D depth —
// this is what makes per-hotspot explanations cheap enough to run inside a
// physical-design loop (Section III-C).

#include <span>
#include <vector>

#include "core/random_forest.hpp"

namespace drcshap {

class TreeShapExplainer {
 public:
  /// The forest must stay alive while the explainer is used.
  explicit TreeShapExplainer(const RandomForestClassifier& forest);

  /// E[f(x)] over the training distribution (cover-weighted).
  double base_value() const { return base_value_; }

  /// Per-feature SHAP values for one sample; size = n_features.
  /// Additivity holds: base_value() + sum(result) == forest.predict_proba(x)
  /// up to floating-point error.
  std::vector<double> shap_values(std::span<const float> features) const;

  /// SHAP values for a single tree (used by tests and RUSBoost reuse).
  static std::vector<double> tree_shap_values(const DecisionTree& tree,
                                              std::span<const float> features);

 private:
  const RandomForestClassifier& forest_;
  double base_value_;
};

}  // namespace drcshap
