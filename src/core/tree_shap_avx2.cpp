// AVX2+FMA leaf kernels of the fast TreeSHAP batch walk. This TU is the
// only one compiled with -mavx2 -mfma (plus -ffp-contract=off so no scalar
// expression silently turns into an FMA and changes a bit); everything is
// entered behind a runtime cpuid + $DRCSHAP_SIMD check.
//
// What vectorizes, and why it stays byte-identical:
//
//  * Per leaf, Algorithm 2 runs one UNWOUND_PATH_SUM recurrence per unique
//    path element — `unique_depth` independent chains of ~2 divisions per
//    step, each with ~40 cycles of serial latency. The walk defers them:
//    chains of one leaf are packed 4 to a lane block (they share the
//    read-only pweight array, loaded broadcast), blocks are bucketed by
//    unique depth (all broadcast constants of the kernel depend only on
//    (ud, j)), and a once-per-tree flush runs several blocks interleaved in
//    one step loop so the recurrence latency of one chain hides behind the
//    arithmetic of the others. Lanes never mix: a SIMD lane computes
//    exactly the scalar chain, same operands, same order.
//  * one_fraction==1 chains divide only by integers ((j+1)*of with of==1,
//    and ud+1). Those divisions run as multiply + two FMAs against a
//    precomputed correctly-rounded reciprocal (Markstein): for normal
//    operands the result is the correctly rounded quotient, i.e. the very
//    bits vdivpd would produce, but at FMA throughput. one_fraction==0
//    chains keep real vdivpd (their divisor zf*(ud-j) is not integral) and
//    ride in the same flush loop, so the divider unit works in parallel
//    with the FMA ports ("mixed" kernel).
//  * phi application is deferred to the flush but ordered by leaf-job
//    emission (= reference DFS leaf order), and within a leaf the unique
//    path features are distinct, so every phi slot sees its additions in
//    exactly the reference order.
//
// EXTEND/UNWIND and the traversal itself stay scalar here — identical
// source, identical ops to the scalar fast walk in tree_shap.cpp.

#include "core/tree_shap_simd.hpp"

#if DRCSHAP_SIMD_ENABLED

#include <immintrin.h>

#include <cstdlib>
#include <cstring>
#include <string_view>

namespace drcshap::shap_detail {

namespace {

bool env_disables_simd() {
  const char* env = std::getenv("DRCSHAP_SIMD");
  if (env == nullptr) return false;
  const std::string_view v(env);
  return v == "0" || v == "off" || v == "OFF" || v == "false" || v == "FALSE";
}

bool cpu_supports_avx2_fma() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

/// Correctly-rounded reciprocals of the small integers the kernels divide
/// by (unique_depth+1 and j+1 are bounded by tree depth + 1).
struct RecipTable {
  double inv[kSimdWalkMaxDepth + 2];
  RecipTable() {
    inv[0] = 0.0;
    for (int i = 1; i < kSimdWalkMaxDepth + 2; ++i) {
      inv[i] = 1.0 / static_cast<double>(i);
    }
  }
};
const RecipTable kRecip;

/// Markstein correctly-rounded division x/d via the precomputed
/// reciprocal rd = RN(1/d): q0 = x*rd; r = x - q0*d (exact, FMA);
/// q = q0 + r*rd. For normal x and integer d this returns RN(x/d) — the
/// same bits as vdivpd — in 3 FMA-port ops instead of one long division.
inline __m256d fma_div(__m256d x, __m256d d, __m256d rd) {
  const __m256d q0 = _mm256_mul_pd(x, rd);
  const __m256d r = _mm256_fnmadd_pd(q0, d, x);
  return _mm256_fmadd_pd(r, rd, q0);
}

using Block = ShapJobEngine::Block;

/// one_fraction==1 chains, NB interleaved blocks. Per step j (descending):
///   tmp    = next_one * (ud+1) / (j+1)          [integer divisor -> FMA]
///   total += tmp
///   next_one = pw[j] - tmp * zf * (ud-j) / (ud+1)
/// Lane-independent; same operand order as the scalar chain.
template <int NB>
void k_of1(int ud, const Block* bs, const double* pwpool, double* tot_pool) {
  const __m256d Av = _mm256_set1_pd(static_cast<double>(ud + 1));
  const __m256d rdA = _mm256_set1_pd(kRecip.inv[ud + 1]);
  __m256d nop[NB], tot[NB];
  const double* pw[NB];
  for (int b = 0; b < NB; ++b) {
    pw[b] = pwpool + bs[b].pw_off;
    nop[b] = _mm256_set1_pd(pw[b][ud]);
    tot[b] = _mm256_setzero_pd();
  }
  for (int j = ud - 1; j >= 0; --j) {
    const __m256d Bj = _mm256_set1_pd(static_cast<double>(j + 1));
    const __m256d rdB = _mm256_set1_pd(kRecip.inv[j + 1]);
    const __m256d Cj = _mm256_set1_pd(static_cast<double>(ud - j));
    for (int b = 0; b < NB; ++b) {
      const __m256d pwv = _mm256_set1_pd(pw[b][j]);
      const __m256d zfv = _mm256_loadu_pd(bs[b].zf);
      const __m256d num1 = _mm256_mul_pd(nop[b], Av);
      const __m256d t = fma_div(num1, Bj, rdB);
      tot[b] = _mm256_add_pd(tot[b], t);
      const __m256d num2 = _mm256_mul_pd(_mm256_mul_pd(t, zfv), Cj);
      nop[b] = _mm256_sub_pd(pwv, fma_div(num2, Av, rdA));
    }
  }
  for (int b = 0; b < NB; ++b) {
    _mm256_storeu_pd(tot_pool + bs[b].out, tot[b]);
  }
}

/// one_fraction==0 chains: total += pw[j]*(ud+1) / (zf*(ud-j)). The
/// divisor is not integral, so this is real vdivpd — but carries no
/// recurrence, so a few interleaved blocks keep the divider saturated.
template <int NB>
void k_of0(int ud, const Block* bs, const double* pwpool, double* tot_pool) {
  const __m256d Av = _mm256_set1_pd(static_cast<double>(ud + 1));
  __m256d tot[NB];
  const double* pw[NB];
  for (int b = 0; b < NB; ++b) {
    pw[b] = pwpool + bs[b].pw_off;
    tot[b] = _mm256_setzero_pd();
  }
  for (int j = ud - 1; j >= 0; --j) {
    const __m256d Cj = _mm256_set1_pd(static_cast<double>(ud - j));
    for (int b = 0; b < NB; ++b) {
      const __m256d zfv = _mm256_loadu_pd(bs[b].zf);
      const __m256d num = _mm256_mul_pd(_mm256_set1_pd(pw[b][j]), Av);
      tot[b] = _mm256_add_pd(tot[b], _mm256_div_pd(num, _mm256_mul_pd(zfv, Cj)));
    }
  }
  for (int b = 0; b < NB; ++b) {
    _mm256_storeu_pd(tot_pool + bs[b].out, tot[b]);
  }
}

/// Mixed kernel: N1 of1 blocks (FMA ports) and N0 of0 blocks (divider) in
/// one step loop, so the two execution units overlap instead of idling.
template <int N1, int N0>
void k_mixed(int ud, const Block* bs1, const Block* bs0, const double* pwpool,
             double* tot1_pool, double* tot0_pool) {
  const __m256d Av = _mm256_set1_pd(static_cast<double>(ud + 1));
  const __m256d rdA = _mm256_set1_pd(kRecip.inv[ud + 1]);
  __m256d nop[N1], tot1[N1], tot0[N0];
  const double* pw1[N1];
  const double* pw0[N0];
  for (int b = 0; b < N1; ++b) {
    pw1[b] = pwpool + bs1[b].pw_off;
    nop[b] = _mm256_set1_pd(pw1[b][ud]);
    tot1[b] = _mm256_setzero_pd();
  }
  for (int b = 0; b < N0; ++b) {
    pw0[b] = pwpool + bs0[b].pw_off;
    tot0[b] = _mm256_setzero_pd();
  }
  for (int j = ud - 1; j >= 0; --j) {
    const __m256d Bj = _mm256_set1_pd(static_cast<double>(j + 1));
    const __m256d rdB = _mm256_set1_pd(kRecip.inv[j + 1]);
    const __m256d Cj = _mm256_set1_pd(static_cast<double>(ud - j));
    for (int b = 0; b < N0; ++b) {
      const __m256d zfv = _mm256_loadu_pd(bs0[b].zf);
      const __m256d num = _mm256_mul_pd(_mm256_set1_pd(pw0[b][j]), Av);
      tot0[b] =
          _mm256_add_pd(tot0[b], _mm256_div_pd(num, _mm256_mul_pd(zfv, Cj)));
    }
    for (int b = 0; b < N1; ++b) {
      const __m256d pwv = _mm256_set1_pd(pw1[b][j]);
      const __m256d zfv = _mm256_loadu_pd(bs1[b].zf);
      const __m256d num1 = _mm256_mul_pd(nop[b], Av);
      const __m256d t = fma_div(num1, Bj, rdB);
      tot1[b] = _mm256_add_pd(tot1[b], t);
      const __m256d num2 = _mm256_mul_pd(_mm256_mul_pd(t, zfv), Cj);
      nop[b] = _mm256_sub_pd(pwv, fma_div(num2, Av, rdA));
    }
  }
  for (int b = 0; b < N1; ++b) {
    _mm256_storeu_pd(tot1_pool + bs1[b].out, tot1[b]);
  }
  for (int b = 0; b < N0; ++b) {
    _mm256_storeu_pd(tot0_pool + bs0[b].out, tot0[b]);
  }
}

/// Drains every bucket through the kernels, then applies phi per leaf job
/// in emission (= reference DFS) order: tot * (of - zf) * leaf_value with
/// of literal 1.0 / 0.0, exactly the reference expression.
void flush_tree(ShapJobEngine& je, double* phi) {
  const double* pwpool = je.pwpool.data();
  for (int u = 0; u < je.n_used; ++u) {
    const int ud = je.used_ud[u];
    const Block* b1 =
        je.b1_data.data() + static_cast<std::size_t>(ud) * je.bucket_cap;
    const Block* b0 =
        je.b0_data.data() + static_cast<std::size_t>(ud) * je.bucket_cap;
    const int m1 = je.b1_n[static_cast<std::size_t>(ud)];
    const int m0 = je.b0_n[static_cast<std::size_t>(ud)];
    int c1 = 0, c0 = 0;
    while (m1 - c1 >= 4 && m0 - c0 >= 2) {
      k_mixed<4, 2>(ud, b1 + c1, b0 + c0, pwpool, je.tot1.data(),
                    je.tot0.data());
      c1 += 4;
      c0 += 2;
    }
    while (m1 - c1 > 0) {
      const int nb = m1 - c1 >= 6 ? 6 : m1 - c1;
      switch (nb) {
        case 6: k_of1<6>(ud, b1 + c1, pwpool, je.tot1.data()); break;
        case 5: k_of1<5>(ud, b1 + c1, pwpool, je.tot1.data()); break;
        case 4: k_of1<4>(ud, b1 + c1, pwpool, je.tot1.data()); break;
        case 3: k_of1<3>(ud, b1 + c1, pwpool, je.tot1.data()); break;
        case 2: k_of1<2>(ud, b1 + c1, pwpool, je.tot1.data()); break;
        default: k_of1<1>(ud, b1 + c1, pwpool, je.tot1.data()); break;
      }
      c1 += nb;
    }
    while (m0 - c0 > 0) {
      const int nb = m0 - c0 >= 3 ? 3 : m0 - c0;
      switch (nb) {
        case 3: k_of0<3>(ud, b0 + c0, pwpool, je.tot0.data()); break;
        case 2: k_of0<2>(ud, b0 + c0, pwpool, je.tot0.data()); break;
        default: k_of0<1>(ud, b0 + c0, pwpool, je.tot0.data()); break;
      }
      c0 += nb;
    }
  }
  for (int jb = 0; jb < je.n_jobs; ++jb) {
    const ShapJobEngine::Job& job = je.jobs[static_cast<std::size_t>(jb)];
    for (int k = 0; k < job.n1; ++k) {
      const int e = job.e1_off + k;
      phi[static_cast<std::size_t>(je.f1[static_cast<std::size_t>(e)])] +=
          je.tot1[static_cast<std::size_t>(e)] *
          (1.0 - je.zf1[static_cast<std::size_t>(e)]) * job.leaf_value;
    }
    for (int k = 0; k < job.n0; ++k) {
      const int e = job.e0_off + k;
      phi[static_cast<std::size_t>(je.f0[static_cast<std::size_t>(e)])] +=
          je.tot0[static_cast<std::size_t>(e)] *
          (0.0 - je.zf0[static_cast<std::size_t>(e)]) * job.leaf_value;
    }
  }
  je.reset();
}

/// Stage one leaf's chains into the engine: the path's unique elements,
/// partitioned by one_fraction, packed 4 per block into the leaf's shared
/// pweight array. Padding lanes get zf = 1.0 (any finite value works —
/// lanes are independent and padding totals are never applied).
template <class Traversal>
inline void emit_leaf(const Traversal& tree, std::size_t node,
                      const PathElement* path, int ud, ShapJobEngine& je) {
  ShapJobEngine::Job& job = je.jobs[static_cast<std::size_t>(je.n_jobs++)];
  job.unique_depth = ud;
  job.leaf_value = tree.value[node];
  job.e1_off = je.n1;
  job.e0_off = je.n0;
  const std::int32_t pw_off = je.n_pw;
  double* pwdst = je.pwpool.data() + pw_off;
  for (int j = 0; j <= ud; ++j) pwdst[j] = path[j].pweight;
  je.n_pw += ud + 1;
  Block* bucket1 =
      je.b1_data.data() + static_cast<std::size_t>(ud) * je.bucket_cap;
  Block* bucket0 =
      je.b0_data.data() + static_cast<std::size_t>(ud) * je.bucket_cap;
  std::int32_t& bn1 = je.b1_n[static_cast<std::size_t>(ud)];
  std::int32_t& bn0 = je.b0_n[static_cast<std::size_t>(ud)];
  if (bn1 == 0 && bn0 == 0) je.used_ud[je.n_used++] = ud;
  int lane1 = 4, lane0 = 4;  // force a new block on the first element
  Block* cur1 = nullptr;
  Block* cur0 = nullptr;
  for (int i = 1; i <= ud; ++i) {
    if (path[i].one_fraction != 0.0) {
      if (lane1 == 4) {
        cur1 = &bucket1[bn1++];
        cur1->pw_off = pw_off;
        cur1->out = je.n1;
        cur1->zf[1] = cur1->zf[2] = cur1->zf[3] = 1.0;
        lane1 = 0;
        je.n1 += 4;
      }
      cur1->zf[lane1] = path[i].zero_fraction;
      const auto e = static_cast<std::size_t>(cur1->out + lane1);
      je.f1[e] = path[i].feature_index;
      je.zf1[e] = path[i].zero_fraction;
      ++lane1;
    } else {
      if (lane0 == 4) {
        cur0 = &bucket0[bn0++];
        cur0->pw_off = pw_off;
        cur0->out = je.n0;
        cur0->zf[1] = cur0->zf[2] = cur0->zf[3] = 1.0;
        lane0 = 0;
        je.n0 += 4;
      }
      cur0->zf[lane0] = path[i].zero_fraction;
      const auto e = static_cast<std::size_t>(cur0->out + lane0);
      je.f0[e] = path[i].feature_index;
      je.zf0[e] = path[i].zero_fraction;
      ++lane0;
    }
  }
  job.n1 = (je.n1 - job.e1_off) - 4 + (lane1 == 4 ? 4 : lane1);
  job.n0 = (je.n0 - job.e0_off) - 4 + (lane0 == 4 ? 4 : lane0);
  if (job.n1 < 0) job.n1 = 0;
  if (job.n0 < 0) job.n0 = 0;
}

/// Same traversal skeleton as the scalar fast walk (hot subtree first, cold
/// frames on a LIFO stack, cold children extend the parent slot in place);
/// only the leaf work is staged instead of computed inline.
template <class Traversal>
void fast_walk(const Traversal& tree, const ShapMeta& meta, std::int32_t root,
               double* phi, PathElement* storage, int stride,
               std::vector<FastFrame>& stack, ShapJobEngine& je) {
  stack.clear();
  stack.push_back({root, 0, 0, -1, 1.0});
  while (!stack.empty()) {
    FastFrame frame = stack.back();
    stack.pop_back();
    std::int32_t node_index = frame.node;
    std::int32_t slot = frame.slot;
    int unique_depth = frame.unique_depth;
    double one_fraction = frame.one_fraction;
    int feature = frame.feature;
    PathElement* path = storage + static_cast<std::size_t>(slot) *
                                      static_cast<std::size_t>(stride);
    for (;;) {
      const auto node = static_cast<std::size_t>(node_index);
      extend_path_01(path, unique_depth, meta.entry_zero_fraction[node],
                     one_fraction, feature);
      if (tree.is_leaf(node)) {
        if (unique_depth > 0) emit_leaf(tree, node, path, unique_depth, je);
        break;
      }
      feature = tree.split_feature(node);
      const int path_index = meta.dup_index[node];
      double incoming_one_fraction = 1.0;
      int depth_after = unique_depth;
      if (path_index != 0) {
        incoming_one_fraction = path[path_index].one_fraction;
        unwind_path(path, unique_depth, path_index);
        depth_after = unique_depth - 1;
      }
      const std::int32_t left = tree.left_child(node);
      const std::int32_t right = tree.right_child(node);
      const bool goes_left = tree.goes_left(node);
      const std::int32_t hot = goes_left ? left : right;
      const std::int32_t cold = goes_left ? right : left;
      stack.push_back({cold, slot, depth_after + 1, feature, 0.0});
      PathElement* hot_path = storage + static_cast<std::size_t>(slot + 1) *
                                            static_cast<std::size_t>(stride);
      for (int i = 0; i <= depth_after; ++i) hot_path[i] = path[i];
      path = hot_path;
      node_index = hot;
      ++slot;
      unique_depth = depth_after + 1;
      one_fraction = incoming_one_fraction;
    }
  }
  flush_tree(je, phi);
}

}  // namespace

bool simd_walk_available() {
  static const bool cpu_ok = cpu_supports_avx2_fma();
  return cpu_ok && !env_disables_simd();
}

void fast_tree_shap_avx2(const ExactTraversal& tree, const ShapMeta& meta,
                         std::int32_t root, double* phi, PathElement* storage,
                         int stride, std::vector<FastFrame>& stack,
                         ShapJobEngine& engine) {
  fast_walk(tree, meta, root, phi, storage, stride, stack, engine);
}

void fast_tree_shap_avx2(const CompiledTraversal& tree, const ShapMeta& meta,
                         std::int32_t root, double* phi, PathElement* storage,
                         int stride, std::vector<FastFrame>& stack,
                         ShapJobEngine& engine) {
  fast_walk(tree, meta, root, phi, storage, stride, stack, engine);
}

}  // namespace drcshap::shap_detail

#endif  // DRCSHAP_SIMD_ENABLED
