#pragma once
// Private internals shared between the TreeSHAP batch engine
// (tree_shap.cpp) and its AVX2+FMA leaf kernel TU (tree_shap_avx2.cpp).
// Nothing here is part of the public explainer API; the header exists only
// because the vector TU must see the exact same path/traversal/metadata
// types — and the exact same inline EXTEND/UNWIND op order — that the
// scalar engine uses, so the two walks stay provably byte-identical.

#include <cstddef>
#include <cstdint>
#include <vector>

#ifndef DRCSHAP_SIMD_ENABLED
#define DRCSHAP_SIMD_ENABLED 0
#endif

namespace drcshap::shap_detail {

// One element of the "unique path" of Algorithm 2: a feature encountered on
// the way down, the fraction of paths that flow through when the feature is
// unknown (zero_fraction = cover ratio) or known (one_fraction = 0/1), and
// the permutation weight accumulator pweight.
struct PathElement {
  int feature_index = -1;
  double zero_fraction = 0.0;
  double one_fraction = 0.0;
  double pweight = 0.0;
};

// The walks are generic over how the ensemble is laid out. Both traversals
// expose the same split decisions — the compiled one compares the sample's
// u16 codes against quantized thresholds, which the monotone bucketization
// makes exactly equivalent to the float compare — and both read the same
// value/cover doubles, so the SHAP arithmetic (and therefore every output
// bit) is independent of which layout ran.

/// FlatForest arrays + the raw sample: the exact reference traversal.
struct ExactTraversal {
  const std::int32_t* feature;
  const float* threshold;
  const std::int32_t* left;
  const std::int32_t* right;
  const double* value;
  const double* cover;
  const float* x;

  bool is_leaf(std::size_t node) const { return feature[node] < 0; }
  std::int32_t split_feature(std::size_t node) const { return feature[node]; }
  bool goes_left(std::size_t node) const {
    return x[static_cast<std::size_t>(feature[node])] <= threshold[node];
  }
  std::int32_t left_child(std::size_t node) const { return left[node]; }
  std::int32_t right_child(std::size_t node) const { return right[node]; }
};

/// CompiledForest breadth-first child/feature arrays + the sample's
/// quantized codes. Children are adjacent (one array instead of two) and a
/// leaf self-loops, so the hot path touches fewer, denser cache lines.
struct CompiledTraversal {
  const std::int32_t* feature;
  const std::int32_t* qthreshold;
  const std::int32_t* child;
  const double* value;
  const double* cover;
  const std::uint16_t* qx;

  bool is_leaf(std::size_t node) const {
    return child[node] == static_cast<std::int32_t>(node);
  }
  std::int32_t split_feature(std::size_t node) const { return feature[node]; }
  bool goes_left(std::size_t node) const {
    return static_cast<std::int32_t>(
               qx[static_cast<std::size_t>(feature[node])]) <=
           qthreshold[node];
  }
  std::int32_t left_child(std::size_t node) const { return child[node]; }
  std::int32_t right_child(std::size_t node) const { return child[node] + 1; }
};

/// Structural per-node metadata of one layout (exact or compiled),
/// node-indexed like the layout's own arrays.
struct ShapMeta {
  /// zero_fraction of the edge into each node (1.0 at roots).
  std::vector<double> entry_zero_fraction;
  /// For internal nodes: index of this node's split feature in the unique
  /// path *after* extending with the incoming edge, or 0 when the feature
  /// is fresh (path index 0 is the dummy base element, never a match).
  std::vector<std::int32_t> dup_index;
  /// Leaf count of the widest tree — sizes the vector walk's per-tree
  /// leaf-job pools.
  int max_leaves = 0;
};

/// Undo an extension for a repeated feature (UNWIND). Shared verbatim by
/// the reference recursion and both fast walks.
inline void unwind_path(PathElement* path, int unique_depth, int path_index) {
  const double one_fraction = path[path_index].one_fraction;
  const double zero_fraction = path[path_index].zero_fraction;
  double next_one_portion = path[unique_depth].pweight;
  for (int i = unique_depth - 1; i >= 0; --i) {
    if (one_fraction != 0.0) {
      const double tmp = path[i].pweight;
      path[i].pweight = next_one_portion * (unique_depth + 1) /
                        static_cast<double>((i + 1) * one_fraction);
      next_one_portion =
          tmp - path[i].pweight * zero_fraction * (unique_depth - i) /
                    static_cast<double>(unique_depth + 1);
    } else {
      path[i].pweight = path[i].pweight * (unique_depth + 1) /
                        static_cast<double>(zero_fraction * (unique_depth - i));
    }
  }
  for (int i = path_index; i < unique_depth; ++i) {
    path[i].feature_index = path[i + 1].feature_index;
    path[i].zero_fraction = path[i + 1].zero_fraction;
    path[i].one_fraction = path[i + 1].one_fraction;
  }
}

/// EXTEND specialized on what the recursion guarantees about one_fraction:
/// it is exactly 0.0 or 1.0 (the root gets 1.0, hot edges inherit a stored
/// 0/1, cold edges get 0.0). With 1.0 the `one_fraction *` factor is the
/// identity; with 0.0 the whole first line adds a signed zero, which never
/// changes the target bits (pweights that are exactly zero are always +0.0:
/// every product chain has non-negative structural factors and exact
/// cancellation yields +0.0), so it is skipped. The surviving ops keep the
/// reference operand order, so the resulting pweights are bit-identical.
inline void extend_path_01(PathElement* path, int unique_depth,
                           double zero_fraction, double one_fraction,
                           int feature_index) {
  path[unique_depth] = {feature_index, zero_fraction, one_fraction,
                        unique_depth == 0 ? 1.0 : 0.0};
  if (one_fraction != 0.0) {
    for (int i = unique_depth - 1; i >= 0; --i) {
      path[i + 1].pweight += path[i].pweight * (i + 1) /
                             static_cast<double>(unique_depth + 1);
      path[i].pweight = zero_fraction * path[i].pweight * (unique_depth - i) /
                        static_cast<double>(unique_depth + 1);
    }
  } else {
    for (int i = unique_depth - 1; i >= 0; --i) {
      path[i].pweight = zero_fraction * path[i].pweight * (unique_depth - i) /
                        static_cast<double>(unique_depth + 1);
    }
  }
}

/// Pending cold-subtree entry of the iterative fast walks.
struct FastFrame {
  std::int32_t node;
  std::int32_t slot;  ///< path scratch slot (level); cold reuses its parent's
  std::int32_t unique_depth;
  std::int32_t feature;  ///< split feature of the edge into `node`
  double one_fraction;
};

/// Per-tree staging pools of the vector walk. The walk defers every leaf's
/// UNWOUND_PATH_SUM chains into ud-bucketed 4-lane blocks (lanes of one
/// block come from one leaf, so they share the pweight array and load it
/// broadcast) and flushes once per tree: interleaved blocks hide the
/// recurrence latency, and phi is applied afterwards in exactly the DFS
/// emission order the reference uses. Chain regions are padded to lane
/// multiples so kernels can store 4 wide; padding lanes are garbage but
/// lane-local (no cross-lane op reads them) and never applied to phi.
struct ShapJobEngine {
  struct Job {
    std::int32_t unique_depth;
    std::int32_t e1_off, n1;  ///< one_fraction==1 chain range (padded pool)
    std::int32_t e0_off, n0;  ///< one_fraction==0 chain range (padded pool)
    double leaf_value;
  };
  /// One 4-lane block of same-kind chains from one leaf.
  struct Block {
    std::int32_t pw_off;  ///< lane-shared pweight array in `pwpool`
    std::int32_t out;     ///< 4-aligned index into the tot pool
    double zf[4];         ///< per-lane zero_fractions (padding lanes: 1.0)
  };

  std::vector<Job> jobs;
  int n_jobs = 0;
  std::vector<double> pwpool;
  int n_pw = 0;
  // Per-chain feature/zero_fraction/total pools, 4-aligned regions per job.
  std::vector<std::int32_t> f1, f0;
  std::vector<double> zf1, zf0, tot1, tot0;
  int n1 = 0, n0 = 0;
  // Fixed-capacity per-unique-depth block buckets, touched-list reset.
  std::vector<Block> b1_data, b0_data;
  std::vector<std::int32_t> b1_n, b0_n;
  std::vector<std::int32_t> used_ud;
  int n_used = 0;
  int bucket_cap = 0;
  int init_stride = -1, init_leaves = -1;

  void init(int stride, int max_leaves) {
    if (stride <= init_stride && max_leaves <= init_leaves) return;
    init_stride = stride;
    init_leaves = max_leaves;
    const int max_ud = stride - 1;
    // Worst case per leaf: unique_depth chains + one padding block each
    // side; +8 keeps the last 4-wide store of either pool in bounds.
    const std::size_t cap_chains =
        static_cast<std::size_t>(max_leaves) *
        static_cast<std::size_t>(stride + 8);
    jobs.resize(static_cast<std::size_t>(max_leaves) + 1);
    pwpool.resize(static_cast<std::size_t>(max_leaves) *
                  static_cast<std::size_t>(stride + 1));
    f1.resize(cap_chains);
    zf1.resize(cap_chains);
    tot1.resize(cap_chains);
    f0.resize(cap_chains);
    zf0.resize(cap_chains);
    tot0.resize(cap_chains);
    bucket_cap = max_leaves * ((max_ud + 4) / 4 + 1);
    b1_data.resize(static_cast<std::size_t>(max_ud + 2) * bucket_cap);
    b0_data.resize(static_cast<std::size_t>(max_ud + 2) * bucket_cap);
    b1_n.assign(static_cast<std::size_t>(max_ud) + 2, 0);
    b0_n.assign(static_cast<std::size_t>(max_ud) + 2, 0);
    used_ud.resize(static_cast<std::size_t>(max_ud) + 2);
    n_jobs = 0;
    n_pw = 0;
    n1 = 0;
    n0 = 0;
    n_used = 0;
  }
  void reset() {
    n_jobs = 0;
    n_pw = 0;
    n1 = 0;
    n0 = 0;
    for (int i = 0; i < n_used; ++i) {
      b1_n[static_cast<std::size_t>(used_ud[i])] = 0;
      b0_n[static_cast<std::size_t>(used_ud[i])] = 0;
    }
    n_used = 0;
  }
};

#if DRCSHAP_SIMD_ENABLED

/// True when this CPU can run the vector walk (AVX2 + FMA) and
/// $DRCSHAP_SIMD does not disable SIMD. Defined in tree_shap_avx2.cpp.
bool simd_walk_available();

/// Depth ceiling of the vector walk: the correctly-rounded FMA division
/// replacement draws reciprocals from a fixed table of integer divisors up
/// to this depth. Deeper forests fall back to the scalar fast walk.
inline constexpr int kSimdWalkMaxDepth = 190;

/// AVX2+FMA twin of the scalar fast walk for one (sample, tree): same
/// traversal order, same EXTEND/UNWIND operands, leaf chains batched per
/// tree and flushed into phi in reference DFS order. Byte-identical to the
/// scalar walk (and therefore to the reference recursion).
void fast_tree_shap_avx2(const ExactTraversal& tree, const ShapMeta& meta,
                         std::int32_t root, double* phi, PathElement* storage,
                         int stride, std::vector<FastFrame>& stack,
                         ShapJobEngine& engine);
void fast_tree_shap_avx2(const CompiledTraversal& tree, const ShapMeta& meta,
                         std::int32_t root, double* phi, PathElement* storage,
                         int stride, std::vector<FastFrame>& stack,
                         ShapJobEngine& engine);

#endif  // DRCSHAP_SIMD_ENABLED

}  // namespace drcshap::shap_detail
