#include "drc/drc_oracle.hpp"

#include <algorithm>
#include <cmath>

#include "obs/registry.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace drcshap {

std::string to_string(DrcErrorType type) {
  switch (type) {
    case DrcErrorType::kShort:               return "short";
    case DrcErrorType::kEndOfLineSpacing:    return "end-of-line-spacing";
    case DrcErrorType::kDifferentNetSpacing: return "different-net-spacing";
    case DrcErrorType::kViaEnclosure:        return "via-enclosure";
  }
  return "?";
}

namespace {

double logistic(double x) { return 1.0 / (1.0 + std::exp(-x)); }

std::uint64_t name_hash(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Per-cause score breakdown; the dominant cause drives the violation type.
struct CauseScores {
  double wire = 0.0;    ///< own + neighbor edge overflow
  double via = 0.0;     ///< via crowding
  double pin = 0.0;     ///< pin/local-net/NDR/clock/spacing/density pressure
  double macro = 0.0;   ///< macro-adjacency coupling
  int worst_wire_metal = 0;
  int worst_via_layer = 0;

  double total() const { return wire + via + pin + macro; }
};

CauseScores cause_scores(const Design& design, const TrackModel& track,
                         const std::vector<GCellAggregate>& agg,
                         std::size_t cell, const DrcOracleOptions& opt) {
  const std::size_t nx = design.grid().nx();
  const std::size_t ny = design.grid().ny();
  const int metals = track.num_metal_layers();
  CauseScores s;

  double worst_wire = -1.0;
  double own_overflow_total = 0.0;
  for (int m = 0; m < metals; ++m) {
    const double over = track.edge_overflow(cell, m);
    own_overflow_total += over;
    double w = opt.w_overflow;
    if (m >= 3) w += opt.w_overflow_upper;  // M4/M5 detour layers
    // Log compression: the first overflowed track matters far more than the
    // fortieth (a totally blown region is already hopeless).
    s.wire += w * std::log1p(over);
    if (over > worst_wire) {
      worst_wire = over;
      s.worst_wire_metal = m;
    }
  }
  // 4-neighborhood spillover (detours push errors into adjacent cells).
  const std::size_t c = cell % nx, r = cell / nx;
  double nbr_overflow = 0.0;
  auto add_nbr = [&](std::size_t n) {
    for (int m = 0; m < metals; ++m) nbr_overflow += track.edge_overflow(n, m);
  };
  if (c > 0) add_nbr(cell - 1);
  if (c + 1 < nx) add_nbr(cell + 1);
  if (r > 0) add_nbr(cell - nx);
  if (r + 1 < ny) add_nbr(cell + nx);
  s.wire += opt.w_neighbor * std::log1p(nbr_overflow);

  double worst_via = -1.0;
  for (int v = 0; v < metals - 1; ++v) {
    const double pressure = track.via_pressure(cell, v);
    const double above = std::max(0.0, pressure - opt.via_threshold);
    s.via += opt.w_via * above;
    if (pressure > worst_via) {
      worst_via = pressure;
      s.worst_via_layer = v;
    }
  }

  const GCellAggregate& a = agg[cell];
  s.pin += opt.w_pin *
           std::max(0.0, static_cast<double>(a.n_pins) - opt.pin_threshold);
  s.pin += opt.w_local * a.n_local_nets;
  s.pin = std::min(s.pin, opt.pin_cap);  // crowding saturates
  s.pin += opt.w_ndr * a.n_ndr_pins;
  s.pin += opt.w_clock * a.n_clock_pins;
  s.pin += opt.w_density * std::max(0.0, a.cell_area_frac - 0.8);
  // Tight mean pin spacing (below 20% of the g-cell pitch) with several pins.
  const double pitch = design.grid().cell_width();
  if (a.n_pins >= 4 && a.pin_spacing > 0.0 && a.pin_spacing < 0.2 * pitch) {
    s.pin += opt.w_spacing * (0.2 * pitch - a.pin_spacing) / (0.2 * pitch);
  }

  if (a.macro_adjacent) {
    // Blocked lower layers force traffic upward; couple with local pressure.
    const double coupling =
        std::min(2.0, own_overflow_total + 0.25 * nbr_overflow +
                          std::max(0.0, worst_via - opt.via_threshold) * 2.0);
    s.macro += opt.w_macro * (0.15 + coupling);
  }
  return s;
}

}  // namespace

double drc_difficulty(const Design& design, const TrackModel& track,
                      const std::vector<GCellAggregate>& agg, std::size_t cell,
                      const DrcOracleOptions& options) {
  return cause_scores(design, track, agg, cell, options).total();
}

void emit_cell_violations(const Design& design, const TrackModel& track,
                          const std::vector<GCellAggregate>& agg,
                          std::size_t cell, const DrcOracleOptions& options,
                          double design_effect, Rng& cell_rng,
                          std::vector<DrcViolation>& out) {
  const GCellGrid& grid = design.grid();
  const CauseScores s = cause_scores(design, track, agg, cell, options);
  const double latent = options.bias + s.total() + design_effect +
                        cell_rng.normal(0.0, options.noise_sigma);
  if (!cell_rng.bernoulli(logistic(latent))) return;

  // Violation count grows with how far past the threshold the cell is.
  const double intensity = std::log1p(std::exp(latent));  // softplus
  const auto n_violations =
      1 + cell_rng.poisson(std::min(4.0, 0.5 * intensity));

  const Rect cr = grid.cell_rect(cell);
  for (std::uint64_t k = 0; k < n_violations; ++k) {
    // Pick the cause proportional to its score share.
    const double total = std::max(1e-9, s.total());
    const double pick = cell_rng.uniform() * total;
    DrcViolation v;
    if (pick < s.wire) {
      v.type = cell_rng.bernoulli(0.7) ? DrcErrorType::kShort
                                       : DrcErrorType::kDifferentNetSpacing;
      v.metal_layer = s.worst_wire_metal;
    } else if (pick < s.wire + s.via) {
      // Via clusters squeeze the metal layer between the crowded cuts.
      v.type = cell_rng.bernoulli(0.75) ? DrcErrorType::kEndOfLineSpacing
                                        : DrcErrorType::kViaEnclosure;
      v.metal_layer = s.worst_via_layer + 1;
    } else if (pick < s.wire + s.via + s.pin) {
      v.type = cell_rng.bernoulli(0.5) ? DrcErrorType::kDifferentNetSpacing
                                       : DrcErrorType::kShort;
      v.metal_layer = static_cast<int>(cell_rng.index(2));  // M1/M2 pin level
    } else {
      // Macro-driven: error on the first routable layer above the macro.
      v.type = DrcErrorType::kShort;
      v.metal_layer =
          std::min(design.tech().num_metal_layers - 1, s.worst_wire_metal);
    }

    // Small box inside the cell; ~12% straddle into a neighbor, which makes
    // multi-g-cell hotspots like the paper's bounding boxes.
    const double w = cr.width() * cell_rng.uniform(0.05, 0.35);
    const double h = cr.height() * cell_rng.uniform(0.05, 0.35);
    double x = cr.x_lo + cell_rng.uniform() * (cr.width() - w);
    double y = cr.y_lo + cell_rng.uniform() * (cr.height() - h);
    if (cell_rng.bernoulli(0.12)) {
      // Shift the box onto the cell border so it spills over.
      if (cell_rng.bernoulli(0.5)) {
        x = cell_rng.bernoulli(0.5) ? cr.x_lo - w / 2.0 : cr.x_hi - w / 2.0;
      } else {
        y = cell_rng.bernoulli(0.5) ? cr.y_lo - h / 2.0 : cr.y_hi - h / 2.0;
      }
    }
    v.box = Rect{x, y, x + w, y + h}.intersect(design.die());
    if (v.box.empty()) continue;
    out.push_back(v);
  }
}

std::vector<Rng> drc_cell_streams(const Design& design,
                                  const DrcOracleOptions& options,
                                  double* design_effect) {
  Rng rng(options.seed ^ name_hash(design.name()));
  const double effect = rng.normal(0.0, options.design_effect_sigma);
  if (design_effect != nullptr) *design_effect = effect;

  // One fork per cell keeps the stream independent of how many draws each
  // cell makes (stable labels under parameter tweaks elsewhere). The forks
  // are drawn serially in cell order — the only order-dependent draws — so
  // parallel (or incremental, subset-only) scoring consumes exactly the
  // serial streams.
  const std::size_t n = design.grid().size();
  std::vector<Rng> cell_rngs;
  cell_rngs.reserve(n);
  for (std::size_t cell = 0; cell < n; ++cell) {
    cell_rngs.push_back(rng.fork());
  }
  return cell_rngs;
}

DrcReport run_drc_oracle(const Design& design, const CongestionMap& congestion,
                         const DrcOracleOptions& options) {
  return run_drc_oracle(design, congestion, compute_gcell_aggregates(design),
                        options);
}

DrcReport run_drc_oracle(const Design& design, const CongestionMap& congestion,
                         const std::vector<GCellAggregate>& aggregates,
                         const DrcOracleOptions& options,
                         std::size_t n_threads) {
  return run_drc_oracle_state(design, congestion, aggregates, options,
                              n_threads)
      .flatten();
}

DrcOracleState run_drc_oracle_state(
    const Design& design, const CongestionMap& congestion,
    const std::vector<GCellAggregate>& aggregates,
    const DrcOracleOptions& options, std::size_t n_threads) {
  DRCSHAP_OBS_TIMER("drc/oracle");
  const GCellGrid& grid = design.grid();
  const TrackModel track(design, congestion);

  double design_effect = 0.0;
  std::vector<Rng> cell_rngs =
      drc_cell_streams(design, options, &design_effect);

  obs::counter_add("drc/cells_scored", grid.size());
  DrcOracleState state;
  state.per_cell.resize(grid.size());
  parallel_for_shared(
      grid.size(),
      [&](std::size_t cell) {
        emit_cell_violations(design, track, aggregates, cell, options,
                             design_effect, cell_rngs[cell],
                             state.per_cell[cell]);
      },
      n_threads);

  state.coverage.assign(grid.size(), 0);
  for (const std::vector<DrcViolation>& bucket : state.per_cell) {
    for (const DrcViolation& v : bucket) {
      for (const std::size_t cell : grid.cells_overlapping(v.box)) {
        ++state.coverage[cell];
      }
    }
  }
  state.hotspot.assign(grid.size(), 0);
  state.n_hotspots = 0;
  for (std::size_t cell = 0; cell < grid.size(); ++cell) {
    if (state.coverage[cell] > 0) {
      state.hotspot[cell] = 1;
      ++state.n_hotspots;
    }
  }
  return state;
}

DrcReport DrcOracleState::flatten() const {
  DrcReport report;
  for (const std::vector<DrcViolation>& bucket : per_cell) {
    for (const DrcViolation& v : bucket) report.violations.push_back(v);
  }
  report.hotspot = hotspot;
  report.n_hotspots = n_hotspots;
  return report;
}

}  // namespace drcshap
