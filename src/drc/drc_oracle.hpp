#pragma once
// DRC oracle: the detailed-routing + design-rule-check stage of the flow.
//
// The paper obtains ground-truth labels by detail-routing each design with
// Olympus-SoC and collecting the reported DRC error bounding boxes. We do
// not have that tool, so this oracle plays its role with a mechanistic
// generative model: per g-cell it combines the *causes* detailed routing
// actually fails on — GR edge overflow (own and neighboring cells, upper
// layers weighted more), via crowding, pin count/spacing pressure, local-net
// and NDR crowding, macro adjacency, placement density — into a latent
// difficulty, adds unobservable detailed-router variance (the reason
// predictive models cannot reach AUPRC 1), and emits typed, layer-annotated
// violation boxes whose type matches the dominant cause:
//   * metal short / different-net spacing  <- wire overflow on that layer,
//   * end-of-line spacing                  <- via clusters on adjacent cuts,
//   * via-enclosure                        <- via pressure with tight pins.
// This mirrors the three archetypes the paper validates in Fig. 3/4.

#include <cstdint>
#include <string>
#include <vector>

#include "drc/track_model.hpp"
#include "util/rng.hpp"

namespace drcshap {

enum class DrcErrorType : std::uint8_t {
  kShort,
  kEndOfLineSpacing,
  kDifferentNetSpacing,
  kViaEnclosure,
};

std::string to_string(DrcErrorType type);

struct DrcViolation {
  DrcErrorType type = DrcErrorType::kShort;
  int metal_layer = 0;  ///< 0-based metal layer the error sits on
  Rect box;             ///< error bounding box (layout coordinates)
};

struct DrcOracleOptions {
  std::uint64_t seed = 99;

  // Unobservable detailed-router variance; raising it lowers the achievable
  // predictive ceiling (calibrated so strong models land at AUPRC ~0.4-0.8
  // like the paper's Table II).
  double noise_sigma = 1.0;
  // Per-design random offset (designs differ in how forgiving their detailed
  // routing is), creating the cross-design generalization gap of Table II.
  double design_effect_sigma = 0.35;
  double bias = -6.6;  ///< controls the overall hotspot rate (rare positives)

  // Cause weights.
  double w_overflow = 1.3;         ///< per log1p(own-cell edge overflow)
  double w_overflow_upper = 0.6;   ///< extra for M4/M5 overflow
  double w_neighbor = 0.20;        ///< per log1p(4-neighborhood overflow)
  double w_via = 1.5;              ///< per unit of via pressure above thresh
  double via_threshold = 0.85;
  double w_pin = 0.05;             ///< per pin above pin_threshold, capped
  double pin_threshold = 24.0;
  double pin_cap = 1.2;
  double w_local = 0.05;           ///< per local net, capped with pins
  double w_ndr = 0.30;             ///< per NDR pin
  double w_clock = 0.12;           ///< per clock pin
  double w_macro = 0.9;            ///< macro adjacency x congestion coupling
  double w_density = 1.5;          ///< cell-area fraction above 0.8
  double w_spacing = 0.8;          ///< tight mean pin spacing
};

struct DrcReport {
  std::vector<DrcViolation> violations;
  /// Per g-cell hotspot flag: 1 iff the g-cell overlaps any violation box.
  std::vector<std::uint8_t> hotspot;
  std::size_t n_hotspots = 0;
};

/// Runs the oracle. Deterministic for fixed (design, congestion, options):
/// the per-design stream is seeded by options.seed combined with the design
/// name. Computes the g-cell aggregates itself; callers that already have
/// them (the pipeline shares one vector with feature extraction) should use
/// the overload below.
DrcReport run_drc_oracle(const Design& design, const CongestionMap& congestion,
                         const DrcOracleOptions& options = {});

/// Same oracle over precomputed aggregates. Cells are scored in parallel on
/// the shared pool (`n_threads` caps the workers; 0 = whole pool, 1 =
/// serial): the per-cell rng streams are forked serially up front — fork
/// order is the only order-dependent draw — and each cell then samples only
/// from its own stream into its own slot, so the violations, hotspot labels
/// and every random draw are bit-identical to the serial oracle at any
/// thread count.
DrcReport run_drc_oracle(const Design& design, const CongestionMap& congestion,
                         const std::vector<GCellAggregate>& aggregates,
                         const DrcOracleOptions& options = {},
                         std::size_t n_threads = 0);

/// The latent difficulty score of one g-cell *excluding* noise terms;
/// exposed for calibration tools and tests (monotonicity properties).
double drc_difficulty(const Design& design, const TrackModel& track,
                      const std::vector<GCellAggregate>& agg, std::size_t cell,
                      const DrcOracleOptions& options);

/// Resident per-cell form of a DrcReport, kept by the incremental ECO
/// engine: violations stay bucketed by the cell that emitted them so a
/// single cell can be re-scored in place, and `coverage` counts how many
/// violation boxes overlap each g-cell (a box can straddle into a
/// neighbor), so removing one cell's old boxes and adding its new ones
/// keeps the hotspot flags exact without a global rescan.
struct DrcOracleState {
  std::vector<std::vector<DrcViolation>> per_cell;
  std::vector<std::uint32_t> coverage;
  std::vector<std::uint8_t> hotspot;  ///< 1 iff coverage > 0
  std::size_t n_hotspots = 0;

  /// The report shape run_drc_oracle returns: violations flattened in cell
  /// order, byte-identical to the non-resident oracle.
  DrcReport flatten() const;
};

/// The oracle in resident form; run_drc_oracle (aggregates overload) is
/// exactly run_drc_oracle_state(...).flatten().
DrcOracleState run_drc_oracle_state(
    const Design& design, const CongestionMap& congestion,
    const std::vector<GCellAggregate>& aggregates,
    const DrcOracleOptions& options = {}, std::size_t n_threads = 0);

/// Derives the oracle's per-design effect and per-cell rng streams exactly
/// as run_drc_oracle does (effect drawn first, then one serial fork per
/// cell in cell order). Re-deriving the streams is O(cells), which is what
/// lets the ECO engine re-score an arbitrary subset of cells with the exact
/// draws a full run would give them.
std::vector<Rng> drc_cell_streams(const Design& design,
                                  const DrcOracleOptions& options,
                                  double* design_effect);

/// Scores one cell and appends its violations to `out`, drawing only from
/// `cell_rng` (the cell's stream from drc_cell_streams). Shared by the
/// serial, parallel, and incremental oracle drivers.
void emit_cell_violations(const Design& design, const TrackModel& track,
                          const std::vector<GCellAggregate>& agg,
                          std::size_t cell, const DrcOracleOptions& options,
                          double design_effect, Rng& cell_rng,
                          std::vector<DrcViolation>& out);

}  // namespace drcshap
