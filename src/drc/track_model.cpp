#include "drc/track_model.hpp"

#include <algorithm>
#include <cmath>

namespace drcshap {

std::vector<GCellAggregate> compute_gcell_aggregates(const Design& design) {
  const GCellGrid& grid = design.grid();
  std::vector<GCellAggregate> agg(grid.size());

  // Cells: counted where fully contained; area apportioned by overlap.
  for (const Cell& c : design.cells()) {
    const std::size_t home = grid.locate(c.box.center());
    if (grid.cell_rect(home).contains(c.box)) {
      ++agg[home].n_cells;
    }
    for (const std::size_t cell : grid.cells_overlapping(c.box)) {
      agg[cell].cell_area_frac +=
          c.box.intersection_area(grid.cell_rect(cell)) / grid.cell_rect(cell).area();
    }
  }

  // Blockage area fraction (clipped at 1, overlapping blockages saturate).
  for (const Blockage& b : design.blockages()) {
    for (const std::size_t cell : grid.cells_overlapping(b.box)) {
      agg[cell].blockage_frac +=
          b.box.intersection_area(grid.cell_rect(cell)) / grid.cell_rect(cell).area();
    }
  }
  for (auto& a : agg) {
    a.cell_area_frac = std::min(1.0, a.cell_area_frac);
    a.blockage_frac = std::min(1.0, a.blockage_frac);
  }

  // Pins, clock pins, NDR pins; collect per-cell pin positions for spacing.
  std::vector<std::vector<Point>> pin_points(grid.size());
  for (const Pin& p : design.pins()) {
    const std::size_t cell = grid.locate(p.position);
    ++agg[cell].n_pins;
    if (p.is_clock) ++agg[cell].n_clock_pins;
    if (p.has_ndr) ++agg[cell].n_ndr_pins;
    pin_points[cell].push_back(p.position);
  }

  // Local nets: all pins land in the same g-cell.
  for (NetId n = 0; n < design.num_nets(); ++n) {
    const Net& net = design.net(n);
    if (net.pins.empty()) continue;
    const std::size_t first = grid.locate(design.pin(net.pins.front()).position);
    bool local = true;
    for (const PinId p : net.pins) {
      if (grid.locate(design.pin(p).position) != first) {
        local = false;
        break;
      }
    }
    if (local) {
      ++agg[first].n_local_nets;
      agg[first].n_local_net_pins += static_cast<int>(net.pins.size());
    }
  }

  // Mean pairwise Manhattan pin spacing.
  for (std::size_t cell = 0; cell < grid.size(); ++cell) {
    const auto& pts = pin_points[cell];
    if (pts.size() < 2) continue;
    double total = 0.0;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      for (std::size_t j = i + 1; j < pts.size(); ++j) {
        total += manhattan(pts[i], pts[j]);
      }
    }
    const double pairs = static_cast<double>(pts.size()) *
                         static_cast<double>(pts.size() - 1) / 2.0;
    agg[cell].pin_spacing = total / pairs;
  }

  // Macro adjacency: the g-cell rect (slightly inflated) touches a macro.
  for (const Macro& m : design.macros()) {
    const Rect zone = m.box.inflated(
        std::max(grid.cell_width(), grid.cell_height()) * 0.51);
    for (const std::size_t cell : grid.cells_overlapping(zone)) {
      agg[cell].macro_adjacent = true;
    }
  }

  return agg;
}

TrackModel::TrackModel(const Design& design, const CongestionMap& cong)
    : num_cells_(cong.num_cells()),
      num_metal_(cong.num_metal_layers()),
      num_vias_(cong.num_via_layers()) {
  (void)design;
  demand_.assign(static_cast<std::size_t>(num_metal_) * num_cells_, 0.0);
  supply_.assign(demand_.size(), 0.0);
  edge_overflow_.assign(demand_.size(), 0);
  via_pressure_.assign(static_cast<std::size_t>(num_vias_) * num_cells_, 0.0);

  const std::size_t nx = cong.nx();
  const std::size_t ny = cong.ny();
  for (int m = 0; m < num_metal_; ++m) {
    for (std::size_t cell = 0; cell < num_cells_; ++cell) {
      const std::size_t c = cell % nx;
      const std::size_t r = cell / nx;
      double load = 0.0, cap = 0.0;
      int n_edges = 0, overflow = 0;
      auto consider = [&](std::size_t a, std::size_t b) {
        load += cong.edge_load(m, a, b);
        cap += cong.edge_capacity(m, a, b);
        overflow += std::max(0, cong.edge_load(m, a, b) -
                                    cong.edge_capacity(m, a, b));
        ++n_edges;
      };
      if (Technology::is_horizontal(m)) {
        if (c > 0) consider(cell - 1, cell);
        if (c + 1 < nx) consider(cell, cell + 1);
      } else {
        if (r > 0) consider(cell - nx, cell);
        if (r + 1 < ny) consider(cell, cell + nx);
      }
      if (n_edges > 0) {
        demand_[index(cell, m)] = load / n_edges;
        supply_[index(cell, m)] = cap / n_edges;
      }
      edge_overflow_[index(cell, m)] = overflow;
    }
  }
  for (int v = 0; v < num_vias_; ++v) {
    for (std::size_t cell = 0; cell < num_cells_; ++cell) {
      const int cap = cong.via_capacity(v, cell);
      const int load = cong.via_load(v, cell);
      via_pressure_[static_cast<std::size_t>(v) * num_cells_ + cell] =
          static_cast<double>(load) / std::max(1, cap);
    }
  }
}

double TrackModel::wire_demand(std::size_t cell, int metal) const {
  return demand_.at(index(cell, metal));
}

double TrackModel::wire_supply(std::size_t cell, int metal) const {
  return supply_.at(index(cell, metal));
}

double TrackModel::overflow(std::size_t cell, int metal) const {
  return std::max(0.0, wire_demand(cell, metal) - wire_supply(cell, metal));
}

int TrackModel::edge_overflow(std::size_t cell, int metal) const {
  return edge_overflow_.at(index(cell, metal));
}

double TrackModel::via_pressure(std::size_t cell, int via_layer) const {
  return via_pressure_.at(static_cast<std::size_t>(via_layer) * num_cells_ + cell);
}

}  // namespace drcshap
