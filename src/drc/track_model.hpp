#pragma once
// Per-g-cell layout aggregates and a track-level supply/demand model.
//
// `compute_gcell_aggregates` summarizes the placed design per g-cell (cell /
// pin / local-net counts, pin spacing, blockage and cell-area fractions) —
// the placement-derived half of the paper's feature set, also used by the
// DRC oracle. `TrackModel` overlays the post-GR congestion map to estimate,
// per g-cell and metal layer, how many wires must squeeze through versus how
// many tracks exist — the quantity whose shortfall generates DRC violations
// after detailed routing.

#include <vector>

#include "netlist/design.hpp"
#include "route/congestion.hpp"

namespace drcshap {

struct GCellAggregate {
  int n_cells = 0;          ///< std cells fully inside the g-cell
  int n_pins = 0;           ///< pins inside the g-cell
  int n_clock_pins = 0;
  int n_local_nets = 0;     ///< nets with all pins inside this g-cell
  int n_local_net_pins = 0; ///< pins belonging to any local net
  int n_ndr_pins = 0;       ///< pins of non-default-rule nets
  double pin_spacing = 0.0; ///< mean pairwise Manhattan distance of pins
  double blockage_frac = 0.0;  ///< fraction of area under routing blockages
  double cell_area_frac = 0.0; ///< fraction of area under std cells
  bool macro_adjacent = false; ///< g-cell touches (or overlaps) a macro

  /// Exact comparison — the ECO engine diffs recomputed aggregates against
  /// the resident ones to find cells whose placement-derived inputs moved.
  friend bool operator==(const GCellAggregate&, const GCellAggregate&) =
      default;
};

/// One aggregate per g-cell (row-major grid order).
std::vector<GCellAggregate> compute_gcell_aggregates(const Design& design);

/// Congestion-derived supply/demand per (g-cell, metal layer) and via
/// pressure per (g-cell, via layer).
class TrackModel {
 public:
  TrackModel(const Design& design, const CongestionMap& congestion);

  /// Mean load of the layer's edges incident to the cell (wires crossing
  /// into/out of the cell on that layer).
  double wire_demand(std::size_t cell, int metal) const;
  /// Mean capacity of the same edges.
  double wire_supply(std::size_t cell, int metal) const;
  /// max(0, demand - supply).
  double overflow(std::size_t cell, int metal) const;
  /// Total positive edge overflow incident to the cell on that layer.
  int edge_overflow(std::size_t cell, int metal) const;
  /// Via utilization: load / max(1, capacity).
  double via_pressure(std::size_t cell, int via_layer) const;

  std::size_t num_cells() const { return num_cells_; }
  int num_metal_layers() const { return num_metal_; }

 private:
  std::size_t index(std::size_t cell, int metal) const {
    return static_cast<std::size_t>(metal) * num_cells_ + cell;
  }
  std::size_t num_cells_;
  int num_metal_;
  std::vector<double> demand_;
  std::vector<double> supply_;
  std::vector<int> edge_overflow_;
  std::vector<double> via_pressure_;  ///< [via_layer * num_cells + cell]
  int num_vias_;
};

}  // namespace drcshap
