#include "eco/eco_engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "features/feature_extractor.hpp"
#include "features/feature_names.hpp"
#include "obs/registry.hpp"
#include "util/thread_pool.hpp"

namespace drcshap {

namespace {

/// Marks both cells of every metal edge and the cell of every via whose
/// (capacity, load) differs between the two snapshots. This is the *exact*
/// post-route divergence — unlike the replay's conservative set — so the
/// downstream dirty region is as small as the edit allows.
std::vector<std::uint8_t> congestion_diff_cells(const CongestionMap& before,
                                                const CongestionMap& after) {
  const std::size_t nx = after.nx();
  const std::size_t ny = after.ny();
  std::vector<std::uint8_t> dirty(nx * ny, 0);
  for (int m = 0; m < after.num_metal_layers(); ++m) {
    const bool horizontal = Technology::is_horizontal(m);
    for (std::size_t r = 0; r < ny; ++r) {
      for (std::size_t c = 0; c < nx; ++c) {
        const std::size_t cell = r * nx + c;
        std::size_t nbr;
        if (horizontal) {
          if (c + 1 >= nx) continue;
          nbr = cell + 1;
        } else {
          if (r + 1 >= ny) continue;
          nbr = cell + nx;
        }
        if (before.edge_capacity(m, cell, nbr) !=
                after.edge_capacity(m, cell, nbr) ||
            before.edge_load(m, cell, nbr) != after.edge_load(m, cell, nbr)) {
          dirty[cell] = 1;
          dirty[nbr] = 1;
        }
      }
    }
  }
  for (int v = 0; v < after.num_via_layers(); ++v) {
    for (std::size_t cell = 0; cell < nx * ny; ++cell) {
      if (before.via_capacity(v, cell) != after.via_capacity(v, cell) ||
          before.via_load(v, cell) != after.via_load(v, cell)) {
        dirty[cell] = 1;
      }
    }
  }
  return dirty;
}

/// Chebyshev-distance-1 dilation: the 3x3 feature window and the DRC
/// causes (own track state + 4-neighbor overflow) both read at most one
/// cell away, so a cell is recomputed iff anything within its window moved.
std::vector<std::uint8_t> dilate_chebyshev1(
    const std::vector<std::uint8_t>& dirty, std::size_t nx, std::size_t ny) {
  std::vector<std::uint8_t> out(dirty.size(), 0);
  for (std::size_t r = 0; r < ny; ++r) {
    for (std::size_t c = 0; c < nx; ++c) {
      if (dirty[r * nx + c] == 0) continue;
      const std::size_t r_lo = r > 0 ? r - 1 : 0;
      const std::size_t r_hi = std::min(r + 1, ny - 1);
      const std::size_t c_lo = c > 0 ? c - 1 : 0;
      const std::size_t c_hi = std::min(c + 1, nx - 1);
      for (std::size_t rr = r_lo; rr <= r_hi; ++rr) {
        for (std::size_t cc = c_lo; cc <= c_hi; ++cc) out[rr * nx + cc] = 1;
      }
    }
  }
  return out;
}

}  // namespace

EcoEngine::EcoEngine(Design design,
                     std::shared_ptr<const RandomForestClassifier> forest,
                     TreeShapExplainer explainer, EcoOptions options)
    : design_(std::move(design)),
      options_(options),
      forest_(std::move(forest)),
      explainer_(std::move(explainer)) {
  if (forest_ == nullptr || !forest_->fitted()) {
    throw std::invalid_argument("EcoEngine: needs a fitted forest");
  }
  if (forest_->flat().n_features() != FeatureSchema::kNumFeatures) {
    throw std::invalid_argument(
        "EcoEngine: forest feature count does not match the feature schema");
  }
  rebuild_full();
}

void EcoEngine::rebuild_full() {
  DRCSHAP_OBS_TIMER("eco/full_build");
  trace_ = RouteTrace{};
  GlobalRouteResult route =
      global_route_traced(design_, options_.router, &trace_, nullptr);
  edge_overflow_ = route.edge_overflow;
  via_overflow_ = route.via_overflow;
  congestion_.emplace(std::move(route.congestion));
  agg_ = compute_gcell_aggregates(design_);
  drc_ = run_drc_oracle_state(design_, *congestion_, agg_, options_.drc,
                              options_.n_threads);

  const FeatureExtractor extractor(design_, *congestion_, agg_);
  features_ = extractor.extract_all(options_.n_threads);

  const std::size_t n = design_.grid().size();
  probs_ = forest_->predict_proba_all(
      std::span<const float>(features_.data(), features_.size()), n,
      ForestEngine::kAuto);
  ShapMatrix shap = explainer_.shap_values_batch(
      std::span<const float>(features_.data(), features_.size()), n,
      options_.n_threads);
  phi_ = std::move(shap.values);
  last_route_stats_ = EcoStats{};
}

EcoResult EcoEngine::apply(const EcoEdit& edit) {
  DRCSHAP_OBS_TIMER("eco/apply");
  obs::counter_add("eco/edits");

  // Validate + stage the edit. Mutations go through Design's checked
  // mutators, which throw before touching anything on a bad edit.
  RouteReplayInput replay;
  replay.base = &trace_;
  switch (edit.kind) {
    case EcoEdit::Kind::kMoveMacro:
      design_.move_macro(edit.macro, edit.dx, edit.dy);
      break;
    case EcoEdit::Kind::kResizeMacro:
      design_.set_macro_box(edit.macro, edit.new_box);
      break;
    case EcoEdit::Kind::kRerouteNets: {
      replay.force_net.assign(design_.num_nets(), 0);
      for (const std::string& name : edit.nets) {
        bool found = false;
        for (NetId n = 0; n < design_.num_nets(); ++n) {
          if (design_.net(n).name == name) {
            replay.force_net[n] = 1;
            found = true;
            break;
          }
        }
        if (!found) {
          throw std::invalid_argument("EcoEngine: unknown net \"" + name +
                                      "\"");
        }
      }
      break;
    }
    default:
      throw std::invalid_argument("EcoEngine: unknown edit kind");
  }

  // Route: memoized replay of the full algorithm, recording the trace that
  // becomes the base of the next apply.
  RouteTrace new_trace;
  GlobalRouteResult route =
      global_route_traced(design_, options_.router, &new_trace, &replay);
  edge_overflow_ = route.edge_overflow;
  via_overflow_ = route.via_overflow;
  last_route_stats_ = EcoStats{};
  last_route_stats_.route_dirty_cells = route.replay_dirty_cells;
  last_route_stats_.pattern_reused = route.pattern_reused;
  last_route_stats_.maze_reused = route.maze_reused;
  last_route_stats_.maze_recomputed = route.maze_recomputed;

  // Exact post-route divergence: congestion values plus placement-derived
  // aggregates. The aggregate pass is a cheap O(design) scan recomputed
  // whole and diffed per cell — the dirty tracking propagates *through* it
  // into features and labels, which is where the real cost sits.
  std::vector<std::uint8_t> changed =
      congestion_diff_cells(*congestion_, route.congestion);
  std::vector<GCellAggregate> new_agg = compute_gcell_aggregates(design_);
  for (std::size_t cell = 0; cell < new_agg.size(); ++cell) {
    if (!(new_agg[cell] == agg_[cell])) changed[cell] = 1;
  }
  congestion_.emplace(std::move(route.congestion));
  agg_ = std::move(new_agg);
  trace_ = std::move(new_trace);

  const std::size_t nx = design_.grid().nx();
  const std::size_t ny = design_.grid().ny();
  const std::vector<std::uint8_t> dirty_map =
      dilate_chebyshev1(changed, nx, ny);
  std::vector<std::size_t> dirty;
  for (std::size_t cell = 0; cell < dirty_map.size(); ++cell) {
    if (dirty_map[cell] != 0) dirty.push_back(cell);
  }
  return rescore_dirty(dirty);
}

EcoResult EcoEngine::rescore_dirty(const std::vector<std::size_t>& dirty) {
  const GCellGrid& grid = design_.grid();
  constexpr std::size_t kF = FeatureSchema::kNumFeatures;
  EcoResult result;
  result.stats = last_route_stats_;
  result.stats.dirty_cells = dirty.size();
  result.stats.rows_rescored = dirty.size();
  obs::counter_add("eco/dirty_cells", dirty.size());
  if (dirty.empty()) return result;

  // --- labels: re-score exactly the dirty cells with re-derived streams --
  {
    DRCSHAP_OBS_TIMER("eco/drc_rescore");
    const TrackModel track(design_, *congestion_);
    double design_effect = 0.0;
    std::vector<Rng> streams =
        drc_cell_streams(design_, options_.drc, &design_effect);
    // Retire the dirty cells' old violation boxes from the coverage counts,
    // emit fresh ones, then add those back. Boxes can straddle into
    // neighbor cells; the counts keep every flag exact without a rescan.
    for (const std::size_t cell : dirty) {
      for (const DrcViolation& v : drc_.per_cell[cell]) {
        for (const std::size_t covered : grid.cells_overlapping(v.box)) {
          --drc_.coverage[covered];
        }
      }
    }
    std::vector<std::vector<DrcViolation>> fresh(dirty.size());
    parallel_for_shared(
        dirty.size(),
        [&](std::size_t i) {
          emit_cell_violations(design_, track, agg_, dirty[i], options_.drc,
                               design_effect, streams[dirty[i]], fresh[i]);
        },
        options_.n_threads);
    for (std::size_t i = 0; i < dirty.size(); ++i) {
      drc_.per_cell[dirty[i]] = std::move(fresh[i]);
      for (const DrcViolation& v : drc_.per_cell[dirty[i]]) {
        for (const std::size_t covered : grid.cells_overlapping(v.box)) {
          ++drc_.coverage[covered];
        }
      }
    }
    drc_.n_hotspots = 0;
    for (std::size_t cell = 0; cell < grid.size(); ++cell) {
      drc_.hotspot[cell] = drc_.coverage[cell] > 0 ? 1 : 0;
      if (drc_.hotspot[cell] != 0) ++drc_.n_hotspots;
    }
  }

  // --- features: per-cell recompute into the resident matrix ------------
  {
    DRCSHAP_OBS_TIMER("eco/feature_rescore");
    const FeatureExtractor extractor(design_, *congestion_, agg_);
    parallel_for_shared(
        dirty.size(),
        [&](std::size_t i) {
          extractor.extract_into(
              dirty[i], std::span<float>(features_.data() + dirty[i] * kF, kF));
        },
        options_.n_threads);
  }

  // --- predict + explain: dirty rows only, batched ----------------------
  std::vector<float> rows(dirty.size() * kF);
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    std::copy_n(features_.data() + dirty[i] * kF, kF, rows.data() + i * kF);
  }
  std::vector<double> old_probs(dirty.size());
  std::vector<double> old_phi(dirty.size() * kF);
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    old_probs[i] = probs_[dirty[i]];
    std::copy_n(phi_.data() + dirty[i] * kF, kF, old_phi.data() + i * kF);
  }

  const std::vector<double> new_probs = forest_->predict_proba_all(
      std::span<const float>(rows.data(), rows.size()), dirty.size(),
      ForestEngine::kAuto);
  const ShapMatrix new_phi = explainer_.shap_values_batch(
      std::span<const float>(rows.data(), rows.size()), dirty.size(),
      options_.n_threads);
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    probs_[dirty[i]] = new_probs[i];
    std::copy_n(new_phi.values.data() + i * kF, kF,
                phi_.data() + dirty[i] * kF);
  }

  // --- diff: only dirty rows can have moved -----------------------------
  const double thr = options_.hotspot_threshold;
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    const double before = old_probs[i];
    const double after = new_probs[i];
    HotspotDiffEntry entry;
    if (before < thr && after >= thr) {
      entry.change = HotspotDiffEntry::Change::kAppeared;
      ++result.diff.n_appeared;
    } else if (before >= thr && after < thr) {
      entry.change = HotspotDiffEntry::Change::kVanished;
      ++result.diff.n_vanished;
    } else if (std::abs(after - before) >= options_.min_prob_delta) {
      entry.change = HotspotDiffEntry::Change::kChanged;
      ++result.diff.n_changed;
    } else {
      continue;
    }
    entry.cell = dirty[i];
    entry.prob_before = before;
    entry.prob_after = after;

    // Top-k |phi delta| features, deterministic order.
    std::vector<std::pair<std::uint32_t, double>> deltas;
    deltas.reserve(kF);
    for (std::size_t f = 0; f < kF; ++f) {
      const double d = new_phi.values[i * kF + f] - old_phi[i * kF + f];
      if (d != 0.0) deltas.emplace_back(static_cast<std::uint32_t>(f), d);
    }
    const std::size_t k = std::min(options_.top_k, deltas.size());
    std::partial_sort(deltas.begin(), deltas.begin() + k, deltas.end(),
                      [](const auto& a, const auto& b) {
                        const double ma = std::abs(a.second);
                        const double mb = std::abs(b.second);
                        if (ma != mb) return ma > mb;
                        return a.first < b.first;
                      });
    deltas.resize(k);
    entry.shap_deltas = std::move(deltas);
    result.diff.entries.push_back(std::move(entry));
  }
  obs::counter_add("eco/diff_entries", result.diff.entries.size());
  return result;
}

}  // namespace drcshap
