#pragma once
// Incremental ECO (engineering change order) loop: apply a small design
// edit and recompute routes, congestion features, DRC labels, hotspot
// probabilities and SHAP explanations only where they can have changed,
// then report a before/after hotspot diff.
//
// The engine holds one design resident together with every intermediate
// the one-shot pipeline normally throws away (route trace, congestion
// snapshot, per-g-cell aggregates, per-cell DRC violations, the feature
// matrix, probabilities and the full phi matrix). An apply() then flows an
// edit through the stages with dirty tracking:
//
//   route     memoized replay of the exact global-routing algorithm
//             (route/route_trace.hpp) — byte-identical by construction;
//   features  cells within Chebyshev distance 1 of any cell whose
//             aggregates or incident congestion changed (the 3x3 feature
//             window and the DRC causes both read exactly that far);
//   labels    the same dirty set re-scored with re-derived per-cell rng
//             streams; violation coverage counts keep straddling boxes'
//             hotspot flags exact;
//   predict / explain
//             only dirty rows, batched through the compiled forest engine
//             and the TreeSHAP fast path (+ explanation cache). Per-row
//             results are independent of batch composition, so subset
//             batches are byte-identical to full ones.
//
// Invariant (enforced by golden-digest tests at 1 and 8 threads, cache on
// and off): after any apply() sequence, every piece of resident state is
// byte-identical to a from-scratch rebuild of the edited design.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/random_forest.hpp"
#include "core/tree_shap.hpp"
#include "drc/drc_oracle.hpp"
#include "netlist/design.hpp"
#include "route/global_router.hpp"

namespace drcshap {

/// One design edit. kMoveMacro / kResizeMacro change a macro footprint and
/// its routing blockage; kRerouteNets forces the named nets' segments to
/// re-run their routing calls (a no-op on an unchanged design — which is
/// exactly what byte-identity demands — but it invalidates any reuse for
/// those nets when combined with congestion drift).
struct EcoEdit {
  enum class Kind : std::uint8_t {
    kMoveMacro = 0,
    kResizeMacro = 1,
    kRerouteNets = 2,
  };
  Kind kind = Kind::kMoveMacro;
  MacroId macro = kInvalidId;      ///< kMoveMacro / kResizeMacro
  double dx = 0.0, dy = 0.0;       ///< kMoveMacro
  Rect new_box;                    ///< kResizeMacro
  std::vector<std::string> nets;   ///< kRerouteNets (net names)
};

/// One changed cell in a before/after hotspot diff.
struct HotspotDiffEntry {
  enum class Change : std::uint8_t {
    kAppeared = 0,   ///< prob crossed the hotspot threshold upward
    kVanished = 1,   ///< prob crossed it downward
    kChanged = 2,    ///< still on the same side, |delta| >= min_prob_delta
  };
  std::size_t cell = 0;
  Change change = Change::kChanged;
  double prob_before = 0.0;
  double prob_after = 0.0;
  /// Top-k features by |phi_after - phi_before|, largest first (ties break
  /// on feature index, so the order is deterministic).
  std::vector<std::pair<std::uint32_t, double>> shap_deltas;
};

struct HotspotDiff {
  std::vector<HotspotDiffEntry> entries;  ///< ascending cell index
  std::size_t n_appeared = 0;
  std::size_t n_vanished = 0;
  std::size_t n_changed = 0;
};

/// Per-apply accounting, for serve stats and the bench.
struct EcoStats {
  std::size_t dirty_cells = 0;        ///< feature/label/predict/explain set
  std::size_t route_dirty_cells = 0;  ///< route replay's divergence set
  std::size_t pattern_reused = 0;
  std::size_t maze_reused = 0;
  std::size_t maze_recomputed = 0;
  std::size_t rows_rescored = 0;      ///< rows re-predicted + re-explained
};

struct EcoResult {
  HotspotDiff diff;
  EcoStats stats;
};

struct EcoOptions {
  GlobalRouterOptions router;
  DrcOracleOptions drc;
  /// Worker cap for the parallel stages of a rebuild/apply; results are
  /// byte-identical at any value (0 = whole shared pool, 1 = serial).
  std::size_t n_threads = 0;
  double hotspot_threshold = 0.5;
  double min_prob_delta = 0.05;
  std::size_t top_k = 5;
};

class EcoEngine {
 public:
  /// Builds the full resident state (route + features + labels + predict +
  /// explain over every g-cell) — the same work a one-shot pipeline run
  /// does, which is also the baseline apply() is benchmarked against.
  /// The explainer must wrap `forest`; attach a cache / pin an engine on it
  /// before handing it in.
  EcoEngine(Design design, std::shared_ptr<const RandomForestClassifier> forest,
            TreeShapExplainer explainer, EcoOptions options = {});

  /// Applies one edit and incrementally recomputes everything downstream.
  /// Throws std::invalid_argument on a malformed edit (unknown macro id or
  /// net name, box outside the die); the resident state is unchanged then.
  EcoResult apply(const EcoEdit& edit);

  // --- resident state (post-edit), for tests, serving, and diff digests --
  const Design& design() const { return design_; }
  const CongestionMap& congestion() const { return *congestion_; }
  const std::vector<GCellAggregate>& aggregates() const { return agg_; }
  /// Row-major g-cells x FeatureSchema::kNumFeatures.
  const std::vector<float>& features() const { return features_; }
  /// Per-cell hotspot label (the oracle's ground truth).
  const std::vector<std::uint8_t>& labels() const { return drc_.hotspot; }
  const DrcOracleState& drc_state() const { return drc_; }
  const std::vector<double>& probabilities() const { return probs_; }
  /// Row-major g-cells x kNumFeatures SHAP matrix.
  const std::vector<double>& shap_values() const { return phi_; }
  double shap_base_value() const { return explainer_.base_value(); }
  long edge_overflow() const { return edge_overflow_; }
  long via_overflow() const { return via_overflow_; }
  std::size_t num_cells() const { return design_.grid().size(); }

 private:
  void rebuild_full();
  /// Re-scores features/labels/probs/phi for `dirty` cells against the
  /// current congestion_/agg_, and fills the diff from the saved old rows.
  EcoResult rescore_dirty(const std::vector<std::size_t>& dirty);

  Design design_;
  EcoOptions options_;
  std::shared_ptr<const RandomForestClassifier> forest_;
  TreeShapExplainer explainer_;

  RouteTrace trace_;
  // optional only because CongestionMap is constructible solely via
  // extract(); always engaged after construction.
  std::optional<CongestionMap> congestion_;
  std::vector<GCellAggregate> agg_;
  DrcOracleState drc_;
  std::vector<float> features_;
  std::vector<double> probs_;
  std::vector<double> phi_;
  long edge_overflow_ = 0;
  long via_overflow_ = 0;
  EcoStats last_route_stats_;
};

}  // namespace drcshap
