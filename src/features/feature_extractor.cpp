#include "features/feature_extractor.hpp"

#include <stdexcept>

#include "obs/registry.hpp"
#include "util/thread_pool.hpp"

namespace drcshap {

namespace {

// Timed wrapper so the per-design aggregate pass shows up as a feature
// stage in run reports without touching the member-initializer shape.
std::vector<GCellAggregate> timed_aggregates(const Design& design) {
  DRCSHAP_OBS_TIMER("features/aggregates");
  return compute_gcell_aggregates(design);
}

}  // namespace

FeatureExtractor::FeatureExtractor(const Design& design,
                                   const CongestionMap& congestion)
    : FeatureExtractor(design, congestion, timed_aggregates(design)) {}

FeatureExtractor::FeatureExtractor(const Design& design,
                                   const CongestionMap& congestion,
                                   std::vector<GCellAggregate> aggregates)
    : design_(design), cong_(congestion), agg_(std::move(aggregates)) {
  if (congestion.nx() != design.grid().nx() ||
      congestion.ny() != design.grid().ny()) {
    throw std::invalid_argument("FeatureExtractor: grid mismatch");
  }
  if (congestion.num_metal_layers() != FeatureSchema::kMetalLayers) {
    throw std::invalid_argument(
        "FeatureExtractor: schema expects 5 metal layers");
  }
  if (agg_.size() != design.grid().size()) {
    throw std::invalid_argument("FeatureExtractor: aggregate count mismatch");
  }
}

void FeatureExtractor::extract_into(std::size_t cell,
                                    std::span<float> out) const {
  if (out.size() != FeatureSchema::kNumFeatures) {
    throw std::invalid_argument("FeatureExtractor: bad output span size");
  }
  const GCellGrid& grid = design_.grid();
  if (cell >= grid.size()) {
    throw std::out_of_range("FeatureExtractor: bad g-cell index");
  }
  std::fill(out.begin(), out.end(), 0.0f);  // blank padding default

  const auto col = static_cast<std::ptrdiff_t>(grid.col_of(cell));
  const auto row = static_cast<std::ptrdiff_t>(grid.row_of(cell));

  // Resolve window positions to absolute g-cell indices (-1 = off layout).
  std::array<std::ptrdiff_t, FeatureSchema::kNumWindowPositions> window{};
  const auto& offsets = FeatureSchema::position_offsets();
  for (std::size_t p = 0; p < offsets.size(); ++p) {
    const std::ptrdiff_t c = col + offsets[p].first;
    const std::ptrdiff_t r = row + offsets[p].second;
    window[p] = grid.in_bounds(c, r)
                    ? static_cast<std::ptrdiff_t>(
                          grid.index(static_cast<std::size_t>(c),
                                     static_cast<std::size_t>(r)))
                    : -1;
  }

  // Block 1: per-position placement scalars.
  for (std::size_t p = 0; p < window.size(); ++p) {
    if (window[p] < 0) continue;
    const auto idx = static_cast<std::size_t>(window[p]);
    const GCellAggregate& a = agg_[idx];
    const Point center = grid.cell_rect(idx).center();
    const Rect& die = design_.die();
    auto put = [&](std::size_t scalar, double v) {
      out[FeatureSchema::scalar_index(p, scalar)] = static_cast<float>(v);
    };
    put(0, (center.x - die.x_lo) / die.width());
    put(1, (center.y - die.y_lo) / die.height());
    put(2, a.n_cells);
    put(3, a.n_pins);
    put(4, a.n_clock_pins);
    put(5, a.n_local_nets);
    put(6, a.n_local_net_pins);
    put(7, a.n_ndr_pins);
    put(8, a.pin_spacing);
    put(9, a.blockage_frac);
    put(10, a.cell_area_frac);
  }

  // Block 2: window border edge congestion per metal layer.
  const auto& edges = FeatureSchema::window_edges();
  for (int m = 0; m < FeatureSchema::kMetalLayers; ++m) {
    const bool horizontal_layer = Technology::is_horizontal(m);
    for (std::size_t e = 0; e < edges.size(); ++e) {
      // A border is crossed only by wires running perpendicular to it; the
      // suffix H marks borders crossed by horizontal wires (odd layers get 0).
      if (edges[e].crossed_by_horizontal_wires != horizontal_layer) continue;
      const std::ptrdiff_t a = window[edges[e].pos_a];
      const std::ptrdiff_t b = window[edges[e].pos_b];
      if (a < 0 || b < 0) continue;
      const int cap = cong_.edge_capacity(m, static_cast<std::size_t>(a),
                                          static_cast<std::size_t>(b));
      const int load = cong_.edge_load(m, static_cast<std::size_t>(a),
                                       static_cast<std::size_t>(b));
      out[FeatureSchema::edge_index(m, e, 0)] = static_cast<float>(cap);
      out[FeatureSchema::edge_index(m, e, 1)] = static_cast<float>(load);
      out[FeatureSchema::edge_index(m, e, 2)] = static_cast<float>(cap - load);
    }
  }

  // Block 3: via congestion per window cell and via layer.
  for (int v = 0; v < FeatureSchema::kViaLayers; ++v) {
    for (std::size_t p = 0; p < window.size(); ++p) {
      if (window[p] < 0) continue;
      const auto idx = static_cast<std::size_t>(window[p]);
      const int cap = cong_.via_capacity(v, idx);
      const int load = cong_.via_load(v, idx);
      out[FeatureSchema::via_index(v, p, 0)] = static_cast<float>(cap);
      out[FeatureSchema::via_index(v, p, 1)] = static_cast<float>(load);
      out[FeatureSchema::via_index(v, p, 2)] = static_cast<float>(cap - load);
    }
  }
}

std::vector<float> FeatureExtractor::extract(std::size_t cell) const {
  std::vector<float> out(FeatureSchema::kNumFeatures);
  extract_into(cell, out);
  return out;
}

std::vector<float> FeatureExtractor::extract_all(std::size_t n_threads) const {
  DRCSHAP_OBS_TIMER("features/extract");
  const std::size_t n = design_.grid().size();
  obs::counter_add("features/rows", n);
  std::vector<float> matrix(n * FeatureSchema::kNumFeatures);
  // Read-only over the design/congestion/aggregates; every cell writes only
  // its own row slot, so the parallel fill is byte-identical to serial.
  parallel_for_shared(
      n,
      [&](std::size_t cell) {
        extract_into(cell,
                     std::span<float>(
                         matrix.data() + cell * FeatureSchema::kNumFeatures,
                         FeatureSchema::kNumFeatures));
      },
      n_threads);
  return matrix;
}

}  // namespace drcshap
