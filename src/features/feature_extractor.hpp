#pragma once
// Extracts the 387 features of Section II-A for each g-cell: placement
// aggregates over the 3x3 window plus the (C, L, C-L) congestion triples for
// window border edges (per metal layer) and window cells (per via layer).
// Window positions outside the layout are blank-padded (all-zero), as the
// paper specifies for boundary g-cells.

#include <span>
#include <vector>

#include "drc/track_model.hpp"
#include "features/feature_names.hpp"
#include "netlist/design.hpp"
#include "route/congestion.hpp"

namespace drcshap {

class FeatureExtractor {
 public:
  /// Computes the per-g-cell aggregates itself.
  FeatureExtractor(const Design& design, const CongestionMap& congestion);

  /// Takes ownership of precomputed aggregates (must be
  /// compute_gcell_aggregates(design) of the same design) so callers that
  /// also feed the DRC oracle — the pipeline — compute them only once.
  FeatureExtractor(const Design& design, const CongestionMap& congestion,
                   std::vector<GCellAggregate> aggregates);

  /// Fills `out` (size must be FeatureSchema::kNumFeatures) with the feature
  /// vector of g-cell `cell`.
  void extract_into(std::size_t cell, std::span<float> out) const;

  /// Convenience allocating variant.
  std::vector<float> extract(std::size_t cell) const;

  /// Row-major matrix for all g-cells (size() x kNumFeatures). Cells are
  /// extracted in parallel on the shared pool (`n_threads` caps the
  /// workers; 0 = whole pool, 1 = serial inline); each cell writes only its
  /// own row, so the matrix is byte-identical at any thread count.
  std::vector<float> extract_all(std::size_t n_threads = 0) const;

  const Design& design() const { return design_; }

 private:
  const Design& design_;
  const CongestionMap& cong_;
  std::vector<GCellAggregate> agg_;
};

}  // namespace drcshap
