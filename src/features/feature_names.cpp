#include "features/feature_names.hpp"

#include <stdexcept>
#include <unordered_map>

namespace drcshap {

const std::array<const char*, FeatureSchema::kNumWindowPositions>&
FeatureSchema::position_names() {
  static const std::array<const char*, kNumWindowPositions> kNames = {
      "o", "N", "S", "E", "W", "NE", "NW", "SE", "SW"};
  return kNames;
}

const std::array<std::pair<int, int>, FeatureSchema::kNumWindowPositions>&
FeatureSchema::position_offsets() {
  // (dcol, drow); north = +row.
  static const std::array<std::pair<int, int>, kNumWindowPositions> kOffsets = {
      {{0, 0}, {0, 1}, {0, -1}, {1, 0}, {-1, 0},
       {1, 1}, {-1, 1}, {1, -1}, {-1, -1}}};
  return kOffsets;
}

const std::array<FeatureSchema::WindowEdge, FeatureSchema::kNumWindowEdges>&
FeatureSchema::window_edges() {
  // Position indices (see position_names): o=0 N=1 S=2 E=3 W=4 NE=5 NW=6
  // SE=7 SW=8. Numbering walks the window north to south (see header).
  static const std::array<WindowEdge, kNumWindowEdges> kEdges = {{
      {6, 1, true, "1H"},    // NW | N
      {1, 5, true, "2H"},    // N  | NE
      {4, 6, false, "3V"},   // W  - NW
      {0, 1, false, "4V"},   // o  - N
      {3, 5, false, "5V"},   // E  - NE
      {4, 0, true, "6H"},    // W  | o
      {0, 3, true, "7H"},    // o  | E
      {8, 4, false, "8V"},   // SW - W
      {2, 0, false, "9V"},   // S  - o
      {7, 3, false, "10V"},  // SE - E
      {8, 2, true, "11H"},   // SW | S
      {2, 7, true, "12H"},   // S  | SE
  }};
  return kEdges;
}

const std::vector<std::string>& FeatureSchema::names() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> out;
    out.reserve(kNumFeatures);
    static const char* kScalars[kScalarsPerPosition] = {
        "x",       "y",         "cells",   "pins",       "clkpins",
        "localnets", "localpins", "ndrpins", "pinspacing", "blkg",
        "cellarea"};
    for (std::size_t p = 0; p < kNumWindowPositions; ++p) {
      for (std::size_t s = 0; s < kScalarsPerPosition; ++s) {
        out.push_back(std::string(kScalars[s]) + "_" + position_names()[p]);
      }
    }
    static const char* kEdgeComponents[3] = {"ec", "el", "ed"};
    for (int m = 0; m < kMetalLayers; ++m) {
      for (std::size_t e = 0; e < kNumWindowEdges; ++e) {
        for (int comp = 0; comp < 3; ++comp) {
          out.push_back(std::string(kEdgeComponents[comp]) + "M" +
                        std::to_string(m + 1) + "_" + window_edges()[e].label);
        }
      }
    }
    static const char* kViaComponents[3] = {"vc", "vl", "vd"};
    for (int v = 0; v < kViaLayers; ++v) {
      for (std::size_t p = 0; p < kNumWindowPositions; ++p) {
        for (int comp = 0; comp < 3; ++comp) {
          out.push_back(std::string(kViaComponents[comp]) + "V" +
                        std::to_string(v + 1) + "_" + position_names()[p]);
        }
      }
    }
    if (out.size() != kNumFeatures) {
      throw std::logic_error("FeatureSchema: name count mismatch");
    }
    return out;
  }();
  return kNames;
}

std::size_t FeatureSchema::index_of(const std::string& name) {
  static const std::unordered_map<std::string, std::size_t> kIndex = [] {
    std::unordered_map<std::string, std::size_t> map;
    const auto& all = names();
    for (std::size_t i = 0; i < all.size(); ++i) map.emplace(all[i], i);
    return map;
  }();
  const auto it = kIndex.find(name);
  if (it == kIndex.end()) {
    throw std::out_of_range("FeatureSchema: unknown feature '" + name + "'");
  }
  return it->second;
}

std::size_t FeatureSchema::scalar_index(std::size_t position,
                                        std::size_t scalar) {
  if (position >= kNumWindowPositions || scalar >= kScalarsPerPosition) {
    throw std::out_of_range("FeatureSchema::scalar_index");
  }
  return position * kScalarsPerPosition + scalar;
}

std::size_t FeatureSchema::edge_index(int metal, std::size_t edge,
                                      int component) {
  if (metal < 0 || metal >= kMetalLayers || edge >= kNumWindowEdges ||
      component < 0 || component >= 3) {
    throw std::out_of_range("FeatureSchema::edge_index");
  }
  return kNumWindowPositions * kScalarsPerPosition +
         (static_cast<std::size_t>(metal) * kNumWindowEdges + edge) * 3 +
         static_cast<std::size_t>(component);
}

std::size_t FeatureSchema::via_index(int via_layer, std::size_t position,
                                     int component) {
  if (via_layer < 0 || via_layer >= kViaLayers ||
      position >= kNumWindowPositions || component < 0 || component >= 3) {
    throw std::out_of_range("FeatureSchema::via_index");
  }
  return kNumWindowPositions * kScalarsPerPosition +
         static_cast<std::size_t>(kMetalLayers) * kNumWindowEdges * 3 +
         (static_cast<std::size_t>(via_layer) * kNumWindowPositions + position) * 3 +
         static_cast<std::size_t>(component);
}

}  // namespace drcshap
