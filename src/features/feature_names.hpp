#pragma once
// The 387-feature schema of Section II-A and its naming convention
// (Fig. 3(d) style), shared by the extractor, the SHAP explanations, and the
// benches that print per-feature attributions.
//
// Layout of one sample (a g-cell expanded to its 3x3 window):
//
//  [0, 99)    9 window positions x 11 placement-derived scalars
//             positions, in order: o N S E W NE NW SE SW
//             scalars, in order:   x y cells pins clkpins localnets localpins
//                                  ndrpins pinspacing blkg cellarea
//             names: "<scalar>_<pos>", e.g. "pins_NE"
//
//  [99, 279)  5 metal layers x 12 window border edges x {c,l,d}
//             edge numbering (window drawn with north up):
//                 +----+----+----+          1H,2H   : top-row vertical borders
//                 | NW   1H  N   2H  NE |   3V..5V  : top/middle horizontal
//                 +-3V-+-4V-+-5V-+          6H,7H   : middle-row vertical
//                 | W    6H  o   7H  E  |   8V..10V : middle/bottom horizontal
//                 +-8V-+-9V-+-10V+          11H,12H : bottom-row vertical
//                 | SW  11H  S  12H  SE |
//                 +----+----+----+
//             suffix H = crossed by horizontal wires (layers M1/M3/M5),
//             suffix V = crossed by vertical wires (layers M2/M4).
//             names: "ec|el|ed" + "M<layer>_<edge>", e.g. "edM4_7H"
//             (ec = capacity C, el = load L, ed = margin C-L)
//
//  [279, 387) 4 via layers x 9 window positions x {c,l,d}
//             names: "vc|vl|vd" + "V<layer>_<pos>", e.g. "vlV2_E"
//
// Total: 99 + 180 + 108 = 387.

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace drcshap {

class FeatureSchema {
 public:
  static constexpr std::size_t kNumFeatures = 387;
  static constexpr std::size_t kNumWindowPositions = 9;
  static constexpr std::size_t kNumWindowEdges = 12;
  static constexpr std::size_t kScalarsPerPosition = 11;
  static constexpr int kMetalLayers = 5;
  static constexpr int kViaLayers = 4;

  /// Position labels in schema order.
  static const std::array<const char*, kNumWindowPositions>& position_names();

  /// (dcol, drow) offset of each window position relative to the center.
  static const std::array<std::pair<int, int>, kNumWindowPositions>&
  position_offsets();

  /// Window border edges: for edge i (0-based; label is i+1 with suffix),
  /// the two window positions it separates and whether horizontal wires
  /// cross it.
  struct WindowEdge {
    std::size_t pos_a;     ///< index into position_offsets()
    std::size_t pos_b;
    bool crossed_by_horizontal_wires;
    const char* label;     ///< e.g. "7H"
  };
  static const std::array<WindowEdge, kNumWindowEdges>& window_edges();

  /// All 387 names, in schema order.
  static const std::vector<std::string>& names();

  /// Index of a name; throws std::out_of_range for unknown names.
  static std::size_t index_of(const std::string& name);

  // Block offsets.
  static std::size_t scalar_index(std::size_t position, std::size_t scalar);
  static std::size_t edge_index(int metal, std::size_t edge, int component);
  static std::size_t via_index(int via_layer, std::size_t position,
                               int component);
};

}  // namespace drcshap
