#include "features/labeler.hpp"

namespace drcshap {

std::vector<std::uint8_t> hotspot_labels(
    const GCellGrid& grid, const std::vector<DrcViolation>& violations) {
  std::vector<std::uint8_t> labels(grid.size(), 0);
  for (const DrcViolation& v : violations) {
    for (const std::size_t cell : grid.cells_overlapping(v.box)) {
      labels[cell] = 1;
    }
  }
  return labels;
}

std::vector<DrcViolation> violations_in_gcell(
    const GCellGrid& grid, std::size_t cell,
    const std::vector<DrcViolation>& violations) {
  const Rect box = grid.cell_rect(cell);
  std::vector<DrcViolation> out;
  for (const DrcViolation& v : violations) {
    if (v.box.overlaps(box)) out.push_back(v);
  }
  return out;
}

}  // namespace drcshap
