#pragma once
// Label extraction: a g-cell is a DRC hotspot iff it overlaps any DRC error
// bounding box; a sample is positive iff its central g-cell is a hotspot.

#include <cstdint>
#include <vector>

#include "drc/drc_oracle.hpp"
#include "geom/geometry.hpp"

namespace drcshap {

/// Per-g-cell hotspot labels (1/0) from violation bounding boxes.
std::vector<std::uint8_t> hotspot_labels(const GCellGrid& grid,
                                         const std::vector<DrcViolation>& violations);

/// Violations whose bounding box overlaps the given g-cell (for the Fig. 3
/// style "actual DRC errors at this hotspot" listings).
std::vector<DrcViolation> violations_in_gcell(
    const GCellGrid& grid, std::size_t cell,
    const std::vector<DrcViolation>& violations);

}  // namespace drcshap
