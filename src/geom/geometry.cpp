#include "geom/geometry.hpp"

#include <ostream>

namespace drcshap {

double manhattan(const Point& a, const Point& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

Rect Rect::from_center(Point center, double width, double height) {
  return {center.x - width / 2.0, center.y - height / 2.0,
          center.x + width / 2.0, center.y + height / 2.0};
}

double Rect::intersection_area(const Rect& other) const {
  return intersect(other).area();
}

Rect Rect::intersect(const Rect& other) const {
  Rect r{std::max(x_lo, other.x_lo), std::max(y_lo, other.y_lo),
         std::min(x_hi, other.x_hi), std::min(y_hi, other.y_hi)};
  if (r.empty()) return {0.0, 0.0, 0.0, 0.0};
  return r;
}

Rect Rect::unite(const Rect& other) const {
  if (empty()) return other;
  if (other.empty()) return *this;
  return {std::min(x_lo, other.x_lo), std::min(y_lo, other.y_lo),
          std::max(x_hi, other.x_hi), std::max(y_hi, other.y_hi)};
}

Rect Rect::inflated(double margin) const {
  return {x_lo - margin, y_lo - margin, x_hi + margin, y_hi + margin};
}

std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << "(" << p.x << ", " << p.y << ")";
}

std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << "[" << r.x_lo << ", " << r.y_lo << " .. " << r.x_hi << ", "
            << r.y_hi << "]";
}

GCellGrid::GCellGrid(Rect die, std::size_t nx, std::size_t ny)
    : die_(die), nx_(nx), ny_(ny) {
  if (nx == 0 || ny == 0 || die.empty()) {
    throw std::invalid_argument("GCellGrid: degenerate grid");
  }
  cell_w_ = die.width() / static_cast<double>(nx);
  cell_h_ = die.height() / static_cast<double>(ny);
}

std::size_t GCellGrid::index(std::size_t col, std::size_t row) const {
  if (col >= nx_ || row >= ny_) throw std::out_of_range("GCellGrid::index");
  return row * nx_ + col;
}

std::size_t GCellGrid::locate(const Point& p) const {
  auto clamp_axis = [](double v, double lo, double step, std::size_t n) {
    const auto raw = static_cast<std::ptrdiff_t>((v - lo) / step);
    const auto hi = static_cast<std::ptrdiff_t>(n) - 1;
    return static_cast<std::size_t>(std::clamp<std::ptrdiff_t>(raw, 0, hi));
  };
  const std::size_t col = clamp_axis(p.x, die_.x_lo, cell_w_, nx_);
  const std::size_t row = clamp_axis(p.y, die_.y_lo, cell_h_, ny_);
  return index(col, row);
}

Rect GCellGrid::cell_rect(std::size_t idx) const {
  if (idx >= size()) throw std::out_of_range("GCellGrid::cell_rect");
  const std::size_t col = col_of(idx);
  const std::size_t row = row_of(idx);
  return {die_.x_lo + static_cast<double>(col) * cell_w_,
          die_.y_lo + static_cast<double>(row) * cell_h_,
          die_.x_lo + static_cast<double>(col + 1) * cell_w_,
          die_.y_lo + static_cast<double>(row + 1) * cell_h_};
}

std::vector<std::size_t> GCellGrid::cells_overlapping(const Rect& r) const {
  std::vector<std::size_t> out;
  const Rect clipped = r.intersect(die_);
  if (clipped.empty()) return out;
  const std::size_t c_lo = col_of(locate({clipped.x_lo, clipped.y_lo}));
  const std::size_t r_lo = row_of(locate({clipped.x_lo, clipped.y_lo}));
  // Nudge the high corner inward so a rect ending exactly on a boundary does
  // not claim the next cell.
  const double eps_x = cell_w_ * 1e-9;
  const double eps_y = cell_h_ * 1e-9;
  const std::size_t c_hi = col_of(locate({clipped.x_hi - eps_x, clipped.y_hi - eps_y}));
  const std::size_t r_hi = row_of(locate({clipped.x_hi - eps_x, clipped.y_hi - eps_y}));
  for (std::size_t row = r_lo; row <= r_hi; ++row) {
    for (std::size_t col = c_lo; col <= c_hi; ++col) {
      const std::size_t idx = index(col, row);
      if (cell_rect(idx).overlaps(r)) out.push_back(idx);
    }
  }
  return out;
}

}  // namespace drcshap
