#pragma once
// Planar geometry primitives for layout data. Coordinates are in microns
// (double), matching the layout sizes quoted in the paper's Table I.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <iosfwd>
#include <stdexcept>
#include <vector>

namespace drcshap {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point&, const Point&) = default;
};

/// L1 (Manhattan) distance; the pin-spacing feature uses this metric.
double manhattan(const Point& a, const Point& b);

/// Axis-aligned rectangle, [lo, hi) semantics on both axes.
struct Rect {
  double x_lo = 0.0;
  double y_lo = 0.0;
  double x_hi = 0.0;
  double y_hi = 0.0;

  static Rect from_center(Point center, double width, double height);

  double width() const { return x_hi - x_lo; }
  double height() const { return y_hi - y_lo; }
  double area() const { return std::max(0.0, width()) * std::max(0.0, height()); }
  Point center() const { return {(x_lo + x_hi) / 2.0, (y_lo + y_hi) / 2.0}; }
  bool empty() const { return x_hi <= x_lo || y_hi <= y_lo; }

  /// Closed containment on the low edge, open on the high edge.
  bool contains(const Point& p) const {
    return p.x >= x_lo && p.x < x_hi && p.y >= y_lo && p.y < y_hi;
  }
  /// True if `other` lies entirely within this rect (closed comparison).
  bool contains(const Rect& other) const {
    return other.x_lo >= x_lo && other.x_hi <= x_hi && other.y_lo >= y_lo &&
           other.y_hi <= y_hi;
  }
  /// Open-interval overlap: touching rectangles do not overlap.
  bool overlaps(const Rect& other) const {
    return x_lo < other.x_hi && other.x_lo < x_hi && y_lo < other.y_hi &&
           other.y_lo < y_hi;
  }

  /// Area of intersection (0 when disjoint).
  double intersection_area(const Rect& other) const;

  /// The intersection rect (possibly empty).
  Rect intersect(const Rect& other) const;

  /// Smallest rect covering both.
  Rect unite(const Rect& other) const;

  /// Rect inflated by `margin` on each side (may be negative to shrink).
  Rect inflated(double margin) const;

  friend bool operator==(const Rect&, const Rect&) = default;
};

std::ostream& operator<<(std::ostream& os, const Point& p);
std::ostream& operator<<(std::ostream& os, const Rect& r);

/// Uniform grid over a layout area: maps points/rects to g-cell indices.
/// G-cells are the unit of DRC-hotspot prediction throughout the library.
class GCellGrid {
 public:
  /// Divides `die` into nx-by-ny equal g-cells. Throws on degenerate input.
  GCellGrid(Rect die, std::size_t nx, std::size_t ny);

  const Rect& die() const { return die_; }
  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t size() const { return nx_ * ny_; }
  double cell_width() const { return cell_w_; }
  double cell_height() const { return cell_h_; }

  /// Row-major flat index of the g-cell at (col, row).
  std::size_t index(std::size_t col, std::size_t row) const;
  std::size_t col_of(std::size_t idx) const { return idx % nx_; }
  std::size_t row_of(std::size_t idx) const { return idx / nx_; }

  /// The g-cell containing `p` (points on/above the top/right die edge clamp
  /// to the last cell so boundary pins still land in the layout).
  std::size_t locate(const Point& p) const;

  /// Bounding rect of g-cell `idx`.
  Rect cell_rect(std::size_t idx) const;

  /// All g-cell indices whose rects overlap `r`.
  std::vector<std::size_t> cells_overlapping(const Rect& r) const;

  /// True if (col, row) lies inside the grid (signed, for window walks).
  bool in_bounds(std::ptrdiff_t col, std::ptrdiff_t row) const {
    return col >= 0 && row >= 0 && col < static_cast<std::ptrdiff_t>(nx_) &&
           row < static_cast<std::ptrdiff_t>(ny_);
  }

 private:
  Rect die_;
  std::size_t nx_;
  std::size_t ny_;
  double cell_w_;
  double cell_h_;
};

}  // namespace drcshap
