#pragma once
// Common interface for every binary classifier compared in Table II
// (RF, SVM-RBF, RUSBoost, NN-1, NN-2). Besides fit/predict it exposes the
// paper's model-complexity metrics: parameter count and the number of
// arithmetic operations one prediction costs.
//
// Models with multiple inference backends keep this interface engine-
// agnostic: the Random Forest serves predict_proba/predict_proba_all from
// whichever ForestEngine (exact FlatForest walk or compiled quantized
// layout — see core/forest_engine.hpp) is selected per call or via
// $DRCSHAP_FOREST_ENGINE, with byte-identical probabilities either way, so
// callers of this interface never observe which backend ran.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.hpp"

namespace drcshap {

class BinaryClassifier {
 public:
  virtual ~BinaryClassifier() = default;

  /// Train on the dataset (labels 0/1).
  virtual void fit(const Dataset& data) = 0;

  /// P(y = 1 | x). Must only be called after fit().
  virtual double predict_proba(std::span<const float> features) const = 0;

  /// Scores for every row (default: per-row loop; models may batch — the
  /// Random Forest overrides this with a thread-parallel engine, which is
  /// what cross-validation, grid search, and the Table II benches hit).
  virtual std::vector<double> predict_proba_all(const Dataset& data) const {
    std::vector<double> out(data.n_rows());
    for (std::size_t i = 0; i < data.n_rows(); ++i) {
      out[i] = predict_proba(data.row(i));
    }
    return out;
  }

  /// "# Model param." row of Table II.
  virtual std::size_t n_parameters() const = 0;

  /// "# Prediction op." row of Table II: arithmetic operations (compares,
  /// multiply-adds, activations) for one sample.
  virtual std::size_t prediction_ops() const = 0;

  virtual std::string name() const = 0;
};

}  // namespace drcshap
