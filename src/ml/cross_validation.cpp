#include "ml/cross_validation.hpp"

#include <cmath>
#include <stdexcept>

#include "ml/metrics.hpp"
#include "util/log.hpp"

namespace drcshap {

CrossValResult grouped_cross_validate(const ModelFactory& factory,
                                      const Dataset& data,
                                      std::span<const int> train_groups) {
  if (train_groups.size() < 2) {
    throw std::invalid_argument(
        "grouped_cross_validate: need >= 2 training groups");
  }
  CrossValResult result;
  double total = 0.0;
  std::size_t scored = 0;
  for (const int held_out : train_groups) {
    std::vector<int> fit_groups;
    for (const int g : train_groups) {
      if (g != held_out) fit_groups.push_back(g);
    }
    const std::vector<int> held{held_out};
    const Dataset train = data.subset(data.rows_in_groups(fit_groups));
    const Dataset valid = data.subset(data.rows_in_groups(held));
    if (valid.n_positives() == 0 || train.n_positives() == 0) {
      log_debug("CV fold (group ", held_out, ") skipped: one-class split");
      continue;
    }
    auto model = factory();
    model->fit(train);
    const std::vector<double> scores = model->predict_proba_all(valid);
    const double score = auprc(scores, valid.labels());
    if (std::isnan(score)) continue;
    result.fold_auprc.push_back(score);
    total += score;
    ++scored;
  }
  if (scored == 0) {
    throw std::runtime_error(
        "grouped_cross_validate: no fold had both classes");
  }
  result.mean_auprc = total / static_cast<double>(scored);
  return result;
}

}  // namespace drcshap
