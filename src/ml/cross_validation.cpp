#include "ml/cross_validation.hpp"

#include <cmath>
#include <stdexcept>

#include "ml/metrics.hpp"
#include "obs/registry.hpp"
#include "util/failpoint.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace drcshap {

CrossValResult grouped_cross_validate(const ModelFactory& factory,
                                      const Dataset& data,
                                      std::span<const int> train_groups,
                                      const CvControl& control,
                                      std::size_t n_threads) {
  if (train_groups.size() < 2) {
    throw std::invalid_argument(
        "grouped_cross_validate: need >= 2 training groups");
  }
  DRCSHAP_OBS_TIMER("cv/run");
  const CheckpointStore* ckpt =
      control.checkpoint && control.checkpoint->enabled() ? control.checkpoint
                                                          : nullptr;
  const auto fold_unit = [&](std::size_t f) {
    return control.unit_prefix + "fold-" + std::to_string(train_groups[f]);
  };

  // Folds fan out across the shared pool; each fold's fit/predict degrades
  // to serial inside its worker (nesting budget), and fold scores land in
  // per-fold slots aggregated below in train_groups order, so the result is
  // bit-identical to the serial loop at any thread count. Scores cross the
  // checkpoint as IEEE bit patterns, so a resumed fold is the computed fold.
  struct FoldOutcome {
    double score = 0.0;
    bool scored = false;
  };
  std::vector<FoldOutcome> folds(train_groups.size());
  std::vector<char> resumed(train_groups.size(), 0);
  if (ckpt) {
    for (std::size_t f = 0; f < train_groups.size(); ++f) {
      StatusOr<std::string> payload = ckpt->load(fold_unit(f));
      if (!payload.ok()) continue;
      FoldOutcome fold;
      if (decode_score(payload.value(), &fold.score, &fold.scored).ok()) {
        folds[f] = fold;
        resumed[f] = 1;
        obs::counter_add("ckpt/cv_folds_reused");
      }
    }
  }
  parallel_for_shared(
      train_groups.size(),
      [&](std::size_t f) {
        if (resumed[f]) return;
        DRCSHAP_OBS_TIMER("cv/fold");
        obs::counter_add("cv/folds");
        const int held_out = train_groups[f];
        DRCSHAP_FAILPOINT_KEYED("cv.fold", std::to_string(held_out));
        const auto commit = [&](const FoldOutcome& fold) {
          folds[f] = fold;
          if (ckpt) {
            throw_if_error(ckpt->store(
                fold_unit(f), encode_score(fold.score, fold.scored)));
          }
        };
        std::vector<int> fit_groups;
        for (const int g : train_groups) {
          if (g != held_out) fit_groups.push_back(g);
        }
        const std::vector<int> held{held_out};
        const Dataset train = data.subset(data.rows_in_groups(fit_groups));
        const Dataset valid = data.subset(data.rows_in_groups(held));
        if (valid.n_positives() == 0 || train.n_positives() == 0) {
          obs::counter_add("cv/folds_skipped");
          log_debug("CV fold (group ", held_out, ") skipped: one-class split");
          commit({0.0, false});
          return;
        }
        auto model = factory();
        model->fit(train);
        const std::vector<double> scores = model->predict_proba_all(valid);
        const double score = auprc(scores, valid.labels());
        if (std::isnan(score)) {
          commit({0.0, false});
          return;
        }
        commit({score, true});
      },
      n_threads, /*grain=*/1);

  CrossValResult result;
  double total = 0.0;
  std::size_t scored = 0;
  for (const FoldOutcome& fold : folds) {
    if (!fold.scored) continue;
    result.fold_auprc.push_back(fold.score);
    total += fold.score;
    ++scored;
  }
  if (scored == 0) {
    throw std::runtime_error(
        "grouped_cross_validate: no fold had both classes");
  }
  result.mean_auprc = total / static_cast<double>(scored);
  return result;
}

CrossValResult grouped_cross_validate(const ModelFactory& factory,
                                      const Dataset& data,
                                      std::span<const int> train_groups,
                                      std::size_t n_threads) {
  return grouped_cross_validate(factory, data, train_groups, CvControl{},
                                n_threads);
}

}  // namespace drcshap
