#pragma once
// Grouped cross-validation implementing the paper's protocol (Section II):
// designs are partitioned into groups; for a design under test, its whole
// group is held out, and hyper-parameters are chosen by leave-one-group-out
// CV over the remaining (training) groups, scored by AUPRC.

#include <functional>
#include <memory>

#include "ml/classifier.hpp"
#include "ml/dataset.hpp"

namespace drcshap {

/// Builds a fresh, untrained model.
using ModelFactory = std::function<std::unique_ptr<BinaryClassifier>()>;

struct CrossValResult {
  double mean_auprc = 0.0;
  std::vector<double> fold_auprc;  ///< one entry per validation group
};

/// Leave-one-group-out CV restricted to `train_groups`: for each group g in
/// train_groups, fit on the other groups' rows and score AUPRC on g's rows.
/// Folds whose validation split has no positive sample are skipped (their
/// AUPRC is undefined); at least one scorable fold is required.
CrossValResult grouped_cross_validate(const ModelFactory& factory,
                                      const Dataset& data,
                                      std::span<const int> train_groups);

}  // namespace drcshap
