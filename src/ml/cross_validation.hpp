#pragma once
// Grouped cross-validation implementing the paper's protocol (Section II):
// designs are partitioned into groups; for a design under test, its whole
// group is held out, and hyper-parameters are chosen by leave-one-group-out
// CV over the remaining (training) groups, scored by AUPRC.

#include <functional>
#include <memory>

#include "ml/classifier.hpp"
#include "ml/dataset.hpp"
#include "ml/experiment_state.hpp"

namespace drcshap {

/// Builds a fresh, untrained model. Folds may run concurrently, so the
/// factory must be callable from several threads at once (stateless or
/// read-only captures — every factory in this repo qualifies).
using ModelFactory = std::function<std::unique_ptr<BinaryClassifier>()>;

struct CrossValResult {
  double mean_auprc = 0.0;
  std::vector<double> fold_auprc;  ///< one entry per validation group
};

/// Leave-one-group-out CV restricted to `train_groups`: for each group g in
/// train_groups, fit on the other groups' rows and score AUPRC on g's rows.
/// Folds whose validation split has no positive sample are skipped (their
/// AUPRC is undefined); at least one scorable fold is required.
///
/// Robustness knobs for grouped_cross_validate.
struct CvControl {
  /// When set (and enabled), each finished fold's score is committed
  /// atomically as it completes (unit `<prefix>fold-<group>`), including
  /// "skipped: one-class split" outcomes, and a later run with the same
  /// config digest reuses committed folds bit-for-bit.
  const CheckpointStore* checkpoint = nullptr;
  /// Prepended to fold unit names — how the grid search keeps candidates'
  /// folds apart inside one checkpoint directory (e.g. "cand3-").
  std::string unit_prefix;
};

/// Folds run in parallel on the shared thread pool (`n_threads` caps the
/// workers; 0 = whole pool, 1 = serial) with each fold's model fit degraded
/// to serial inside its worker; fold scores are aggregated in train_groups
/// order, so fold_auprc and mean_auprc are bit-identical to the serial path
/// at any thread count.
CrossValResult grouped_cross_validate(const ModelFactory& factory,
                                      const Dataset& data,
                                      std::span<const int> train_groups,
                                      const CvControl& control,
                                      std::size_t n_threads = 0);

/// Convenience overload: no checkpointing.
CrossValResult grouped_cross_validate(const ModelFactory& factory,
                                      const Dataset& data,
                                      std::span<const int> train_groups,
                                      std::size_t n_threads = 0);

}  // namespace drcshap
