#include "ml/dataset.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "util/csv.hpp"

namespace drcshap {

Dataset::Dataset(std::size_t n_features,
                 std::vector<std::string> feature_names)
    : n_features_(n_features), feature_names_(std::move(feature_names)) {
  if (n_features_ == 0) throw std::invalid_argument("Dataset: 0 features");
  if (!feature_names_.empty() && feature_names_.size() != n_features_) {
    throw std::invalid_argument("Dataset: feature name count mismatch");
  }
}

std::size_t Dataset::n_positives() const {
  return static_cast<std::size_t>(std::count(y_.begin(), y_.end(), 1));
}

void Dataset::append_row(std::span<const float> features, int label,
                         int group) {
  if (features.size() != n_features_) {
    throw std::invalid_argument("Dataset::append_row: feature count mismatch");
  }
  x_.insert(x_.end(), features.begin(), features.end());
  y_.push_back(label ? 1 : 0);
  group_.push_back(group);
}

void Dataset::append(const Dataset& other) {
  if (other.n_features_ != n_features_) {
    throw std::invalid_argument("Dataset::append: schema mismatch");
  }
  x_.insert(x_.end(), other.x_.begin(), other.x_.end());
  y_.insert(y_.end(), other.y_.begin(), other.y_.end());
  group_.insert(group_.end(), other.group_.begin(), other.group_.end());
}

Dataset Dataset::subset(std::span<const std::size_t> rows) const {
  Dataset out(n_features_, feature_names_);
  out.x_.reserve(rows.size() * n_features_);
  out.y_.reserve(rows.size());
  out.group_.reserve(rows.size());
  for (const std::size_t r : rows) {
    if (r >= n_rows()) throw std::out_of_range("Dataset::subset");
    const auto row_span = row(r);
    out.x_.insert(out.x_.end(), row_span.begin(), row_span.end());
    out.y_.push_back(y_[r]);
    out.group_.push_back(group_[r]);
  }
  return out;
}

std::vector<std::size_t> Dataset::rows_in_groups(
    std::span<const int> groups) const {
  const std::set<int> wanted(groups.begin(), groups.end());
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < n_rows(); ++i) {
    if (wanted.count(group_[i])) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> Dataset::rows_not_in_groups(
    std::span<const int> groups) const {
  const std::set<int> excluded(groups.begin(), groups.end());
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < n_rows(); ++i) {
    if (!excluded.count(group_[i])) out.push_back(i);
  }
  return out;
}

std::vector<int> Dataset::distinct_groups() const {
  const std::set<int> distinct(group_.begin(), group_.end());
  return {distinct.begin(), distinct.end()};
}

void Dataset::save_csv(const std::string& path) const {
  CsvWriter writer(path);
  std::vector<std::string> header;
  header.reserve(n_features_ + 2);
  for (std::size_t f = 0; f < n_features_; ++f) {
    header.push_back(feature_names_.empty() ? "f" + std::to_string(f)
                                            : feature_names_[f]);
  }
  header.push_back("label");
  header.push_back("group");
  writer.write_row(header);
  std::vector<double> cells(n_features_ + 2);
  for (std::size_t i = 0; i < n_rows(); ++i) {
    const auto r = row(i);
    for (std::size_t f = 0; f < n_features_; ++f) cells[f] = r[f];
    cells[n_features_] = y_[i];
    cells[n_features_ + 1] = group_[i];
    writer.write_row_doubles(cells);
  }
  writer.close();  // commit atomically; throws instead of losing rows
}

Dataset Dataset::load_csv(const std::string& path) {
  const auto rows = csv_read_file(path);
  if (rows.size() < 1 || rows.front().size() < 3) {
    throw std::runtime_error("Dataset::load_csv: malformed file " + path);
  }
  const std::size_t n_features = rows.front().size() - 2;
  std::vector<std::string> names(rows.front().begin(), rows.front().end() - 2);
  Dataset out(n_features, std::move(names));
  std::vector<float> features(n_features);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto& cells = rows[i];
    if (cells.size() != n_features + 2) {
      throw std::runtime_error("Dataset::load_csv: ragged row");
    }
    for (std::size_t f = 0; f < n_features; ++f) {
      features[f] = std::stof(cells[f]);
    }
    out.append_row(features, std::stoi(cells[n_features]),
                   std::stoi(cells[n_features + 1]));
  }
  return out;
}

}  // namespace drcshap
