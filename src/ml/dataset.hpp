#pragma once
// Row-major dataset container for the supervised classification problem:
// one row per g-cell sample, 387 feature columns, binary hotspot label, and
// a group id (which design the row came from) used by the design-held-out
// evaluation protocol of Section II.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace drcshap {

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::size_t n_features,
                   std::vector<std::string> feature_names = {});

  std::size_t n_features() const { return n_features_; }
  std::size_t n_rows() const { return y_.size(); }
  std::size_t n_positives() const;

  std::span<const float> row(std::size_t i) const {
    return {x_.data() + i * n_features_, n_features_};
  }
  int label(std::size_t i) const { return y_[i]; }
  int group(std::size_t i) const { return group_[i]; }

  const std::vector<float>& features_flat() const { return x_; }
  const std::vector<std::uint8_t>& labels() const { return y_; }
  const std::vector<int>& groups() const { return group_; }
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }

  /// Appends one row (feature count must match).
  void append_row(std::span<const float> features, int label, int group = 0);

  /// Appends all rows of `other` (schemas must match).
  void append(const Dataset& other);

  /// New dataset with only the listed rows (in the given order).
  Dataset subset(std::span<const std::size_t> rows) const;

  /// Row indices whose group is in `groups`.
  std::vector<std::size_t> rows_in_groups(std::span<const int> groups) const;

  /// Row indices whose group is NOT in `groups`.
  std::vector<std::size_t> rows_not_in_groups(std::span<const int> groups) const;

  /// Distinct group ids, ascending.
  std::vector<int> distinct_groups() const;

  /// Writable access for in-place scaling.
  float* mutable_features() { return x_.data(); }

  void save_csv(const std::string& path) const;
  static Dataset load_csv(const std::string& path);

 private:
  std::size_t n_features_ = 0;
  std::vector<float> x_;
  std::vector<std::uint8_t> y_;
  std::vector<int> group_;
  std::vector<std::string> feature_names_;
};

}  // namespace drcshap
