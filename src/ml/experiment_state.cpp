#include "ml/experiment_state.hpp"

#include <cmath>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "util/failpoint.hpp"

namespace drcshap {

namespace {

constexpr std::string_view kCheckpointKind = "checkpoint";

bool unit_name_ok(std::string_view unit) {
  if (unit.empty()) return false;
  for (const char c : unit) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

CheckpointStore::CheckpointStore(std::string dir, std::uint64_t config_digest)
    : dir_(std::move(dir)), config_digest_(config_digest) {
  if (dir_.empty()) {
    throw std::invalid_argument("CheckpointStore: empty directory");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw ArtifactError({StatusCode::kIoError,
                         "CheckpointStore: cannot create " + dir_ + ": " +
                             ec.message()});
  }
}

CheckpointStore CheckpointStore::with_salt(std::string_view salt) const {
  if (!enabled()) return {};
  CheckpointStore out = *this;
  out.config_digest_ =
      DigestBuilder().add(config_digest_).add(salt).value();
  return out;
}

std::string CheckpointStore::unit_path(std::string_view unit) const {
  return dir_ + "/" + std::string(unit) + ".ckpt";
}

StatusOr<std::string> CheckpointStore::load(std::string_view unit) const {
  if (!enabled()) return Status(StatusCode::kNotFound, "checkpointing off");
  if (!unit_name_ok(unit)) {
    return Status(StatusCode::kInvalid,
                  "bad checkpoint unit name '" + std::string(unit) + "'");
  }
  StatusOr<std::string> framed = read_artifact(unit_path(unit), kCheckpointKind);
  if (!framed.ok()) return framed.status();
  const std::string& body = framed.value();
  // First line: "CONFIG <16-hex>\n" pinning the writer's config digest.
  const std::size_t eol = body.find('\n');
  if (eol == std::string::npos || body.compare(0, 7, "CONFIG ") != 0 ||
      eol != 7 + 16) {
    return Status(StatusCode::kCorrupt,
                  "checkpoint " + std::string(unit) + ": bad CONFIG line");
  }
  if (body.substr(7, 16) != digest_hex(config_digest_)) {
    return Status(StatusCode::kStaleConfig,
                  "checkpoint " + std::string(unit) +
                      " was written under a different config/seed digest");
  }
  return body.substr(eol + 1);
}

Status CheckpointStore::store(std::string_view unit,
                              std::string_view payload) const {
  if (!enabled()) return {};
  if (!unit_name_ok(unit)) {
    return {StatusCode::kInvalid,
            "bad checkpoint unit name '" + std::string(unit) + "'"};
  }
  DRCSHAP_FAILPOINT_KEYED("ckpt.store", unit);
  std::string body = "CONFIG " + digest_hex(config_digest_) + "\n";
  body.append(payload);
  const Status status =
      write_artifact_atomic(unit_path(unit), kCheckpointKind, body);
  if (status.ok()) DRCSHAP_FAILPOINT_KEYED("ckpt.committed", unit);
  return status;
}

// ------------------------------------------------- unit payload encodings

std::string encode_dataset_shard(const Dataset& samples) {
  std::string out = "SHARD " + std::to_string(samples.n_features()) + " " +
                    std::to_string(samples.n_rows()) + "\n";
  const auto& x = samples.features_flat();
  const auto& y = samples.labels();
  const auto& g = samples.groups();
  out.reserve(out.size() + x.size() * sizeof(float) + y.size() +
              g.size() * sizeof(std::int32_t));
  out.append(reinterpret_cast<const char*>(x.data()),
             x.size() * sizeof(float));
  out.append(reinterpret_cast<const char*>(y.data()), y.size());
  for (const int group : g) {
    const auto g32 = static_cast<std::int32_t>(group);
    out.append(reinterpret_cast<const char*>(&g32), sizeof(g32));
  }
  return out;
}

StatusOr<Dataset> decode_dataset_shard(std::string_view payload) {
  const auto corrupt = [](const std::string& why) {
    return Status(StatusCode::kCorrupt, "dataset shard: " + why);
  };
  const std::size_t eol = payload.find('\n');
  if (eol == std::string_view::npos) return corrupt("missing header");
  std::istringstream header{std::string(payload.substr(0, eol))};
  std::string tag;
  std::uint64_t n_features = 0, n_rows = 0;
  header >> tag >> n_features >> n_rows;
  if (!header || tag != "SHARD") return corrupt("bad header");
  if (n_features == 0 || n_features > (1u << 20)) {
    return corrupt("implausible feature count " + std::to_string(n_features));
  }
  const std::size_t body_size = payload.size() - eol - 1;
  const std::size_t per_row =
      n_features * sizeof(float) + 1 + sizeof(std::int32_t);
  // Bound n_rows before multiplying so a corrupt header cannot overflow the
  // size arithmetic (or drive a giant allocation below).
  if (n_rows > body_size / per_row + 1 || body_size != n_rows * per_row) {
    return corrupt("size mismatch: " + std::to_string(body_size) +
                   " body bytes for " + std::to_string(n_rows) + " rows");
  }
  const char* x_bytes = payload.data() + eol + 1;
  const char* y_bytes = x_bytes + n_rows * n_features * sizeof(float);
  const char* g_bytes = y_bytes + n_rows;

  Dataset out(n_features);
  std::vector<float> row(n_features);
  for (std::size_t r = 0; r < n_rows; ++r) {
    std::memcpy(row.data(), x_bytes + r * n_features * sizeof(float),
                n_features * sizeof(float));
    for (const float v : row) {
      if (!std::isfinite(v)) return corrupt("non-finite feature value");
    }
    const unsigned char label =
        static_cast<unsigned char>(y_bytes[r]);
    if (label > 1) return corrupt("label out of range");
    std::int32_t group = 0;
    std::memcpy(&group, g_bytes + r * sizeof(group), sizeof(group));
    out.append_row(row, label, group);
  }
  return out;
}

std::string encode_score(double score, bool scored) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(score));
  std::memcpy(&bits, &score, sizeof(bits));
  return "SCORE " + digest_hex(bits) + " " + (scored ? "1" : "0") + "\n";
}

Status decode_score(std::string_view payload, double* score, bool* scored) {
  std::istringstream in{std::string(payload)};
  std::string tag, hex;
  int scored_flag = -1;
  in >> tag >> hex >> scored_flag;
  if (!in || tag != "SCORE" || hex.size() != 16 ||
      (scored_flag != 0 && scored_flag != 1)) {
    return {StatusCode::kCorrupt, "score checkpoint: bad payload"};
  }
  std::uint64_t bits = 0;
  for (const char c : hex) {
    int digit = 0;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return {StatusCode::kCorrupt, "score checkpoint: bad hex digit"};
    }
    bits = (bits << 4) | static_cast<std::uint64_t>(digit);
  }
  std::memcpy(score, &bits, sizeof(bits));
  *scored = scored_flag == 1;
  if (*scored && std::isnan(*score)) {
    return {StatusCode::kCorrupt, "score checkpoint: NaN score"};
  }
  return {};
}

std::uint64_t dataset_digest(const Dataset& data) {
  DigestBuilder digest;
  digest.add(static_cast<std::uint64_t>(data.n_features()));
  const auto& x = data.features_flat();
  digest.add_bytes(x.data(), x.size() * sizeof(float));
  const auto& y = data.labels();
  digest.add_bytes(y.data(), y.size());
  const auto& g = data.groups();
  digest.add_bytes(g.data(), g.size() * sizeof(int));
  return digest.value();
}

}  // namespace drcshap
