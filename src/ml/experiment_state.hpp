#pragma once
// Checkpoint/resume for long experiments. The suite dataset build, the
// design-held-out CV and the hyper-parameter grid search are all loops over
// independent units of work (designs, folds, candidates); this layer commits
// each finished unit atomically (util/artifact) into a checkpoint directory
// keyed by a config+seed digest, so a run interrupted by OOM / disk-full /
// a crash resumes by revalidating and reusing the finished units and only
// recomputing the rest. Because every unit is bit-exact serialized (raw
// float/double bit patterns) and aggregation order is fixed by the loops
// themselves (slot-per-index, PRs 3-4), a resumed run is byte-identical to
// an uninterrupted one at any thread count.
//
// Layout: one file per unit, `<dir>/<unit>.ckpt`, each an artifact-framed
// payload whose first line pins the store's config digest. A unit whose
// file is missing, torn, checksum-invalid or from a different config is
// simply recomputed — corruption can cost time, never correctness.

#include <cstdint>
#include <string>
#include <string_view>

#include "ml/dataset.hpp"
#include "util/artifact.hpp"

namespace drcshap {

class CheckpointStore {
 public:
  /// Disabled store: enabled() == false, loads miss, stores no-op.
  CheckpointStore() = default;

  /// Checkpoints live in `dir` (created if missing) and are only reused by
  /// stores carrying the same `config_digest` — fold every option, seed and
  /// input that affects the unit's bytes into the digest (DigestBuilder).
  CheckpointStore(std::string dir, std::uint64_t config_digest);

  bool enabled() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }
  std::uint64_t config_digest() const { return config_digest_; }

  /// Same directory, digest extended with `salt` — how the grid search
  /// separates per-candidate fold checkpoints without new directories.
  CheckpointStore with_salt(std::string_view salt) const;

  /// Loads a committed unit. kNotFound when absent or the store is
  /// disabled, kCorrupt on a damaged artifact, kStaleConfig when the unit
  /// was written under a different config digest.
  StatusOr<std::string> load(std::string_view unit) const;

  /// Commits a unit atomically. No reader (including a concurrent resume)
  /// can ever observe a torn unit. No-op ok() when the store is disabled.
  Status store(std::string_view unit, std::string_view payload) const;

  /// Path of a unit's artifact file (tests / diagnostics).
  std::string unit_path(std::string_view unit) const;

 private:
  std::string dir_;
  std::uint64_t config_digest_ = 0;
};

// ------------------------------------------------- unit payload encodings

/// Bit-exact Dataset shard: feature floats, labels and group ids as raw
/// bytes (host-endian — checkpoints resume on the machine that wrote them).
std::string encode_dataset_shard(const Dataset& samples);
StatusOr<Dataset> decode_dataset_shard(std::string_view payload);

/// One CV fold / grid candidate score. `scored == false` records a fold
/// skipped for a one-class split, so resume skips it too instead of
/// recomputing. The double crosses the file as its IEEE bit pattern:
/// resume must reproduce scores bit-for-bit, not to-17-digits.
std::string encode_score(double score, bool scored);
Status decode_score(std::string_view payload, double* score, bool* scored);

/// Content digest of a dataset (features + labels + groups), for config
/// digests that key CV/grid checkpoints to their training data.
std::uint64_t dataset_digest(const Dataset& data);

}  // namespace drcshap
