#include "ml/grid_search.hpp"

#include <sstream>
#include <stdexcept>

#include "util/log.hpp"

namespace drcshap {

std::vector<ParamSet> expand_grid(
    const std::map<std::string, std::vector<double>>& grid) {
  std::vector<ParamSet> out = {ParamSet{}};
  for (const auto& [name, values] : grid) {
    if (values.empty()) {
      throw std::invalid_argument("expand_grid: empty candidate list for " +
                                  name);
    }
    std::vector<ParamSet> next;
    next.reserve(out.size() * values.size());
    for (const ParamSet& base : out) {
      for (const double v : values) {
        ParamSet p = base;
        p[name] = v;
        next.push_back(std::move(p));
      }
    }
    out = std::move(next);
  }
  return out;
}

GridSearchResult grid_search(
    const ParamModelFactory& factory, const Dataset& data,
    std::span<const int> train_groups,
    const std::map<std::string, std::vector<double>>& grid) {
  GridSearchResult result;
  bool first = true;
  for (const ParamSet& params : expand_grid(grid)) {
    const CrossValResult cv = grouped_cross_validate(
        [&] { return factory(params); }, data, train_groups);
    log_debug("grid point ", to_string(params), " -> AUPRC ", cv.mean_auprc);
    result.evaluations.emplace_back(params, cv.mean_auprc);
    if (first || cv.mean_auprc > result.best_score) {
      result.best_score = cv.mean_auprc;
      result.best_params = params;
      first = false;
    }
  }
  return result;
}

std::string to_string(const ParamSet& params) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [name, value] : params) {
    if (!first) os << ", ";
    os << name << "=" << value;
    first = false;
  }
  os << "}";
  return os.str();
}

}  // namespace drcshap
