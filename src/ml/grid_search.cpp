#include "ml/grid_search.hpp"

#include <sstream>
#include <stdexcept>

#include "obs/registry.hpp"
#include "util/failpoint.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace drcshap {

std::vector<ParamSet> expand_grid(
    const std::map<std::string, std::vector<double>>& grid) {
  std::vector<ParamSet> out = {ParamSet{}};
  for (const auto& [name, values] : grid) {
    if (values.empty()) {
      throw std::invalid_argument("expand_grid: empty candidate list for " +
                                  name);
    }
    std::vector<ParamSet> next;
    next.reserve(out.size() * values.size());
    for (const ParamSet& base : out) {
      for (const double v : values) {
        ParamSet p = base;
        p[name] = v;
        next.push_back(std::move(p));
      }
    }
    out = std::move(next);
  }
  return out;
}

GridSearchResult grid_search(
    const ParamModelFactory& factory, const Dataset& data,
    std::span<const int> train_groups,
    const std::map<std::string, std::vector<double>>& grid,
    std::size_t n_threads, const CheckpointStore* checkpoint) {
  DRCSHAP_OBS_TIMER("grid/run");
  const std::vector<ParamSet> candidates = expand_grid(grid);
  const CheckpointStore* ckpt =
      checkpoint && checkpoint->enabled() ? checkpoint : nullptr;
  // Per-candidate stores share the directory but salt the digest with the
  // candidate's parameters, so fold checkpoints can never leak between
  // hyper-parameter points; unit names carry the grid index to keep the
  // files apart.
  std::vector<CheckpointStore> cand_stores;
  if (ckpt) {
    cand_stores.reserve(candidates.size());
    for (const ParamSet& params : candidates) {
      cand_stores.push_back(ckpt->with_salt(to_string(params)));
    }
  }
  const auto cand_unit = [](std::size_t c) {
    return "cand" + std::to_string(c) + "-score";
  };

  // Candidates fan out across the shared pool; the CV inside each candidate
  // degrades to serial folds on its worker (nesting budget). Scores land in
  // per-candidate slots and the winner is picked by a strict-improvement
  // scan in grid order below, so best_params/best_score match the serial
  // loop bit for bit at any thread count.
  std::vector<double> scores(candidates.size(), 0.0);
  std::vector<char> resumed(candidates.size(), 0);
  if (ckpt) {
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      StatusOr<std::string> payload = cand_stores[c].load(cand_unit(c));
      if (!payload.ok()) continue;
      double score = 0.0;
      bool scored = false;
      if (decode_score(payload.value(), &score, &scored).ok() && scored) {
        scores[c] = score;
        resumed[c] = 1;
        obs::counter_add("ckpt/grid_candidates_reused");
      }
    }
  }
  parallel_for_shared(
      candidates.size(),
      [&](std::size_t c) {
        if (resumed[c]) return;
        DRCSHAP_OBS_TIMER("grid/candidate");
        obs::counter_add("grid/candidates");
        DRCSHAP_FAILPOINT_KEYED("grid.candidate", std::to_string(c));
        CvControl cv_control;
        if (ckpt) {
          cv_control.checkpoint = &cand_stores[c];
          cv_control.unit_prefix = "cand" + std::to_string(c) + "-";
        }
        // The worker cap is passed through so n_threads bounds the whole
        // search subtree (folds included), not just the candidate loop.
        scores[c] =
            grouped_cross_validate([&] { return factory(candidates[c]); },
                                   data, train_groups, cv_control, n_threads)
                .mean_auprc;
        if (ckpt) {
          throw_if_error(cand_stores[c].store(
              cand_unit(c), encode_score(scores[c], true)));
        }
        log_debug("grid candidate ", c + 1, "/", candidates.size(),
                  " finished");
      },
      n_threads, /*grain=*/1);

  GridSearchResult result;
  result.evaluations.reserve(candidates.size());
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    // One line per candidate, emitted in grid order regardless of which
    // worker finished first, so logs stay deterministic under parallelism.
    log_info("grid [", c + 1, "/", candidates.size(), "] ",
             to_string(candidates[c]), " -> mean AUPRC ", scores[c]);
    result.evaluations.emplace_back(candidates[c], scores[c]);
    if (c == 0 || scores[c] > result.best_score) {
      result.best_score = scores[c];
      result.best_params = candidates[c];
    }
  }
  return result;
}

std::string to_string(const ParamSet& params) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [name, value] : params) {
    if (!first) os << ", ";
    os << name << "=" << value;
    first = false;
  }
  os << "}";
  return os.str();
}

}  // namespace drcshap
