#pragma once
// Hyper-parameter grid search over grouped cross-validation, maximizing
// AUPRC (the tuning criterion the paper states in Section III-B).

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ml/cross_validation.hpp"

namespace drcshap {

/// One hyper-parameter assignment.
using ParamSet = std::map<std::string, double>;

/// Builds a fresh model for the given hyper-parameters.
using ParamModelFactory =
    std::function<std::unique_ptr<BinaryClassifier>(const ParamSet&)>;

/// Cartesian product of per-parameter candidate lists.
std::vector<ParamSet> expand_grid(
    const std::map<std::string, std::vector<double>>& grid);

struct GridSearchResult {
  ParamSet best_params;
  double best_score = 0.0;
  /// (params, mean CV AUPRC) for every evaluated point, in grid order.
  std::vector<std::pair<ParamSet, double>> evaluations;
};

/// Evaluates every grid point with grouped CV on `train_groups` and returns
/// the best (ties: first in grid order). Candidates run in parallel on the
/// shared thread pool; `n_threads` caps the workers for the whole search
/// subtree — it is passed through to each candidate's cross-validation —
/// (0 = whole pool, 1 = fully serial).
/// Evaluations, logging and the winner are produced in grid order,
/// so results are bit-identical to the serial path at any thread count. The
/// factory must be callable concurrently (see ModelFactory).
///
/// When `checkpoint` is set (and enabled), each candidate's mean score —
/// and, one level down, each of its CV folds — is committed atomically as
/// it completes under a digest salted with the candidate's parameters, so
/// an interrupted search resumes mid-candidate and reproduces the
/// uninterrupted result bit for bit.
GridSearchResult grid_search(
    const ParamModelFactory& factory, const Dataset& data,
    std::span<const int> train_groups,
    const std::map<std::string, std::vector<double>>& grid,
    std::size_t n_threads = 0, const CheckpointStore* checkpoint = nullptr);

/// Formats a ParamSet like "{trees=150, mtry=20}" for logs and reports.
std::string to_string(const ParamSet& params);

}  // namespace drcshap
