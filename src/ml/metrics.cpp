#include "ml/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace drcshap {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

void check_sizes(std::span<const double> scores,
                 std::span<const std::uint8_t> labels) {
  if (scores.size() != labels.size() || scores.empty()) {
    throw std::invalid_argument("metrics: scores/labels size mismatch");
  }
}

/// Cumulative (tp, fp) after each distinct-score group in descending order,
/// plus total positives/negatives.
struct Sweep {
  std::vector<std::size_t> tp;   // after group i
  std::vector<std::size_t> fp;
  std::vector<double> threshold; // group score
  std::size_t pos = 0;
  std::size_t neg = 0;
};

Sweep sweep_thresholds(std::span<const double> scores,
                       std::span<const std::uint8_t> labels) {
  check_sizes(scores, labels);
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });
  Sweep s;
  for (const std::uint8_t l : labels) {
    if (l) {
      ++s.pos;
    } else {
      ++s.neg;
    }
  }
  std::size_t tp = 0, fp = 0;
  std::size_t i = 0;
  while (i < order.size()) {
    const double score = scores[order[i]];
    while (i < order.size() && scores[order[i]] == score) {
      if (labels[order[i]]) {
        ++tp;
      } else {
        ++fp;
      }
      ++i;
    }
    s.tp.push_back(tp);
    s.fp.push_back(fp);
    s.threshold.push_back(score);
  }
  return s;
}

}  // namespace

double ConfusionCounts::tpr() const {
  return tp + fn == 0 ? kNaN : static_cast<double>(tp) / static_cast<double>(tp + fn);
}
double ConfusionCounts::fpr() const {
  return tn + fp == 0 ? kNaN : static_cast<double>(fp) / static_cast<double>(tn + fp);
}
double ConfusionCounts::precision() const {
  return tp + fp == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(tp + fp);
}
double ConfusionCounts::accuracy() const {
  const std::size_t total = tp + fp + tn + fn;
  return total == 0 ? kNaN : static_cast<double>(tp + tn) / static_cast<double>(total);
}

ConfusionCounts confusion_at_threshold(std::span<const double> scores,
                                       std::span<const std::uint8_t> labels,
                                       double threshold) {
  check_sizes(scores, labels);
  ConfusionCounts c;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const bool predicted = scores[i] >= threshold;
    if (predicted && labels[i]) ++c.tp;
    if (predicted && !labels[i]) ++c.fp;
    if (!predicted && labels[i]) ++c.fn;
    if (!predicted && !labels[i]) ++c.tn;
  }
  return c;
}

std::vector<RocPoint> roc_curve(std::span<const double> scores,
                                std::span<const std::uint8_t> labels) {
  const Sweep s = sweep_thresholds(scores, labels);
  if (s.pos == 0 || s.neg == 0) {
    throw std::invalid_argument("roc_curve: needs both classes");
  }
  std::vector<RocPoint> out;
  out.reserve(s.tp.size() + 1);
  out.push_back({0.0, 0.0, std::numeric_limits<double>::infinity()});
  for (std::size_t i = 0; i < s.tp.size(); ++i) {
    out.push_back({static_cast<double>(s.fp[i]) / static_cast<double>(s.neg),
                   static_cast<double>(s.tp[i]) / static_cast<double>(s.pos),
                   s.threshold[i]});
  }
  return out;
}

std::vector<PrPoint> pr_curve(std::span<const double> scores,
                              std::span<const std::uint8_t> labels) {
  const Sweep s = sweep_thresholds(scores, labels);
  if (s.pos == 0) throw std::invalid_argument("pr_curve: no positives");
  std::vector<PrPoint> out;
  out.reserve(s.tp.size());
  for (std::size_t i = 0; i < s.tp.size(); ++i) {
    const std::size_t predicted = s.tp[i] + s.fp[i];
    out.push_back({static_cast<double>(s.tp[i]) / static_cast<double>(s.pos),
                   predicted == 0 ? 1.0
                                  : static_cast<double>(s.tp[i]) /
                                        static_cast<double>(predicted),
                   s.threshold[i]});
  }
  return out;
}

double auroc(std::span<const double> scores,
             std::span<const std::uint8_t> labels) {
  const Sweep s = sweep_thresholds(scores, labels);
  if (s.pos == 0 || s.neg == 0) return kNaN;
  double area = 0.0;
  double prev_fpr = 0.0, prev_tpr = 0.0;
  for (std::size_t i = 0; i < s.tp.size(); ++i) {
    const double fpr = static_cast<double>(s.fp[i]) / static_cast<double>(s.neg);
    const double tpr = static_cast<double>(s.tp[i]) / static_cast<double>(s.pos);
    area += (fpr - prev_fpr) * (tpr + prev_tpr) / 2.0;
    prev_fpr = fpr;
    prev_tpr = tpr;
  }
  return area;
}

double auprc(std::span<const double> scores,
             std::span<const std::uint8_t> labels) {
  const Sweep s = sweep_thresholds(scores, labels);
  if (s.pos == 0) return kNaN;
  double area = 0.0;
  double prev_recall = 0.0;
  for (std::size_t i = 0; i < s.tp.size(); ++i) {
    const double recall =
        static_cast<double>(s.tp[i]) / static_cast<double>(s.pos);
    const std::size_t predicted = s.tp[i] + s.fp[i];
    const double precision =
        predicted == 0 ? 1.0
                       : static_cast<double>(s.tp[i]) /
                             static_cast<double>(predicted);
    area += (recall - prev_recall) * precision;
    prev_recall = recall;
  }
  return area;
}

OperatingPoint operating_point_at_fpr(std::span<const double> scores,
                                      std::span<const std::uint8_t> labels,
                                      double max_fpr) {
  const Sweep s = sweep_thresholds(scores, labels);
  if (s.pos == 0 || s.neg == 0) {
    return {kNaN, kNaN, kNaN, kNaN};
  }
  OperatingPoint best{0.0, 0.0, 0.0,
                      std::numeric_limits<double>::infinity()};
  for (std::size_t i = 0; i < s.tp.size(); ++i) {
    const double fpr = static_cast<double>(s.fp[i]) / static_cast<double>(s.neg);
    if (fpr > max_fpr) break;  // fpr is nondecreasing along the sweep
    const double tpr = static_cast<double>(s.tp[i]) / static_cast<double>(s.pos);
    const std::size_t predicted = s.tp[i] + s.fp[i];
    best = {tpr,
            predicted == 0 ? 0.0
                           : static_cast<double>(s.tp[i]) /
                                 static_cast<double>(predicted),
            fpr, s.threshold[i]};
  }
  return best;
}

}  // namespace drcshap
