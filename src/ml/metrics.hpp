#pragma once
// Evaluation metrics of Section III-B: ROC and precision-recall curves, the
// areas under them, and the operating point at a fixed false-positive rate
// (the paper reports TPR* and Prec* at FPR = 0.5%).

#include <cstdint>
#include <span>
#include <vector>

namespace drcshap {

struct ConfusionCounts {
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t tn = 0;
  std::size_t fn = 0;

  double tpr() const;        ///< recall, TP / (TP + FN)
  double fpr() const;        ///< FP / (TN + FP)
  double precision() const;  ///< TP / (TP + FP)
  double accuracy() const;
};

/// Counts at a fixed decision threshold (score >= threshold => positive).
ConfusionCounts confusion_at_threshold(std::span<const double> scores,
                                       std::span<const std::uint8_t> labels,
                                       double threshold);

struct RocPoint {
  double fpr = 0.0;
  double tpr = 0.0;
  double threshold = 0.0;
};

struct PrPoint {
  double recall = 0.0;
  double precision = 0.0;
  double threshold = 0.0;
};

/// ROC points from a descending threshold sweep (ties grouped), starting at
/// (0,0) and ending at (1,1). Requires at least one positive and one
/// negative label.
std::vector<RocPoint> roc_curve(std::span<const double> scores,
                                std::span<const std::uint8_t> labels);

/// Precision-recall points from the same sweep. Requires >= 1 positive.
std::vector<PrPoint> pr_curve(std::span<const double> scores,
                              std::span<const std::uint8_t> labels);

/// Area under the ROC curve (trapezoidal). NaN if labels are one-class.
double auroc(std::span<const double> scores,
             std::span<const std::uint8_t> labels);

/// Area under the precision-recall curve, computed as average precision
/// (sum over the sweep of (R_i - R_{i-1}) * P_i), the standard estimator
/// consistent with Davis & Goadrich. NaN if there are no positives.
double auprc(std::span<const double> scores,
             std::span<const std::uint8_t> labels);

struct OperatingPoint {
  double tpr = 0.0;        ///< TPR* in the paper
  double precision = 0.0;  ///< Prec*
  double fpr = 0.0;        ///< achieved FPR (<= requested)
  double threshold = 0.0;
};

/// The operating point with maximum TPR subject to FPR <= max_fpr
/// (threshold sweep with score ties grouped). The paper uses max_fpr=0.005.
OperatingPoint operating_point_at_fpr(std::span<const double> scores,
                                      std::span<const std::uint8_t> labels,
                                      double max_fpr = 0.005);

}  // namespace drcshap
