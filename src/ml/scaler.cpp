#include "ml/scaler.hpp"

#include <cmath>
#include <stdexcept>

namespace drcshap {

void StandardScaler::fit(const Dataset& data) {
  if (data.n_rows() == 0) throw std::invalid_argument("StandardScaler: empty");
  const std::size_t nf = data.n_features();
  mean_.assign(nf, 0.0);
  stddev_.assign(nf, 0.0);
  for (std::size_t i = 0; i < data.n_rows(); ++i) {
    const auto row = data.row(i);
    for (std::size_t f = 0; f < nf; ++f) mean_[f] += row[f];
  }
  for (auto& m : mean_) m /= static_cast<double>(data.n_rows());
  for (std::size_t i = 0; i < data.n_rows(); ++i) {
    const auto row = data.row(i);
    for (std::size_t f = 0; f < nf; ++f) {
      const double d = row[f] - mean_[f];
      stddev_[f] += d * d;
    }
  }
  for (auto& s : stddev_) {
    s = std::sqrt(s / static_cast<double>(data.n_rows()));
    if (s < 1e-12) s = 1.0;  // constant feature
  }
}

void StandardScaler::transform_row(std::span<float> row) const {
  if (row.size() != mean_.size()) {
    throw std::invalid_argument("StandardScaler: row size mismatch");
  }
  for (std::size_t f = 0; f < row.size(); ++f) {
    row[f] = static_cast<float>((row[f] - mean_[f]) / stddev_[f]);
  }
}

void StandardScaler::transform(Dataset& data) const {
  if (data.n_features() != mean_.size()) {
    throw std::invalid_argument("StandardScaler: dataset size mismatch");
  }
  float* x = data.mutable_features();
  for (std::size_t i = 0; i < data.n_rows(); ++i) {
    transform_row({x + i * data.n_features(), data.n_features()});
  }
}

void StandardScaler::fit_transform(Dataset& data) {
  fit(data);
  transform(data);
}

}  // namespace drcshap
