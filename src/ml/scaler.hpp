#pragma once
// Per-feature standardization (zero mean, unit variance). The optimization-
// based baselines (SVM-RBF, NNs) need scaled inputs; trees are scale
// invariant, but the paper feeds all models "the 387 normalized features",
// so the benches scale once and share the result.

#include <span>
#include <vector>

#include "ml/dataset.hpp"

namespace drcshap {

class StandardScaler {
 public:
  /// Learn per-feature mean and standard deviation. Constant features get
  /// scale 1 (they transform to 0).
  void fit(const Dataset& data);

  /// Transform one row in place.
  void transform_row(std::span<float> row) const;

  /// Transform a whole dataset in place.
  void transform(Dataset& data) const;

  /// fit + transform.
  void fit_transform(Dataset& data);

  bool fitted() const { return !mean_.empty(); }
  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& stddev() const { return stddev_; }

 private:
  std::vector<double> mean_;
  std::vector<double> stddev_;
};

}  // namespace drcshap
