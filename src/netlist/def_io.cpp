#include "netlist/def_io.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "util/artifact.hpp"
#include "util/failpoint.hpp"

namespace drcshap {

namespace {

constexpr std::string_view kDefKind = "def-lite";

// Structural caps so a corrupt header fails with a typed error instead of
// driving a giant allocation (the g-cell grid is sized nx*ny up front).
constexpr std::size_t kMaxGridDim = 1u << 16;
constexpr std::size_t kMaxGridCells = 1u << 26;
constexpr int kMaxMetalLayers = 64;

[[noreturn]] void fail_corrupt(const std::string& why) {
  throw ArtifactError({StatusCode::kCorrupt, "def-lite: " + why});
}

void check_finite(double v, const char* what) {
  if (!std::isfinite(v)) {
    fail_corrupt(std::string("non-finite ") + what);
  }
}

void check_finite_rect(const Rect& r, const char* what) {
  check_finite(r.x_lo, what);
  check_finite(r.y_lo, what);
  check_finite(r.x_hi, what);
  check_finite(r.y_hi, what);
}

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

std::string read_quoted(std::istream& is) {
  char c = 0;
  is >> c;
  if (c != '"') fail_corrupt("expected quoted string");
  std::string out;
  while (is.get(c)) {
    if (c == '\\') {
      if (!is.get(c)) break;
      out += c;
    } else if (c == '"') {
      return out;
    } else {
      out += c;
    }
  }
  fail_corrupt("unterminated string");
}

void expect(std::istream& is, const std::string& keyword) {
  std::string tok;
  is >> tok;
  if (tok != keyword) {
    fail_corrupt("expected '" + keyword + "', got '" + tok + "'");
  }
}

}  // namespace

void write_def_lite(const Design& d, std::ostream& os) {
  os << std::setprecision(17);
  os << "DESIGN " << quote(d.name()) << "\n";
  os << "DIE " << d.die().x_lo << " " << d.die().y_lo << " " << d.die().x_hi
     << " " << d.die().y_hi << "\n";
  os << "GRID " << d.grid().nx() << " " << d.grid().ny() << "\n";
  const Technology& t = d.tech();
  os << "TECH " << t.num_metal_layers;
  for (const int v : t.tracks_per_gcell) os << " " << v;
  for (const int v : t.vias_per_gcell) os << " " << v;
  os << "\n";
  os << "MACROS " << d.num_macros() << "\n";
  for (const Macro& m : d.macros()) {
    os << "  MACRO " << quote(m.name) << " " << m.box.x_lo << " " << m.box.y_lo
       << " " << m.box.x_hi << " " << m.box.y_hi << " "
       << m.blocked_metal_layers << "\n";
  }
  os << "CELLS " << d.num_cells() << "\n";
  for (const Cell& c : d.cells()) {
    os << "  CELL " << quote(c.name) << " " << c.box.x_lo << " " << c.box.y_lo
       << " " << c.box.x_hi << " " << c.box.y_hi << " "
       << (c.is_multi_height ? 1 : 0) << "\n";
  }
  os << "NETS " << d.num_nets() << "\n";
  for (const Net& n : d.nets()) {
    os << "  NET " << quote(n.name) << " " << (n.is_clock ? 1 : 0) << " "
       << (n.has_ndr ? 1 : 0) << "\n";
  }
  os << "PINS " << d.num_pins() << "\n";
  for (const Pin& p : d.pins()) {
    os << "  PIN " << (p.cell == kInvalidId ? -1 : static_cast<long long>(p.cell))
       << " " << p.net << " " << p.position.x << " " << p.position.y << " "
       << (p.is_clock ? 1 : 0) << " " << (p.has_ndr ? 1 : 0) << "\n";
  }
  os << "BLOCKAGES " << d.blockages().size() << "\n";
  for (const Blockage& b : d.blockages()) {
    os << "  BLOCKAGE " << b.box.x_lo << " " << b.box.y_lo << " " << b.box.x_hi
       << " " << b.box.y_hi << " " << b.metal_lo << " " << b.metal_hi << "\n";
  }
  os << "END\n";
}

void write_def_lite_file(const Design& design, const std::string& path) {
  DRCSHAP_FAILPOINT("def_io.write");
  std::ostringstream payload;
  write_def_lite(design, payload);
  throw_if_error(
      write_artifact_atomic(path, kDefKind, std::move(payload).str()));
}

Design read_def_lite(std::istream& is) {
  expect(is, "DESIGN");
  const std::string name = read_quoted(is);
  expect(is, "DIE");
  Rect die;
  is >> die.x_lo >> die.y_lo >> die.x_hi >> die.y_hi;
  if (!is) fail_corrupt("bad DIE line");
  check_finite_rect(die, "die coordinate");
  if (die.x_hi <= die.x_lo || die.y_hi <= die.y_lo) {
    fail_corrupt("empty/inverted die box");
  }
  expect(is, "GRID");
  std::size_t nx = 0, ny = 0;
  is >> nx >> ny;
  if (!is || nx == 0 || ny == 0 || nx > kMaxGridDim || ny > kMaxGridDim ||
      nx * ny > kMaxGridCells) {
    fail_corrupt("implausible g-cell grid " + std::to_string(nx) + "x" +
                 std::to_string(ny));
  }
  expect(is, "TECH");
  Technology tech;
  is >> tech.num_metal_layers;
  if (!is || tech.num_metal_layers < 1 ||
      tech.num_metal_layers > kMaxMetalLayers) {
    fail_corrupt("implausible metal layer count");
  }
  tech.tracks_per_gcell.assign(tech.num_metal_layers, 0);
  for (int& v : tech.tracks_per_gcell) is >> v;
  tech.vias_per_gcell.assign(tech.num_via_layers(), 0);
  for (int& v : tech.vias_per_gcell) is >> v;
  if (!is) fail_corrupt("bad header");
  for (const int v : tech.tracks_per_gcell) {
    if (v < 0) fail_corrupt("negative track capacity");
  }
  for (const int v : tech.vias_per_gcell) {
    if (v < 0) fail_corrupt("negative via capacity");
  }

  Design d(name, die, nx, ny, tech);

  expect(is, "MACROS");
  std::size_t count = 0;
  is >> count;
  for (std::size_t i = 0; i < count; ++i) {
    expect(is, "MACRO");
    Macro m;
    m.name = read_quoted(is);
    is >> m.box.x_lo >> m.box.y_lo >> m.box.x_hi >> m.box.y_hi >>
        m.blocked_metal_layers;
    if (!is) fail_corrupt("truncated MACRO record");
    check_finite_rect(m.box, "macro box");
    if (m.blocked_metal_layers < 0 ||
        m.blocked_metal_layers > tech.num_metal_layers) {
      fail_corrupt("macro blocked-layer count out of range");
    }
    d.add_macro(std::move(m));
  }
  expect(is, "CELLS");
  is >> count;
  for (std::size_t i = 0; i < count; ++i) {
    expect(is, "CELL");
    Cell c;
    c.name = read_quoted(is);
    int multi = 0;
    is >> c.box.x_lo >> c.box.y_lo >> c.box.x_hi >> c.box.y_hi >> multi;
    if (!is) fail_corrupt("truncated CELL record");
    check_finite_rect(c.box, "cell box");
    c.is_multi_height = multi != 0;
    d.add_cell(std::move(c));
  }
  expect(is, "NETS");
  is >> count;
  for (std::size_t i = 0; i < count; ++i) {
    expect(is, "NET");
    Net n;
    n.name = read_quoted(is);
    int clk = 0, ndr = 0;
    is >> clk >> ndr;
    if (!is) fail_corrupt("truncated NET record");
    n.is_clock = clk != 0;
    n.has_ndr = ndr != 0;
    d.add_net(std::move(n));
  }
  expect(is, "PINS");
  is >> count;
  for (std::size_t i = 0; i < count; ++i) {
    expect(is, "PIN");
    Pin p;
    long long cell = -1;
    int clk = 0, ndr = 0;
    is >> cell >> p.net >> p.position.x >> p.position.y >> clk >> ndr;
    if (!is) fail_corrupt("truncated PIN record");
    check_finite(p.position.x, "pin position");
    check_finite(p.position.y, "pin position");
    if (p.net >= d.num_nets()) {
      fail_corrupt("pin references net " + std::to_string(p.net) +
                   " but only " + std::to_string(d.num_nets()) +
                   " nets declared");
    }
    if (cell >= static_cast<long long>(d.num_cells())) {
      fail_corrupt("pin references cell " + std::to_string(cell) +
                   " but only " + std::to_string(d.num_cells()) +
                   " cells declared");
    }
    p.cell = cell < 0 ? kInvalidId : static_cast<CellId>(cell);
    p.is_clock = clk != 0;
    p.has_ndr = ndr != 0;
    d.add_pin(p);
  }
  expect(is, "BLOCKAGES");
  is >> count;
  for (std::size_t i = 0; i < count; ++i) {
    expect(is, "BLOCKAGE");
    Blockage b;
    is >> b.box.x_lo >> b.box.y_lo >> b.box.x_hi >> b.box.y_hi >> b.metal_lo >>
        b.metal_hi;
    if (!is) fail_corrupt("truncated BLOCKAGE record");
    check_finite_rect(b.box, "blockage box");
    if (b.metal_lo < 0 || b.metal_hi < b.metal_lo ||
        b.metal_hi >= tech.num_metal_layers) {
      fail_corrupt("blockage layer range out of bounds");
    }
    d.add_blockage(b);
  }
  expect(is, "END");
  if (!is) fail_corrupt("truncated input");
  return d;
}

Design read_def_lite_file(const std::string& path) {
  std::istringstream payload(read_artifact(path, kDefKind).value());
  return read_def_lite(payload);
}

}  // namespace drcshap
