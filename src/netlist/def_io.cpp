#include "netlist/def_io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace drcshap {

namespace {

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

std::string read_quoted(std::istream& is) {
  char c = 0;
  is >> c;
  if (c != '"') throw std::runtime_error("def-lite: expected quoted string");
  std::string out;
  while (is.get(c)) {
    if (c == '\\') {
      if (!is.get(c)) break;
      out += c;
    } else if (c == '"') {
      return out;
    } else {
      out += c;
    }
  }
  throw std::runtime_error("def-lite: unterminated string");
}

void expect(std::istream& is, const std::string& keyword) {
  std::string tok;
  is >> tok;
  if (tok != keyword) {
    throw std::runtime_error("def-lite: expected '" + keyword + "', got '" +
                             tok + "'");
  }
}

}  // namespace

void write_def_lite(const Design& d, std::ostream& os) {
  os << std::setprecision(17);
  os << "DESIGN " << quote(d.name()) << "\n";
  os << "DIE " << d.die().x_lo << " " << d.die().y_lo << " " << d.die().x_hi
     << " " << d.die().y_hi << "\n";
  os << "GRID " << d.grid().nx() << " " << d.grid().ny() << "\n";
  const Technology& t = d.tech();
  os << "TECH " << t.num_metal_layers;
  for (const int v : t.tracks_per_gcell) os << " " << v;
  for (const int v : t.vias_per_gcell) os << " " << v;
  os << "\n";
  os << "MACROS " << d.num_macros() << "\n";
  for (const Macro& m : d.macros()) {
    os << "  MACRO " << quote(m.name) << " " << m.box.x_lo << " " << m.box.y_lo
       << " " << m.box.x_hi << " " << m.box.y_hi << " "
       << m.blocked_metal_layers << "\n";
  }
  os << "CELLS " << d.num_cells() << "\n";
  for (const Cell& c : d.cells()) {
    os << "  CELL " << quote(c.name) << " " << c.box.x_lo << " " << c.box.y_lo
       << " " << c.box.x_hi << " " << c.box.y_hi << " "
       << (c.is_multi_height ? 1 : 0) << "\n";
  }
  os << "NETS " << d.num_nets() << "\n";
  for (const Net& n : d.nets()) {
    os << "  NET " << quote(n.name) << " " << (n.is_clock ? 1 : 0) << " "
       << (n.has_ndr ? 1 : 0) << "\n";
  }
  os << "PINS " << d.num_pins() << "\n";
  for (const Pin& p : d.pins()) {
    os << "  PIN " << (p.cell == kInvalidId ? -1 : static_cast<long long>(p.cell))
       << " " << p.net << " " << p.position.x << " " << p.position.y << " "
       << (p.is_clock ? 1 : 0) << " " << (p.has_ndr ? 1 : 0) << "\n";
  }
  os << "BLOCKAGES " << d.blockages().size() << "\n";
  for (const Blockage& b : d.blockages()) {
    os << "  BLOCKAGE " << b.box.x_lo << " " << b.box.y_lo << " " << b.box.x_hi
       << " " << b.box.y_hi << " " << b.metal_lo << " " << b.metal_hi << "\n";
  }
  os << "END\n";
}

void write_def_lite_file(const Design& design, const std::string& path) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) throw std::runtime_error("write_def_lite_file: cannot open " + path);
  write_def_lite(design, os);
}

Design read_def_lite(std::istream& is) {
  expect(is, "DESIGN");
  const std::string name = read_quoted(is);
  expect(is, "DIE");
  Rect die;
  is >> die.x_lo >> die.y_lo >> die.x_hi >> die.y_hi;
  expect(is, "GRID");
  std::size_t nx = 0, ny = 0;
  is >> nx >> ny;
  expect(is, "TECH");
  Technology tech;
  is >> tech.num_metal_layers;
  tech.tracks_per_gcell.assign(tech.num_metal_layers, 0);
  for (int& v : tech.tracks_per_gcell) is >> v;
  tech.vias_per_gcell.assign(tech.num_via_layers(), 0);
  for (int& v : tech.vias_per_gcell) is >> v;
  if (!is) throw std::runtime_error("def-lite: bad header");

  Design d(name, die, nx, ny, tech);

  expect(is, "MACROS");
  std::size_t count = 0;
  is >> count;
  for (std::size_t i = 0; i < count; ++i) {
    expect(is, "MACRO");
    Macro m;
    m.name = read_quoted(is);
    is >> m.box.x_lo >> m.box.y_lo >> m.box.x_hi >> m.box.y_hi >>
        m.blocked_metal_layers;
    d.add_macro(std::move(m));
  }
  expect(is, "CELLS");
  is >> count;
  for (std::size_t i = 0; i < count; ++i) {
    expect(is, "CELL");
    Cell c;
    c.name = read_quoted(is);
    int multi = 0;
    is >> c.box.x_lo >> c.box.y_lo >> c.box.x_hi >> c.box.y_hi >> multi;
    c.is_multi_height = multi != 0;
    d.add_cell(std::move(c));
  }
  expect(is, "NETS");
  is >> count;
  for (std::size_t i = 0; i < count; ++i) {
    expect(is, "NET");
    Net n;
    n.name = read_quoted(is);
    int clk = 0, ndr = 0;
    is >> clk >> ndr;
    n.is_clock = clk != 0;
    n.has_ndr = ndr != 0;
    d.add_net(std::move(n));
  }
  expect(is, "PINS");
  is >> count;
  for (std::size_t i = 0; i < count; ++i) {
    expect(is, "PIN");
    Pin p;
    long long cell = -1;
    int clk = 0, ndr = 0;
    is >> cell >> p.net >> p.position.x >> p.position.y >> clk >> ndr;
    p.cell = cell < 0 ? kInvalidId : static_cast<CellId>(cell);
    p.is_clock = clk != 0;
    p.has_ndr = ndr != 0;
    d.add_pin(p);
  }
  expect(is, "BLOCKAGES");
  is >> count;
  for (std::size_t i = 0; i < count; ++i) {
    expect(is, "BLOCKAGE");
    Blockage b;
    is >> b.box.x_lo >> b.box.y_lo >> b.box.x_hi >> b.box.y_hi >> b.metal_lo >>
        b.metal_hi;
    d.add_blockage(b);
  }
  expect(is, "END");
  if (!is) throw std::runtime_error("def-lite: truncated input");
  return d;
}

Design read_def_lite_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("read_def_lite_file: cannot open " + path);
  return read_def_lite(is);
}

}  // namespace drcshap
