#pragma once
// DEF-lite text serialization for Design. Not LEF/DEF — a small, line-based
// format sufficient to persist synthetic designs and reload them in tests and
// tooling (the role a placed .def plays in the paper's flow).

#include <iosfwd>
#include <string>

#include "netlist/design.hpp"

namespace drcshap {

/// Serialize the full design (die, grid, tech, macros, cells, nets, pins,
/// blockages) to a text stream.
void write_def_lite(const Design& design, std::ostream& os);
void write_def_lite_file(const Design& design, const std::string& path);

/// Parse a design back. Throws std::runtime_error on malformed input.
Design read_def_lite(std::istream& is);
Design read_def_lite_file(const std::string& path);

}  // namespace drcshap
