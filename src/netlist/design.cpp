#include "netlist/design.hpp"

#include <stdexcept>

namespace drcshap {

std::string Technology::metal_name(int metal) {
  return "M" + std::to_string(metal + 1);
}

std::string Technology::via_name(int via) {
  return "V" + std::to_string(via + 1);
}

Design::Design(std::string name, Rect die, std::size_t gcells_x,
               std::size_t gcells_y, Technology tech)
    : name_(std::move(name)),
      die_(die),
      tech_(std::move(tech)),
      grid_(die, gcells_x, gcells_y) {
  if (static_cast<int>(tech_.tracks_per_gcell.size()) !=
      tech_.num_metal_layers) {
    throw std::invalid_argument("Design: tracks_per_gcell size mismatch");
  }
  if (static_cast<int>(tech_.vias_per_gcell.size()) != tech_.num_via_layers()) {
    throw std::invalid_argument("Design: vias_per_gcell size mismatch");
  }
}

CellId Design::add_cell(Cell cell) {
  cells_.push_back(std::move(cell));
  return static_cast<CellId>(cells_.size() - 1);
}

MacroId Design::add_macro(Macro macro) {
  macros_.push_back(std::move(macro));
  return static_cast<MacroId>(macros_.size() - 1);
}

NetId Design::add_net(Net net) {
  nets_.push_back(std::move(net));
  return static_cast<NetId>(nets_.size() - 1);
}

PinId Design::add_pin(Pin pin) {
  if (pin.net >= nets_.size()) {
    throw std::out_of_range("Design::add_pin: pin references unknown net");
  }
  const PinId id = static_cast<PinId>(pins_.size());
  nets_[pin.net].pins.push_back(id);
  pin.is_clock = pin.is_clock || nets_[pin.net].is_clock;
  pin.has_ndr = pin.has_ndr || nets_[pin.net].has_ndr;
  pins_.push_back(pin);
  return id;
}

void Design::add_blockage(Blockage blockage) {
  blockages_.push_back(blockage);
}

void Design::set_macro_box(MacroId id, const Rect& box) {
  if (id >= macros_.size()) {
    throw std::invalid_argument("Design::set_macro_box: unknown macro id");
  }
  if (box.empty() || !die_.contains(box)) {
    throw std::invalid_argument(
        "Design::set_macro_box: box empty or outside the die");
  }
  Macro& m = macros_[id];
  // The placer registers one routing blockage per macro with exactly the
  // macro's box and blocked-layer span; coordinates were copied verbatim,
  // so exact comparison is the right match. Any blockage that matches moves
  // along (macros never legitimately share an identical footprint).
  for (Blockage& b : blockages_) {
    if (b.box == m.box && b.metal_lo == 0 &&
        b.metal_hi == m.blocked_metal_layers - 1) {
      b.box = box;
    }
  }
  m.box = box;
}

void Design::move_macro(MacroId id, double dx, double dy) {
  if (id >= macros_.size()) {
    throw std::invalid_argument("Design::move_macro: unknown macro id");
  }
  const Rect& old = macros_[id].box;
  set_macro_box(
      id, Rect{old.x_lo + dx, old.y_lo + dy, old.x_hi + dx, old.y_hi + dy});
}

bool Design::is_local_net(NetId id) const {
  const Net& n = net(id);
  if (n.pins.empty()) return false;
  const std::size_t first = grid_.locate(pin(n.pins.front()).position);
  for (const PinId p : n.pins) {
    if (grid_.locate(pin(p).position) != first) return false;
  }
  return true;
}

double Design::net_hpwl(NetId id) const {
  const Net& n = net(id);
  if (n.pins.empty()) return 0.0;
  double x_lo = die_.x_hi, x_hi = die_.x_lo, y_lo = die_.y_hi, y_hi = die_.y_lo;
  for (const PinId p : n.pins) {
    const Point pos = pin(p).position;
    x_lo = std::min(x_lo, pos.x);
    x_hi = std::max(x_hi, pos.x);
    y_lo = std::min(y_lo, pos.y);
    y_hi = std::max(y_hi, pos.y);
  }
  return (x_hi - x_lo) + (y_hi - y_lo);
}

void Design::validate() const {
  for (std::size_t i = 0; i < pins_.size(); ++i) {
    const Pin& p = pins_[i];
    if (p.net >= nets_.size()) {
      throw std::logic_error("validate: pin " + std::to_string(i) +
                             " references unknown net");
    }
    if (p.cell != kInvalidId && p.cell >= cells_.size()) {
      throw std::logic_error("validate: pin " + std::to_string(i) +
                             " references unknown cell");
    }
    if (!die_.contains(p.position) &&
        !(p.position.x == die_.x_hi || p.position.y == die_.y_hi)) {
      throw std::logic_error("validate: pin " + std::to_string(i) +
                             " outside die");
    }
  }
  for (std::size_t n = 0; n < nets_.size(); ++n) {
    for (const PinId p : nets_[n].pins) {
      if (p >= pins_.size() || pins_[p].net != n) {
        throw std::logic_error("validate: net " + std::to_string(n) +
                               " pin list inconsistent");
      }
    }
  }
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    const Rect clipped = cells_[c].box.intersect(die_);
    if (clipped.area() <= 0.0 && cells_[c].box.area() > 0.0) {
      throw std::logic_error("validate: cell " + std::to_string(c) +
                             " entirely outside die");
    }
  }
}

}  // namespace drcshap
