#pragma once
// In-memory design database: technology, standard cells, macros, pins, nets,
// blockages. This is the artifact the (synthetic) placement stage produces and
// that global routing, DRC modeling, and feature extraction consume.
//
// Index-based references (CellId, PinId, NetId) are used instead of pointers:
// the database owns all records in flat vectors, which keeps traversal cache
// friendly for the large designs in Table I (up to ~155k cells).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "geom/geometry.hpp"

namespace drcshap {

using CellId = std::uint32_t;
using PinId = std::uint32_t;
using NetId = std::uint32_t;
using MacroId = std::uint32_t;

inline constexpr std::uint32_t kInvalidId = 0xffffffffu;

/// Routing technology: metal layers with alternating preferred direction and
/// the via layers between them. The paper's designs use 5 routing layers
/// (M1..M5) and hence 4 via layers (V1..V4).
struct Technology {
  int num_metal_layers = 5;
  /// Tracks per g-cell per metal layer in the preferred direction; this sets
  /// the GR edge capacities. Index 0 is M1.
  std::vector<int> tracks_per_gcell = {8, 9, 9, 10, 10};
  /// Via capacity per g-cell per via layer. Index 0 is V1 (between M1 & M2).
  std::vector<int> vias_per_gcell = {40, 40, 36, 32};

  int num_via_layers() const { return num_metal_layers - 1; }

  /// Metal layer m (0-based) routes horizontally iff m is even (M1, M3, M5).
  static bool is_horizontal(int metal) { return metal % 2 == 0; }

  /// Human-readable layer names: metal_name(0) == "M1", via_name(0) == "V1".
  static std::string metal_name(int metal);
  static std::string via_name(int via);
};

/// A placed standard cell.
struct Cell {
  std::string name;
  Rect box;                 ///< placed footprint
  bool is_multi_height = false;
};

/// A placed macro block. Macros block placement under them and block routing
/// on the metal layers in [0, blocked_metal_layers).
struct Macro {
  std::string name;
  Rect box;
  int blocked_metal_layers = 4;  ///< M1..M4 blocked, M5 routable over macro
};

/// A cell or macro pin, belonging to exactly one net.
struct Pin {
  CellId cell = kInvalidId;   ///< owning cell; kInvalidId for I/O pads
  NetId net = kInvalidId;
  Point position;
  bool is_clock = false;      ///< pin of a clock net
  bool has_ndr = false;       ///< pin of a net with a non-default rule
};

/// A signal/clock net connecting >= 1 pins.
struct Net {
  std::string name;
  std::vector<PinId> pins;
  bool is_clock = false;
  bool has_ndr = false;
};

/// A routing/placement blockage rectangle on a span of metal layers.
struct Blockage {
  Rect box;
  int metal_lo = 0;  ///< first blocked metal layer (0-based, inclusive)
  int metal_hi = 3;  ///< last blocked metal layer (inclusive)
};

/// The complete placed design handed to global routing.
class Design {
 public:
  Design(std::string name, Rect die, std::size_t gcells_x, std::size_t gcells_y,
         Technology tech = {});

  const std::string& name() const { return name_; }
  const Rect& die() const { return die_; }
  const Technology& tech() const { return tech_; }
  const GCellGrid& grid() const { return grid_; }

  // --- construction ---------------------------------------------------
  CellId add_cell(Cell cell);
  MacroId add_macro(Macro macro);
  NetId add_net(Net net);
  /// Adds the pin and registers it on its net (net must already exist).
  PinId add_pin(Pin pin);
  void add_blockage(Blockage blockage);

  // --- ECO edits --------------------------------------------------------
  /// Replaces a macro's footprint (a move and/or resize), updating every
  /// routing blockage that matches the macro's old box over its blocked
  /// layer span (the blockage the placer registered alongside the macro).
  /// The new box must be non-empty and lie inside the die; placement
  /// legality against standard cells is NOT re-checked — the capacity
  /// model only derates, matching the synthetic role of the flow. Throws
  /// std::invalid_argument on a bad id or box.
  void set_macro_box(MacroId id, const Rect& box);
  /// set_macro_box with the footprint translated by (dx, dy).
  void move_macro(MacroId id, double dx, double dy);

  // --- access ---------------------------------------------------------
  const std::vector<Cell>& cells() const { return cells_; }
  const std::vector<Macro>& macros() const { return macros_; }
  const std::vector<Pin>& pins() const { return pins_; }
  const std::vector<Net>& nets() const { return nets_; }
  const std::vector<Blockage>& blockages() const { return blockages_; }

  const Cell& cell(CellId id) const { return cells_.at(id); }
  const Macro& macro(MacroId id) const { return macros_.at(id); }
  const Pin& pin(PinId id) const { return pins_.at(id); }
  const Net& net(NetId id) const { return nets_.at(id); }

  std::size_t num_cells() const { return cells_.size(); }
  std::size_t num_macros() const { return macros_.size(); }
  std::size_t num_pins() const { return pins_.size(); }
  std::size_t num_nets() const { return nets_.size(); }

  /// True if the net's pins all fall inside one g-cell ("local net" feature).
  bool is_local_net(NetId id) const;

  /// Half-perimeter wirelength of a net's pin bounding box.
  double net_hpwl(NetId id) const;

  /// Consistency check (every pin on a valid net, every net pin listed back,
  /// cells inside die, ...). Throws std::logic_error describing the first
  /// violation; used by tests and the generator.
  void validate() const;

 private:
  std::string name_;
  Rect die_;
  Technology tech_;
  GCellGrid grid_;
  std::vector<Cell> cells_;
  std::vector<Macro> macros_;
  std::vector<Pin> pins_;
  std::vector<Net> nets_;
  std::vector<Blockage> blockages_;
};

}  // namespace drcshap
