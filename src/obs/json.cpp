#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace drcshap::obs {

namespace {

/// Shortest round-trip decimal for a double; integers print without ".0"
/// noise so counters stay readable.
std::string format_number(double value) {
  if (!std::isfinite(value)) {
    // JSON has no Inf/NaN; null is the conventional stand-in.
    return "null";
  }
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // Trim to the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char probe[64];
    std::snprintf(probe, sizeof(probe), "%.*g", precision, value);
    double parsed = 0.0;
    std::sscanf(probe, "%lf", &parsed);
    if (parsed == value) return probe;
  }
  return buf;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue();
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object object;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(object));
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      object[std::move(key)] = parse_value();
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == '}') return JsonValue(std::move(object));
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array array;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(array));
    }
    while (true) {
      array.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == ']') return JsonValue(std::move(array));
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // our reports only emit ASCII control escapes).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool any_digit = false;
    auto eat_digits = [&] {
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        any_digit = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
        ++pos_;
      }
      eat_digits();
    }
    if (!any_digit) fail("invalid number");
    const std::string token(text_.substr(start, pos_ - start));
    try {
      return JsonValue(std::stod(token));
    } catch (const std::exception&) {
      fail("unparsable number '" + token + "'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dump_value(const JsonValue& value, std::string& out, int indent,
                int depth) {
  const std::string pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * (depth + 1)),
                               ' ')
                 : std::string();
  const std::string close_pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * depth), ' ')
                 : std::string();
  const char* newline = indent > 0 ? "\n" : "";
  switch (value.type()) {
    case JsonValue::Type::kNull:
      out += "null";
      break;
    case JsonValue::Type::kBool:
      out += value.as_bool() ? "true" : "false";
      break;
    case JsonValue::Type::kNumber:
      out += format_number(value.as_number());
      break;
    case JsonValue::Type::kString:
      out += '"';
      out += json_escape(value.as_string());
      out += '"';
      break;
    case JsonValue::Type::kArray: {
      const auto& array = value.as_array();
      if (array.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += newline;
      for (std::size_t i = 0; i < array.size(); ++i) {
        out += pad;
        dump_value(array[i], out, indent, depth + 1);
        if (i + 1 < array.size()) out += ',';
        out += newline;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case JsonValue::Type::kObject: {
      const auto& object = value.as_object();
      if (object.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += newline;
      std::size_t i = 0;
      for (const auto& [key, field] : object) {
        out += pad;
        out += '"';
        out += json_escape(key);
        out += "\": ";
        dump_value(field, out, indent, depth + 1);
        if (++i < object.size()) out += ',';
        out += newline;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

}  // namespace

JsonValue& JsonValue::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;  // autovivify like maps
  checked(Type::kObject);
  return object_[key];
}

const JsonValue& JsonValue::at(const std::string& key) const {
  checked(Type::kObject);
  auto it = object_.find(key);
  if (it == object_.end()) {
    throw std::out_of_range("JsonValue: missing key '" + key + "'");
  }
  return it->second;
}

bool JsonValue::contains(const std::string& key) const {
  return type_ == Type::kObject && object_.find(key) != object_.end();
}

void JsonValue::push_back(JsonValue value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  checked(Type::kArray);
  array_.push_back(std::move(value));
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_value(*this, out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

JsonValue JsonValue::parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("json: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace drcshap::obs
