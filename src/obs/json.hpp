#pragma once
// Minimal JSON document model for the run-report writer and its tests: a
// tagged value that can be built programmatically, dumped with stable
// ordering/indentation, and parsed back (strict RFC-8259 subset — enough
// to round-trip our own reports and to read google-benchmark output).
// Object keys are kept in sorted order so dumps are deterministic.

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace drcshap::obs {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool value) : type_(Type::kBool), bool_(value) {}
  JsonValue(double value) : type_(Type::kNumber), number_(value) {}
  JsonValue(std::int64_t value)
      : type_(Type::kNumber), number_(static_cast<double>(value)) {}
  JsonValue(std::uint64_t value)
      : type_(Type::kNumber), number_(static_cast<double>(value)) {}
  JsonValue(int value) : type_(Type::kNumber), number_(value) {}
  JsonValue(const char* value) : type_(Type::kString), string_(value) {}
  JsonValue(std::string value)
      : type_(Type::kString), string_(std::move(value)) {}
  JsonValue(Array value) : type_(Type::kArray), array_(std::move(value)) {}
  JsonValue(Object value) : type_(Type::kObject), object_(std::move(value)) {}

  static JsonValue make_object() { return JsonValue(Object{}); }
  static JsonValue make_array() { return JsonValue(Array{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_bool() const { return type_ == Type::kBool; }

  bool as_bool() const { return checked(Type::kBool), bool_; }
  double as_number() const { return checked(Type::kNumber), number_; }
  const std::string& as_string() const {
    return checked(Type::kString), string_;
  }
  const Array& as_array() const { return checked(Type::kArray), array_; }
  const Object& as_object() const { return checked(Type::kObject), object_; }

  /// Object field access; inserting a missing key on the mutable overload.
  JsonValue& operator[](const std::string& key);
  /// Const lookup: throws std::out_of_range on a missing key.
  const JsonValue& at(const std::string& key) const;
  bool contains(const std::string& key) const;

  void push_back(JsonValue value);

  /// Serialize. indent > 0 pretty-prints with that many spaces per level;
  /// indent == 0 emits the compact single-line form.
  std::string dump(int indent = 2) const;

  /// Strict parse of a complete JSON document (trailing junk rejected).
  /// Throws std::runtime_error with position info on malformed input.
  static JsonValue parse(std::string_view text);

  /// Parse the contents of a file (throws std::runtime_error on IO error).
  static JsonValue parse_file(const std::string& path);

 private:
  void checked(Type expected) const {
    if (type_ != expected) {
      throw std::logic_error("JsonValue: wrong type access");
    }
  }

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Escape `text` for embedding inside a JSON string literal (no quotes).
std::string json_escape(std::string_view text);

}  // namespace drcshap::obs
