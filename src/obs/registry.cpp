#include "obs/registry.hpp"

#if DRCSHAP_OBS_ENABLED

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <vector>

namespace drcshap::obs {

namespace {

// A gauge remembers when it was last set so the merge can pick the most
// recent write no matter which shard it landed in.
struct GaugeCell {
  double value = 0.0;
  std::uint64_t seq = 0;
};

// Notes reuse the gauge discipline (last global write wins) with a string
// payload.
struct NoteCell {
  std::string value;
  std::uint64_t seq = 0;
};

// Plain (non-atomic) metric maps guarded by one mutex per shard. The mutex
// is only ever contended by snapshot()/reset() walking the registry — the
// owning thread is the sole updater — so the fast path is an uncontended
// lock plus a map operation, cheap at the stage granularity we instrument.
struct Shard {
  std::mutex mu;
  std::map<std::string, std::uint64_t, std::less<>> counters;
  std::map<std::string, GaugeCell, std::less<>> gauges;
  std::map<std::string, NoteCell, std::less<>> notes;
  std::map<std::string, TimerStat, std::less<>> timers;

  bool empty() const {
    return counters.empty() && gauges.empty() && notes.empty() &&
           timers.empty();
  }
};

void merge_shard_locked(const Shard& shard, Snapshot& out,
                        std::map<std::string, std::uint64_t>& gauge_seq,
                        std::map<std::string, std::uint64_t>& note_seq) {
  for (const auto& [name, value] : shard.counters) out.counters[name] += value;
  for (const auto& [name, cell] : shard.gauges) {
    auto it = gauge_seq.find(name);
    if (it == gauge_seq.end() || cell.seq > it->second) {
      gauge_seq[name] = cell.seq;
      out.gauges[name] = cell.value;
    }
  }
  for (const auto& [name, cell] : shard.notes) {
    auto it = note_seq.find(name);
    if (it == note_seq.end() || cell.seq > it->second) {
      note_seq[name] = cell.seq;
      out.notes[name] = cell.value;
    }
  }
  for (const auto& [name, stat] : shard.timers) {
    TimerStat& dst = out.timers[name];
    dst.count += stat.count;
    dst.total_ns += stat.total_ns;
    dst.max_ns = std::max(dst.max_ns, stat.max_ns);
  }
}

// Process-global registry. Live shards are shared_ptrs so a snapshot taken
// while a thread exits stays valid; when a thread dies its shard contents
// fold into `retired_` (keeping memory bounded by the live thread count,
// not by how many ThreadPools have ever existed). Lock order is always
// registry mutex -> shard mutex. The registry itself is intentionally
// leaked: main-thread thread_local destructors still retire safely at exit.
class Registry {
 public:
  static Registry& get() {
    static Registry* instance = new Registry();
    return *instance;
  }

  std::uint64_t next_gauge_seq() {
    return gauge_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  Shard& local_shard() {
    thread_local ShardRef ref(*this);
    return *ref.shard;
  }

  Snapshot snapshot() {
    Snapshot out;
    std::map<std::string, std::uint64_t> gauge_seq;
    std::map<std::string, std::uint64_t> note_seq;
    std::lock_guard<std::mutex> registry_lock(mu_);
    merge_shard_locked(retired_, out, gauge_seq, note_seq);
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> shard_lock(shard->mu);
      merge_shard_locked(*shard, out, gauge_seq, note_seq);
    }
    return out;
  }

  void reset() {
    std::lock_guard<std::mutex> registry_lock(mu_);
    retired_.counters.clear();
    retired_.gauges.clear();
    retired_.notes.clear();
    retired_.timers.clear();
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> shard_lock(shard->mu);
      shard->counters.clear();
      shard->gauges.clear();
      shard->notes.clear();
      shard->timers.clear();
    }
  }

 private:
  struct ShardRef {
    explicit ShardRef(Registry& registry)
        : owner(&registry), shard(std::make_shared<Shard>()) {
      std::lock_guard<std::mutex> lock(owner->mu_);
      owner->shards_.push_back(shard);
    }
    ~ShardRef() { owner->retire(shard); }

    Registry* owner;
    std::shared_ptr<Shard> shard;
  };

  void retire(const std::shared_ptr<Shard>& shard) {
    std::lock_guard<std::mutex> registry_lock(mu_);
    {
      std::lock_guard<std::mutex> shard_lock(shard->mu);
      if (!shard->empty()) {
        // Fold into the retired aggregate with the same merge the snapshot
        // uses, preserving counter sums and the freshest gauge/note writes.
        Snapshot merged;
        std::map<std::string, std::uint64_t> gauge_seq;
        std::map<std::string, std::uint64_t> note_seq;
        merge_shard_locked(*shard, merged, gauge_seq, note_seq);
        for (const auto& [name, value] : merged.counters) {
          retired_.counters[name] += value;
        }
        for (const auto& [name, value] : merged.gauges) {
          GaugeCell& cell = retired_.gauges[name];
          const std::uint64_t seq = gauge_seq[name];
          if (seq > cell.seq) cell = {value, seq};
        }
        for (const auto& [name, value] : merged.notes) {
          NoteCell& cell = retired_.notes[name];
          const std::uint64_t seq = note_seq[name];
          if (seq > cell.seq) cell = {value, seq};
        }
        for (const auto& [name, stat] : merged.timers) {
          TimerStat& dst = retired_.timers[name];
          dst.count += stat.count;
          dst.total_ns += stat.total_ns;
          dst.max_ns = std::max(dst.max_ns, stat.max_ns);
        }
      }
    }
    shards_.erase(std::remove(shards_.begin(), shards_.end(), shard),
                  shards_.end());
  }

  std::mutex mu_;
  std::vector<std::shared_ptr<Shard>> shards_;
  Shard retired_;  // mu unused: guarded by mu_
  std::atomic<std::uint64_t> gauge_seq_{0};
};

}  // namespace

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void counter_add(std::string_view name, std::uint64_t delta) {
  Shard& shard = Registry::get().local_shard();
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.counters.find(name);
  if (it == shard.counters.end()) {
    shard.counters.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void gauge_set(std::string_view name, double value) {
  Registry& registry = Registry::get();
  const std::uint64_t seq = registry.next_gauge_seq();
  Shard& shard = registry.local_shard();
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.gauges.find(name);
  if (it == shard.gauges.end()) {
    shard.gauges.emplace(std::string(name), GaugeCell{value, seq});
  } else {
    it->second = {value, seq};
  }
}

void note_set(std::string_view name, std::string_view value) {
  Registry& registry = Registry::get();
  const std::uint64_t seq = registry.next_gauge_seq();
  Shard& shard = registry.local_shard();
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.notes.find(name);
  if (it == shard.notes.end()) {
    shard.notes.emplace(std::string(name), NoteCell{std::string(value), seq});
  } else {
    it->second = {std::string(value), seq};
  }
}

void timer_record(std::string_view name, std::uint64_t elapsed_ns) {
  Shard& shard = Registry::get().local_shard();
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.timers.find(name);
  if (it == shard.timers.end()) {
    it = shard.timers.emplace(std::string(name), TimerStat{}).first;
  }
  TimerStat& stat = it->second;
  ++stat.count;
  stat.total_ns += elapsed_ns;
  stat.max_ns = std::max(stat.max_ns, elapsed_ns);
}

Snapshot snapshot() { return Registry::get().snapshot(); }

void reset() { Registry::get().reset(); }

}  // namespace drcshap::obs

#endif  // DRCSHAP_OBS_ENABLED
