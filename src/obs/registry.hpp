#pragma once
// Pipeline observability: monotonic counters, gauges and scoped wall-clock
// timers in a process-global registry. Updates go to per-thread shards (one
// uncontended mutex each), so instrumented code is safe and cheap inside
// ThreadPool::parallel_for; snapshot() merges every live shard plus the
// folded data of exited threads into one deterministic view.
//
// The whole subsystem is compile-time switchable: configuring with
// -DDRCSHAP_OBS=OFF defines DRCSHAP_OBS_ENABLED=0 and every call below
// becomes an empty inline function the optimizer deletes, so the Release
// hot path carries zero instrumentation cost.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#ifndef DRCSHAP_OBS_ENABLED
#define DRCSHAP_OBS_ENABLED 1
#endif

namespace drcshap::obs {

/// Compile-time switch mirror, for code (and tests) that needs to know
/// whether instrumentation actually records anything.
constexpr bool kEnabled = DRCSHAP_OBS_ENABLED != 0;

struct TimerStat {
  std::uint64_t count = 0;     ///< completed scopes
  std::uint64_t total_ns = 0;  ///< summed wall time
  std::uint64_t max_ns = 0;    ///< longest single scope

  double total_ms() const { return static_cast<double>(total_ns) * 1e-6; }
  double mean_ms() const {
    return count == 0 ? 0.0 : total_ms() / static_cast<double>(count);
  }
};

/// One merged, ordered view of the registry. Counters and timer totals are
/// integer sums over shards, so the merged value is independent of shard
/// enumeration order and thread scheduling; gauges and notes keep the most
/// recent set() (global sequence stamp).
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, std::string> notes;
  std::map<std::string, TimerStat> timers;
};

#if DRCSHAP_OBS_ENABLED

/// Add `delta` to the named monotonic counter (thread-safe, shard-local).
void counter_add(std::string_view name, std::uint64_t delta = 1);

/// Set the named gauge; the last write in program order wins in snapshots.
void gauge_set(std::string_view name, double value);

/// Set a string annotation (e.g. why a design/fold was quarantined); the
/// last write wins, like a gauge. Notes reach runreport.json verbatim.
void note_set(std::string_view name, std::string_view value);

/// Record one completed timer scope of `elapsed_ns` (used by ScopedTimer;
/// callable directly for externally measured durations).
void timer_record(std::string_view name, std::uint64_t elapsed_ns);

/// Merge all shards (live and retired) into one ordered snapshot.
Snapshot snapshot();

/// Clear every counter/gauge/timer in every shard. Meant for tests and for
/// bench binaries that emit one report per configuration.
void reset();

/// Monotonic wall clock in nanoseconds (steady_clock).
std::uint64_t now_ns();

/// RAII wall-clock timer: records one TimerStat sample on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view name)
      : name_(name), start_ns_(now_ns()) {}
  ~ScopedTimer() { timer_record(name_, now_ns() - start_ns_); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::string name_;
  std::uint64_t start_ns_;
};

#else  // DRCSHAP_OBS_ENABLED == 0: every call is an inline no-op.

inline void counter_add(std::string_view, std::uint64_t = 1) {}
inline void gauge_set(std::string_view, double) {}
inline void note_set(std::string_view, std::string_view) {}
inline void timer_record(std::string_view, std::uint64_t) {}
inline Snapshot snapshot() { return {}; }
inline void reset() {}
inline std::uint64_t now_ns() { return 0; }

class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
};

#endif  // DRCSHAP_OBS_ENABLED

}  // namespace drcshap::obs

// Convenience: time the rest of the enclosing scope under `name`. Expands
// to a uniquely named local so several can coexist in one function.
#define DRCSHAP_OBS_CONCAT_INNER(a, b) a##b
#define DRCSHAP_OBS_CONCAT(a, b) DRCSHAP_OBS_CONCAT_INNER(a, b)
#define DRCSHAP_OBS_TIMER(name) \
  ::drcshap::obs::ScopedTimer DRCSHAP_OBS_CONCAT(obs_timer_, __LINE__)(name)
