#include "obs/run_report.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <thread>

#include "obs/registry.hpp"
#include "util/artifact.hpp"

// Build provenance is injected by CMake as compile definitions on this
// translation unit only; default to "unknown" so the file also compiles
// standalone (e.g. in IDE indexers).
#ifndef DRCSHAP_GIT_SHA
#define DRCSHAP_GIT_SHA "unknown"
#endif
#ifndef DRCSHAP_COMPILER_INFO
#define DRCSHAP_COMPILER_INFO "unknown"
#endif
#ifndef DRCSHAP_BUILD_TYPE
#define DRCSHAP_BUILD_TYPE "unknown"
#endif
#ifndef DRCSHAP_CXX_FLAGS
#define DRCSHAP_CXX_FLAGS ""
#endif

namespace drcshap::obs {

namespace {

std::string utc_timestamp() {
  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

}  // namespace

JsonValue provenance_json(const RunReportOptions& options) {
  JsonValue p = JsonValue::make_object();
  p["git_sha"] = DRCSHAP_GIT_SHA;
  p["compiler"] = DRCSHAP_COMPILER_INFO;
  p["build_type"] = DRCSHAP_BUILD_TYPE;
  p["cxx_flags"] = DRCSHAP_CXX_FLAGS;
  p["obs_enabled"] = kEnabled;
  p["timestamp_utc"] = utc_timestamp();
  p["hardware_threads"] =
      static_cast<std::uint64_t>(std::thread::hardware_concurrency());
  p["n_threads"] = static_cast<std::uint64_t>(options.n_threads);
  p["seed"] = options.seed;
  for (const auto& [key, value] : options.extra) p[key] = value;
  return p;
}

JsonValue build_run_report(const RunReportOptions& options) {
  const Snapshot snap = snapshot();

  JsonValue report = JsonValue::make_object();
  report["schema_version"] = std::uint64_t{1};
  report["tool"] = options.tool;
  report["provenance"] = provenance_json(options);

  JsonValue counters = JsonValue::make_object();
  for (const auto& [name, value] : snap.counters) counters[name] = value;
  report["counters"] = std::move(counters);

  JsonValue gauges = JsonValue::make_object();
  for (const auto& [name, value] : snap.gauges) gauges[name] = value;
  report["gauges"] = std::move(gauges);

  JsonValue notes = JsonValue::make_object();
  for (const auto& [name, value] : snap.notes) notes[name] = value;
  report["notes"] = std::move(notes);

  JsonValue timers = JsonValue::make_object();
  for (const auto& [name, stat] : snap.timers) {
    JsonValue t = JsonValue::make_object();
    t["count"] = stat.count;
    t["total_ms"] = stat.total_ms();
    t["mean_ms"] = stat.mean_ms();
    t["max_ms"] = static_cast<double>(stat.max_ns) * 1e-6;
    timers[name] = std::move(t);
  }
  report["timers"] = std::move(timers);
  return report;
}

void write_run_report(const std::string& path,
                      const RunReportOptions& options) {
  // Atomic temp+rename commit: a gate (tools/check_bench.py) or a monitoring
  // scraper reading mid-write must see the previous report or the new one,
  // never a torn JSON prefix. The report stays unframed JSON — its consumers
  // are external.
  throw_if_error(write_file_atomic(path, build_run_report(options).dump(2)));
}

namespace {

/// Splits "dir/stem.ext" into {"dir/stem", ".ext"} (ext may be empty).
std::pair<std::string, std::string> split_extension(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::size_t dot = path.find_last_of('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return {path, ""};
  }
  return {path.substr(0, dot), path.substr(dot)};
}

}  // namespace

std::string default_report_path() {
  const char* env = std::getenv("DRCSHAP_RUNREPORT");
  std::string path = env != nullptr && env[0] != '\0' ? env : "runreport.json";
  const char* per_process = std::getenv("DRCSHAP_RUNREPORT_PER_PROCESS");
  if (per_process != nullptr && per_process[0] != '\0') {
    path = per_process_report_path(path);
  }
  return path;
}

std::string per_process_report_path(const std::string& path) {
  const auto [stem, ext] = split_extension(path);
  return stem + ".pid" + std::to_string(::getpid()) + ext;
}

std::vector<std::string> sibling_report_paths(const std::string& path) {
  const auto [stem, ext] = split_extension(path);
  const std::size_t slash = stem.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : stem.substr(0, slash);
  const std::string prefix =
      (slash == std::string::npos ? stem : stem.substr(slash + 1)) + ".pid";
  std::vector<std::string> siblings;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= prefix.size() + ext.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - ext.size(), ext.size(), ext) != 0 &&
        !ext.empty()) {
      continue;
    }
    siblings.push_back(entry.path().string());
  }
  std::sort(siblings.begin(), siblings.end());
  return siblings;
}

void merge_run_report(JsonValue& report, const JsonValue& other) {
  // Counters sum across processes, like obs shards sum across threads.
  if (other.contains("counters")) {
    JsonValue& counters = report["counters"];
    for (const auto& [name, value] : other.at("counters").as_object()) {
      const double mine =
          counters.contains(name) ? counters.at(name).as_number() : 0.0;
      counters[name] = mine + value.as_number();
    }
  }
  // Gauges and notes are last-write-wins within a process; across processes
  // the merging process (the one assembling the report) keeps its own.
  for (const char* section : {"gauges", "notes"}) {
    if (!other.contains(section)) continue;
    JsonValue& mine = report[section];
    for (const auto& [name, value] : other.at(section).as_object()) {
      if (!mine.contains(name)) mine[name] = value;
    }
  }
  if (other.contains("timers")) {
    JsonValue& timers = report["timers"];
    for (const auto& [name, stat] : other.at("timers").as_object()) {
      if (!timers.contains(name)) {
        timers[name] = stat;
        continue;
      }
      JsonValue& mine = timers[name];
      const double count =
          mine.at("count").as_number() + stat.at("count").as_number();
      const double total =
          mine.at("total_ms").as_number() + stat.at("total_ms").as_number();
      mine["count"] = count;
      mine["total_ms"] = total;
      mine["mean_ms"] = count == 0.0 ? 0.0 : total / count;
      mine["max_ms"] = std::max(mine.at("max_ms").as_number(),
                                stat.at("max_ms").as_number());
    }
  }
  JsonValue& merged_from = report["merged_from"];
  if (!merged_from.is_array()) merged_from = JsonValue::make_array();
  merged_from.push_back(other.contains("tool") ? other.at("tool")
                                               : JsonValue("unknown"));
}

void write_run_report_merged(const std::string& path,
                             const RunReportOptions& options) {
  JsonValue report = build_run_report(options);
  std::vector<std::string> consumed;
  for (const std::string& sibling : sibling_report_paths(path)) {
    try {
      merge_run_report(report, JsonValue::parse_file(sibling));
      consumed.push_back(sibling);
    } catch (const std::exception& e) {
      // A torn or foreign file next to the report must not kill the merge.
      std::fprintf(stderr, "run_report: skipping %s: %s\n", sibling.c_str(),
                   e.what());
    }
  }
  throw_if_error(write_file_atomic(path, report.dump(2)));
  for (const std::string& sibling : consumed) {
    std::remove(sibling.c_str());
  }
}

std::string write_default_run_report(const RunReportOptions& options) {
  const std::string path = default_report_path();
  try {
    write_run_report(path, options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "run_report: %s\n", e.what());
    return {};
  }
  return path;
}

}  // namespace drcshap::obs
