#include "obs/run_report.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <thread>

#include "obs/registry.hpp"
#include "util/artifact.hpp"

// Build provenance is injected by CMake as compile definitions on this
// translation unit only; default to "unknown" so the file also compiles
// standalone (e.g. in IDE indexers).
#ifndef DRCSHAP_GIT_SHA
#define DRCSHAP_GIT_SHA "unknown"
#endif
#ifndef DRCSHAP_COMPILER_INFO
#define DRCSHAP_COMPILER_INFO "unknown"
#endif
#ifndef DRCSHAP_BUILD_TYPE
#define DRCSHAP_BUILD_TYPE "unknown"
#endif
#ifndef DRCSHAP_CXX_FLAGS
#define DRCSHAP_CXX_FLAGS ""
#endif

namespace drcshap::obs {

namespace {

std::string utc_timestamp() {
  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

}  // namespace

JsonValue provenance_json(const RunReportOptions& options) {
  JsonValue p = JsonValue::make_object();
  p["git_sha"] = DRCSHAP_GIT_SHA;
  p["compiler"] = DRCSHAP_COMPILER_INFO;
  p["build_type"] = DRCSHAP_BUILD_TYPE;
  p["cxx_flags"] = DRCSHAP_CXX_FLAGS;
  p["obs_enabled"] = kEnabled;
  p["timestamp_utc"] = utc_timestamp();
  p["hardware_threads"] =
      static_cast<std::uint64_t>(std::thread::hardware_concurrency());
  p["n_threads"] = static_cast<std::uint64_t>(options.n_threads);
  p["seed"] = options.seed;
  for (const auto& [key, value] : options.extra) p[key] = value;
  return p;
}

JsonValue build_run_report(const RunReportOptions& options) {
  const Snapshot snap = snapshot();

  JsonValue report = JsonValue::make_object();
  report["schema_version"] = std::uint64_t{1};
  report["tool"] = options.tool;
  report["provenance"] = provenance_json(options);

  JsonValue counters = JsonValue::make_object();
  for (const auto& [name, value] : snap.counters) counters[name] = value;
  report["counters"] = std::move(counters);

  JsonValue gauges = JsonValue::make_object();
  for (const auto& [name, value] : snap.gauges) gauges[name] = value;
  report["gauges"] = std::move(gauges);

  JsonValue notes = JsonValue::make_object();
  for (const auto& [name, value] : snap.notes) notes[name] = value;
  report["notes"] = std::move(notes);

  JsonValue timers = JsonValue::make_object();
  for (const auto& [name, stat] : snap.timers) {
    JsonValue t = JsonValue::make_object();
    t["count"] = stat.count;
    t["total_ms"] = stat.total_ms();
    t["mean_ms"] = stat.mean_ms();
    t["max_ms"] = static_cast<double>(stat.max_ns) * 1e-6;
    timers[name] = std::move(t);
  }
  report["timers"] = std::move(timers);
  return report;
}

void write_run_report(const std::string& path,
                      const RunReportOptions& options) {
  // Atomic temp+rename commit: a gate (tools/check_bench.py) or a monitoring
  // scraper reading mid-write must see the previous report or the new one,
  // never a torn JSON prefix. The report stays unframed JSON — its consumers
  // are external.
  throw_if_error(write_file_atomic(path, build_run_report(options).dump(2)));
}

std::string default_report_path() {
  const char* env = std::getenv("DRCSHAP_RUNREPORT");
  if (env != nullptr && env[0] != '\0') return env;
  return "runreport.json";
}

std::string write_default_run_report(const RunReportOptions& options) {
  const std::string path = default_report_path();
  try {
    write_run_report(path, options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "run_report: %s\n", e.what());
    return {};
  }
  return path;
}

}  // namespace drcshap::obs
