#pragma once
// Machine-readable run reports: one JSON document per tool invocation that
// captures the observability registry (per-stage timers, counters, gauges)
// plus enough build/provenance metadata (git sha, compiler, flags, thread
// count, seed) to interpret — and gate on — the numbers later. The CI
// perf-regression job diffs these against the checked-in BENCH_shap.json
// baseline via tools/check_bench.py.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace drcshap::obs {

struct RunReportOptions {
  std::string tool;           ///< binary / scenario name
  std::uint64_t seed = 0;     ///< dominant RNG seed of the run (0 = n/a)
  std::size_t n_threads = 0;  ///< configured worker threads (0 = default)
  /// Free-form extra provenance (benchmark scale, dataset id, ...).
  std::map<std::string, std::string> extra;
};

/// Build-time provenance baked in by CMake (git sha, compiler, flags,
/// build type) plus runtime facts (hardware threads, obs switch state).
JsonValue provenance_json(const RunReportOptions& options);

/// Assemble the full report: {"schema_version", "tool", "provenance",
/// "counters", "gauges", "timers"} from the current registry snapshot.
JsonValue build_run_report(const RunReportOptions& options);

/// Serialize build_run_report() to `path` (pretty-printed, trailing
/// newline). Throws std::runtime_error if the file cannot be written.
void write_run_report(const std::string& path,
                      const RunReportOptions& options);

/// $DRCSHAP_RUNREPORT if set and non-empty, else "runreport.json" in the
/// current working directory. When $DRCSHAP_RUNREPORT_PER_PROCESS is set
/// and non-empty the path gets a per-process suffix (see
/// per_process_report_path), so two cooperating processes — e.g. the
/// serving daemon and its load generator — pointed at the same report
/// never clobber each other; the survivor merges the suffixed reports.
std::string default_report_path();

/// "<stem>.pid<pid><ext>" next to `path` ("runreport.pid1234.json").
std::string per_process_report_path(const std::string& path);

/// Per-process sibling reports of `path` present on disk, sorted:
/// every "<stem>.pid*<ext>" in the same directory.
std::vector<std::string> sibling_report_paths(const std::string& path);

/// Merges `other` (another process's report) into `report`: counters are
/// summed, timer stats combined (count/total summed, max maxed, mean
/// recomputed), gauges/notes taken from `other` only where `report` has no
/// entry (the merging process wins ties), and `other`'s tool name is
/// appended to a "merged_from" array.
void merge_run_report(JsonValue& report, const JsonValue& other);

/// build_run_report + merge every sibling report of `path` + atomic write.
/// Consumed sibling files are deleted after the merged report commits.
/// Throws std::runtime_error if the final write fails; unreadable siblings
/// are skipped (a half-dead partner must not kill the survivor's report).
void write_run_report_merged(const std::string& path,
                             const RunReportOptions& options);

/// write_run_report(default_report_path(), options), never throwing: report
/// emission must not turn a successful bench run into a failure. Returns
/// the path written, or an empty string on error.
std::string write_default_run_report(const RunReportOptions& options);

}  // namespace drcshap::obs
