#include "place/placer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/log.hpp"

namespace drcshap {

namespace {

/// A maximal free x-interval within a placement row.
struct FreeSlot {
  double lo = 0.0;
  double hi = 0.0;
  double free_width() const { return hi - lo; }
};

/// One placement row: its y span and remaining free slots.
struct Row {
  double y_lo = 0.0;
  double y_hi = 0.0;
  std::vector<FreeSlot> slots;  ///< sorted by lo
};

/// Carve `obstacle`'s x-span out of the row's free slots if it overlaps in y.
void carve_obstacle(Row& row, const Rect& obstacle) {
  if (obstacle.y_hi <= row.y_lo || obstacle.y_lo >= row.y_hi) return;
  std::vector<FreeSlot> next;
  next.reserve(row.slots.size() + 1);
  for (const FreeSlot& s : row.slots) {
    if (obstacle.x_hi <= s.lo || obstacle.x_lo >= s.hi) {
      next.push_back(s);
      continue;
    }
    if (obstacle.x_lo > s.lo) next.push_back({s.lo, obstacle.x_lo});
    if (obstacle.x_hi < s.hi) next.push_back({obstacle.x_hi, s.hi});
  }
  row.slots = std::move(next);
}

/// Occupy [x, x + width) inside slot `index`, splitting the remainder into
/// up to two new free slots (keeps all remaining space usable).
void occupy(Row& row, std::size_t index, double x, double width) {
  const FreeSlot s = row.slots[index];
  row.slots.erase(row.slots.begin() + static_cast<std::ptrdiff_t>(index));
  if (x + width < s.hi - 1e-12) {
    row.slots.insert(row.slots.begin() + static_cast<std::ptrdiff_t>(index),
                     {x + width, s.hi});
  }
  if (x > s.lo + 1e-12) {
    row.slots.insert(row.slots.begin() + static_cast<std::ptrdiff_t>(index),
                     {s.lo, x});
  }
}

/// Try to place a cell of `width` in `row`, preferring x near `desired_x`.
/// Returns the placed x_lo or nullopt if the row has no room.
std::optional<double> try_place_in_row(Row& row, double width,
                                       double desired_x) {
  // Pass 1: the best-fitting slot near desired_x (smallest displacement).
  std::size_t best = row.slots.size();
  double best_cost = std::numeric_limits<double>::infinity();
  double best_x = 0.0;
  for (std::size_t i = 0; i < row.slots.size(); ++i) {
    const FreeSlot& s = row.slots[i];
    if (s.free_width() + 1e-12 < width) continue;
    const double x = std::clamp(desired_x, s.lo, s.hi - width);
    const double cost = std::abs(x - desired_x);
    if (cost < best_cost) {
      best_cost = cost;
      best = i;
      best_x = x;
    }
  }
  if (best == row.slots.size()) return std::nullopt;
  occupy(row, best, best_x, width);
  return best_x;
}

}  // namespace

Design place_design(const NetlistSpec& spec, const PlacerOptions& options) {
  if (spec.die.empty()) throw std::invalid_argument("place_design: empty die");
  if (options.row_height <= 0.0) {
    throw std::invalid_argument("place_design: non-positive row height");
  }
  Rng rng(options.seed);

  Design design(spec.name, spec.die, spec.gcells_x, spec.gcells_y, spec.tech);
  for (const Macro& m : spec.macros) design.add_macro(m);
  for (const Blockage& b : spec.blockages) design.add_blockage(b);
  // Macros also act as routing blockages on their blocked layers.
  for (const Macro& m : spec.macros) {
    design.add_blockage({m.box, 0, m.blocked_metal_layers - 1});
  }

  // Build rows and carve macro keep-outs.
  const std::size_t n_rows = static_cast<std::size_t>(
      std::floor(spec.die.height() / options.row_height));
  if (n_rows == 0) throw std::invalid_argument("place_design: die too short");
  std::vector<Row> rows(n_rows);
  for (std::size_t r = 0; r < n_rows; ++r) {
    rows[r].y_lo = spec.die.y_lo + static_cast<double>(r) * options.row_height;
    rows[r].y_hi = rows[r].y_lo + options.row_height;
    rows[r].slots = {{spec.die.x_lo, spec.die.x_hi}};
  }
  for (const Macro& m : spec.macros) {
    for (Row& row : rows) carve_obstacle(row, m.box);
  }

  // Draw a desired location per cell from its cluster, then legalize.
  struct Target {
    std::uint32_t cell = 0;
    double x = 0.0;
    std::size_t row = 0;
  };
  std::vector<Target> targets(spec.cells.size());
  for (std::uint32_t i = 0; i < spec.cells.size(); ++i) {
    const CellSpec& c = spec.cells[i];
    Point want = spec.die.center();
    if (c.cluster < spec.clusters.size()) {
      const ClusterSpec& cl = spec.clusters[c.cluster];
      want = {rng.normal(cl.center.x, cl.spread),
              rng.normal(cl.center.y, cl.spread)};
    } else {
      want = {rng.uniform(spec.die.x_lo, spec.die.x_hi),
              rng.uniform(spec.die.y_lo, spec.die.y_hi)};
    }
    want.x = std::clamp(want.x, spec.die.x_lo, spec.die.x_hi - c.width);
    want.y = std::clamp(want.y, spec.die.y_lo,
                        spec.die.y_hi - options.row_height);
    const auto row = static_cast<std::size_t>(
        std::min<double>(static_cast<double>(n_rows) - 1.0,
                         (want.y - spec.die.y_lo) / options.row_height));
    targets[i] = {i, want.x, row};
  }

  // Multi-height cells first (they span two rows and constrain more), then
  // single-height; within each class, row-major then by x so packing is
  // deterministic and locality-preserving.
  std::stable_sort(targets.begin(), targets.end(),
                   [&](const Target& a, const Target& b) {
                     const bool ma = spec.cells[a.cell].multi_height;
                     const bool mb = spec.cells[b.cell].multi_height;
                     if (ma != mb) return ma > mb;
                     if (a.row != b.row) return a.row < b.row;
                     return a.x < b.x;
                   });

  std::vector<Rect> placed(spec.cells.size());
  std::vector<bool> done(spec.cells.size(), false);

  auto place_single = [&](const Target& t) -> bool {
    const CellSpec& c = spec.cells[t.cell];
    // Spiral outward over rows from the target row.
    for (std::size_t d = 0; d < n_rows; ++d) {
      for (const int sign : {+1, -1}) {
        if (d == 0 && sign < 0) continue;
        const std::ptrdiff_t r =
            static_cast<std::ptrdiff_t>(t.row) + sign * static_cast<std::ptrdiff_t>(d);
        if (r < 0 || r >= static_cast<std::ptrdiff_t>(n_rows)) continue;
        Row& row = rows[static_cast<std::size_t>(r)];
        if (const auto x = try_place_in_row(row, c.width, t.x)) {
          placed[t.cell] = {*x, row.y_lo, *x + c.width, row.y_lo + c.height};
          return true;
        }
      }
    }
    return false;
  };

  auto place_multi = [&](const Target& t) -> bool {
    const CellSpec& c = spec.cells[t.cell];
    for (std::size_t d = 0; d < n_rows; ++d) {
      for (const int sign : {+1, -1}) {
        if (d == 0 && sign < 0) continue;
        const std::ptrdiff_t r0 =
            static_cast<std::ptrdiff_t>(t.row) + sign * static_cast<std::ptrdiff_t>(d);
        if (r0 < 0 || r0 + 1 >= static_cast<std::ptrdiff_t>(n_rows)) continue;
        Row& lower = rows[static_cast<std::size_t>(r0)];
        Row& upper = rows[static_cast<std::size_t>(r0) + 1];
        // Find an x position free in both rows: occupy in the lower row and
        // carve the same span out of the upper row.
        for (std::size_t i = 0; i < lower.slots.size(); ++i) {
          const FreeSlot& s = lower.slots[i];
          if (s.free_width() + 1e-12 < c.width) continue;
          const double x = std::clamp(t.x, s.lo, s.hi - c.width);
          const Rect span{x, upper.y_lo, x + c.width, upper.y_hi};
          bool upper_free = false;
          for (const FreeSlot& u : upper.slots) {
            if (u.lo <= x + 1e-12 && x + c.width <= u.hi + 1e-12) {
              upper_free = true;
              break;
            }
          }
          if (!upper_free) continue;
          occupy(lower, i, x, c.width);
          carve_obstacle(upper, span);
          placed[t.cell] = {x, lower.y_lo, x + c.width,
                            lower.y_lo + 2.0 * options.row_height};
          return true;
        }
      }
    }
    return false;
  };

  std::size_t failures = 0;
  for (const Target& t : targets) {
    const bool ok = spec.cells[t.cell].multi_height ? place_multi(t)
                                                    : place_single(t);
    if (ok) {
      done[t.cell] = true;
    } else {
      ++failures;
    }
  }
  if (failures > 0) {
    throw std::runtime_error("place_design: " + std::to_string(failures) +
                             " cells could not be legalized (die too full)");
  }

  // Materialize cells in spec order so CellIds match spec indices.
  for (std::uint32_t i = 0; i < spec.cells.size(); ++i) {
    design.add_cell({spec.name + "/c" + std::to_string(i), placed[i],
                     spec.cells[i].multi_height});
  }

  // Nets and pins. Pin offsets inside the owning cell are jittered
  // deterministically so pin-spacing statistics vary across g-cells.
  for (std::uint32_t n = 0; n < spec.nets.size(); ++n) {
    const NetSpec& ns = spec.nets[n];
    const NetId net_id = design.add_net(
        {spec.name + "/n" + std::to_string(n), {}, ns.is_clock, ns.has_ndr});
    for (const std::uint32_t cell_idx : ns.cells) {
      if (cell_idx >= spec.cells.size()) {
        throw std::invalid_argument("place_design: net references bad cell");
      }
      const Rect& box = placed[cell_idx];
      const double fx = 0.15 + 0.7 * rng.uniform();
      const double fy = 0.15 + 0.7 * rng.uniform();
      design.add_pin({cell_idx, net_id,
                      {box.x_lo + fx * box.width(), box.y_lo + fy * box.height()},
                      ns.is_clock, ns.has_ndr});
    }
  }

  design.validate();
  return design;
}

}  // namespace drcshap
