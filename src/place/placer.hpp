#pragma once
// Standard-cell placement stage.
//
// The paper's flow runs Eh?Placer on the ISPD-2015 netlists to obtain a placed
// .def before global routing. Our synthetic flow mirrors this: the benchmark
// generator emits an *unplaced* netlist specification (cell sizes, clustered
// net topology, fixed macros), and this placer turns it into a legal placed
// Design: cells snapped to rows, no overlaps, macro keep-outs respected, with
// the cluster structure preserved so that realistic density hot zones form.

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/design.hpp"
#include "util/rng.hpp"

namespace drcshap {

/// A cell to be placed. `cluster` indexes into NetlistSpec::clusters and
/// biases where the cell lands, emulating the netlist locality real placers
/// produce.
struct CellSpec {
  double width = 1.0;
  double height = 2.0;
  bool multi_height = false;
  std::uint32_t cluster = 0;
};

/// A net connecting pins on the listed cells (indices into NetlistSpec::cells).
struct NetSpec {
  std::vector<std::uint32_t> cells;
  bool is_clock = false;
  bool has_ndr = false;
};

/// Gaussian density attractor for a group of cells.
struct ClusterSpec {
  Point center;
  double spread = 50.0;  ///< stddev of placement around the center, microns
};

/// Complete unplaced design specification.
struct NetlistSpec {
  std::string name;
  Rect die;
  std::size_t gcells_x = 1;
  std::size_t gcells_y = 1;
  Technology tech;
  std::vector<CellSpec> cells;
  std::vector<NetSpec> nets;
  std::vector<ClusterSpec> clusters;
  std::vector<Macro> macros;       ///< pre-placed, fixed
  std::vector<Blockage> blockages; ///< extra routing blockages
};

struct PlacerOptions {
  double row_height = 2.0;       ///< placement row pitch, microns
  double target_density = 0.85;  ///< max row fill fraction before spilling
  std::uint64_t seed = 1;
};

/// Places the specification into a legal Design.
///
/// Guarantees (checked by tests):
///  - every cell box lies inside the die,
///  - no two cell boxes overlap,
///  - no cell box overlaps a macro box,
///  - every net in the spec appears with one pin per listed cell,
///  - pins lie inside their owning cell's box,
///  - deterministic for a fixed (spec, options) pair.
Design place_design(const NetlistSpec& spec, const PlacerOptions& options = {});

}  // namespace drcshap
