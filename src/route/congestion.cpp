#include "route/congestion.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/registry.hpp"

namespace drcshap {

CongestionMap CongestionMap::extract(const GridGraph& graph) {
  DRCSHAP_OBS_TIMER("route/congestion_extract");
  CongestionMap map;
  map.nx_ = graph.nx();
  map.ny_ = graph.ny();
  map.num_metal_ = graph.num_metal_layers();

  map.edge_cap_.resize(static_cast<std::size_t>(map.num_metal_));
  map.edge_load_.resize(static_cast<std::size_t>(map.num_metal_));
  for (int m = 0; m < map.num_metal_; ++m) {
    const std::size_t count = Technology::is_horizontal(m)
                                  ? (map.nx_ - 1) * map.ny_
                                  : map.nx_ * (map.ny_ - 1);
    auto& caps = map.edge_cap_[static_cast<std::size_t>(m)];
    auto& loads = map.edge_load_[static_cast<std::size_t>(m)];
    caps.resize(count);
    loads.resize(count);
    for (std::size_t cell = 0; cell < graph.num_cells(); ++cell) {
      const auto e = graph.edge_low(m, cell);
      if (!e) continue;
      const std::size_t c = cell % map.nx_;
      const std::size_t r = cell / map.nx_;
      const std::size_t w = Technology::is_horizontal(m)
                                ? r * (map.nx_ - 1) + c
                                : r * map.nx_ + c;
      caps[w] = graph.edge_capacity(*e);
      loads[w] = graph.edge_load(*e);
    }
  }

  map.via_cap_.resize(static_cast<std::size_t>(map.num_via_layers()));
  map.via_load_.resize(static_cast<std::size_t>(map.num_via_layers()));
  for (int v = 0; v < map.num_via_layers(); ++v) {
    auto& caps = map.via_cap_[static_cast<std::size_t>(v)];
    auto& loads = map.via_load_[static_cast<std::size_t>(v)];
    caps.resize(graph.num_cells());
    loads.resize(graph.num_cells());
    for (std::size_t cell = 0; cell < graph.num_cells(); ++cell) {
      caps[cell] = graph.via_capacity(v, cell);
      loads[cell] = graph.via_load(v, cell);
    }
  }
  return map;
}

std::size_t CongestionMap::edge_index(int metal, std::size_t low_cell) const {
  const std::size_t c = low_cell % nx_;
  const std::size_t r = low_cell / nx_;
  return Technology::is_horizontal(metal) ? r * (nx_ - 1) + c : r * nx_ + c;
}

bool CongestionMap::has_edge(int metal, std::size_t cell_a,
                             std::size_t cell_b) const {
  if (metal < 0 || metal >= num_metal_) return false;
  const std::size_t lo = std::min(cell_a, cell_b);
  const std::size_t hi = std::max(cell_a, cell_b);
  if (hi >= nx_ * ny_) return false;
  const bool horizontal_step = (hi == lo + 1) && (lo % nx_ != nx_ - 1);
  const bool vertical_step = hi == lo + nx_;
  if (!horizontal_step && !vertical_step) return false;
  return Technology::is_horizontal(metal) ? horizontal_step : vertical_step;
}

int CongestionMap::edge_capacity(int metal, std::size_t cell_a,
                                 std::size_t cell_b) const {
  if (!has_edge(metal, cell_a, cell_b)) return 0;
  return edge_cap_[static_cast<std::size_t>(metal)]
                  [edge_index(metal, std::min(cell_a, cell_b))];
}

int CongestionMap::edge_load(int metal, std::size_t cell_a,
                             std::size_t cell_b) const {
  if (!has_edge(metal, cell_a, cell_b)) return 0;
  return edge_load_[static_cast<std::size_t>(metal)]
                   [edge_index(metal, std::min(cell_a, cell_b))];
}

int CongestionMap::via_capacity(int via_layer, std::size_t cell) const {
  return via_cap_.at(static_cast<std::size_t>(via_layer)).at(cell);
}

int CongestionMap::via_load(int via_layer, std::size_t cell) const {
  return via_load_.at(static_cast<std::size_t>(via_layer)).at(cell);
}

double CongestionMap::cell_edge_utilization(int metal, std::size_t cell) const {
  double worst = 0.0;
  const std::size_t c = cell % nx_;
  const std::size_t r = cell / nx_;
  auto consider = [&](std::size_t a, std::size_t b) {
    const int cap = edge_capacity(metal, a, b);
    const int load = edge_load(metal, a, b);
    if (cap > 0) {
      worst = std::max(worst, static_cast<double>(load) / cap);
    } else if (load > 0) {
      worst = std::max(worst, 2.0);
    }
  };
  if (Technology::is_horizontal(metal)) {
    if (c > 0) consider(cell - 1, cell);
    if (c + 1 < nx_) consider(cell, cell + 1);
  } else {
    if (r > 0) consider(cell - nx_, cell);
    if (r + 1 < ny_) consider(cell, cell + nx_);
  }
  return worst;
}

int CongestionMap::cell_edge_overflow(int metal, std::size_t cell) const {
  int total = 0;
  const std::size_t c = cell % nx_;
  const std::size_t r = cell / nx_;
  auto consider = [&](std::size_t a, std::size_t b) {
    total += std::max(0, edge_load(metal, a, b) - edge_capacity(metal, a, b));
  };
  if (Technology::is_horizontal(metal)) {
    if (c > 0) consider(cell - 1, cell);
    if (c + 1 < nx_) consider(cell, cell + 1);
  } else {
    if (r > 0) consider(cell - nx_, cell);
    if (r + 1 < ny_) consider(cell, cell + nx_);
  }
  return total;
}

long CongestionMap::total_edge_overflow() const {
  long total = 0;
  for (int m = 0; m < num_metal_; ++m) {
    const auto& caps = edge_cap_[static_cast<std::size_t>(m)];
    const auto& loads = edge_load_[static_cast<std::size_t>(m)];
    for (std::size_t i = 0; i < caps.size(); ++i) {
      total += std::max(0, loads[i] - caps[i]);
    }
  }
  return total;
}

long CongestionMap::total_via_overflow() const {
  long total = 0;
  for (int v = 0; v < num_via_layers(); ++v) {
    const auto& caps = via_cap_[static_cast<std::size_t>(v)];
    const auto& loads = via_load_[static_cast<std::size_t>(v)];
    for (std::size_t i = 0; i < caps.size(); ++i) {
      total += std::max(0, loads[i] - caps[i]);
    }
  }
  return total;
}

std::string CongestionMap::ascii_heatmap(int metal) const {
  static const char kRamp[] = " .:-=+*%@#";
  std::string out;
  out.reserve((nx_ + 1) * ny_);
  for (std::size_t rr = ny_; rr-- > 0;) {
    for (std::size_t c = 0; c < nx_; ++c) {
      const double u = cell_edge_utilization(metal, rr * nx_ + c);
      const int level = std::min(9, static_cast<int>(std::floor(u * 9.0)));
      out += kRamp[level];
    }
    out += '\n';
  }
  return out;
}

}  // namespace drcshap
