#pragma once
// Immutable congestion-map snapshot extracted after global routing.
//
// This is the left-panel artifact of the paper's Fig. 1: per metal layer, the
// capacity/load of every g-cell boundary edge; per via layer, the
// capacity/load of every g-cell. Feature extraction (Section II-A) and the
// DRC oracle both read this snapshot rather than the live GridGraph.

#include <cstddef>
#include <string>
#include <vector>

#include "route/grid_graph.hpp"

namespace drcshap {

class CongestionMap {
 public:
  /// Snapshot the current loads/capacities of `graph`.
  static CongestionMap extract(const GridGraph& graph);

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  int num_metal_layers() const { return num_metal_; }
  int num_via_layers() const { return num_metal_ - 1; }
  std::size_t num_cells() const { return nx_ * ny_; }

  /// True if layer `metal` has an edge between `cell_a` and `cell_b`
  /// (cells must be grid-adjacent; the layer direction must cross their
  /// shared boundary).
  bool has_edge(int metal, std::size_t cell_a, std::size_t cell_b) const;

  /// Capacity / load of the boundary edge between two adjacent cells on
  /// `metal`. Returns 0 for boundaries the layer does not cross.
  int edge_capacity(int metal, std::size_t cell_a, std::size_t cell_b) const;
  int edge_load(int metal, std::size_t cell_a, std::size_t cell_b) const;

  int via_capacity(int via_layer, std::size_t cell) const;
  int via_load(int via_layer, std::size_t cell) const;

  /// Max utilization (load/capacity; overflow counts as > 1) across metal
  /// edges incident to `cell` on `metal`. Used for reporting/heat maps.
  double cell_edge_utilization(int metal, std::size_t cell) const;

  /// Sum of positive (load - capacity) over all edges of `metal` incident
  /// to `cell`.
  int cell_edge_overflow(int metal, std::size_t cell) const;

  long total_edge_overflow() const;
  long total_via_overflow() const;

  /// ASCII heat map of a layer's edge utilization (one char per g-cell,
  /// '.' cold .. '#' overflowed); for the congestion_map example and debug.
  std::string ascii_heatmap(int metal) const;

 private:
  CongestionMap() = default;

  std::size_t edge_index(int metal, std::size_t low_cell) const;

  std::size_t nx_ = 0;
  std::size_t ny_ = 0;
  int num_metal_ = 0;
  // Per metal layer: edges indexed like GridGraph's "within" index.
  std::vector<std::vector<int>> edge_cap_;
  std::vector<std::vector<int>> edge_load_;
  // Per via layer: per g-cell.
  std::vector<std::vector<int>> via_cap_;
  std::vector<std::vector<int>> via_load_;
};

}  // namespace drcshap
