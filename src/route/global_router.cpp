#include "route/global_router.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/registry.hpp"
#include "route/maze_router.hpp"
#include "route/pattern_router.hpp"
#include "util/log.hpp"

namespace drcshap {

std::vector<std::pair<std::size_t, std::size_t>> decompose_net(
    const Design& design, NetId net_id) {
  const GCellGrid& grid = design.grid();
  // Distinct g-cells touched by the net's pins, in first-seen order. A
  // sorted flat set carries the membership test so high-fanout nets pay
  // O(log k) lookups instead of the former O(k) linear find per pin.
  std::vector<std::size_t> cells;
  std::vector<std::size_t> seen;  // sorted
  for (const PinId p : design.net(net_id).pins) {
    const std::size_t cell = grid.locate(design.pin(p).position);
    const auto it = std::lower_bound(seen.begin(), seen.end(), cell);
    if (it != seen.end() && *it == cell) continue;
    seen.insert(it, cell);
    cells.push_back(cell);
  }
  std::vector<std::pair<std::size_t, std::size_t>> segments;
  if (cells.size() < 2) return segments;

  // Prim MST over Manhattan g-cell distance (nets are small: O(k^2) is fine).
  const std::size_t nx = grid.nx();
  auto dist = [&](std::size_t a, std::size_t b) {
    const auto ca = static_cast<long>(a % nx), ra = static_cast<long>(a / nx);
    const auto cb = static_cast<long>(b % nx), rb = static_cast<long>(b / nx);
    return std::labs(ca - cb) + std::labs(ra - rb);
  };
  std::vector<bool> in_tree(cells.size(), false);
  std::vector<long> best_dist(cells.size(), std::numeric_limits<long>::max());
  std::vector<std::size_t> best_parent(cells.size(), 0);
  in_tree[0] = true;
  for (std::size_t i = 1; i < cells.size(); ++i) {
    best_dist[i] = dist(cells[0], cells[i]);
    best_parent[i] = 0;
  }
  for (std::size_t added = 1; added < cells.size(); ++added) {
    std::size_t pick = 0;
    long pick_dist = std::numeric_limits<long>::max();
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (!in_tree[i] && best_dist[i] < pick_dist) {
        pick = i;
        pick_dist = best_dist[i];
      }
    }
    in_tree[pick] = true;
    segments.emplace_back(cells[best_parent[pick]], cells[pick]);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (!in_tree[i]) {
        const long d = dist(cells[pick], cells[i]);
        if (d < best_dist[i]) {
          best_dist[i] = d;
          best_parent[i] = pick;
        }
      }
    }
  }
  return segments;
}

namespace {

/// True if any resource used by `path` is overflowed in `graph`.
bool touches_overflow(const GridGraph& graph, const RoutePath& path) {
  for (const EdgeId e : path.edges) {
    if (graph.edge_overflow(e) > 0) return true;
  }
  for (const auto& [layer, cell] : path.vias) {
    if (graph.via_overflow(layer, cell) > 0) return true;
  }
  return false;
}

}  // namespace

GlobalRouteResult global_route(const Design& design,
                               const GlobalRouterOptions& options) {
  DRCSHAP_OBS_TIMER("route/global_route");
  GridGraph graph(design);
  const GCellGrid& grid = design.grid();

  // Pin-access demand: each net adds one V1 via per distinct g-cell its pins
  // occupy (the connection from the pin level into the routing fabric).
  {
    std::vector<std::size_t> pin_cells;
    for (NetId n = 0; n < design.num_nets(); ++n) {
      pin_cells.clear();
      for (const PinId p : design.net(n).pins) {
        pin_cells.push_back(grid.locate(design.pin(p).position));
      }
      std::sort(pin_cells.begin(), pin_cells.end());
      pin_cells.erase(std::unique(pin_cells.begin(), pin_cells.end()),
                      pin_cells.end());
      for (const std::size_t cell : pin_cells) graph.add_via_load(0, cell, 1);
    }
  }

  // Flatten all nets into 2-pin segments, track which net owns each.
  struct Segment {
    NetId net;
    std::size_t seg_index;
    std::size_t a, b;
    long length;
  };
  std::vector<Segment> segments;
  CongestionMap placeholder = CongestionMap::extract(graph);
  GlobalRouteResult result{std::move(graph), std::move(placeholder),
                           {}, 0, 0, 0, 0, 0};
  result.routes.resize(design.num_nets());
  const std::size_t nx = grid.nx();
  for (NetId n = 0; n < design.num_nets(); ++n) {
    result.routes[n].net = n;
    auto pairs = decompose_net(design, n);
    result.routes[n].segments.resize(pairs.size());
    for (std::size_t s = 0; s < pairs.size(); ++s) {
      const auto [a, b] = pairs[s];
      const long len = std::labs(static_cast<long>(a % nx) - static_cast<long>(b % nx)) +
                       std::labs(static_cast<long>(a / nx) - static_cast<long>(b / nx));
      segments.push_back({n, s, a, b, len});
    }
  }
  result.segments_total = segments.size();

  // Route short segments first: they have the fewest detour options.
  std::stable_sort(segments.begin(), segments.end(),
                   [](const Segment& x, const Segment& y) {
                     return x.length < y.length;
                   });

  obs::counter_add("route/segments", segments.size());

  GridGraph& g = result.graph;
  {
    DRCSHAP_OBS_TIMER("route/pattern_route");
    for (const Segment& s : segments) {
      RoutePath path = pattern_route(g, s.a, s.b, options.cost);
      commit(g, path);
      result.routes[s.net].segments[s.seg_index] = std::move(path);
    }
  }

  // Negotiated-congestion rip-up-and-reroute.
  MazeRouter maze(g);
  if (options.use_maze) {
    DRCSHAP_OBS_TIMER("route/ripup_reroute");
    for (int iter = 0; iter < options.max_ripup_iterations; ++iter) {
      if (g.total_edge_overflow() == 0 && g.total_via_overflow() == 0) break;
      ++result.iterations_run;
      obs::counter_add("route/ripup_iterations");

      // Accumulate history on currently overflowed edges.
      for (std::size_t e = 0; e < g.num_edges(); ++e) {
        const int over = g.edge_overflow(static_cast<EdgeId>(e));
        if (over > 0) {
          g.add_edge_history(static_cast<EdgeId>(e),
                             options.history_increment * over);
        }
      }

      std::size_t rerouted = 0;
      for (const Segment& s : segments) {
        if (rerouted >= options.max_reroutes_per_iteration) break;
        RoutePath& path = result.routes[s.net].segments[s.seg_index];
        if (path.empty() || !touches_overflow(g, path)) continue;
        uncommit(g, path);
        MazeResult mr = maze.route(s.a, s.b, options.cost);
        if (mr.found) {
          path = std::move(mr.path);
        }
        // (if not found, recommit the old path)
        commit(g, path);
        ++rerouted;
        // Once nothing is overflowed (the totals are O(1)), every remaining
        // segment would fail touches_overflow anyway — stop scanning.
        if (g.total_edge_overflow() == 0 && g.total_via_overflow() == 0) {
          break;
        }
      }
      result.segments_rerouted += rerouted;
      log_debug("global_route iter ", iter, ": rerouted ", rerouted,
                ", edge_ovf ", g.total_edge_overflow(), ", via_ovf ",
                g.total_via_overflow());
      if (rerouted == 0) break;
    }
  }

  result.edge_overflow = g.total_edge_overflow();
  result.via_overflow = g.total_via_overflow();
  result.congestion = CongestionMap::extract(g);
  obs::counter_add("route/segments_rerouted", result.segments_rerouted);
  obs::gauge_set("route/edge_overflow",
                 static_cast<double>(result.edge_overflow));
  obs::gauge_set("route/via_overflow",
                 static_cast<double>(result.via_overflow));
  return result;
}

}  // namespace drcshap
