#include "route/global_router.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/registry.hpp"
#include "route/maze_router.hpp"
#include "route/pattern_router.hpp"
#include "util/log.hpp"

namespace drcshap {

std::vector<std::pair<std::size_t, std::size_t>> decompose_net(
    const Design& design, NetId net_id) {
  const GCellGrid& grid = design.grid();
  // Distinct g-cells touched by the net's pins, in first-seen order. A
  // sorted flat set carries the membership test so high-fanout nets pay
  // O(log k) lookups instead of the former O(k) linear find per pin.
  std::vector<std::size_t> cells;
  std::vector<std::size_t> seen;  // sorted
  for (const PinId p : design.net(net_id).pins) {
    const std::size_t cell = grid.locate(design.pin(p).position);
    const auto it = std::lower_bound(seen.begin(), seen.end(), cell);
    if (it != seen.end() && *it == cell) continue;
    seen.insert(it, cell);
    cells.push_back(cell);
  }
  std::vector<std::pair<std::size_t, std::size_t>> segments;
  if (cells.size() < 2) return segments;

  // Prim MST over Manhattan g-cell distance (nets are small: O(k^2) is fine).
  const std::size_t nx = grid.nx();
  auto dist = [&](std::size_t a, std::size_t b) {
    const auto ca = static_cast<long>(a % nx), ra = static_cast<long>(a / nx);
    const auto cb = static_cast<long>(b % nx), rb = static_cast<long>(b / nx);
    return std::labs(ca - cb) + std::labs(ra - rb);
  };
  std::vector<bool> in_tree(cells.size(), false);
  std::vector<long> best_dist(cells.size(), std::numeric_limits<long>::max());
  std::vector<std::size_t> best_parent(cells.size(), 0);
  in_tree[0] = true;
  for (std::size_t i = 1; i < cells.size(); ++i) {
    best_dist[i] = dist(cells[0], cells[i]);
    best_parent[i] = 0;
  }
  for (std::size_t added = 1; added < cells.size(); ++added) {
    std::size_t pick = 0;
    long pick_dist = std::numeric_limits<long>::max();
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (!in_tree[i] && best_dist[i] < pick_dist) {
        pick = i;
        pick_dist = best_dist[i];
      }
    }
    in_tree[pick] = true;
    segments.emplace_back(cells[best_parent[pick]], cells[pick]);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (!in_tree[i]) {
        const long d = dist(cells[pick], cells[i]);
        if (d < best_dist[i]) {
          best_dist[i] = d;
          best_parent[i] = pick;
        }
      }
    }
  }
  return segments;
}

namespace {

/// True if any resource used by `path` is overflowed in `graph`.
bool touches_overflow(const GridGraph& graph, const RoutePath& path) {
  for (const EdgeId e : path.edges) {
    if (graph.edge_overflow(e) > 0) return true;
  }
  for (const auto& [layer, cell] : path.vias) {
    if (graph.via_overflow(layer, cell) > 0) return true;
  }
  return false;
}

/// Conservative cell-granularity divergence set of a replay run vs its base
/// trace. Invariant the reuse checks rely on: if a cell is clean, every
/// resource incident to it has had an identical (capacity, load, history)
/// trajectory in both runs up to the current control point — so any
/// recorded sub-result whose entire read set lies on clean cells would come
/// out identical if recomputed. Marks are monotone; every divergence marks
/// the cells of all resources involved before any later reuse decision.
class ReplayDirty {
 public:
  void init(const GridGraph& g, const RouteTrace& base) {
    nx_ = g.nx();
    cells_.assign(g.num_cells(), 0);
    const std::size_t num_cells = g.num_cells();
    if (base.edge_capacity.size() != g.num_edges() ||
        base.via_capacity.size() !=
            static_cast<std::size_t>(g.num_via_layers()) * num_cells) {
      mark_all();
      return;
    }
    for (std::size_t e = 0; e < g.num_edges(); ++e) {
      if (g.edge_capacity(static_cast<EdgeId>(e)) != base.edge_capacity[e]) {
        const auto [a, b] = g.edge_cells(static_cast<EdgeId>(e));
        mark_cell(a);
        mark_cell(b);
      }
    }
    for (int v = 0; v < g.num_via_layers(); ++v) {
      const std::size_t off = static_cast<std::size_t>(v) * num_cells;
      for (std::size_t c = 0; c < num_cells; ++c) {
        if (g.via_capacity(v, c) != base.via_capacity[off + c]) mark_cell(c);
      }
    }
  }

  void diff_pin_access(const GridGraph& g, const RouteTrace& base) {
    if (all_dirty_) return;
    if (base.pin_access_load.size() != g.num_cells()) {
      mark_all();
      return;
    }
    for (std::size_t c = 0; c < g.num_cells(); ++c) {
      if (g.via_load(0, c) != base.pin_access_load[c]) mark_cell(c);
    }
  }

  void mark_all() {
    std::fill(cells_.begin(), cells_.end(), std::uint8_t{1});
    marked_ = cells_.size();
    all_dirty_ = true;
  }

  void mark_cell(std::size_t cell) {
    if (cells_[cell] == 0) {
      cells_[cell] = 1;
      ++marked_;
    }
  }

  void mark_path(const GridGraph& g, const RoutePath& path) {
    for (const EdgeId e : path.edges) {
      const auto [a, b] = g.edge_cells(e);
      mark_cell(a);
      mark_cell(b);
    }
    for (const auto& [layer, cell] : path.vias) {
      (void)layer;
      mark_cell(cell);
    }
  }

  bool box_clean(std::size_t col_lo, std::size_t col_hi, std::size_t row_lo,
                 std::size_t row_hi) const {
    for (std::size_t r = row_lo; r <= row_hi; ++r) {
      const std::uint8_t* row = cells_.data() + r * nx_;
      for (std::size_t c = col_lo; c <= col_hi; ++c) {
        if (row[c] != 0) return false;
      }
    }
    return true;
  }

  /// A pattern candidate only reads resources on the perimeter of
  /// bbox(a, b): the runs along the two endpoint rows and columns, plus via
  /// stacks at the endpoints and corners. Every read edge has both cells on
  /// those four grid lines, and a diverged resource marks all its cells, so
  /// clean lines prove the whole pattern read set unchanged.
  bool pattern_clean(std::size_t a, std::size_t b) const {
    const std::size_t ca = a % nx_, ra = a / nx_;
    const std::size_t cb = b % nx_, rb = b / nx_;
    const std::size_t clo = std::min(ca, cb), chi = std::max(ca, cb);
    const std::size_t rlo = std::min(ra, rb), rhi = std::max(ra, rb);
    for (std::size_t c = clo; c <= chi; ++c) {
      if (cells_[rlo * nx_ + c] != 0 || cells_[rhi * nx_ + c] != 0) {
        return false;
      }
    }
    for (std::size_t r = rlo; r <= rhi; ++r) {
      if (cells_[r * nx_ + clo] != 0 || cells_[r * nx_ + chi] != 0) {
        return false;
      }
    }
    return true;
  }

  std::size_t marked() const { return marked_; }

 private:
  std::vector<std::uint8_t> cells_;
  std::size_t nx_ = 0;
  std::size_t marked_ = 0;
  bool all_dirty_ = false;
};

}  // namespace

GlobalRouteResult global_route(const Design& design,
                               const GlobalRouterOptions& options) {
  return global_route_traced(design, options, nullptr, nullptr);
}

GlobalRouteResult global_route_traced(const Design& design,
                                      const GlobalRouterOptions& options,
                                      RouteTrace* trace_out,
                                      const RouteReplayInput* replay) {
  DRCSHAP_OBS_TIMER("route/global_route");
  GridGraph graph(design);
  const GCellGrid& grid = design.grid();

  const RouteTrace* base = (replay != nullptr) ? replay->base : nullptr;
  ReplayDirty dirty;
  if (base != nullptr) dirty.init(graph, *base);

  if (trace_out != nullptr) {
    const std::size_t num_cells = graph.num_cells();
    trace_out->edge_capacity.resize(graph.num_edges());
    for (std::size_t e = 0; e < graph.num_edges(); ++e) {
      trace_out->edge_capacity[e] =
          graph.edge_capacity(static_cast<EdgeId>(e));
    }
    trace_out->via_capacity.resize(
        static_cast<std::size_t>(graph.num_via_layers()) * num_cells);
    for (int v = 0; v < graph.num_via_layers(); ++v) {
      const std::size_t off = static_cast<std::size_t>(v) * num_cells;
      for (std::size_t c = 0; c < num_cells; ++c) {
        trace_out->via_capacity[off + c] = graph.via_capacity(v, c);
      }
    }
  }

  // Pin-access demand: each net adds one V1 via per distinct g-cell its pins
  // occupy (the connection from the pin level into the routing fabric).
  {
    std::vector<std::size_t> pin_cells;
    for (NetId n = 0; n < design.num_nets(); ++n) {
      pin_cells.clear();
      for (const PinId p : design.net(n).pins) {
        pin_cells.push_back(grid.locate(design.pin(p).position));
      }
      std::sort(pin_cells.begin(), pin_cells.end());
      pin_cells.erase(std::unique(pin_cells.begin(), pin_cells.end()),
                      pin_cells.end());
      for (const std::size_t cell : pin_cells) graph.add_via_load(0, cell, 1);
    }
  }
  if (base != nullptr) dirty.diff_pin_access(graph, *base);
  if (trace_out != nullptr) {
    trace_out->pin_access_load.resize(graph.num_cells());
    for (std::size_t c = 0; c < graph.num_cells(); ++c) {
      trace_out->pin_access_load[c] = graph.via_load(0, c);
    }
  }

  // Flatten all nets into 2-pin segments, track which net owns each.
  std::vector<TraceSegment> segments;
  CongestionMap placeholder = CongestionMap::extract(graph);
  GlobalRouteResult result{std::move(graph), std::move(placeholder),
                           {}, 0, 0, 0, 0, 0};
  result.routes.resize(design.num_nets());
  const std::size_t nx = grid.nx();
  for (NetId n = 0; n < design.num_nets(); ++n) {
    result.routes[n].net = n;
    auto pairs = decompose_net(design, n);
    result.routes[n].segments.resize(pairs.size());
    for (std::size_t s = 0; s < pairs.size(); ++s) {
      const auto [a, b] = pairs[s];
      const long len = std::labs(static_cast<long>(a % nx) -
                                 static_cast<long>(b % nx)) +
                       std::labs(static_cast<long>(a / nx) -
                                 static_cast<long>(b / nx));
      segments.push_back({n, s, a, b, len});
    }
  }
  result.segments_total = segments.size();

  // Route short segments first: they have the fewest detour options.
  std::stable_sort(segments.begin(), segments.end(),
                   [](const TraceSegment& x, const TraceSegment& y) {
                     return x.length < y.length;
                   });

  obs::counter_add("route/segments", segments.size());

  // Record alignment is positional, so a base trace whose segment order no
  // longer matches the design's (an edit changed pins — nothing the current
  // EcoEdit kinds can do) is dropped: everything recomputes, which is still
  // exactly the full algorithm.
  if (base != nullptr &&
      (base->segments != segments || base->pattern.size() != segments.size())) {
    base = nullptr;
  }
  if (trace_out != nullptr) trace_out->segments = segments;

  GridGraph& g = result.graph;
  {
    DRCSHAP_OBS_TIMER("route/pattern_route");
    for (std::size_t i = 0; i < segments.size(); ++i) {
      const TraceSegment& s = segments[i];
      const bool forced = replay != nullptr && !replay->force_net.empty() &&
                          replay->force_net[s.net] != 0;
      RoutePath path;
      if (base != nullptr && !forced && dirty.pattern_clean(s.a, s.b)) {
        path = base->pattern[i];
        ++result.pattern_reused;
      } else {
        path = pattern_route(g, s.a, s.b, options.cost);
        if (base != nullptr && path != base->pattern[i]) {
          // This run and the base committed different demand here: both
          // versions' resources diverge from now on.
          dirty.mark_path(g, base->pattern[i]);
          dirty.mark_path(g, path);
        }
      }
      commit(g, path);
      if (trace_out != nullptr) trace_out->pattern.push_back(path);
      result.routes[s.net].segments[s.seg_index] = std::move(path);
    }
  }

  // Negotiated-congestion rip-up-and-reroute.
  MazeRouter maze(g);
  if (options.use_maze) {
    DRCSHAP_OBS_TIMER("route/ripup_reroute");
    for (int iter = 0; iter < options.max_ripup_iterations; ++iter) {
      if (g.total_edge_overflow() == 0 && g.total_via_overflow() == 0) break;
      ++result.iterations_run;
      obs::counter_add("route/ripup_iterations");

      // Accumulate history on currently overflowed edges.
      for (std::size_t e = 0; e < g.num_edges(); ++e) {
        const int over = g.edge_overflow(static_cast<EdgeId>(e));
        if (over > 0) {
          g.add_edge_history(static_cast<EdgeId>(e),
                             options.history_increment * over);
        }
      }

      const std::vector<TraceMazeRecord>* base_iter =
          (base != nullptr &&
           static_cast<std::size_t>(iter) < base->ripup.size())
              ? &base->ripup[static_cast<std::size_t>(iter)]
              : nullptr;
      std::size_t base_ptr = 0;
      // Base records with ordinals this run passes without rerouting are
      // reroutes the base performed and this run will not: everything those
      // calls touched diverges, and must be marked before any reuse
      // decision at a later ordinal.
      const auto consume_skipped_records = [&](std::size_t up_to_ordinal) {
        if (base_iter == nullptr) return;
        while (base_ptr < base_iter->size() &&
               (*base_iter)[base_ptr].ordinal < up_to_ordinal) {
          dirty.mark_path(g, (*base_iter)[base_ptr].removed);
          dirty.mark_path(g, (*base_iter)[base_ptr].committed);
          ++base_ptr;
        }
      };
      if (trace_out != nullptr) trace_out->ripup.emplace_back();

      std::size_t rerouted = 0;
      for (std::size_t i = 0; i < segments.size(); ++i) {
        const TraceSegment& s = segments[i];
        if (rerouted >= options.max_reroutes_per_iteration) break;
        RoutePath& path = result.routes[s.net].segments[s.seg_index];
        if (path.empty() || !touches_overflow(g, path)) continue;
        consume_skipped_records(i);
        const TraceMazeRecord* rec =
            (base_iter != nullptr && base_ptr < base_iter->size() &&
             (*base_iter)[base_ptr].ordinal == i)
                ? &(*base_iter)[base_ptr]
                : nullptr;
        if (rec != nullptr) ++base_ptr;
        const bool forced = replay != nullptr && !replay->force_net.empty() &&
                            replay->force_net[s.net] != 0;

        uncommit(g, path);
        MazeResult mr;
        bool reused = false;
        if (rec != nullptr && !forced &&
            dirty.box_clean(rec->col_lo, rec->col_hi, rec->row_lo,
                            rec->row_hi)) {
          // The base maze call's entire read set (resources incident to its
          // popped cells) is unchanged, so re-running it would reproduce
          // the recorded outcome.
          mr.found = rec->found;
          if (rec->found) mr.path = rec->committed;
          mr.col_lo = rec->col_lo;
          mr.col_hi = rec->col_hi;
          mr.row_lo = rec->row_lo;
          mr.row_hi = rec->row_hi;
          reused = true;
          ++result.maze_reused;
        } else {
          mr = maze.route(s.a, s.b, options.cost);
          if (replay != nullptr) ++result.maze_recomputed;
          if (base != nullptr) {
            if (rec != nullptr) {
              const RoutePath& now_new = mr.found ? mr.path : path;
              if (rec->found != mr.found || rec->removed != path ||
                  rec->committed != now_new) {
                dirty.mark_path(g, rec->removed);
                dirty.mark_path(g, rec->committed);
                dirty.mark_path(g, path);
                dirty.mark_path(g, now_new);
              }
            } else {
              // This run reroutes where the base did not: the base's
              // version of this segment is `path` or an ancestor already
              // marked when it diverged, so marking the two paths this
              // call touches covers the difference.
              dirty.mark_path(g, path);
              if (mr.found) dirty.mark_path(g, mr.path);
            }
          }
        }

        TraceMazeRecord out_rec;
        if (trace_out != nullptr) {
          out_rec.ordinal = i;
          out_rec.found = mr.found;
          out_rec.removed = path;
          out_rec.col_lo = mr.col_lo;
          out_rec.col_hi = mr.col_hi;
          out_rec.row_lo = mr.row_lo;
          out_rec.row_hi = mr.row_hi;
        }
        (void)reused;
        if (mr.found) {
          path = std::move(mr.path);
        }
        // (if not found, recommit the old path)
        commit(g, path);
        if (trace_out != nullptr) {
          out_rec.committed = path;
          trace_out->ripup.back().push_back(std::move(out_rec));
        }
        ++rerouted;
        // Once nothing is overflowed (the totals are O(1)), every remaining
        // segment would fail touches_overflow anyway — stop scanning.
        if (g.total_edge_overflow() == 0 && g.total_via_overflow() == 0) {
          break;
        }
      }
      consume_skipped_records(segments.size());
      result.segments_rerouted += rerouted;
      log_debug("global_route iter ", iter, ": rerouted ", rerouted,
                ", edge_ovf ", g.total_edge_overflow(), ", via_ovf ",
                g.total_via_overflow());
      if (rerouted == 0) break;
    }
  }

  result.edge_overflow = g.total_edge_overflow();
  result.via_overflow = g.total_via_overflow();
  result.congestion = CongestionMap::extract(g);
  if (replay != nullptr) {
    result.replay_dirty_cells = (base != nullptr) ? dirty.marked() : 0;
    obs::counter_add("route/eco_pattern_reused", result.pattern_reused);
    obs::counter_add("route/eco_maze_reused", result.maze_reused);
    obs::counter_add("route/eco_maze_recomputed", result.maze_recomputed);
  }
  obs::counter_add("route/segments_rerouted", result.segments_rerouted);
  obs::gauge_set("route/edge_overflow",
                 static_cast<double>(result.edge_overflow));
  obs::gauge_set("route/via_overflow",
                 static_cast<double>(result.via_overflow));
  return result;
}

}  // namespace drcshap
