#pragma once
// Global-routing orchestrator: net decomposition, initial pattern routing,
// and PathFinder-style negotiated-congestion rip-up-and-reroute with the
// maze router. Produces the congestion map consumed by feature extraction
// and the DRC oracle (the role Olympus-SoC's signal GR plays in the paper).

#include <cstdint>
#include <vector>

#include "netlist/design.hpp"
#include "route/congestion.hpp"
#include "route/net_route.hpp"

namespace drcshap {

struct GlobalRouterOptions {
  RouteCostParams cost;
  int max_ripup_iterations = 3;
  /// History added to each overflowed resource per iteration, scaled by its
  /// overflow amount.
  double history_increment = 0.5;
  /// Cap on segments re-routed per iteration (keeps worst-case time bounded).
  std::size_t max_reroutes_per_iteration = 50000;
  bool use_maze = true;
};

struct GlobalRouteResult {
  GridGraph graph;            ///< final loads/capacities
  CongestionMap congestion;   ///< snapshot of `graph`
  std::vector<NetRoute> routes;
  long edge_overflow = 0;
  long via_overflow = 0;
  int iterations_run = 0;
  std::size_t segments_total = 0;
  std::size_t segments_rerouted = 0;
};

/// Routes all signal/clock nets of the placed design.
GlobalRouteResult global_route(const Design& design,
                               const GlobalRouterOptions& options = {});

/// Decomposes a net's pin g-cells into MST 2-pin segments (pairs of distinct
/// g-cell indices). Exposed for tests.
std::vector<std::pair<std::size_t, std::size_t>> decompose_net(
    const Design& design, NetId net);

}  // namespace drcshap
