#pragma once
// Global-routing orchestrator: net decomposition, initial pattern routing,
// and PathFinder-style negotiated-congestion rip-up-and-reroute with the
// maze router. Produces the congestion map consumed by feature extraction
// and the DRC oracle (the role Olympus-SoC's signal GR plays in the paper).

#include <cstdint>
#include <vector>

#include "netlist/design.hpp"
#include "route/congestion.hpp"
#include "route/net_route.hpp"
#include "route/route_trace.hpp"

namespace drcshap {

struct GlobalRouterOptions {
  RouteCostParams cost;
  int max_ripup_iterations = 3;
  /// History added to each overflowed resource per iteration, scaled by its
  /// overflow amount.
  double history_increment = 0.5;
  /// Cap on segments re-routed per iteration (keeps worst-case time bounded).
  std::size_t max_reroutes_per_iteration = 50000;
  bool use_maze = true;
};

struct GlobalRouteResult {
  GridGraph graph;            ///< final loads/capacities
  CongestionMap congestion;   ///< snapshot of `graph`
  std::vector<NetRoute> routes;
  long edge_overflow = 0;
  long via_overflow = 0;
  int iterations_run = 0;
  std::size_t segments_total = 0;
  std::size_t segments_rerouted = 0;
  // Replay accounting (zero on a plain full run): how many expensive calls
  // were answered from the base trace vs recomputed, and how many cells the
  // conservative divergence set ended up covering.
  std::size_t pattern_reused = 0;
  std::size_t maze_reused = 0;
  std::size_t maze_recomputed = 0;
  std::size_t replay_dirty_cells = 0;
};

/// Routes all signal/clock nets of the placed design.
GlobalRouteResult global_route(const Design& design,
                               const GlobalRouterOptions& options = {});

/// The same algorithm with trace recording and memoized replay (see
/// route_trace.hpp). `trace_out`, if non-null, receives the run's recorded
/// trajectory (the base for a future replay; must be empty on entry).
/// `replay`, if non-null with a base trace, substitutes recorded
/// pattern/maze results whose read sets are provably unchanged; the result
/// is byte-identical to global_route(design, options) regardless.
GlobalRouteResult global_route_traced(const Design& design,
                                      const GlobalRouterOptions& options,
                                      RouteTrace* trace_out,
                                      const RouteReplayInput* replay);

/// Decomposes a net's pin g-cells into MST 2-pin segments (pairs of distinct
/// g-cell indices). Exposed for tests.
std::vector<std::pair<std::size_t, std::size_t>> decompose_net(
    const Design& design, NetId net);

}  // namespace drcshap
