#include "route/grid_graph.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace drcshap {

GridGraph::GridGraph(const Design& design)
    : nx_(design.grid().nx()),
      ny_(design.grid().ny()),
      num_metal_(design.tech().num_metal_layers),
      grid_(design.grid()) {
  edge_offset_.resize(static_cast<std::size_t>(num_metal_) + 1, 0);
  for (int m = 0; m < num_metal_; ++m) {
    const std::size_t count = Technology::is_horizontal(m)
                                  ? (nx_ - 1) * ny_
                                  : nx_ * (ny_ - 1);
    edge_offset_[static_cast<std::size_t>(m) + 1] =
        edge_offset_[static_cast<std::size_t>(m)] + count;
  }
  edges_.assign(edge_offset_.back(), EdgeState{});

  const std::size_t n_vias =
      static_cast<std::size_t>(num_via_layers()) * num_cells();
  vias_.assign(n_vias, ViaState{});

  apply_capacity_model(design);
}

std::optional<std::size_t> GridGraph::neighbor(std::size_t cell, Dir dir) const {
  const std::size_t c = cell % nx_;
  const std::size_t r = cell / nx_;
  switch (dir) {
    case Dir::kEast:  return c + 1 < nx_ ? std::optional(cell + 1) : std::nullopt;
    case Dir::kWest:  return c > 0 ? std::optional(cell - 1) : std::nullopt;
    case Dir::kNorth: return r + 1 < ny_ ? std::optional(cell + nx_) : std::nullopt;
    case Dir::kSouth: return r > 0 ? std::optional(cell - nx_) : std::nullopt;
  }
  return std::nullopt;
}

std::optional<EdgeId> GridGraph::edge(int metal, std::size_t cell, Dir dir) const {
  const bool horizontal = Technology::is_horizontal(metal);
  if (horizontal && (dir == Dir::kNorth || dir == Dir::kSouth)) return std::nullopt;
  if (!horizontal && (dir == Dir::kEast || dir == Dir::kWest)) return std::nullopt;
  const auto nb = neighbor(cell, dir);
  if (!nb) return std::nullopt;
  const std::size_t low = std::min(cell, *nb);
  const std::size_t c = low % nx_;
  const std::size_t r = low / nx_;
  const std::size_t within = horizontal ? r * (nx_ - 1) + c : r * nx_ + c;
  return static_cast<EdgeId>(edge_offset_[static_cast<std::size_t>(metal)] + within);
}

std::optional<EdgeId> GridGraph::edge_low(int metal, std::size_t cell) const {
  return edge(metal, cell,
              Technology::is_horizontal(metal) ? Dir::kEast : Dir::kNorth);
}

void GridGraph::add_edge_load(EdgeId e, int delta) {
  EdgeState& s = edges_.at(e);
  const int cap = s.capacity;
  const int before = s.load > cap ? s.load - cap : 0;
  s.load += delta;
  if (s.load < 0) throw std::logic_error("GridGraph: negative edge load");
  total_edge_overflow_ += (s.load > cap ? s.load - cap : 0) - before;
}

int GridGraph::edge_metal(EdgeId e) const {
  for (int m = 0; m < num_metal_; ++m) {
    if (e < edge_offset_[static_cast<std::size_t>(m) + 1]) return m;
  }
  throw std::out_of_range("GridGraph::edge_metal");
}

std::pair<std::size_t, std::size_t> GridGraph::edge_cells(EdgeId e) const {
  const int m = edge_metal(e);
  const std::size_t within = e - edge_offset_[static_cast<std::size_t>(m)];
  if (Technology::is_horizontal(m)) {
    const std::size_t r = within / (nx_ - 1);
    const std::size_t c = within % (nx_ - 1);
    const std::size_t low = r * nx_ + c;
    return {low, low + 1};
  }
  const std::size_t r = within / nx_;
  const std::size_t c = within % nx_;
  const std::size_t low = r * nx_ + c;
  return {low, low + nx_};
}

void GridGraph::add_via_load(int via_layer, std::size_t cell, int delta) {
  ViaState& s = vias_.at(via_index(via_layer, cell));
  const int cap = s.capacity;
  const int before = s.load > cap ? s.load - cap : 0;
  s.load += delta;
  if (s.load < 0) throw std::logic_error("GridGraph: negative via load");
  total_via_overflow_ += (s.load > cap ? s.load - cap : 0) - before;
}

void GridGraph::reset_loads() {
  for (EdgeState& s : edges_) s.load = 0;
  for (ViaState& s : vias_) s.load = 0;
  total_edge_overflow_ = 0;
  total_via_overflow_ = 0;
}

std::size_t GridGraph::via_index(int via_layer, std::size_t cell) const {
  if (via_layer < 0 || via_layer >= num_via_layers() || cell >= num_cells()) {
    throw std::out_of_range("GridGraph::via_index");
  }
  return static_cast<std::size_t>(via_layer) * num_cells() + cell;
}

void GridGraph::apply_capacity_model(const Design& design) {
  const Technology& tech = design.tech();
  const GCellGrid& grid = design.grid();

  // Per-cell, per-metal blocked-area fraction, and per-cell std-cell density.
  std::vector<double> blocked(
      static_cast<std::size_t>(num_metal_) * num_cells(), 0.0);
  for (const Blockage& b : design.blockages()) {
    for (const std::size_t cell : grid.cells_overlapping(b.box)) {
      const double frac =
          b.box.intersection_area(grid.cell_rect(cell)) / grid.cell_rect(cell).area();
      for (int m = std::max(0, b.metal_lo);
           m <= std::min(num_metal_ - 1, b.metal_hi); ++m) {
        auto& v = blocked[static_cast<std::size_t>(m) * num_cells() + cell];
        v = std::min(1.0, v + frac);
      }
    }
  }
  std::vector<double> cell_density(num_cells(), 0.0);
  for (const Cell& c : design.cells()) {
    for (const std::size_t cell : grid.cells_overlapping(c.box)) {
      cell_density[cell] +=
          c.box.intersection_area(grid.cell_rect(cell)) / grid.cell_rect(cell).area();
    }
  }
  for (auto& d : cell_density) d = std::min(1.0, d);

  // Metal edge capacities: tracks derated by the mean blocked fraction of the
  // two adjacent cells; M1/M2 additionally derated by std-cell density
  // (pin shapes and cell-internal routing consume lower-layer tracks).
  for (int m = 0; m < num_metal_; ++m) {
    const int tracks = tech.tracks_per_gcell[static_cast<std::size_t>(m)];
    for (std::size_t cell = 0; cell < num_cells(); ++cell) {
      const auto e = edge_low(m, cell);
      if (!e) continue;
      const auto [a, b] = edge_cells(*e);
      const double blk =
          0.5 * (blocked[static_cast<std::size_t>(m) * num_cells() + a] +
                 blocked[static_cast<std::size_t>(m) * num_cells() + b]);
      double cap = tracks * (1.0 - blk);
      if (m <= 1) {
        const double dens = 0.5 * (cell_density[a] + cell_density[b]);
        cap *= 1.0 - 0.5 * dens;
      }
      edges_[*e].capacity =
          std::max(0, static_cast<int>(std::floor(cap + 0.5)));
    }
  }

  // Via capacities: derated when either adjacent metal layer is blocked.
  for (int v = 0; v < num_via_layers(); ++v) {
    const int base = tech.vias_per_gcell[static_cast<std::size_t>(v)];
    for (std::size_t cell = 0; cell < num_cells(); ++cell) {
      const double blk = std::max(
          blocked[static_cast<std::size_t>(v) * num_cells() + cell],
          blocked[static_cast<std::size_t>(v + 1) * num_cells() + cell]);
      vias_[via_index(v, cell)].capacity =
          std::max(0, static_cast<int>(std::floor(base * (1.0 - blk) + 0.5)));
    }
  }
}

}  // namespace drcshap
