#pragma once
// 3D global-routing grid graph.
//
// Nodes are (metal layer, g-cell). Each metal layer routes only in its
// preferred direction (even layers horizontal, odd vertical), so a layer
// contributes edges only between g-cells adjacent along that direction.
// Adjacent layers are connected by via edges located at each g-cell.
//
// The graph tracks, per metal edge and per (via layer, g-cell):
//   capacity  C  - max wires/vias, derated by blockages and cell density,
//   load      L  - wires/vias currently routed through,
//   history   h  - PathFinder-style accumulated congestion cost.
// The (C, L, C-L) triples are exactly what the paper's congestion-map
// features consume.

#include <cstdint>
#include <optional>
#include <vector>

#include "netlist/design.hpp"

namespace drcshap {

using EdgeId = std::uint32_t;

/// Direction of a step within a metal layer.
enum class Dir : std::uint8_t { kEast, kWest, kNorth, kSouth };

/// Routing state of one metal edge, interleaved so a cost evaluation
/// touches a single cache line instead of three parallel arrays.
struct EdgeState {
  int capacity = 0;
  int load = 0;
  double history = 0.0;
};

/// Routing state of one (via layer, g-cell) pair.
struct ViaState {
  int capacity = 0;
  int load = 0;
};

class GridGraph {
 public:
  /// Builds the graph for `design` and applies the capacity model
  /// (blockage + density deration). Loads start at zero.
  explicit GridGraph(const Design& design);

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  int num_metal_layers() const { return num_metal_; }
  int num_via_layers() const { return num_metal_ - 1; }
  std::size_t num_cells() const { return nx_ * ny_; }
  std::size_t num_edges() const { return edges_.size(); }

  // --- metal edges ------------------------------------------------------
  /// Edge on layer `metal` between `cell` and its neighbor in direction
  /// `dir`; nullopt if the step leaves the grid or fights the layer's
  /// preferred direction.
  std::optional<EdgeId> edge(int metal, std::size_t cell, Dir dir) const;

  /// Edge on layer `metal` whose low-side cell (west / south) is `cell`.
  /// For a horizontal layer this is the edge to the east neighbor; for a
  /// vertical layer, to the north neighbor. nullopt at the grid border.
  std::optional<EdgeId> edge_low(int metal, std::size_t cell) const;

  const EdgeState& edge_state(EdgeId e) const { return edges_[e]; }
  int edge_capacity(EdgeId e) const { return edges_[e].capacity; }
  int edge_load(EdgeId e) const { return edges_[e].load; }
  double edge_history(EdgeId e) const { return edges_[e].history; }
  int edge_overflow(EdgeId e) const {
    return std::max(0, edges_[e].load - edges_[e].capacity);
  }

  /// First edge id of `metal`'s contiguous block. Within the block, edges of
  /// a horizontal layer are ordered row * (nx - 1) + col of their low (west)
  /// cell; vertical layers row * nx + col of their low (south) cell. Exposed
  /// so hot search loops (the maze router) can address neighbor edges
  /// directly instead of going through the checked `edge()` lookup.
  EdgeId layer_edge_begin(int metal) const {
    return static_cast<EdgeId>(edge_offset_[static_cast<std::size_t>(metal)]);
  }

  void add_edge_load(EdgeId e, int delta);
  /// Removes previously added demand: the rip-up direction of
  /// add_edge_load, spelled out so call sites read as what they are.
  /// `amount` is how much load to take away (must not exceed the current
  /// load; the shared underflow check throws otherwise). The O(1) overflow
  /// totals stay exact across any add/remove interleaving.
  void remove_edge_load(EdgeId e, int amount) { add_edge_load(e, -amount); }
  void add_edge_history(EdgeId e, double delta) { edges_[e].history += delta; }

  /// Metal layer an edge belongs to.
  int edge_metal(EdgeId e) const;
  /// The two adjacent cells of an edge (low cell first).
  std::pair<std::size_t, std::size_t> edge_cells(EdgeId e) const;

  // --- vias ---------------------------------------------------------------
  const ViaState& via_state(int via_layer, std::size_t cell) const {
    return vias_[via_index(via_layer, cell)];
  }
  int via_capacity(int via_layer, std::size_t cell) const {
    return vias_[via_index(via_layer, cell)].capacity;
  }
  int via_load(int via_layer, std::size_t cell) const {
    return vias_[via_index(via_layer, cell)].load;
  }
  int via_overflow(int via_layer, std::size_t cell) const {
    const ViaState& s = vias_[via_index(via_layer, cell)];
    return std::max(0, s.load - s.capacity);
  }
  void add_via_load(int via_layer, std::size_t cell, int delta);
  /// Via counterpart of remove_edge_load.
  void remove_via_load(int via_layer, std::size_t cell, int amount) {
    add_via_load(via_layer, cell, -amount);
  }

  // --- aggregates ---------------------------------------------------------
  /// Total wire overflow over all metal edges. O(1): maintained
  /// incrementally by add_edge_load, so rip-up loops can poll it per
  /// reroute instead of rescanning every edge.
  long total_edge_overflow() const { return total_edge_overflow_; }
  /// Total via overflow over all (via layer, cell) pairs. O(1), see above.
  long total_via_overflow() const { return total_via_overflow_; }

  /// Clears every load (capacities and history are kept).
  void reset_loads();

  /// Neighbor cell of `cell` in `dir`, or nullopt at the border.
  std::optional<std::size_t> neighbor(std::size_t cell, Dir dir) const;

 private:
  std::size_t via_index(int via_layer, std::size_t cell) const;
  void apply_capacity_model(const Design& design);

  std::size_t nx_;
  std::size_t ny_;
  int num_metal_;
  GCellGrid grid_;
  std::vector<std::size_t> edge_offset_;  ///< per metal layer
  std::vector<EdgeState> edges_;
  std::vector<ViaState> vias_;
  // Running totals of positive (load - capacity); updated on every load
  // change (capacities are fixed after construction).
  long total_edge_overflow_ = 0;
  long total_via_overflow_ = 0;
};

}  // namespace drcshap
