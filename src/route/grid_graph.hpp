#pragma once
// 3D global-routing grid graph.
//
// Nodes are (metal layer, g-cell). Each metal layer routes only in its
// preferred direction (even layers horizontal, odd vertical), so a layer
// contributes edges only between g-cells adjacent along that direction.
// Adjacent layers are connected by via edges located at each g-cell.
//
// The graph tracks, per metal edge and per (via layer, g-cell):
//   capacity  C  - max wires/vias, derated by blockages and cell density,
//   load      L  - wires/vias currently routed through,
//   history   h  - PathFinder-style accumulated congestion cost.
// The (C, L, C-L) triples are exactly what the paper's congestion-map
// features consume.

#include <cstdint>
#include <optional>
#include <vector>

#include "netlist/design.hpp"

namespace drcshap {

using EdgeId = std::uint32_t;

/// Direction of a step within a metal layer.
enum class Dir : std::uint8_t { kEast, kWest, kNorth, kSouth };

class GridGraph {
 public:
  /// Builds the graph for `design` and applies the capacity model
  /// (blockage + density deration). Loads start at zero.
  explicit GridGraph(const Design& design);

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  int num_metal_layers() const { return num_metal_; }
  int num_via_layers() const { return num_metal_ - 1; }
  std::size_t num_cells() const { return nx_ * ny_; }
  std::size_t num_edges() const { return capacity_.size(); }

  // --- metal edges ------------------------------------------------------
  /// Edge on layer `metal` between `cell` and its neighbor in direction
  /// `dir`; nullopt if the step leaves the grid or fights the layer's
  /// preferred direction.
  std::optional<EdgeId> edge(int metal, std::size_t cell, Dir dir) const;

  /// Edge on layer `metal` whose low-side cell (west / south) is `cell`.
  /// For a horizontal layer this is the edge to the east neighbor; for a
  /// vertical layer, to the north neighbor. nullopt at the grid border.
  std::optional<EdgeId> edge_low(int metal, std::size_t cell) const;

  int edge_capacity(EdgeId e) const { return capacity_[e]; }
  int edge_load(EdgeId e) const { return load_[e]; }
  double edge_history(EdgeId e) const { return history_[e]; }
  int edge_overflow(EdgeId e) const { return std::max(0, load_[e] - capacity_[e]); }

  void add_edge_load(EdgeId e, int delta);
  void add_edge_history(EdgeId e, double delta) { history_[e] += delta; }

  /// Metal layer an edge belongs to.
  int edge_metal(EdgeId e) const;
  /// The two adjacent cells of an edge (low cell first).
  std::pair<std::size_t, std::size_t> edge_cells(EdgeId e) const;

  // --- vias ---------------------------------------------------------------
  int via_capacity(int via_layer, std::size_t cell) const {
    return via_capacity_[via_index(via_layer, cell)];
  }
  int via_load(int via_layer, std::size_t cell) const {
    return via_load_[via_index(via_layer, cell)];
  }
  int via_overflow(int via_layer, std::size_t cell) const {
    const std::size_t i = via_index(via_layer, cell);
    return std::max(0, via_load_[i] - via_capacity_[i]);
  }
  void add_via_load(int via_layer, std::size_t cell, int delta);

  // --- aggregates ---------------------------------------------------------
  /// Total wire overflow over all metal edges.
  long total_edge_overflow() const;
  /// Total via overflow over all (via layer, cell) pairs.
  long total_via_overflow() const;

  /// Clears every load (capacities and history are kept).
  void reset_loads();

  /// Neighbor cell of `cell` in `dir`, or nullopt at the border.
  std::optional<std::size_t> neighbor(std::size_t cell, Dir dir) const;

 private:
  std::size_t via_index(int via_layer, std::size_t cell) const;
  void apply_capacity_model(const Design& design);

  std::size_t nx_;
  std::size_t ny_;
  int num_metal_;
  GCellGrid grid_;
  std::vector<std::size_t> edge_offset_;  ///< per metal layer
  std::vector<int> capacity_;
  std::vector<int> load_;
  std::vector<double> history_;
  std::vector<int> via_capacity_;
  std::vector<int> via_load_;
};

}  // namespace drcshap
