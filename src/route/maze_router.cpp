#include "route/maze_router.hpp"

#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

namespace drcshap {

namespace {
constexpr std::uint32_t kNoParent = 0xffffffffu;
}

MazeRouter::MazeRouter(const GridGraph& graph) : g_(graph) {
  const std::size_t n =
      static_cast<std::size_t>(g_.num_metal_layers()) * g_.num_cells();
  dist_.assign(n, 0.0);
  stamp_.assign(n, 0);
  parent_.assign(n, kNoParent);
}

MazeResult MazeRouter::route(std::size_t cell_a, std::size_t cell_b,
                             const RouteCostParams& params) {
  MazeResult result;
  if (cell_a == cell_b) {
    result.found = true;
    return result;
  }
  ++current_stamp_;
  const std::size_t nx = g_.nx();

  // Admissible heuristic: remaining Manhattan distance in cells times the
  // minimum per-edge cost (base), ignoring vias.
  const std::size_t cb = cell_b % nx, rb = cell_b / nx;
  auto heuristic = [&](std::size_t cell) {
    const std::size_t c = cell % nx, r = cell / nx;
    const double dx = c > cb ? static_cast<double>(c - cb) : static_cast<double>(cb - c);
    const double dy = r > rb ? static_cast<double>(r - rb) : static_cast<double>(rb - r);
    return params.base * (dx + dy);
  };

  using QItem = std::pair<double, std::size_t>;  // (f = g + h, node)
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> open;

  auto relax = [&](std::size_t node, double g_cost, std::size_t parent) {
    if (stamp_[node] == current_stamp_ && dist_[node] <= g_cost) return;
    stamp_[node] = current_stamp_;
    dist_[node] = g_cost;
    parent_[node] = static_cast<std::uint32_t>(parent);
    open.emplace(g_cost + heuristic(node % g_.num_cells()), node);
  };

  const std::size_t start = node_id(0, cell_a);
  const std::size_t goal = node_id(0, cell_b);
  relax(start, 0.0, kNoParent);

  while (!open.empty()) {
    const auto [f, node] = open.top();
    open.pop();
    const double g_cost = dist_[node];
    if (stamp_[node] != current_stamp_ || f > g_cost + heuristic(node % g_.num_cells()) + 1e-12) {
      continue;  // stale queue entry
    }
    if (node == goal) break;
    const int metal = static_cast<int>(node / g_.num_cells());
    const std::size_t cell = node % g_.num_cells();

    // In-layer moves along the preferred direction.
    for (const Dir dir : {Dir::kEast, Dir::kWest, Dir::kNorth, Dir::kSouth}) {
      const auto e = g_.edge(metal, cell, dir);
      if (!e) continue;
      const auto nb = g_.neighbor(cell, dir);
      relax(node_id(metal, *nb), g_cost + edge_route_cost(g_, *e, params), node);
    }
    // Layer changes.
    if (metal + 1 < g_.num_metal_layers()) {
      relax(node_id(metal + 1, cell),
            g_cost + via_route_cost(g_, metal, cell, params), node);
    }
    if (metal > 0) {
      relax(node_id(metal - 1, cell),
            g_cost + via_route_cost(g_, metal - 1, cell, params), node);
    }
  }

  if (stamp_[goal] != current_stamp_) return result;  // unreachable

  // Reconstruct path from the parent chain.
  result.found = true;
  result.cost = dist_[goal];
  std::size_t node = goal;
  while (parent_[node] != kNoParent) {
    const std::size_t prev = parent_[node];
    const int m_now = static_cast<int>(node / g_.num_cells());
    const int m_prev = static_cast<int>(prev / g_.num_cells());
    const std::size_t c_now = node % g_.num_cells();
    const std::size_t c_prev = prev % g_.num_cells();
    if (m_now == m_prev) {
      // In-layer step: find the shared edge.
      const std::size_t lo = std::min(c_now, c_prev);
      const bool horizontal = (std::max(c_now, c_prev) == lo + 1);
      const auto e = g_.edge(m_now, lo, horizontal ? Dir::kEast : Dir::kNorth);
      if (!e) throw std::logic_error("MazeRouter: broken parent chain");
      result.path.edges.push_back(*e);
    } else {
      result.path.vias.emplace_back(std::min(m_now, m_prev), c_now);
    }
    node = prev;
  }
  return result;
}

}  // namespace drcshap
