#include "route/maze_router.hpp"

#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "obs/registry.hpp"

namespace drcshap {

namespace {
constexpr std::uint32_t kNoParent = 0xffffffffu;
}

MazeRouter::MazeRouter(const GridGraph& graph) : g_(graph) {
  const std::size_t num_cells = g_.num_cells();
  const std::size_t n =
      static_cast<std::size_t>(g_.num_metal_layers()) * num_cells;
  cell_of_.resize(n);
  metal_of_.resize(n);
  for (std::size_t node = 0; node < n; ++node) {
    cell_of_[node] = static_cast<std::uint32_t>(node % num_cells);
    metal_of_[node] = static_cast<std::int32_t>(node / num_cells);
  }
  col_of_.resize(num_cells);
  row_of_.resize(num_cells);
  for (std::size_t cell = 0; cell < num_cells; ++cell) {
    col_of_[cell] = static_cast<std::uint32_t>(cell % g_.nx());
    row_of_[cell] = static_cast<std::uint32_t>(cell / g_.nx());
  }
  dist_.assign(n, 0.0);
  stamp_.assign(n, 0);
  parent_.assign(n, kNoParent);
  h_cache_.assign(num_cells, 0.0);
  h_stamp_.assign(num_cells, 0);
  open_.reserve(256);
}

MazeRouter::OpenKey MazeRouter::pack(double f, std::uint32_t node,
                                     std::uint32_t cell) {
  std::uint64_t f_bits;
  static_assert(sizeof(f_bits) == sizeof(f));
  std::memcpy(&f_bits, &f, sizeof(f));
  return (static_cast<OpenKey>(f_bits) << 64) |
         (static_cast<std::uint64_t>(node) << 32) | cell;
}

void MazeRouter::heap_push(OpenKey key) {
  std::size_t i = open_.size();
  open_.push_back(key);
  while (i > 0) {
    const std::size_t up = (i - 1) / 4;
    if (open_[up] <= key) break;
    open_[i] = open_[up];
    i = up;
  }
  open_[i] = key;
}

MazeRouter::OpenKey MazeRouter::heap_pop() {
  const OpenKey top = open_.front();
  const OpenKey last = open_.back();
  open_.pop_back();
  const std::size_t n = open_.size();
  if (n > 0) {
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      OpenKey best_key = open_[first];
      const std::size_t stop = std::min(first + 4, n);
      for (std::size_t c = first + 1; c < stop; ++c) {
        const OpenKey k = open_[c];
        best = k < best_key ? c : best;
        best_key = k < best_key ? k : best_key;
      }
      if (last <= best_key) break;
      open_[i] = best_key;
      i = best;
    }
    open_[i] = last;
  }
  return top;
}

MazeResult MazeRouter::route(std::size_t cell_a, std::size_t cell_b,
                             const RouteCostParams& params) {
  MazeResult result;
  result.col_lo = col_of_[cell_a];
  result.col_hi = col_of_[cell_a];
  result.row_lo = row_of_[cell_a];
  result.row_hi = row_of_[cell_a];
  if (cell_a == cell_b) {
    result.found = true;
    return result;
  }
  ++current_stamp_;
  const std::size_t nx = g_.nx();
  const std::size_t ny = g_.ny();
  const std::size_t num_cells = g_.num_cells();
  const int num_metal = g_.num_metal_layers();
  open_.clear();

  // Admissible heuristic: remaining Manhattan distance in cells times the
  // minimum per-edge cost (base), ignoring vias. It only depends on the
  // cell, so it is computed once per cell per call and cached.
  const std::size_t cb = col_of_[cell_b], rb = row_of_[cell_b];
  auto heuristic = [&](std::size_t cell) {
    if (h_stamp_[cell] == current_stamp_) return h_cache_[cell];
    const std::size_t c = col_of_[cell], r = row_of_[cell];
    const double dx = c > cb ? static_cast<double>(c - cb)
                             : static_cast<double>(cb - c);
    const double dy = r > rb ? static_cast<double>(r - rb)
                             : static_cast<double>(rb - r);
    const double h = params.base * (dx + dy);
    h_stamp_[cell] = current_stamp_;
    h_cache_[cell] = h;
    return h;
  };

  auto relax = [&](std::size_t node, std::size_t cell, double g_cost,
                   std::size_t parent, double h) {
    if (stamp_[node] == current_stamp_ && dist_[node] <= g_cost) return;
    stamp_[node] = current_stamp_;
    dist_[node] = g_cost;
    parent_[node] = static_cast<std::uint32_t>(parent);
    heap_push(pack(g_cost + h, static_cast<std::uint32_t>(node),
                   static_cast<std::uint32_t>(cell)));
  };

  const std::size_t start = node_id(0, cell_a);
  const std::size_t goal = node_id(0, cell_b);
  std::uint64_t expansions = 0;
  relax(start, cell_a, 0.0, kNoParent, heuristic(cell_a));

  while (!open_.empty()) {
    const OpenKey top = heap_pop();
    const std::size_t node = static_cast<std::uint32_t>(top >> 32);
    const std::size_t cell = static_cast<std::uint32_t>(top);
    const std::uint64_t f_bits = static_cast<std::uint64_t>(top >> 64);
    double f;
    std::memcpy(&f, &f_bits, sizeof(f));
    const double g_cost = dist_[node];
    // Stale-entry check: h_cache_[cell] still holds the exact heuristic the
    // entry was pushed with (it is stamped per search and written once).
    if (stamp_[node] != current_stamp_ || f > g_cost + h_cache_[cell] + 1e-12) {
      continue;  // stale queue entry
    }
    ++expansions;
    {
      const std::uint32_t pc = col_of_[cell], pr = row_of_[cell];
      result.col_lo = std::min(result.col_lo, pc);
      result.col_hi = std::max(result.col_hi, pc);
      result.row_lo = std::min(result.row_lo, pr);
      result.row_hi = std::max(result.row_hi, pr);
    }
    if (node == goal) break;
    const int metal = metal_of_[node];
    const std::size_t c = col_of_[cell], r = row_of_[cell];

    // In-layer moves along the preferred direction. Edge ids are addressed
    // directly inside the layer's contiguous block (see layer_edge_begin)
    // rather than through the checked GridGraph::edge lookup.
    const EdgeId base = g_.layer_edge_begin(metal);
    if (Technology::is_horizontal(metal)) {
      const EdgeId row = base + static_cast<EdgeId>(r * (nx - 1));
      if (c + 1 < nx) {
        relax(node + 1, cell + 1,
              g_cost + edge_route_cost(g_, row + static_cast<EdgeId>(c),
                                       params),
              node, heuristic(cell + 1));
      }
      if (c > 0) {
        relax(node - 1, cell - 1,
              g_cost + edge_route_cost(g_, row + static_cast<EdgeId>(c - 1),
                                       params),
              node, heuristic(cell - 1));
      }
    } else {
      if (r + 1 < ny) {
        relax(node + nx, cell + nx,
              g_cost + edge_route_cost(
                           g_, base + static_cast<EdgeId>(r * nx + c), params),
              node, heuristic(cell + nx));
      }
      if (r > 0) {
        relax(node - nx, cell - nx,
              g_cost + edge_route_cost(
                           g_, base + static_cast<EdgeId>((r - 1) * nx + c),
                           params),
              node, heuristic(cell - nx));
      }
    }
    // Layer changes (the heuristic ignores layers, so h is the cell's).
    const double h_cell = heuristic(cell);
    if (metal + 1 < num_metal) {
      relax(node + num_cells, cell,
            g_cost + via_route_cost(g_, metal, cell, params), node, h_cell);
    }
    if (metal > 0) {
      relax(node - num_cells, cell,
            g_cost + via_route_cost(g_, metal - 1, cell, params), node,
            h_cell);
    }
  }
  obs::counter_add("route/maze_expansions", expansions);

  if (stamp_[goal] != current_stamp_) return result;  // unreachable

  // Reconstruct path from the parent chain.
  result.found = true;
  result.cost = dist_[goal];
  std::size_t node = goal;
  while (parent_[node] != kNoParent) {
    const std::size_t prev = parent_[node];
    const int m_now = metal_of_[node];
    const int m_prev = metal_of_[prev];
    const std::size_t c_now = cell_of_[node];
    const std::size_t c_prev = cell_of_[prev];
    if (m_now == m_prev) {
      // In-layer step: find the shared edge.
      const std::size_t lo = std::min(c_now, c_prev);
      const bool horizontal = (std::max(c_now, c_prev) == lo + 1);
      const auto e = g_.edge(m_now, lo, horizontal ? Dir::kEast : Dir::kNorth);
      if (!e) throw std::logic_error("MazeRouter: broken parent chain");
      result.path.edges.push_back(*e);
    } else {
      result.path.vias.emplace_back(std::min(m_now, m_prev), c_now);
    }
    node = prev;
  }
  return result;
}

}  // namespace drcshap
