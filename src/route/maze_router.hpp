#pragma once
// Congestion-aware A* maze router over the 3D grid graph.
//
// Used during negotiated-congestion rip-up-and-reroute: segments that ended
// up on overflowed resources are re-routed here with the full cost model
// (history + overflow penalties), which lets them detour in x, y, and layer.
// Paths start and terminate on M1 at the endpoint g-cells (pin access).

#include <cstdint>
#include <vector>

#include "route/net_route.hpp"

namespace drcshap {

struct MazeResult {
  RoutePath path;
  double cost = 0.0;
  bool found = false;
};

class MazeRouter {
 public:
  explicit MazeRouter(const GridGraph& graph);

  /// Cheapest path between the two g-cells under `params`. The graph state
  /// is read, never written (commit separately). Returns found == false only
  /// if the grid is degenerate (should not happen on a connected grid).
  MazeResult route(std::size_t cell_a, std::size_t cell_b,
                   const RouteCostParams& params);

 private:
  std::size_t node_id(int metal, std::size_t cell) const {
    return static_cast<std::size_t>(metal) * g_.num_cells() + cell;
  }

  const GridGraph& g_;
  // Per-node search state, stamped so buffers need no clearing per call.
  std::vector<double> dist_;
  std::vector<std::uint32_t> stamp_;
  std::vector<std::uint32_t> parent_;
  std::uint32_t current_stamp_ = 0;
};

}  // namespace drcshap
