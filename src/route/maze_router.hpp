#pragma once
// Congestion-aware A* maze router over the 3D grid graph.
//
// Used during negotiated-congestion rip-up-and-reroute: segments that ended
// up on overflowed resources are re-routed here with the full cost model
// (history + overflow penalties), which lets them detour in x, y, and layer.
// Paths start and terminate on M1 at the endpoint g-cells (pin access).
//
// The search state (distance/parent stamps, the open list, the per-cell
// heuristic cache) is owned by the router and reused across calls, so a
// rip-up pass issuing tens of thousands of route() calls performs no
// per-call allocation. The open list is a hand-rolled 4-ary min-heap keyed
// on (f, node) — the same total order std::priority_queue over
// (double, size_t) pairs produces — so the expansion sequence, and
// therefore every routed path, is bit-identical to the previous
// binary-heap implementation.

#include <cstdint>
#include <vector>

#include "route/net_route.hpp"

namespace drcshap {

struct MazeResult {
  RoutePath path;
  double cost = 0.0;
  bool found = false;
  /// Inclusive column/row bounding box of every g-cell the search expanded
  /// (popped non-stale). The cost model only ever reads edges and vias
  /// incident to expanded cells, so the search outcome is a pure function
  /// of the graph state restricted to this box — the locality fact the ECO
  /// replay's reuse check is built on.
  std::uint32_t col_lo = 0;
  std::uint32_t col_hi = 0;
  std::uint32_t row_lo = 0;
  std::uint32_t row_hi = 0;
};

class MazeRouter {
 public:
  explicit MazeRouter(const GridGraph& graph);

  /// Cheapest path between the two g-cells under `params`. The graph state
  /// is read, never written (commit separately). Returns found == false only
  /// if the grid is degenerate (should not happen on a connected grid).
  MazeResult route(std::size_t cell_a, std::size_t cell_b,
                   const RouteCostParams& params);

 private:
  /// Open-list entry, packed into one 128-bit integer that sorts exactly
  /// like the (f, node) pair: bits 127..64 hold the IEEE-754 pattern of the
  /// A* key f = g + h (always a non-negative finite double, whose bit
  /// pattern orders identically to its value), bits 63..32 the node id
  /// (the tie-breaker), bits 31..0 the node's g-cell. The cell is fully
  /// determined by the node, so carrying it below the tie-breaker cannot
  /// change the order; it lets the pop path skip a div/mod. A single
  /// integer compare replaces the branchy two-double comparator, which is
  /// what makes the heap cheap — pops were half of all route time before.
  using OpenKey = unsigned __int128;

  static OpenKey pack(double f, std::uint32_t node, std::uint32_t cell);

  std::size_t node_id(int metal, std::size_t cell) const {
    return static_cast<std::size_t>(metal) * g_.num_cells() + cell;
  }

  void heap_push(OpenKey key);
  OpenKey heap_pop();

  const GridGraph& g_;
  // Node -> coordinate lookup tables, built once per graph; they replace
  // the four integer div/mods the expansion loop would otherwise pay per
  // popped node.
  std::vector<std::uint32_t> cell_of_;
  std::vector<std::int32_t> metal_of_;
  std::vector<std::uint32_t> col_of_;
  std::vector<std::uint32_t> row_of_;
  // Per-node search state, stamped so buffers need no clearing per call.
  std::vector<double> dist_;
  std::vector<std::uint32_t> stamp_;
  std::vector<std::uint32_t> parent_;
  // Per-cell heuristic cache for the current target, same stamping scheme.
  std::vector<double> h_cache_;
  std::vector<std::uint32_t> h_stamp_;
  // 4-ary min-heap storage, cleared (capacity kept) per call.
  std::vector<OpenKey> open_;
  std::uint32_t current_stamp_ = 0;
};

}  // namespace drcshap
