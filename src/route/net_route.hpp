#pragma once
// Route representation shared by the pattern and maze routers.

#include <cstdint>
#include <utility>
#include <vector>

#include "route/grid_graph.hpp"

namespace drcshap {

/// One routed 2-pin connection: the metal edges it occupies plus the
/// (via layer, g-cell) pairs it consumes (layer changes and pin access).
struct RoutePath {
  std::vector<EdgeId> edges;
  std::vector<std::pair<int, std::size_t>> vias;

  bool empty() const { return edges.empty() && vias.empty(); }

  bool operator==(const RoutePath&) const = default;
};

/// All 2-pin segment routes of one net.
struct NetRoute {
  NetId net = kInvalidId;
  std::vector<RoutePath> segments;
};

/// Add the path's demand to the graph.
inline void commit(GridGraph& g, const RoutePath& path) {
  for (const EdgeId e : path.edges) g.add_edge_load(e, 1);
  for (const auto& [layer, cell] : path.vias) g.add_via_load(layer, cell, 1);
}

/// Remove the path's demand from the graph.
inline void uncommit(GridGraph& g, const RoutePath& path) {
  for (const EdgeId e : path.edges) g.add_edge_load(e, -1);
  for (const auto& [layer, cell] : path.vias) g.add_via_load(layer, cell, -1);
}

/// Congestion-aware cost model used by both routers (PathFinder-flavored:
/// a base wire cost, a soft utilization slope, a hard overflow penalty
/// scaled by accumulated history).
struct RouteCostParams {
  double base = 1.0;             ///< cost per grid edge
  double via = 2.0;              ///< cost per via
  double util_slope = 0.5;       ///< soft pressure as an edge fills up
  double overflow_penalty = 16.0;///< per unit of (load+1) - capacity
  double history_weight = 2.0;   ///< multiplier on accumulated history
};

/// Cost of pushing one more wire through metal edge `e`.
inline double edge_route_cost(const GridGraph& g, EdgeId e,
                              const RouteCostParams& p) {
  const EdgeState& s = g.edge_state(e);
  const int cap = s.capacity;
  const int next = s.load + 1;
  double cost = p.base + p.history_weight * s.history;
  if (cap <= 0) {
    cost += p.overflow_penalty * next;
  } else if (next > cap) {
    cost += p.overflow_penalty * static_cast<double>(next - cap);
  } else {
    cost += p.util_slope * static_cast<double>(next) / static_cast<double>(cap);
  }
  return cost;
}

/// Cost of pushing one more via through (via layer, cell).
inline double via_route_cost(const GridGraph& g, int via_layer,
                             std::size_t cell, const RouteCostParams& p) {
  const ViaState& s = g.via_state(via_layer, cell);
  const int cap = s.capacity;
  const int next = s.load + 1;
  double cost = p.via;
  if (cap <= 0) {
    cost += p.overflow_penalty * next;
  } else if (next > cap) {
    cost += p.overflow_penalty * static_cast<double>(next - cap);
  } else {
    cost += p.util_slope * static_cast<double>(next) / static_cast<double>(cap);
  }
  return cost;
}

}  // namespace drcshap
