#include "route/pattern_router.hpp"

#include <limits>
#include <stdexcept>

namespace drcshap {

namespace {

/// Appends the metal edges of a straight run on `metal` from (c0,r0) to
/// (c1,r1); exactly one coordinate may differ.
void append_run(RoutePath& path, const GridGraph& g, int metal,
                std::size_t col0, std::size_t row0, std::size_t col1,
                std::size_t row1) {
  const std::size_t nx = g.nx();
  if (row0 == row1) {
    const std::size_t lo = std::min(col0, col1);
    const std::size_t hi = std::max(col0, col1);
    for (std::size_t c = lo; c < hi; ++c) {
      const auto e = g.edge(metal, row0 * nx + c, Dir::kEast);
      if (!e) throw std::logic_error("append_run: missing horizontal edge");
      path.edges.push_back(*e);
    }
  } else if (col0 == col1) {
    const std::size_t lo = std::min(row0, row1);
    const std::size_t hi = std::max(row0, row1);
    for (std::size_t r = lo; r < hi; ++r) {
      const auto e = g.edge(metal, r * nx + col0, Dir::kNorth);
      if (!e) throw std::logic_error("append_run: missing vertical edge");
      path.edges.push_back(*e);
    }
  } else {
    throw std::logic_error("append_run: diagonal run");
  }
}

}  // namespace

void append_via_stack(RoutePath& path, int metal_lo, int metal_hi,
                      std::size_t cell) {
  for (int v = std::min(metal_lo, metal_hi); v < std::max(metal_lo, metal_hi);
       ++v) {
    path.vias.emplace_back(v, cell);
  }
}

double path_cost(const GridGraph& graph, const RoutePath& path,
                 const RouteCostParams& params) {
  double cost = 0.0;
  for (const EdgeId e : path.edges) cost += edge_route_cost(graph, e, params);
  for (const auto& [layer, cell] : path.vias) {
    cost += via_route_cost(graph, layer, cell, params);
  }
  return cost;
}

RoutePath pattern_route(const GridGraph& graph, std::size_t cell_a,
                        std::size_t cell_b, const RouteCostParams& params) {
  if (cell_a == cell_b) return {};
  const std::size_t nx = graph.nx();
  const std::size_t ca = cell_a % nx, ra = cell_a / nx;
  const std::size_t cb = cell_b % nx, rb = cell_b / nx;
  const int top = graph.num_metal_layers();

  std::vector<int> h_layers, v_layers;
  for (int m = 0; m < top; ++m) {
    (Technology::is_horizontal(m) ? h_layers : v_layers).push_back(m);
  }

  RoutePath best;
  double best_cost = std::numeric_limits<double>::infinity();
  auto consider = [&](RoutePath&& candidate) {
    const double c = path_cost(graph, candidate, params);
    if (c < best_cost) {
      best_cost = c;
      best = std::move(candidate);
    }
  };

  if (ra == rb) {
    // Pure horizontal connection: try each horizontal layer.
    for (const int mh : h_layers) {
      RoutePath p;
      append_via_stack(p, 0, mh, cell_a);
      append_run(p, graph, mh, ca, ra, cb, rb);
      append_via_stack(p, mh, 0, cell_b);
      consider(std::move(p));
    }
    return best;
  }
  if (ca == cb) {
    for (const int mv : v_layers) {
      RoutePath p;
      append_via_stack(p, 0, mv, cell_a);
      append_run(p, graph, mv, ca, ra, cb, rb);
      append_via_stack(p, mv, 0, cell_b);
      consider(std::move(p));
    }
    return best;
  }

  // Two L corners x horizontal-layer x vertical-layer combinations.
  for (const int mh : h_layers) {
    for (const int mv : v_layers) {
      {
        // Horizontal first: a -> (cb, ra) on mh, then vertical to b on mv.
        RoutePath p;
        const std::size_t corner = ra * nx + cb;
        append_via_stack(p, 0, mh, cell_a);
        append_run(p, graph, mh, ca, ra, cb, ra);
        append_via_stack(p, mh, mv, corner);
        append_run(p, graph, mv, cb, ra, cb, rb);
        append_via_stack(p, mv, 0, cell_b);
        consider(std::move(p));
      }
      {
        // Vertical first: a -> (ca, rb) on mv, then horizontal to b on mh.
        RoutePath p;
        const std::size_t corner = rb * nx + ca;
        append_via_stack(p, 0, mv, cell_a);
        append_run(p, graph, mv, ca, ra, ca, rb);
        append_via_stack(p, mv, mh, corner);
        append_run(p, graph, mh, ca, rb, cb, rb);
        append_via_stack(p, mh, 0, cell_b);
        consider(std::move(p));
      }
    }
  }
  return best;
}

}  // namespace drcshap
