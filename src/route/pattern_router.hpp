#pragma once
// Pattern (L-shape) router for 2-pin connections.
//
// Initial global routing uses cheap L-patterns: a horizontal run on one of
// the horizontal layers (M1/M3/M5) plus a vertical run on one of the vertical
// layers (M2/M4), joined at one of the two possible corners. Both runs start
// and end with via stacks down to M1, where pins live. The cheapest pattern
// under the congestion-aware cost model wins. Overflows left behind are
// cleaned up by the maze rerouter.

#include "route/net_route.hpp"

namespace drcshap {

/// Builds the via stack (via layers lo..hi-1) at `cell`.
void append_via_stack(RoutePath& path, int metal_lo, int metal_hi,
                      std::size_t cell);

/// Cost of a candidate path in the current graph state (loads NOT committed).
double path_cost(const GridGraph& graph, const RoutePath& path,
                 const RouteCostParams& params);

/// Cheapest L/straight pattern between two g-cells. For cell_a == cell_b
/// returns an empty path. Never fails: some pattern always exists on a grid
/// with >= 1 row and column, though it may be overflowed.
RoutePath pattern_route(const GridGraph& graph, std::size_t cell_a,
                        std::size_t cell_b, const RouteCostParams& params);

}  // namespace drcshap
