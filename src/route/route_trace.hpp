#pragma once
// Recorded routing trajectory for the incremental ECO loop.
//
// `global_route` is a sequential negotiated-congestion algorithm whose
// result depends on the order and outcome of every pattern-route and maze
// call, so "re-route only the nets near the edit" cannot by itself match a
// from-scratch rebuild byte for byte. What can: re-running the exact same
// control flow on a live graph while *memoizing* the expensive sub-calls —
// a recorded sub-result is substituted only when a conservative dirty-cell
// check proves its entire read set is unchanged since the base run, and
// every divergence (an edit's capacity delta, a path that came out
// different, a reroute one run performed and the other did not) marks the
// affected cells dirty before any later reuse decision looks at them. The
// replay therefore IS the full algorithm, with some calls answered from the
// trace; byte-identity with a from-scratch rebuild is structural, not
// statistical, and holds for arbitrary edits at any thread count.
//
// A trace is recorded by `global_route_traced` (both on a full run and on a
// replay, so each ECO apply produces the base trace for the next one).

#include <cstdint>
#include <vector>

#include "route/net_route.hpp"

namespace drcshap {

/// One 2-pin segment in the exact order the router processes them
/// (stable-sorted by length). A replay recomputes this array from the
/// edited design and falls back to a full recompute if it no longer
/// matches the trace — record alignment is by position in this array.
struct TraceSegment {
  NetId net = kInvalidId;
  std::size_t seg_index = 0;
  std::size_t a = 0;
  std::size_t b = 0;
  long length = 0;

  bool operator==(const TraceSegment&) const = default;
};

/// One rip-up-and-reroute the base run performed: which segment (by
/// position in `segments`), what it uncommitted, what the maze returned,
/// and the popped-cell bounding box the maze result is a pure function of.
struct TraceMazeRecord {
  std::size_t ordinal = 0;
  bool found = false;
  RoutePath removed;    ///< the path uncommitted before the maze call
  RoutePath committed;  ///< the path committed after (== removed if !found)
  std::uint32_t col_lo = 0;
  std::uint32_t col_hi = 0;
  std::uint32_t row_lo = 0;
  std::uint32_t row_hi = 0;
};

struct RouteTrace {
  std::vector<TraceSegment> segments;
  /// Pattern-stage result per segment ordinal. A pattern candidate only
  /// ever touches the perimeter of bbox(a, b), so reuse is gated on those
  /// four grid lines being clean.
  std::vector<RoutePath> pattern;
  /// Maze records per rip-up iteration, in increasing ordinal.
  std::vector<std::vector<TraceMazeRecord>> ripup;
  /// Post-construction resource capacities and post-pin-access V1 loads of
  /// the base graph: diffing them against the edited design's fresh graph
  /// yields the initial dirty-cell set of a replay.
  std::vector<int> edge_capacity;
  std::vector<int> via_capacity;  ///< via_layer * num_cells + cell
  std::vector<int> pin_access_load;  ///< V1 load per cell
};

/// Replay input: the base trace plus per-net force-recompute flags (the
/// reroute-named-nets ECO verb). Forced segments skip reuse and re-run
/// their pattern/maze calls on the live graph — on an otherwise clean
/// graph that reproduces the base paths exactly, which is what
/// byte-identity demands of an edit that does not change the design.
struct RouteReplayInput {
  const RouteTrace* base = nullptr;
  std::vector<std::uint8_t> force_net;  ///< indexed by NetId; empty = none
};

}  // namespace drcshap
