#include "serve/batcher.hpp"

#include <chrono>
#include <span>
#include <string>
#include <utility>

#include "core/explanation.hpp"
#include "obs/registry.hpp"

namespace drcshap::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::size_t histogram_bucket(std::size_t rows) {
  std::size_t bucket = 0;
  while (bucket + 1 < kBatchHistogramBuckets &&
         rows > (std::size_t{1} << bucket)) {
    ++bucket;
  }
  return bucket;
}

/// "le_1", "le_2", ..., "le_256", "gt_256" — the run-report counter names.
std::string histogram_bucket_name(std::size_t bucket) {
  if (bucket + 1 == kBatchHistogramBuckets) {
    return "gt_" + std::to_string(std::size_t{1} << (bucket - 1));
  }
  return "le_" + std::to_string(std::size_t{1} << bucket);
}

}  // namespace

Batcher::Batcher(const ModelRegistry& registry, BatchOptions options)
    : registry_(registry), options_(options) {
  runner_ = std::thread([this] { runner_loop(); });
}

Batcher::~Batcher() { shutdown(); }

Response Batcher::submit(Request request) {
  Pending pending;
  pending.request = std::move(request);
  std::unique_lock<std::mutex> lock(mu_);
  if (stopping_) {
    ++stats_.rejected;
    return error_response(pending.request.id, pending.request.verb,
                          StatusCode::kInvalid, "server is shutting down");
  }
  if (queue_.empty()) oldest_enqueue_ = Clock::now();
  queue_.push_back(&pending);
  queued_rows_ += pending.request.n_rows;
  ++stats_.requests;
  stats_.queue_depth = queue_.size();
  if (queue_.size() > stats_.max_queue_depth) {
    stats_.max_queue_depth = queue_.size();
  }
  obs::counter_add("serve/requests");
  obs::gauge_set("serve/queue_depth", static_cast<double>(queue_.size()));
  runner_cv_.notify_one();
  done_cv_.wait(lock, [&] { return pending.done; });
  ++stats_.replies;
  obs::counter_add("serve/replies");
  return std::move(pending.response);
}

void Batcher::runner_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    runner_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    // Deadline-or-batch-full coalescing window, skipped when draining.
    if (!stopping_ && queued_rows_ < options_.max_batch_rows) {
      const auto deadline =
          oldest_enqueue_ + std::chrono::microseconds(options_.flush_us);
      while (!stopping_ && queued_rows_ < options_.max_batch_rows &&
             Clock::now() < deadline) {
        runner_cv_.wait_until(lock, deadline);
      }
    }
    std::vector<Pending*> batch(queue_.begin(), queue_.end());
    queue_.clear();
    queued_rows_ = 0;
    stats_.queue_depth = 0;
    ++stats_.batches;
    std::size_t batch_rows = 0;
    for (const Pending* pending : batch) {
      batch_rows += pending->request.n_rows;
    }
    ++stats_.batch_rows_histogram[histogram_bucket(batch_rows)];
    obs::gauge_set("serve/queue_depth", 0.0);
    obs::counter_add("serve/batches");
    obs::counter_add("serve/batch_rows_" +
                     histogram_bucket_name(histogram_bucket(batch_rows)));

    lock.unlock();
    run_batch(batch);
    lock.lock();
    for (Pending* pending : batch) pending->done = true;
    done_cv_.notify_all();
  }
}

void Batcher::run_batch(std::vector<Pending*>& batch) {
  const std::shared_ptr<const ServedModel> model = registry_.current();
  std::vector<Pending*> score_items;
  std::vector<Pending*> explain_items;
  std::vector<Pending*> global_items;
  for (Pending* pending : batch) {
    const Request& request = pending->request;
    if (model == nullptr) {
      pending->response =
          error_response(request.id, request.verb, StatusCode::kNotFound,
                         "no model loaded");
      continue;
    }
    if (request.n_features != model->n_features) {
      pending->response = error_response(
          request.id, request.verb, StatusCode::kInvalid,
          "request has " + std::to_string(request.n_features) +
              " features, model " + model->version + " expects " +
              std::to_string(model->n_features));
      continue;
    }
    (request.verb == Verb::kScore
         ? score_items
         : request.verb == Verb::kExplain ? explain_items : global_items)
        .push_back(pending);
  }
  if (!score_items.empty()) serve_verb(model, score_items, Verb::kScore);
  if (!explain_items.empty()) serve_verb(model, explain_items, Verb::kExplain);
  if (!global_items.empty()) {
    serve_verb(model, global_items, Verb::kGlobalExplain);
  }
}

void Batcher::serve_verb(const std::shared_ptr<const ServedModel>& model,
                         std::vector<Pending*>& items, Verb verb) {
  std::size_t total_rows = 0;
  for (const Pending* pending : items) total_rows += pending->request.n_rows;
  const std::size_t n_features = model->n_features;

  // Concatenate the request matrices; each request keeps its slot (row
  // offset), so its reply slice is independent of its batch neighbours.
  std::vector<float> matrix;
  matrix.reserve(total_rows * n_features);
  for (const Pending* pending : items) {
    matrix.insert(matrix.end(), pending->request.features.begin(),
                  pending->request.features.end());
  }

  if (verb == Verb::kScore) {
    DRCSHAP_OBS_TIMER("serve/batch_score");
    {
      std::lock_guard<std::mutex> guard(mu_);
      stats_.score_rows += total_rows;
    }
    obs::counter_add("serve/score_rows", total_rows);
    const std::vector<double> probs = model->forest.predict_proba_all(
        std::span<const float>(matrix), total_rows, options_.engine);
    std::size_t offset = 0;
    for (Pending* pending : items) {
      Response& response = pending->response;
      response.id = pending->request.id;
      response.verb = verb;
      response.status = StatusCode::kOk;
      response.n_rows = pending->request.n_rows;
      response.values.assign(probs.begin() + offset,
                             probs.begin() + offset + response.n_rows);
      offset += response.n_rows;
    }
    return;
  }

  DRCSHAP_OBS_TIMER("serve/batch_explain");
  {
    std::lock_guard<std::mutex> guard(mu_);
    (verb == Verb::kExplain ? stats_.explain_rows
                            : stats_.global_explain_rows) += total_rows;
  }
  obs::counter_add(verb == Verb::kExplain ? "serve/explain_rows"
                                          : "serve/global_explain_rows",
                   total_rows);
  // The explainer snapshot inside ServedModel is immutable; a per-batch
  // copy (a few shared_ptrs + scalars) carries the engine choice and shares
  // the model's explanation cache.
  TreeShapExplainer explainer = model->explainer;
  explainer.set_engine(options_.engine);
  const ExplanationCacheStats cache_before = model->explain_cache->stats();
  const ShapMatrix shap = explainer.shap_values_batch(
      std::span<const float>(matrix), total_rows, options_.n_threads);
  const ExplanationCacheStats cache_after = model->explain_cache->stats();
  const std::uint64_t hits = cache_after.hits - cache_before.hits;
  const std::uint64_t misses = cache_after.misses - cache_before.misses;
  double hit_rate = 0.0;
  {
    std::lock_guard<std::mutex> guard(mu_);
    stats_.explain_cache_hits += hits;
    stats_.explain_cache_misses += misses;
    hit_rate = stats_.explain_cache_hit_rate();
  }
  if (hits > 0) obs::counter_add("serve/explain_cache_hits", hits);
  if (misses > 0) obs::counter_add("serve/explain_cache_misses", misses);
  obs::gauge_set("serve/explain_cache_hit_rate", hit_rate);

  if (verb == Verb::kGlobalExplain) {
    // Per request: fold its slice of the phi matrix through the streaming
    // accumulator and reply with the O(n_features) stat rows only.
    std::size_t offset = 0;
    for (Pending* pending : items) {
      Response& response = pending->response;
      response.id = pending->request.id;
      response.verb = verb;
      response.status = StatusCode::kOk;
      response.n_rows = pending->request.n_rows;
      response.n_features = static_cast<std::uint32_t>(n_features);
      response.base_value = explainer.base_value();
      GlobalShapSummary summary(n_features);
      for (std::uint32_t r = 0; r < pending->request.n_rows; ++r) {
        summary.add(std::span<const double>(
            shap.values.data() + (offset + r) * n_features, n_features));
      }
      response.values.resize(std::size_t{kGlobalStatRows} * n_features);
      for (std::size_t f = 0; f < n_features; ++f) {
        response.values[f] = summary.mean_abs(f);
        response.values[n_features + f] = summary.mean_signed(f);
        response.values[2 * n_features + f] = summary.positive_fraction(f);
      }
      offset += pending->request.n_rows;
    }
    return;
  }

  std::size_t offset = 0;
  for (Pending* pending : items) {
    Response& response = pending->response;
    response.id = pending->request.id;
    response.verb = verb;
    response.status = StatusCode::kOk;
    response.n_rows = pending->request.n_rows;
    response.n_features = static_cast<std::uint32_t>(n_features);
    response.base_value = explainer.base_value();
    const double* begin = shap.values.data() + offset * n_features;
    response.values.assign(begin,
                           begin + response.n_rows * std::size_t{n_features});
    offset += response.n_rows;
  }
}

void Batcher::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    runner_cv_.notify_one();
  }
  if (runner_.joinable()) runner_.join();
}

Batcher::Stats Batcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace drcshap::serve
