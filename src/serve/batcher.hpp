#pragma once
// Request coalescing for the serving daemon: concurrent score/explain
// requests enqueue here and a single runner thread flushes them in batches
// that ride the existing batch engines (predict_proba_all /
// shap_values_batch) on the shared thread pool.
//
// Flush policy is deadline-or-batch-full: a flush happens as soon as the
// pending rows reach max_batch_rows, or flush_us after the oldest pending
// request arrived, whichever is first — one knob trades p50 latency against
// batch efficiency. Each request keeps its slot (row offset) inside the
// concatenated batch matrix, and both batch engines compute every row
// independently in fixed tree order, so the slice a request gets back is
// byte-identical to running that request alone (proved by
// tests/test_serve.cpp against the direct engine calls).
//
// The runner snapshots the registry's current model once per batch, so a
// hot swap can never split one batch (or one request) across two model
// versions; the snapshot's shared_ptr keeps a retired model alive until
// its last in-flight batch drains.

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "core/forest_engine.hpp"
#include "serve/model_registry.hpp"
#include "serve/protocol.hpp"

namespace drcshap::serve {

struct BatchOptions {
  std::size_t max_batch_rows = 256;  ///< flush when pending rows reach this
  std::uint32_t flush_us = 200;      ///< ...or this long after the oldest
  ForestEngine engine = ForestEngine::kAuto;  ///< backend per batch
  std::size_t n_threads = 0;  ///< worker cap for the batch engines
};

/// Powers-of-two batch-size histogram: bucket i counts batches with
/// rows in (2^(i-1), 2^i]; the last bucket is unbounded.
inline constexpr std::size_t kBatchHistogramBuckets = 10;

class Batcher {
 public:
  Batcher(const ModelRegistry& registry, BatchOptions options);
  ~Batcher();

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  /// Blocks until the runner has served (or rejected) the request.
  /// After shutdown() every submit is rejected with kInvalid.
  Response submit(Request request);

  /// Stops accepting, flushes every pending request, joins the runner.
  /// Idempotent; the destructor calls it.
  void shutdown();

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t replies = 0;
    std::uint64_t batches = 0;
    std::uint64_t score_rows = 0;
    std::uint64_t explain_rows = 0;
    std::uint64_t global_explain_rows = 0;
    std::uint64_t rejected = 0;
    /// Explanation-cache traffic of the explain/global-explain paths,
    /// accumulated across model versions (each ServedModel owns a fresh
    /// cache, so these outlive any single cache's own counters).
    std::uint64_t explain_cache_hits = 0;
    std::uint64_t explain_cache_misses = 0;
    std::size_t queue_depth = 0;      ///< requests pending right now
    std::size_t max_queue_depth = 0;  ///< high-water mark
    std::array<std::uint64_t, kBatchHistogramBuckets> batch_rows_histogram{};

    double explain_cache_hit_rate() const {
      const std::uint64_t lookups = explain_cache_hits + explain_cache_misses;
      return lookups == 0 ? 0.0
                          : static_cast<double>(explain_cache_hits) /
                                static_cast<double>(lookups);
    }
  };
  Stats stats() const;

 private:
  struct Pending {
    Request request;
    Response response;
    bool done = false;
    std::condition_variable* cv = nullptr;  ///< submitters share wait_mu_
  };

  void runner_loop();
  /// Serves one flushed batch (score + explain sub-batches) and marks every
  /// pending entry done.
  void run_batch(std::vector<Pending*>& batch);
  void serve_verb(const std::shared_ptr<const ServedModel>& model,
                  std::vector<Pending*>& items, Verb verb);

  const ModelRegistry& registry_;
  const BatchOptions options_;

  mutable std::mutex mu_;
  std::condition_variable runner_cv_;
  std::condition_variable done_cv_;
  std::deque<Pending*> queue_;
  std::size_t queued_rows_ = 0;
  std::chrono::steady_clock::time_point oldest_enqueue_;
  bool stopping_ = false;

  Stats stats_;
  std::thread runner_;
};

}  // namespace drcshap::serve
