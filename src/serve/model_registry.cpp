#include "serve/model_registry.hpp"

#include <sstream>
#include <utility>

#include "core/model_io.hpp"
#include "obs/registry.hpp"

namespace drcshap::serve {

namespace {

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

ServedModel::ServedModel(RandomForestClassifier forest_in, std::string path_in,
                         std::uint64_t digest_in)
    : forest(std::move(forest_in)),
      explainer(forest),
      explain_cache(std::make_shared<ExplanationCache>()),
      path(std::move(path_in)),
      digest(digest_in),
      version(basename_of(path) + "#" + digest_hex(digest)),
      n_features(forest.flat().n_features()) {
  explainer.set_cache(explain_cache);
}

Status ModelRegistry::load(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  // The artifact envelope is verified (magic/kind/size/checksum) before the
  // payload is parsed; the payload digest doubles as the served version id.
  StatusOr<std::string> payload = read_artifact(path, "forest");
  if (!payload.ok()) return payload.status();
  const std::uint64_t digest = fnv1a(payload.value());

  std::shared_ptr<const ServedModel> fresh;
  try {
    std::istringstream stream(std::move(payload).value());
    fresh = std::make_shared<const ServedModel>(load_forest(stream), path,
                                                digest);
  } catch (const ArtifactError& err) {
    return err.status();
  } catch (const std::exception& err) {
    return {StatusCode::kCorrupt,
            std::string("model_registry: parse failed: ") + err.what()};
  }

  std::shared_ptr<const ServedModel> old;
  {
    std::lock_guard<std::mutex> slot(current_mu_);
    old = std::exchange(current_, fresh);
  }
  if (old != nullptr) {
    swaps_.fetch_add(1, std::memory_order_relaxed);
    obs::counter_add("serve/model_swaps");
    retired_.push_back(old);
    // Compact entries whose drains already completed.
    std::erase_if(retired_,
                  [](const std::weak_ptr<const ServedModel>& retired) {
                    return retired.expired();
                  });
  }
  obs::note_set("serve/model_version", fresh->version);
  return Status::ok_status();
}

Status ModelRegistry::reload(const std::string& path) {
  std::string target = path;
  if (target.empty()) {
    const std::shared_ptr<const ServedModel> model = current();
    if (model == nullptr) {
      return {StatusCode::kNotFound,
              "model_registry: no model loaded, reload needs a path"};
    }
    target = model->path;
  }
  return load(target);
}

std::size_t ModelRegistry::retired_alive() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t alive = 0;
  for (const auto& retired : retired_) {
    if (!retired.expired()) ++alive;
  }
  return alive;
}

}  // namespace drcshap::serve
