#pragma once
// Versioned model registry of the serving daemon. Models are loaded from
// the PR 5 artifact envelope ("DRCSHAP-ARTIFACT v1 forest ...") and
// published through one shared_ptr slot: readers (the batch runner) grab
// a snapshot per batch, writers (SIGHUP / the reload verb) swap the pointer
// and let the old model drain — the last in-flight batch holding a snapshot
// keeps it alive, so a hot swap never invalidates work already dispatched
// and a whole batch is always served by exactly one model version.
//
// The slot is a mutex-guarded shared_ptr rather than atomic<shared_ptr>:
// current() runs once per batch (not per row), so the lock costs nothing,
// and libstdc++'s _Sp_atomic hides its synchronization in a pointer-bit
// spinlock that ThreadSanitizer cannot model — a plain mutex keeps the
// swap/drain machinery provably clean under TSan.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/explanation_cache.hpp"
#include "core/random_forest.hpp"
#include "core/tree_shap.hpp"
#include "util/artifact.hpp"

namespace drcshap::serve {

/// One immutable loaded model: forest + explainer snapshot + identity.
/// Construction happens off the serving path (ModelRegistry::load); after
/// publication the object is only ever read (the explanation cache mutates
/// internally but is thread-safe by construction).
struct ServedModel {
  ServedModel(RandomForestClassifier forest_in, std::string path_in,
              std::uint64_t digest_in);

  RandomForestClassifier forest;
  TreeShapExplainer explainer;
  /// Explanation cache of this model version, attached to `explainer` (and
  /// thereby to every per-batch explainer copy). Allocated fresh per load,
  /// so a hot swap flushes cached SHAP rows structurally: stale entries
  /// retire with the old ServedModel instead of being invalidated in place.
  std::shared_ptr<ExplanationCache> explain_cache;
  std::string path;          ///< artifact the model was loaded from
  std::uint64_t digest;      ///< FNV-1a of the artifact payload
  std::string version;       ///< "<basename>#<digest16hex>"
  std::size_t n_features;
};

class ModelRegistry {
 public:
  /// Loads the forest artifact at `path` and atomically publishes it.
  /// On failure the previous model (if any) keeps serving.
  Status load(const std::string& path);

  /// load() again: from `path`, or from the current model's path when
  /// `path` is empty (the SIGHUP case — re-read the file in place).
  Status reload(const std::string& path = {});

  /// Snapshot of the published model (nullptr before the first load).
  /// Hold the shared_ptr for the duration of a batch: it pins the version.
  std::shared_ptr<const ServedModel> current() const {
    std::lock_guard<std::mutex> lock(current_mu_);
    return current_;
  }

  /// Number of successful swaps after the initial load.
  std::uint64_t swap_count() const {
    return swaps_.load(std::memory_order_relaxed);
  }

  /// Retired (replaced) models still pinned alive by in-flight batches —
  /// the observable half of the drain guarantee. 0 once traffic drains.
  std::size_t retired_alive() const;

 private:
  /// Guards only the published pointer; never held across parsing or any
  /// other slow work, so readers cannot stall behind a reload.
  mutable std::mutex current_mu_;
  std::shared_ptr<const ServedModel> current_;
  std::atomic<std::uint64_t> swaps_{0};
  mutable std::mutex mu_;  ///< serializes load/reload and guards retired_
  std::vector<std::weak_ptr<const ServedModel>> retired_;
};

}  // namespace drcshap::serve
