#include "serve/protocol.hpp"

#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>

namespace drcshap::serve {

// The codecs memcpy host-representation integers/floats onto the wire.
static_assert(std::endian::native == std::endian::little,
              "drcshap_serve wire protocol assumes a little-endian host");

namespace {

Status corrupt(const std::string& why) {
  return {StatusCode::kCorrupt, "protocol: " + why};
}

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void put_u64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void put_f64(std::string& out, double v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void put_string(std::string& out, std::string_view text) {
  put_u32(out, static_cast<std::uint32_t>(text.size()));
  out.append(text);
}

template <typename T>
void put_span(std::string& out, const std::vector<T>& values) {
  out.append(reinterpret_cast<const char*>(values.data()),
             values.size() * sizeof(T));
}

/// Sequential reader over a body; every take_* fails softly so the decoders
/// can return one typed kCorrupt instead of reading out of bounds.
class Cursor {
 public:
  explicit Cursor(std::string_view body) : p_(body.data()), n_(body.size()) {}

  std::size_t remaining() const { return n_; }

  bool take_raw(void* out, std::size_t bytes) {
    if (bytes > n_) return false;
    std::memcpy(out, p_, bytes);
    p_ += bytes;
    n_ -= bytes;
    return true;
  }

  bool take_u8(std::uint8_t* v) { return take_raw(v, sizeof(*v)); }
  bool take_u32(std::uint32_t* v) { return take_raw(v, sizeof(*v)); }
  bool take_u64(std::uint64_t* v) { return take_raw(v, sizeof(*v)); }
  bool take_f64(double* v) { return take_raw(v, sizeof(*v)); }

  bool take_string(std::string* out) {
    std::uint32_t len = 0;
    if (!take_u32(&len) || len > n_) return false;
    out->assign(p_, len);
    p_ += len;
    n_ -= len;
    return true;
  }

  template <typename T>
  bool take_values(std::vector<T>* out, std::size_t count) {
    const std::size_t bytes = count * sizeof(T);
    if (bytes > n_) return false;
    out->resize(count);
    return take_raw(out->data(), bytes);
  }

 private:
  const char* p_;
  std::size_t n_;
};

Status check_matrix_header(std::uint32_t n_rows, std::uint32_t n_features) {
  if (n_rows == 0 || n_rows > kMaxRowsPerRequest) {
    return corrupt("row count " + std::to_string(n_rows) + " out of range");
  }
  if (n_features == 0 || n_features > kMaxFeaturesPerRow) {
    return corrupt("feature count " + std::to_string(n_features) +
                   " out of range");
  }
  return Status::ok_status();
}

}  // namespace

std::string_view verb_name(Verb verb) {
  switch (verb) {
    case Verb::kScore: return "score";
    case Verb::kExplain: return "explain";
    case Verb::kReload: return "reload";
    case Verb::kStats: return "stats";
    case Verb::kShutdown: return "shutdown";
    case Verb::kGlobalExplain: return "global-explain";
    case Verb::kEco: return "eco";
  }
  return "unknown";
}

Response error_response(std::uint64_t id, Verb verb, StatusCode code,
                        std::string message) {
  Response response;
  response.id = id;
  response.verb = verb;
  response.status = code;
  response.message = std::move(message);
  return response;
}

std::string encode_request(const Request& request) {
  std::string out;
  put_u64(out, request.id);
  put_u8(out, static_cast<std::uint8_t>(request.verb));
  switch (request.verb) {
    case Verb::kScore:
    case Verb::kExplain:
    case Verb::kGlobalExplain:
      put_u32(out, request.n_rows);
      put_u32(out, request.n_features);
      put_span(out, request.features);
      break;
    case Verb::kReload:
    case Verb::kEco:
      put_string(out, request.text);
      break;
    case Verb::kStats:
    case Verb::kShutdown:
      break;
  }
  return out;
}

std::string encode_response(const Response& response) {
  std::string out;
  put_u64(out, response.id);
  put_u8(out, static_cast<std::uint8_t>(response.verb));
  put_u8(out, static_cast<std::uint8_t>(response.status));
  if (response.status != StatusCode::kOk) {
    put_string(out, response.message);
    return out;
  }
  switch (response.verb) {
    case Verb::kScore:
      put_u32(out, response.n_rows);
      put_span(out, response.values);
      break;
    case Verb::kExplain:
      put_u32(out, response.n_rows);
      put_u32(out, response.n_features);
      put_f64(out, response.base_value);
      put_span(out, response.values);
      break;
    case Verb::kGlobalExplain:
      put_u32(out, response.n_rows);
      put_u32(out, response.n_features);
      put_f64(out, response.base_value);
      put_span(out, response.values);
      break;
    case Verb::kReload:
    case Verb::kStats:
    case Verb::kEco:
      put_string(out, response.text);
      break;
    case Verb::kShutdown:
      break;
  }
  return out;
}

StatusOr<Request> decode_request(std::string_view body) {
  Cursor cursor(body);
  Request request;
  std::uint8_t verb = 0;
  if (!cursor.take_u64(&request.id) || !cursor.take_u8(&verb)) {
    return corrupt("request header truncated");
  }
  if (verb < 1 || verb > static_cast<std::uint8_t>(Verb::kEco)) {
    return corrupt("unknown verb " + std::to_string(verb));
  }
  request.verb = static_cast<Verb>(verb);
  switch (request.verb) {
    case Verb::kScore:
    case Verb::kExplain:
    case Verb::kGlobalExplain: {
      if (!cursor.take_u32(&request.n_rows) ||
          !cursor.take_u32(&request.n_features)) {
        return corrupt("matrix header truncated");
      }
      const Status header =
          check_matrix_header(request.n_rows, request.n_features);
      if (!header.ok()) return header;
      const std::size_t count =
          std::size_t{request.n_rows} * request.n_features;
      if (!cursor.take_values(&request.features, count)) {
        return corrupt("feature matrix truncated");
      }
      break;
    }
    case Verb::kReload:
    case Verb::kEco:
      if (!cursor.take_string(&request.text)) {
        return corrupt("text payload truncated");
      }
      break;
    case Verb::kStats:
    case Verb::kShutdown:
      break;
  }
  if (cursor.remaining() != 0) {
    return corrupt(std::to_string(cursor.remaining()) +
                   " trailing bytes after request payload");
  }
  return request;
}

StatusOr<Response> decode_response(std::string_view body) {
  Cursor cursor(body);
  Response response;
  std::uint8_t verb = 0;
  std::uint8_t status = 0;
  if (!cursor.take_u64(&response.id) || !cursor.take_u8(&verb) ||
      !cursor.take_u8(&status)) {
    return corrupt("response header truncated");
  }
  if (verb < 1 || verb > static_cast<std::uint8_t>(Verb::kEco)) {
    return corrupt("unknown verb " + std::to_string(verb));
  }
  if (status > static_cast<std::uint8_t>(StatusCode::kFault)) {
    return corrupt("unknown status " + std::to_string(status));
  }
  response.verb = static_cast<Verb>(verb);
  response.status = static_cast<StatusCode>(status);
  if (response.status != StatusCode::kOk) {
    if (!cursor.take_string(&response.message)) {
      return corrupt("error message truncated");
    }
    if (cursor.remaining() != 0) return corrupt("trailing bytes after error");
    return response;
  }
  switch (response.verb) {
    case Verb::kScore: {
      if (!cursor.take_u32(&response.n_rows)) {
        return corrupt("score reply header truncated");
      }
      if (response.n_rows > kMaxRowsPerRequest) {
        return corrupt("score reply row count out of range");
      }
      if (!cursor.take_values(&response.values, response.n_rows)) {
        return corrupt("score reply truncated");
      }
      break;
    }
    case Verb::kExplain: {
      if (!cursor.take_u32(&response.n_rows) ||
          !cursor.take_u32(&response.n_features) ||
          !cursor.take_f64(&response.base_value)) {
        return corrupt("explain reply header truncated");
      }
      const Status header =
          check_matrix_header(response.n_rows, response.n_features);
      if (!header.ok()) return header;
      const std::size_t count =
          std::size_t{response.n_rows} * response.n_features;
      if (!cursor.take_values(&response.values, count)) {
        return corrupt("explain reply truncated");
      }
      break;
    }
    case Verb::kGlobalExplain: {
      if (!cursor.take_u32(&response.n_rows) ||
          !cursor.take_u32(&response.n_features) ||
          !cursor.take_f64(&response.base_value)) {
        return corrupt("global-explain reply header truncated");
      }
      if (response.n_features == 0 ||
          response.n_features > kMaxFeaturesPerRow) {
        return corrupt("global-explain reply feature count out of range");
      }
      const std::size_t count =
          std::size_t{kGlobalStatRows} * response.n_features;
      if (!cursor.take_values(&response.values, count)) {
        return corrupt("global-explain reply truncated");
      }
      break;
    }
    case Verb::kReload:
    case Verb::kStats:
    case Verb::kEco:
      if (!cursor.take_string(&response.text)) {
        return corrupt("text reply truncated");
      }
      break;
    case Verb::kShutdown:
      break;
  }
  if (cursor.remaining() != 0) {
    return corrupt(std::to_string(cursor.remaining()) +
                   " trailing bytes after response payload");
  }
  return response;
}

std::uint64_t peek_request_id(std::string_view body) {
  std::uint64_t id = 0;
  if (body.size() >= sizeof(id)) std::memcpy(&id, body.data(), sizeof(id));
  return id;
}

Status write_frame(int fd, std::string_view body) {
  if (body.size() > kMaxFrameBytes) {
    return {StatusCode::kInvalid, "protocol: frame exceeds kMaxFrameBytes"};
  }
  std::string frame;
  frame.reserve(sizeof(std::uint32_t) + body.size());
  put_u32(frame, static_cast<std::uint32_t>(body.size()));
  frame.append(body);
  const char* p = frame.data();
  std::size_t left = frame.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return {StatusCode::kIoError,
              std::string("protocol: write failed: ") + std::strerror(errno)};
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return Status::ok_status();
}

namespace {

/// Reads exactly `bytes`; 0 = ok, 1 = clean EOF before any byte, -1 = error,
/// 2 = EOF mid-read.
int read_exact(int fd, void* out, std::size_t bytes) {
  char* p = static_cast<char*>(out);
  std::size_t got = 0;
  while (got < bytes) {
    const ssize_t n = ::read(fd, p + got, bytes - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) return got == 0 ? 1 : 2;
    got += static_cast<std::size_t>(n);
  }
  return 0;
}

}  // namespace

StatusOr<std::string> read_frame(int fd) {
  std::uint32_t body_bytes = 0;
  switch (read_exact(fd, &body_bytes, sizeof(body_bytes))) {
    case 0: break;
    case 1: return Status{StatusCode::kNotFound, "protocol: peer closed"};
    case 2: return corrupt("EOF inside frame length");
    default:
      return Status{StatusCode::kIoError, std::string("protocol: read: ") +
                                              std::strerror(errno)};
  }
  if (body_bytes > kMaxFrameBytes) {
    return corrupt("frame length " + std::to_string(body_bytes) +
                   " exceeds cap");
  }
  std::string body(body_bytes, '\0');
  switch (read_exact(fd, body.data(), body.size())) {
    case 0: return body;
    case -1:
      return Status{StatusCode::kIoError,
                    std::string("protocol: read: ") + std::strerror(errno)};
    default: return corrupt("EOF inside frame body");
  }
}

}  // namespace drcshap::serve
