#pragma once
// Wire protocol of the drcshap_serve daemon: length-prefixed binary frames
// over a Unix stream socket (or stdin/stdout in --stdio mode).
//
//   frame    := u32le body_bytes, body
//   request  := u64le request_id, u8 verb, payload
//   response := u64le request_id, u8 verb, u8 status, payload
//
// Score/explain payloads carry a row-major float32 feature matrix; replies
// carry float64 probabilities / SHAP values, so a reply is bit-comparable
// to a direct predict_proba_all / shap_values_batch call on the same rows.
// Every error is a typed Status reply (the StatusCode taxonomy of
// util/artifact.hpp), never a silently dropped connection: a client can
// branch on kInvalid (its own bad request) vs kNotFound (no model loaded)
// vs kCorrupt (framing damage) the same way checkpoint recovery does.
//
// Integers and floats are little-endian host representation; the daemon
// and its clients target the same x86-64 hosts as the rest of the repo
// (enforced by a static_assert in protocol.cpp).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/artifact.hpp"

namespace drcshap::serve {

/// One byte on the wire. Values are part of the protocol — never renumber.
enum class Verb : std::uint8_t {
  kScore = 1,     ///< probabilities for a feature-matrix payload
  kExplain = 2,   ///< SHAP values (+ base value) for a feature matrix
  kReload = 3,    ///< hot-swap the model (payload: path, empty = re-read)
  kStats = 4,     ///< JSON snapshot of queue/batch/latency/model state
  kShutdown = 5,  ///< drain in-flight work, then stop the daemon
  /// Streaming global aggregation of a feature matrix: the reply carries
  /// per-feature mean |SHAP|, signed mean, and positive fraction instead of
  /// the full n_rows x n_features phi matrix — O(features) on the wire no
  /// matter how many rows were aggregated.
  kGlobalExplain = 6,
  /// Incremental ECO round trip against the daemon's resident design state
  /// (started with --eco-design). The request text carries one edit command
  /// ("move M DX DY" | "resize M XLO YLO XHI YHI" | "reroute NET[,NET...]");
  /// the reply text is a JSON document with the re-route/re-score stats and
  /// the before/after hotspot diff, including per-cell top-k SHAP deltas.
  kEco = 7,
};

std::string_view verb_name(Verb verb);

/// Hard caps a decoder enforces before allocating: a corrupt or hostile
/// length field must produce a typed kCorrupt, not a multi-GiB allocation.
inline constexpr std::size_t kMaxFrameBytes = std::size_t{1} << 28;
inline constexpr std::uint32_t kMaxRowsPerRequest = 1u << 20;
inline constexpr std::uint32_t kMaxFeaturesPerRow = 1u << 20;

struct Request {
  std::uint64_t id = 0;
  Verb verb = Verb::kScore;
  // kScore / kExplain / kGlobalExplain: row-major n_rows x n_features
  // float matrix.
  std::uint32_t n_rows = 0;
  std::uint32_t n_features = 0;
  std::vector<float> features;
  // kReload: model artifact path ("" = reload the current path).
  // kEco: one edit command line.
  std::string text;
};

/// Stat-row count of a kGlobalExplain reply: its `values` payload is
/// kGlobalStatRows x n_features doubles — mean |SHAP|, signed mean, and
/// positive fraction per feature, in that row order.
inline constexpr std::uint32_t kGlobalStatRows = 3;

struct Response {
  std::uint64_t id = 0;
  Verb verb = Verb::kScore;
  StatusCode status = StatusCode::kOk;
  std::string message;  ///< non-ok: one-line diagnosis
  // kScore: values = n_rows probabilities. kExplain: values = row-major
  // n_rows x n_features SHAP matrix, base_value = E[f(x)]. kGlobalExplain:
  // n_rows = rows aggregated, values = kGlobalStatRows x n_features stats.
  std::uint32_t n_rows = 0;
  std::uint32_t n_features = 0;
  double base_value = 0.0;
  std::vector<double> values;
  // kReload: served model version. kStats: stats JSON document.
  // kEco: JSON diff document.
  std::string text;
};

/// Shorthand for the error-reply shape every dispatch path uses.
Response error_response(std::uint64_t id, Verb verb, StatusCode code,
                        std::string message);

// ------------------------------------------------------------ body codecs

std::string encode_request(const Request& request);
std::string encode_response(const Response& response);

/// Strict decoders: any truncation, trailing bytes, size mismatch, or
/// unknown verb/status is kCorrupt.
StatusOr<Request> decode_request(std::string_view body);
StatusOr<Response> decode_response(std::string_view body);

/// Best-effort request id of a body that failed to decode (first 8 bytes),
/// so a kCorrupt reply can still be routed to the request that caused it.
std::uint64_t peek_request_id(std::string_view body);

// ------------------------------------------------------------- fd framing

/// Writes one length-prefixed frame, looping over partial writes/EINTR.
Status write_frame(int fd, std::string_view body);

/// Reads one frame body. kNotFound = clean EOF at a frame boundary (peer
/// closed), kCorrupt = EOF mid-frame or an oversized length prefix,
/// kIoError = read(2) failure.
StatusOr<std::string> read_frame(int fd);

}  // namespace drcshap::serve
