#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "benchsuite/pipeline.hpp"
#include "features/feature_names.hpp"
#include "obs/json.hpp"
#include "obs/registry.hpp"

namespace drcshap::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Parses one eco edit command line:
///   move MACRO DX DY
///   resize MACRO XLO YLO XHI YHI
///   reroute NET[,NET...]
StatusOr<EcoEdit> parse_eco_edit(const std::string& text) {
  const auto invalid = [&](const std::string& why) -> Status {
    return {StatusCode::kInvalid, "eco: " + why + " in edit '" + text + "'"};
  };
  std::istringstream in(text);
  std::string op;
  if (!(in >> op)) return invalid("empty edit");
  EcoEdit edit;
  if (op == "move") {
    edit.kind = EcoEdit::Kind::kMoveMacro;
    if (!(in >> edit.macro >> edit.dx >> edit.dy)) {
      return invalid("expected 'move MACRO DX DY'");
    }
  } else if (op == "resize") {
    edit.kind = EcoEdit::Kind::kResizeMacro;
    if (!(in >> edit.macro >> edit.new_box.x_lo >> edit.new_box.y_lo >>
          edit.new_box.x_hi >> edit.new_box.y_hi)) {
      return invalid("expected 'resize MACRO XLO YLO XHI YHI'");
    }
  } else if (op == "reroute") {
    edit.kind = EcoEdit::Kind::kRerouteNets;
    std::string nets;
    if (!(in >> nets)) return invalid("expected 'reroute NET[,NET...]'");
    std::size_t begin = 0;
    while (begin <= nets.size()) {
      const std::size_t comma = nets.find(',', begin);
      const std::size_t end = comma == std::string::npos ? nets.size() : comma;
      if (end > begin) edit.nets.push_back(nets.substr(begin, end - begin));
      if (comma == std::string::npos) break;
      begin = comma + 1;
    }
    if (edit.nets.empty()) return invalid("no net names");
  } else {
    return invalid("unknown edit op '" + op + "'");
  }
  std::string trailing;
  if (in >> trailing) return invalid("trailing token '" + trailing + "'");
  return edit;
}

std::string_view change_name(HotspotDiffEntry::Change change) {
  switch (change) {
    case HotspotDiffEntry::Change::kAppeared: return "appeared";
    case HotspotDiffEntry::Change::kVanished: return "vanished";
    case HotspotDiffEntry::Change::kChanged: return "changed";
  }
  return "unknown";
}

/// Diff entries beyond this land only in the counts, keeping an eco reply
/// bounded no matter how large the edit's blast radius is.
constexpr std::size_t kMaxDiffEntriesOnWire = 256;

}  // namespace

// ------------------------------------------------------- LatencyRecorder

LatencyRecorder::LatencyRecorder(std::size_t capacity) {
  window_.reserve(capacity == 0 ? 1 : capacity);
}

void LatencyRecorder::record(double latency_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (window_.size() < window_.capacity()) {
    window_.push_back(latency_ms);
  } else {
    window_[next_] = latency_ms;
    next_ = (next_ + 1) % window_.capacity();
  }
  ++total_;
}

double LatencyRecorder::percentile(double p) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (window_.empty()) return 0.0;
  std::vector<double> sorted(window_);
  std::sort(sorted.begin(), sorted.end());
  // Nearest-rank percentile over the retained window.
  const double rank = std::ceil(p / 100.0 * static_cast<double>(sorted.size()));
  const std::size_t index = static_cast<std::size_t>(
      std::clamp(rank - 1.0, 0.0, static_cast<double>(sorted.size() - 1)));
  return sorted[index];
}

std::uint64_t LatencyRecorder::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

// ----------------------------------------------------------------- Server

Server::Server(ServerOptions options) : options_(std::move(options)) {}

Server::~Server() {
  // Idempotent: a normal run() already tore everything down.
  teardown();
}

Status Server::start() {
  const Status loaded = registry_.load(options_.model_path);
  if (!loaded.ok()) return loaded;
  batcher_ = std::make_unique<Batcher>(registry_, options_.batch);

  if (!options_.eco_design.empty()) {
    try {
      const std::shared_ptr<const ServedModel> model = registry_.current();
      PipelineOptions pipeline;
      pipeline.generator.scale = options_.eco_scale;
      const BenchmarkSpec& spec = suite_spec(options_.eco_design);
      const NetlistSpec netlist = generate_netlist(spec, pipeline.generator);
      PlacerOptions placer = pipeline.placer;
      placer.row_height = pipeline.generator.row_height;
      placer.seed = spec.seed * 31 + 1;
      EcoOptions eco_options;
      eco_options.router = pipeline.router;
      eco_options.drc = pipeline.drc;
      eco_options.n_threads = options_.batch.n_threads;
      // Aliasing shared_ptr: the engine pins the whole startup ServedModel,
      // so a later hot swap cannot retire the forest under the eco verb.
      std::shared_ptr<const RandomForestClassifier> forest(model,
                                                           &model->forest);
      TreeShapExplainer explainer(model->forest);
      explainer.set_cache(model->explain_cache);
      eco_ = std::make_unique<EcoEngine>(place_design(netlist, placer),
                                         std::move(forest),
                                         std::move(explainer), eco_options);
    } catch (const std::exception& e) {
      return {StatusCode::kInvalid,
              std::string("server: --eco-design failed: ") + e.what()};
    }
  }

  if (options_.socket_path.empty()) return Status::ok_status();  // stdio mode

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return {StatusCode::kInvalid,
            "server: socket path too long: " + options_.socket_path};
  }
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return {StatusCode::kIoError,
            std::string("server: socket: ") + std::strerror(errno)};
  }
  ::unlink(options_.socket_path.c_str());  // stale socket from a dead run
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    const Status status{StatusCode::kIoError,
                        "server: bind/listen on " + options_.socket_path +
                            ": " + std::strerror(errno)};
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  return Status::ok_status();
}

void Server::run() {
  if (options_.socket_path.empty()) {
    // stdio mode: one implicit connection on fds 0/1; connection_loop
    // returns on EOF or a shutdown request.
    connection_loop(-1);
  } else {
    accept_thread_ = std::thread([this] { accept_loop(); });
    std::unique_lock<std::mutex> lock(shutdown_mu_);
    shutdown_cv_.wait(lock, [this] { return stopping_.load(); });
  }
  teardown();
}

void Server::request_shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    stopping_.store(true);
  }
  shutdown_cv_.notify_all();
}

void Server::accept_loop() {
  while (!stopping_.load()) {
    // A signal-context shutdown (SIGINT/SIGTERM) is promoted to the real
    // mutex+cv request here, off signal context.
    if (shutdown_pending_.exchange(false)) {
      request_shutdown();
      break;
    }
    // A pending SIGHUP swap is applied here, off signal context; the old
    // model drains behind the in-flight batches that still hold it.
    if (reload_pending_.exchange(false)) {
      const Status status = registry_.reload();
      obs::counter_add("serve/sighup_reloads");
      if (!status.ok()) {
        obs::note_set("serve/reload_error", status.to_string());
      }
    }
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;

    std::lock_guard<std::mutex> lock(connections_mu_);
    // Reap connections whose loops already finished (client hung up).
    std::erase_if(connections_, [](const std::unique_ptr<Connection>& c) {
      if (!c->done.load()) return false;
      if (c->thread.joinable()) c->thread.join();
      ::close(c->fd);
      return true;
    });
    auto connection = std::make_unique<Connection>();
    connection->fd = fd;
    Connection* raw = connection.get();
    connection->thread = std::thread([this, raw] {
      connection_loop(raw->fd);
      // Deliver EOF to the client now (a poisoned stream must not dangle
      // until daemon exit); the fd itself is closed by the reaper/teardown
      // after join, so there is no double-close window.
      ::shutdown(raw->fd, SHUT_RDWR);
      raw->done.store(true);
    });
    connections_.push_back(std::move(connection));
  }
}

void Server::connection_loop(int fd) {
  // fd < 0 selects stdio mode: read fd 0, write fd 1.
  const int in_fd = fd < 0 ? 0 : fd;
  const int out_fd = fd < 0 ? 1 : fd;
  for (;;) {
    if (fd < 0 && reload_pending_.exchange(false)) {
      const Status status = registry_.reload();
      obs::counter_add("serve/sighup_reloads");
      if (!status.ok()) {
        obs::note_set("serve/reload_error", status.to_string());
      }
    }
    StatusOr<std::string> frame = read_frame(in_fd);
    if (!frame.ok()) {
      // kNotFound = clean EOF. Framing damage gets a best-effort typed
      // reply; either way the stream can no longer be trusted, so close.
      if (frame.status().code() == StatusCode::kCorrupt) {
        write_frame(out_fd,
                    encode_response(error_response(
                        0, Verb::kScore, frame.status().code(),
                        frame.status().message())));
      }
      break;
    }
    StatusOr<Request> decoded = decode_request(frame.value());
    if (!decoded.ok()) {
      write_frame(out_fd,
                  encode_response(error_response(
                      peek_request_id(frame.value()), Verb::kScore,
                      decoded.status().code(), decoded.status().message())));
      break;
    }
    Request request = std::move(decoded).value();
    const bool is_shutdown = request.verb == Verb::kShutdown;
    const Response response = dispatch(std::move(request));
    const bool replied = write_frame(out_fd, encode_response(response)).ok();
    if (is_shutdown || !replied) {
      if (is_shutdown) request_shutdown();
      break;
    }
  }
}

Response Server::dispatch(Request request) {
  const std::uint64_t id = request.id;
  const Verb verb = request.verb;
  switch (verb) {
    case Verb::kScore:
    case Verb::kExplain:
    case Verb::kGlobalExplain: {
      const Clock::time_point start = Clock::now();
      Response response = batcher_->submit(std::move(request));
      const double latency = ms_since(start);
      // global-explain shares the explain window: same engine, same cost.
      (verb == Verb::kScore ? score_latency_ : explain_latency_)
          .record(latency);
      obs::timer_record(verb == Verb::kScore ? "serve/request_score"
                                             : "serve/request_explain",
                        static_cast<std::uint64_t>(latency * 1e6));
      return response;
    }
    case Verb::kReload: {
      const Status status = registry_.reload(request.text);
      if (!status.ok()) {
        return error_response(id, verb, status.code(), status.message());
      }
      Response response;
      response.id = id;
      response.verb = verb;
      response.text = registry_.current()->version;
      return response;
    }
    case Verb::kStats: {
      Response response;
      response.id = id;
      response.verb = verb;
      response.text = stats_json();
      return response;
    }
    case Verb::kShutdown: {
      Response response;
      response.id = id;
      response.verb = verb;
      return response;
    }
    case Verb::kEco: {
      const Clock::time_point start = Clock::now();
      Response response = serve_eco(request);
      const double latency = ms_since(start);
      eco_latency_.record(latency);
      obs::timer_record("serve/request_eco",
                        static_cast<std::uint64_t>(latency * 1e6));
      return response;
    }
  }
  return error_response(id, verb, StatusCode::kInvalid, "unknown verb");
}

Response Server::serve_eco(const Request& request) {
  if (eco_ == nullptr) {
    return error_response(request.id, Verb::kEco, StatusCode::kNotFound,
                          "eco: daemon started without --eco-design");
  }
  StatusOr<EcoEdit> edit = parse_eco_edit(request.text);
  if (!edit.ok()) {
    return error_response(request.id, Verb::kEco, edit.status().code(),
                          edit.status().message());
  }

  EcoResult result;
  std::size_t n_cells = 0;
  std::string design_name;
  {
    std::lock_guard<std::mutex> lock(eco_mu_);
    try {
      result = eco_->apply(edit.value());
    } catch (const std::invalid_argument& e) {
      return error_response(request.id, Verb::kEco, StatusCode::kInvalid,
                            std::string("eco: ") + e.what());
    }
    n_cells = eco_->num_cells();
    design_name = eco_->design().name();
  }
  eco_edits_.fetch_add(1, std::memory_order_relaxed);
  obs::counter_add("serve/eco_edits");

  obs::JsonValue doc = obs::JsonValue::make_object();
  doc["design"] = design_name;
  doc["cells"] = static_cast<std::uint64_t>(n_cells);
  doc["edit"] = request.text;

  obs::JsonValue stats = obs::JsonValue::make_object();
  stats["dirty_cells"] = static_cast<std::uint64_t>(result.stats.dirty_cells);
  stats["route_dirty_cells"] =
      static_cast<std::uint64_t>(result.stats.route_dirty_cells);
  stats["pattern_reused"] =
      static_cast<std::uint64_t>(result.stats.pattern_reused);
  stats["maze_reused"] = static_cast<std::uint64_t>(result.stats.maze_reused);
  stats["maze_recomputed"] =
      static_cast<std::uint64_t>(result.stats.maze_recomputed);
  stats["rows_rescored"] =
      static_cast<std::uint64_t>(result.stats.rows_rescored);
  doc["stats"] = std::move(stats);

  const auto& feature_names = FeatureSchema::names();
  obs::JsonValue diff = obs::JsonValue::make_object();
  diff["appeared"] = static_cast<std::uint64_t>(result.diff.n_appeared);
  diff["vanished"] = static_cast<std::uint64_t>(result.diff.n_vanished);
  diff["changed"] = static_cast<std::uint64_t>(result.diff.n_changed);
  obs::JsonValue entries = obs::JsonValue::make_array();
  const std::size_t n_on_wire =
      std::min(result.diff.entries.size(), kMaxDiffEntriesOnWire);
  for (std::size_t i = 0; i < n_on_wire; ++i) {
    const HotspotDiffEntry& entry = result.diff.entries[i];
    obs::JsonValue item = obs::JsonValue::make_object();
    item["cell"] = static_cast<std::uint64_t>(entry.cell);
    item["change"] = std::string(change_name(entry.change));
    item["prob_before"] = entry.prob_before;
    item["prob_after"] = entry.prob_after;
    obs::JsonValue deltas = obs::JsonValue::make_array();
    for (const auto& [feature, delta] : entry.shap_deltas) {
      obs::JsonValue pair = obs::JsonValue::make_object();
      pair["feature"] = std::string(feature_names[feature]);
      pair["delta"] = delta;
      deltas.push_back(std::move(pair));
    }
    item["shap_deltas"] = std::move(deltas);
    entries.push_back(std::move(item));
  }
  diff["entries"] = std::move(entries);
  diff["entries_truncated"] = result.diff.entries.size() > n_on_wire;
  doc["diff"] = std::move(diff);

  Response response;
  response.id = request.id;
  response.verb = Verb::kEco;
  response.text = doc.dump(2);
  return response;
}

void Server::teardown() {
  request_shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
  }
  // Drain: every request already enqueued is served before the runner
  // stops; submits arriving after this point get a typed rejection.
  if (batcher_ != nullptr) batcher_->shutdown();
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (const auto& connection : connections_) {
      // SHUT_RD unblocks the reader without cutting a reply mid-write.
      ::shutdown(connection->fd, SHUT_RD);
    }
    for (const auto& connection : connections_) {
      if (connection->thread.joinable()) connection->thread.join();
      ::close(connection->fd);
    }
    connections_.clear();
  }
  publish_obs_gauges();
}

std::string Server::stats_json() const {
  const std::shared_ptr<const ServedModel> model = registry_.current();
  const Batcher::Stats stats =
      batcher_ != nullptr ? batcher_->stats() : Batcher::Stats{};

  obs::JsonValue doc = obs::JsonValue::make_object();
  obs::JsonValue model_json = obs::JsonValue::make_object();
  if (model != nullptr) {
    model_json["version"] = model->version;
    model_json["path"] = model->path;
    model_json["n_features"] = static_cast<std::uint64_t>(model->n_features);
    model_json["engine"] = std::string(
        forest_engine_name(model->forest.resolve_engine(
            options_.batch.engine)));
  }
  model_json["swaps"] = registry_.swap_count();
  model_json["retired_alive"] =
      static_cast<std::uint64_t>(registry_.retired_alive());
  doc["model"] = std::move(model_json);

  obs::JsonValue queue = obs::JsonValue::make_object();
  queue["depth"] = static_cast<std::uint64_t>(stats.queue_depth);
  queue["max_depth"] = static_cast<std::uint64_t>(stats.max_queue_depth);
  doc["queue"] = std::move(queue);

  obs::JsonValue requests = obs::JsonValue::make_object();
  requests["received"] = stats.requests;
  requests["replied"] = stats.replies;
  requests["rejected"] = stats.rejected;
  requests["score_rows"] = stats.score_rows;
  requests["explain_rows"] = stats.explain_rows;
  requests["global_explain_rows"] = stats.global_explain_rows;
  doc["requests"] = std::move(requests);

  // Explanation-cache traffic: lifetime counters across model versions from
  // the batcher, plus the occupancy of the *current* model's cache (a hot
  // swap starts a fresh cache, so entries reset while traffic does not).
  obs::JsonValue cache = obs::JsonValue::make_object();
  cache["enabled"] = ExplanationCache::enabled_by_env();
  cache["hits"] = stats.explain_cache_hits;
  cache["misses"] = stats.explain_cache_misses;
  cache["hit_rate"] = stats.explain_cache_hit_rate();
  if (model != nullptr) {
    const ExplanationCacheStats model_cache = model->explain_cache->stats();
    cache["entries"] = static_cast<std::uint64_t>(model_cache.entries);
    cache["capacity"] = static_cast<std::uint64_t>(model_cache.capacity);
  }
  doc["explain_cache"] = std::move(cache);

  obs::JsonValue batch = obs::JsonValue::make_object();
  batch["batches"] = stats.batches;
  batch["max_batch_rows"] =
      static_cast<std::uint64_t>(options_.batch.max_batch_rows);
  batch["flush_us"] = static_cast<std::uint64_t>(options_.batch.flush_us);
  obs::JsonValue histogram = obs::JsonValue::make_array();
  for (const std::uint64_t count : stats.batch_rows_histogram) {
    histogram.push_back(count);
  }
  batch["rows_histogram"] = std::move(histogram);
  doc["batch"] = std::move(batch);

  obs::JsonValue latency = obs::JsonValue::make_object();
  const auto verb_latency = [](const LatencyRecorder& recorder) {
    obs::JsonValue entry = obs::JsonValue::make_object();
    entry["count"] = recorder.count();
    entry["p50_ms"] = recorder.percentile(50.0);
    entry["p99_ms"] = recorder.percentile(99.0);
    return entry;
  };
  latency["score"] = verb_latency(score_latency_);
  latency["explain"] = verb_latency(explain_latency_);
  latency["eco"] = verb_latency(eco_latency_);
  doc["latency_ms"] = std::move(latency);

  obs::JsonValue eco = obs::JsonValue::make_object();
  eco["resident"] = eco_ != nullptr;
  if (eco_ != nullptr) {
    eco["design"] = options_.eco_design;
    eco["cells"] = static_cast<std::uint64_t>(eco_->num_cells());
    eco["edits"] = eco_edits_.load(std::memory_order_relaxed);
  }
  doc["eco"] = std::move(eco);
  return doc.dump(2);
}

void Server::publish_obs_gauges() const {
  obs::gauge_set("serve/score_p50_ms", score_latency_.percentile(50.0));
  obs::gauge_set("serve/score_p99_ms", score_latency_.percentile(99.0));
  obs::gauge_set("serve/explain_p50_ms", explain_latency_.percentile(50.0));
  obs::gauge_set("serve/explain_p99_ms", explain_latency_.percentile(99.0));
  if (eco_ != nullptr) {
    obs::gauge_set("serve/eco_p50_ms", eco_latency_.percentile(50.0));
    obs::gauge_set("serve/eco_p99_ms", eco_latency_.percentile(99.0));
  }
  obs::gauge_set("serve/models_retired_alive",
                 static_cast<double>(registry_.retired_alive()));
  if (batcher_ != nullptr) {
    const Batcher::Stats stats = batcher_->stats();
    obs::gauge_set("serve/queue_depth",
                   static_cast<double>(stats.queue_depth));
    obs::gauge_set("serve/max_queue_depth",
                   static_cast<double>(stats.max_queue_depth));
    obs::gauge_set("serve/explain_cache_hit_rate",
                   stats.explain_cache_hit_rate());
  }
}

}  // namespace drcshap::serve
