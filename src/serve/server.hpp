#pragma once
// The drcshap_serve daemon core: a Unix-socket (or stdin/stdout) frame
// server that dispatches score/explain requests into the Batcher, serves
// reload/stats/shutdown inline, and owns the shutdown choreography — stop
// accepting, drain the batch queue, unblock every connection, join, and
// only then return from run(). Hot swaps arrive as SIGHUP (the daemon main
// forwards it via notify_sighup) or as a reload request on any connection.
//
// Concurrency model: one accept thread, one thread per live connection
// (requests on a single connection are served in order; concurrency — and
// therefore batching — comes from concurrent connections), plus the
// Batcher's runner thread, which fans each batch out on the shared pool.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "eco/eco_engine.hpp"
#include "serve/batcher.hpp"
#include "serve/model_registry.hpp"
#include "serve/protocol.hpp"

namespace drcshap::serve {

struct ServerOptions {
  std::string model_path;   ///< forest artifact loaded at start()
  std::string socket_path;  ///< Unix socket; empty = stdin/stdout mode
  BatchOptions batch;
  /// Non-empty = host a resident EcoEngine for the eco verb: the named
  /// benchmark-suite design is generated, routed and fully scored at
  /// start(). Requires the startup model to be trained on the pipeline's
  /// feature schema. The engine stays pinned to the startup model — a hot
  /// swap changes score/explain traffic but never a resident diff baseline.
  std::string eco_design;
  double eco_scale = 16.0;  ///< generator scale for the resident design
};

/// Sliding window of per-request latencies for the stats percentiles; the
/// run report gets p50/p99 gauges from here at shutdown.
class LatencyRecorder {
 public:
  explicit LatencyRecorder(std::size_t capacity = 8192);

  void record(double latency_ms);
  /// Percentile over the retained window (nearest-rank); 0 when empty.
  double percentile(double p) const;
  std::uint64_t count() const;

 private:
  mutable std::mutex mu_;
  std::vector<double> window_;
  std::size_t next_ = 0;
  std::uint64_t total_ = 0;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Loads the model and binds/listens on the socket (no-op bind in stdio
  /// mode). On error nothing is left running.
  Status start();

  /// Serves until a shutdown request (or request_shutdown()) arrives, then
  /// drains and tears down. Call after start(). In stdio mode this serves
  /// one implicit connection on fds 0/1.
  void run();

  /// Asks run() to begin the drain+teardown sequence (thread-safe).
  void request_shutdown();

  /// SIGHUP entry point: schedules a reload of the current model path. The
  /// swap happens on the accept loop, not in signal context.
  void notify_sighup() { reload_pending_.store(true); }

  /// SIGINT/SIGTERM entry point: async-signal-safe (a plain atomic store,
  /// unlike request_shutdown's mutex+cv). The accept loop's poll tick
  /// promotes it to a real request_shutdown within ~200 ms.
  void notify_shutdown_signal() { shutdown_pending_.store(true); }

  const ModelRegistry& registry() const { return registry_; }
  ModelRegistry& registry() { return registry_; }

  /// JSON document served by the stats verb: model identity/engine, queue
  /// and batch stats, request counts, p50/p99 latency per verb.
  std::string stats_json() const;

  /// Publishes the serving gauges (p50/p99 per verb, drain counters) into
  /// the obs registry so they land in the run report. run() does this at
  /// teardown; tests call it directly.
  void publish_obs_gauges() const;

 private:
  void accept_loop();
  void connection_loop(int fd);
  Response dispatch(Request request);
  Response serve_eco(const Request& request);
  void teardown();

  ServerOptions options_;
  ModelRegistry registry_;
  std::unique_ptr<Batcher> batcher_;

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> reload_pending_{false};
  std::atomic<bool> shutdown_pending_{false};
  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;

  struct Connection {
    std::thread thread;
    int fd = -1;
    std::atomic<bool> done{false};
  };
  std::mutex connections_mu_;
  std::vector<std::unique_ptr<Connection>> connections_;

  // Resident ECO state (socket connections race on it; edits serialize).
  // Built once at start(), so the pointer itself is safe to read unlocked.
  std::unique_ptr<EcoEngine> eco_;
  std::mutex eco_mu_;
  std::atomic<std::uint64_t> eco_edits_{0};

  LatencyRecorder score_latency_;
  LatencyRecorder explain_latency_;
  LatencyRecorder eco_latency_;
};

}  // namespace drcshap::serve
