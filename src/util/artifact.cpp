#include "util/artifact.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/failpoint.hpp"

namespace drcshap {

namespace {

/// Basename for failpoint keys and error messages: artifacts are addressed
/// by unit-of-work names, not by whatever scratch directory a test chose.
std::string_view base_name(std::string_view path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string_view::npos ? path : path.substr(slash + 1);
}

Status io_error(const std::string& verb, const std::string& path) {
  return {StatusCode::kIoError,
          verb + " failed for " + path + ": " + std::strerror(errno)};
}

/// POSIX write loop: ofstream cannot fsync, and a durability layer that
/// loses the data on power cut would only move the torn-file window.
Status write_all(int fd, std::string_view data, const std::string& path) {
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return io_error("write", path);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return {};
}

}  // namespace

// ------------------------------------------------------------------ Status

std::string_view to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kIoError: return "io-error";
    case StatusCode::kNotFound: return "not-found";
    case StatusCode::kCorrupt: return "corrupt";
    case StatusCode::kStaleConfig: return "stale-config";
    case StatusCode::kInvalid: return "invalid";
    case StatusCode::kFault: return "fault-injected";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (ok()) return "ok";
  std::string out(drcshap::to_string(code_));
  out += ": ";
  out += message_;
  return out;
}

void throw_if_error(const Status& status) {
  if (!status.ok()) throw ArtifactError(status);
}

// ------------------------------------------------------------------ FNV-1a

std::uint64_t fnv1a(const void* data, std::size_t n_bytes,
                    std::uint64_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n_bytes; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a(std::string_view text, std::uint64_t seed) {
  return fnv1a(text.data(), text.size(), seed);
}

namespace {
// Type tags keep differently typed but identically encoded fields distinct.
enum : unsigned char { kTagString = 1, kTagU64, kTagI64, kTagF64, kTagBytes };
}  // namespace

DigestBuilder& DigestBuilder::add(std::string_view text) {
  const unsigned char tag = kTagString;
  digest_ = fnv1a(&tag, 1, digest_);
  const std::uint64_t len = text.size();
  digest_ = fnv1a(&len, sizeof(len), digest_);
  digest_ = fnv1a(text.data(), text.size(), digest_);
  return *this;
}

DigestBuilder& DigestBuilder::add(std::uint64_t value) {
  const unsigned char tag = kTagU64;
  digest_ = fnv1a(&tag, 1, digest_);
  digest_ = fnv1a(&value, sizeof(value), digest_);
  return *this;
}

DigestBuilder& DigestBuilder::add(std::int64_t value) {
  const unsigned char tag = kTagI64;
  digest_ = fnv1a(&tag, 1, digest_);
  digest_ = fnv1a(&value, sizeof(value), digest_);
  return *this;
}

DigestBuilder& DigestBuilder::add(double value) {
  const unsigned char tag = kTagF64;
  digest_ = fnv1a(&tag, 1, digest_);
  digest_ = fnv1a(&value, sizeof(value), digest_);
  return *this;
}

DigestBuilder& DigestBuilder::add_bytes(const void* data,
                                        std::size_t n_bytes) {
  const unsigned char tag = kTagBytes;
  digest_ = fnv1a(&tag, 1, digest_);
  const std::uint64_t len = n_bytes;
  digest_ = fnv1a(&len, sizeof(len), digest_);
  digest_ = fnv1a(data, n_bytes, digest_);
  return *this;
}

std::string digest_hex(std::uint64_t digest) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[digest & 0xF];
    digest >>= 4;
  }
  return out;
}

// ----------------------------------------------------------- atomic commit

std::string temp_path_for(const std::string& path) {
  // Same-directory temp name so the final rename cannot cross filesystems;
  // pid-qualified so concurrent writers of *different* paths never collide
  // (checkpoint units are distinct files — same-path races are not a
  // supported pattern and would resolve to one winner via rename anyway).
  return path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
}

Status commit_temp_file(const std::string& tmp_path, const std::string& path) {
  const std::string key(base_name(path));
  const int fd = ::open(tmp_path.c_str(), O_RDONLY);
  if (fd < 0) return io_error("open", tmp_path);
  Status status;
  if (::fsync(fd) != 0) status = io_error("fsync", tmp_path);
  if (::close(fd) != 0 && status.ok()) status = io_error("close", tmp_path);
  if (status.ok()) {
    try {
      DRCSHAP_FAILPOINT_KEYED("artifact.rename", key);
    } catch (...) {
      ::unlink(tmp_path.c_str());
      throw;
    }
    if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
      status = io_error("rename", path);
    }
  }
  if (!status.ok()) ::unlink(tmp_path.c_str());
  return status;
}

Status write_file_atomic(const std::string& path, std::string_view contents) {
  const std::string key(base_name(path));
  DRCSHAP_FAILPOINT_KEYED("artifact.write_temp", key);
  const std::string tmp = temp_path_for(path);
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return io_error("open", tmp);
  Status status = write_all(fd, contents, tmp);
  if (status.ok() && ::fsync(fd) != 0) status = io_error("fsync", tmp);
  if (::close(fd) != 0 && status.ok()) status = io_error("close", tmp);
  if (status.ok()) {
    try {
      DRCSHAP_FAILPOINT_KEYED("artifact.rename", key);
    } catch (...) {
      ::unlink(tmp.c_str());
      throw;
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
      status = io_error("rename", path);
    }
  }
  if (!status.ok()) ::unlink(tmp.c_str());
  return status;
}

StatusOr<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    const StatusCode code =
        errno == ENOENT ? StatusCode::kNotFound : StatusCode::kIoError;
    return Status(code, "cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return io_error("read", path);
  return std::move(buffer).str();
}

// ------------------------------------------------------- artifact envelope

namespace {
constexpr std::string_view kMagic = "DRCSHAP-ARTIFACT";
constexpr std::string_view kVersion = "v1";
constexpr std::string_view kTrailerTag = "FNV1A";
}  // namespace

std::string frame_artifact(std::string_view kind, std::string_view payload) {
  std::string out;
  out.reserve(payload.size() + 64);
  out.append(kMagic);
  out += ' ';
  out.append(kVersion);
  out += ' ';
  out.append(kind);
  out += ' ';
  out += std::to_string(payload.size());
  out += '\n';
  out.append(payload);
  out += '\n';
  out.append(kTrailerTag);
  out += ' ';
  out += digest_hex(fnv1a(payload));
  out += '\n';
  return out;
}

StatusOr<std::string> unframe_artifact(std::string_view framed,
                                       std::string_view kind) {
  const auto corrupt = [&](const std::string& why) {
    return Status(StatusCode::kCorrupt,
                  "artifact(" + std::string(kind) + "): " + why);
  };

  const std::size_t header_end = framed.find('\n');
  if (header_end == std::string_view::npos) {
    return corrupt("missing header line");
  }
  std::istringstream header{std::string(framed.substr(0, header_end))};
  std::string magic, version, file_kind;
  std::uint64_t payload_size = 0;
  header >> magic >> version >> file_kind >> payload_size;
  if (!header || magic != kMagic) return corrupt("bad magic");
  if (version != kVersion) {
    return corrupt("unsupported format version '" + version + "'");
  }
  if (file_kind != kind) {
    return corrupt("kind mismatch: file holds '" + file_kind + "'");
  }

  const std::size_t payload_begin = header_end + 1;
  // Trailer: "\nFNV1A <16 hex>\n" — fixed 25 bytes after the payload.
  const std::size_t trailer_size = 1 + kTrailerTag.size() + 1 + 16 + 1;
  if (framed.size() < payload_begin + trailer_size ||
      framed.size() - payload_begin - trailer_size != payload_size) {
    return corrupt("truncated: header promises " +
                   std::to_string(payload_size) + " payload bytes, file has " +
                   std::to_string(framed.size() < payload_begin + trailer_size
                                      ? 0
                                      : framed.size() - payload_begin -
                                            trailer_size));
  }
  const std::string_view payload = framed.substr(payload_begin, payload_size);
  const std::string_view trailer = framed.substr(payload_begin + payload_size);
  std::string expected = "\n";
  expected.append(kTrailerTag);
  expected += ' ';
  expected += digest_hex(fnv1a(payload));
  expected += '\n';
  if (trailer != expected) {
    return corrupt("checksum mismatch (torn write or bit rot)");
  }
  return std::string(payload);
}

Status write_artifact_atomic(const std::string& path, std::string_view kind,
                             std::string_view payload) {
  return write_file_atomic(path, frame_artifact(kind, payload));
}

StatusOr<std::string> read_artifact(const std::string& path,
                                    std::string_view kind) {
  StatusOr<std::string> raw = read_file(path);
  if (!raw.ok()) return raw.status();
  StatusOr<std::string> payload = unframe_artifact(raw.value(), kind);
  if (!payload.ok()) {
    return Status(payload.status().code(),
                  payload.status().message() + " at " + path);
  }
  return payload;
}

}  // namespace drcshap
