#pragma once
// Crash-safe artifact I/O: the durability layer every persisted file in the
// repo (models, def-lite designs, checkpoints, run reports, CSVs) commits
// through. Two guarantees:
//
//   1. Atomicity — files are written to a same-directory temp name, flushed
//      to disk, and renamed into place, so a reader can never observe a
//      torn (partially written) file: it sees either the old content or the
//      new content, even if the writer dies mid-commit.
//   2. Integrity — artifacts carry a versioned header and an FNV-1a content
//      checksum trailer; loads verify both and fail with a typed,
//      actionable error instead of parsing garbage.
//
// Errors are reported as Status/StatusOr values on the primitive layer so
// recovery code (checkpoint/resume) can branch on the failure class without
// exception plumbing; the public file APIs that predate this layer
// (model_io, def_io) keep throwing, but now throw ArtifactError, which
// carries the same StatusCode.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace drcshap {

// ------------------------------------------------------------------ Status

/// Failure taxonomy for artifact and checkpoint I/O. Each code names what
/// the caller can do about it (retry, recompute, fix the config, give up).
enum class StatusCode {
  kOk = 0,
  kIoError,      ///< open/write/rename/read failed (disk full, permissions)
  kNotFound,     ///< no artifact at the path (fresh run — compute it)
  kCorrupt,      ///< torn/bit-flipped/malformed content (recompute/restore)
  kStaleConfig,  ///< valid artifact for a different config digest (recompute)
  kInvalid,      ///< caller error (bad argument, schema violation)
  kFault,        ///< injected failpoint fired (tests only)
};

std::string_view to_string(StatusCode code);

class Status {
 public:
  Status() = default;  // ok
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok_status() { return {}; }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>".
  std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Exception form of a non-ok Status, for the throwing public APIs.
/// Derives from std::runtime_error so pre-existing catch sites keep working.
class ArtifactError : public std::runtime_error {
 public:
  explicit ArtifactError(Status status)
      : std::runtime_error(status.to_string()), status_(std::move(status)) {}

  StatusCode code() const { return status_.code(); }
  const Status& status() const { return status_; }

 private:
  Status status_;
};

/// Throws ArtifactError when `status` is not ok.
void throw_if_error(const Status& status);

/// Value-or-Status: the load APIs return this so recovery code can branch
/// on the failure class. Accessing value() on an error throws ArtifactError.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}       // NOLINT(runtime/explicit)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status(StatusCode::kInvalid, "StatusOr built from ok Status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    if (!ok()) throw ArtifactError(status_);
    return *value_;
  }
  T&& value() && {
    if (!ok()) throw ArtifactError(status_);
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// ------------------------------------------------------------------ FNV-1a

inline constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// FNV-1a over raw bytes, chainable via `seed` (pass a previous digest).
std::uint64_t fnv1a(const void* data, std::size_t n_bytes,
                    std::uint64_t seed = kFnvOffsetBasis);
std::uint64_t fnv1a(std::string_view text,
                    std::uint64_t seed = kFnvOffsetBasis);

/// Incremental digest over heterogeneous fields, for config/seed digests
/// that key checkpoints. Every add() also folds in a type tag + separator so
/// add("ab"),add("c") and add("a"),add("bc") hash differently.
class DigestBuilder {
 public:
  DigestBuilder& add(std::string_view text);
  DigestBuilder& add(std::uint64_t value);
  DigestBuilder& add(std::int64_t value);
  DigestBuilder& add(double value);  ///< hashes the IEEE bit pattern
  DigestBuilder& add_bytes(const void* data, std::size_t n_bytes);

  std::uint64_t value() const { return digest_; }

 private:
  std::uint64_t digest_ = kFnvOffsetBasis;
};

/// 16-hex-digit lowercase form used in artifact trailers and digest lines.
std::string digest_hex(std::uint64_t digest);

// ----------------------------------------------------------- atomic commit

/// Writes `contents` to `path` atomically: temp file in the same directory,
/// fsync, rename over `path`. No header/checksum is added — for formats
/// with external consumers (runreport.json, CSVs) that must stay unframed.
Status write_file_atomic(const std::string& path, std::string_view contents);

/// Commits an already fully written temp file: fsync, then rename onto
/// `path`. For streaming writers (CsvWriter) that cannot buffer the whole
/// file but still need the old-or-new atomicity guarantee.
Status commit_temp_file(const std::string& tmp_path, const std::string& path);

/// Temp name next to `path` for a streaming writer ("<path>.tmp.<pid>").
std::string temp_path_for(const std::string& path);

/// Reads a whole file. kNotFound when it does not exist.
StatusOr<std::string> read_file(const std::string& path);

// ------------------------------------------------------- artifact envelope
//
// Framed artifact layout (payload may be binary):
//
//   DRCSHAP-ARTIFACT v1 <kind> <payload_bytes>\n
//   <payload>
//   \nFNV1A <16-hex digest of payload>\n
//
// The header pins the format version and the artifact kind (a reader asking
// for a "forest" fails cleanly on a "def-lite" file); the byte count makes
// truncation detectable before hashing; the trailer checksum catches bit
// rot and torn writes that slipped past rename atomicity (e.g. a corrupt
// backing store).

/// Frames `payload` and commits it atomically to `path`.
Status write_artifact_atomic(const std::string& path, std::string_view kind,
                             std::string_view payload);

/// Loads and verifies an artifact: header magic/version/kind, payload size,
/// checksum. Returns the payload, or kNotFound / kCorrupt.
StatusOr<std::string> read_artifact(const std::string& path,
                                    std::string_view kind);

/// Frames `payload` into the envelope without touching the filesystem
/// (stream-level callers and tests).
std::string frame_artifact(std::string_view kind, std::string_view payload);

/// Inverse of frame_artifact with full verification.
StatusOr<std::string> unframe_artifact(std::string_view framed,
                                       std::string_view kind);

}  // namespace drcshap
