#include "util/csv.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/artifact.hpp"

namespace drcshap {

struct CsvWriter::Impl {
  std::string path;
  std::string tmp;
  std::ofstream out;
  bool committed = false;
};

CsvWriter::CsvWriter(const std::string& path) : impl_(new Impl) {
  impl_->path = path;
  impl_->tmp = temp_path_for(path);
  impl_->out.open(impl_->tmp, std::ios::trunc | std::ios::binary);
  if (!impl_->out) {
    delete impl_;
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
}

CsvWriter::~CsvWriter() {
  try {
    close();
  } catch (...) {
    // Destructor commit is best-effort; the temp file (if any) is already
    // unlinked by the failed commit, and the target keeps its old content.
  }
  delete impl_;
}

void CsvWriter::close() {
  if (impl_->committed) return;
  impl_->out.flush();
  const bool stream_ok = static_cast<bool>(impl_->out);
  impl_->out.close();
  if (!stream_ok) {
    std::remove(impl_->tmp.c_str());
    impl_->committed = true;  // nothing further to commit
    throw ArtifactError(
        {StatusCode::kIoError, "CsvWriter: write failed for " + impl_->path});
  }
  impl_->committed = true;
  throw_if_error(commit_temp_file(impl_->tmp, impl_->path));
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) impl_->out << ',';
    impl_->out << csv_escape(cells[i]);
  }
  impl_->out << '\n';
}

void CsvWriter::write_row_doubles(const std::vector<double>& values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) impl_->out << ',';
    impl_->out << values[i];
  }
  impl_->out << '\n';
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::vector<std::string> csv_parse_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cur;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  cells.push_back(std::move(cur));
  return cells;
}

std::vector<std::vector<std::string>> csv_read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("csv_read_file: cannot open " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    rows.push_back(csv_parse_line(line));
  }
  return rows;
}

}  // namespace drcshap
