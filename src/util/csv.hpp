#pragma once
// Minimal CSV reading/writing with RFC-4180 quoting. Used to persist feature
// matrices and benchmark series so results can be post-processed externally.

#include <iosfwd>
#include <string>
#include <vector>

namespace drcshap {

/// Crash-safe CSV writer: rows stream into a same-directory temp file and
/// the target path is only created/replaced by an atomic rename in close()
/// (or the destructor). A reader — or a re-run after a crash — can never
/// observe a half-written CSV under the final name.
class CsvWriter {
 public:
  /// Opens the temp file; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);
  /// Commits via close() if still open, swallowing errors (stack unwind
  /// must not terminate); call close() explicitly to observe failures.
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void write_row(const std::vector<std::string>& cells);
  void write_row_doubles(const std::vector<double>& values);

  /// Flushes, fsyncs and renames the temp file onto the target path.
  /// Throws ArtifactError (a std::runtime_error) if the commit fails;
  /// idempotent once committed.
  void close();

 private:
  struct Impl;
  Impl* impl_;
};

/// Quote a cell if it contains a comma, quote, or newline.
std::string csv_escape(const std::string& cell);

/// Parse one CSV line into cells (handles quoted cells with embedded commas).
std::vector<std::string> csv_parse_line(const std::string& line);

/// Read a whole CSV file into rows of cells.
std::vector<std::vector<std::string>> csv_read_file(const std::string& path);

}  // namespace drcshap
