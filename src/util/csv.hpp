#pragma once
// Minimal CSV reading/writing with RFC-4180 quoting. Used to persist feature
// matrices and benchmark series so results can be post-processed externally.

#include <iosfwd>
#include <string>
#include <vector>

namespace drcshap {

class CsvWriter {
 public:
  /// Opens (truncates) the file; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void write_row(const std::vector<std::string>& cells);
  void write_row_doubles(const std::vector<double>& values);

 private:
  struct Impl;
  Impl* impl_;
};

/// Quote a cell if it contains a comma, quote, or newline.
std::string csv_escape(const std::string& cell);

/// Parse one CSV line into cells (handles quoted cells with embedded commas).
std::vector<std::string> csv_parse_line(const std::string& line);

/// Read a whole CSV file into rows of cells.
std::vector<std::vector<std::string>> csv_read_file(const std::string& path);

}  // namespace drcshap
