#include "util/failpoint.hpp"

#if DRCSHAP_FAILPOINTS_ENABLED

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>

namespace drcshap {

namespace {

struct Rule {
  enum class Kind { kFailAtCount, kThrowOnKey };
  Kind kind = Kind::kFailAtCount;
  std::uint64_t at_count = 0;  ///< fail@N: fire when hits >= N
  std::string key;             ///< throw@KEY
  std::uint64_t hits = 0;      ///< evaluations since configure
};

struct Config {
  std::mutex mu;
  std::map<std::string, Rule, std::less<>> rules;
  // Keyed failpoints are also counted when unarmed, so sweep tests can
  // discover how many commit points a scenario passes through.
  std::map<std::string, std::uint64_t, std::less<>> hit_counts;
};

// Armed-state fast path: a single relaxed atomic load when nothing is
// configured, so even a failpoint-enabled build pays ~nothing until a test
// arms a rule.
std::atomic<bool> g_armed{false};

Config& config() {
  static Config* instance = new Config();
  return *instance;
}

// One-time environment arming: the first failpoint evaluation (or explicit
// configure) picks up $DRCSHAP_FAILPOINTS, which is how the CI fault-
// injection job arms release binaries without code changes.
std::once_flag g_env_once;

void parse_spec_locked(Config& cfg, std::string_view spec) {
  cfg.rules.clear();
  cfg.hit_counts.clear();
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    const std::size_t at = entry.find('@');
    if (eq == std::string_view::npos || at == std::string_view::npos ||
        at < eq) {
      throw std::invalid_argument("failpoints: malformed entry '" +
                                  std::string(entry) +
                                  "' (want name=action@operand)");
    }
    const std::string name(entry.substr(0, eq));
    const std::string_view action = entry.substr(eq + 1, at - eq - 1);
    const std::string operand(entry.substr(at + 1));
    Rule rule;
    if (action == "fail") {
      rule.kind = Rule::Kind::kFailAtCount;
      char* end = nullptr;
      rule.at_count = std::strtoull(operand.c_str(), &end, 10);
      if (end == operand.c_str() || *end != '\0' || rule.at_count == 0) {
        throw std::invalid_argument(
            "failpoints: fail@N needs a positive count, got '" + operand +
            "'");
      }
    } else if (action == "throw") {
      rule.kind = Rule::Kind::kThrowOnKey;
      rule.key = operand;
    } else {
      throw std::invalid_argument("failpoints: unknown action '" +
                                  std::string(action) + "' (want fail|throw)");
    }
    cfg.rules[name] = std::move(rule);
  }
}

void arm_from_env() {
  std::call_once(g_env_once, [] {
    const char* env = std::getenv("DRCSHAP_FAILPOINTS");
    if (env == nullptr || env[0] == '\0') return;
    Config& cfg = config();
    std::lock_guard lock(cfg.mu);
    parse_spec_locked(cfg, env);
    g_armed.store(!cfg.rules.empty(), std::memory_order_relaxed);
  });
}

void hit_impl(std::string_view name, const std::string_view* key) {
  arm_from_env();
  if (!g_armed.load(std::memory_order_relaxed)) return;
  Config& cfg = config();
  std::string fired;
  {
    std::lock_guard lock(cfg.mu);
    auto counter = cfg.hit_counts.find(name);
    if (counter == cfg.hit_counts.end()) {
      cfg.hit_counts.emplace(std::string(name), 1);
    } else {
      ++counter->second;
    }
    const auto it = cfg.rules.find(name);
    if (it == cfg.rules.end()) return;
    Rule& rule = it->second;
    ++rule.hits;
    switch (rule.kind) {
      case Rule::Kind::kFailAtCount:
        if (rule.hits >= rule.at_count) fired = it->first;
        break;
      case Rule::Kind::kThrowOnKey:
        if (key != nullptr && *key == rule.key) fired = it->first;
        break;
    }
  }
  if (!fired.empty()) throw FailpointError(std::move(fired));
}

}  // namespace

void failpoints_configure(std::string_view spec) {
  arm_from_env();  // consume the env slot so it cannot re-arm later
  Config& cfg = config();
  std::lock_guard lock(cfg.mu);
  parse_spec_locked(cfg, spec);
  g_armed.store(!cfg.rules.empty(), std::memory_order_relaxed);
}

void failpoints_clear() { failpoints_configure(""); }

std::uint64_t failpoint_hits(std::string_view name) {
  Config& cfg = config();
  std::lock_guard lock(cfg.mu);
  const auto it = cfg.hit_counts.find(name);
  return it == cfg.hit_counts.end() ? 0 : it->second;
}

void failpoint_hit(std::string_view name) { hit_impl(name, nullptr); }

void failpoint_hit(std::string_view name, std::string_view key) {
  hit_impl(name, &key);
}

}  // namespace drcshap

#endif  // DRCSHAP_FAILPOINTS_ENABLED
