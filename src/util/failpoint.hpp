#pragma once
// Deterministic fault injection for crash-recovery tests. Named failpoints
// are compiled into I/O commit points and experiment-loop tasks; a build
// with -DDRCSHAP_FAILPOINTS=ON can arm them via the environment or from
// test code:
//
//   DRCSHAP_FAILPOINTS="model_io.write=fail@2,pipeline.design=throw@des_perf_1"
//
// Spec grammar: comma-separated `<name>=<action>` entries with actions
//   fail@N     throw FailpointError from the N-th hit of <name> onward
//              (counted from 1 — models a process that dies and stays dead)
//   throw@KEY  throw when the site is hit with key operand == KEY
//              (poisons one design/fold/unit, leaving siblings healthy)
//
// In the default build (DRCSHAP_FAILPOINTS=OFF) every macro below expands
// to nothing and the inline stubs vanish, so production binaries carry zero
// fault-injection cost — the same compile-out discipline as src/obs.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#ifndef DRCSHAP_FAILPOINTS_ENABLED
#define DRCSHAP_FAILPOINTS_ENABLED 0
#endif

namespace drcshap {

/// Compile-time switch mirror, so tests can self-skip in builds where
/// failpoints are compiled out.
constexpr bool kFailpointsCompiled = DRCSHAP_FAILPOINTS_ENABLED != 0;

/// Thrown when an armed failpoint fires. Carries the failpoint name so
/// recovery tests can assert which commit point "crashed".
class FailpointError : public std::runtime_error {
 public:
  explicit FailpointError(std::string name)
      : std::runtime_error("failpoint '" + name + "' fired"),
        name_(std::move(name)) {}

  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

#if DRCSHAP_FAILPOINTS_ENABLED

/// Replace the active configuration with `spec` (see grammar above) and
/// reset all hit counters. Empty spec disarms everything. Throws
/// std::invalid_argument on a malformed spec.
void failpoints_configure(std::string_view spec);

/// Disarm all failpoints and reset counters.
void failpoints_clear();

/// Total times the named failpoint has been evaluated since the last
/// configure/clear — lets sweep tests size their kill schedule.
std::uint64_t failpoint_hits(std::string_view name);

/// Failpoint sites (used via the macros below). May throw FailpointError.
void failpoint_hit(std::string_view name);
void failpoint_hit(std::string_view name, std::string_view key);

/// RAII: configure on construction, clear on destruction (tests).
class ScopedFailpoints {
 public:
  explicit ScopedFailpoints(std::string_view spec) {
    failpoints_configure(spec);
  }
  ~ScopedFailpoints() { failpoints_clear(); }

  ScopedFailpoints(const ScopedFailpoints&) = delete;
  ScopedFailpoints& operator=(const ScopedFailpoints&) = delete;
};

#define DRCSHAP_FAILPOINT(name) ::drcshap::failpoint_hit(name)
#define DRCSHAP_FAILPOINT_KEYED(name, key) ::drcshap::failpoint_hit(name, key)

#else  // DRCSHAP_FAILPOINTS_ENABLED == 0: everything is a no-op.

inline void failpoints_configure(std::string_view) {}
inline void failpoints_clear() {}
inline std::uint64_t failpoint_hits(std::string_view) { return 0; }
inline void failpoint_hit(std::string_view) {}
inline void failpoint_hit(std::string_view, std::string_view) {}

class ScopedFailpoints {
 public:
  explicit ScopedFailpoints(std::string_view) {}
  ScopedFailpoints(const ScopedFailpoints&) = delete;
  ScopedFailpoints& operator=(const ScopedFailpoints&) = delete;
};

#define DRCSHAP_FAILPOINT(name) ((void)0)
#define DRCSHAP_FAILPOINT_KEYED(name, key) ((void)0)

#endif  // DRCSHAP_FAILPOINTS_ENABLED

}  // namespace drcshap
