#pragma once
// Tiny leveled logger. Benches use it for progress lines; tests silence it.

#include <sstream>
#include <string>

namespace drcshap {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level (default kInfo).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line at `level` (thread-safe, stderr).
void log_line(LogLevel level, const std::string& message);

namespace detail {
inline void append_all(std::ostringstream&) {}
template <typename T, typename... Rest>
void append_all(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  append_all(os, rest...);
}
}  // namespace detail

template <typename... Args>
void log_info(const Args&... args) {
  if (log_level() > LogLevel::kInfo) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_line(LogLevel::kInfo, os.str());
}

template <typename... Args>
void log_warn(const Args&... args) {
  if (log_level() > LogLevel::kWarn) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_line(LogLevel::kWarn, os.str());
}

template <typename... Args>
void log_debug(const Args&... args) {
  if (log_level() > LogLevel::kDebug) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_line(LogLevel::kDebug, os.str());
}

}  // namespace drcshap
