#include "util/rng.hpp"

#include <cmath>

namespace drcshap {

std::uint64_t splitmix64_next(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64_next(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

std::size_t Rng::index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("Rng::index: n == 0");
  return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  // Box-Muller; discards the second variate for simplicity.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  constexpr double two_pi = 6.283185307179586476925286766559;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(two_pi * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::uint64_t Rng::poisson(double lambda) {
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    const double limit = std::exp(-lambda);
    std::uint64_t k = 0;
    double prod = uniform();
    while (prod > limit) {
      ++k;
      prod *= uniform();
    }
    return k;
  }
  // Normal approximation with continuity correction for large lambda.
  const double draw = normal(lambda, std::sqrt(lambda));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  if (k > n) throw std::invalid_argument("sample_without_replacement: k > n");
  // Partial Fisher-Yates over an index vector.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + index(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

std::vector<std::size_t> Rng::bootstrap_indices(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (auto& v : idx) v = index(n);
  return idx;
}

Rng Rng::fork() { return Rng((*this)()); }

}  // namespace drcshap
