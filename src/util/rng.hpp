#pragma once
// Deterministic, seedable random number generation.
//
// Every stochastic component in this repository (benchmark-design synthesis,
// placement, bootstrap sampling, feature subspace selection, SMO shuffling,
// NN initialization, ...) draws from an explicitly seeded Rng so that the
// whole pipeline is reproducible run-to-run and platform-to-platform.
// xoshiro256** is used instead of std::mt19937 because its output sequence is
// fully specified (libstdc++'s distributions are not), small and fast.

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

namespace drcshap {

/// splitmix64 step; used to expand a single 64-bit seed into a full state.
std::uint64_t splitmix64_next(std::uint64_t& state);

/// xoshiro256** generator with explicit, portable distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Raw 64-bit draw.
  result_type operator()();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (portable across standard libraries).
  double normal();

  /// Normal with given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Poisson draw (Knuth for small lambda, normal approximation for large).
  std::uint64_t poisson(double lambda);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  /// Sample k distinct indices from [0, n) without replacement.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Sample n indices from [0, n) with replacement (bootstrap).
  std::vector<std::size_t> bootstrap_indices(std::size_t n);

  /// Derive an independent child generator (for per-tree / per-design seeds).
  Rng fork();

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace drcshap
