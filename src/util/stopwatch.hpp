#pragma once
// Wall-clock stopwatch for the CPU-time rows of Table II and bench logging.

#include <chrono>

namespace drcshap {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double minutes() const { return seconds() / 60.0; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace drcshap
