#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace drcshap {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table: row arity mismatch");
  }
  rows_.push_back(std::move(row));
  is_separator_.push_back(false);
}

void Table::add_separator() {
  rows_.emplace_back();
  is_separator_.push_back(true);
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (is_separator_[r]) continue;
    for (std::size_t c = 0; c < header_.size(); ++c) {
      width[c] = std::max(width[c], rows_[r][c].size());
    }
  }

  auto render_rule = [&] {
    std::string out = "+";
    for (const auto w : width) {
      out += std::string(w + 2, '-');
      out += '+';
    }
    out += '\n';
    return out;
  };
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string out = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += ' ';
      out += cells[c];
      out += std::string(width[c] - cells[c].size() + 1, ' ');
      out += '|';
    }
    out += '\n';
    return out;
  };

  std::string out = render_rule();
  out += render_row(header_);
  out += render_rule();
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out += is_separator_[r] ? render_rule() : render_row(rows_[r]);
  }
  out += render_rule();
  return out;
}

std::string fmt_fixed(double value, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << value;
  return os.str();
}

std::string fmt_kilo(double value, int decimals) {
  return fmt_fixed(value / 1000.0, decimals) + "k";
}

std::string fmt_percent(double fraction, int decimals) {
  return fmt_fixed(fraction * 100.0, decimals) + "%";
}

}  // namespace drcshap
