#pragma once
// Fixed-width ASCII table rendering for the bench binaries that regenerate the
// paper's tables (Table I, Table II). Columns auto-size to content; numeric
// formatting helpers match the paper's 4-decimal style.

#include <string>
#include <vector>

namespace drcshap {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Append a horizontal separator line.
  void add_separator();

  /// Render the whole table, including header, as a string.
  std::string to_string() const;

  std::size_t n_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  // A row with exactly one empty cell marked separator_ is rendered as a rule.
  std::vector<std::vector<std::string>> rows_;
  std::vector<bool> is_separator_;
};

/// Format with fixed decimals (paper tables use 4).
std::string fmt_fixed(double value, int decimals = 4);

/// Format like "1252.2k" (Table II parameter-count rows).
std::string fmt_kilo(double value, int decimals = 1);

/// Format a percentage, e.g. 0.506 -> "50.6%".
std::string fmt_percent(double fraction, int decimals = 1);

}  // namespace drcshap
