#include "util/thread_pool.hpp"

#include <algorithm>

namespace drcshap {

namespace {
thread_local int tl_worker_index = -1;
}  // namespace

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  if (n == 0) return;
  if (grain == 0) {
    const std::size_t target_chunks = 4 * size();
    grain = std::max<std::size_t>(1, (n + target_chunks - 1) / target_chunks);
  }
  const std::size_t n_chunks = (n + grain - 1) / grain;
  if (n_chunks <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(n_chunks);
  for (std::size_t c = 0; c < n_chunks; ++c) {
    const std::size_t begin = c * grain;
    const std::size_t end = std::min(n, begin + grain);
    futures.push_back(submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.get();  // rethrows task exceptions
}

int ThreadPool::current_worker_index() { return tl_worker_index; }

void ThreadPool::worker_loop(std::size_t worker_index) {
  tl_worker_index = static_cast<int>(worker_index);
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace drcshap
