#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>

#include "util/failpoint.hpp"

namespace drcshap {

namespace {

thread_local int tl_worker_index = -1;

std::size_t global_pool_size() {
  if (const char* env = std::getenv("DRCSHAP_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return std::max<std::size_t>(2, std::thread::hardware_concurrency());
}

}  // namespace

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(global_pool_size());
  return pool;
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain, std::size_t max_workers) {
  if (n == 0) return;
  std::size_t width = size();
  if (max_workers != 0) width = std::min(width, max_workers);
  if (width <= 1 || in_parallel_region()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  if (grain == 0) {
    const std::size_t target_chunks = 4 * width;
    grain = std::max<std::size_t>(1, (n + target_chunks - 1) / target_chunks);
  }
  const std::size_t n_chunks = (n + grain - 1) / grain;
  if (n_chunks <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Strip-mining: `strips` pool tasks pull chunks off a shared cursor. Any
  // schedule computes every index exactly once into its own slot, so results
  // cannot depend on which worker claims which chunk.
  const std::size_t strips = std::min(width, n_chunks);
  auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
  std::vector<std::future<void>> futures;
  futures.reserve(strips);
  // `failed` lets sibling strips stop claiming new chunks once any task has
  // thrown, so a poisoned index does not force the whole remaining range to
  // run before the error can surface.
  auto failed = std::make_shared<std::atomic<bool>>(false);
  for (std::size_t s = 0; s < strips; ++s) {
    futures.push_back(submit([&fn, cursor, failed, grain, n, n_chunks] {
      for (;;) {
        if (failed->load(std::memory_order_relaxed)) return;
        const std::size_t c = cursor->fetch_add(1, std::memory_order_relaxed);
        if (c >= n_chunks) return;
        const std::size_t begin = c * grain;
        const std::size_t end = std::min(n, begin + grain);
        try {
          DRCSHAP_FAILPOINT("pool.chunk");
          for (std::size_t i = begin; i < end; ++i) fn(i);
        } catch (...) {
          failed->store(true, std::memory_order_relaxed);
          throw;
        }
      }
    }));
  }
  // Join EVERY strip before letting the first exception out: `fn` and the
  // caller's captured state live on the caller's stack, so rethrowing while
  // a sibling strip is still running would let that sibling use freed state
  // once the caller unwinds. First exception (in strip order) wins; the
  // others are joined and dropped.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

int ThreadPool::current_worker_index() { return tl_worker_index; }

void ThreadPool::worker_loop(std::size_t worker_index) {
  tl_worker_index = static_cast<int>(worker_index);
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void parallel_for_shared(std::size_t n,
                         const std::function<void(std::size_t)>& fn,
                         std::size_t n_threads, std::size_t grain) {
  ThreadPool::global().parallel_for(n, fn, grain, n_threads);
}

}  // namespace drcshap
