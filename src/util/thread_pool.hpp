#pragma once
// Minimal fixed-size thread pool used to parallelize embarrassingly parallel
// work (random-forest tree training, per-design pipelines). On a single-core
// host it degrades gracefully to near-serial execution.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace drcshap {

class ThreadPool {
 public:
  /// n_threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [0, n) across the pool and wait for all of them.
  /// Exceptions from tasks propagate out of this call (first one wins).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace drcshap
