#pragma once
// Minimal fixed-size thread pool used to parallelize embarrassingly parallel
// work (random-forest tree training, batched SHAP/inference, per-design
// pipelines). On a single-core host it degrades gracefully to near-serial
// execution.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace drcshap {

class ThreadPool {
 public:
  /// n_threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [0, n) across the pool and wait for all of them.
  /// The range is chunked into contiguous blocks of `grain` indices so the
  /// queue holds O(chunks) tasks, not O(n); grain == 0 picks a block size
  /// targeting ~4 chunks per worker (load balance without per-index
  /// enqueue/future overhead). A single-chunk range runs inline on the
  /// calling thread. Exceptions from tasks propagate out of this call
  /// (first one wins).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 0);

  /// Index of the calling thread within its owning pool, or -1 when called
  /// from a thread that is not a pool worker (e.g. the thread that invoked
  /// parallel_for). Lets parallel work address per-worker scratch arenas
  /// without locking.
  static int current_worker_index();

 private:
  void worker_loop(std::size_t worker_index);

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace drcshap
