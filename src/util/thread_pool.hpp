#pragma once
// Minimal fixed-size thread pool used to parallelize embarrassingly parallel
// work (random-forest tree training, batched SHAP/inference, per-design
// pipelines, CV folds, grid-search candidates). On a single-core host it
// degrades gracefully to near-serial execution.
//
// Process-wide sharing and nesting policy: ThreadPool::global() is a single
// lazily-constructed pool every library hot path runs on — no code spawns
// threads per call. parallel_for is nesting-aware: when invoked from a pool
// worker (i.e. inside an outer parallel region, e.g. an inner forest fit
// under a parallel CV fold) it runs the range serially inline instead of
// re-entering the pool, so nesting never oversubscribes the machine and
// never deadlocks. Because every work item writes results keyed by its own
// index, serial degradation cannot change any result.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace drcshap {

class ThreadPool {
 public:
  /// n_threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide shared pool. Lazily constructed on first use, sized by
  /// $DRCSHAP_THREADS when set, else hardware_concurrency with a floor of 2
  /// (so the concurrent machinery is exercised — and sanitizable — even on
  /// single-core hosts). Library code should run on this pool rather than
  /// constructing its own: per-call pools pay a thread spawn/join per call
  /// and stack into oversubscription when experiment loops nest model fits.
  static ThreadPool& global();

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [0, n) across the pool and wait for all of them.
  /// The range is chunked into contiguous blocks of `grain` indices and the
  /// chunks are strip-mined by at most `max_workers` pool tasks pulling from
  /// a shared cursor, so the queue holds O(workers) tasks and concurrency is
  /// capped at min(max_workers, size()); max_workers == 0 means the whole
  /// pool, grain == 0 picks a block size targeting ~4 chunks per
  /// participating worker (load balance without per-index overhead).
  ///
  /// Degrades to a plain inline loop on the calling thread when the
  /// effective width is 1, the range is a single chunk, or the caller is
  /// itself a pool worker (nested parallelism — see the header comment).
  /// Exceptions from tasks propagate out of this call (first one in strip
  /// order wins); every sibling task is joined before the rethrow, so no
  /// task can still be touching captured state when the caller unwinds.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 0, std::size_t max_workers = 0);

  /// Index of the calling thread within its owning pool, or -1 when called
  /// from a thread that is not a pool worker (e.g. the thread that invoked
  /// parallel_for). Lets parallel work address per-worker scratch arenas
  /// without locking.
  static int current_worker_index();

  /// True iff the calling thread is a pool worker, i.e. it is executing
  /// inside some parallel region; parallel_for uses this to serialize
  /// nested calls.
  static bool in_parallel_region() { return current_worker_index() >= 0; }

 private:
  void worker_loop(std::size_t worker_index);

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Run fn(i) for i in [0, n) on the shared global pool, capped at
/// `n_threads` concurrent workers (0 = whole pool, 1 = serial inline).
/// This is the one entry point experiment loops and model internals share:
/// the cap plus the pool's nesting rule implement the process concurrency
/// budget — an outer parallel_for_shared over folds/designs/candidates gets
/// the workers, and the fits inside it degrade to serial.
void parallel_for_shared(std::size_t n,
                         const std::function<void(std::size_t)>& fn,
                         std::size_t n_threads = 0, std::size_t grain = 0);

}  // namespace drcshap
