#include "benchsuite/suite.hpp"

#include <gtest/gtest.h>

#include <set>

#include "benchsuite/design_generator.hpp"
#include "benchsuite/pipeline.hpp"

namespace drcshap {
namespace {

TEST(Suite, FourteenDesignsInFiveGroups) {
  const auto& suite = ispd2015_suite();
  EXPECT_EQ(suite.size(), 14u);
  std::set<int> groups;
  std::set<std::string> names;
  for (const BenchmarkSpec& spec : suite) {
    groups.insert(spec.table_group);
    names.insert(spec.name);
  }
  EXPECT_EQ(groups, (std::set<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(names.size(), 14u);  // unique names
  EXPECT_EQ(suite_groups(), (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Suite, TableOneInventoryMatches) {
  // Spot-check against the paper's Table I.
  const BenchmarkSpec& des_perf_1 = suite_spec("des_perf_1");
  EXPECT_EQ(des_perf_1.gcells_x * des_perf_1.gcells_y, 5476u);  // 74^2
  EXPECT_EQ(des_perf_1.n_macros, 0);
  EXPECT_DOUBLE_EQ(des_perf_1.die_microns, 445.0);
  EXPECT_EQ(des_perf_1.table_group, 4);

  const BenchmarkSpec& mult_b = suite_spec("mult_b");
  EXPECT_EQ(mult_b.n_macros, 7);
  EXPECT_DOUBLE_EQ(mult_b.cells_thousands, 146.4);
  // 156*155 = 24180 vs paper 24257: within 1%.
  EXPECT_NEAR(static_cast<double>(mult_b.gcells_x * mult_b.gcells_y), 24257.0,
              24257.0 * 0.01);

  EXPECT_TRUE(suite_spec("des_perf_b").expect_zero_hotspots);
  EXPECT_TRUE(suite_spec("bridge32_b").expect_zero_hotspots);
  EXPECT_THROW(suite_spec("nonexistent"), std::out_of_range);
}

TEST(Generator, ScalePreservesDensityCharacter) {
  const BenchmarkSpec& spec = suite_spec("fft_2");
  GeneratorOptions full, quarter;
  quarter.scale = 4.0;
  const NetlistSpec a = generate_netlist(spec, full);
  const NetlistSpec b = generate_netlist(spec, quarter);
  EXPECT_NEAR(static_cast<double>(a.cells.size()) / b.cells.size(), 4.0, 0.5);
  EXPECT_NEAR(a.die.width() / b.die.width(), 2.0, 0.05);
  // Utilization (cell area / die area) roughly preserved.
  auto util = [](const NetlistSpec& s) {
    double area = 0.0;
    for (const CellSpec& c : s.cells) area += c.width * c.height;
    return area / s.die.area();
  };
  EXPECT_NEAR(util(a), util(b), 0.1);
}

TEST(Generator, MacroCountAndNoOverlap) {
  const BenchmarkSpec& spec = suite_spec("fft_b");  // 6 macros
  GeneratorOptions options;
  options.scale = 4.0;
  const NetlistSpec netlist = generate_netlist(spec, options);
  EXPECT_EQ(netlist.macros.size(), 6u);
  for (std::size_t i = 0; i < netlist.macros.size(); ++i) {
    for (std::size_t j = i + 1; j < netlist.macros.size(); ++j) {
      EXPECT_FALSE(netlist.macros[i].box.overlaps(netlist.macros[j].box));
    }
  }
}

TEST(Generator, NetsReferenceValidCellsAndHaveClockNdr) {
  GeneratorOptions options;
  options.scale = 8.0;
  const NetlistSpec netlist = generate_netlist(suite_spec("fft_1"), options);
  std::size_t clock = 0, ndr = 0;
  for (const NetSpec& net : netlist.nets) {
    EXPECT_GE(net.cells.size(), 2u);
    for (const std::uint32_t c : net.cells) {
      EXPECT_LT(c, netlist.cells.size());
    }
    clock += net.is_clock;
    ndr += net.has_ndr;
  }
  EXPECT_GT(clock, 0u);
  EXPECT_GT(ndr, 0u);
}

TEST(Generator, DeterministicForSpec) {
  GeneratorOptions options;
  options.scale = 8.0;
  const NetlistSpec a = generate_netlist(suite_spec("fft_1"), options);
  const NetlistSpec b = generate_netlist(suite_spec("fft_1"), options);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  ASSERT_EQ(a.nets.size(), b.nets.size());
  for (std::size_t i = 0; i < a.nets.size(); ++i) {
    EXPECT_EQ(a.nets[i].cells, b.nets[i].cells);
  }
}

TEST(Generator, RejectsUpscaling) {
  EXPECT_THROW(generate_netlist(suite_spec("fft_1"), {.scale = 0.5}),
               std::invalid_argument);
}

TEST(Pipeline, EndToEndSmallDesign) {
  PipelineOptions options;
  options.generator.scale = 16.0;
  const DesignRun run = run_pipeline(suite_spec("fft_1"), options);
  EXPECT_EQ(run.samples.n_rows(), run.design.grid().size());
  EXPECT_EQ(run.samples.n_features(), 387u);
  EXPECT_EQ(run.samples.n_positives(), run.drc.n_hotspots);
  // Some congestion must exist.
  long total_load = 0;
  for (int m = 0; m < 5; ++m) {
    for (std::size_t cell = 0; cell + 1 < run.design.grid().size(); ++cell) {
      total_load += run.congestion.edge_load(m, cell, cell + 1);
    }
  }
  EXPECT_GT(total_load, 0);
}

TEST(Pipeline, GroupIdPropagates) {
  PipelineOptions options;
  options.generator.scale = 16.0;
  const DesignRun run = run_pipeline(suite_spec("fft_1"), options, 42);
  for (std::size_t i = 0; i < std::min<std::size_t>(run.samples.n_rows(), 10);
       ++i) {
    EXPECT_EQ(run.samples.group(i), 42);
  }
  const DesignRun by_table = run_pipeline(suite_spec("fft_1"), options);
  EXPECT_EQ(by_table.samples.group(0), suite_spec("fft_1").table_group);
}

TEST(Pipeline, BuildSuiteDatasetConcatenatesWithDesignGroups) {
  PipelineOptions options;
  options.generator.scale = 16.0;
  std::vector<BenchmarkSpec> two = {suite_spec("fft_1"), suite_spec("fft_2")};
  std::size_t seen = 0;
  const Dataset all = build_suite_dataset(
      two, options, [&](const DesignRun& run) {
        ++seen;
        EXPECT_FALSE(run.spec.name.empty());
      });
  EXPECT_EQ(seen, 2u);
  EXPECT_EQ(all.distinct_groups(), (std::vector<int>{0, 1}));
  EXPECT_GT(all.n_rows(), 100u);
}

}  // namespace
}  // namespace drcshap
