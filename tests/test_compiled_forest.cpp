// Equivalence suite for the compiled inference backend: every test asserts
// *byte-identical* doubles between the exact FlatForest walk and the
// quantized/branch-free/SIMD CompiledForest paths — the backend is only
// allowed to change speed, never a single output bit.

#include "core/compiled_forest.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "benchsuite/pipeline.hpp"
#include "benchsuite/suite.hpp"
#include "core/random_forest.hpp"
#include "core/tree_shap.hpp"
#include "features/feature_names.hpp"
#include "util/rng.hpp"

namespace drcshap {
namespace {

/// Bitwise equality for doubles (EXPECT_DOUBLE_EQ would accept 4 ulps and
/// conflate -0.0 with 0.0; the engines promise more than that).
void expect_bits_equal(const std::vector<double>& a,
                       const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_TRUE(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

Dataset noisy_data(std::size_t n, std::size_t n_features,
                   std::uint64_t seed) {
  Dataset d(n_features);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<float> x(n_features);
    for (auto& v : x) v = static_cast<float>(rng.uniform());
    const bool signal = x[0] > 0.6 && x[1 % n_features] > 0.4;
    d.append_row(x, rng.bernoulli(signal ? 0.9 : 0.05) ? 1 : 0, 0);
  }
  return d;
}

RandomForestClassifier small_forest(const Dataset& d, int n_trees = 30,
                                    std::uint64_t seed = 7) {
  RandomForestOptions options;
  options.n_trees = n_trees;
  options.seed = seed;
  RandomForestClassifier forest(options);
  forest.fit(d);
  return forest;
}

/// Temporarily pins $DRCSHAP_FOREST_ENGINE, restoring on destruction.
class ScopedEngineEnv {
 public:
  explicit ScopedEngineEnv(const char* value) {
    const char* old = std::getenv("DRCSHAP_FOREST_ENGINE");
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    if (value != nullptr) {
      ::setenv("DRCSHAP_FOREST_ENGINE", value, 1);
    } else {
      ::unsetenv("DRCSHAP_FOREST_ENGINE");
    }
  }
  ~ScopedEngineEnv() {
    if (had_) {
      ::setenv("DRCSHAP_FOREST_ENGINE", saved_.c_str(), 1);
    } else {
      ::unsetenv("DRCSHAP_FOREST_ENGINE");
    }
  }

 private:
  std::string saved_;
  bool had_ = false;
};

TEST(CompiledForest, BuiltForEveryBinnedFit) {
  const Dataset d = noisy_data(300, 6, 1);
  const RandomForestClassifier forest = small_forest(d);
  ASSERT_NE(forest.compiled(), nullptr);
  EXPECT_EQ(forest.compiled()->n_trees(), 30u);
  EXPECT_EQ(forest.compiled()->n_features(), 6u);
  EXPECT_EQ(forest.compiled()->n_nodes(), forest.flat().n_nodes());
  EXPECT_EQ(forest.compiled()->max_depth(), forest.flat().max_depth());
}

TEST(CompiledForest, BatchMatchesExactBitwise) {
  const Dataset train = noisy_data(500, 8, 2);
  const Dataset eval = noisy_data(777, 8, 3);  // odd size: exercises tails
  const RandomForestClassifier forest = small_forest(train, 40);
  const auto exact = forest.predict_proba_all(eval, ForestEngine::kExact);
  const auto compiled =
      forest.predict_proba_all(eval, ForestEngine::kCompiled);
  expect_bits_equal(exact, compiled);
}

TEST(CompiledForest, SingleSampleMatchesExactBitwise) {
  const Dataset d = noisy_data(400, 5, 4);
  const RandomForestClassifier forest = small_forest(d);
  for (std::size_t i = 0; i < 64; ++i) {
    const auto x = d.row(i);
    const double exact = forest.predict_proba(x, ForestEngine::kExact);
    const double compiled = forest.predict_proba(x, ForestEngine::kCompiled);
    ASSERT_EQ(exact, compiled) << "row " << i;
  }
}

TEST(CompiledForest, SimdAndScalarKernelsBitIdentical) {
  const Dataset train = noisy_data(400, 7, 5);
  const Dataset eval = noisy_data(333, 7, 6);
  const RandomForestClassifier forest = small_forest(train);
  const CompiledForest* compiled = forest.compiled();
  ASSERT_NE(compiled, nullptr);
  std::vector<double> with_simd(eval.n_rows());
  std::vector<double> scalar(eval.n_rows());
  compiled->predict_batch(eval.features_flat().data(), eval.n_rows(),
                          with_simd.data(), CompiledForest::Simd::kAuto);
  compiled->predict_batch(eval.features_flat().data(), eval.n_rows(),
                          scalar.data(), CompiledForest::Simd::kScalar);
  expect_bits_equal(with_simd, scalar);
}

TEST(CompiledForest, EveryTailLengthMatchesSingleSample) {
  const Dataset train = noisy_data(300, 4, 7);
  const RandomForestClassifier forest = small_forest(train, 15);
  const CompiledForest* compiled = forest.compiled();
  ASSERT_NE(compiled, nullptr);
  const Dataset eval = noisy_data(17, 4, 8);
  for (std::size_t n = 1; n <= eval.n_rows(); ++n) {
    std::vector<double> batch(n);
    compiled->predict_batch(eval.features_flat().data(), n, batch.data());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(batch[i], compiled->predict(eval.row(i).data()))
          << "n=" << n << " row " << i;
    }
  }
}

/// Hand-built ensembles hitting the layout's corner cases: single-node
/// trees, duplicated thresholds, splits at float extremes, constant
/// features — probed with inputs exactly on thresholds, one ulp off, at
/// ±Inf, NaN and signed zero.
TEST(CompiledForest, AdversarialHandBuiltForests) {
  constexpr float kInf = std::numeric_limits<float>::infinity();
  constexpr float kMax = std::numeric_limits<float>::max();
  const float below_half = std::nextafter(0.5f, -kInf);
  const float above_half = std::nextafter(0.5f, kInf);

  std::vector<DecisionTree> trees(5);
  // Single leaf.
  trees[0].set_nodes({{-1, 0.0f, -1, -1, 0.25, 16.0}}, 3);
  // Root split on f0 at 0.5.
  trees[1].set_nodes({{0, 0.5f, 1, 2, 0.5, 10.0},
                      {-1, 0.0f, -1, -1, 0.1, 6.0},
                      {-1, 0.0f, -1, -1, 0.9, 4.0}},
                     3);
  // Duplicate threshold (same split value as trees[1], deeper).
  trees[2].set_nodes({{0, 0.5f, 1, 2, 0.5, 12.0},
                      {1, 0.5f, 3, 4, 0.3, 7.0},
                      {-1, 0.0f, -1, -1, 0.8, 5.0},
                      {-1, 0.0f, -1, -1, 0.2, 3.0},
                      {-1, 0.0f, -1, -1, 0.6, 4.0}},
                     3);
  // Split at float max: only +Inf (and NaN) goes right.
  trees[3].set_nodes({{1, kMax, 1, 2, 0.5, 8.0},
                      {-1, 0.0f, -1, -1, 0.4, 7.0},
                      {-1, 0.0f, -1, -1, 0.7, 1.0}},
                     3);
  // Split on a feature the probes keep constant, plus a signed-zero
  // threshold (0.0f == -0.0f, so both zeros go left).
  trees[4].set_nodes({{2, 0.0f, 1, 2, 0.5, 9.0},
                      {-1, 0.0f, -1, -1, 0.35, 5.0},
                      {-1, 0.0f, -1, -1, 0.65, 4.0}},
                     3);

  RandomForestClassifier forest;
  forest.set_trees(std::move(trees), RandomForestOptions{});
  ASSERT_NE(forest.compiled(), nullptr) << "adversarial forest must compile";

  const std::vector<std::vector<float>> probes = {
      {0.5f, 0.5f, 0.0f},          // exactly on the duplicated threshold
      {below_half, above_half, -0.0f},  // one ulp off, signed zero
      {above_half, below_half, 0.0f},
      {kMax, kMax, kMax},          // on the float-max threshold
      {kInf, -kInf, kInf},         // infinities both ways
      {std::nanf(""), 0.5f, std::nanf("")},  // NaN descends right
      {-kInf, std::nextafter(kMax, 0.0f), -0.0f},
  };
  std::vector<float> rows;
  for (const auto& p : probes) {
    const double exact =
        forest.predict_proba(p, ForestEngine::kExact);
    const double compiled =
        forest.predict_proba(p, ForestEngine::kCompiled);
    ASSERT_EQ(exact, compiled);
    rows.insert(rows.end(), p.begin(), p.end());
  }
  // Same probes through both block kernels.
  std::vector<double> batch_auto(probes.size());
  std::vector<double> batch_scalar(probes.size());
  forest.compiled()->predict_batch(rows.data(), probes.size(),
                                   batch_auto.data(),
                                   CompiledForest::Simd::kAuto);
  forest.compiled()->predict_batch(rows.data(), probes.size(),
                                   batch_scalar.data(),
                                   CompiledForest::Simd::kScalar);
  expect_bits_equal(batch_auto, batch_scalar);
  for (std::size_t i = 0; i < probes.size(); ++i) {
    ASSERT_EQ(batch_auto[i],
              forest.predict_proba(probes[i], ForestEngine::kExact));
  }
}

TEST(CompiledForest, FallsBackToExactWhenUnquantizable) {
  // 65536 distinct thresholds on one feature exceeds the u16 code space, so
  // try_compile must refuse and every call must serve exact instead.
  std::vector<DecisionTree> trees(1);
  std::vector<TreeNode> nodes;
  const int n_splits =
      static_cast<int>(CompiledForest::kMaxCutsPerFeature) + 1;
  // Right-leaning chain: node i splits at threshold i, left child is a leaf.
  for (int i = 0; i < n_splits; ++i) {
    const std::int32_t leaf = static_cast<std::int32_t>(nodes.size()) + 1;
    const std::int32_t next = leaf + 1;
    const bool last = i == n_splits - 1;
    nodes.push_back({0, static_cast<float>(i), leaf,
                     last ? leaf : next, 0.5,
                     static_cast<double>(n_splits - i)});
    nodes.push_back({-1, 0.0f, -1, -1, 0.25, 1.0});
  }
  trees[0].set_nodes(std::move(nodes), 2);

  std::string reason;
  const FlatForest flat{std::span<const DecisionTree>(trees)};
  EXPECT_EQ(CompiledForest::try_compile(flat, &reason), nullptr);
  EXPECT_FALSE(reason.empty());

  RandomForestClassifier forest;
  forest.set_trees(std::move(trees), RandomForestOptions{});
  EXPECT_EQ(forest.compiled(), nullptr);
  EXPECT_EQ(forest.resolve_engine(ForestEngine::kCompiled),
            ForestEngine::kExact);
  const std::vector<float> x{3.5f, 0.0f};
  EXPECT_EQ(forest.predict_proba(x, ForestEngine::kCompiled),
            forest.predict_proba(x, ForestEngine::kExact));
}

TEST(CompiledForest, ShapValuesByteIdenticalAcrossEngines) {
  const Dataset train = noisy_data(400, 6, 9);
  const Dataset eval = noisy_data(50, 6, 10);
  const RandomForestClassifier forest = small_forest(train, 20);
  ASSERT_NE(forest.compiled(), nullptr);

  TreeShapExplainer exact(forest);
  exact.set_engine(ForestEngine::kExact);
  TreeShapExplainer compiled(forest);
  compiled.set_engine(ForestEngine::kCompiled);

  for (std::size_t i = 0; i < 8; ++i) {
    expect_bits_equal(exact.shap_values(eval.row(i)),
                      compiled.shap_values(eval.row(i)));
  }
  const ShapMatrix a = exact.shap_values_batch(eval);
  const ShapMatrix b = compiled.shap_values_batch(eval);
  expect_bits_equal(a.values, b.values);
}

TEST(CompiledForest, LayoutDigestDeterministic) {
  const Dataset d = noisy_data(300, 5, 11);
  const RandomForestClassifier forest = small_forest(d);
  ASSERT_NE(forest.compiled(), nullptr);
  const CompiledForest again(forest.flat());
  EXPECT_EQ(forest.compiled()->layout_digest(), again.layout_digest());
  // A different ensemble must not (realistically) collide.
  const RandomForestClassifier other = small_forest(d, 30, 8);
  ASSERT_NE(other.compiled(), nullptr);
  EXPECT_NE(forest.compiled()->layout_digest(),
            other.compiled()->layout_digest());
}

TEST(ForestEngine, EnvParsing) {
  {
    ScopedEngineEnv env(nullptr);
    EXPECT_EQ(forest_engine_from_env(), ForestEngine::kAuto);
  }
  {
    ScopedEngineEnv env("");
    EXPECT_EQ(forest_engine_from_env(), ForestEngine::kAuto);
  }
  {
    ScopedEngineEnv env("auto");
    EXPECT_EQ(forest_engine_from_env(), ForestEngine::kAuto);
  }
  {
    ScopedEngineEnv env("exact");
    EXPECT_EQ(forest_engine_from_env(), ForestEngine::kExact);
  }
  {
    ScopedEngineEnv env("compiled");
    EXPECT_EQ(forest_engine_from_env(), ForestEngine::kCompiled);
  }
  {
    ScopedEngineEnv env("vectorized");
    EXPECT_THROW(forest_engine_from_env(), std::invalid_argument);
  }
}

TEST(ForestEngine, EnvSelectsBackend) {
  const Dataset d = noisy_data(300, 4, 12);
  const RandomForestClassifier forest = small_forest(d, 10);
  ASSERT_NE(forest.compiled(), nullptr);
  {
    ScopedEngineEnv env("exact");
    EXPECT_EQ(forest.resolve_engine(ForestEngine::kAuto),
              ForestEngine::kExact);
  }
  {
    ScopedEngineEnv env("compiled");
    EXPECT_EQ(forest.resolve_engine(ForestEngine::kAuto),
              ForestEngine::kCompiled);
  }
  {
    ScopedEngineEnv env(nullptr);
    EXPECT_EQ(forest.resolve_engine(ForestEngine::kAuto),
              ForestEngine::kCompiled);
  }
  // An explicit per-call engine wins over the environment.
  {
    ScopedEngineEnv env("compiled");
    EXPECT_EQ(forest.resolve_engine(ForestEngine::kExact),
              ForestEngine::kExact);
  }
}

TEST(ForestEngine, NamesRoundTrip) {
  EXPECT_EQ(forest_engine_name(ForestEngine::kAuto), "auto");
  EXPECT_EQ(forest_engine_name(ForestEngine::kExact), "exact");
  EXPECT_EQ(forest_engine_name(ForestEngine::kCompiled), "compiled");
}

/// Property-style cross-backend fuzz: random forests (shape, depth,
/// binning) against random matrices seasoned with exact threshold values
/// (to sit on every `<=` boundary), one-ulp neighbours, infinities and
/// NaNs. Seeds are logged so any failure replays deterministically.
TEST(CompiledForestFuzz, RandomForestsMatchExactBitwise) {
  constexpr int kForests = 25;
  for (int trial = 0; trial < kForests; ++trial) {
    SCOPED_TRACE("fuzz trial (seed) = " + std::to_string(trial));
    Rng rng(static_cast<std::uint64_t>(trial) * 7919 + 13);
    const std::size_t n_features = 3 + rng.index(6);
    const std::size_t n_rows = 60 + rng.index(140);

    Dataset train(n_features);
    for (std::size_t i = 0; i < n_rows; ++i) {
      std::vector<float> x(n_features);
      for (auto& v : x) {
        // Coarse grid so duplicate thresholds across trees are common.
        v = static_cast<float>(rng.index(32)) / 16.0f - 1.0f;
      }
      train.append_row(x, rng.bernoulli(x[0] > 0.0f ? 0.8 : 0.1) ? 1 : 0, 0);
    }

    RandomForestOptions options;
    options.n_trees = 3 + static_cast<int>(rng.index(20));
    options.max_depth =
        rng.bernoulli(0.3) ? -1 : 2 + static_cast<int>(rng.index(6));
    options.max_bins =
        rng.bernoulli(0.5) ? 64 : 4 + static_cast<int>(rng.index(12));
    options.seed = rng();
    RandomForestClassifier forest(options);
    forest.fit(train);
    ASSERT_NE(forest.compiled(), nullptr);

    // Collect the forest's split thresholds per feature.
    const FlatForest& flat = forest.flat();
    std::vector<std::vector<float>> cuts(n_features);
    for (std::size_t n = 0; n < flat.n_nodes(); ++n) {
      if (flat.feature()[n] >= 0) {
        cuts[static_cast<std::size_t>(flat.feature()[n])].push_back(
            flat.threshold()[n]);
      }
    }

    constexpr float kInf = std::numeric_limits<float>::infinity();
    Dataset eval(n_features);
    const std::size_t n_eval = 40 + rng.index(60);
    for (std::size_t i = 0; i < n_eval; ++i) {
      std::vector<float> x(n_features);
      for (std::size_t f = 0; f < n_features; ++f) {
        const std::uint64_t kind = rng.index(10);
        if (kind < 4 && !cuts[f].empty()) {
          // Exactly on a threshold, or one ulp either side.
          float t = cuts[f][rng.index(cuts[f].size())];
          if (kind == 1) t = std::nextafter(t, kInf);
          if (kind == 2) t = std::nextafter(t, -kInf);
          x[f] = t;
        } else if (kind == 8) {
          x[f] = rng.bernoulli(0.5) ? kInf : -kInf;
        } else if (kind == 9) {
          x[f] = std::nanf("");
        } else {
          x[f] = static_cast<float>(rng.uniform() * 4.0 - 2.0);
        }
      }
      eval.append_row(x, 0, 0);
    }

    const auto exact = forest.predict_proba_all(eval, ForestEngine::kExact);
    const auto compiled =
        forest.predict_proba_all(eval, ForestEngine::kCompiled);
    expect_bits_equal(exact, compiled);

    std::vector<double> scalar(eval.n_rows());
    forest.compiled()->predict_batch(eval.features_flat().data(),
                                     eval.n_rows(), scalar.data(),
                                     CompiledForest::Simd::kScalar);
    expect_bits_equal(exact, scalar);
  }
}

/// Engine equivalence on the real feature distribution: every design of the
/// paper's 14-design suite at test scale, one fitted forest, byte-identical
/// probabilities from both engines and both kernels.
TEST(CompiledForestSuite, AllSuiteDesignsByteIdentical) {
  PipelineOptions tiny;
  tiny.generator.scale = 16.0;

  Dataset train(FeatureSchema::kNumFeatures, FeatureSchema::names());
  std::vector<Dataset> designs;
  for (const BenchmarkSpec& spec : ispd2015_suite()) {
    designs.push_back(run_pipeline(spec, tiny).samples);
  }
  train.append(designs[0]);
  train.append(designs[1]);

  RandomForestOptions options;
  options.n_trees = 50;
  RandomForestClassifier forest(options);
  forest.fit(train);
  ASSERT_NE(forest.compiled(), nullptr);

  for (std::size_t i = 0; i < designs.size(); ++i) {
    SCOPED_TRACE("design " + ispd2015_suite()[i].name);
    const Dataset& d = designs[i];
    if (d.n_rows() == 0) continue;
    const auto exact = forest.predict_proba_all(d, ForestEngine::kExact);
    const auto compiled =
        forest.predict_proba_all(d, ForestEngine::kCompiled);
    expect_bits_equal(exact, compiled);
    std::vector<double> scalar(d.n_rows());
    forest.compiled()->predict_batch(d.features_flat().data(), d.n_rows(),
                                     scalar.data(),
                                     CompiledForest::Simd::kScalar);
    expect_bits_equal(exact, scalar);
  }
}

}  // namespace
}  // namespace drcshap
