#include "route/congestion.hpp"

#include <gtest/gtest.h>

#include "drc/track_model.hpp"

namespace drcshap {
namespace {

Design empty_design(std::size_t nx = 5, std::size_t ny = 4) {
  return Design("cong", {0, 0, 10.0 * nx, 10.0 * ny}, nx, ny);
}

TEST(CongestionMap, ExtractMirrorsGraph) {
  const Design d = empty_design();
  GridGraph g(d);
  const EdgeId e = *g.edge(0, 0, Dir::kEast);
  g.add_edge_load(e, 4);
  g.add_via_load(1, 7, 9);
  const CongestionMap map = CongestionMap::extract(g);
  EXPECT_EQ(map.edge_load(0, 0, 1), 4);
  EXPECT_EQ(map.edge_capacity(0, 0, 1), g.edge_capacity(e));
  EXPECT_EQ(map.via_load(1, 7), 9);
  EXPECT_EQ(map.via_capacity(1, 7), g.via_capacity(1, 7));
}

TEST(CongestionMap, HasEdgeDirectionality) {
  const Design d = empty_design();
  const CongestionMap map = CongestionMap::extract(GridGraph(d));
  // Horizontal neighbors: only horizontal layers cross that border.
  EXPECT_TRUE(map.has_edge(0, 0, 1));
  EXPECT_FALSE(map.has_edge(1, 0, 1));
  // Vertical neighbors: only vertical layers.
  EXPECT_TRUE(map.has_edge(1, 0, 5));
  EXPECT_FALSE(map.has_edge(0, 0, 5));
  // Non-adjacent cells: nothing.
  EXPECT_FALSE(map.has_edge(0, 0, 2));
  // Row wrap is not adjacency: cell 4 (end of row 0) and 5 (start of row 1).
  EXPECT_FALSE(map.has_edge(0, 4, 5));
}

TEST(CongestionMap, EdgeQueriesSymmetric) {
  const Design d = empty_design();
  GridGraph g(d);
  g.add_edge_load(*g.edge(2, 1, Dir::kEast), 3);
  const CongestionMap map = CongestionMap::extract(g);
  EXPECT_EQ(map.edge_load(2, 1, 2), map.edge_load(2, 2, 1));
}

TEST(CongestionMap, OverflowTotalsMatchGraph) {
  const Design d = empty_design();
  GridGraph g(d);
  const EdgeId e = *g.edge(4, 0, Dir::kEast);
  g.add_edge_load(e, g.edge_capacity(e) + 7);
  g.add_via_load(0, 3, g.via_capacity(0, 3) + 2);
  const CongestionMap map = CongestionMap::extract(g);
  EXPECT_EQ(map.total_edge_overflow(), g.total_edge_overflow());
  EXPECT_EQ(map.total_via_overflow(), g.total_via_overflow());
  EXPECT_EQ(map.total_edge_overflow(), 7L);
  EXPECT_EQ(map.total_via_overflow(), 2L);
}

TEST(CongestionMap, CellUtilizationAndOverflow) {
  const Design d = empty_design();
  GridGraph g(d);
  const EdgeId e = *g.edge(0, 0, Dir::kEast);
  g.add_edge_load(e, g.edge_capacity(e));  // exactly full
  const CongestionMap map = CongestionMap::extract(g);
  EXPECT_DOUBLE_EQ(map.cell_edge_utilization(0, 0), 1.0);
  EXPECT_EQ(map.cell_edge_overflow(0, 0), 0);
  GridGraph g2(d);
  g2.add_edge_load(e, g2.edge_capacity(e) + 4);
  const CongestionMap map2 = CongestionMap::extract(g2);
  EXPECT_GT(map2.cell_edge_utilization(0, 0), 1.0);
  EXPECT_EQ(map2.cell_edge_overflow(0, 0), 4);
  EXPECT_EQ(map2.cell_edge_overflow(0, 1), 4);  // shared edge
}

TEST(CongestionMap, AsciiHeatmapShape) {
  const Design d = empty_design(5, 4);
  const CongestionMap map = CongestionMap::extract(GridGraph(d));
  const std::string art = map.ascii_heatmap(0);
  EXPECT_EQ(art.size(), (5u + 1u) * 4u);  // 5 chars + newline per row
}

// ------------------------------------------------------------- TrackModel

TEST(TrackModel, DemandSupplyAverages) {
  const Design d = empty_design();
  GridGraph g(d);
  // Load both M1 edges around cell 1 with 6 wires each.
  g.add_edge_load(*g.edge(0, 0, Dir::kEast), 6);
  g.add_edge_load(*g.edge(0, 1, Dir::kEast), 6);
  const CongestionMap map = CongestionMap::extract(g);
  const TrackModel track(d, map);
  EXPECT_DOUBLE_EQ(track.wire_demand(1, 0), 6.0);
  EXPECT_DOUBLE_EQ(track.wire_supply(1, 0),
                   d.tech().tracks_per_gcell[0]);
  EXPECT_DOUBLE_EQ(track.overflow(1, 0), 0.0);
}

TEST(TrackModel, OverflowPositivePart) {
  const Design d = empty_design();
  GridGraph g(d);
  const EdgeId e = *g.edge(4, 0, Dir::kEast);
  g.add_edge_load(e, g.edge_capacity(e) + 10);
  const TrackModel track(d, CongestionMap::extract(g));
  EXPECT_GT(track.overflow(0, 4), 0.0);
  EXPECT_EQ(track.edge_overflow(0, 4), 10);
  EXPECT_EQ(track.edge_overflow(1, 4), 10);
  EXPECT_EQ(track.edge_overflow(2, 4), 0);
}

TEST(TrackModel, ViaPressure) {
  const Design d = empty_design();
  GridGraph g(d);
  const int cap = g.via_capacity(2, 5);
  g.add_via_load(2, 5, cap / 2);
  const TrackModel track(d, CongestionMap::extract(g));
  EXPECT_NEAR(track.via_pressure(5, 2),
              static_cast<double>(cap / 2) / cap, 1e-12);
}

// ------------------------------------------------------- GCell aggregates

TEST(GCellAggregates, CountsCellsPinsAndLocalNets) {
  Design d = empty_design();  // 10um g-cells
  d.add_cell({"inside", {1, 1, 3, 3}, false});
  d.add_cell({"straddle", {8, 8, 12, 12}, false});  // spans 4 g-cells
  const NetId local = d.add_net({"local", {}, false, false});
  d.add_pin({0, local, {1.5, 1.5}, false, false});
  d.add_pin({0, local, {2.5, 2.5}, false, false});
  const NetId global_net = d.add_net({"global", {}, false, false});
  d.add_pin({0, global_net, {2, 2}, true, false});    // clock pin
  d.add_pin({kInvalidId, global_net, {35, 25}, false, true});  // NDR pin

  const auto agg = compute_gcell_aggregates(d);
  const std::size_t cell00 = d.grid().locate({5, 5});
  EXPECT_EQ(agg[cell00].n_cells, 1);  // straddling cell not fully inside
  EXPECT_EQ(agg[cell00].n_pins, 3);
  EXPECT_EQ(agg[cell00].n_clock_pins, 1);
  EXPECT_EQ(agg[cell00].n_local_nets, 1);
  EXPECT_EQ(agg[cell00].n_local_net_pins, 2);
  EXPECT_EQ(agg[cell00].n_ndr_pins, 0);
  const std::size_t cell_ndr = d.grid().locate({35, 25});
  EXPECT_EQ(agg[cell_ndr].n_ndr_pins, 1);
}

TEST(GCellAggregates, PinSpacingMeanPairwiseManhattan) {
  Design d = empty_design();
  const NetId n = d.add_net({"n", {}, false, false});
  d.add_pin({kInvalidId, n, {1, 1}, false, false});
  d.add_pin({kInvalidId, n, {4, 5}, false, false});
  const auto agg = compute_gcell_aggregates(d);
  const std::size_t cell = d.grid().locate({1, 1});
  EXPECT_DOUBLE_EQ(agg[cell].pin_spacing, 7.0);
}

TEST(GCellAggregates, AreaFractions) {
  Design d = empty_design();
  d.add_cell({"half", {0, 0, 10, 5}, false});  // half of g-cell (0,0)
  d.add_blockage({{0, 0, 5, 10}, 0, 3});       // half of g-cell (0,0)
  const auto agg = compute_gcell_aggregates(d);
  EXPECT_NEAR(agg[0].cell_area_frac, 0.5, 1e-9);
  EXPECT_NEAR(agg[0].blockage_frac, 0.5, 1e-9);
}

TEST(GCellAggregates, MacroAdjacency) {
  Design d = empty_design();
  d.add_macro({"m", {10, 10, 30, 20}, 4});
  const auto agg = compute_gcell_aggregates(d);
  EXPECT_TRUE(agg[d.grid().locate({15, 15})].macro_adjacent);  // under macro
  EXPECT_TRUE(agg[d.grid().locate({5, 15})].macro_adjacent);   // next to it
  EXPECT_FALSE(agg[d.grid().locate({45, 35})].macro_adjacent); // far away
}

}  // namespace
}  // namespace drcshap
