#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "ml/cross_validation.hpp"
#include "ml/grid_search.hpp"
#include "util/rng.hpp"

namespace drcshap {
namespace {

/// Deterministic stub: score = w * x0. w > 0 ranks positives first on the
/// synthetic data below; w < 0 inverts the ranking.
class StubModel final : public BinaryClassifier {
 public:
  explicit StubModel(double w) : w_(w) {}
  void fit(const Dataset& data) override { fitted_rows_ = data.n_rows(); }
  double predict_proba(std::span<const float> x) const override {
    return 1.0 / (1.0 + std::exp(-w_ * x[0]));
  }
  std::size_t n_parameters() const override { return 1; }
  std::size_t prediction_ops() const override { return 2; }
  std::string name() const override { return "stub"; }
  std::size_t fitted_rows() const { return fitted_rows_; }

 private:
  double w_;
  std::size_t fitted_rows_ = 0;
};

/// x0 correlates with the label; groups 0..3.
Dataset grouped_data() {
  Dataset d(2);
  Rng rng(4242);
  for (int g = 0; g < 4; ++g) {
    for (int i = 0; i < 100; ++i) {
      const int label = rng.bernoulli(0.2) ? 1 : 0;
      const float x0 =
          static_cast<float>(label * 2.0 + rng.normal(0.0, 0.7));
      d.append_row(std::vector<float>{x0, static_cast<float>(g)}, label, g);
    }
  }
  return d;
}

TEST(GroupedCv, GoodModelBeatsInvertedModel) {
  const Dataset data = grouped_data();
  const std::vector<int> groups{0, 1, 2, 3};
  const auto good = grouped_cross_validate(
      [] { return std::make_unique<StubModel>(+2.0); }, data, groups);
  const auto bad = grouped_cross_validate(
      [] { return std::make_unique<StubModel>(-2.0); }, data, groups);
  EXPECT_GT(good.mean_auprc, bad.mean_auprc);
  EXPECT_GT(good.mean_auprc, 0.5);
  EXPECT_EQ(good.fold_auprc.size(), 4u);
}

TEST(GroupedCv, MeanIsAverageOfFolds) {
  const Dataset data = grouped_data();
  const std::vector<int> groups{0, 1, 2, 3};
  const auto result = grouped_cross_validate(
      [] { return std::make_unique<StubModel>(1.0); }, data, groups);
  double mean = 0.0;
  for (const double v : result.fold_auprc) mean += v;
  mean /= static_cast<double>(result.fold_auprc.size());
  EXPECT_NEAR(result.mean_auprc, mean, 1e-12);
}

TEST(GroupedCv, RequiresTwoGroups) {
  const Dataset data = grouped_data();
  EXPECT_THROW(grouped_cross_validate(
                   [] { return std::make_unique<StubModel>(1.0); }, data,
                   std::vector<int>{0}),
               std::invalid_argument);
}

TEST(GroupedCv, SkipsOneClassFolds) {
  // Group 9 has no positives: its fold is skipped, others still score.
  Dataset data = grouped_data();
  for (int i = 0; i < 50; ++i) {
    data.append_row(std::vector<float>{0.0f, 9.0f}, 0, 9);
  }
  const std::vector<int> groups{0, 1, 9};
  const auto result = grouped_cross_validate(
      [] { return std::make_unique<StubModel>(1.0); }, data, groups);
  EXPECT_EQ(result.fold_auprc.size(), 2u);
}

// ---------------------------------------------------------------- grid

TEST(GridSearch, ExpandGridCartesianProduct) {
  const auto grid = expand_grid({{"a", {1, 2, 3}}, {"b", {10, 20}}});
  EXPECT_EQ(grid.size(), 6u);
  // Every combination present exactly once.
  std::set<std::pair<double, double>> seen;
  for (const ParamSet& p : grid) {
    seen.emplace(p.at("a"), p.at("b"));
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(GridSearch, EmptyGridYieldsSingleEmptyParamSet) {
  const auto grid = expand_grid({});
  ASSERT_EQ(grid.size(), 1u);
  EXPECT_TRUE(grid.front().empty());
}

TEST(GridSearch, EmptyCandidateListThrows) {
  EXPECT_THROW(expand_grid({{"a", {}}}), std::invalid_argument);
}

TEST(GridSearch, PicksBestParameter) {
  const Dataset data = grouped_data();
  const std::vector<int> groups{0, 1, 2, 3};
  const auto result = grid_search(
      [](const ParamSet& p) {
        return std::make_unique<StubModel>(p.at("w"));
      },
      data, groups, {{"w", {-2.0, 0.5, 2.0}}});
  // AUPRC only depends on the ranking, so both positive weights tie and the
  // first in grid order wins; the inverted model must lose.
  EXPECT_GT(result.best_params.at("w"), 0.0);
  EXPECT_EQ(result.evaluations.size(), 3u);
  for (const auto& [params, score] : result.evaluations) {
    EXPECT_LE(score, result.best_score);
  }
}

TEST(GridSearch, ToStringFormat) {
  EXPECT_EQ(to_string(ParamSet{{"a", 1.5}, {"b", 2.0}}), "{a=1.5, b=2}");
  EXPECT_EQ(to_string(ParamSet{}), "{}");
}

}  // namespace
}  // namespace drcshap
