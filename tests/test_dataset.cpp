#include "ml/dataset.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "ml/scaler.hpp"

namespace drcshap {
namespace {

Dataset tiny_dataset() {
  Dataset d(3, {"a", "b", "c"});
  d.append_row(std::vector<float>{1, 2, 3}, 0, 10);
  d.append_row(std::vector<float>{4, 5, 6}, 1, 10);
  d.append_row(std::vector<float>{7, 8, 9}, 0, 20);
  d.append_row(std::vector<float>{-1, 0, 1}, 1, 30);
  return d;
}

TEST(Dataset, BasicShapeAndAccess) {
  const Dataset d = tiny_dataset();
  EXPECT_EQ(d.n_rows(), 4u);
  EXPECT_EQ(d.n_features(), 3u);
  EXPECT_EQ(d.n_positives(), 2u);
  EXPECT_FLOAT_EQ(d.row(1)[2], 6.0f);
  EXPECT_EQ(d.label(1), 1);
  EXPECT_EQ(d.group(2), 20);
}

TEST(Dataset, RejectsBadConstruction) {
  EXPECT_THROW(Dataset(0), std::invalid_argument);
  EXPECT_THROW(Dataset(3, {"only", "two"}), std::invalid_argument);
}

TEST(Dataset, AppendRowChecksArity) {
  Dataset d(3);
  EXPECT_THROW(d.append_row(std::vector<float>{1, 2}, 0, 0),
               std::invalid_argument);
}

TEST(Dataset, AppendDatasetChecksSchema) {
  Dataset a(3), b(2);
  EXPECT_THROW(a.append(b), std::invalid_argument);
  Dataset c = tiny_dataset();
  Dataset d2 = tiny_dataset();
  c.append(d2);
  EXPECT_EQ(c.n_rows(), 8u);
}

TEST(Dataset, SubsetPreservesOrderAndMetadata) {
  const Dataset d = tiny_dataset();
  const std::vector<std::size_t> rows{3, 0};
  const Dataset s = d.subset(rows);
  EXPECT_EQ(s.n_rows(), 2u);
  EXPECT_FLOAT_EQ(s.row(0)[0], -1.0f);
  EXPECT_EQ(s.label(0), 1);
  EXPECT_EQ(s.group(1), 10);
  EXPECT_EQ(s.feature_names(), d.feature_names());
  EXPECT_THROW(d.subset(std::vector<std::size_t>{9}), std::out_of_range);
}

TEST(Dataset, GroupQueries) {
  const Dataset d = tiny_dataset();
  EXPECT_EQ(d.distinct_groups(), (std::vector<int>{10, 20, 30}));
  EXPECT_EQ(d.rows_in_groups(std::vector<int>{10}),
            (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(d.rows_not_in_groups(std::vector<int>{10}),
            (std::vector<std::size_t>{2, 3}));
  EXPECT_EQ(d.rows_in_groups(std::vector<int>{20, 30}),
            (std::vector<std::size_t>{2, 3}));
}

TEST(Dataset, CsvRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "drcshap_ds.csv").string();
  const Dataset d = tiny_dataset();
  d.save_csv(path);
  const Dataset loaded = Dataset::load_csv(path);
  EXPECT_EQ(loaded.n_rows(), d.n_rows());
  EXPECT_EQ(loaded.n_features(), d.n_features());
  EXPECT_EQ(loaded.feature_names(), d.feature_names());
  for (std::size_t i = 0; i < d.n_rows(); ++i) {
    EXPECT_EQ(loaded.label(i), d.label(i));
    EXPECT_EQ(loaded.group(i), d.group(i));
    for (std::size_t f = 0; f < d.n_features(); ++f) {
      EXPECT_FLOAT_EQ(loaded.row(i)[f], d.row(i)[f]);
    }
  }
  std::remove(path.c_str());
}

// -------------------------------------------------------------- scaler

TEST(Scaler, StandardizesToZeroMeanUnitVariance) {
  Dataset d(2);
  d.append_row(std::vector<float>{0, 100}, 0, 0);
  d.append_row(std::vector<float>{10, 200}, 0, 0);
  d.append_row(std::vector<float>{20, 300}, 1, 0);
  StandardScaler scaler;
  scaler.fit_transform(d);
  for (std::size_t f = 0; f < 2; ++f) {
    double mean = 0.0, var = 0.0;
    for (std::size_t i = 0; i < d.n_rows(); ++i) mean += d.row(i)[f];
    mean /= 3.0;
    for (std::size_t i = 0; i < d.n_rows(); ++i) {
      var += (d.row(i)[f] - mean) * (d.row(i)[f] - mean);
    }
    EXPECT_NEAR(mean, 0.0, 1e-6);
    EXPECT_NEAR(var / 3.0, 1.0, 1e-6);
  }
}

TEST(Scaler, ConstantFeatureMapsToZero) {
  Dataset d(1);
  d.append_row(std::vector<float>{5}, 0, 0);
  d.append_row(std::vector<float>{5}, 1, 0);
  StandardScaler scaler;
  scaler.fit_transform(d);
  EXPECT_FLOAT_EQ(d.row(0)[0], 0.0f);
  EXPECT_FLOAT_EQ(d.row(1)[0], 0.0f);
}

TEST(Scaler, TransformUsesTrainingStatistics) {
  Dataset train(1), test(1);
  train.append_row(std::vector<float>{0}, 0, 0);
  train.append_row(std::vector<float>{2}, 0, 0);
  test.append_row(std::vector<float>{4}, 0, 0);
  StandardScaler scaler;
  scaler.fit(train);
  scaler.transform(test);
  // mean 1, std 1 -> 4 maps to 3.
  EXPECT_FLOAT_EQ(test.row(0)[0], 3.0f);
}

TEST(Scaler, ChecksFittingAndShapes) {
  StandardScaler scaler;
  Dataset empty(2);
  EXPECT_THROW(scaler.fit(empty), std::invalid_argument);
  Dataset d = tiny_dataset();
  StandardScaler fitted;
  fitted.fit(d);
  Dataset wrong(2);
  wrong.append_row(std::vector<float>{1, 2}, 0, 0);
  EXPECT_THROW(fitted.transform(wrong), std::invalid_argument);
}

}  // namespace
}  // namespace drcshap
