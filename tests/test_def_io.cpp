#include "netlist/def_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/artifact.hpp"

namespace drcshap {
namespace {

Design build_rich_design() {
  Design d("rich design", {0, 0, 50, 40}, 5, 4);
  d.add_macro({"m0", {10, 10, 20, 20}, 4});
  d.add_cell({"c0", {1, 1, 2.5, 3}, false});
  d.add_cell({"c\"quoted\"", {5, 5, 6, 7}, true});
  const NetId n0 = d.add_net({"n0", {}, true, false});
  const NetId n1 = d.add_net({"n1", {}, false, true});
  d.add_pin({0, n0, {1.5, 2.0}, false, false});
  d.add_pin({1, n1, {5.5, 6.0}, false, false});
  d.add_pin({kInvalidId, n1, {30.25, 35.75}, false, false});
  d.add_blockage({{2, 2, 8, 8}, 1, 3});
  return d;
}

TEST(DefIo, RoundTripPreservesEverything) {
  const Design original = build_rich_design();
  std::stringstream buffer;
  write_def_lite(original, buffer);
  const Design loaded = read_def_lite(buffer);

  EXPECT_EQ(loaded.name(), original.name());
  EXPECT_EQ(loaded.die(), original.die());
  EXPECT_EQ(loaded.grid().nx(), original.grid().nx());
  EXPECT_EQ(loaded.grid().ny(), original.grid().ny());
  EXPECT_EQ(loaded.tech().num_metal_layers, original.tech().num_metal_layers);
  EXPECT_EQ(loaded.tech().tracks_per_gcell, original.tech().tracks_per_gcell);

  ASSERT_EQ(loaded.num_macros(), original.num_macros());
  EXPECT_EQ(loaded.macro(0).box, original.macro(0).box);

  ASSERT_EQ(loaded.num_cells(), original.num_cells());
  EXPECT_EQ(loaded.cell(1).name, "c\"quoted\"");
  EXPECT_TRUE(loaded.cell(1).is_multi_height);
  EXPECT_EQ(loaded.cell(0).box, original.cell(0).box);

  ASSERT_EQ(loaded.num_nets(), original.num_nets());
  EXPECT_TRUE(loaded.net(0).is_clock);
  EXPECT_TRUE(loaded.net(1).has_ndr);
  EXPECT_EQ(loaded.net(1).pins.size(), 2u);

  ASSERT_EQ(loaded.num_pins(), original.num_pins());
  EXPECT_EQ(loaded.pin(2).cell, kInvalidId);
  EXPECT_DOUBLE_EQ(loaded.pin(2).position.x, 30.25);
  EXPECT_TRUE(loaded.pin(1).has_ndr);  // inherited from net

  ASSERT_EQ(loaded.blockages().size(), original.blockages().size());
  EXPECT_EQ(loaded.blockages()[0].metal_hi, 3);

  EXPECT_NO_THROW(loaded.validate());
}

TEST(DefIo, RoundTripIsIdempotent) {
  const Design original = build_rich_design();
  std::stringstream first, second;
  write_def_lite(original, first);
  const std::string text = first.str();
  std::stringstream parse(text);
  write_def_lite(read_def_lite(parse), second);
  EXPECT_EQ(text, second.str());
}

TEST(DefIo, RejectsGarbage) {
  std::stringstream bad("NOT A DESIGN");
  EXPECT_THROW(read_def_lite(bad), std::runtime_error);
}

TEST(DefIo, RejectsTruncated) {
  const Design original = build_rich_design();
  std::stringstream buffer;
  write_def_lite(original, buffer);
  std::string text = buffer.str();
  text.resize(text.size() / 2);
  std::stringstream truncated(text);
  EXPECT_THROW(read_def_lite(truncated), std::runtime_error);
}

TEST(DefIo, FileRoundTrip) {
  const Design original = build_rich_design();
  const std::string path = "/tmp/drcshap_def_test.def";
  write_def_lite_file(original, path);
  const Design loaded = read_def_lite_file(path);
  EXPECT_EQ(loaded.num_pins(), original.num_pins());
  std::remove(path.c_str());
}

TEST(DefIo, MissingFileThrows) {
  EXPECT_THROW(read_def_lite_file("/nope/missing.def"), std::runtime_error);
}

TEST(DefIo, RejectsNonFiniteAndOutOfRange) {
  // Finite checks: a NaN die coordinate must be a typed parse error.
  std::stringstream nan_die("DESIGN \"d\"\nDIE 0 0 nan 40\nGRID 5 4\n");
  EXPECT_THROW(read_def_lite(nan_die), ArtifactError);
  // Range checks: a pin naming a net that was never declared.
  const Design original = build_rich_design();
  std::stringstream buffer;
  write_def_lite(original, buffer);
  std::string text = buffer.str();
  const auto pin_pos = text.find("PIN 0 0");
  ASSERT_NE(pin_pos, std::string::npos);
  text.replace(pin_pos, 7, "PIN 0 9");
  std::stringstream bad_net(text);
  EXPECT_THROW(read_def_lite(bad_net), ArtifactError);
  // An absurd grid header must fail before it drives a huge allocation.
  std::stringstream huge(
      "DESIGN \"d\"\nDIE 0 0 50 40\nGRID 999999999 999999999\n");
  EXPECT_THROW(read_def_lite(huge), ArtifactError);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(DefIo, EveryTruncationAndBitFlipFailsCleanly) {
  const Design original = build_rich_design();
  const std::string path = "/tmp/drcshap_def_corrupt.def";
  write_def_lite_file(original, path);
  const std::string bytes = slurp(path);
  ASSERT_GT(bytes.size(), 97u);
  for (std::size_t len = 0; len < bytes.size(); len += 97) {
    spit(path, bytes.substr(0, len));
    EXPECT_THROW(read_def_lite_file(path), ArtifactError)
        << "truncation to " << len << " bytes must not parse";
  }
  for (std::size_t i = 0; i < bytes.size(); i += 97) {
    std::string flipped = bytes;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x40);
    spit(path, flipped);
    EXPECT_THROW(read_def_lite_file(path), ArtifactError)
        << "bit flip at byte " << i << " must not parse";
  }
  spit(path, bytes);
  EXPECT_NO_THROW(read_def_lite_file(path));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace drcshap
