#include "netlist/design.hpp"

#include <gtest/gtest.h>

namespace drcshap {
namespace {

Design make_design() {
  return Design("toy", {0, 0, 100, 100}, 10, 10);
}

TEST(Technology, LayerNamesAndDirections) {
  EXPECT_EQ(Technology::metal_name(0), "M1");
  EXPECT_EQ(Technology::metal_name(4), "M5");
  EXPECT_EQ(Technology::via_name(0), "V1");
  EXPECT_EQ(Technology::via_name(3), "V4");
  EXPECT_TRUE(Technology::is_horizontal(0));
  EXPECT_FALSE(Technology::is_horizontal(1));
  EXPECT_TRUE(Technology::is_horizontal(2));
  EXPECT_FALSE(Technology::is_horizontal(3));
  EXPECT_TRUE(Technology::is_horizontal(4));
}

TEST(Technology, DefaultShape) {
  const Technology tech;
  EXPECT_EQ(tech.num_metal_layers, 5);
  EXPECT_EQ(tech.num_via_layers(), 4);
  EXPECT_EQ(tech.tracks_per_gcell.size(), 5u);
  EXPECT_EQ(tech.vias_per_gcell.size(), 4u);
}

TEST(Design, RejectsMismatchedTechnology) {
  Technology bad;
  bad.tracks_per_gcell = {8, 8};  // wrong size for 5 layers
  EXPECT_THROW(Design("x", {0, 0, 10, 10}, 2, 2, bad), std::invalid_argument);
}

TEST(Design, AddAndAccessEntities) {
  Design d = make_design();
  const CellId c = d.add_cell({"c0", {1, 1, 3, 3}, false});
  const NetId n = d.add_net({"n0", {}, false, false});
  const PinId p = d.add_pin({c, n, {2, 2}, false, false});
  EXPECT_EQ(d.num_cells(), 1u);
  EXPECT_EQ(d.num_nets(), 1u);
  EXPECT_EQ(d.num_pins(), 1u);
  EXPECT_EQ(d.net(n).pins.size(), 1u);
  EXPECT_EQ(d.net(n).pins.front(), p);
  EXPECT_EQ(d.pin(p).cell, c);
}

TEST(Design, AddPinRequiresExistingNet) {
  Design d = make_design();
  EXPECT_THROW(d.add_pin({kInvalidId, 5, {1, 1}, false, false}),
               std::out_of_range);
}

TEST(Design, PinInheritsNetFlags) {
  Design d = make_design();
  const NetId clock = d.add_net({"clk", {}, true, false});
  const NetId ndr = d.add_net({"ndr", {}, false, true});
  const PinId p1 = d.add_pin({kInvalidId, clock, {1, 1}, false, false});
  const PinId p2 = d.add_pin({kInvalidId, ndr, {2, 2}, false, false});
  EXPECT_TRUE(d.pin(p1).is_clock);
  EXPECT_TRUE(d.pin(p2).has_ndr);
}

TEST(Design, LocalNetDetection) {
  Design d = make_design();  // 10x10 grid over 100x100: cells are 10x10
  const NetId local = d.add_net({"local", {}, false, false});
  d.add_pin({kInvalidId, local, {1, 1}, false, false});
  d.add_pin({kInvalidId, local, {8, 8}, false, false});  // same g-cell
  const NetId global = d.add_net({"global", {}, false, false});
  d.add_pin({kInvalidId, global, {1, 1}, false, false});
  d.add_pin({kInvalidId, global, {55, 55}, false, false});
  EXPECT_TRUE(d.is_local_net(local));
  EXPECT_FALSE(d.is_local_net(global));
}

TEST(Design, NetHpwl) {
  Design d = make_design();
  const NetId n = d.add_net({"n", {}, false, false});
  d.add_pin({kInvalidId, n, {10, 20}, false, false});
  d.add_pin({kInvalidId, n, {40, 25}, false, false});
  d.add_pin({kInvalidId, n, {30, 60}, false, false});
  EXPECT_DOUBLE_EQ(d.net_hpwl(n), 30.0 + 40.0);
}

TEST(Design, ValidatePassesOnConsistentDesign) {
  Design d = make_design();
  const CellId c = d.add_cell({"c", {5, 5, 7, 7}, false});
  const NetId n = d.add_net({"n", {}, false, false});
  d.add_pin({c, n, {6, 6}, false, false});
  EXPECT_NO_THROW(d.validate());
}

TEST(Design, ValidateCatchesOutOfDiePin) {
  Design d = make_design();
  const NetId n = d.add_net({"n", {}, false, false});
  d.add_pin({kInvalidId, n, {50, 50}, false, false});
  // Forge an invalid pin position by adding a pin beyond the die.
  EXPECT_THROW(
      {
        d.add_pin({kInvalidId, n, {200, 200}, false, false});
        d.validate();
      },
      std::logic_error);
}

TEST(Design, BlockagesStored) {
  Design d = make_design();
  d.add_blockage({{0, 0, 10, 10}, 1, 2});
  ASSERT_EQ(d.blockages().size(), 1u);
  EXPECT_EQ(d.blockages().front().metal_lo, 1);
}

}  // namespace
}  // namespace drcshap
