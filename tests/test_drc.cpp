#include "drc/drc_oracle.hpp"

#include <gtest/gtest.h>

#include "features/labeler.hpp"

namespace drcshap {
namespace {

Design calm_design(std::size_t nx = 8, std::size_t ny = 8) {
  return Design("calm", {0, 0, 10.0 * nx, 10.0 * ny}, nx, ny);
}

/// A design + congestion snapshot with heavy overflow around one cell.
struct HotInstance {
  Design design;
  CongestionMap congestion;
};

HotInstance hot_instance(int overflow_amount) {
  Design d = calm_design();
  GridGraph g(d);
  const std::size_t hot_cell = d.grid().index(4, 4);
  for (const int m : {3, 4}) {
    for (const Dir dir : {Dir::kEast, Dir::kWest, Dir::kNorth, Dir::kSouth}) {
      const auto e = g.edge(m, hot_cell, dir);
      if (e) g.add_edge_load(*e, g.edge_capacity(*e) + overflow_amount);
    }
  }
  return {std::move(d), CongestionMap::extract(g)};
}

TEST(DrcOracle, DeterministicForFixedSeed) {
  const HotInstance hot = hot_instance(6);
  const DrcReport a = run_drc_oracle(hot.design, hot.congestion);
  const DrcReport b = run_drc_oracle(hot.design, hot.congestion);
  ASSERT_EQ(a.violations.size(), b.violations.size());
  EXPECT_EQ(a.hotspot, b.hotspot);
  for (std::size_t i = 0; i < a.violations.size(); ++i) {
    EXPECT_EQ(a.violations[i].box, b.violations[i].box);
    EXPECT_EQ(a.violations[i].type, b.violations[i].type);
  }
}

TEST(DrcOracle, SeedChangesOutcome) {
  const HotInstance hot = hot_instance(6);
  DrcOracleOptions o1, o2;
  o2.seed = o1.seed + 1;
  const DrcReport a = run_drc_oracle(hot.design, hot.congestion, o1);
  const DrcReport b = run_drc_oracle(hot.design, hot.congestion, o2);
  EXPECT_TRUE(a.violations.size() != b.violations.size() ||
              a.hotspot != b.hotspot);
}

TEST(DrcOracle, CalmDesignHasFewViolations) {
  const Design d = calm_design();
  const CongestionMap cong = CongestionMap::extract(GridGraph(d));
  const DrcReport report = run_drc_oracle(d, cong);
  // bias -5.2 with zero difficulty: expected rate well under 2%.
  EXPECT_LT(report.n_hotspots, d.grid().size() / 20);
}

TEST(DrcOracle, OverflowRaisesViolationDensity) {
  const HotInstance hot = hot_instance(8);
  DrcOracleOptions options;
  options.noise_sigma = 0.2;  // sharpen the comparison
  const DrcReport hot_report =
      run_drc_oracle(hot.design, hot.congestion, options);
  const Design calm = calm_design();
  const DrcReport calm_report =
      run_drc_oracle(calm, CongestionMap::extract(GridGraph(calm)), options);
  // The overflowed neighborhood must light up more than the calm design
  // overall (probability of failure would be astronomically small).
  EXPECT_GT(hot_report.violations.size(), calm_report.violations.size());
  const std::size_t hot_cell = hot.design.grid().index(4, 4);
  EXPECT_TRUE(hot_report.hotspot[hot_cell]);
}

TEST(DrcOracle, DifficultyScoreMonotoneInOverflow) {
  const DrcOracleOptions options;
  const HotInstance a = hot_instance(2);
  const HotInstance b = hot_instance(10);
  const TrackModel track_a(a.design, a.congestion);
  const TrackModel track_b(b.design, b.congestion);
  const auto agg_a = compute_gcell_aggregates(a.design);
  const auto agg_b = compute_gcell_aggregates(b.design);
  const std::size_t hot_cell = a.design.grid().index(4, 4);
  EXPECT_LT(drc_difficulty(a.design, track_a, agg_a, hot_cell, options),
            drc_difficulty(b.design, track_b, agg_b, hot_cell, options));
}

TEST(DrcOracle, ViolationBoxesInsideDie) {
  const HotInstance hot = hot_instance(10);
  const DrcReport report = run_drc_oracle(hot.design, hot.congestion);
  for (const DrcViolation& v : report.violations) {
    EXPECT_TRUE(hot.design.die().contains(v.box)) << v.box;
    EXPECT_FALSE(v.box.empty());
    EXPECT_GE(v.metal_layer, 0);
    EXPECT_LT(v.metal_layer, 5);
  }
}

TEST(DrcOracle, HotspotFlagsMatchBoxOverlap) {
  const HotInstance hot = hot_instance(10);
  const DrcReport report = run_drc_oracle(hot.design, hot.congestion);
  const auto labels = hotspot_labels(hot.design.grid(), report.violations);
  EXPECT_EQ(labels, report.hotspot);
  EXPECT_EQ(report.n_hotspots,
            static_cast<std::size_t>(
                std::count(labels.begin(), labels.end(), 1)));
}

TEST(DrcOracle, BiasControlsRate) {
  const HotInstance hot = hot_instance(4);
  DrcOracleOptions lenient, strict;
  lenient.bias = -9.0;
  strict.bias = -2.0;
  const DrcReport few = run_drc_oracle(hot.design, hot.congestion, lenient);
  const DrcReport many = run_drc_oracle(hot.design, hot.congestion, strict);
  EXPECT_LT(few.n_hotspots, many.n_hotspots);
}

TEST(DrcOracle, ViaPressureProducesEolErrors) {
  Design d = calm_design();
  GridGraph g(d);
  // Swamp V2 in a whole block of g-cells so at least one fires.
  for (std::size_t col = 2; col <= 5; ++col) {
    for (std::size_t row = 2; row <= 5; ++row) {
      const std::size_t cell = d.grid().index(col, row);
      g.add_via_load(1, cell, g.via_capacity(1, cell) * 2);
    }
  }
  DrcOracleOptions options;
  options.noise_sigma = 0.2;
  options.bias = -1.0;
  const DrcReport report =
      run_drc_oracle(d, CongestionMap::extract(g), options);
  bool eol_on_m2 = false;
  for (const DrcViolation& v : report.violations) {
    if (v.type == DrcErrorType::kEndOfLineSpacing && v.metal_layer == 2) {
      eol_on_m2 = true;
    }
  }
  EXPECT_TRUE(eol_on_m2)
      << "V2 crowding should produce end-of-line errors on the metal above";
}

TEST(DrcOracle, ErrorTypeNames) {
  EXPECT_EQ(to_string(DrcErrorType::kShort), "short");
  EXPECT_EQ(to_string(DrcErrorType::kEndOfLineSpacing), "end-of-line-spacing");
  EXPECT_EQ(to_string(DrcErrorType::kDifferentNetSpacing),
            "different-net-spacing");
  EXPECT_EQ(to_string(DrcErrorType::kViaEnclosure), "via-enclosure");
}

TEST(Labeler, ViolationsInGCell) {
  const Design d = calm_design();
  std::vector<DrcViolation> violations{
      {DrcErrorType::kShort, 2, {12, 12, 14, 14}},
      {DrcErrorType::kShort, 3, {55, 55, 57, 57}},
  };
  const auto in_cell =
      violations_in_gcell(d.grid(), d.grid().locate({15, 15}), violations);
  ASSERT_EQ(in_cell.size(), 1u);
  EXPECT_EQ(in_cell.front().metal_layer, 2);
}

TEST(Labeler, StraddlingBoxMarksAllTouchedCells) {
  const Design d = calm_design();
  std::vector<DrcViolation> violations{
      {DrcErrorType::kShort, 1, {8, 8, 12, 12}}};  // straddles 4 g-cells
  const auto labels = hotspot_labels(d.grid(), violations);
  EXPECT_EQ(std::count(labels.begin(), labels.end(), 1), 4);
}

}  // namespace
}  // namespace drcshap
