// Incremental ECO engine: golden byte-identity against from-scratch
// rebuilds, explanation-cache behavior under edits, and diff semantics.
//
// The load-bearing property is exactness: after any apply() sequence the
// engine's resident state — features, labels, probabilities, SHAP matrix,
// congestion, violations — must equal a fresh EcoEngine built on an
// independently edited design, bit for bit, at any thread count, with the
// explanation cache on or off.

#include "eco/eco_engine.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "benchsuite/pipeline.hpp"
#include "core/explanation_cache.hpp"

namespace drcshap {
namespace {

PipelineOptions tiny_options() {
  PipelineOptions options;
  options.generator.scale = 16.0;
  return options;
}

/// The design exactly as run_pipeline would construct it (same generator,
/// placer seed and row height), so the engine's initial state can be
/// compared against the one-shot pipeline.
Design make_design(const char* name) {
  const PipelineOptions options = tiny_options();
  const BenchmarkSpec& spec = suite_spec(name);
  const NetlistSpec netlist = generate_netlist(spec, options.generator);
  PlacerOptions placer = options.placer;
  placer.row_height = options.generator.row_height;
  placer.seed = spec.seed * 31 + 1;
  return place_design(netlist, placer);
}

/// A low-density design whose routing converges without rip-up: total
/// overflow is zero, so a small edit provably stays local instead of being
/// amplified by PathFinder's congestion feedback.
Design make_uncongested_design() {
  BenchmarkSpec spec;
  spec.name = "eco_local";
  spec.table_group = 0;
  spec.die_microns = 200.0;
  spec.gcells_x = 30;
  spec.gcells_y = 30;
  spec.cells_thousands = 0.5;
  spec.n_macros = 2;
  spec.difficulty = 0.02;
  spec.wiring_richness = 1.0;
  spec.seed = 7;
  const PipelineOptions options;  // full scale: the spec is already small
  const NetlistSpec netlist = generate_netlist(spec, options.generator);
  PlacerOptions placer = options.placer;
  placer.row_height = options.generator.row_height;
  placer.seed = spec.seed * 31 + 1;
  return place_design(netlist, placer);
}

void expect_congestion_equal(const CongestionMap& a, const CongestionMap& b) {
  ASSERT_EQ(a.nx(), b.nx());
  ASSERT_EQ(a.ny(), b.ny());
  ASSERT_EQ(a.num_metal_layers(), b.num_metal_layers());
  for (int m = 0; m < a.num_metal_layers(); ++m) {
    const bool horizontal = Technology::is_horizontal(m);
    for (std::size_t cell = 0; cell < a.num_cells(); ++cell) {
      const std::size_t nbr = horizontal ? cell + 1 : cell + a.nx();
      if (!a.has_edge(m, cell, nbr)) continue;
      ASSERT_EQ(a.edge_capacity(m, cell, nbr), b.edge_capacity(m, cell, nbr))
          << "metal " << m << " cell " << cell;
      ASSERT_EQ(a.edge_load(m, cell, nbr), b.edge_load(m, cell, nbr))
          << "metal " << m << " cell " << cell;
    }
  }
  for (int v = 0; v < a.num_via_layers(); ++v) {
    for (std::size_t cell = 0; cell < a.num_cells(); ++cell) {
      ASSERT_EQ(a.via_capacity(v, cell), b.via_capacity(v, cell));
      ASSERT_EQ(a.via_load(v, cell), b.via_load(v, cell));
    }
  }
}

void expect_violations_equal(const std::vector<DrcViolation>& a,
                             const std::vector<DrcViolation>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].type, b[i].type) << "violation " << i;
    EXPECT_EQ(a[i].metal_layer, b[i].metal_layer) << "violation " << i;
    EXPECT_EQ(a[i].box, b[i].box) << "violation " << i;
  }
}

/// Full bit-exact comparison of two engines' resident state. Vector ==
/// compares floats/doubles exactly — that is the point.
void expect_engines_equal(const EcoEngine& got, const EcoEngine& want) {
  EXPECT_EQ(got.edge_overflow(), want.edge_overflow());
  EXPECT_EQ(got.via_overflow(), want.via_overflow());
  expect_congestion_equal(got.congestion(), want.congestion());
  EXPECT_TRUE(got.aggregates() == want.aggregates());
  EXPECT_TRUE(got.features() == want.features()) << "feature matrix differs";
  EXPECT_EQ(got.labels(), want.labels());
  EXPECT_EQ(got.drc_state().coverage, want.drc_state().coverage);
  EXPECT_EQ(got.drc_state().n_hotspots, want.drc_state().n_hotspots);
  expect_violations_equal(got.drc_state().flatten().violations,
                          want.drc_state().flatten().violations);
  EXPECT_TRUE(got.probabilities() == want.probabilities())
      << "probabilities differ";
  EXPECT_TRUE(got.shap_values() == want.shap_values()) << "phi matrix differs";
}

/// A macro translation that stays inside the die: one die-tenth east if it
/// fits, else west.
std::pair<double, double> safe_macro_shift(const Design& design, MacroId id) {
  const Rect& box = design.macro(id).box;
  const double dx = (design.die().x_hi - design.die().x_lo) / 10.0;
  if (box.x_hi + dx <= design.die().x_hi) return {dx, 0.0};
  return {-dx, 0.0};
}

class EcoFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Dataset train(FeatureSchema::kNumFeatures, FeatureSchema::names());
    train.append(run_pipeline(suite_spec("fft_2"), tiny_options()).samples);
    RandomForestOptions options;
    options.n_trees = 25;
    auto forest = std::make_shared<RandomForestClassifier>(options);
    forest->fit(train);
    forest_ = new std::shared_ptr<const RandomForestClassifier>(
        std::move(forest));
  }
  static void TearDownTestSuite() {
    delete forest_;
    forest_ = nullptr;
  }

  static std::shared_ptr<const RandomForestClassifier> forest() {
    return *forest_;
  }
  static EcoEngine make_engine(const char* name = "bridge32_a",
                               EcoOptions options = {}) {
    options.router = tiny_options().router;
    options.drc = tiny_options().drc;
    return EcoEngine(make_design(name), forest(),
                     TreeShapExplainer(*forest()), options);
  }

 private:
  static std::shared_ptr<const RandomForestClassifier>* forest_;
};

std::shared_ptr<const RandomForestClassifier>* EcoFixture::forest_ = nullptr;

// ---------------------------------------------------------------------------
// Golden digests: ECO == from-scratch rebuild, bit for bit.
// ---------------------------------------------------------------------------

using EcoDigest = EcoFixture;

TEST_F(EcoDigest, InitialStateMatchesOneShotPipeline) {
  const EcoEngine engine = make_engine();
  const DesignRun run = run_pipeline(suite_spec("bridge32_a"), tiny_options());
  ASSERT_EQ(engine.num_cells(), run.samples.n_rows());
  expect_congestion_equal(engine.congestion(), run.congestion);
  EXPECT_EQ(engine.edge_overflow(), run.edge_overflow);
  EXPECT_EQ(engine.via_overflow(), run.via_overflow);
  EXPECT_EQ(engine.labels(), run.drc.hotspot);
  expect_violations_equal(engine.drc_state().flatten().violations,
                          run.drc.violations);
  for (std::size_t cell = 0; cell < engine.num_cells(); ++cell) {
    const std::span<const float> row = run.samples.row(cell);
    for (std::size_t f = 0; f < FeatureSchema::kNumFeatures; ++f) {
      ASSERT_EQ(engine.features()[cell * FeatureSchema::kNumFeatures + f],
                row[f])
          << "cell " << cell << " feature " << f;
    }
  }
}

TEST_F(EcoDigest, MoveMacroMatchesFullRebuild) {
  EcoEngine engine = make_engine();
  const auto [dx, dy] = safe_macro_shift(engine.design(), 0);

  EcoEdit edit;
  edit.kind = EcoEdit::Kind::kMoveMacro;
  edit.macro = 0;
  edit.dx = dx;
  edit.dy = dy;
  const EcoResult result = engine.apply(edit);
  EXPECT_GT(result.stats.dirty_cells, 0u);
  // bridge32_a is congested; PathFinder rip-up can legitimately shuffle
  // routes far from the edit, so no locality bound is asserted here — see
  // SmallEditOnUncongestedDesignStaysLocal for the locality guarantee.

  Design edited = make_design("bridge32_a");
  edited.move_macro(0, dx, dy);
  EcoOptions options;
  options.router = tiny_options().router;
  options.drc = tiny_options().drc;
  const EcoEngine fresh(std::move(edited), forest(),
                        TreeShapExplainer(*forest()), options);
  expect_engines_equal(engine, fresh);
}

// The locality guarantee behind the ECO speedup: when routing converges
// with zero overflow (no rip-up feedback), a sub-micron macro nudge dirties
// only a small neighborhood — and the incremental state still matches a
// from-scratch rebuild bit for bit.
TEST_F(EcoDigest, SmallEditOnUncongestedDesignStaysLocal) {
  EcoOptions options;
  EcoEngine engine(make_uncongested_design(), forest(),
                   TreeShapExplainer(*forest()), options);
  ASSERT_EQ(engine.edge_overflow(), 0);
  ASSERT_EQ(engine.via_overflow(), 0);

  EcoEdit edit;
  edit.kind = EcoEdit::Kind::kMoveMacro;
  edit.macro = 1;
  edit.dx = 0.25;
  edit.dy = 0.0;
  const EcoResult result = engine.apply(edit);
  EXPECT_GT(result.stats.dirty_cells, 0u);
  EXPECT_LT(result.stats.dirty_cells, engine.num_cells() / 4);
  EXPECT_EQ(result.stats.rows_rescored, result.stats.dirty_cells);

  Design edited = make_uncongested_design();
  edited.move_macro(1, edit.dx, edit.dy);
  const EcoEngine fresh(std::move(edited), forest(),
                        TreeShapExplainer(*forest()), options);
  expect_engines_equal(engine, fresh);
}

TEST_F(EcoDigest, ResizeMacroMatchesFullRebuild) {
  EcoEngine engine = make_engine();
  const Rect old_box = engine.design().macro(1).box;
  const Rect new_box{old_box.x_lo, old_box.y_lo,
                     old_box.x_lo + 0.5 * (old_box.x_hi - old_box.x_lo),
                     old_box.y_hi};

  EcoEdit edit;
  edit.kind = EcoEdit::Kind::kResizeMacro;
  edit.macro = 1;
  edit.new_box = new_box;
  engine.apply(edit);

  Design edited = make_design("bridge32_a");
  edited.set_macro_box(1, new_box);
  EcoOptions options;
  options.router = tiny_options().router;
  options.drc = tiny_options().drc;
  const EcoEngine fresh(std::move(edited), forest(),
                        TreeShapExplainer(*forest()), options);
  expect_engines_equal(engine, fresh);
}

TEST_F(EcoDigest, EditSequenceMatchesFullRebuild) {
  EcoEngine engine = make_engine();
  const auto [dx, dy] = safe_macro_shift(engine.design(), 0);
  const Rect box1 = engine.design().macro(1).box;
  const Rect shrunk{box1.x_lo, box1.y_lo, box1.x_hi,
                    box1.y_lo + 0.75 * (box1.y_hi - box1.y_lo)};

  EcoEdit move;
  move.kind = EcoEdit::Kind::kMoveMacro;
  move.macro = 0;
  move.dx = dx;
  move.dy = dy;
  engine.apply(move);

  EcoEdit resize;
  resize.kind = EcoEdit::Kind::kResizeMacro;
  resize.macro = 1;
  resize.new_box = shrunk;
  engine.apply(resize);

  EcoEdit reroute;
  reroute.kind = EcoEdit::Kind::kRerouteNets;
  reroute.nets = {engine.design().net(0).name,
                  engine.design().net(engine.design().num_nets() / 2).name};
  engine.apply(reroute);

  Design edited = make_design("bridge32_a");
  edited.move_macro(0, dx, dy);
  edited.set_macro_box(1, shrunk);
  EcoOptions options;
  options.router = tiny_options().router;
  options.drc = tiny_options().drc;
  const EcoEngine fresh(std::move(edited), forest(),
                        TreeShapExplainer(*forest()), options);
  expect_engines_equal(engine, fresh);
}

TEST_F(EcoDigest, RerouteNetsOnUnchangedDesignIsByteStableNoOp) {
  EcoEngine engine = make_engine();
  EcoEdit edit;
  edit.kind = EcoEdit::Kind::kRerouteNets;
  edit.nets = {engine.design().net(1).name, engine.design().net(3).name};
  const EcoResult result = engine.apply(edit);
  // Forcing nets through live routing on an unchanged design must
  // reproduce their routes exactly: nothing downstream may move.
  EXPECT_EQ(result.diff.entries.size(), 0u);
  EXPECT_EQ(result.diff.n_appeared, 0u);
  EXPECT_EQ(result.diff.n_vanished, 0u);
  EXPECT_EQ(result.diff.n_changed, 0u);
  const EcoEngine fresh = make_engine();
  expect_engines_equal(engine, fresh);
}

TEST_F(EcoDigest, ThreadCountInvariance) {
  EcoOptions serial;
  serial.n_threads = 1;
  EcoOptions parallel;
  parallel.n_threads = 8;
  EcoEngine a = make_engine("bridge32_a", serial);
  EcoEngine b = make_engine("bridge32_a", parallel);
  const auto [dx, dy] = safe_macro_shift(a.design(), 0);
  EcoEdit edit;
  edit.kind = EcoEdit::Kind::kMoveMacro;
  edit.macro = 0;
  edit.dx = dx;
  edit.dy = dy;
  const EcoResult ra = a.apply(edit);
  const EcoResult rb = b.apply(edit);
  expect_engines_equal(a, b);
  ASSERT_EQ(ra.diff.entries.size(), rb.diff.entries.size());
  for (std::size_t i = 0; i < ra.diff.entries.size(); ++i) {
    EXPECT_EQ(ra.diff.entries[i].cell, rb.diff.entries[i].cell);
    EXPECT_EQ(ra.diff.entries[i].change, rb.diff.entries[i].change);
    EXPECT_EQ(ra.diff.entries[i].prob_before, rb.diff.entries[i].prob_before);
    EXPECT_EQ(ra.diff.entries[i].prob_after, rb.diff.entries[i].prob_after);
    EXPECT_EQ(ra.diff.entries[i].shap_deltas, rb.diff.entries[i].shap_deltas);
  }
}

TEST_F(EcoDigest, DiffEntriesAreConsistentWithProbabilities) {
  EcoEngine engine = make_engine();
  const std::vector<double> before = engine.probabilities();
  const auto [dx, dy] = safe_macro_shift(engine.design(), 0);
  EcoEdit edit;
  edit.kind = EcoEdit::Kind::kMoveMacro;
  edit.macro = 0;
  edit.dx = dx;
  edit.dy = dy;
  const EcoResult result = engine.apply(edit);
  const std::vector<double>& after = engine.probabilities();

  EcoOptions options;  // defaults the engine ran with
  std::size_t prev_cell = 0;
  bool first = true;
  std::vector<std::uint8_t> in_diff(engine.num_cells(), 0);
  for (const HotspotDiffEntry& e : result.diff.entries) {
    if (!first) {
      EXPECT_GT(e.cell, prev_cell) << "entries not ascending";
    }
    first = false;
    prev_cell = e.cell;
    in_diff[e.cell] = 1;
    EXPECT_EQ(e.prob_before, before[e.cell]);
    EXPECT_EQ(e.prob_after, after[e.cell]);
    switch (e.change) {
      case HotspotDiffEntry::Change::kAppeared:
        EXPECT_LT(e.prob_before, options.hotspot_threshold);
        EXPECT_GE(e.prob_after, options.hotspot_threshold);
        break;
      case HotspotDiffEntry::Change::kVanished:
        EXPECT_GE(e.prob_before, options.hotspot_threshold);
        EXPECT_LT(e.prob_after, options.hotspot_threshold);
        break;
      case HotspotDiffEntry::Change::kChanged:
        EXPECT_GE(std::abs(e.prob_after - e.prob_before),
                  options.min_prob_delta);
        break;
    }
    EXPECT_LE(e.shap_deltas.size(), options.top_k);
    for (std::size_t i = 1; i < e.shap_deltas.size(); ++i) {
      EXPECT_GE(std::abs(e.shap_deltas[i - 1].second),
                std::abs(e.shap_deltas[i].second));
    }
  }
  EXPECT_EQ(result.diff.n_appeared + result.diff.n_vanished +
                result.diff.n_changed,
            result.diff.entries.size());
  // Every cell outside the diff either kept its probability side and moved
  // less than min_prob_delta, or did not move at all.
  for (std::size_t cell = 0; cell < engine.num_cells(); ++cell) {
    if (in_diff[cell]) continue;
    const bool was = before[cell] >= options.hotspot_threshold;
    const bool is = after[cell] >= options.hotspot_threshold;
    EXPECT_EQ(was, is) << "cell " << cell << " crossed outside the diff";
    EXPECT_LT(std::abs(after[cell] - before[cell]), options.min_prob_delta)
        << "cell " << cell;
  }
}

TEST_F(EcoDigest, MalformedEditsThrowAndLeaveStateIntact) {
  EcoEngine engine = make_engine();
  const std::vector<float> features_before = engine.features();
  const std::vector<double> probs_before = engine.probabilities();

  EcoEdit bad_macro;
  bad_macro.kind = EcoEdit::Kind::kMoveMacro;
  bad_macro.macro = 1000;
  EXPECT_THROW(engine.apply(bad_macro), std::invalid_argument);

  EcoEdit bad_box;
  bad_box.kind = EcoEdit::Kind::kResizeMacro;
  bad_box.macro = 0;
  bad_box.new_box = Rect{-1e9, -1e9, -1e8, -1e8};
  EXPECT_THROW(engine.apply(bad_box), std::invalid_argument);

  EcoEdit bad_net;
  bad_net.kind = EcoEdit::Kind::kRerouteNets;
  bad_net.nets = {"no_such_net_name"};
  EXPECT_THROW(engine.apply(bad_net), std::invalid_argument);

  EXPECT_TRUE(engine.features() == features_before);
  EXPECT_TRUE(engine.probabilities() == probs_before);

  // And the engine still works: a valid edit after the failures matches a
  // fresh rebuild.
  const auto [dx, dy] = safe_macro_shift(engine.design(), 0);
  EcoEdit edit;
  edit.kind = EcoEdit::Kind::kMoveMacro;
  edit.macro = 0;
  edit.dx = dx;
  edit.dy = dy;
  engine.apply(edit);
  Design edited = make_design("bridge32_a");
  edited.move_macro(0, dx, dy);
  EcoOptions options;
  options.router = tiny_options().router;
  options.drc = tiny_options().drc;
  const EcoEngine fresh(std::move(edited), forest(),
                        TreeShapExplainer(*forest()), options);
  expect_engines_equal(engine, fresh);
}

// ---------------------------------------------------------------------------
// Explanation cache under ECO edits.
// ---------------------------------------------------------------------------

using EcoCache = EcoFixture;

TEST_F(EcoCache, CachedApplyIsByteIdenticalToUncached) {
  EcoOptions options;
  options.router = tiny_options().router;
  options.drc = tiny_options().drc;

  TreeShapExplainer cached_explainer(*forest());
  cached_explainer.set_cache(std::make_shared<ExplanationCache>());
  EcoEngine cached(make_design("bridge32_a"), forest(),
                   std::move(cached_explainer), options);
  EcoEngine uncached(make_design("bridge32_a"), forest(),
                     TreeShapExplainer(*forest()), options);

  const auto [dx, dy] = safe_macro_shift(cached.design(), 0);
  EcoEdit edit;
  edit.kind = EcoEdit::Kind::kMoveMacro;
  edit.macro = 0;
  edit.dx = dx;
  edit.dy = dy;
  cached.apply(edit);
  uncached.apply(edit);
  expect_engines_equal(cached, uncached);
}

TEST_F(EcoCache, EditedCellsMissUntouchedCellsNeverLookUp) {
  EcoOptions options;
  options.router = tiny_options().router;
  options.drc = tiny_options().drc;

  auto cache = std::make_shared<ExplanationCache>();
  TreeShapExplainer explainer(*forest());
  explainer.set_cache(cache);
  EcoEngine engine(make_design("bridge32_a"), forest(), std::move(explainer),
                   options);
  const ExplanationCacheStats after_build = cache->stats();
  // The full build consulted the cache once per unique row, all misses.
  EXPECT_GT(after_build.misses, 0u);
  EXPECT_EQ(after_build.hits, 0u);

  const auto [dx, dy] = safe_macro_shift(engine.design(), 0);
  EcoEdit edit;
  edit.kind = EcoEdit::Kind::kMoveMacro;
  edit.macro = 0;
  edit.dx = dx;
  edit.dy = dy;
  const EcoResult result = engine.apply(edit);
  const ExplanationCacheStats after_edit = cache->stats();

  const std::uint64_t lookups_delta = (after_edit.hits + after_edit.misses) -
                                      (after_build.hits + after_build.misses);
  // Only dirty rows reach the explainer at all: untouched cells cause no
  // cache traffic (stronger than hitting). Dedupe can only shrink the count.
  EXPECT_LE(lookups_delta, result.stats.rows_rescored);
  EXPECT_GT(lookups_delta, 0u);
  // The edit genuinely changed feature rows, so fresh phi was computed:
  // some lookups missed.
  EXPECT_GT(after_edit.misses, after_build.misses);
}

TEST_F(EcoCache, RevertedEditHitsCacheAndRestoresOriginalState) {
  EcoOptions options;
  options.router = tiny_options().router;
  options.drc = tiny_options().drc;

  auto cache = std::make_shared<ExplanationCache>();
  TreeShapExplainer explainer(*forest());
  explainer.set_cache(cache);
  EcoEngine engine(make_design("bridge32_a"), forest(), std::move(explainer),
                   options);
  const Rect original_box = engine.design().macro(0).box;
  const auto [dx, dy] = safe_macro_shift(engine.design(), 0);

  EcoEdit move;
  move.kind = EcoEdit::Kind::kMoveMacro;
  move.macro = 0;
  move.dx = dx;
  move.dy = dy;
  engine.apply(move);

  const ExplanationCacheStats before_revert = cache->stats();
  // Restore the exact original box (an explicit resize, not a float
  // round-trip through -dx), so the design returns to its pristine bytes.
  EcoEdit revert;
  revert.kind = EcoEdit::Kind::kResizeMacro;
  revert.macro = 0;
  revert.new_box = original_box;
  engine.apply(revert);
  const ExplanationCacheStats after_revert = cache->stats();

  // Reverted cells re-ask about feature rows explained during the initial
  // build — those lookups hit.
  EXPECT_GT(after_revert.hits, before_revert.hits);

  // Round trip: the engine is byte-identical to a never-edited rebuild.
  const EcoEngine fresh = make_engine();
  expect_engines_equal(engine, fresh);
}

TEST_F(EcoCache, KillSwitchEnvRunsByteIdenticalToCachedRuns) {
  EcoOptions options;
  options.router = tiny_options().router;
  options.drc = tiny_options().drc;

  TreeShapExplainer cached_explainer(*forest());
  cached_explainer.set_cache(std::make_shared<ExplanationCache>());
  EcoEngine cached(make_design("bridge32_a"), forest(),
                   std::move(cached_explainer), options);

  ::setenv("DRCSHAP_EXPLAIN_CACHE", "0", 1);
  auto dead_cache = std::make_shared<ExplanationCache>();
  TreeShapExplainer bypassed_explainer(*forest());
  bypassed_explainer.set_cache(dead_cache);
  EcoEngine bypassed(make_design("bridge32_a"), forest(),
                     std::move(bypassed_explainer), options);

  const auto [dx, dy] = safe_macro_shift(cached.design(), 0);
  EcoEdit edit;
  edit.kind = EcoEdit::Kind::kMoveMacro;
  edit.macro = 0;
  edit.dx = dx;
  edit.dy = dy;
  cached.apply(edit);
  bypassed.apply(edit);
  ::unsetenv("DRCSHAP_EXPLAIN_CACHE");

  // The kill switch really bypassed the attached cache...
  const ExplanationCacheStats stats = dead_cache->stats();
  EXPECT_EQ(stats.hits + stats.misses, 0u);
  // ...and changed nothing about the results.
  expect_engines_equal(cached, bypassed);
}

}  // namespace
}  // namespace drcshap
