#include "core/explanation.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace drcshap {
namespace {

Explanation make_explanation() {
  return Explanation(0.1, 0.6, {0.35, -0.05, 0.2, 0.0},
                     {1.0f, 2.0f, 3.0f, 4.0f}, {"a", "b", "c", "d"});
}

TEST(Explanation, RankedByAbsoluteValue) {
  const auto ranked = make_explanation().ranked();
  ASSERT_EQ(ranked.size(), 4u);
  EXPECT_EQ(ranked[0].feature_name, "a");
  EXPECT_EQ(ranked[1].feature_name, "c");
  EXPECT_EQ(ranked[2].feature_name, "b");
  EXPECT_EQ(ranked[3].feature_name, "d");
  EXPECT_DOUBLE_EQ(ranked[0].shap_value, 0.35);
  EXPECT_DOUBLE_EQ(ranked[0].feature_value, 1.0);
}

TEST(Explanation, TopTruncates) {
  EXPECT_EQ(make_explanation().top(2).size(), 2u);
  EXPECT_EQ(make_explanation().top(10).size(), 4u);
}

TEST(Explanation, AdditivityGap) {
  // base 0.1 + (0.35 - 0.05 + 0.2 + 0) = 0.6 = prediction -> gap 0.
  EXPECT_NEAR(make_explanation().additivity_gap(), 0.0, 1e-12);
  const Explanation off(0.1, 0.9, {0.1}, {1.0f}, {"a"});
  EXPECT_NEAR(off.additivity_gap(), 0.7, 1e-12);
}

TEST(Explanation, TextRendersSignsAndNames) {
  const std::string text = make_explanation().to_text(3);
  EXPECT_NE(text.find("base value 0.1000"), std::string::npos);
  EXPECT_NE(text.find("a=1.00"), std::string::npos);
  EXPECT_NE(text.find("+ a"), std::string::npos);
  EXPECT_NE(text.find("- b"), std::string::npos);
  EXPECT_NE(text.find("#"), std::string::npos);
}

TEST(Explanation, DefaultNamesWhenMissing) {
  const Explanation e(0.0, 0.5, {0.5, 0.0}, {1.0f, 2.0f}, {});
  EXPECT_EQ(e.ranked()[0].feature_name, "f0");
}

TEST(Explanation, ValidatesSizes) {
  EXPECT_THROW(Explanation(0, 0, {0.1}, {1.0f, 2.0f}, {}),
               std::invalid_argument);
  EXPECT_THROW(Explanation(0, 0, {0.1}, {1.0f}, {"a", "b"}),
               std::invalid_argument);
}

TEST(Explanation, ExplainSampleEndToEnd) {
  Dataset d(4);
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    std::vector<float> x(4);
    for (auto& v : x) v = static_cast<float>(rng.uniform());
    d.append_row(x, x[0] > 0.6f ? 1 : 0, 0);
  }
  RandomForestOptions options;
  options.n_trees = 20;
  RandomForestClassifier forest(options);
  forest.fit(d);
  const TreeShapExplainer explainer(forest);
  const std::vector<float> x{0.95f, 0.5f, 0.5f, 0.5f};
  const Explanation e =
      explain_sample(explainer, forest, x, {"sig", "n1", "n2", "n3"});
  EXPECT_LT(e.additivity_gap(), 1e-9);
  // The signal feature must dominate the explanation.
  EXPECT_EQ(e.ranked()[0].feature_name, "sig");
  EXPECT_GT(e.ranked()[0].shap_value, 0.0);
  EXPECT_GT(e.prediction(), e.base_value());
}

}  // namespace
}  // namespace drcshap
