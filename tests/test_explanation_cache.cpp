// Unit suite for the sharded LRU explanation cache: lookup/insert
// semantics, full-key verification, salt isolation between models, LRU
// eviction, the env kill switch, and counter bookkeeping.

#include "core/explanation_cache.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

namespace drcshap {
namespace {

std::vector<float> key_row(float seed, std::size_t n = 8) {
  std::vector<float> row(n);
  for (std::size_t i = 0; i < row.size(); ++i) {
    row[i] = seed + static_cast<float>(i) * 0.25f;
  }
  return row;
}

std::vector<double> phi_row(double seed, std::size_t n = 8) {
  std::vector<double> phi(n);
  for (std::size_t i = 0; i < phi.size(); ++i) {
    phi[i] = seed - static_cast<double>(i);
  }
  return phi;
}

TEST(ExplanationCache, MissThenHitRoundTripsExactBytes) {
  ExplanationCache cache(64, 4);
  const auto key = key_row(1.0f);
  const auto phi = phi_row(0.125);
  std::vector<double> out(phi.size(), 0.0);

  EXPECT_FALSE(cache.lookup(7, key.data(), key.size() * sizeof(float),
                            out.data(), out.size()));
  cache.insert(7, key.data(), key.size() * sizeof(float), phi.data(),
               phi.size());
  ASSERT_TRUE(cache.lookup(7, key.data(), key.size() * sizeof(float),
                           out.data(), out.size()));
  EXPECT_EQ(0, std::memcmp(out.data(), phi.data(),
                           phi.size() * sizeof(double)));

  const ExplanationCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(ExplanationCache, SaltSeparatesModelsSharingOneStore) {
  // Two explainers accidentally sharing a cache must never read each
  // other's rows: the model-digest salt turns the cross-read into a miss.
  ExplanationCache cache(64, 4);
  const auto key = key_row(2.0f);
  const auto phi_a = phi_row(1.0);
  const auto phi_b = phi_row(-5.0);
  cache.insert(/*salt=*/1, key.data(), key.size() * sizeof(float),
               phi_a.data(), phi_a.size());
  cache.insert(/*salt=*/2, key.data(), key.size() * sizeof(float),
               phi_b.data(), phi_b.size());

  std::vector<double> out(phi_a.size(), 0.0);
  ASSERT_TRUE(cache.lookup(1, key.data(), key.size() * sizeof(float),
                           out.data(), out.size()));
  EXPECT_EQ(0, std::memcmp(out.data(), phi_a.data(),
                           phi_a.size() * sizeof(double)));
  ASSERT_TRUE(cache.lookup(2, key.data(), key.size() * sizeof(float),
                           out.data(), out.size()));
  EXPECT_EQ(0, std::memcmp(out.data(), phi_b.data(),
                           phi_b.size() * sizeof(double)));
  EXPECT_FALSE(cache.lookup(3, key.data(), key.size() * sizeof(float),
                            out.data(), out.size()));
}

TEST(ExplanationCache, EvictsLeastRecentlyUsedWhenFull) {
  // One shard so LRU order is globally observable.
  ExplanationCache cache(/*capacity=*/4, /*n_shards=*/1);
  std::vector<double> out(8, 0.0);
  for (int i = 0; i < 4; ++i) {
    const auto key = key_row(static_cast<float>(i) * 10.0f);
    const auto phi = phi_row(i);
    cache.insert(7, key.data(), key.size() * sizeof(float), phi.data(),
                 phi.size());
  }
  // Touch entry 0 so entry 1 becomes the eviction victim.
  const auto key0 = key_row(0.0f);
  ASSERT_TRUE(cache.lookup(7, key0.data(), key0.size() * sizeof(float),
                           out.data(), out.size()));
  const auto key_new = key_row(99.0f);
  const auto phi_new = phi_row(99.0);
  cache.insert(7, key_new.data(), key_new.size() * sizeof(float),
               phi_new.data(), phi_new.size());

  EXPECT_EQ(cache.stats().entries, 4u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  const auto key1 = key_row(10.0f);
  EXPECT_FALSE(cache.lookup(7, key1.data(), key1.size() * sizeof(float),
                            out.data(), out.size()));  // evicted
  EXPECT_TRUE(cache.lookup(7, key0.data(), key0.size() * sizeof(float),
                           out.data(), out.size()));  // kept (recently used)
}

TEST(ExplanationCache, ClearDropsEntriesKeepsLifetimeCounters) {
  ExplanationCache cache(64, 4);
  const auto key = key_row(3.0f);
  const auto phi = phi_row(3.0);
  cache.insert(7, key.data(), key.size() * sizeof(float), phi.data(),
               phi.size());
  std::vector<double> out(phi.size(), 0.0);
  ASSERT_TRUE(cache.lookup(7, key.data(), key.size() * sizeof(float),
                           out.data(), out.size()));
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().hits, 1u);  // lifetime counters survive clear()
  EXPECT_FALSE(cache.lookup(7, key.data(), key.size() * sizeof(float),
                            out.data(), out.size()));
}

TEST(ExplanationCache, ReinsertingAKeyRefreshesRecencyNotContents) {
  // By contract an identical key implies an identical phi row, so a
  // re-insert only touches LRU recency: one entry, original bytes.
  ExplanationCache cache(64, 4);
  const auto key = key_row(4.0f);
  const auto phi = phi_row(1.0);
  cache.insert(7, key.data(), key.size() * sizeof(float), phi.data(),
               phi.size());
  cache.insert(7, key.data(), key.size() * sizeof(float), phi.data(),
               phi.size());
  EXPECT_EQ(cache.stats().entries, 1u);
  std::vector<double> out(phi.size(), 0.0);
  ASSERT_TRUE(cache.lookup(7, key.data(), key.size() * sizeof(float),
                           out.data(), out.size()));
  EXPECT_EQ(0,
            std::memcmp(out.data(), phi.data(), phi.size() * sizeof(double)));
}

TEST(ExplanationCache, EnvKillSwitchParsing) {
  const char* saved = std::getenv("DRCSHAP_EXPLAIN_CACHE");
  const std::string saved_value = saved != nullptr ? saved : "";
  const bool had = saved != nullptr;

  ::unsetenv("DRCSHAP_EXPLAIN_CACHE");
  EXPECT_TRUE(ExplanationCache::enabled_by_env());
  for (const char* off : {"0", "off", "OFF", "false", "FALSE"}) {
    ::setenv("DRCSHAP_EXPLAIN_CACHE", off, 1);
    EXPECT_FALSE(ExplanationCache::enabled_by_env()) << off;
  }
  for (const char* on : {"1", "on", "yes", ""}) {
    ::setenv("DRCSHAP_EXPLAIN_CACHE", on, 1);
    EXPECT_TRUE(ExplanationCache::enabled_by_env()) << on;
  }

  if (had) {
    ::setenv("DRCSHAP_EXPLAIN_CACHE", saved_value.c_str(), 1);
  } else {
    ::unsetenv("DRCSHAP_EXPLAIN_CACHE");
  }
}

TEST(ExplanationCache, ConcurrentMixedTrafficStaysConsistent) {
  ExplanationCache cache(128, 8);
  constexpr int kThreads = 4;
  constexpr int kOps = 400;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t] {
      std::vector<double> out(8, 0.0);
      for (int i = 0; i < kOps; ++i) {
        const auto key = key_row(static_cast<float>((t * 7 + i) % 40));
        const auto phi = phi_row((t * 7 + i) % 40);
        if (cache.lookup(9, key.data(), key.size() * sizeof(float),
                         out.data(), out.size())) {
          // A hit must return exactly what some insert stored.
          ASSERT_EQ(0, std::memcmp(out.data(), phi.data(),
                                   phi.size() * sizeof(double)));
        } else {
          cache.insert(9, key.data(), key.size() * sizeof(float), phi.data(),
                       phi.size());
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  const ExplanationCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_LE(stats.entries, cache.capacity());
}

}  // namespace
}  // namespace drcshap
