#include "features/feature_extractor.hpp"

#include <gtest/gtest.h>

#include <set>

#include "features/feature_names.hpp"

namespace drcshap {
namespace {

// ------------------------------------------------------------- schema

TEST(FeatureSchema, Exactly387Features) {
  EXPECT_EQ(FeatureSchema::kNumFeatures, 387u);
  EXPECT_EQ(FeatureSchema::names().size(), 387u);
  // 9 x 11 + 5 x 12 x 3 + 4 x 9 x 3 = 99 + 180 + 108.
  EXPECT_EQ(9u * 11u + 5u * 12u * 3u + 4u * 9u * 3u, 387u);
}

TEST(FeatureSchema, NamesUnique) {
  const auto& names = FeatureSchema::names();
  const std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
}

TEST(FeatureSchema, IndexOfRoundTrip) {
  const auto& names = FeatureSchema::names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(FeatureSchema::index_of(names[i]), i);
  }
  EXPECT_THROW(FeatureSchema::index_of("bogus"), std::out_of_range);
}

TEST(FeatureSchema, PaperNamingConvention) {
  // Names used in the paper's Fig. 3/4 narration must exist.
  EXPECT_NO_THROW(FeatureSchema::index_of("edM5_7H"));
  EXPECT_NO_THROW(FeatureSchema::index_of("edM4_4V"));
  EXPECT_NO_THROW(FeatureSchema::index_of("vlV2_E"));
  EXPECT_NO_THROW(FeatureSchema::index_of("vlV2_N"));
  EXPECT_NO_THROW(FeatureSchema::index_of("vlV3_NE"));
  EXPECT_NO_THROW(FeatureSchema::index_of("pins_o"));
  EXPECT_NO_THROW(FeatureSchema::index_of("x_SW"));
}

TEST(FeatureSchema, BlockIndexHelpers) {
  EXPECT_EQ(FeatureSchema::scalar_index(0, 0), 0u);
  EXPECT_EQ(FeatureSchema::scalar_index(8, 10), 98u);
  EXPECT_EQ(FeatureSchema::edge_index(0, 0, 0), 99u);
  EXPECT_EQ(FeatureSchema::edge_index(4, 11, 2), 99u + 180u - 1u);
  EXPECT_EQ(FeatureSchema::via_index(0, 0, 0), 279u);
  EXPECT_EQ(FeatureSchema::via_index(3, 8, 2), 386u);
  EXPECT_THROW(FeatureSchema::scalar_index(9, 0), std::out_of_range);
  EXPECT_THROW(FeatureSchema::edge_index(5, 0, 0), std::out_of_range);
  EXPECT_THROW(FeatureSchema::via_index(0, 9, 0), std::out_of_range);
}

TEST(FeatureSchema, WindowEdgesSeparateAdjacentPositions) {
  const auto& offsets = FeatureSchema::position_offsets();
  for (const auto& edge : FeatureSchema::window_edges()) {
    const auto [ca, ra] = offsets[edge.pos_a];
    const auto [cb, rb] = offsets[edge.pos_b];
    const int dc = std::abs(ca - cb), dr = std::abs(ra - rb);
    EXPECT_EQ(dc + dr, 1) << edge.label;
    // H-labelled edges separate horizontal neighbors (vertical border).
    EXPECT_EQ(edge.crossed_by_horizontal_wires, dc == 1) << edge.label;
  }
}

// ----------------------------------------------------------- extraction

struct Fixture {
  Design design;
  GridGraph graph;
  Fixture() : design(make_design()), graph(design) {}

  static Design make_design() {
    Design d("fx", {0, 0, 50, 50}, 5, 5);
    d.add_cell({"c0", {21, 21, 23, 23}, false});       // inside center cell
    const NetId local = d.add_net({"local", {}, false, false});
    d.add_pin({0, local, {21.5, 21.5}, false, false});
    d.add_pin({0, local, {22.5, 22.5}, false, false});
    const NetId clk = d.add_net({"clk", {}, true, false});
    d.add_pin({0, clk, {22, 21.5}, false, false});
    d.add_pin({kInvalidId, clk, {5, 5}, false, false});
    return d;
  }
};

TEST(FeatureExtractor, OutputSizeAndGridChecks) {
  Fixture fx;
  const CongestionMap cong = CongestionMap::extract(fx.graph);
  const FeatureExtractor extractor(fx.design, cong);
  EXPECT_EQ(extractor.extract(0).size(), 387u);
  EXPECT_THROW(extractor.extract(25), std::out_of_range);
  std::vector<float> wrong(10);
  EXPECT_THROW(extractor.extract_into(0, wrong), std::invalid_argument);
}

TEST(FeatureExtractor, CenterScalarsOfMiddleCell) {
  Fixture fx;
  const CongestionMap cong = CongestionMap::extract(fx.graph);
  const FeatureExtractor extractor(fx.design, cong);
  const std::size_t center = fx.design.grid().index(2, 2);
  const auto features = extractor.extract(center);
  EXPECT_FLOAT_EQ(features[FeatureSchema::index_of("x_o")], 0.5f);
  EXPECT_FLOAT_EQ(features[FeatureSchema::index_of("y_o")], 0.5f);
  EXPECT_FLOAT_EQ(features[FeatureSchema::index_of("cells_o")], 1.0f);
  EXPECT_FLOAT_EQ(features[FeatureSchema::index_of("pins_o")], 3.0f);
  EXPECT_FLOAT_EQ(features[FeatureSchema::index_of("clkpins_o")], 1.0f);
  EXPECT_FLOAT_EQ(features[FeatureSchema::index_of("localnets_o")], 1.0f);
  EXPECT_FLOAT_EQ(features[FeatureSchema::index_of("localpins_o")], 2.0f);
  // The SW neighbor (g-cell 1,1) is empty.
  EXPECT_FLOAT_EQ(features[FeatureSchema::index_of("pins_SW")], 0.0f);
}

TEST(FeatureExtractor, NeighborViewIsShifted) {
  Fixture fx;
  const CongestionMap cong = CongestionMap::extract(fx.graph);
  const FeatureExtractor extractor(fx.design, cong);
  // From the cell north of the center, the dense cell is its S neighbor.
  const std::size_t north = fx.design.grid().index(2, 3);
  const auto features = extractor.extract(north);
  EXPECT_FLOAT_EQ(features[FeatureSchema::index_of("pins_S")], 3.0f);
  EXPECT_FLOAT_EQ(features[FeatureSchema::index_of("pins_o")], 0.0f);
}

TEST(FeatureExtractor, BoundaryPaddingIsZero) {
  Fixture fx;
  const CongestionMap cong = CongestionMap::extract(fx.graph);
  const FeatureExtractor extractor(fx.design, cong);
  // Bottom-left corner: W, S, SW, NW, SE neighbors are off-layout.
  const auto features = extractor.extract(0);
  for (const char* pos : {"W", "S", "SW", "NW", "SE"}) {
    EXPECT_FLOAT_EQ(
        features[FeatureSchema::index_of(std::string("x_") + pos)], 0.0f);
    EXPECT_FLOAT_EQ(
        features[FeatureSchema::index_of(std::string("vcV1_") + pos)], 0.0f);
  }
  // But the in-layout positions carry real capacities.
  EXPECT_GT(features[FeatureSchema::index_of("vcV1_o")], 0.0f);
  EXPECT_GT(features[FeatureSchema::index_of("vcV1_N")], 0.0f);
}

TEST(FeatureExtractor, EdgeCongestionTriples) {
  Fixture fx;
  // Load the M5 edge between center (2,2) and east neighbor (3,2) — that is
  // window edge "7H" seen from the center.
  const EdgeId e = *fx.graph.edge(4, fx.design.grid().index(2, 2), Dir::kEast);
  fx.graph.add_edge_load(e, 13);
  const CongestionMap cong = CongestionMap::extract(fx.graph);
  const FeatureExtractor extractor(fx.design, cong);
  const auto features = extractor.extract(fx.design.grid().index(2, 2));
  const float cap = features[FeatureSchema::index_of("ecM5_7H")];
  const float load = features[FeatureSchema::index_of("elM5_7H")];
  const float margin = features[FeatureSchema::index_of("edM5_7H")];
  EXPECT_FLOAT_EQ(cap, static_cast<float>(fx.graph.edge_capacity(e)));
  EXPECT_FLOAT_EQ(load, 13.0f);
  EXPECT_FLOAT_EQ(margin, cap - load);
  // The same border on a vertical layer must be zero (wrong direction).
  EXPECT_FLOAT_EQ(features[FeatureSchema::index_of("ecM4_7H")], 0.0f);
  EXPECT_FLOAT_EQ(features[FeatureSchema::index_of("elM4_7H")], 0.0f);
}

TEST(FeatureExtractor, ViaCongestionTriples) {
  Fixture fx;
  const std::size_t east = fx.design.grid().index(3, 2);
  fx.graph.add_via_load(1, east, 35);  // V2 in the east neighbor
  const CongestionMap cong = CongestionMap::extract(fx.graph);
  const FeatureExtractor extractor(fx.design, cong);
  const auto features = extractor.extract(fx.design.grid().index(2, 2));
  EXPECT_FLOAT_EQ(features[FeatureSchema::index_of("vlV2_E")], 35.0f);
  EXPECT_FLOAT_EQ(features[FeatureSchema::index_of("vdV2_E")],
                  features[FeatureSchema::index_of("vcV2_E")] - 35.0f);
}

TEST(FeatureExtractor, ExtractAllMatchesPerCell) {
  Fixture fx;
  const CongestionMap cong = CongestionMap::extract(fx.graph);
  const FeatureExtractor extractor(fx.design, cong);
  const auto matrix = extractor.extract_all();
  ASSERT_EQ(matrix.size(), 25u * 387u);
  for (const std::size_t cell : {0u, 7u, 24u}) {
    const auto row = extractor.extract(cell);
    for (std::size_t f = 0; f < 387u; ++f) {
      EXPECT_FLOAT_EQ(matrix[cell * 387u + f], row[f]);
    }
  }
}

TEST(FeatureExtractor, RejectsMismatchedGrid) {
  Fixture fx;
  const Design other("other", {0, 0, 50, 50}, 4, 4);
  const CongestionMap cong = CongestionMap::extract(GridGraph(other));
  EXPECT_THROW(FeatureExtractor(fx.design, cong), std::invalid_argument);
}

}  // namespace
}  // namespace drcshap
