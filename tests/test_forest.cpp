#include "core/random_forest.hpp"

#include <gtest/gtest.h>

#include "ml/metrics.hpp"
#include "util/rng.hpp"

namespace drcshap {
namespace {

/// Noisy nonlinear task: label from two interacting features + noise, with
/// several pure-noise features (the paper's motivation for RF robustness).
Dataset noisy_data(std::size_t n, std::uint64_t seed) {
  Dataset d(8);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<float> x(8);
    for (auto& v : x) v = static_cast<float>(rng.uniform());
    const double signal = (x[0] > 0.6 && x[1] > 0.4) || x[2] > 0.9;
    const int label = rng.bernoulli(signal ? 0.9 : 0.05) ? 1 : 0;
    d.append_row(x, label, 0);
  }
  return d;
}

double forest_auprc(const RandomForestClassifier& forest, const Dataset& d) {
  return auprc(forest.predict_proba_all(d), d.labels());
}

TEST(RandomForest, BeatsSingleTreeOnNoisyTask) {
  const Dataset train = noisy_data(1500, 11);
  const Dataset test = noisy_data(1500, 12);

  RandomForestOptions single;
  single.n_trees = 1;
  single.max_features = 0;
  RandomForestClassifier one_tree(single);
  one_tree.fit(train);

  RandomForestOptions many;
  many.n_trees = 80;
  RandomForestClassifier forest(many);
  forest.fit(train);

  EXPECT_GT(forest_auprc(forest, test), forest_auprc(one_tree, test));
}

TEST(RandomForest, ProbabilitiesAreTreeAverages) {
  const Dataset d = noisy_data(300, 13);
  RandomForestOptions options;
  options.n_trees = 7;
  RandomForestClassifier forest(options);
  forest.fit(d);
  const auto x = d.row(5);
  double mean = 0.0;
  for (const DecisionTree& tree : forest.trees()) {
    mean += tree.predict_proba(x);
  }
  mean /= 7.0;
  EXPECT_NEAR(forest.predict_proba(x), mean, 1e-12);
}

TEST(RandomForest, DeterministicAcrossThreadCounts) {
  const Dataset d = noisy_data(400, 14);
  RandomForestOptions serial;
  serial.n_trees = 12;
  serial.n_threads = 1;
  RandomForestOptions parallel = serial;
  parallel.n_threads = 4;
  RandomForestClassifier a(serial), b(parallel);
  a.fit(d);
  b.fit(d);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.predict_proba(d.row(i)), b.predict_proba(d.row(i)));
  }
}

TEST(RandomForest, SeedChangesModel) {
  const Dataset d = noisy_data(400, 15);
  RandomForestOptions o1, o2;
  o1.n_trees = o2.n_trees = 10;
  o2.seed = o1.seed + 1;
  RandomForestClassifier a(o1), b(o2);
  a.fit(d);
  b.fit(d);
  bool any_diff = false;
  for (std::size_t i = 0; i < 100 && !any_diff; ++i) {
    any_diff = a.predict_proba(d.row(i)) != b.predict_proba(d.row(i));
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomForest, MoreTreesDoNotHurt) {
  // The paper's cross-validation observation: growing the ensemble does not
  // degrade predictive quality.
  const Dataset train = noisy_data(1200, 16);
  const Dataset test = noisy_data(1200, 17);
  RandomForestOptions small, large;
  small.n_trees = 5;
  large.n_trees = 100;
  RandomForestClassifier few(small), many(large);
  few.fit(train);
  many.fit(train);
  EXPECT_GE(forest_auprc(many, test), forest_auprc(few, test) - 0.02);
}

TEST(RandomForest, ExpectedValueNearBaseRate) {
  const Dataset d = noisy_data(1000, 18);
  RandomForestOptions options;
  options.n_trees = 30;
  RandomForestClassifier forest(options);
  forest.fit(d);
  const double base_rate =
      static_cast<double>(d.n_positives()) / static_cast<double>(d.n_rows());
  EXPECT_NEAR(forest.expected_value(), base_rate, 0.05);
}

TEST(RandomForest, ComplexityCountersPositiveAndScale) {
  const Dataset d = noisy_data(500, 19);
  RandomForestOptions small, large;
  small.n_trees = 5;
  large.n_trees = 20;
  RandomForestClassifier a(small), b(large);
  a.fit(d);
  b.fit(d);
  EXPECT_GT(a.n_parameters(), 0u);
  EXPECT_GT(b.n_parameters(), a.n_parameters());
  EXPECT_GT(b.prediction_ops(), a.prediction_ops());
}

TEST(RandomForest, ValidatesUsage) {
  EXPECT_THROW(RandomForestClassifier(RandomForestOptions{.n_trees = 0}),
               std::invalid_argument);
  RandomForestClassifier unfitted;
  EXPECT_THROW(unfitted.predict_proba(std::vector<float>{1.0f}),
               std::logic_error);
  EXPECT_THROW(unfitted.expected_value(), std::logic_error);
  Dataset empty(3);
  RandomForestClassifier forest;
  EXPECT_THROW(forest.fit(empty), std::invalid_argument);
}

TEST(RandomForest, WithoutBootstrapUsesAllRows) {
  const Dataset d = noisy_data(300, 20);
  RandomForestOptions options;
  options.n_trees = 3;
  options.bootstrap = false;
  RandomForestClassifier forest(options);
  forest.fit(d);
  for (const DecisionTree& tree : forest.trees()) {
    EXPECT_DOUBLE_EQ(tree.nodes()[0].cover, 300.0);
  }
}

TEST(RandomForest, PositiveWeightRaisesRecallOnImbalanced) {
  Dataset train(4);
  Rng rng(21);
  for (int i = 0; i < 3000; ++i) {
    std::vector<float> x(4);
    for (auto& v : x) v = static_cast<float>(rng.uniform());
    const int label = rng.bernoulli(x[0] > 0.9 ? 0.6 : 0.005) ? 1 : 0;
    train.append_row(x, label, 0);
  }
  RandomForestOptions plain, weighted;
  plain.n_trees = weighted.n_trees = 40;
  weighted.positive_weight = 20.0;
  RandomForestClassifier a(plain), b(weighted);
  a.fit(train);
  b.fit(train);
  // The weighted forest should emit (weakly) larger scores on positives.
  double mean_a = 0.0, mean_b = 0.0;
  std::size_t n_pos = 0;
  for (std::size_t i = 0; i < train.n_rows(); ++i) {
    if (!train.label(i)) continue;
    mean_a += a.predict_proba(train.row(i));
    mean_b += b.predict_proba(train.row(i));
    ++n_pos;
  }
  ASSERT_GT(n_pos, 0u);
  EXPECT_GE(mean_b / n_pos, mean_a / n_pos - 0.02);
}

}  // namespace
}  // namespace drcshap
