#include "geom/geometry.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace drcshap {
namespace {

TEST(Point, ManhattanDistance) {
  EXPECT_DOUBLE_EQ(manhattan({0, 0}, {3, 4}), 7.0);
  EXPECT_DOUBLE_EQ(manhattan({-1, -1}, {1, 1}), 4.0);
  EXPECT_DOUBLE_EQ(manhattan({2, 2}, {2, 2}), 0.0);
}

TEST(Rect, BasicAccessors) {
  const Rect r{1, 2, 4, 6};
  EXPECT_DOUBLE_EQ(r.width(), 3.0);
  EXPECT_DOUBLE_EQ(r.height(), 4.0);
  EXPECT_DOUBLE_EQ(r.area(), 12.0);
  EXPECT_EQ(r.center(), (Point{2.5, 4.0}));
  EXPECT_FALSE(r.empty());
}

TEST(Rect, EmptyAndDegenerate) {
  EXPECT_TRUE((Rect{0, 0, 0, 5}).empty());
  EXPECT_TRUE((Rect{3, 0, 1, 5}).empty());
  EXPECT_DOUBLE_EQ((Rect{3, 0, 1, 5}).area(), 0.0);
}

TEST(Rect, FromCenter) {
  const Rect r = Rect::from_center({5, 5}, 2, 4);
  EXPECT_EQ(r, (Rect{4, 3, 6, 7}));
}

TEST(Rect, ContainsPointHalfOpen) {
  const Rect r{0, 0, 10, 10};
  EXPECT_TRUE(r.contains(Point{0, 0}));
  EXPECT_TRUE(r.contains(Point{9.999, 9.999}));
  EXPECT_FALSE(r.contains(Point{10, 5}));
  EXPECT_FALSE(r.contains(Point{5, 10}));
  EXPECT_FALSE(r.contains(Point{-0.001, 5}));
}

TEST(Rect, ContainsRect) {
  const Rect outer{0, 0, 10, 10};
  EXPECT_TRUE(outer.contains(Rect{1, 1, 9, 9}));
  EXPECT_TRUE(outer.contains(outer));
  EXPECT_FALSE(outer.contains(Rect{-1, 1, 5, 5}));
}

TEST(Rect, OverlapsOpenInterval) {
  const Rect a{0, 0, 5, 5};
  EXPECT_TRUE(a.overlaps(Rect{4, 4, 8, 8}));
  EXPECT_FALSE(a.overlaps(Rect{5, 0, 8, 5}));  // touching edge: no overlap
  EXPECT_FALSE(a.overlaps(Rect{6, 6, 8, 8}));
}

TEST(Rect, IntersectionArea) {
  const Rect a{0, 0, 4, 4};
  EXPECT_DOUBLE_EQ(a.intersection_area(Rect{2, 2, 6, 6}), 4.0);
  EXPECT_DOUBLE_EQ(a.intersection_area(Rect{4, 0, 6, 4}), 0.0);
  EXPECT_DOUBLE_EQ(a.intersection_area(a), 16.0);
}

TEST(Rect, UniteAndInflate) {
  const Rect a{0, 0, 1, 1};
  const Rect b{2, 2, 3, 3};
  EXPECT_EQ(a.unite(b), (Rect{0, 0, 3, 3}));
  EXPECT_EQ(a.inflated(1.0), (Rect{-1, -1, 2, 2}));
  EXPECT_EQ(a.unite(Rect{}), a);
}

// ----------------------------------------------------------------- GCellGrid

TEST(GCellGrid, BasicDimensions) {
  const GCellGrid grid({0, 0, 100, 50}, 10, 5);
  EXPECT_EQ(grid.size(), 50u);
  EXPECT_DOUBLE_EQ(grid.cell_width(), 10.0);
  EXPECT_DOUBLE_EQ(grid.cell_height(), 10.0);
}

TEST(GCellGrid, RejectsDegenerate) {
  EXPECT_THROW(GCellGrid({0, 0, 10, 10}, 0, 5), std::invalid_argument);
  EXPECT_THROW(GCellGrid({0, 0, 0, 10}, 5, 5), std::invalid_argument);
}

TEST(GCellGrid, IndexRowColRoundTrip) {
  const GCellGrid grid({0, 0, 100, 100}, 7, 9);
  for (std::size_t row = 0; row < 9; ++row) {
    for (std::size_t col = 0; col < 7; ++col) {
      const std::size_t idx = grid.index(col, row);
      EXPECT_EQ(grid.col_of(idx), col);
      EXPECT_EQ(grid.row_of(idx), row);
    }
  }
  EXPECT_THROW(grid.index(7, 0), std::out_of_range);
}

TEST(GCellGrid, LocateCenterOfEachCell) {
  const GCellGrid grid({0, 0, 60, 60}, 6, 6);
  for (std::size_t idx = 0; idx < grid.size(); ++idx) {
    EXPECT_EQ(grid.locate(grid.cell_rect(idx).center()), idx);
  }
}

TEST(GCellGrid, LocateClampsBoundary) {
  const GCellGrid grid({0, 0, 10, 10}, 2, 2);
  EXPECT_EQ(grid.locate({10.0, 10.0}), grid.index(1, 1));
  EXPECT_EQ(grid.locate({-5.0, -5.0}), grid.index(0, 0));
}

TEST(GCellGrid, CellRectTilesTheDie) {
  const GCellGrid grid({0, 0, 30, 20}, 3, 2);
  double total = 0.0;
  for (std::size_t idx = 0; idx < grid.size(); ++idx) {
    total += grid.cell_rect(idx).area();
  }
  EXPECT_DOUBLE_EQ(total, 600.0);
}

TEST(GCellGrid, CellsOverlappingSmallRect) {
  const GCellGrid grid({0, 0, 40, 40}, 4, 4);
  const auto cells = grid.cells_overlapping({5, 5, 6, 6});
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0], grid.index(0, 0));
}

TEST(GCellGrid, CellsOverlappingSpanningRect) {
  const GCellGrid grid({0, 0, 40, 40}, 4, 4);
  const auto cells = grid.cells_overlapping({5, 5, 25, 15});
  EXPECT_EQ(cells.size(), 6u);  // cols 0..2, rows 0..1
}

TEST(GCellGrid, CellsOverlappingBoundaryAlignedRect) {
  const GCellGrid grid({0, 0, 40, 40}, 4, 4);
  // Rect exactly covering one cell should claim only that cell.
  const auto cells = grid.cells_overlapping({10, 10, 20, 20});
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0], grid.index(1, 1));
}

TEST(GCellGrid, CellsOverlappingOutsideDie) {
  const GCellGrid grid({0, 0, 40, 40}, 4, 4);
  EXPECT_TRUE(grid.cells_overlapping({50, 50, 60, 60}).empty());
}

TEST(GCellGrid, InBoundsSignedChecks) {
  const GCellGrid grid({0, 0, 40, 40}, 4, 4);
  EXPECT_TRUE(grid.in_bounds(0, 0));
  EXPECT_TRUE(grid.in_bounds(3, 3));
  EXPECT_FALSE(grid.in_bounds(-1, 0));
  EXPECT_FALSE(grid.in_bounds(0, 4));
}

// Property test: locate() agrees with cells_overlapping() for random points.
TEST(GCellGrid, LocateConsistentWithCellRects) {
  const GCellGrid grid({-10, -20, 35, 17}, 9, 6);
  Rng rng(77);
  for (int i = 0; i < 2000; ++i) {
    const Point p{rng.uniform(-10, 35), rng.uniform(-20, 17)};
    const std::size_t idx = grid.locate(p);
    EXPECT_TRUE(grid.cell_rect(idx).contains(p) ||
                p.x >= grid.cell_rect(idx).x_hi - 1e-9 ||
                p.y >= grid.cell_rect(idx).y_hi - 1e-9);
  }
}

}  // namespace
}  // namespace drcshap
