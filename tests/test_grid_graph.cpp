#include "route/grid_graph.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace drcshap {
namespace {

Design empty_design(std::size_t nx = 4, std::size_t ny = 3) {
  return Design("gg", {0, 0, 40.0, 30.0}, nx, ny);
}

TEST(GridGraph, EdgeCountsPerLayer) {
  const GridGraph g(empty_design());
  // 5 layers on a 4x3 grid: horizontal layers (M1,M3,M5): 3*3=9 edges each;
  // vertical layers (M2,M4): 4*2=8 edges each.
  EXPECT_EQ(g.num_edges(), 3u * 9u + 2u * 8u);
}

TEST(GridGraph, EdgeRespectsPreferredDirection) {
  const GridGraph g(empty_design());
  // M1 (horizontal): east/west only.
  EXPECT_TRUE(g.edge(0, 0, Dir::kEast).has_value());
  EXPECT_FALSE(g.edge(0, 0, Dir::kNorth).has_value());
  // M2 (vertical): north/south only.
  EXPECT_FALSE(g.edge(1, 0, Dir::kEast).has_value());
  EXPECT_TRUE(g.edge(1, 0, Dir::kNorth).has_value());
}

TEST(GridGraph, EdgeNoneAtBorder) {
  const GridGraph g(empty_design(4, 3));
  EXPECT_FALSE(g.edge(0, 3, Dir::kEast).has_value());   // col 3 is last
  EXPECT_FALSE(g.edge(0, 0, Dir::kWest).has_value());
  EXPECT_FALSE(g.edge(1, 8, Dir::kNorth).has_value());  // row 2 is last
}

TEST(GridGraph, EdgeSymmetric) {
  const GridGraph g(empty_design());
  const auto east = g.edge(0, 0, Dir::kEast);
  const auto west = g.edge(0, 1, Dir::kWest);
  ASSERT_TRUE(east && west);
  EXPECT_EQ(*east, *west);
}

TEST(GridGraph, EdgeCellsInverse) {
  const GridGraph g(empty_design());
  for (int m = 0; m < 5; ++m) {
    for (std::size_t cell = 0; cell < g.num_cells(); ++cell) {
      const auto e = g.edge_low(m, cell);
      if (!e) continue;
      EXPECT_EQ(g.edge_metal(*e), m);
      const auto [a, b] = g.edge_cells(*e);
      EXPECT_EQ(a, cell);
      EXPECT_EQ(b, Technology::is_horizontal(m) ? cell + 1 : cell + g.nx());
    }
  }
}

TEST(GridGraph, CapacitiesMatchTracksWithoutObstacles) {
  const Design d = empty_design();
  const GridGraph g(d);
  for (int m = 2; m < 5; ++m) {  // M3..M5: no density deration
    for (std::size_t cell = 0; cell < g.num_cells(); ++cell) {
      const auto e = g.edge_low(m, cell);
      if (!e) continue;
      EXPECT_EQ(g.edge_capacity(*e),
                d.tech().tracks_per_gcell[static_cast<std::size_t>(m)]);
    }
  }
}

TEST(GridGraph, BlockageReducesCapacity) {
  Design d = empty_design();
  const GridGraph before(d);
  d.add_blockage({{0, 0, 20, 30}, 2, 2});  // left half, M3 only
  const GridGraph after(d);
  const auto e = after.edge_low(2, 0);  // M3 edge inside the blockage
  ASSERT_TRUE(e.has_value());
  EXPECT_LT(after.edge_capacity(*e), before.edge_capacity(*e));
  // Other layers unaffected.
  const auto e_m5 = after.edge_low(4, 0);
  ASSERT_TRUE(e_m5.has_value());
  EXPECT_EQ(after.edge_capacity(*e_m5), before.edge_capacity(*e_m5));
}

TEST(GridGraph, FullBlockageZeroesCapacity) {
  Design d = empty_design();
  d.add_blockage({{0, 0, 40, 30}, 0, 4});  // everything, all layers
  const GridGraph g(d);
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(g.edge_capacity(static_cast<EdgeId>(e)), 0);
  }
}

TEST(GridGraph, CellDensityDeratesLowerLayers) {
  Design d = empty_design();
  // Fill cell (0,0) fully with a standard cell.
  d.add_cell({"fat", {0, 0, 10, 10}, false});
  const GridGraph g(d);
  const Design empty = empty_design();
  const GridGraph base(empty);
  const auto e = g.edge_low(0, 0);  // M1 edge next to the dense cell
  ASSERT_TRUE(e.has_value());
  EXPECT_LT(g.edge_capacity(*e), base.edge_capacity(*e));
}

TEST(GridGraph, LoadAccounting) {
  GridGraph g(empty_design());
  const EdgeId e = *g.edge_low(0, 0);
  EXPECT_EQ(g.edge_load(e), 0);
  g.add_edge_load(e, 2);
  EXPECT_EQ(g.edge_load(e), 2);
  g.add_edge_load(e, -2);
  EXPECT_EQ(g.edge_load(e), 0);
  EXPECT_THROW(g.add_edge_load(e, -1), std::logic_error);
}

TEST(GridGraph, OverflowComputation) {
  GridGraph g(empty_design());
  const EdgeId e = *g.edge_low(4, 0);
  const int cap = g.edge_capacity(e);
  g.add_edge_load(e, cap + 3);
  EXPECT_EQ(g.edge_overflow(e), 3);
  EXPECT_EQ(g.total_edge_overflow(), 3);
}

TEST(GridGraph, ViaAccounting) {
  GridGraph g(empty_design());
  EXPECT_EQ(g.via_load(0, 0), 0);
  g.add_via_load(0, 0, 5);
  EXPECT_EQ(g.via_load(0, 0), 5);
  EXPECT_EQ(g.via_overflow(0, 0), 0);
  g.add_via_load(0, 0, 1000);
  EXPECT_GT(g.via_overflow(0, 0), 0);
  EXPECT_GT(g.total_via_overflow(), 0L);
  EXPECT_THROW(g.via_load(4, 0), std::out_of_range);
}

TEST(GridGraph, ResetLoadsKeepsCapacity) {
  GridGraph g(empty_design());
  const EdgeId e = *g.edge_low(0, 0);
  const int cap = g.edge_capacity(e);
  g.add_edge_load(e, 7);
  g.add_via_load(1, 2, 3);
  g.reset_loads();
  EXPECT_EQ(g.edge_load(e), 0);
  EXPECT_EQ(g.via_load(1, 2), 0);
  EXPECT_EQ(g.edge_capacity(e), cap);
}

TEST(GridGraph, NeighborDirections) {
  const GridGraph g(empty_design(4, 3));
  EXPECT_EQ(g.neighbor(0, Dir::kEast), std::optional<std::size_t>(1));
  EXPECT_EQ(g.neighbor(0, Dir::kNorth), std::optional<std::size_t>(4));
  EXPECT_FALSE(g.neighbor(0, Dir::kWest).has_value());
  EXPECT_FALSE(g.neighbor(0, Dir::kSouth).has_value());
  EXPECT_FALSE(g.neighbor(3, Dir::kEast).has_value());
}

TEST(GridGraph, HistoryAccumulates) {
  GridGraph g(empty_design());
  const EdgeId e = *g.edge_low(0, 0);
  EXPECT_DOUBLE_EQ(g.edge_history(e), 0.0);
  g.add_edge_history(e, 1.5);
  g.add_edge_history(e, 0.5);
  EXPECT_DOUBLE_EQ(g.edge_history(e), 2.0);
}

TEST(GridGraph, RemoveLoadUndoesAdd) {
  GridGraph g(empty_design());
  const EdgeId e = *g.edge_low(0, 0);
  g.add_edge_load(e, 5);
  g.remove_edge_load(e, 3);
  EXPECT_EQ(g.edge_load(e), 2);
  g.remove_edge_load(e, 2);
  EXPECT_EQ(g.edge_load(e), 0);
  g.add_via_load(0, 1, 4);
  g.remove_via_load(0, 1, 4);
  EXPECT_EQ(g.via_load(0, 1), 0);
}

TEST(GridGraph, RemoveBelowZeroThrows) {
  GridGraph g(empty_design());
  const EdgeId e = *g.edge_low(0, 0);
  EXPECT_THROW(g.remove_edge_load(e, 1), std::logic_error);
  g.add_edge_load(e, 2);
  EXPECT_THROW(g.remove_edge_load(e, 3), std::logic_error);
  EXPECT_THROW(g.remove_via_load(0, 0, 1), std::logic_error);
}

// The incremental O(1) overflow totals must agree with a brute-force
// recount after *any* interleaving of load adds and removals — the rip-up
// loops of the router and the ECO engine's replay both lean on this.
TEST(GridGraph, IncrementalOverflowMatchesBruteForceUnderAddRemove) {
  GridGraph g(empty_design(5, 4));
  Rng rng(0xec0);
  std::vector<int> edge_loads(g.num_edges(), 0);
  const std::size_t n_via_slots =
      static_cast<std::size_t>(g.num_via_layers()) * g.num_cells();
  std::vector<int> via_loads(n_via_slots, 0);

  const auto brute_force_edges = [&] {
    long total = 0;
    for (EdgeId e = 0; e < g.num_edges(); ++e) total += g.edge_overflow(e);
    return total;
  };
  const auto brute_force_vias = [&] {
    long total = 0;
    for (int v = 0; v < g.num_via_layers(); ++v) {
      for (std::size_t c = 0; c < g.num_cells(); ++c) {
        total += g.via_overflow(v, c);
      }
    }
    return total;
  };

  for (int step = 0; step < 4000; ++step) {
    if (rng.uniform() < 0.5) {
      const EdgeId e = static_cast<EdgeId>(
          rng.uniform_int(0, static_cast<std::int64_t>(g.num_edges()) - 1));
      // Bias toward adding so loads routinely cross capacity in both
      // directions; removals strip a random slice of what is there.
      if (edge_loads[e] > 0 && rng.uniform() < 0.4) {
        const int amount =
            static_cast<int>(rng.uniform_int(1, edge_loads[e]));
        g.remove_edge_load(e, amount);
        edge_loads[e] -= amount;
      } else {
        const int delta = static_cast<int>(rng.uniform_int(1, 6));
        g.add_edge_load(e, delta);
        edge_loads[e] += delta;
      }
    } else {
      const int v = static_cast<int>(
          rng.uniform_int(0, g.num_via_layers() - 1));
      const std::size_t c = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(g.num_cells()) - 1));
      const std::size_t slot =
          static_cast<std::size_t>(v) * g.num_cells() + c;
      if (via_loads[slot] > 0 && rng.uniform() < 0.4) {
        const int amount =
            static_cast<int>(rng.uniform_int(1, via_loads[slot]));
        g.remove_via_load(v, c, amount);
        via_loads[slot] -= amount;
      } else {
        const int delta = static_cast<int>(rng.uniform_int(1, 30));
        g.add_via_load(v, c, delta);
        via_loads[slot] += delta;
      }
    }
    if (step % 97 == 0 || step + 1 == 4000) {
      ASSERT_EQ(g.total_edge_overflow(), brute_force_edges())
          << "step " << step;
      ASSERT_EQ(g.total_via_overflow(), brute_force_vias()) << "step " << step;
    }
  }

  // Drain everything: totals must return to exactly zero.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (edge_loads[e] > 0) g.remove_edge_load(e, edge_loads[e]);
  }
  for (int v = 0; v < g.num_via_layers(); ++v) {
    for (std::size_t c = 0; c < g.num_cells(); ++c) {
      const std::size_t slot = static_cast<std::size_t>(v) * g.num_cells() + c;
      if (via_loads[slot] > 0) g.remove_via_load(v, c, via_loads[slot]);
    }
  }
  EXPECT_EQ(g.total_edge_overflow(), 0);
  EXPECT_EQ(g.total_via_overflow(), 0);
}

}  // namespace
}  // namespace drcshap
