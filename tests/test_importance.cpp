#include "core/explanation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace drcshap {
namespace {

/// Label depends strongly on feature 0, weakly on feature 1, never on 2/3.
Dataset structured_data(std::size_t n, std::uint64_t seed) {
  Dataset d(4);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<float> x(4);
    for (auto& v : x) v = static_cast<float>(rng.uniform());
    const double score = 2.0 * x[0] + 0.4 * x[1] + 0.3 * rng.normal();
    d.append_row(x, score > 1.2 ? 1 : 0, 0);
  }
  return d;
}

TEST(MeanAbsShap, RanksFeaturesByTrueInfluence) {
  const Dataset train = structured_data(1500, 1);
  RandomForestOptions options;
  options.n_trees = 40;
  RandomForestClassifier forest(options);
  forest.fit(train);
  const TreeShapExplainer explainer(forest);
  const Dataset probe = structured_data(300, 2);
  const auto importance = mean_abs_shap(explainer, probe, 150);
  ASSERT_EQ(importance.size(), 4u);
  EXPECT_GT(importance[0], importance[1]);
  EXPECT_GT(importance[1], importance[2]);
  EXPECT_GT(importance[1], importance[3]);
  for (const double v : importance) EXPECT_GE(v, 0.0);
}

TEST(MeanAbsShap, UsesAllRowsWhenFewerThanCap) {
  const Dataset train = structured_data(400, 3);
  RandomForestOptions options;
  options.n_trees = 10;
  RandomForestClassifier forest(options);
  forest.fit(train);
  const TreeShapExplainer explainer(forest);
  const Dataset probe = structured_data(50, 4);
  // Deterministic regardless of seed when all rows are used.
  const auto a = mean_abs_shap(explainer, probe, 100, 1);
  const auto b = mean_abs_shap(explainer, probe, 100, 2);
  for (std::size_t f = 0; f < 4; ++f) EXPECT_DOUBLE_EQ(a[f], b[f]);
}

TEST(MeanAbsShap, SubsamplingIsSeedDeterministic) {
  const Dataset train = structured_data(400, 5);
  RandomForestOptions options;
  options.n_trees = 10;
  RandomForestClassifier forest(options);
  forest.fit(train);
  const TreeShapExplainer explainer(forest);
  const Dataset probe = structured_data(300, 6);
  const auto a = mean_abs_shap(explainer, probe, 40, 9);
  const auto b = mean_abs_shap(explainer, probe, 40, 9);
  for (std::size_t f = 0; f < 4; ++f) EXPECT_DOUBLE_EQ(a[f], b[f]);
}

TEST(MeanAbsShap, EmptyDatasetThrows) {
  const Dataset train = structured_data(200, 7);
  RandomForestOptions options;
  options.n_trees = 5;
  RandomForestClassifier forest(options);
  forest.fit(train);
  const TreeShapExplainer explainer(forest);
  Dataset empty(4);
  EXPECT_THROW(mean_abs_shap(explainer, empty), std::invalid_argument);
}

TEST(GlobalShapSummary, MatchesMeanAbsShapAndAddsSignStats) {
  const Dataset train = structured_data(600, 11);
  RandomForestOptions options;
  options.n_trees = 20;
  RandomForestClassifier forest(options);
  forest.fit(train);
  const TreeShapExplainer explainer(forest);
  const Dataset probe = structured_data(80, 12);

  const GlobalShapSummary summary = global_shap_summary(explainer, probe);
  EXPECT_EQ(summary.n_rows(), probe.n_rows());
  const auto direct = mean_abs_shap(explainer, probe, probe.n_rows());
  const auto streamed = summary.mean_abs_all();
  ASSERT_EQ(direct.size(), streamed.size());
  for (std::size_t f = 0; f < direct.size(); ++f) {
    EXPECT_DOUBLE_EQ(direct[f], streamed[f]);
  }
  for (std::size_t f = 0; f < streamed.size(); ++f) {
    EXPECT_GE(summary.positive_fraction(f), 0.0);
    EXPECT_LE(summary.positive_fraction(f), 1.0);
    EXPECT_LE(std::abs(summary.mean_signed(f)), summary.mean_abs(f) + 1e-15);
  }
}

TEST(GlobalShapSummary, ShardMergeIsDeterministic) {
  const Dataset train = structured_data(400, 13);
  RandomForestOptions options;
  options.n_trees = 15;
  RandomForestClassifier forest(options);
  forest.fit(train);
  const TreeShapExplainer explainer(forest);
  const Dataset probe = structured_data(60, 14);
  const ShapMatrix phi = explainer.shap_values_batch(probe);

  GlobalShapSummary sequential(probe.n_features());
  sequential.add(phi);

  // Fixed-size row shards merged in block order: deterministic in the
  // sharding — two independent sharded runs agree bit for bit — and equal
  // to the sequential pass up to summation reassociation.
  const auto sharded = [&] {
    GlobalShapSummary merged(probe.n_features());
    for (std::size_t start = 0; start < phi.n_rows; start += 16) {
      GlobalShapSummary shard(probe.n_features());
      for (std::size_t r = start; r < std::min(phi.n_rows, start + 16); ++r) {
        shard.add(phi.row(r));
      }
      merged.merge(shard);
    }
    return merged;
  };
  const GlobalShapSummary merged_a = sharded();
  const GlobalShapSummary merged_b = sharded();
  EXPECT_EQ(sequential.n_rows(), merged_a.n_rows());
  for (std::size_t f = 0; f < probe.n_features(); ++f) {
    EXPECT_EQ(merged_a.mean_abs(f), merged_b.mean_abs(f));
    EXPECT_EQ(merged_a.mean_signed(f), merged_b.mean_signed(f));
    EXPECT_EQ(merged_a.positive_fraction(f), merged_b.positive_fraction(f));
    EXPECT_DOUBLE_EQ(sequential.mean_abs(f), merged_a.mean_abs(f));
    // Signed sums cancel, so compare on an absolute scale set by the
    // magnitude of the contributions rather than in ULPs of the residual.
    EXPECT_NEAR(sequential.mean_signed(f), merged_a.mean_signed(f),
                1e-12 * (1.0 + sequential.mean_abs(f)));
    // Sign counts are integers: identical no matter the association.
    EXPECT_EQ(sequential.positive_fraction(f), merged_a.positive_fraction(f));
  }
}

TEST(GlobalShapSummary, TopFeaturesMatchesFullSortWithBoundedHeap) {
  GlobalShapSummary summary(6);
  // Rows crafted so mean |SHAP| = {0.5, 0.1, 0.9, 0.5, 0.0, 0.3} with a
  // tie between features 0 and 3 (lower index must win).
  const std::vector<double> row{0.5, -0.1, 0.9, 0.5, 0.0, -0.3};
  summary.add(row);
  const auto top3 = summary.top_features(3);
  ASSERT_EQ(top3.size(), 3u);
  EXPECT_EQ(top3[0], 2u);
  EXPECT_EQ(top3[1], 0u);
  EXPECT_EQ(top3[2], 3u);
  const auto all = summary.top_features(99);
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all[5], 4u);
  const std::vector<std::string> names{"a", "b", "c", "d", "e", "f"};
  const std::string text = summary.to_text(names, 2);
  EXPECT_NE(text.find("1. c"), std::string::npos);
  EXPECT_NE(text.find("2. a"), std::string::npos);
}

TEST(SplitImportance, DebiasedDemotesNoiseFeatures) {
  const Dataset train = structured_data(1200, 21);
  RandomForestOptions options;
  options.n_trees = 30;
  RandomForestClassifier forest(options);
  forest.fit(train);

  const auto mdi = split_improvement_importance(forest.flat());
  ASSERT_EQ(mdi.size(), 4u);
  EXPECT_GT(mdi[0], mdi[2]);  // signal beats noise even before debiasing
  EXPECT_GT(mdi[0], mdi[3]);

  const Dataset probe = structured_data(600, 22);
  const auto debiased = debiased_split_importance(forest.flat(), probe);
  ASSERT_EQ(debiased.size(), 4u);
  EXPECT_GT(debiased[0], debiased[2]);
  EXPECT_GT(debiased[0], debiased[3]);
  // The debiasing signal: evaluated on fresh data, splits on the pure
  // noise features lose (relatively) more improvement than the signal
  // feature does.
  const auto noise_share = [](const std::vector<double>& imp) {
    const double noise = std::abs(imp[2]) + std::abs(imp[3]);
    return noise / (noise + std::abs(imp[0]) + std::abs(imp[1]));
  };
  EXPECT_LT(noise_share(debiased), noise_share(mdi));
}

TEST(SplitImportance, DebiasedValidatesProbe) {
  const Dataset train = structured_data(200, 23);
  RandomForestOptions options;
  options.n_trees = 5;
  RandomForestClassifier forest(options);
  forest.fit(train);
  Dataset empty(4);
  EXPECT_THROW(debiased_split_importance(forest.flat(), empty),
               std::invalid_argument);
  Dataset wrong_width(7);
  wrong_width.append_row(std::vector<float>(7, 0.0f), 0, 0);
  EXPECT_THROW(debiased_split_importance(forest.flat(), wrong_width),
               std::invalid_argument);
}

TEST(RankCorrelation, KnownValues) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> up{10.0, 20.0, 30.0, 40.0};
  const std::vector<double> down{4.0, 3.0, 2.0, 1.0};
  EXPECT_NEAR(rank_correlation(a, up), 1.0, 1e-12);
  EXPECT_NEAR(rank_correlation(a, down), -1.0, 1e-12);
  const std::vector<double> constant{5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(rank_correlation(a, constant), 0.0);
  const std::vector<double> short_vec{1.0};
  EXPECT_DOUBLE_EQ(rank_correlation(a, short_vec), 0.0);  // size mismatch
  // Ties get average ranks: {1, 2, 2, 3} vs a monotone vector correlates
  // strictly between 0 and 1.
  const std::vector<double> tied{1.0, 2.0, 2.0, 3.0};
  const double rho = rank_correlation(a, tied);
  EXPECT_GT(rho, 0.9);
  EXPECT_LT(rho, 1.0);
}

TEST(MeanAbsShapRegression, ShapRankingAgreesWithSplitImprovement) {
  // The satellite experiment in miniature: on structured data, mean |SHAP|
  // and (debiased) split improvement must largely agree on feature order.
  const Dataset train = structured_data(1000, 31);
  RandomForestOptions options;
  options.n_trees = 25;
  RandomForestClassifier forest(options);
  forest.fit(train);
  const TreeShapExplainer explainer(forest);
  const Dataset probe = structured_data(300, 32);
  const auto shap = mean_abs_shap(explainer, probe, 150);
  const auto debiased = debiased_split_importance(forest.flat(), probe);
  EXPECT_GT(rank_correlation(shap, debiased), 0.6);
}

}  // namespace
}  // namespace drcshap
